// Quickstart: build a network, run a fault-free inference, inject one
// datapath fault, and classify the outcome — the reproduction's core loop
// in ~40 lines.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

func main() {
	// 1. Build AlexNet (topology-faithful, deterministic synthetic
	//    weights) and a deterministic input image.
	net := models.Build("AlexNet")
	input := models.InputFor("AlexNet", 0)
	dt := numeric.Float16

	// 2. Golden (fault-free) inference.
	golden := net.Forward(dt, input)
	fmt.Printf("golden prediction: class %d (confidence %.4f)\n",
		golden.Top1(), golden.Output().Data[golden.Top1()])

	// 3. Pick a random datapath fault site: one bit of one latch of one
	//    MAC operation, uniformly over the whole inference.
	rng := rand.New(rand.NewSource(42))
	profile := accel.NewProfile(net, dt)
	site := profile.RandomSite(rng)
	fmt.Printf("injecting: %s\n", site)

	// 4. Faulty inference: resume from the faulted layer using the cached
	//    golden activations (bit-exact under the single-fault model).
	fault := site.Fault
	faulty := net.ForwardFrom(dt, golden, site.Layer, &fault)
	fmt.Printf("faulty prediction: class %d (confidence %.4f)\n",
		faulty.Top1(), faulty.Output().Data[faulty.Top1()])

	// 5. Classify against the paper's four SDC criteria.
	outcome := sdc.Classify(net, golden, faulty)
	for _, k := range sdc.Kinds {
		if outcome.Defined[k] {
			fmt.Printf("  %-8s %v\n", k, outcome.Hit[k])
		}
	}
	if !outcome.Any() {
		fmt.Println("fault was benign (masked by ReLU/POOL/LRN or too small to matter)")
	}
}
