// Training demonstrates the full Tiny-CNN-style stack: train ConvNet on
// the synthetic labeled task with backpropagation, then run a
// fault-injection campaign against the *trained* classifier and compare
// its SDC probability with the untrained baseline — showing that the
// error-propagation results hold for genuinely trained weights, not just
// the range-calibrated synthetic ones.
package main

import (
	"fmt"

	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	const name = "ConvNet"
	const steps = 300

	// 1. Train on the synthetic 10-class task.
	fmt.Printf("training %s for %d SGD steps on the synthetic task...\n", name, steps)
	untrained := models.Build(name)
	trained := models.BuildTrained(name, steps, 7)
	fmt.Printf("held-out accuracy: untrained %.0f%%, trained %.0f%%\n",
		models.TrainedAccuracy(untrained, name, 50)*100,
		models.TrainedAccuracy(trained, name, 50)*100)

	// 2. Watch the loss curve on a short refresher run.
	tr := train.New(models.Build(name), 0.01, 0.9)
	samples := models.TrainingSamplesCapped(name, 160, 50_000)
	for epoch := 0; epoch < 5; epoch++ {
		loss, acc := tr.Train(samples, 8, 40, int64(epoch))
		fmt.Printf("  after %3d steps: loss %.3f, batch accuracy %.0f%%\n",
			(epoch+1)*40, loss, acc*100)
	}

	// 3. Fault injection against trained vs untrained weights.
	dt := numeric.Fx32RB10
	inputs := []*tensor.Tensor{models.InputFor(name, 0), models.InputFor(name, 1)}
	opts := faultinj.Options{N: 400, Seed: 11}
	pUntrained := faultinj.New(untrained, dt, inputs).Run(opts).Counts.Probability(sdc.SDC1)
	pTrained := faultinj.New(trained, dt, inputs).Run(opts).Counts.Probability(sdc.SDC1)
	fmt.Printf("\nSDC-1 probability under %s datapath faults:\n", dt)
	fmt.Printf("  untrained weights: %.2f%%\n", pUntrained*100)
	fmt.Printf("  trained weights:   %.2f%%\n", pTrained*100)
	fmt.Println("\ntrained classifiers are typically more confident, so small-deviation")
	fmt.Println("faults flip the top-1 less often — but the high-order-bit vulnerability")
	fmt.Println("(the paper's core result) is unchanged.")
}
