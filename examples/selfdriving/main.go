// Selfdriving reproduces the paper's Figure 2 scenario: a DNN-based object
// classifier in a self-driving car misclassifies an object because of a
// single soft error, potentially suppressing a braking action.
//
// The example searches a batch of frames for an injection whose outcome is
// an SDC-1, shows the golden-vs-faulty ranking flip, and then estimates how
// often such misclassifications occur (the motivation for the ISO 26262
// FIT budget analysis of §5).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

func main() {
	const netName = "ConvNet" // the CIFAR-10-like classifier: 10 object classes
	net := models.Build(netName)
	dt := numeric.Fx32RB10 // the paper's most vulnerable configuration

	// Treat the 10 CIFAR-like classes as road objects.
	classes := []string{
		"truck", "car", "pedestrian", "cyclist", "animal",
		"traffic light", "sign", "bird", "tree", "road",
	}

	// Drive through a few camera frames and inject one fault per frame.
	rng := rand.New(rand.NewSource(7))
	profile := accel.NewProfile(net, dt)
	fmt.Println("frame-by-frame fault injection (one soft error per frame):")
	misclassified := 0
	const frames = 40
	for f := 0; f < frames; f++ {
		input := models.InputFor(netName, f)
		golden := net.Forward(dt, input)
		site := profile.RandomSite(rng)
		fault := site.Fault
		faulty := net.ForwardFrom(dt, golden, site.Layer, &fault)
		o := sdc.Classify(net, golden, faulty)
		if o.Hit[sdc.SDC1] {
			misclassified++
			fmt.Printf("  frame %2d: %q -> %q  (fault: %s)\n",
				f, classes[golden.Top1()], classes[faulty.Top1()], site)
		}
	}
	fmt.Printf("%d/%d frames misclassified under one soft error each\n\n", misclassified, frames)

	// A small campaign estimates the SDC probability behind those flips.
	campaign := faultinj.New(net, dt, []*tensor.Tensor{models.InputFor(netName, 0)})
	report := campaign.Run(faultinj.Options{N: 400, Seed: 11})
	fmt.Printf("measured SDC-1 probability for %s/%s: %.2f%%\n",
		netName, dt, report.Counts.Probability(sdc.SDC1)*100)
	fmt.Println("a truck misread as a bird is exactly the Figure 2 failure the paper warns about:")
	fmt.Println("the braking decision downstream consumes only the top-ranked class.")
}
