// Hardening walks the Selective Latch Hardening flow of §6.3: measure the
// per-bit SDC sensitivity of a datapath word, quantify its asymmetry (β),
// and pick the cheapest mix of hardened latch designs that reaches a
// 100x FIT-reduction target.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/numeric"
)

func main() {
	const netName = "AlexNet"
	dt := numeric.Float16
	cfg := core.Config{Injections: 800, Inputs: 2, Seed: 3}

	// Per-bit sensitivity from a Figure 4 style campaign.
	f4 := core.Fig4(cfg, netName, dt)
	s := harden.Sensitivity(f4.Sensitivity())
	fmt.Printf("%s/%s per-bit FIT sensitivity (nonzero bits):\n", netName, dt)
	for bit := dt.Width() - 1; bit >= 0; bit-- {
		if s[bit] > 0 {
			fmt.Printf("  bit %2d (%v): %.3g\n", bit, dt.Classify(bit), s[bit])
		}
	}
	fmt.Printf("asymmetry β = %.2f (uniform word would be β -> 0)\n\n", s.Beta())

	// Design space: single-technique plans vs the optimal mix.
	const target = 100.0
	fmt.Printf("plans reaching a %gx whole-word FIT reduction:\n", target)
	for _, d := range harden.Designs {
		a, ok := harden.SingleDesignPlan(s, d, target)
		if !ok {
			fmt.Printf("  %-5s: unreachable (max %gx per latch)\n", d.Name, d.Reduction)
			continue
		}
		fmt.Printf("  %-5s only: %5.1f%% latch area overhead\n", d.Name, a.Area()*100)
	}
	multi, ok := harden.MultiPlan(s, target)
	if !ok {
		fmt.Println("  Multi: unreachable")
		return
	}
	fmt.Printf("  Multi     : %5.1f%% latch area overhead\n", multi.Area()*100)
	fmt.Println("\nMulti assignment per bit:")
	for bit := dt.Width() - 1; bit >= 0; bit-- {
		if d := multi[bit]; d != nil {
			fmt.Printf("  bit %2d -> %s\n", bit, d.Name)
		}
	}
	achieved := s.Total() / multi.ResidualFIT(s)
	if math.IsInf(achieved, 0) {
		fmt.Println("residual FIT is zero")
	} else {
		fmt.Printf("achieved reduction: %.0fx\n", achieved)
	}
}
