// Detectors deploys the paper's Symptom-based Error Detector (§6.2) on a
// network: learn per-layer activation ranges offline, add the 10% cushion,
// then check every inference's layer outputs against the bounds and
// measure precision/recall against injected faults.
package main

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

func main() {
	const netName = "AlexNet"
	dt := numeric.Float
	net := models.Build(netName)

	// Learning phase: profile fault-free executions on training images.
	train := make([]*tensor.Tensor, 12)
	for i := range train {
		train[i] = models.InputFor(netName, 1000+i)
	}
	det := detect.Learn(net, dt, train, detect.DefaultCushion)
	fmt.Printf("learned bounds for %s/%s (cushion %.0f%%):\n", netName, dt, detect.DefaultCushion*100)
	for b, r := range det.Bounds {
		fmt.Printf("  layer %d: [%.4g, %.4g]\n", b+1, r.Min, r.Max)
	}

	// Sanity: fault-free held-out inputs should not trigger alarms.
	held := make([]*tensor.Tensor, 6)
	for i := range held {
		held[i] = models.InputFor(netName, 2000+i)
	}
	fmt.Printf("false-alarm rate on held-out fault-free inputs: %.1f%%\n",
		det.FalseAlarmRate(net, held)*100)

	// Deployment: evaluate against a datapath fault campaign.
	campaign := faultinj.New(net, dt, []*tensor.Tensor{models.InputFor(netName, 0)})
	report := campaign.Run(faultinj.Options{
		N: 400, Seed: 5,
		Detector: func(e *network.Execution) bool { return det.Check(net, e) },
	})
	fmt.Printf("campaign: %d injections, %d SDC-causing\n",
		report.Detection.Total, report.Detection.TotalSDC)
	fmt.Printf("detector precision: %.2f%%\n", report.Detection.Precision()*100)
	fmt.Printf("detector recall:    %.2f%%\n", report.Detection.Recall()*100)
}
