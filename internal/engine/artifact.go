package engine

import (
	"encoding/json"
	"fmt"
	"os"
)

// StrataArtifact is the persisted per-stratum result of a stratified
// campaign: enough to seed the Neyman allocation of a later campaign over
// the same surface geometry without re-running a pilot (Options.Prior).
// Weights and tallies round-trip bit-exactly (HexFloats), so a
// prior-seeded campaign whose rates are unchanged builds the very same
// allocation table a fresh pilot would.
type StrataArtifact struct {
	// Surface and Net label the campaign the strata came from; prior
	// loading refuses a geometry mismatch, these are for humans and
	// tooling.
	Surface string `json:"surface,omitempty"`
	Net     string `json:"net,omitempty"`
	DType   string `json:"dtype,omitempty"`
	Buffer  string `json:"buffer,omitempty"`
	// N and PilotN record the source campaign's budget split.
	N      int `json:"n,omitempty"`
	PilotN int `json:"pilot_n,omitempty"`
	// Pilot holds the merged pilot strata — the allocation input a fresh
	// campaign of the same budget would use, and what Prior seeding
	// prefers.
	Pilot *StrataSummary `json:"pilot,omitempty"`
	// Total holds the full campaign's merged strata (pilot + main): more
	// trials per stratum, so a better rate estimate when the prior feeds a
	// larger follow-up campaign. Used when Pilot is absent.
	Total *StrataSummary `json:"total,omitempty"`
}

// Prior returns the strata a follow-up campaign should allocate from:
// the pilot when recorded, else the full-campaign strata.
func (a *StrataArtifact) Prior() *StrataSummary {
	if a.Pilot != nil {
		return a.Pilot
	}
	return a.Total
}

// WriteStrataArtifact atomically serializes the artifact to path.
func WriteStrataArtifact(path string, a *StrataArtifact) error {
	data, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return fmt.Errorf("engine: marshaling strata artifact: %v", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadStrataArtifact loads an artifact and validates that it carries
// usable strata.
func ReadStrataArtifact(path string) (*StrataArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a StrataArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("engine: parsing strata artifact %s: %v", path, err)
	}
	p := a.Prior()
	if p == nil {
		return nil, fmt.Errorf("engine: strata artifact %s carries no strata", path)
	}
	if p.Blocks <= 0 || p.Bits <= 0 || len(p.Weight) != p.Blocks*p.Bits || len(p.Counts) != p.Blocks*p.Bits {
		return nil, fmt.Errorf("engine: strata artifact %s has inconsistent stratum grid", path)
	}
	return &a, nil
}
