// Cross-engine determinism fixtures: the reports of the pre-refactor
// faultinj and eyeriss campaign engines, checked in as JSON under testdata/
// and regenerated only with -update. After the shared-engine refactor both
// surfaces delegate their shard/phase/merge control flow to this package;
// these tests prove the delegation introduced no behavioral drift — every
// report stays bit-for-bit identical across all six numeric formats, both
// sampling designs and S ∈ {1, 2, 7} shards, whether produced by Run or by
// the shard-order merge of standalone RunShard partials.
package engine_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

var update = flag.Bool("update", false, "rewrite testdata fixtures from the current engines")

// shardCounts is the S sweep every fixture covers.
var shardCounts = []int{1, 2, 7}

const (
	fixtureNet      = "ConvNet"
	datapathN       = 36
	datapathSeed    = 3
	bufferN         = 24
	bufferSeed      = 5
	fixtureInputs   = 2
	fixtureValueCap = 6
)

func fixtureInputsFor(name string) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, fixtureInputs)
	for i := range ins {
		ins[i] = models.InputFor(name, i)
	}
	return ins
}

func datapathOptions(sampling faultinj.SamplingMode, workers int) faultinj.Options {
	return faultinj.Options{
		N: datapathN, Seed: datapathSeed, Workers: workers,
		TrackValues: fixtureValueCap, TrackSpread: true,
		Sampling: sampling,
	}
}

func bufferOptions(sampling faultinj.SamplingMode, workers int) eyeriss.Options {
	return eyeriss.Options{N: bufferN, Seed: bufferSeed, Workers: workers, Sampling: sampling}
}

// checkFixture compares the marshaled report against testdata/<name>, or
// rewrites the fixture under -update.
func checkFixture(t *testing.T, name string, report any) {
	t.Helper()
	got, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		t.Fatalf("marshaling report: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from pre-refactor fixture %s (%d vs %d bytes)", name, len(got), len(want))
	}
}

// TestCrossEngineDatapathFixtures pins the datapath campaign reports:
// Campaign.Run at Workers=S, and the shard-order merge of RunShard(s, S),
// must both reproduce the checked-in pre-refactor report.
func TestCrossEngineDatapathFixtures(t *testing.T) {
	for _, dt := range numeric.Types {
		c := faultinj.New(models.Build(fixtureNet), dt, fixtureInputsFor(fixtureNet))
		for _, sampling := range []faultinj.SamplingMode{faultinj.SamplingUniform, faultinj.SamplingStratified} {
			for _, shards := range shardCounts {
				name := fmt.Sprintf("datapath_%s_%s_s%d.json", dt, sampling, shards)
				t.Run(name, func(t *testing.T) {
					opt := datapathOptions(sampling, shards)
					checkFixture(t, name, c.Run(opt))

					parts := make([]*faultinj.Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, opt)
					}
					checkFixture(t, name, faultinj.MergeReports(parts))
				})
			}
		}
	}
}

// TestCrossEngineBufferFixtures is the eyeriss half: Global Buffer
// campaigns across the same format × sampling × shard matrix.
func TestCrossEngineBufferFixtures(t *testing.T) {
	for _, dt := range numeric.Types {
		c := &eyeriss.Campaign{
			Build:  func() *network.Network { return models.Build(fixtureNet) },
			DType:  dt,
			Inputs: fixtureInputsFor(fixtureNet),
		}
		for _, sampling := range []faultinj.SamplingMode{faultinj.SamplingUniform, faultinj.SamplingStratified} {
			for _, shards := range shardCounts {
				name := fmt.Sprintf("buffer_global_%s_%s_s%d.json", dt, sampling, shards)
				t.Run(name, func(t *testing.T) {
					opt := bufferOptions(sampling, shards)
					checkFixture(t, name, c.Run(eyeriss.GlobalBuffer, opt))

					parts := make([]*eyeriss.Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, eyeriss.GlobalBuffer, opt)
					}
					checkFixture(t, name, eyeriss.MergeReports(parts))
				})
			}
		}
	}
}
