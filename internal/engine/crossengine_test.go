// Cross-engine determinism fixtures: the reports of every campaign
// surface, checked in as JSON under testdata/ and regenerated only with
// -update. The faultinj and eyeriss fixtures predate the shared-engine
// refactor — they prove the delegation introduced no behavioral drift —
// and the systolic fixtures pin each dataflow's surface from its birth:
// the weight-stationary pins predate the dataflow parameterization (they
// prove the refactor changed nothing), and the output-/input-stationary
// pins date from those dataflows' introduction. Every report stays
// bit-for-bit identical across all six numeric formats, both sampling
// designs and S ∈ {1, 2, 7} shards, whether produced by Run or by the
// shard-order merge of standalone RunShard partials; adding a surface is
// one surfaceFixtures table entry.
package engine_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/systolic"
	"repro/internal/tensor"
)

var update = flag.Bool("update", false, "rewrite testdata fixtures from the current engines")

// shardCounts is the S sweep every fixture covers.
var shardCounts = []int{1, 2, 7}

const (
	fixtureNet      = "ConvNet"
	datapathN       = 36
	datapathSeed    = 3
	bufferN         = 24
	bufferSeed      = 5
	systolicN       = 24
	systolicSeed    = 7
	fixtureInputs   = 2
	fixtureValueCap = 6
)

func fixtureInputsFor(name string) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, fixtureInputs)
	for i := range ins {
		ins[i] = models.InputFor(name, i)
	}
	return ins
}

// fixtureRunner produces one surface's full-campaign report and its
// shard-order merge of standalone shard partials, both of which must
// reproduce the checked-in fixture.
type fixtureRunner struct {
	run    func(sampling engine.SamplingMode, shards int) any
	merged func(sampling engine.SamplingMode, shards int) any
}

// surfaceFixtures is the per-surface fixture table: a name prefix (the
// fixture filename is <prefix>_<dtype>_<sampling>_s<shards>.json) and a
// per-format runner constructor. Adding a fault surface to the fixture
// sweep is one entry here.
var surfaceFixtures = []struct {
	prefix string
	make   func(dt numeric.Type) fixtureRunner
}{
	{
		prefix: "datapath",
		make: func(dt numeric.Type) fixtureRunner {
			c := faultinj.New(models.Build(fixtureNet), dt, fixtureInputsFor(fixtureNet))
			opt := func(sampling engine.SamplingMode, shards int) faultinj.Options {
				return faultinj.Options{
					N: datapathN, Seed: datapathSeed, Workers: shards,
					TrackValues: fixtureValueCap, TrackSpread: true,
					Sampling: sampling,
				}
			}
			return fixtureRunner{
				run: func(sampling engine.SamplingMode, shards int) any {
					return c.Run(opt(sampling, shards))
				},
				merged: func(sampling engine.SamplingMode, shards int) any {
					parts := make([]*faultinj.Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, opt(sampling, shards))
					}
					return faultinj.MergeReports(parts)
				},
			}
		},
	},
	{
		prefix: "buffer_global",
		make: func(dt numeric.Type) fixtureRunner {
			c := &eyeriss.Campaign{
				Build:  func() *network.Network { return models.Build(fixtureNet) },
				DType:  dt,
				Inputs: fixtureInputsFor(fixtureNet),
			}
			opt := func(sampling engine.SamplingMode, shards int) eyeriss.Options {
				return eyeriss.Options{N: bufferN, Seed: bufferSeed, Workers: shards, Sampling: sampling}
			}
			return fixtureRunner{
				run: func(sampling engine.SamplingMode, shards int) any {
					return c.Run(eyeriss.GlobalBuffer, opt(sampling, shards))
				},
				merged: func(sampling engine.SamplingMode, shards int) any {
					parts := make([]*eyeriss.Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, eyeriss.GlobalBuffer, opt(sampling, shards))
					}
					return eyeriss.MergeReports(parts)
				},
			}
		},
	},
	{
		prefix: "systolic",
		make:   func(dt numeric.Type) fixtureRunner { return systolicFixture(dt, systolic.WeightStationary) },
	},
	{
		prefix: "systolic_output",
		make:   func(dt numeric.Type) fixtureRunner { return systolicFixture(dt, systolic.OutputStationary) },
	},
	{
		prefix: "systolic_input",
		make:   func(dt numeric.Type) fixtureRunner { return systolicFixture(dt, systolic.InputStationary) },
	},
}

// systolicFixture builds the systolic surface's fixture runner for one
// dataflow; the weight-stationary prefix stays the bare "systolic" so the
// pre-parameterization pins keep their filenames (and stay byte-frozen).
func systolicFixture(dt numeric.Type, flow systolic.Dataflow) fixtureRunner {
	c := &systolic.Campaign{
		Build:  func() *network.Network { return models.Build(fixtureNet) },
		DType:  dt,
		Inputs: fixtureInputsFor(fixtureNet),
		Flow:   flow,
	}
	opt := func(sampling engine.SamplingMode, shards int) systolic.Options {
		return systolic.Options{N: systolicN, Seed: systolicSeed, Workers: shards, Sampling: sampling}
	}
	return fixtureRunner{
		run: func(sampling engine.SamplingMode, shards int) any {
			return c.Run(opt(sampling, shards))
		},
		merged: func(sampling engine.SamplingMode, shards int) any {
			parts := make([]*systolic.Report, shards)
			for s := 0; s < shards; s++ {
				parts[s] = c.RunShard(s, shards, opt(sampling, shards))
			}
			return systolic.MergeReports(parts)
		},
	}
}

// checkFixture compares the marshaled report against testdata/<name>, or
// rewrites the fixture under -update.
func checkFixture(t *testing.T, name string, report any) {
	t.Helper()
	got, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		t.Fatalf("marshaling report: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from pinned fixture %s (%d vs %d bytes)", name, len(got), len(want))
	}
}

// TestCrossEngineFixtures pins every surface's campaign reports:
// Campaign.Run at Workers=S, and the shard-order merge of RunShard(s, S),
// must both reproduce the checked-in fixture for every format × sampling
// × shard-count cell.
func TestCrossEngineFixtures(t *testing.T) {
	for _, sf := range surfaceFixtures {
		for _, dt := range numeric.Types {
			r := sf.make(dt)
			for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
				for _, shards := range shardCounts {
					name := fmt.Sprintf("%s_%s_%s_s%d.json", sf.prefix, dt, sampling, shards)
					t.Run(name, func(t *testing.T) {
						checkFixture(t, name, r.run(sampling, shards))
						checkFixture(t, name, r.merged(sampling, shards))
					})
				}
			}
		}
	}
}

// TestSurfaceConformance runs the generic Surface contract checker
// (engine.CheckSurface) against every surface adapter — each dataflow of
// the systolic surface, and each surface's multi-bit-upset variant —
// under both sampling designs: NewReport zero identity, merge
// associativity and commutativity over shard order, and the strata JSON
// round-trip. The datapath adapter runs without value tracking — capped
// value sampling is deliberately shard-order-sensitive and outside the
// monoid contract.
func TestSurfaceConformance(t *testing.T) {
	dt := numeric.Fx16RB10
	ins := fixtureInputsFor(fixtureNet)
	build := func() *network.Network { return models.Build(fixtureNet) }
	datapath := func(mbu int) func(t *testing.T, sampling engine.SamplingMode) {
		return func(t *testing.T, sampling engine.SamplingMode) {
			c := faultinj.New(models.Build(fixtureNet), dt, ins)
			s, eopt := c.Surface(faultinj.Options{N: datapathN, Seed: datapathSeed, Workers: 3, Sampling: sampling, MBU: mbu})
			engine.CheckSurface(t, s, eopt)
		}
	}
	buffer := func(mbu int) func(t *testing.T, sampling engine.SamplingMode) {
		return func(t *testing.T, sampling engine.SamplingMode) {
			c := &eyeriss.Campaign{Build: build, DType: dt, Inputs: ins}
			s, eopt := c.Surface(eyeriss.GlobalBuffer, eyeriss.Options{N: bufferN, Seed: bufferSeed, Workers: 3, Sampling: sampling, MBU: mbu})
			engine.CheckSurface(t, s, eopt)
		}
	}
	systolicFlow := func(flow systolic.Dataflow, mbu int) func(t *testing.T, sampling engine.SamplingMode) {
		return func(t *testing.T, sampling engine.SamplingMode) {
			c := &systolic.Campaign{Build: build, DType: dt, Inputs: ins, Flow: flow}
			s, eopt := c.Surface(systolic.Options{N: systolicN, Seed: systolicSeed, Workers: 3, Sampling: sampling, MBU: mbu})
			engine.CheckSurface(t, s, eopt)
		}
	}
	surfaces := []struct {
		name  string
		check func(t *testing.T, sampling engine.SamplingMode)
	}{
		{"datapath", datapath(0)},
		{"datapath_mbu3", datapath(3)},
		{"buffer", buffer(0)},
		{"buffer_mbu3", buffer(3)},
		{"systolic", systolicFlow(systolic.WeightStationary, 0)},
		{"systolic_mbu3", systolicFlow(systolic.WeightStationary, 3)},
		{"systolic_output", systolicFlow(systolic.OutputStationary, 0)},
		{"systolic_output_mbu3", systolicFlow(systolic.OutputStationary, 3)},
		{"systolic_input", systolicFlow(systolic.InputStationary, 0)},
		{"systolic_input_mbu3", systolicFlow(systolic.InputStationary, 3)},
	}
	for _, sf := range surfaces {
		for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
			t.Run(fmt.Sprintf("%s_%s", sf.name, sampling), func(t *testing.T) {
				sf.check(t, sampling)
			})
		}
	}
}
