// Masking-aware stratified site sampling. Most uniform injections land on
// sites whose faults are masked (§4 of the paper: low-order bits, heavily
// truncated positions), so at a fixed injection budget they contribute
// almost nothing but sampling noise to the SDC-probability estimates. The
// two-phase campaign implemented here keeps the estimates unbiased while
// concentrating the budget where the variance is:
//
//  1. Pilot: a seeded uniform campaign over a fraction of the budget
//     estimates the per-stratum SDC rate. Strata are keyed by (block,
//     flipped bit position) — for the datapath surface the paper-style
//     block and bit that dominate the masked/SDC split (Figs. 4 and 6),
//     for buffer surfaces the MAC layer and bit.
//  2. Main: the remaining budget is spread over the strata by Neyman
//     allocation, n_h ∝ W_h·√(p̃_h(1−p̃_h)), drawn uniformly within each
//     stratum.
//
// Outcomes are reweighted by the strata's population probabilities
// (Horvitz–Thompson), so report rates and stats CIs estimate exactly the
// quantities a uniform campaign measures — just with narrower intervals at
// equal budget. Everything is deterministic given (Seed, shard count): the
// allocation table is a pure function of the merged pilot, so distributed
// shards, checkpoint resumes and the single-process Run agree bit-for-bit.
package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/sdc"
	"repro/internal/stats"
)

// SamplingMode selects how a campaign draws fault sites.
type SamplingMode string

const (
	// SamplingUniform draws every site i.i.d. uniformly — the paper's
	// campaign and the default ("" behaves the same).
	SamplingUniform SamplingMode = "uniform"
	// SamplingStratified runs the two-phase pilot + Neyman-allocation
	// campaign described in the package comment above.
	SamplingStratified SamplingMode = "stratified"
)

// DefaultPilotN is the pilot budget a stratified campaign defaults to:
// one fifth of the total, at least 1.
func DefaultPilotN(n int) int {
	p := n / 5
	if p < 1 {
		p = 1
	}
	return p
}

// PilotBudget resolves a stratified campaign's pilot/main split: pilotN
// zero defaults to DefaultPilotN(n) and is clamped to n. A negative pilotN
// requests a pilot-free campaign — the allocation comes from a prior
// campaign's persisted strata (Options.Prior), so the whole budget is
// main-phase.
func PilotBudget(n, pilotN int) (pilot, main int) {
	if pilotN < 0 {
		return 0, n
	}
	if pilotN == 0 {
		pilotN = DefaultPilotN(n)
	}
	if pilotN > n {
		pilotN = n
	}
	return pilotN, n - pilotN
}

// HexFloats marshals a float64 slice as raw IEEE-754 bit patterns (hex
// strings): the distributed campaign service needs stratum weights to
// round-trip bit-exactly between workers and the coordinator, and decimal
// rendering cannot guarantee that.
type HexFloats []float64

// MarshalJSON implements json.Marshaler.
func (x HexFloats) MarshalJSON() ([]byte, error) {
	ss := make([]string, len(x))
	for i, v := range x {
		ss[i] = strconv.FormatUint(math.Float64bits(v), 16)
	}
	return json.Marshal(ss)
}

// UnmarshalJSON implements json.Unmarshaler.
func (x *HexFloats) UnmarshalJSON(data []byte) error {
	var ss []string
	if err := json.Unmarshal(data, &ss); err != nil {
		return err
	}
	out := make(HexFloats, len(ss))
	for i, s := range ss {
		bits, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return fmt.Errorf("engine: bad float bits %q: %v", s, err)
		}
		out[i] = math.Float64frombits(bits)
	}
	*x = out
	return nil
}

// StrataSummary carries the per-stratum state of a stratified campaign
// through shard reports. Strata are keyed by (block, flipped bit
// position); stratum h = block·Bits + bit.
type StrataSummary struct {
	// Blocks and Bits are the stratum grid dimensions.
	Blocks int `json:"blocks"`
	Bits   int `json:"bits"`
	// Weight[h] is stratum h's population probability under the surface's
	// uniform site sampling design. The weights of one campaign are
	// identical in every shard.
	Weight HexFloats `json:"weight"`
	// Counts[h] tallies the injections drawn in stratum h.
	Counts []sdc.Counts `json:"counts"`
	// SpreadSum/SpreadN accumulate the Table 5 final-block mismatch metric
	// per stratum when the campaign tracks spread, so SpreadRate can be
	// reweighted the same way the SDC rates are.
	SpreadSum []float64 `json:"spread_sum,omitempty"`
	SpreadN   []int     `json:"spread_n,omitempty"`
}

// NewStrata allocates an empty per-stratum tally grid for one shard
// report. weight must hold blocks·bits population probabilities; spread
// additionally allocates the per-stratum spread accumulators.
func NewStrata(blocks, bits int, weight HexFloats, spread bool) *StrataSummary {
	s := &StrataSummary{
		Blocks: blocks,
		Bits:   bits,
		Weight: weight,
		Counts: make([]sdc.Counts, blocks*bits),
	}
	if spread {
		s.SpreadSum = make([]float64, blocks*bits)
		s.SpreadN = make([]int, blocks*bits)
	}
	return s
}

// Clone deep-copies the summary.
func (s *StrataSummary) Clone() *StrataSummary {
	out := &StrataSummary{
		Blocks: s.Blocks,
		Bits:   s.Bits,
		Weight: append(HexFloats(nil), s.Weight...),
		Counts: append([]sdc.Counts(nil), s.Counts...),
	}
	if s.SpreadSum != nil {
		out.SpreadSum = append([]float64(nil), s.SpreadSum...)
		out.SpreadN = append([]int(nil), s.SpreadN...)
	}
	return out
}

// Merge pools another summary of the same campaign (equal dimensions and
// bit-identical weights) into s.
func (s *StrataSummary) Merge(s2 *StrataSummary) {
	if s.Blocks != s2.Blocks || s.Bits != s2.Bits {
		panic(fmt.Sprintf("engine: merging strata %dx%d with %dx%d",
			s.Blocks, s.Bits, s2.Blocks, s2.Bits))
	}
	for h := range s.Counts {
		if s.Weight[h] != s2.Weight[h] {
			panic(fmt.Sprintf("engine: merging strata with mismatched weight for stratum %d", h))
		}
		s.Counts[h].Merge(s2.Counts[h])
	}
	if s2.SpreadSum != nil {
		if s.SpreadSum == nil {
			s.SpreadSum = make([]float64, len(s.Counts))
			s.SpreadN = make([]int, len(s.Counts))
		}
		for h := range s2.SpreadSum {
			s.SpreadSum[h] += s2.SpreadSum[h]
			s.SpreadN[h] += s2.SpreadN[h]
		}
	}
}

// Estimate assembles the Horvitz–Thompson estimator of the uniform-design
// probability of criterion k from the pooled strata.
func (s *StrataSummary) Estimate(k sdc.Kind) stats.Stratified {
	parts := make([]stats.Proportion, len(s.Counts))
	for h := range s.Counts {
		parts[h] = stats.Proportion{
			Successes: s.Counts[h].Hits[k],
			Trials:    s.Counts[h].DefinedTrials[k],
		}
	}
	return stats.Stratified{Weights: s.Weight, Parts: parts}
}

// BlockEstimate is the per-block analogue of Estimate: within a block,
// bits are equally likely under uniform sampling, so the block-conditional
// stratum weights are uniform over the block's bit strata.
func (s *StrataSummary) BlockEstimate(block int, k sdc.Kind) stats.Stratified {
	w := make([]float64, s.Bits)
	parts := make([]stats.Proportion, s.Bits)
	for bit := 0; bit < s.Bits; bit++ {
		h := block*s.Bits + bit
		w[bit] = 1 / float64(s.Bits)
		parts[bit] = stats.Proportion{
			Successes: s.Counts[h].Hits[k],
			Trials:    s.Counts[h].DefinedTrials[k],
		}
	}
	return stats.Stratified{Weights: w, Parts: parts}
}

// BlockSpread returns the reweighted Table 5 spread rate for one block:
// the equal-weight mean over the block's sampled bit strata of their
// per-stratum mean spread. Under uniform sampling every bit of a block is
// equally likely, so this estimates the same quantity as the raw mean a
// uniform campaign computes.
func (s *StrataSummary) BlockSpread(block int) float64 {
	var sum float64
	sampled := 0
	for bit := 0; bit < s.Bits; bit++ {
		h := block*s.Bits + bit
		if s.SpreadN[h] == 0 {
			continue
		}
		sum += s.SpreadSum[h] / float64(s.SpreadN[h])
		sampled++
	}
	if sampled == 0 {
		return 0
	}
	return sum / float64(sampled)
}

// StratumTable is the deterministic main-phase allocation of a stratified
// campaign: how many of the MainN post-pilot injections each stratum
// receives. It is a pure function of the merged pilot strata and MainN
// (BuildStratumTable), which is what lets distributed workers, checkpoint
// resumes and single-process runs agree bit-for-bit — the coordinator
// serializes the table into each main-phase lease, and any participant can
// recompute an identical one from the same pilot.
type StratumTable struct {
	Blocks int       `json:"blocks"`
	Bits   int       `json:"bits"`
	MainN  int       `json:"main_n"`
	Weight HexFloats `json:"weight"`
	// Alloc[h] is stratum h's share of the MainN injections; it sums to
	// MainN (zero-weight strata always get zero).
	Alloc []int `json:"alloc"`

	once sync.Once
	cum  []int
}

// Stratum maps main-phase injection index j ∈ [0, MainN) to its stratum's
// (block, bit): the allocation laid out contiguously in stratum order.
func (t *StratumTable) Stratum(j int) (block, bit int) {
	t.once.Do(func() {
		t.cum = make([]int, len(t.Alloc))
		c := 0
		for h, a := range t.Alloc {
			c += a
			t.cum[h] = c
		}
	})
	if j < 0 || j >= t.MainN {
		panic(fmt.Sprintf("engine: main-phase injection %d out of range [0,%d)", j, t.MainN))
	}
	h := sort.SearchInts(t.cum, j+1)
	return h / t.Bits, h % t.Bits
}

// BuildStratumTable computes the Neyman allocation of mainN injections
// from pooled pilot strata: n_h ∝ W_h·√(p̃_h(1−p̃_h)) on the SDC-1 rate.
// p̃_h shrinks the stratum's pilot rate toward the pooled pilot rate with
// two pseudo-trials — an empirical-Bayes prior reflecting the paper's §4
// finding that most strata are near-fully masked. Shrinking toward the
// pooled rate (rather than ½) is what lets the allocation actually
// concentrate: a stratum the pilot saw as fully masked scores close to the
// campaign-wide σ, not the maximal ½, so the few high-variance strata
// receive most of the budget. Every stratum with positive weight gets at
// least one injection when mainN allows (the estimator needs every stratum
// represented); fractional shares round by largest remainder with ties
// broken by stratum index, so the table is a deterministic function of
// (strata, mainN).
func BuildStratumTable(s *StrataSummary, mainN int) *StratumTable {
	if s == nil {
		panic("engine: BuildStratumTable needs pilot strata")
	}
	nStrata := len(s.Counts)
	t := &StratumTable{
		Blocks: s.Blocks,
		Bits:   s.Bits,
		MainN:  mainN,
		Weight: append(HexFloats(nil), s.Weight...),
		Alloc:  make([]int, nStrata),
	}
	// Pooled pilot SDC-1 rate, lightly smoothed so a fully masked pilot
	// still yields a positive prior (and thus positive Neyman scores).
	var poolX, poolN float64
	for h := 0; h < nStrata; h++ {
		poolX += float64(s.Counts[h].Hits[sdc.SDC1])
		poolN += float64(s.Counts[h].DefinedTrials[sdc.SDC1])
	}
	prior := (poolX + 0.5) / (poolN + 1)
	score := make([]float64, nStrata)
	var total float64
	eligible := 0
	for h := 0; h < nStrata; h++ {
		w := s.Weight[h]
		if w <= 0 {
			continue
		}
		eligible++
		n := float64(s.Counts[h].DefinedTrials[sdc.SDC1])
		x := float64(s.Counts[h].Hits[sdc.SDC1])
		pt := (x + 2*prior) / (n + 2)
		score[h] = w * math.Sqrt(pt*(1-pt))
		total += score[h]
	}
	if mainN <= 0 || eligible == 0 {
		return t
	}
	rem := mainN
	if mainN >= eligible {
		for h := 0; h < nStrata; h++ {
			if s.Weight[h] > 0 {
				t.Alloc[h] = 1
			}
		}
		rem = mainN - eligible
	}
	if rem == 0 || total <= 0 {
		return t
	}
	type frac struct {
		h int
		f float64
	}
	var fracs []frac
	used := 0
	for h := 0; h < nStrata; h++ {
		if score[h] <= 0 {
			continue
		}
		share := float64(rem) * score[h] / total
		base := int(share)
		t.Alloc[h] += base
		used += base
		fracs = append(fracs, frac{h, share - float64(base)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].h < fracs[j].h
	})
	// used ≥ rem − len(fracs) (each floor loses under 1), so the wrap is
	// only a guard against float-sum drift.
	for i := 0; i < rem-used; i++ {
		t.Alloc[fracs[i%len(fracs)].h]++
	}
	return t
}

// BuildSiteStratumTable computes the main-phase allocation of a stratified
// campaign running under a site evaluation mode: the main budget is
// mainUnits site draw units (each covering every bit of one site), so
// strata collapse to blocks — a site draw fixes the block, and all of the
// block's bit strata receive one sample from it. The per-block Neyman score
// pools the pilot's (block, bit) scores, Σ_bits W_h·√(p̃_h(1−p̃_h)), with
// the same empirical-Bayes smoothing BuildStratumTable applies, so a block
// whose every bit the pilot saw as masked still scores near the pooled σ.
// The result is a Bits=1 table (Stratum(u) returns (block, 0)) and a
// deterministic function of (strata, mainUnits): min-1 per eligible block,
// largest-remainder rounding, ties by block index.
func BuildSiteStratumTable(s *StrataSummary, mainUnits int) *StratumTable {
	if s == nil {
		panic("engine: BuildSiteStratumTable needs pilot strata")
	}
	t := &StratumTable{
		Blocks: s.Blocks,
		Bits:   1,
		MainN:  mainUnits,
		Weight: make(HexFloats, s.Blocks),
		Alloc:  make([]int, s.Blocks),
	}
	var poolX, poolN float64
	for h := range s.Counts {
		poolX += float64(s.Counts[h].Hits[sdc.SDC1])
		poolN += float64(s.Counts[h].DefinedTrials[sdc.SDC1])
	}
	prior := (poolX + 0.5) / (poolN + 1)
	score := make([]float64, s.Blocks)
	var total float64
	eligible := 0
	for b := 0; b < s.Blocks; b++ {
		var w, sc float64
		for bit := 0; bit < s.Bits; bit++ {
			h := b*s.Bits + bit
			wh := s.Weight[h]
			if wh <= 0 {
				continue
			}
			w += wh
			n := float64(s.Counts[h].DefinedTrials[sdc.SDC1])
			x := float64(s.Counts[h].Hits[sdc.SDC1])
			pt := (x + 2*prior) / (n + 2)
			sc += wh * math.Sqrt(pt*(1-pt))
		}
		t.Weight[b] = w
		if w > 0 {
			eligible++
			score[b] = sc
			total += sc
		}
	}
	if mainUnits <= 0 || eligible == 0 {
		return t
	}
	rem := mainUnits
	if mainUnits >= eligible {
		for b := 0; b < s.Blocks; b++ {
			if t.Weight[b] > 0 {
				t.Alloc[b] = 1
			}
		}
		rem = mainUnits - eligible
	}
	if rem == 0 || total <= 0 {
		return t
	}
	type frac struct {
		h int
		f float64
	}
	var fracs []frac
	used := 0
	for b := 0; b < s.Blocks; b++ {
		if score[b] <= 0 {
			continue
		}
		share := float64(rem) * score[b] / total
		base := int(share)
		t.Alloc[b] += base
		used += base
		fracs = append(fracs, frac{b, share - float64(base)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].h < fracs[j].h
	})
	for i := 0; i < rem-used; i++ {
		t.Alloc[fracs[i%len(fracs)].h]++
	}
	return t
}
