package engine

import (
	"math/rand"
	"testing"

	"repro/internal/sdc"
)

// randomStrata builds a pooled pilot summary with random tallies.
func randomStrata(rng *rand.Rand, blocks, bits int) *StrataSummary {
	w := make(HexFloats, blocks*bits)
	per := 1 / float64(blocks*bits)
	for h := range w {
		w[h] = per
	}
	s := NewStrata(blocks, bits, w, false)
	for h := range s.Counts {
		n := rng.Intn(30)
		x := 0
		if n > 0 {
			x = rng.Intn(n + 1)
		}
		s.Counts[h].Trials = n
		for k := range s.Counts[h].DefinedTrials {
			s.Counts[h].DefinedTrials[k] = n
			s.Counts[h].Hits[k] = 0
		}
		s.Counts[h].Hits[sdc.SDC1] = x
	}
	return s
}

// TestBuildSiteStratumTableInvariants fuzzes the per-block site allocation:
// the table must be a Bits=1 grid whose Alloc sums exactly to mainUnits,
// gives every positive-weight block at least one unit when the budget
// allows, never allocates to zero-weight blocks, and whose block weights
// are the pooled bit-stratum weights.
func TestBuildSiteStratumTableInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		blocks := 1 + rng.Intn(6)
		bits := []int{16, 32, 64}[rng.Intn(3)]
		s := randomStrata(rng, blocks, bits)
		// Occasionally zero out one block's weights.
		dead := -1
		if blocks > 1 && rng.Intn(3) == 0 {
			dead = rng.Intn(blocks)
			for bit := 0; bit < bits; bit++ {
				s.Weight[dead*bits+bit] = 0
			}
		}
		mainUnits := rng.Intn(200)
		tab := BuildSiteStratumTable(s, mainUnits)

		if tab.Bits != 1 || tab.Blocks != blocks || tab.MainN != mainUnits {
			t.Fatalf("trial %d: table dims %d/%d/%d", trial, tab.Blocks, tab.Bits, tab.MainN)
		}
		sum := 0
		alive := 0
		for b, a := range tab.Alloc {
			sum += a
			if b == dead && a != 0 {
				t.Fatalf("trial %d: zero-weight block %d allocated %d units", trial, b, a)
			}
			if tab.Weight[b] > 0 {
				alive++
			}
		}
		if sum != mainUnits {
			t.Fatalf("trial %d: alloc sums to %d, want %d", trial, sum, mainUnits)
		}
		if mainUnits >= alive {
			for b, a := range tab.Alloc {
				if tab.Weight[b] > 0 && a == 0 {
					t.Fatalf("trial %d: eligible block %d got no units (budget %d ≥ %d)", trial, b, mainUnits, alive)
				}
			}
		}
		// Stratum() must cover every unit and stay within the allocation.
		seen := make([]int, blocks)
		for u := 0; u < mainUnits; u++ {
			block, bit := tab.Stratum(u)
			if bit != 0 {
				t.Fatalf("trial %d: site table returned bit %d", trial, bit)
			}
			seen[block]++
		}
		for b := range seen {
			if seen[b] != tab.Alloc[b] {
				t.Fatalf("trial %d: block %d covered %d times, alloc %d", trial, b, seen[b], tab.Alloc[b])
			}
		}
	}
}

// TestBuildSiteStratumTableDeterministic pins the table as a pure function
// of (strata, mainUnits).
func TestBuildSiteStratumTableDeterministic(t *testing.T) {
	s := randomStrata(rand.New(rand.NewSource(67)), 5, 16)
	a := BuildSiteStratumTable(s, 137)
	b := BuildSiteStratumTable(s.Clone(), 137)
	for h := range a.Alloc {
		if a.Alloc[h] != b.Alloc[h] {
			t.Fatalf("alloc diverged at block %d: %d vs %d", h, a.Alloc[h], b.Alloc[h])
		}
	}
}
