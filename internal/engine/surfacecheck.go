// Cross-surface conformance: the generic contract every Surface adapter
// must satisfy for the engine's orchestration to be sound. The checks are
// pure report algebra — they hold for any surface whose report merge is a
// commutative monoid over shard partials with NewReport as identity —
// plus the serialization round-trips the distributed campaign layer
// depends on. Each surface package runs CheckSurface in its tests; the
// cross-surface suite in this package's tests runs it against every
// registered adapter, so adding a fourth surface is one table entry.
package engine

import (
	"bytes"
	"encoding/json"
)

// TestingT is the minimal testing interface CheckSurface reports through;
// *testing.T satisfies it.
type TestingT interface {
	Helper()
	Fatalf(format string, args ...any)
}

// CheckSurface verifies the Surface contract for one adapter under one
// set of engine options:
//
//   - NewReport is a two-sided identity for Merge: folding a fresh report
//     in before, between or after shard partials never changes the result.
//   - Merge is associative and commutative over shard partials: the
//     left fold, right fold, and reversed fold of the S shard reports all
//     serialize identically, and all equal Run (the engine's canonical
//     shard-order merge).
//   - Strata round-trip: the strata summary of a stratified report
//     survives a JSON encode/decode bit-for-bit, and Strata returns nil
//     for uniform reports.
//
// Surfaces whose reports carry order-sensitive extras (e.g. capped value
// sampling) must be checked with those features disabled — the engine
// only ever merges in shard order, so only the monoid core is load-
// bearing there; commutativity is what licenses the coordinator's
// out-of-order partial aggregation displays.
func CheckSurface[R any](t TestingT, s Surface[R], opt Options) {
	t.Helper()
	enc := func(label string, r R) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("surfacecheck: marshaling %s: %v", label, err)
		}
		return b
	}

	full := Run[R](s, opt)
	want := enc("Run report", full)

	shards := EffectiveShards(opt.Workers, DrawUnits(opt.N, opt.SiteBits))
	parts := make([]R, shards)
	for i := range parts {
		parts[i] = RunShard[R](s, i, shards, opt)
	}

	// Zero identity: ε ⊕ p0 ⊕ ε ⊕ p1 ⊕ … ⊕ ε == Run.
	acc := s.NewReport()
	for _, p := range parts {
		s.Merge(acc, p)
		s.Merge(acc, s.NewReport())
	}
	if got := enc("identity-interleaved fold", acc); !bytes.Equal(got, want) {
		t.Fatalf("surfacecheck: NewReport is not a Merge identity:\n got %s\nwant %s", got, want)
	}

	// Associativity: the right fold p0 ⊕ (p1 ⊕ (… ⊕ pS)) must match the
	// engine's left fold. Merge mutates dst, so each level folds the
	// suffix into a fresh report first.
	var rightFold func(ps []R) R
	rightFold = func(ps []R) R {
		out := s.NewReport()
		s.Merge(out, ps[0])
		if len(ps) > 1 {
			s.Merge(out, rightFold(ps[1:]))
		}
		return out
	}
	if got := enc("right fold", rightFold(parts)); !bytes.Equal(got, want) {
		t.Fatalf("surfacecheck: Merge is not associative over shard order:\n got %s\nwant %s", got, want)
	}

	// Commutativity: the reversed fold pS ⊕ … ⊕ p0 must match too.
	rev := s.NewReport()
	for i := len(parts) - 1; i >= 0; i-- {
		s.Merge(rev, parts[i])
	}
	if got := enc("reversed fold", rev); !bytes.Equal(got, want) {
		t.Fatalf("surfacecheck: Merge is not commutative over shard order:\n got %s\nwant %s", got, want)
	}

	// Strata presence and round-trip.
	sum := s.Strata(full)
	if opt.Sampling != SamplingStratified {
		if sum != nil {
			t.Fatalf("surfacecheck: uniform report carries strata")
		}
		return
	}
	if sum == nil {
		t.Fatalf("surfacecheck: stratified report has no strata")
	}
	b1, err := json.Marshal(sum)
	if err != nil {
		t.Fatalf("surfacecheck: marshaling strata: %v", err)
	}
	var back StrataSummary
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("surfacecheck: unmarshaling strata: %v", err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("surfacecheck: re-marshaling strata: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("surfacecheck: strata summary does not survive a JSON round-trip:\n got %s\nwant %s", b2, b1)
	}
	if back.Blocks != sum.Blocks || back.Bits != sum.Bits || len(back.Counts) != len(sum.Counts) {
		t.Fatalf("surfacecheck: strata dims changed across the round-trip")
	}
}
