// Package engine is the shared campaign core behind both of the paper's
// fault surfaces: datapath latches (internal/faultinj, §4–5) and the
// Eyeriss buffer hierarchy (internal/eyeriss, §6). Both surfaces run the
// same statistical methodology — deterministic strided sharding, uniform
// or two-phase stratified (pilot → Neyman-allocated main) site sampling
// over a (block, bit) stratum grid, and a shard-order merge that makes a
// distributed campaign bit-identical to a single-process run. This package
// implements that methodology once; the surfaces supply only what is
// surface-specific (site enumeration, golden execution, single-injection
// outcomes) through the Surface interface.
package engine
