package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// MainSeedSalt separates a stratified campaign's main-phase PRNG streams
// from the pilot's: both phases of shard s derive from the campaign seed,
// but must not replay the same site sequence.
const MainSeedSalt = 500_000_009

// EvalMode selects how a surface evaluates the bit dimension of its fault
// space. The legacy per-bit mode draws an independent (site, bit) pair per
// injection; the site modes draw one site per group of Width consecutive
// injections and evaluate every bit position of that site — either by
// Width scalar replays (the bit-identity reference) or by one bit-parallel
// replay with an analytical masking pre-screen. Both site modes produce
// bit-identical reports to each other; they are a different (deterministic,
// still unbiased) sampling design from the legacy mode.
type EvalMode string

const (
	// EvalPerBit is the legacy design: every injection draws its own
	// (site, bit) uniformly. "" selects it.
	EvalPerBit EvalMode = ""
	// EvalSiteScalar groups injections by site and evaluates each bit with
	// a scalar chain replay — the reference the bit-plane evaluator must
	// match bit-for-bit.
	EvalSiteScalar EvalMode = "site-scalar"
	// EvalSiteBitPlane groups injections by site and evaluates all bits in
	// one bit-plane chain replay behind an analytical masking pre-screen.
	EvalSiteBitPlane EvalMode = "site-bitplane"
)

// DrawUnits returns the number of site draw units an n-injection phase
// needs under a site evaluation mode with siteBits bits per site (the last
// unit may cover fewer injections when siteBits does not divide n).
// siteBits zero is the legacy per-bit design: one draw unit per injection.
func DrawUnits(n, siteBits int) int {
	if siteBits <= 0 {
		return n
	}
	return (n + siteBits - 1) / siteBits
}

// Phase parameterizes one phase of one shard of a campaign. A uniform
// campaign is a single phase with N = Options.N and no strata; a
// stratified campaign is a pilot phase (uniform draws, strata recorded,
// value budget spent — pilot samples are the campaign's only uniform ones,
// keeping value scatters unbiased) followed by a main phase (draws
// dictated by the allocation table, distinct PRNG salt, input cycling
// continued from the pilot's global injection index).
type Phase struct {
	// N is the phase's total injection budget across all shards.
	N int
	// SeedSalt offsets the shard's PRNG seed (MainSeedSalt for main
	// phases, 0 otherwise).
	SeedSalt int64
	// InputBase offsets the global injection index used to cycle inputs
	// (the pilot budget, for main phases).
	InputBase int
	// Table, when non-nil, dictates each injection's stratum (main phase).
	Table *StratumTable
	// Strata records per-stratum tallies into the phase report.
	Strata bool
	// Values lets the phase spend the campaign's value-sample budget.
	Values bool
	// SiteBits, when positive, switches the phase to site-grouped
	// evaluation: the phase's N injections are covered by
	// DrawUnits(N, SiteBits) site draw units, shards stride over draw
	// units (not injections), InputBase counts draw units, and a main
	// phase's Table allocates draw units over per-block strata.
	SiteBits int
}

// UniformPhase is the whole of a non-stratified campaign.
func UniformPhase(n int) Phase { return Phase{N: n, Values: true} }

// PilotPhase is the uniform, strata-recording pilot of a stratified
// campaign.
func PilotPhase(pilotN int) Phase { return Phase{N: pilotN, Strata: true, Values: true} }

// MainPhase is the table-driven main phase of a stratified campaign.
func MainPhase(pilotN, mainN int, table *StratumTable) Phase {
	return Phase{N: mainN, SeedSalt: MainSeedSalt, InputBase: pilotN, Table: table, Strata: true}
}

// Surface is what a fault surface supplies to the engine: report algebra
// and the per-injection execution of one phase of one shard. Everything
// else — shard fan-out, phase sequencing, pilot merging, Neyman table
// construction, and the canonical merge association — is the engine's.
//
// R is the surface's report type. Merge must fold src into dst exactly as
// the surface's exported merge does (shard-order folds of float
// accumulators are order-sensitive, and the engine's call order is part of
// the bit-identity contract). RunPhase must be safe for concurrent calls
// with distinct shard indices, draw all randomness from a PRNG seeded only
// by (campaign seed, shard, ph.SeedSalt), and cover injections
// shard, shard+of, shard+2·of, … of the phase's N-injection budget.
type Surface[R any] interface {
	// NewReport allocates an empty report with the campaign's dimensions.
	NewReport() R
	// Merge folds src into dst.
	Merge(dst, src R)
	// Strata extracts the per-stratum tallies of a strata-recording
	// phase's report (used to build the main-phase allocation).
	Strata(r R) *StrataSummary
	// RunPhase executes one phase of one shard serially and returns its
	// partial report.
	RunPhase(shard, of int, ph Phase) R
}

// Options configures the engine's shard/phase orchestration. Everything
// surface-specific (seeds, selectors, tracking) lives in the surface
// adapter; the engine only needs the budget and the sampling design.
type Options struct {
	// N is the campaign's total injection budget.
	N int
	// Workers caps the shard fan-out of Run; NumCPU when zero.
	Workers int
	// Sampling selects uniform (default) or two-phase stratified sampling.
	Sampling SamplingMode
	// PilotN is the stratified pilot budget: DefaultPilotN(N) when zero,
	// clamped to N; negative requests a pilot-free prior-allocated
	// campaign (see Prior).
	PilotN int
	// Prior, when non-nil, seeds the Neyman allocation from a previous
	// campaign's strata instead of running a pilot: the whole budget is
	// main-phase (PilotN is forced negative) and the allocation table is
	// BuildStratumTable(Prior, N). The prior must come from a campaign of
	// the same surface geometry (equal stratum grid and weights).
	Prior *StrataSummary
	// OnPilot, when non-nil, observes the merged pilot strata of a
	// stratified campaign right after the allocation table is built — the
	// hook campaign artifacts use to persist strata for later Prior reuse.
	// Not called for prior-allocated campaigns (no pilot runs).
	OnPilot func(*StrataSummary)
	// SiteBits, when positive, selects site-grouped evaluation: shards
	// stride over DrawUnits(N, SiteBits) site draw units and stratified
	// allocation tables are per-block site tables (BuildSiteStratumTable).
	// Surfaces set it to their format width under a site EvalMode.
	SiteBits int
}

// phase assembles the phase descriptors of this campaign, carrying the
// site-evaluation geometry: shard striding, input cycling and main-phase
// allocation all count draw units under a site mode.
func (opt Options) uniformPhase() Phase {
	return Phase{N: opt.N, Values: true, SiteBits: opt.SiteBits}
}

func (opt Options) pilotPhase(pilotN int) Phase {
	return Phase{N: pilotN, Strata: true, Values: true, SiteBits: opt.SiteBits}
}

func (opt Options) mainPhase(pilotN, mainN int, table *StratumTable) Phase {
	return Phase{
		N: mainN, SeedSalt: MainSeedSalt,
		InputBase: DrawUnits(pilotN, opt.SiteBits),
		Table:     table, Strata: true, SiteBits: opt.SiteBits,
	}
}

// buildTable derives the main-phase allocation from pooled pilot strata:
// per-(block, bit) injection allocation in the legacy design, per-block
// site draw-unit allocation under a site evaluation mode.
func (opt Options) buildTable(s *StrataSummary, mainN int) *StratumTable {
	if opt.SiteBits > 0 {
		return BuildSiteStratumTable(s, DrawUnits(mainN, opt.SiteBits))
	}
	return BuildStratumTable(s, mainN)
}

// budget resolves the pilot/main split, forcing the pilot-free split when
// a prior allocation is supplied.
func (opt Options) budget() (pilot, main int) {
	pilotN := opt.PilotN
	if opt.Prior != nil {
		pilotN = -1
	}
	return PilotBudget(opt.N, pilotN)
}

// EffectiveShards returns the shard count Run actually uses for a worker
// request: at least one, at most one per injection.
func EffectiveShards(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes the campaign and aggregates its report. It is exactly the
// shard-order merge of RunShard(s, S) for s in [0, S) with
// S = EffectiveShards(opt.Workers, opt.N), with the shards running on
// goroutines — the reference a distributed run of the same S shards is
// bit-identical to.
func Run[R any](s Surface[R], opt Options) R {
	shards := EffectiveShards(opt.Workers, DrawUnits(opt.N, opt.SiteBits))
	if opt.Sampling == SamplingStratified {
		return runStratified(s, opt, shards)
	}
	parts := runPhaseShards(s, shards, opt.uniformPhase())
	total := s.NewReport()
	for _, r := range parts {
		s.Merge(total, r)
	}
	return total
}

// runPhaseShards fans one phase out over all shards on goroutines.
func runPhaseShards[R any](s Surface[R], shards int, ph Phase) []R {
	parts := make([]R, shards)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			parts[sh] = s.RunPhase(sh, shards, ph)
		}(sh)
	}
	wg.Wait()
	return parts
}

// runStratified executes the two-phase campaign: every pilot shard in
// parallel, the allocation table from the shard-order-merged pilot, then
// every main shard in parallel. The canonical merge order pre-merges each
// shard's (pilot, main) pair, then folds the pairs in shard order —
// exactly what merging standalone RunShard partials produces, and what the
// distributed coordinator's FinalReport reconstructs from its slot ledger,
// so distributed == solo bit-for-bit. Prior-allocated campaigns skip the
// pilot entirely; each shard's pair degenerates to its main report.
func runStratified[R any](s Surface[R], opt Options, shards int) R {
	pilotN, mainN := opt.budget()
	var pilots []R
	var table *StratumTable
	if opt.Prior != nil {
		table = opt.buildTable(opt.Prior, mainN)
	} else {
		if opt.PilotN < 0 {
			panic("engine: pilot-free campaign needs Options.Prior")
		}
		pilots = runPhaseShards(s, shards, opt.pilotPhase(pilotN))
		ps := mergedStrata(s, pilots)
		table = opt.buildTable(ps, mainN)
		if opt.OnPilot != nil {
			opt.OnPilot(ps)
		}
	}
	mains := runPhaseShards(s, shards, opt.mainPhase(pilotN, mainN, table))

	total := s.NewReport()
	for sh := 0; sh < shards; sh++ {
		// Pre-merge each shard's (pilot, main) pair before folding, exactly
		// like a standalone RunShard does — float accumulators (spread sums)
		// are order-sensitive, so the fold association must be identical in
		// every path that reconstructs the campaign report.
		pair := s.NewReport()
		if pilots != nil {
			s.Merge(pair, pilots[sh])
		}
		s.Merge(pair, mains[sh])
		s.Merge(total, pair)
	}
	return total
}

// mergedStrata folds phase reports in shard order and extracts the pooled
// strata.
func mergedStrata[R any](s Surface[R], parts []R) *StrataSummary {
	total := s.NewReport()
	for _, r := range parts {
		s.Merge(total, r)
	}
	return s.Strata(total)
}

// RunShard runs one shard of an of-way deterministic partition of the
// campaign, serially, and returns its partial report. The partition is by
// injection index stride — shard s covers injections s, s+of, s+2·of, … of
// the N-injection campaign, drawn from a PRNG stream seeded by (campaign
// seed, s) — so every injection of the campaign belongs to exactly one
// shard. Merging all of shards' reports in shard order is bit-identical to
// Run with Workers=of, which is how Run is implemented; shards can
// therefore execute anywhere — goroutines, processes, machines — and still
// reproduce the single-process campaign exactly.
func RunShard[R any](s Surface[R], shard, of int, opt Options) R {
	checkShard(shard, of)
	if opt.Sampling != SamplingStratified {
		return s.RunPhase(shard, of, opt.uniformPhase())
	}
	pilotN, mainN := opt.budget()
	r := s.NewReport()
	var table *StratumTable
	if opt.Prior != nil {
		table = opt.buildTable(opt.Prior, mainN)
	} else {
		if opt.PilotN < 0 {
			panic("engine: pilot-free campaign needs Options.Prior")
		}
		// A standalone stratified shard needs the allocation table, which
		// is a function of *every* pilot shard — so recompute them all
		// locally (redundant across shards but deterministic, hence still
		// bit-identical to Run). The distributed campaign service avoids
		// the redundancy: its coordinator leases pilot and main phases
		// separately (PilotShard/MainShard) and ships the table in the
		// main-phase lease.
		pp := opt.pilotPhase(pilotN)
		pilots := make([]R, of)
		for sh := 0; sh < of; sh++ {
			pilots[sh] = s.RunPhase(sh, of, pp)
		}
		table = opt.buildTable(mergedStrata(s, pilots), mainN)
		s.Merge(r, pilots[shard])
	}
	s.Merge(r, s.RunPhase(shard, of, opt.mainPhase(pilotN, mainN, table)))
	return r
}

// PilotShard runs one shard of a stratified campaign's uniform pilot
// phase. Merging all of shards' pilot reports in shard order yields the
// pilot BuildStratumTable expects.
func PilotShard[R any](s Surface[R], shard, of int, opt Options) R {
	checkShard(shard, of)
	pilotN, _ := opt.budget()
	return s.RunPhase(shard, of, opt.pilotPhase(pilotN))
}

// MainShard runs one shard of a stratified campaign's allocated main phase
// under the given table (BuildStratumTable of the merged pilot, or of a
// prior campaign's strata). The full campaign report is the per-shard
// interleaved merge pilot₀ ⊕ main₀ ⊕ pilot₁ ⊕ main₁ ⊕ … — bit-identical
// to Run.
func MainShard[R any](s Surface[R], shard, of int, table *StratumTable, opt Options) R {
	checkShard(shard, of)
	if table == nil {
		panic("engine: MainShard needs a stratum table")
	}
	pilotN, mainN := opt.budget()
	if want := DrawUnits(mainN, opt.SiteBits); table.MainN != want {
		panic(fmt.Sprintf("engine: stratum table allocates %d draw units, campaign main phase has %d",
			table.MainN, want))
	}
	return s.RunPhase(shard, of, opt.mainPhase(pilotN, mainN, table))
}

func checkShard(shard, of int) {
	if of < 1 || shard < 0 || shard >= of {
		panic(fmt.Sprintf("engine: shard %d of %d out of range", shard, of))
	}
}

// Detection tallies a symptom detector's verdicts against SDC-1 ground
// truth for the paper's §6.2 precision/recall evaluation. Both surfaces
// embed it in their reports.
type Detection struct {
	// Total is the number of injections evaluated.
	Total int
	// DetectedSDC counts SDC-causing faults the detector flagged.
	DetectedSDC int
	// DetectedBenign counts benign faults the detector (wrongly) flagged.
	DetectedBenign int
	// TotalSDC counts all SDC-causing faults.
	TotalSDC int
}

// Tally folds one injection's verdict: sdc1 is the SDC-1 ground truth,
// det the detector's flag.
func (d *Detection) Tally(sdc1, det bool) {
	d.Total++
	if sdc1 {
		d.TotalSDC++
		if det {
			d.DetectedSDC++
		}
	} else if det {
		d.DetectedBenign++
	}
}

// Merge combines detector tallies.
func (d *Detection) Merge(e Detection) {
	d.Total += e.Total
	d.DetectedSDC += e.DetectedSDC
	d.DetectedBenign += e.DetectedBenign
	d.TotalSDC += e.TotalSDC
}

// Precision implements the paper's definition: 1 − (benign faults flagged
// as SDC) / (faults injected).
func (d Detection) Precision() float64 {
	if d.Total == 0 {
		return 1
	}
	return 1 - float64(d.DetectedBenign)/float64(d.Total)
}

// Recall is (SDC-causing faults detected) / (SDC-causing faults).
func (d Detection) Recall() float64 {
	if d.TotalSDC == 0 {
		return 1
	}
	return float64(d.DetectedSDC) / float64(d.TotalSDC)
}
