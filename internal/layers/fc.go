package layers

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// FCLayer is a fully-connected layer: out[o] = bias[o] + Σ_i W[o][i]*in[i].
// Its input is flattened, and every output is connected to every input —
// which is why faults in FC layers spread to all downstream ACTs at once
// (§5.1.4 of the paper).
type FCLayer struct {
	LayerName string
	In, Out   int
	Weights   []float64 // len Out*In, row-major [out][in]
	Bias      []float64 // len Out
}

// NewFC constructs a fully-connected layer with zeroed weights.
func NewFC(name string, in, out int) *FCLayer {
	return &FCLayer{
		LayerName: name,
		In:        in, Out: out,
		Weights: make([]float64, out*in),
		Bias:    make([]float64, out),
	}
}

// Name implements Layer.
func (l *FCLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FCLayer) Kind() Kind { return FC }

// OutShape implements Layer.
func (l *FCLayer) OutShape(in tensor.Shape) tensor.Shape {
	if in.Elems() != l.In {
		panic(fmt.Sprintf("fc %s: input size %d, want %d", l.LayerName, in.Elems(), l.In))
	}
	return tensor.Shape{C: l.Out, H: 1, W: 1}
}

// MACs implements Layer.
func (l *FCLayer) MACs(in tensor.Shape) int64 {
	l.OutShape(in) // validate
	return int64(l.Out) * int64(l.In)
}

// MACChainLen returns the accumulation-chain length per output element.
func (l *FCLayer) MACChainLen() int { return l.In }

// Forward implements Layer.
func (l *FCLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(l.OutShape(in.Shape))
	dt := ctx.DType
	f := ctx.Fault

	// Both operand sets are reused (the input by every output neuron, the
	// weights across inferences); pre-quantize them once — bit-identical,
	// since Quantize is idempotent. A caller-supplied QIn (aligned with in,
	// per the Context contract) short-circuits the input quantization.
	qin := ctx.QIn
	if qin == nil {
		qin = quantizeSlice(dt, in.Data)
	}
	qw, qb := ctx.quantizedParams(l, l.Weights, l.Bias)
	mac := dt.MACFunc()

	run := func(o0, o1 int) {
		for o := o0; o < o1; o++ {
			faultHere := f != nil && f.OutputIndex == o
			acc := qb[o]
			row := qw[o*l.In : (o+1)*l.In]
			if !faultHere {
				for i, w := range row {
					acc = mac(acc, w, qin[i])
				}
			} else {
				for i, w := range row {
					if f.MACStep == i {
						// w is pre-quantized: the fault perturbs the
						// datapath-width operand, exactly as in CONV.
						acc = macFaulty(ctx, f, acc, w, qin[i])
					} else {
						acc = mac(acc, w, qin[i])
					}
				}
			}
			out.Data[o] = acc
		}
	}
	parallelRanges(ctx.Workers, l.Out, run)
	return out
}

// ForwardDelta implements DeltaForwarder. FC is the degenerate case of the
// receptive-field bound: every output neuron reads every input, so a single
// changed input dirties all Out accumulation chains, and a bit-exact chain
// replay must run in full (quantized accumulation is order-dependent) — the
// recompute is always the dense pass. The value of delta-stepping through
// FC is the re-shrink: bit-comparing the recomputed outputs against
// goldenOut trims the changed set to the neurons that actually moved —
// often none, which re-empties the set and masks the fault before any
// further layer runs.
func (l *FCLayer) ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	if len(changed) == 0 {
		return goldenOut, nil
	}
	if lc := ctx.chainEntry(l, l.Out, l.In, l.In); lc != nil {
		return l.deltaChained(ctx, lc, in, goldenOut, changed)
	}
	return denseDelta(ctx, l, in, goldenOut)
}

// deltaChained is the cached-chain variant of the FC recompute: the changed
// input indices are the changed tap steps of every output chain at once, so
// the per-neuron replay covers only the diverged suffix (see chainReplay)
// instead of the full dot product. Bit-identical to denseDelta.
func (l *FCLayer) deltaChained(ctx *Context, lc *layerChains, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	quant := ctx.DType.QuantFunc()
	steps, xs := lc.steps[:0], lc.xs[:0]
	steps = append(steps, changed...)
	if !sort.IntsAreSorted(steps) {
		sort.Ints(steps)
	}
	qin := ctx.QIn
	for _, idx := range steps {
		if qin != nil {
			xs = append(xs, qin[idx])
		} else {
			xs = append(xs, quant(in.Data[idx]))
		}
	}
	lc.steps, lc.xs = steps, xs
	qw, _ := ctx.Quant.params(ctx.DType, l, l.Weights, l.Bias)

	out := goldenOut
	var outChanged []int
	for o := 0; o < l.Out; o++ {
		if !lc.filled[o] {
			l.fillChain(ctx, lc, o)
		}
		nv := ctx.DType.ChainReplay(lc.prefix[o*(l.In+1):], lc.prods[o*l.In:], qw, o*l.In, steps, xs, l.In)
		if !bitsEqual(nv, goldenOut.Data[o]) {
			if out == goldenOut {
				out = goldenOut.Clone()
			}
			out.Data[o] = nv
			outChanged = append(outChanged, o)
		}
	}
	return out, outChanged
}

// fillChain computes the golden chain internals of output neuron o from
// the context's golden input — the same decomposed operations Forward
// performs, so prefix[In] lands bit-identical to the golden output.
func (l *FCLayer) fillChain(ctx *Context, lc *layerChains, o int) {
	qw, qb := ctx.Quant.params(ctx.DType, l, l.Weights, l.Bias)
	quant, accf := ctx.DType.QuantFunc(), ctx.DType.AccFunc()
	gin := ctx.GoldenIn
	prefix := lc.prefix[o*(l.In+1):]
	prods := lc.prods[o*l.In:]
	base := o * l.In

	acc := qb[o]
	prefix[0] = acc
	for i := 0; i < l.In; i++ {
		p := quant(qw[base+i] * gin[i])
		prods[i] = p
		acc = accf(acc, p)
		prefix[i+1] = acc
	}
	lc.filled[o] = true
}

// ForwardElement implements ElementForwarder: it recomputes the dot
// product of one output neuron, bit-identical to the corresponding element
// of Forward's output for every numeric format and fault target.
func (l *FCLayer) ForwardElement(ctx *Context, in *tensor.Tensor, outputIndex int) float64 {
	l.OutShape(in.Shape) // validate
	if outputIndex < 0 || outputIndex >= l.Out {
		panic(fmt.Sprintf("fc %s: output index %d out of range [0,%d)", l.LayerName, outputIndex, l.Out))
	}
	dt := ctx.DType
	f := ctx.Fault

	var qw []float64
	acc := dt.Quantize(l.Bias[outputIndex])
	if ctx.Quant != nil {
		var qb []float64
		qw, qb = ctx.Quant.params(dt, l, l.Weights, l.Bias)
		acc = qb[outputIndex]
	}

	base := outputIndex * l.In
	quant, mac := dt.QuantFunc(), dt.MACFunc()
	for i := 0; i < l.In; i++ {
		var x float64
		if ctx.QIn != nil {
			x = ctx.QIn[i]
		} else {
			x = quant(in.Data[i])
		}
		var w float64
		if qw != nil {
			w = qw[base+i]
		} else {
			w = quant(l.Weights[base+i])
		}
		if f != nil && f.OutputIndex == outputIndex && f.MACStep == i {
			acc = macFaulty(ctx, f, acc, w, x)
		} else {
			acc = mac(acc, w, x)
		}
	}
	return acc
}
