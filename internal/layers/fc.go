package layers

import (
	"fmt"

	"repro/internal/tensor"
)

// FCLayer is a fully-connected layer: out[o] = bias[o] + Σ_i W[o][i]*in[i].
// Its input is flattened, and every output is connected to every input —
// which is why faults in FC layers spread to all downstream ACTs at once
// (§5.1.4 of the paper).
type FCLayer struct {
	LayerName string
	In, Out   int
	Weights   []float64 // len Out*In, row-major [out][in]
	Bias      []float64 // len Out
}

// NewFC constructs a fully-connected layer with zeroed weights.
func NewFC(name string, in, out int) *FCLayer {
	return &FCLayer{
		LayerName: name,
		In:        in, Out: out,
		Weights: make([]float64, out*in),
		Bias:    make([]float64, out),
	}
}

// Name implements Layer.
func (l *FCLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FCLayer) Kind() Kind { return FC }

// OutShape implements Layer.
func (l *FCLayer) OutShape(in tensor.Shape) tensor.Shape {
	if in.Elems() != l.In {
		panic(fmt.Sprintf("fc %s: input size %d, want %d", l.LayerName, in.Elems(), l.In))
	}
	return tensor.Shape{C: l.Out, H: 1, W: 1}
}

// MACs implements Layer.
func (l *FCLayer) MACs(in tensor.Shape) int64 {
	l.OutShape(in) // validate
	return int64(l.Out) * int64(l.In)
}

// MACChainLen returns the accumulation-chain length per output element.
func (l *FCLayer) MACChainLen() int { return l.In }

// Forward implements Layer.
func (l *FCLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(l.OutShape(in.Shape))
	dt := ctx.DType
	f := ctx.Fault

	// The input vector is reused by every output neuron; pre-quantize it
	// once (bit-identical, since Quantize is idempotent).
	qin := make([]float64, len(in.Data))
	for i, v := range in.Data {
		qin[i] = dt.Quantize(v)
	}

	for o := 0; o < l.Out; o++ {
		faultHere := f != nil && f.OutputIndex == o
		acc := dt.Quantize(l.Bias[o])
		row := l.Weights[o*l.In : (o+1)*l.In]
		if !faultHere {
			for i, w := range row {
				acc = dt.MACq(acc, dt.Quantize(w), qin[i])
			}
		} else {
			for i, w := range row {
				if f.MACStep == i {
					acc = macFaulty(ctx, f, acc, w, qin[i])
				} else {
					acc = dt.MACq(acc, dt.Quantize(w), qin[i])
				}
			}
		}
		out.Data[o] = acc
	}
	return out
}
