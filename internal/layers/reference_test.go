package layers

import (
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

// refConv is an independent, obviously-correct convolution used to
// cross-check ConvLayer.Forward: it materializes the padded input and
// performs the textbook quadruple loop in float64.
func refConv(l *ConvLayer, in *tensor.Tensor) *tensor.Tensor {
	os := l.OutShape(in.Shape)
	padded := tensor.New(tensor.Shape{C: in.Shape.C, H: in.Shape.H + 2*l.Pad, W: in.Shape.W + 2*l.Pad})
	for c := 0; c < in.Shape.C; c++ {
		for h := 0; h < in.Shape.H; h++ {
			for w := 0; w < in.Shape.W; w++ {
				padded.Set(c, h+l.Pad, w+l.Pad, in.At(c, h, w))
			}
		}
	}
	out := tensor.New(os)
	for oc := 0; oc < l.OutC; oc++ {
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				acc := l.Bias[oc]
				for ic := 0; ic < l.InC; ic++ {
					for kh := 0; kh < l.KH; kh++ {
						for kw := 0; kw < l.KW; kw++ {
							acc += l.Weights[l.WeightIndex(oc, ic, kh, kw)] *
								padded.At(ic, oh*l.Stride+kh, ow*l.Stride+kw)
						}
					}
				}
				out.Set(oc, oh, ow, acc)
			}
		}
	}
	return out
}

func TestConvMatchesReferenceImplementation(t *testing.T) {
	// Property: over random geometries and values, the production conv in
	// DOUBLE (exact arithmetic) matches the textbook implementation
	// bit-for-bit.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		size := k + stride + rng.Intn(6)

		l := NewConv("c", inC, outC, k, stride, pad)
		for i := range l.Weights {
			l.Weights[i] = rng.NormFloat64()
		}
		for i := range l.Bias {
			l.Bias[i] = rng.NormFloat64()
		}
		in := tensor.New(tensor.Shape{C: inC, H: size, W: size})
		for i := range in.Data {
			in.Data[i] = rng.NormFloat64()
		}

		got := l.Forward(&Context{DType: numeric.Double}, in)
		want := refConv(l, in)
		if got.Shape != want.Shape {
			t.Fatalf("trial %d: shape %v vs %v", trial, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d (inC=%d outC=%d k=%d s=%d p=%d size=%d): out[%d] = %v, want %v",
					trial, inC, outC, k, stride, pad, size, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestPoolEdgeCases(t *testing.T) {
	// Window larger than the input: single output equal to the max.
	l := NewPool("p", 5, 5)
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 3, W: 3}, []float64{1, 2, 3, 4, 9, 5, 6, 7, 8})
	out := l.Forward(&Context{DType: numeric.Double}, in)
	if out.Shape.Elems() != 1 || out.Data[0] != 9 {
		t.Errorf("oversized pool: %v (%v)", out.Data, out.Shape)
	}
	// Non-dividing stride truncates like integer pooling arithmetic.
	l2 := NewPool("p2", 2, 2)
	in2 := tensor.New(tensor.Shape{C: 1, H: 5, W: 5})
	out2 := l2.Forward(&Context{DType: numeric.Double}, in2)
	if out2.Shape.H != 2 || out2.Shape.W != 2 {
		t.Errorf("5x5 pool(2,2) shape = %v, want 2x2", out2.Shape)
	}
}

func TestLRNSmallChannelCount(t *testing.T) {
	// Fewer channels than the window: the window clips at the edges.
	l := NewLRN("n")
	in := tensor.New(tensor.Shape{C: 2, H: 1, W: 1})
	in.Data[0], in.Data[1] = 1, 2
	out := l.Forward(&Context{DType: numeric.Double}, in)
	for i, v := range out.Data {
		if v <= 0 || v > in.Data[i] {
			t.Errorf("LRN out[%d] = %v, want in (0, %v]", i, v, in.Data[i])
		}
	}
}
