package layers

import (
	"math"

	"repro/internal/tensor"
)

// LRNLayer implements AlexNet-style across-channel Local Response
// Normalization:
//
//	b[c] = a[c] / (K + Alpha/N * Σ_{c'∈window} a[c']²)^Beta
//
// Because every output averages a window of neighbouring channels, LRN
// pulls an errant activation back toward its fault-free neighbours — the
// masking effect behind the low layer-1/2 SDC probability of AlexNet and
// CaffeNet (§5.1.4, Fig. 7).
type LRNLayer struct {
	LayerName string
	N         int     // channel window size
	Alpha     float64 // scale
	Beta      float64 // exponent
	K         float64 // bias
}

// NewLRN constructs an LRN layer with the AlexNet defaults
// (n=5, alpha=1e-4, beta=0.75, k=2) unless overridden by the caller.
func NewLRN(name string) *LRNLayer {
	return &LRNLayer{LayerName: name, N: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Name implements Layer.
func (l *LRNLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *LRNLayer) Kind() Kind { return LRN }

// OutShape implements Layer.
func (l *LRNLayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *LRNLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *LRNLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	dt := ctx.DType
	half := l.N / 2
	for c := 0; c < in.Shape.C; c++ {
		lo, hi := c-half, c+half
		if lo < 0 {
			lo = 0
		}
		if hi >= in.Shape.C {
			hi = in.Shape.C - 1
		}
		for h := 0; h < in.Shape.H; h++ {
			for w := 0; w < in.Shape.W; w++ {
				var ss float64
				for cc := lo; cc <= hi; cc++ {
					v := in.At(cc, h, w)
					ss += v * v
				}
				denom := math.Pow(l.K+l.Alpha/float64(l.N)*ss, l.Beta)
				v := in.At(c, h, w) / denom
				if math.IsNaN(v) {
					v = 0
				}
				out.Set(c, h, w, dt.Quantize(v))
			}
		}
	}
	return out
}

// SoftmaxLayer converts raw scores into confidence values that sum to one.
// It appears at the end of AlexNet, CaffeNet and ConvNet; NiN omits it, so
// NiN outputs rankings without confidence scores (§4.1).
type SoftmaxLayer struct {
	LayerName string
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *SoftmaxLayer { return &SoftmaxLayer{LayerName: name} }

// Name implements Layer.
func (l *SoftmaxLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *SoftmaxLayer) Kind() Kind { return Softmax }

// OutShape implements Layer.
func (l *SoftmaxLayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *SoftmaxLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer. The standard max-shifted formulation keeps the
// exponentials finite even when a fault has driven a score to an extreme
// value.
func (l *SoftmaxLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	max := math.Inf(-1)
	for _, v := range in.Data {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) || math.IsNaN(max) {
		// Degenerate input (all NaN): uniform distribution.
		u := 1 / float64(len(in.Data))
		for i := range out.Data {
			out.Data[i] = u
		}
		return out
	}
	var sum float64
	exps := make([]float64, len(in.Data))
	for i, v := range in.Data {
		if math.IsNaN(v) {
			exps[i] = 0
			continue
		}
		exps[i] = math.Exp(v - max)
		sum += exps[i]
	}
	for i := range out.Data {
		out.Data[i] = exps[i] / sum
	}
	return out
}
