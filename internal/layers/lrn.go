package layers

import (
	"math"

	"repro/internal/tensor"
)

// LRNLayer implements AlexNet-style across-channel Local Response
// Normalization:
//
//	b[c] = a[c] / (K + Alpha/N * Σ_{c'∈window} a[c']²)^Beta
//
// Because every output averages a window of neighbouring channels, LRN
// pulls an errant activation back toward its fault-free neighbours — the
// masking effect behind the low layer-1/2 SDC probability of AlexNet and
// CaffeNet (§5.1.4, Fig. 7).
type LRNLayer struct {
	LayerName string
	N         int     // channel window size
	Alpha     float64 // scale
	Beta      float64 // exponent
	K         float64 // bias
}

// NewLRN constructs an LRN layer with the AlexNet defaults
// (n=5, alpha=1e-4, beta=0.75, k=2) unless overridden by the caller.
func NewLRN(name string) *LRNLayer {
	return &LRNLayer{LayerName: name, N: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Name implements Layer.
func (l *LRNLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *LRNLayer) Kind() Kind { return LRN }

// OutShape implements Layer.
func (l *LRNLayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *LRNLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *LRNLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	for c := 0; c < in.Shape.C; c++ {
		for h := 0; h < in.Shape.H; h++ {
			for w := 0; w < in.Shape.W; w++ {
				out.Set(c, h, w, l.normalize(ctx, in, c, h, w))
			}
		}
	}
	return out
}

// normalize computes one LRN output element.
func (l *LRNLayer) normalize(ctx *Context, in *tensor.Tensor, c, h, w int) float64 {
	half := l.N / 2
	lo, hi := c-half, c+half
	if lo < 0 {
		lo = 0
	}
	if hi >= in.Shape.C {
		hi = in.Shape.C - 1
	}
	var ss float64
	for cc := lo; cc <= hi; cc++ {
		v := in.At(cc, h, w)
		ss += v * v
	}
	denom := math.Pow(l.K+l.Alpha/float64(l.N)*ss, l.Beta)
	v := in.At(c, h, w) / denom
	if math.IsNaN(v) {
		v = 0
	}
	return ctx.DType.Quantize(v)
}

// ForwardDelta implements DeltaForwarder. A changed input element at
// channel c feeds the normalization windows of channels c±N/2 at the same
// spatial position only, so at most N output elements need recomputing.
// Past the Context.DenseCutoff density the dense pass takes over
// bit-identically.
func (l *LRNLayer) ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	if float64(len(changed)) > ctx.denseCutoff()*float64(in.Shape.Elems()) {
		return denseDelta(ctx, l, in, goldenOut)
	}
	half := l.N / 2
	out := goldenOut
	var outChanged []int
	recomputed := make(map[int]bool, len(changed)*l.N)
	for _, idx := range changed {
		c, h, w := in.Coords(idx)
		lo, hi := c-half, c+half
		if lo < 0 {
			lo = 0
		}
		if hi >= in.Shape.C {
			hi = in.Shape.C - 1
		}
		for cc := lo; cc <= hi; cc++ {
			oi := in.Index(cc, h, w)
			if recomputed[oi] {
				continue
			}
			recomputed[oi] = true
			nv := l.normalize(ctx, in, cc, h, w)
			if !bitsEqual(nv, goldenOut.Data[oi]) {
				if out == goldenOut {
					out = goldenOut.Clone()
				}
				out.Data[oi] = nv
				outChanged = append(outChanged, oi)
			}
		}
	}
	return out, outChanged
}

// SoftmaxLayer converts raw scores into confidence values that sum to one.
// It appears at the end of AlexNet, CaffeNet and ConvNet; NiN omits it, so
// NiN outputs rankings without confidence scores (§4.1).
type SoftmaxLayer struct {
	LayerName string
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *SoftmaxLayer { return &SoftmaxLayer{LayerName: name} }

// Name implements Layer.
func (l *SoftmaxLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *SoftmaxLayer) Kind() Kind { return Softmax }

// OutShape implements Layer.
func (l *SoftmaxLayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *SoftmaxLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer. The standard max-shifted formulation keeps the
// exponentials finite even when a fault has driven a score to an extreme
// value.
func (l *SoftmaxLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	max := math.Inf(-1)
	for _, v := range in.Data {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) || math.IsNaN(max) {
		// Degenerate input (all NaN): uniform distribution.
		u := 1 / float64(len(in.Data))
		for i := range out.Data {
			out.Data[i] = u
		}
		return out
	}
	var sum float64
	exps := make([]float64, len(in.Data))
	for i, v := range in.Data {
		if math.IsNaN(v) {
			exps[i] = 0
			continue
		}
		exps[i] = math.Exp(v - max)
		sum += exps[i]
	}
	for i := range out.Data {
		out.Data[i] = exps[i] / sum
	}
	return out
}
