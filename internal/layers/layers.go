// Package layers implements the forward passes of the DNN layer types used
// by the paper's networks (Table 2): convolution (CONV), fully-connected
// (FC), max pooling (POOL), ReLU activation, local response normalization
// (LRN) and softmax. Every arithmetic result is quantized through the
// active numeric format, so the software model computes exactly what an
// accelerator datapath of that width would compute.
//
// CONV and FC layers — the layers executed on the PE array — additionally
// accept a single-fault injection descriptor that corrupts one latch of one
// MAC operation, the paper's datapath fault model.
package layers

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Kind identifies a layer type.
type Kind int

const (
	// Conv is a 2-D convolution layer.
	Conv Kind = iota
	// FC is a fully-connected layer.
	FC
	// Pool is a max-pooling layer.
	Pool
	// ReLU is a rectified-linear activation layer.
	ReLU
	// LRN is a local response (across-channel) normalization layer.
	LRN
	// Softmax converts scores to confidence values.
	Softmax
)

// String returns the paper's name for the layer kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case FC:
		return "FC"
	case Pool:
		return "POOL"
	case ReLU:
		return "ReLU"
	case LRN:
		return "LRN"
	case Softmax:
		return "SOFTMAX"
	}
	return fmt.Sprintf("layers.Kind(%d)", int(k))
}

// Target selects which datapath latch of the ALU (Fig. 1b) a fault
// corrupts.
type Target int

const (
	// TargetWeight corrupts the weight operand latch of one MAC.
	TargetWeight Target = iota
	// TargetInput corrupts the activation operand latch of one MAC.
	TargetInput
	// TargetProduct corrupts the multiplier output latch of one MAC.
	TargetProduct
	// TargetAccum corrupts the accumulator latch after one MAC.
	TargetAccum

	// NumTargets is the number of datapath latch targets.
	NumTargets
)

// String names the latch target.
func (t Target) String() string {
	switch t {
	case TargetWeight:
		return "weight-latch"
	case TargetInput:
		return "input-latch"
	case TargetProduct:
		return "product-latch"
	case TargetAccum:
		return "accum-latch"
	}
	return fmt.Sprintf("layers.Target(%d)", int(t))
}

// Fault describes one transient single-bit datapath fault: during the
// computation of output element OutputIndex of the faulted layer, at MAC
// step MACStep of its accumulation chain, bit Bit of the Target latch is
// inverted. The fault is transient — it corrupts exactly one read, matching
// the paper's separation of datapath faults from (reused) buffer faults.
type Fault struct {
	OutputIndex int
	MACStep     int
	Target      Target
	Bit         int

	// Width is the number of adjacent bits inverted starting at Bit.
	// Zero or one means a single-event upset; larger values model a
	// multi-bit upset spanning [Bit, Bit+Width) of the target word.
	Width int

	// Applied records whether the forward pass actually consumed the
	// fault; campaigns use it to assert every injected fault was activated.
	Applied bool
}

// Context carries the numeric format and optional fault into a forward
// pass.
type Context struct {
	DType numeric.Type
	// Fault, when non-nil, is consumed by the layer the caller passes it
	// to. The network runner routes it to the faulted layer only.
	Fault *Fault
	// Quant, when non-nil, caches quantized layer parameters across
	// forward passes (bit-identical; see QuantCache).
	Quant *QuantCache
	// QIn, when non-nil, is the pre-quantized Data slice of the input
	// tensor passed to ForwardElement (see QuantizeSlice), aligned
	// index-for-index with it. Element forwarders read activations from it
	// instead of quantizing per tap — bit-identical because Quantize is
	// idempotent. Injection batches set it to amortize input quantization
	// across a group of faults sharing one (input, layer).
	QIn []float64
	// Workers, when > 1, lets CONV/FC layers split their independent
	// output-element loops across that many goroutines. Results are
	// bit-identical to the serial pass.
	Workers int
	// Chains, when non-nil, caches golden accumulation-chain partials and
	// tap products per MAC layer (see ChainCache). Combined with GoldenIn
	// it lets ForwardDelta replay only the diverged suffix of each affected
	// chain, bit-identically. Not safe for concurrent use.
	Chains *ChainCache
	// GoldenIn, when non-nil, is the pre-quantized golden counterpart of
	// the input tensor passed to ForwardDelta, aligned index-for-index: the
	// input differs from it exactly at the `changed` indices. Delta walkers
	// set it per layer from the golden execution; it feeds ChainCache
	// fills.
	GoldenIn []float64
	// DenseCutoff is the changed-set density above which DeltaForwarder
	// implementations abandon the sparse receptive-field recompute and fall
	// back to the dense forward pass plus a full bit-compare (the two are
	// bit-identical; only the cost model differs). Zero selects
	// DefaultSparseDensityCutoff; campaigns tune it through
	// faultinj.Options.SparseDensityCutoff.
	DenseCutoff float64
}

// DefaultSparseDensityCutoff is the density at which sparse recompute
// stops paying: once a perturbation cone covers this fraction of a layer's
// output plane, recomputing the cone element-by-element costs about as many
// MACs as the dense pass, and the dense pass amortizes quantization and
// loop overhead better. Picked by cmd/benchtrack sweeps on ConvNet/AlexNet
// (the crossover is flat between ~0.4 and ~0.8 on every format).
const DefaultSparseDensityCutoff = 0.5

// denseCutoff resolves the effective density threshold of this context.
func (ctx *Context) denseCutoff() float64 {
	if ctx.DenseCutoff > 0 {
		return ctx.DenseCutoff
	}
	return DefaultSparseDensityCutoff
}

// denseDelta is the density-adaptive fallback shared by every
// DeltaForwarder: it runs the layer's dense forward pass on the faulty
// input and re-derives the changed set by bit-comparing against the golden
// output. The result is bit-identical to the sparse recompute — both
// reproduce Forward exactly — so implementations switch between the two
// freely on cost alone.
func denseDelta(ctx *Context, l Layer, in, goldenOut *tensor.Tensor) (*tensor.Tensor, []int) {
	dense := l.Forward(ctx, in)
	var changed []int
	for i, v := range dense.Data {
		if !bitsEqual(v, goldenOut.Data[i]) {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		// Bit-identical everywhere: alias the golden tensor so masked
		// propagation keeps sharing memory with the golden execution.
		return goldenOut, nil
	}
	return dense, changed
}

// Layer is one computation stage of a network.
type Layer interface {
	// Name returns the instance name (e.g. "conv1").
	Name() string
	// Kind returns the layer type.
	Kind() Kind
	// OutShape returns the output shape for an input shape.
	OutShape(in tensor.Shape) tensor.Shape
	// Forward computes the layer output. A non-nil ctx.Fault is injected
	// into the matching MAC of CONV/FC layers and ignored by other kinds.
	Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor
	// MACs returns the number of multiply-accumulate operations the layer
	// performs for an input shape (0 for non-MAC layers). It defines the
	// datapath fault-site space.
	MACs(in tensor.Shape) int64
}

// ElementForwarder is implemented by MAC layers (CONV, FC) that can
// recompute one output element in isolation — the accumulation chain of a
// single PE. Under the single-transient-fault model a datapath fault
// perturbs exactly one output element, so the faulty layer output is the
// golden output with that one element replaced; recomputing it costs
// MACChainLen() MACs instead of Elems(out)*MACChainLen().
type ElementForwarder interface {
	Layer
	// ForwardElement returns output element outputIndex for the given
	// input, bit-identical to Forward's value at that index, consuming
	// ctx.Fault when it targets outputIndex.
	ForwardElement(ctx *Context, in *tensor.Tensor, outputIndex int) float64
}

// DeltaForwarder is implemented by layers that can advance a sparse input
// perturbation without re-executing the dense layer: the element-local
// post-ops (ReLU, POOL, LRN across its normalization window) and the MAC
// layers (CONV via its receptive-field cone, FC via a full recompute that
// still re-shrinks the changed set). Implementations bound the recompute by
// the receptive field of the changed set and fall back to the dense pass —
// bit-identically — once the set's density crosses Context.DenseCutoff.
type DeltaForwarder interface {
	Layer
	// ForwardDelta advances a faulty input through the layer given the
	// golden output. in differs from the golden input exactly at the
	// `changed` indices; goldenOut is this layer's output for the golden
	// input. It returns the faulty output — goldenOut itself (aliased)
	// when every recomputed element is bit-identical, a patched clone
	// otherwise — and the output indices that differ bit-wise from
	// goldenOut.
	ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int)
}

// applyFault perturbs one MAC step according to f and returns the possibly
// corrupted (weight, input, product-modifier, accumulator-modifier)
// behaviour. It is shared by CONV and FC inner loops.
//
// The contract: call with the clean operands; it returns the operands to
// multiply and two functions-worth of behaviour flags folded into values.
// To keep the hot loop branch-free in the common case, callers only invoke
// it when the fault targets the current (outputIndex, macStep).
func applyOperandFault(ctx *Context, f *Fault, w, x float64) (fw, fx float64) {
	fw, fx = w, x
	switch f.Target {
	case TargetWeight:
		fw = ctx.DType.FlipBits(w, f.Bit, f.Width)
	case TargetInput:
		fx = ctx.DType.FlipBits(x, f.Bit, f.Width)
	}
	return fw, fx
}
