package layers

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

// TestFCFaultMatchesConvSemantics is the regression test for the FC
// faulty path: an FC layer and a 1x1-kernel CONV layer computing the same
// dot product must produce bit-identical faulty outputs for every latch
// target, bit and numeric format. Before the fix, FC handed the
// *unquantized* weight to the faulted MAC while CONV handed the quantized
// one.
func TestFCFaultMatchesConvSemantics(t *testing.T) {
	const n = 9
	rng := rand.New(rand.NewSource(5))

	fc := NewFC("fc", n, 3)
	conv := NewConv("conv", n, 3, 1, 1, 0) // 1x1 kernel on a 1x1 fmap = dot product
	for i := range fc.Weights {
		// Deliberately not representable in the narrow formats, so an
		// unquantized operand would be caught.
		w := rng.NormFloat64() + rng.Float64()*1e-6
		fc.Weights[i] = w
		conv.Weights[i] = w
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.1
		conv.Bias[i] = fc.Bias[i]
	}

	fcIn := tensor.New(tensor.Shape{C: n, H: 1, W: 1})
	for i := range fcIn.Data {
		fcIn.Data[i] = rng.NormFloat64() + rng.Float64()*1e-6
	}
	convIn := tensor.FromSlice(tensor.Shape{C: n, H: 1, W: 1}, fcIn.Data)

	for _, dt := range numeric.Types {
		for target := Target(0); target < NumTargets; target++ {
			for _, bit := range []int{0, 1, dt.Width() / 2, dt.Width() - 2, dt.Width() - 1} {
				for out := 0; out < 3; out++ {
					for _, step := range []int{0, n / 2, n - 1} {
						ff := &Fault{OutputIndex: out, MACStep: step, Target: target, Bit: bit}
						cf := &Fault{OutputIndex: out, MACStep: step, Target: target, Bit: bit}
						fcOut := fc.Forward(&Context{DType: dt, Fault: ff}, fcIn)
						convOut := conv.Forward(&Context{DType: dt, Fault: cf}, convIn)
						if !ff.Applied || !cf.Applied {
							t.Fatalf("%s %s bit %d: fault not applied", dt, target, bit)
						}
						for i := range fcOut.Data {
							if math.Float64bits(fcOut.Data[i]) != math.Float64bits(convOut.Data[i]) {
								t.Fatalf("%s %s bit %d out %d step %d: FC %v != CONV %v at %d",
									dt, target, bit, out, step, fcOut.Data[i], convOut.Data[i], i)
							}
						}
					}
				}
			}
		}
	}
}

// TestForwardElementMatchesForward checks the single-chain recompute
// against the dense forward for both MAC layer kinds, with and without a
// fault on the recomputed element.
func TestForwardElementMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv := NewConv("conv", 3, 4, 3, 2, 1)
	for i := range conv.Weights {
		conv.Weights[i] = rng.NormFloat64()
	}
	for i := range conv.Bias {
		conv.Bias[i] = rng.NormFloat64() * 0.2
	}
	fc := NewFC("fc", 3*5*5, 7)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.3
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.2
	}
	in := tensor.New(tensor.Shape{C: 3, H: 5, W: 5})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}

	cases := []struct {
		l     ElementForwarder
		chain int
	}{
		{conv, conv.MACChainLen()},
		{fc, fc.MACChainLen()},
	}
	for _, dt := range numeric.Types {
		for _, cache := range []*QuantCache{nil, NewQuantCache()} {
			for _, tc := range cases {
				dense := tc.l.Forward(&Context{DType: dt, Quant: cache}, in)
				for oi := range dense.Data {
					got := tc.l.ForwardElement(&Context{DType: dt, Quant: cache}, in, oi)
					if math.Float64bits(got) != math.Float64bits(dense.Data[oi]) {
						t.Fatalf("%s %s: clean element %d = %v, dense %v", tc.l.Name(), dt, oi, got, dense.Data[oi])
					}
				}
				// Faulted element.
				f := &Fault{OutputIndex: rng.Intn(len(dense.Data)), MACStep: rng.Intn(tc.chain),
					Target: Target(rng.Intn(int(NumTargets))), Bit: rng.Intn(dt.Width())}
				f2 := *f
				faultyDense := tc.l.Forward(&Context{DType: dt, Fault: &f2, Quant: cache}, in)
				got := tc.l.ForwardElement(&Context{DType: dt, Fault: f, Quant: cache}, in, f.OutputIndex)
				if !f.Applied {
					t.Fatalf("%s %s: element fault not applied", tc.l.Name(), dt)
				}
				if math.Float64bits(got) != math.Float64bits(faultyDense.Data[f.OutputIndex]) {
					t.Fatalf("%s %s: faulty element %+v = %v, dense %v", tc.l.Name(), dt, f, got, faultyDense.Data[f.OutputIndex])
				}
			}
		}
	}
}

// checkDeltaAgainstDense is the ForwardDelta correctness oracle: the delta
// output must be bit-identical to a dense Forward of the faulty input, the
// returned changed set must be exactly the bit-differing elements, and an
// empty changed set must alias goldenOut (no allocation on full masking).
// The context carries the format and the density cutoff under test.
func checkDeltaAgainstDense(t *testing.T, ctx *Context, l DeltaForwarder, goldenOut, faultyIn *tensor.Tensor, changed []int, tag string) {
	t.Helper()
	wantOut := l.Forward(&Context{DType: ctx.DType, Quant: ctx.Quant}, faultyIn)
	gotOut, outChanged := l.ForwardDelta(ctx, faultyIn, goldenOut, changed)
	for i := range wantOut.Data {
		if math.Float64bits(gotOut.Data[i]) != math.Float64bits(wantOut.Data[i]) {
			t.Fatalf("%s %s: delta output %d = %v, dense %v", l.Name(), tag, i, gotOut.Data[i], wantOut.Data[i])
		}
	}
	diff := map[int]bool{}
	for i := range wantOut.Data {
		if math.Float64bits(wantOut.Data[i]) != math.Float64bits(goldenOut.Data[i]) {
			diff[i] = true
		}
	}
	if len(diff) != len(outChanged) {
		t.Fatalf("%s %s: changed = %v, want %d differing elements", l.Name(), tag, outChanged, len(diff))
	}
	for _, i := range outChanged {
		if !diff[i] {
			t.Fatalf("%s %s: reported unchanged element %d as changed", l.Name(), tag, i)
		}
	}
	if len(outChanged) == 0 && gotOut != goldenOut {
		t.Fatalf("%s %s: unchanged output must alias goldenOut", l.Name(), tag)
	}
}

// checkForwardDelta drives ForwardDelta against a dense recompute for one
// layer and one perturbed input element.
func checkForwardDelta(t *testing.T, l DeltaForwarder, in *tensor.Tensor, idx int, delta float64) {
	t.Helper()
	ctx := &Context{DType: numeric.Float16}
	goldenOut := l.Forward(ctx, in)
	faultyIn := in.Clone()
	faultyIn.Data[idx] += delta
	checkDeltaAgainstDense(t, ctx, l, goldenOut, faultyIn, []int{idx}, "")
}

func TestForwardDeltaLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := tensor.New(tensor.Shape{C: 6, H: 5, W: 5})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	ls := []DeltaForwarder{
		NewReLU("relu"),
		NewPool("pool", 2, 2),
		NewPool("pool3", 3, 2),
		NewLRN("lrn"),
	}
	for _, l := range ls {
		for trial := 0; trial < 40; trial++ {
			idx := rng.Intn(len(in.Data))
			var delta float64
			switch trial % 4 {
			case 0:
				delta = 5 // large positive: propagates
			case 1:
				delta = -5 // negative-going: often masked by ReLU/pool
			case 2:
				delta = 1e-4 // small: often absorbed by FLOAT16 rounding
			case 3:
				delta = math.Inf(1) - in.Data[idx] // drive to +Inf
			}
			checkForwardDelta(t, l, in, idx, delta)
		}
	}
}

// TestForwardDeltaAllFormats is the sparse-propagation property test: for
// every numeric format, a matrix of CONV geometries (stride/pad edges,
// 1x1 and whole-fmap kernels), FC, ReLU, both pool windows and LRN,
// ForwardDelta must be bit-identical to a dense recompute of the faulty
// input — for changed sets from one element to the whole input, and under
// cutoff settings that force the dense fallback (1e-9), forbid it (1), and
// leave the benchmark default (0). Bit-exactness may not depend on the
// cutoff: it only moves the sparse/dense crossover.
func TestForwardDeltaAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shape := tensor.Shape{C: 3, H: 7, W: 7}
	in := tensor.New(shape)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}

	convs := []*ConvLayer{
		NewConv("c3s1p1", 3, 4, 3, 1, 1), // same-pad, unit stride
		NewConv("c3s2p0", 3, 2, 3, 2, 0), // stride > 1, no pad (ragged edge)
		NewConv("c5s2p2", 3, 3, 5, 2, 2), // kernel wider than stride, pad
		NewConv("c2s2p0", 3, 2, 2, 2, 0), // non-overlapping windows
		NewConv("c1s1p0", 3, 4, 1, 1, 0), // pointwise: RF = one pixel
		NewConv("c7s1p3", 3, 2, 7, 1, 3), // kernel spanning the whole fmap
	}
	for _, c := range convs {
		for i := range c.Weights {
			c.Weights[i] = rng.NormFloat64() * 0.3
		}
		for i := range c.Bias {
			c.Bias[i] = rng.NormFloat64() * 0.1
		}
	}
	fc := NewFC("fc", shape.Elems(), 9)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.2
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.1
	}

	var lls []DeltaForwarder
	for _, c := range convs {
		lls = append(lls, c)
	}
	lls = append(lls, fc, NewReLU("relu"), NewPool("pool2", 2, 2), NewPool("pool3", 3, 2), NewLRN("lrn"))

	// Changed-set sizes straddling the default 0.5 density cutoff on a
	// 147-element input.
	sizes := []int{1, 3, len(in.Data) / 2, len(in.Data)}
	for _, dt := range numeric.Types {
		for _, l := range lls {
			goldenOut := l.Forward(&Context{DType: dt}, in)
			for _, cutoff := range []float64{0, 1e-9, 1} {
				for _, n := range sizes {
					perm := rng.Perm(len(in.Data))[:n]
					faultyIn := in.Clone()
					for _, ci := range perm {
						switch ci % 3 {
						case 0:
							faultyIn.Data[ci] += 4
						case 1:
							faultyIn.Data[ci] = -faultyIn.Data[ci]
						case 2:
							faultyIn.Data[ci] += 1e-5 // often absorbed by rounding
						}
					}
					ctx := &Context{DType: dt, DenseCutoff: cutoff}
					tag := fmt.Sprintf("%s cutoff=%g n=%d", dt, cutoff, n)
					checkDeltaAgainstDense(t, ctx, l, goldenOut, faultyIn, perm, tag)
				}
			}
		}
	}
}

// TestForwardDeltaChainCached re-runs the CONV/FC geometry matrix through
// the golden chain cache: a Context carrying Chains, Quant and the
// pre-quantized golden input routes ForwardDelta through the cached suffix
// replay, which must stay bit-identical to a dense recompute of the faulty
// input — for every format, for changed sets from one element to the whole
// input, and across repeated injections against the same cache (first-touch
// lazy fills, then pure reuse).
func TestForwardDeltaChainCached(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	shape := tensor.Shape{C: 3, H: 7, W: 7}
	in := tensor.New(shape)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}

	convs := []*ConvLayer{
		NewConv("c3s1p1", 3, 4, 3, 1, 1), // same-pad, unit stride
		NewConv("c3s2p0", 3, 2, 3, 2, 0), // stride > 1, no pad (ragged edge)
		NewConv("c5s2p2", 3, 3, 5, 2, 2), // kernel wider than stride, pad
		NewConv("c2s2p0", 3, 2, 2, 2, 0), // non-overlapping windows
		NewConv("c1s1p0", 3, 4, 1, 1, 0), // pointwise: RF = one pixel
		NewConv("c7s1p3", 3, 2, 7, 1, 3), // kernel spanning the whole fmap
	}
	for _, c := range convs {
		for i := range c.Weights {
			c.Weights[i] = rng.NormFloat64() * 0.3
		}
		for i := range c.Bias {
			c.Bias[i] = rng.NormFloat64() * 0.1
		}
	}
	fc := NewFC("fc", shape.Elems(), 9)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.2
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.1
	}

	var lls []DeltaForwarder
	for _, c := range convs {
		lls = append(lls, c)
	}
	lls = append(lls, fc)

	sizes := []int{1, 3, len(in.Data) / 2, len(in.Data)}
	for _, dt := range numeric.Types {
		quant := NewQuantCache()
		gin := quantizeSlice(dt, in.Data)
		for _, l := range lls {
			goldenOut := l.Forward(&Context{DType: dt, Quant: quant}, in)
			chains := NewChainCache(dt)
			for trial := 0; trial < 3; trial++ {
				for _, n := range sizes {
					perm := rng.Perm(len(in.Data))[:n]
					faultyIn := in.Clone()
					for _, ci := range perm {
						switch ci % 3 {
						case 0:
							faultyIn.Data[ci] += 4
						case 1:
							faultyIn.Data[ci] = -faultyIn.Data[ci]
						case 2:
							faultyIn.Data[ci] += 1e-5 // often absorbed by rounding
						}
					}
					ctx := &Context{DType: dt, Quant: quant, Chains: chains, GoldenIn: gin}
					tag := fmt.Sprintf("%s cached trial=%d n=%d", dt, trial, n)
					checkDeltaAgainstDense(t, ctx, l, goldenOut, faultyIn, perm, tag)
				}
			}
		}
	}
}

// TestForwardDeltaMultiElement exercises the multi-index path used when a
// perturbation has already spread (e.g. LRN widened it across channels).
func TestForwardDeltaMultiElement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := tensor.New(tensor.Shape{C: 6, H: 5, W: 5})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	ctx := &Context{DType: numeric.Fx16RB10}
	for _, l := range []DeltaForwarder{NewReLU("relu"), NewPool("pool", 2, 2), NewLRN("lrn")} {
		goldenOut := l.Forward(ctx, in)
		faultyIn := in.Clone()
		changed := []int{3, 4, 30, 31, 77} // overlapping pool windows / LRN spans
		for _, i := range changed {
			faultyIn.Data[i] += 3
		}
		wantOut := l.Forward(ctx, faultyIn)
		gotOut, _ := l.ForwardDelta(ctx, faultyIn, goldenOut, changed)
		for i := range wantOut.Data {
			if math.Float64bits(gotOut.Data[i]) != math.Float64bits(wantOut.Data[i]) {
				t.Fatalf("%s: multi-delta output %d = %v, dense %v", l.Name(), i, gotOut.Data[i], wantOut.Data[i])
			}
		}
	}
}
