package layers

import "repro/internal/numeric"

// ChainCache memoizes, per MAC layer, the golden accumulation-chain
// internals of every output element: the partial accumulator after each tap
// (prefix) and each tap's quantized product (prods). Both depend only on
// the golden input and the layer parameters, so they are shared by every
// faulty replay of the element — a lane that differs from golden at a known
// set of inputs can start at the partial before its first changed tap,
// reuse the cached product of every unchanged tap, and stop (or skip ahead)
// as soon as its accumulator re-converges bit-wise with a golden partial:
// from an equal partial, identical remaining operations reproduce the
// golden partials exactly. The replay is bit-identical to the full
// ForwardElement chain for every numeric format.
//
// A cache is bound to one (numeric format, golden execution) pair and is
// NOT safe for concurrent use; each injection batch owns one.
type ChainCache struct {
	dt      numeric.Type
	entries map[Layer]*layerChains
}

// NewChainCache creates an empty cache for golden chains under dt.
func NewChainCache(dt numeric.Type) *ChainCache {
	return &ChainCache{dt: dt, entries: make(map[Layer]*layerChains)}
}

// maxChainCacheBytes bounds the cached chain state of a single layer. A
// layer whose elems×chain footprint exceeds it is never cached (the entry
// stays nil and delta replays fall back to the plain recompute), keeping
// worst-case memory independent of network size.
const maxChainCacheBytes = 64 << 20

type layerChains struct {
	chain  int
	prefix []float64 // elems × (chain+1): golden partial accumulators
	prods  []float64 // elems × chain: golden quantized tap products
	filled []bool    // per-element lazy-fill flag
	mark   []bool    // changed-input scratch, len = input elems
	steps  []int     // changed-tap-step scratch
	xs     []float64 // changed-tap lane-input scratch
	offs   []int     // per-spatial-position offsets into steps/xs (CONV)
}

// chainEntry resolves the cached-chain state of a MAC layer for this
// context, or nil when the cached replay is unavailable: no cache attached,
// no golden input to fill from, a live fault (faulted-layer replays must go
// through the fault-aware path), no parameter cache, a format mismatch, or
// a layer too large for the memory budget.
func (ctx *Context) chainEntry(l Layer, outElems, chain, inElems int) *layerChains {
	c := ctx.Chains
	if c == nil || ctx.GoldenIn == nil || ctx.Fault != nil || ctx.Quant == nil || c.dt != ctx.DType {
		return nil
	}
	lc, ok := c.entries[l]
	if !ok {
		if outElems*(2*chain+1)*8 <= maxChainCacheBytes {
			lc = &layerChains{
				chain:  chain,
				prefix: make([]float64, outElems*(chain+1)),
				prods:  make([]float64, outElems*chain),
				filled: make([]bool, outElems),
				mark:   make([]bool, inElems),
				steps:  make([]int, 0, chain),
				xs:     make([]float64, 0, chain),
			}
		}
		c.entries[l] = lc // nil when over budget: remember the decision
	}
	return lc
}

// Replays against the cached chains run through numeric.Type.ChainReplay,
// whose per-format loops decompose each MAC into product-quantize and
// accumulate-quantize, bit-identical to the MACFunc chain.
