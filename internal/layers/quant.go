package layers

import (
	"sync"

	"repro/internal/numeric"
)

// QuantCache memoizes the quantized weights and biases of CONV/FC layers
// per numeric format. Quantization is idempotent, so reading parameters
// through the cache is bit-identical to quantizing them inside every
// forward pass — but it happens once per (layer, format) instead of once
// per inference, which removes the dominant allocation on the
// fault-injection hot path. A cache is safe for concurrent use: entries
// are computed under a lock and immutable afterwards, so campaign workers
// share them read-only.
//
// The cache snapshots the parameter values at first use. Code that mutates
// layer weights afterwards (training) must drop the cache — see
// network.InvalidateQuantCache.
type QuantCache struct {
	mu      sync.RWMutex
	entries map[quantKey]*quantEntry
}

type quantKey struct {
	layer Layer
	dt    numeric.Type
}

type quantEntry struct {
	weights, bias []float64
}

// NewQuantCache creates an empty cache.
func NewQuantCache() *QuantCache {
	return &QuantCache{entries: make(map[quantKey]*quantEntry)}
}

// params returns the quantized (weights, bias) of a layer under dt,
// computing and storing them on first use. The returned slices are shared
// and must be treated as read-only.
func (c *QuantCache) params(dt numeric.Type, l Layer, weights, bias []float64) (qw, qb []float64) {
	key := quantKey{layer: l, dt: dt}
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		return e.weights, e.bias
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.entries[key]; e != nil { // lost the race to another worker
		return e.weights, e.bias
	}
	e = &quantEntry{weights: quantizeSlice(dt, weights), bias: quantizeSlice(dt, bias)}
	c.entries[key] = e
	return e.weights, e.bias
}

// InvalidateLayer drops the cached parameters of a single layer (every
// format) after that layer's weights or biases were mutated in place —
// e.g. a Filter SRAM fault injection. Other layers keep their entries, so
// only the mutated layer pays re-quantization on its next forward pass.
func (c *QuantCache) InvalidateLayer(l Layer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.layer == l {
			delete(c.entries, k)
		}
	}
}

// QuantizeSlice quantizes every element of s under dt — the whole-slice
// pre-quantization the dense forward passes use internally, exported for
// injection batches that want to share one quantized input across a group
// of element recomputations (Context.QIn).
func QuantizeSlice(dt numeric.Type, s []float64) []float64 {
	return quantizeSlice(dt, s)
}

// quantizeSlice quantizes every element of s under dt. Binary64 is the
// simulator's carrier type, so its quantization is the identity and the
// original slice is shared instead of copied.
func quantizeSlice(dt numeric.Type, s []float64) []float64 {
	if dt == numeric.Double {
		return s
	}
	q := make([]float64, len(s))
	quant := dt.QuantFunc()
	for i, v := range s {
		q[i] = quant(v)
	}
	return q
}

// quantizedParams resolves the quantized parameters of a MAC layer for
// this context: through the cache when one is attached, computed on the
// fly otherwise. Either way the values are bit-identical to quantizing
// inside the MAC loop.
func (ctx *Context) quantizedParams(l Layer, weights, bias []float64) (qw, qb []float64) {
	if ctx.Quant != nil {
		return ctx.Quant.params(ctx.DType, l, weights, bias)
	}
	return quantizeSlice(ctx.DType, weights), quantizeSlice(ctx.DType, bias)
}
