package layers

import (
	"math"

	"repro/internal/tensor"
)

// ReLULayer resets negative activations to zero. Together with max pooling
// it is responsible for most of the error masking the paper measures
// (84.36% of faults masked on average, §5.1.4).
type ReLULayer struct {
	LayerName string
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLULayer { return &ReLULayer{LayerName: name} }

// Name implements Layer.
func (l *ReLULayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ReLULayer) Kind() Kind { return ReLU }

// OutShape implements Layer.
func (l *ReLULayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *ReLULayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *ReLULayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	quant := ctx.DType.QuantFunc()
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = quant(v)
		}
		// Negative and NaN inputs clamp to zero: comparisons with NaN are
		// false, but a NaN activation must not survive ReLU in hardware
		// either, so treat it explicitly.
		if math.IsNaN(v) {
			out.Data[i] = 0
		}
	}
	return out
}

// ForwardDelta implements DeltaForwarder. ReLU is element-wise, so only
// the changed indices need recomputing; a fault that drove an already-
// negative activation further negative is masked here (§5.1.4).
func (l *ReLULayer) ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	out := goldenOut
	var outChanged []int
	quant := ctx.DType.QuantFunc()
	for _, i := range changed {
		v := in.Data[i]
		var nv float64
		if v > 0 {
			nv = quant(v)
		}
		// NaN compares false with 0, so nv stays 0 — matching Forward's
		// explicit NaN clamp.
		if !bitsEqual(nv, goldenOut.Data[i]) {
			if out == goldenOut {
				out = goldenOut.Clone()
			}
			out.Data[i] = nv
			outChanged = append(outChanged, i)
		}
	}
	return out, outChanged
}

// bitsEqual reports whether two values have identical float64 bit
// patterns — the simulator's definition of "unchanged", which unlike ==
// distinguishes ±0 and never equates differing NaNs.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// PoolLayer is max pooling with a square window. POOL forwards only the
// local maximum and discards the rest, masking negative-going errors and
// propagating positive-going ones.
type PoolLayer struct {
	LayerName string
	K, Stride int
}

// NewPool constructs a max-pooling layer.
func NewPool(name string, k, stride int) *PoolLayer {
	return &PoolLayer{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (l *PoolLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *PoolLayer) Kind() Kind { return Pool }

// OutShape implements Layer.
func (l *PoolLayer) OutShape(in tensor.Shape) tensor.Shape {
	oh := (in.H-l.K)/l.Stride + 1
	ow := (in.W-l.K)/l.Stride + 1
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	return tensor.Shape{C: in.C, H: oh, W: ow}
}

// MACs implements Layer.
func (l *PoolLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *PoolLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	os := l.OutShape(in.Shape)
	out := tensor.New(os)
	for c := 0; c < os.C; c++ {
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				out.Set(c, oh, ow, l.windowMax(ctx, in, c, oh, ow))
			}
		}
	}
	return out
}

// windowMax computes one pooled output element.
func (l *PoolLayer) windowMax(ctx *Context, in *tensor.Tensor, c, oh, ow int) float64 {
	best := math.Inf(-1)
	for kh := 0; kh < l.K; kh++ {
		ih := oh*l.Stride + kh
		if ih >= in.Shape.H {
			break
		}
		for kw := 0; kw < l.K; kw++ {
			iw := ow*l.Stride + kw
			if iw >= in.Shape.W {
				break
			}
			if v := in.At(c, ih, iw); v > best {
				best = v
			}
		}
	}
	return ctx.DType.Quantize(best)
}

// ForwardDelta implements DeltaForwarder. A changed input element touches
// only the pooling windows covering it; recomputing those windows masks
// any fault whose element does not win its window max (§5.1.4). Once the
// changed set's density crosses Context.DenseCutoff the per-window
// bookkeeping costs more than the dense pass, which takes over
// bit-identically.
func (l *PoolLayer) ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	if float64(len(changed)) > ctx.denseCutoff()*float64(in.Shape.Elems()) {
		return denseDelta(ctx, l, in, goldenOut)
	}
	os := l.OutShape(in.Shape)
	out := goldenOut
	var outChanged []int
	recomputed := make(map[int]bool, len(changed))
	for _, idx := range changed {
		c, ih, iw := in.Coords(idx)
		ohMin, ohMax := windowRange(ih, l.K, l.Stride, os.H)
		owMin, owMax := windowRange(iw, l.K, l.Stride, os.W)
		for oh := ohMin; oh <= ohMax; oh++ {
			for ow := owMin; ow <= owMax; ow++ {
				oi := (c*os.H+oh)*os.W + ow
				if recomputed[oi] {
					continue
				}
				recomputed[oi] = true
				nv := l.windowMax(ctx, in, c, oh, ow)
				if !bitsEqual(nv, goldenOut.Data[oi]) {
					if out == goldenOut {
						out = goldenOut.Clone()
					}
					out.Data[oi] = nv
					outChanged = append(outChanged, oi)
				}
			}
		}
	}
	return out, outChanged
}

// windowRange returns the closed range of output positions whose size-k
// stride-s windows cover input position i, clamped to [0, outDim).
func windowRange(i, k, s, outDim int) (lo, hi int) {
	lo = (i - k + s) / s // ceil((i-k+1)/s) for the non-negative case
	if i-k+1 <= 0 {
		lo = 0
	}
	hi = i / s
	if hi > outDim-1 {
		hi = outDim - 1
	}
	return lo, hi
}
