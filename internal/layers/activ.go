package layers

import (
	"math"

	"repro/internal/tensor"
)

// ReLULayer resets negative activations to zero. Together with max pooling
// it is responsible for most of the error masking the paper measures
// (84.36% of faults masked on average, §5.1.4).
type ReLULayer struct {
	LayerName string
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLULayer { return &ReLULayer{LayerName: name} }

// Name implements Layer.
func (l *ReLULayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ReLULayer) Kind() Kind { return ReLU }

// OutShape implements Layer.
func (l *ReLULayer) OutShape(in tensor.Shape) tensor.Shape { return in }

// MACs implements Layer.
func (l *ReLULayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *ReLULayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = ctx.DType.Quantize(v)
		}
		// Negative and NaN inputs clamp to zero: comparisons with NaN are
		// false, but a NaN activation must not survive ReLU in hardware
		// either, so treat it explicitly.
		if math.IsNaN(v) {
			out.Data[i] = 0
		}
	}
	return out
}

// PoolLayer is max pooling with a square window. POOL forwards only the
// local maximum and discards the rest, masking negative-going errors and
// propagating positive-going ones.
type PoolLayer struct {
	LayerName string
	K, Stride int
}

// NewPool constructs a max-pooling layer.
func NewPool(name string, k, stride int) *PoolLayer {
	return &PoolLayer{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (l *PoolLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *PoolLayer) Kind() Kind { return Pool }

// OutShape implements Layer.
func (l *PoolLayer) OutShape(in tensor.Shape) tensor.Shape {
	oh := (in.H-l.K)/l.Stride + 1
	ow := (in.W-l.K)/l.Stride + 1
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	return tensor.Shape{C: in.C, H: oh, W: ow}
}

// MACs implements Layer.
func (l *PoolLayer) MACs(in tensor.Shape) int64 { return 0 }

// Forward implements Layer.
func (l *PoolLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	os := l.OutShape(in.Shape)
	out := tensor.New(os)
	for c := 0; c < os.C; c++ {
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				best := math.Inf(-1)
				for kh := 0; kh < l.K; kh++ {
					ih := oh*l.Stride + kh
					if ih >= in.Shape.H {
						break
					}
					for kw := 0; kw < l.K; kw++ {
						iw := ow*l.Stride + kw
						if iw >= in.Shape.W {
							break
						}
						if v := in.At(c, ih, iw); v > best {
							best = v
						}
					}
				}
				out.Set(c, oh, ow, ctx.DType.Quantize(best))
			}
		}
	}
	return out
}
