package layers

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvLayer is a 2-D convolution over CHW feature maps. Weights use the
// layout [outC][inC][kh][kw]; each output element is produced by an
// accumulation chain of inC*KH*KW MAC steps plus a bias, mirroring the
// PE-array mapping of the canonical accelerator.
type ConvLayer struct {
	LayerName   string
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Weights     []float64 // len OutC*InC*KH*KW
	Bias        []float64 // len OutC
}

// NewConv constructs a convolution layer with zeroed weights.
func NewConv(name string, inC, outC, k, stride, pad int) *ConvLayer {
	return &ConvLayer{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: k, KW: k,
		Stride: stride, Pad: pad,
		Weights: make([]float64, outC*inC*k*k),
		Bias:    make([]float64, outC),
	}
}

// Name implements Layer.
func (l *ConvLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ConvLayer) Kind() Kind { return Conv }

// WeightIndex returns the flat offset of weight (oc, ic, kh, kw).
func (l *ConvLayer) WeightIndex(oc, ic, kh, kw int) int {
	return ((oc*l.InC+ic)*l.KH+kh)*l.KW + kw
}

// OutShape implements Layer.
func (l *ConvLayer) OutShape(in tensor.Shape) tensor.Shape {
	if in.C != l.InC {
		panic(fmt.Sprintf("conv %s: input channels %d, want %d", l.LayerName, in.C, l.InC))
	}
	oh := (in.H+2*l.Pad-l.KH)/l.Stride + 1
	ow := (in.W+2*l.Pad-l.KW)/l.Stride + 1
	return tensor.Shape{C: l.OutC, H: oh, W: ow}
}

// MACs implements Layer: one MAC per (output element, kernel tap).
func (l *ConvLayer) MACs(in tensor.Shape) int64 {
	os := l.OutShape(in)
	return int64(os.Elems()) * int64(l.InC*l.KH*l.KW)
}

// MACChainLen returns the accumulation-chain length per output element.
func (l *ConvLayer) MACChainLen() int { return l.InC * l.KH * l.KW }

// Forward implements Layer. All arithmetic flows through ctx.DType. When
// ctx.Fault is non-nil, the single MAC identified by (OutputIndex, MACStep)
// is perturbed at the requested latch.
func (l *ConvLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	os := l.OutShape(in.Shape)
	out := tensor.New(os)
	dt := ctx.DType
	f := ctx.Fault

	// Pre-quantize the reused operands once; Quantize is idempotent, so
	// the result is bit-identical to quantizing inside every MAC.
	qw := make([]float64, len(l.Weights))
	for i, w := range l.Weights {
		qw[i] = dt.Quantize(w)
	}
	qin := make([]float64, len(in.Data))
	for i, v := range in.Data {
		qin[i] = dt.Quantize(v)
	}

	inH, inW := in.Shape.H, in.Shape.W
	oi := 0
	for oc := 0; oc < l.OutC; oc++ {
		bias := dt.Quantize(l.Bias[oc])
		wBase := oc * l.InC * l.KH * l.KW
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				faultHere := f != nil && f.OutputIndex == oi
				acc := bias
				step := 0
				for ic := 0; ic < l.InC; ic++ {
					inBase := ic * inH * inW
					for kh := 0; kh < l.KH; kh++ {
						ih := oh*l.Stride + kh - l.Pad
						rowOK := ih >= 0 && ih < inH
						rowBase := inBase + ih*inW
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.Stride + kw - l.Pad
							var x float64
							if rowOK && iw >= 0 && iw < inW {
								x = qin[rowBase+iw]
							}
							w := qw[wBase+step]
							if faultHere && f.MACStep == step {
								acc = macFaulty(ctx, f, acc, w, x)
							} else {
								acc = dt.MACq(acc, w, x)
							}
							step++
						}
					}
				}
				out.Data[oi] = acc
				oi++
			}
		}
	}
	return out
}

// macFaulty performs one MAC with the fault applied at the requested latch
// and marks the fault consumed.
func macFaulty(ctx *Context, f *Fault, acc, w, x float64) float64 {
	dt := ctx.DType
	f.Applied = true
	switch f.Target {
	case TargetWeight, TargetInput:
		fw, fx := applyOperandFault(ctx, f, dt.Quantize(w), dt.Quantize(x))
		return dt.Add(acc, dt.Mul(fw, fx))
	case TargetProduct:
		p := dt.FlipBit(dt.Mul(w, x), f.Bit)
		return dt.Add(acc, p)
	case TargetAccum:
		return dt.FlipBit(dt.MAC(acc, w, x), f.Bit)
	}
	panic("layers: unknown fault target")
}
