package layers

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// ConvLayer is a 2-D convolution over CHW feature maps. Weights use the
// layout [outC][inC][kh][kw]; each output element is produced by an
// accumulation chain of inC*KH*KW MAC steps plus a bias, mirroring the
// PE-array mapping of the canonical accelerator.
type ConvLayer struct {
	LayerName   string
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Weights     []float64 // len OutC*InC*KH*KW
	Bias        []float64 // len OutC
}

// NewConv constructs a convolution layer with zeroed weights.
func NewConv(name string, inC, outC, k, stride, pad int) *ConvLayer {
	return &ConvLayer{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: k, KW: k,
		Stride: stride, Pad: pad,
		Weights: make([]float64, outC*inC*k*k),
		Bias:    make([]float64, outC),
	}
}

// Name implements Layer.
func (l *ConvLayer) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ConvLayer) Kind() Kind { return Conv }

// WeightIndex returns the flat offset of weight (oc, ic, kh, kw).
func (l *ConvLayer) WeightIndex(oc, ic, kh, kw int) int {
	return ((oc*l.InC+ic)*l.KH+kh)*l.KW + kw
}

// OutShape implements Layer.
func (l *ConvLayer) OutShape(in tensor.Shape) tensor.Shape {
	if in.C != l.InC {
		panic(fmt.Sprintf("conv %s: input channels %d, want %d", l.LayerName, in.C, l.InC))
	}
	oh := (in.H+2*l.Pad-l.KH)/l.Stride + 1
	ow := (in.W+2*l.Pad-l.KW)/l.Stride + 1
	return tensor.Shape{C: l.OutC, H: oh, W: ow}
}

// MACs implements Layer: one MAC per (output element, kernel tap).
func (l *ConvLayer) MACs(in tensor.Shape) int64 {
	os := l.OutShape(in)
	return int64(os.Elems()) * int64(l.InC*l.KH*l.KW)
}

// MACChainLen returns the accumulation-chain length per output element.
func (l *ConvLayer) MACChainLen() int { return l.InC * l.KH * l.KW }

// Forward implements Layer. All arithmetic flows through ctx.DType. When
// ctx.Fault is non-nil, the single MAC identified by (OutputIndex, MACStep)
// is perturbed at the requested latch.
func (l *ConvLayer) Forward(ctx *Context, in *tensor.Tensor) *tensor.Tensor {
	os := l.OutShape(in.Shape)
	out := tensor.New(os)
	dt := ctx.DType
	f := ctx.Fault

	// Pre-quantize the reused operands once (through the campaign cache
	// when one is attached); Quantize is idempotent, so the result is
	// bit-identical to quantizing inside every MAC. A caller-supplied QIn
	// (aligned with in, per the Context contract) short-circuits the input
	// quantization entirely.
	qw, qb := ctx.quantizedParams(l, l.Weights, l.Bias)
	qin := ctx.QIn
	if qin == nil {
		qin = quantizeSlice(dt, in.Data)
	}

	inH, inW := in.Shape.H, in.Shape.W
	plane := os.H * os.W
	chain := l.InC * l.KH * l.KW
	mac := dt.MACFunc()
	// run computes output channels [oc0, oc1); every output element is
	// independent, so channel ranges can execute concurrently.
	run := func(oc0, oc1 int) {
		oi := oc0 * plane
		for oc := oc0; oc < oc1; oc++ {
			bias := qb[oc]
			wBase := oc * chain
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					faultHere := f != nil && f.OutputIndex == oi
					acc := bias
					step := 0
					for ic := 0; ic < l.InC; ic++ {
						inBase := ic * inH * inW
						for kh := 0; kh < l.KH; kh++ {
							ih := oh*l.Stride + kh - l.Pad
							rowOK := ih >= 0 && ih < inH
							rowBase := inBase + ih*inW
							for kw := 0; kw < l.KW; kw++ {
								iw := ow*l.Stride + kw - l.Pad
								var x float64
								if rowOK && iw >= 0 && iw < inW {
									x = qin[rowBase+iw]
								}
								w := qw[wBase+step]
								if faultHere && f.MACStep == step {
									acc = macFaulty(ctx, f, acc, w, x)
								} else {
									acc = mac(acc, w, x)
								}
								step++
							}
						}
					}
					out.Data[oi] = acc
					oi++
				}
			}
		}
	}
	parallelRanges(ctx.Workers, l.OutC, run)
	return out
}

// parallelRanges splits [0, n) into up to `workers` contiguous ranges and
// runs them concurrently; with fewer than two workers it runs inline.
func parallelRanges(workers, n int, run func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		run(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForwardElement implements ElementForwarder: it recomputes the single
// accumulation chain of output element outputIndex, bit-identical to the
// corresponding element of Forward's output for every numeric format and
// fault target.
func (l *ConvLayer) ForwardElement(ctx *Context, in *tensor.Tensor, outputIndex int) float64 {
	os := l.OutShape(in.Shape)
	plane := os.H * os.W
	if outputIndex < 0 || outputIndex >= l.OutC*plane {
		panic(fmt.Sprintf("conv %s: output index %d out of range [0,%d)", l.LayerName, outputIndex, l.OutC*plane))
	}
	dt := ctx.DType
	f := ctx.Fault
	oc := outputIndex / plane
	oh := (outputIndex % plane) / os.W
	ow := outputIndex % os.W

	// With a cache attached the whole-layer parameters are already
	// quantized; without one, quantize just the taps of this chain.
	var qw []float64
	acc := dt.Quantize(l.Bias[oc])
	if ctx.Quant != nil {
		var qb []float64
		qw, qb = ctx.Quant.params(dt, l, l.Weights, l.Bias)
		acc = qb[oc]
	}

	inH, inW := in.Shape.H, in.Shape.W
	wBase := oc * l.InC * l.KH * l.KW
	quant, mac := dt.QuantFunc(), dt.MACFunc()
	step := 0
	for ic := 0; ic < l.InC; ic++ {
		inBase := ic * inH * inW
		for kh := 0; kh < l.KH; kh++ {
			ih := oh*l.Stride + kh - l.Pad
			rowOK := ih >= 0 && ih < inH
			rowBase := inBase + ih*inW
			for kw := 0; kw < l.KW; kw++ {
				iw := ow*l.Stride + kw - l.Pad
				var x float64
				if rowOK && iw >= 0 && iw < inW {
					if ctx.QIn != nil {
						x = ctx.QIn[rowBase+iw]
					} else {
						x = quant(in.Data[rowBase+iw])
					}
				}
				var w float64
				if qw != nil {
					w = qw[wBase+step]
				} else {
					w = quant(l.Weights[wBase+step])
				}
				if f != nil && f.OutputIndex == outputIndex && f.MACStep == step {
					acc = macFaulty(ctx, f, acc, w, x)
				} else {
					acc = mac(acc, w, x)
				}
				step++
			}
		}
	}
	return acc
}

// ForwardDelta implements DeltaForwarder: it recomputes only the output
// elements whose receptive field intersects a changed input. A changed
// input at (ic, ih, iw) feeds the accumulation chains of every output
// channel at the spatial positions whose kernel window covers (ih, iw), so
// the affected set is OutC × (union of covering windows); each affected
// chain is replayed in full (quantized accumulation is order-dependent, so
// there is no cheaper bit-exact update) and bit-compared against goldenOut
// to re-shrink — possibly re-empty — the changed set. Once the affected
// spatial fraction crosses Context.DenseCutoff the dense pass is cheaper
// and the layer falls back to it, bit-identically.
func (l *ConvLayer) ForwardDelta(ctx *Context, in, goldenOut *tensor.Tensor, changed []int) (*tensor.Tensor, []int) {
	os := l.OutShape(in.Shape)
	plane := os.H * os.W

	// Union of the spatial output positions covered by any changed input.
	// Bounding the mark array by the plane keeps the sparse bookkeeping
	// allocation-cheap relative to the chains it saves.
	marked := make(map[int]bool, len(changed))
	spatial := make([]int, 0, len(changed))
	for _, idx := range changed {
		_, ih, iw := in.Coords(idx)
		ohLo, ohHi := convWindowRange(ih, l.KH, l.Stride, l.Pad, os.H)
		owLo, owHi := convWindowRange(iw, l.KW, l.Stride, l.Pad, os.W)
		for oh := ohLo; oh <= ohHi; oh++ {
			for ow := owLo; ow <= owHi; ow++ {
				si := oh*os.W + ow
				if !marked[si] {
					marked[si] = true
					spatial = append(spatial, si)
				}
			}
		}
	}
	if float64(len(spatial)) > ctx.denseCutoff()*float64(plane) {
		return denseDelta(ctx, l, in, goldenOut)
	}
	sort.Ints(spatial) // ascending output order, matching the dense loop

	chain := l.InC * l.KH * l.KW
	lc := ctx.chainEntry(l, l.OutC*plane, chain, in.Shape.Elems())
	var qw []float64
	if lc != nil {
		// The changed-tap steps and lane input values of a spatial position
		// are identical for every output channel (only the weights differ):
		// scan each position once, replay it OutC times.
		for _, idx := range changed {
			lc.mark[idx] = true
		}
		l.scanChanged(ctx, lc, in, os, spatial)
		for _, idx := range changed {
			lc.mark[idx] = false
		}
		qw, _ = ctx.Quant.params(ctx.DType, l, l.Weights, l.Bias)
	}
	out := goldenOut
	var outChanged []int
	for oc := 0; oc < l.OutC; oc++ {
		base := oc * plane
		for k, si := range spatial {
			oi := base + si
			var nv float64
			if lc != nil {
				if !lc.filled[oi] {
					l.fillChain(ctx, lc, in, os, oi)
				}
				lo, hi := lc.offs[k], lc.offs[k+1]
				nv = ctx.DType.ChainReplay(lc.prefix[oi*(chain+1):], lc.prods[oi*chain:],
					qw, oc*chain, lc.steps[lo:hi], lc.xs[lo:hi], chain)
			} else {
				nv = l.ForwardElement(ctx, in, oi)
			}
			if !bitsEqual(nv, goldenOut.Data[oi]) {
				if out == goldenOut {
					out = goldenOut.Clone()
				}
				out.Data[oi] = nv
				outChanged = append(outChanged, oi)
			}
		}
	}
	return out, outChanged
}

// scanChanged records, per spatial output position, the chain steps whose
// input is marked changed in lc.mark and the lane's quantized value at
// each, into lc.steps/lc.xs with lc.offs delimiting the positions.
func (l *ConvLayer) scanChanged(ctx *Context, lc *layerChains, in *tensor.Tensor, os tensor.Shape, spatial []int) {
	quant := ctx.DType.QuantFunc()
	qin := ctx.QIn
	inH, inW := in.Shape.H, in.Shape.W
	steps, xs := lc.steps[:0], lc.xs[:0]
	offs := append(lc.offs[:0], 0)
	for _, si := range spatial {
		oh, ow := si/os.W, si%os.W
		step := 0
		for ic := 0; ic < l.InC; ic++ {
			inBase := ic * inH * inW
			for kh := 0; kh < l.KH; kh++ {
				ih := oh*l.Stride + kh - l.Pad
				if ih < 0 || ih >= inH {
					step += l.KW // padding rows never hold changed inputs
					continue
				}
				rowBase := inBase + ih*inW
				for kw := 0; kw < l.KW; kw++ {
					iw := ow*l.Stride + kw - l.Pad
					if iw >= 0 && iw < inW && lc.mark[rowBase+iw] {
						steps = append(steps, step)
						if qin != nil {
							xs = append(xs, qin[rowBase+iw])
						} else {
							xs = append(xs, quant(in.Data[rowBase+iw]))
						}
					}
					step++
				}
			}
		}
		offs = append(offs, len(steps))
	}
	lc.steps, lc.xs, lc.offs = steps, xs, offs
}

// fillChain computes the golden chain internals of output element oi from
// the context's golden input — the same decomposed operations Forward
// performs, so prefix[chain] lands bit-identical to the golden output
// element.
func (l *ConvLayer) fillChain(ctx *Context, lc *layerChains, in *tensor.Tensor, os tensor.Shape, oi int) {
	plane := os.H * os.W
	oc := oi / plane
	oh := (oi % plane) / os.W
	ow := oi % os.W
	qw, qb := ctx.Quant.params(ctx.DType, l, l.Weights, l.Bias)
	quant, accf := ctx.DType.QuantFunc(), ctx.DType.AccFunc()
	gin := ctx.GoldenIn
	chain := lc.chain
	prefix := lc.prefix[oi*(chain+1):]
	prods := lc.prods[oi*chain:]
	inH, inW := in.Shape.H, in.Shape.W
	wBase := oc * chain

	acc := qb[oc]
	prefix[0] = acc
	step := 0
	for ic := 0; ic < l.InC; ic++ {
		inBase := ic * inH * inW
		for kh := 0; kh < l.KH; kh++ {
			ih := oh*l.Stride + kh - l.Pad
			rowOK := ih >= 0 && ih < inH
			rowBase := inBase + ih*inW
			for kw := 0; kw < l.KW; kw++ {
				iw := ow*l.Stride + kw - l.Pad
				var x float64
				if rowOK && iw >= 0 && iw < inW {
					x = gin[rowBase+iw]
				}
				p := quant(qw[wBase+step] * x)
				prods[step] = p
				acc = accf(acc, p)
				prefix[step+1] = acc
				step++
			}
		}
	}
	lc.filled[oi] = true
}

// convWindowRange returns the closed range of output positions oh such
// that the size-k, stride-s, pad-p kernel window at oh covers input
// position i (oh*s - p <= i < oh*s - p + k), clamped to [0, outDim).
func convWindowRange(i, k, s, p, outDim int) (lo, hi int) {
	num := i + p - k + 1
	if num <= 0 {
		lo = 0
	} else {
		lo = (num + s - 1) / s
	}
	hi = (i + p) / s
	if hi > outDim-1 {
		hi = outDim - 1
	}
	return lo, hi
}

// macFaulty performs one MAC with the fault applied at the requested latch
// and marks the fault consumed.
func macFaulty(ctx *Context, f *Fault, acc, w, x float64) float64 {
	dt := ctx.DType
	f.Applied = true
	switch f.Target {
	case TargetWeight, TargetInput:
		fw, fx := applyOperandFault(ctx, f, dt.Quantize(w), dt.Quantize(x))
		return dt.Add(acc, dt.Mul(fw, fx))
	case TargetProduct:
		p := dt.FlipBits(dt.Mul(w, x), f.Bit, f.Width)
		return dt.Add(acc, p)
	case TargetAccum:
		return dt.FlipBits(dt.MAC(acc, w, x), f.Bit, f.Width)
	}
	panic("layers: unknown fault target")
}
