package layers

import (
	"fmt"
	"math"
	mbits "math/bits"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Bit-parallel site evaluation. A datapath campaign that evaluates every
// bit position of one latch site replays the same accumulation chain once
// per bit; the chain prefix and suffix are identical across bits, only the
// faulted step differs. PlaneForwarder replays the chain once and carries
// one accumulator lane per requested bit through the suffix, producing up
// to 64 faulty output values — each bit-identical to the scalar
// ForwardElement replay with that bit's Fault.
//
// Lane arithmetic is kept bit-identical by construction: clean steps use
// the same quantize-product-then-accumulate expression MACq evaluates, the
// faulted step uses the literal macFaulty call sequences (via
// numeric.FlipProducts), and a lane whose accumulator becomes bit-equal to
// the golden accumulator is retired — the remaining suffix is a
// deterministic function of the stored bits, so its final value is the
// golden chain value.

// PlaneFault selects one latch site — every bit position set in Bits is
// evaluated in one chain replay.
type PlaneFault struct {
	OutputIndex int
	MACStep     int
	Target      Target
	// Bits is the mask of bit positions to evaluate (bit b set ⇒ lane b
	// runs). Bits at or above the format width must be clear.
	Bits uint64
}

// PlaneForwarder is implemented by MAC layers that can evaluate all bit
// flips of one latch site in a single chain replay.
type PlaneForwarder interface {
	ElementForwarder
	// ForwardElementPlane replays the accumulation chain of output element
	// pf.OutputIndex once, writing into vals[b] — for every bit b set in
	// pf.Bits — the faulty chain output of flipping bit b at
	// (pf.MACStep, pf.Target), each bit-identical to ForwardElement with
	// the corresponding scalar Fault. It returns the golden (fault-free)
	// chain output. Entries of vals outside pf.Bits are untouched.
	ForwardElementPlane(ctx *Context, in *tensor.Tensor, pf *PlaneFault, vals *[64]float64) float64
	// StepOperands returns the quantized (weight, activation) operand pair
	// of one MAC step of one output element — the operands macFaulty would
	// see — without replaying the chain. The analytical pre-screen uses
	// them to classify provably-masked flips before any replay.
	StepOperands(ctx *Context, in *tensor.Tensor, outputIndex, macStep int) (w, x float64)
}

// FlipOperand maps a latch target to its numeric flip kernel operand. It
// panics for TargetAccum, whose flip applies after the MAC rather than to
// the step product.
func FlipOperand(t Target) numeric.Operand {
	switch t {
	case TargetWeight:
		return numeric.OpWeight
	case TargetInput:
		return numeric.OpInput
	case TargetProduct:
		return numeric.OpProduct
	}
	panic(fmt.Sprintf("layers: target %v has no flip operand", t))
}

// planeChain runs one accumulation chain with per-bit fault lanes: the
// prefix runs golden-only, the faulted step seeds one lane per requested
// bit with the exact macFaulty result for that bit, and the suffix advances
// the golden accumulator plus every live lane with the shared quantized
// step product. A lane that becomes bit-equal to the golden accumulator is
// retired and finalized to the golden chain output.
func planeChain(ctx *Context, pf *PlaneFault, chainLen int, acc float64, tap func(step int) (w, x float64), vals *[64]float64) float64 {
	if pf.MACStep < 0 || pf.MACStep >= chainLen {
		panic(fmt.Sprintf("layers: plane fault MAC step %d out of range [0,%d)", pf.MACStep, chainLen))
	}
	dt := ctx.DType
	quant, mac := dt.QuantFunc(), dt.MACFunc()
	for step := 0; step < pf.MACStep; step++ {
		w, x := tap(step)
		acc = mac(acc, w, x)
	}

	w, x := tap(pf.MACStep)
	live := pf.Bits
	if pf.Target == TargetAccum {
		// macFaulty: FlipBit(MAC(acc, w, x), bit), encoding hoisted.
		e := dt.Encode(dt.MAC(acc, w, x))
		for m := live; m != 0; m &= m - 1 {
			b := mbits.TrailingZeros64(m)
			vals[b] = dt.Decode(e ^ (1 << uint(b)))
		}
	} else {
		// macFaulty: Add(acc, <flipped step product>).
		var prods [64]float64
		dt.FlipProducts(FlipOperand(pf.Target), w, x, &prods)
		for m := live; m != 0; m &= m - 1 {
			b := mbits.TrailingZeros64(m)
			vals[b] = dt.Add(acc, prods[b])
		}
	}
	acc = mac(acc, w, x)

	// conv collects lanes whose accumulator matched the golden one: their
	// remaining suffix — a deterministic function of the stored bits — is
	// the golden suffix, so they stop paying per-step work.
	var conv uint64
	gb := math.Float64bits(acc)
	for m := live; m != 0; m &= m - 1 {
		b := mbits.TrailingZeros64(m)
		if math.Float64bits(vals[b]) == gb {
			conv |= 1 << uint(b)
		}
	}
	for step := pf.MACStep + 1; step < chainLen; step++ {
		w, x := tap(step)
		p := quant(w * x)
		acc = quant(acc + p) // MACq, with the product shared by all lanes
		gb = math.Float64bits(acc)
		for m := live &^ conv; m != 0; m &= m - 1 {
			b := mbits.TrailingZeros64(m)
			v := quant(vals[b] + p)
			vals[b] = v
			if math.Float64bits(v) == gb {
				conv |= 1 << uint(b)
			}
		}
	}
	for m := conv; m != 0; m &= m - 1 {
		b := mbits.TrailingZeros64(m)
		vals[b] = acc
	}
	return acc
}

// chainTap resolves the accumulation-chain geometry of one CONV output
// element: the bias seed and a step→(weight, activation) tap reader,
// matching ForwardElement's operand resolution exactly (cache-aware, with
// zero-padding outside the input plane).
func (l *ConvLayer) chainTap(ctx *Context, in *tensor.Tensor, outputIndex int) (acc float64, chainLen int, tap func(int) (float64, float64)) {
	os := l.OutShape(in.Shape)
	plane := os.H * os.W
	if outputIndex < 0 || outputIndex >= l.OutC*plane {
		panic(fmt.Sprintf("conv %s: output index %d out of range [0,%d)", l.LayerName, outputIndex, l.OutC*plane))
	}
	dt := ctx.DType
	oc := outputIndex / plane
	oh := (outputIndex % plane) / os.W
	ow := outputIndex % os.W

	var qw []float64
	acc = dt.Quantize(l.Bias[oc])
	if ctx.Quant != nil {
		var qb []float64
		qw, qb = ctx.Quant.params(dt, l, l.Weights, l.Bias)
		acc = qb[oc]
	}

	inH, inW := in.Shape.H, in.Shape.W
	khkw := l.KH * l.KW
	wBase := oc * l.InC * khkw
	quant := dt.QuantFunc()
	tap = func(step int) (w, x float64) {
		ic := step / khkw
		r := step % khkw
		ih := oh*l.Stride + r/l.KW - l.Pad
		iw := ow*l.Stride + r%l.KW - l.Pad
		if ih >= 0 && ih < inH && iw >= 0 && iw < inW {
			if ctx.QIn != nil {
				x = ctx.QIn[ic*inH*inW+ih*inW+iw]
			} else {
				x = quant(in.Data[ic*inH*inW+ih*inW+iw])
			}
		}
		if qw != nil {
			w = qw[wBase+step]
		} else {
			w = quant(l.Weights[wBase+step])
		}
		return w, x
	}
	return acc, l.InC * khkw, tap
}

// ForwardElementPlane implements PlaneForwarder.
func (l *ConvLayer) ForwardElementPlane(ctx *Context, in *tensor.Tensor, pf *PlaneFault, vals *[64]float64) float64 {
	acc, chainLen, tap := l.chainTap(ctx, in, pf.OutputIndex)
	return planeChain(ctx, pf, chainLen, acc, tap, vals)
}

// StepOperands implements PlaneForwarder.
func (l *ConvLayer) StepOperands(ctx *Context, in *tensor.Tensor, outputIndex, macStep int) (w, x float64) {
	_, chainLen, tap := l.chainTap(ctx, in, outputIndex)
	if macStep < 0 || macStep >= chainLen {
		panic(fmt.Sprintf("conv %s: MAC step %d out of range [0,%d)", l.LayerName, macStep, chainLen))
	}
	return tap(macStep)
}

// chainTap resolves the dot-product geometry of one FC output neuron,
// matching ForwardElement's operand resolution exactly.
func (l *FCLayer) chainTap(ctx *Context, in *tensor.Tensor, outputIndex int) (acc float64, chainLen int, tap func(int) (float64, float64)) {
	l.OutShape(in.Shape) // validate
	if outputIndex < 0 || outputIndex >= l.Out {
		panic(fmt.Sprintf("fc %s: output index %d out of range [0,%d)", l.LayerName, outputIndex, l.Out))
	}
	dt := ctx.DType

	var qw []float64
	acc = dt.Quantize(l.Bias[outputIndex])
	if ctx.Quant != nil {
		var qb []float64
		qw, qb = ctx.Quant.params(dt, l, l.Weights, l.Bias)
		acc = qb[outputIndex]
	}

	base := outputIndex * l.In
	quant := dt.QuantFunc()
	tap = func(step int) (w, x float64) {
		if ctx.QIn != nil {
			x = ctx.QIn[step]
		} else {
			x = quant(in.Data[step])
		}
		if qw != nil {
			w = qw[base+step]
		} else {
			w = quant(l.Weights[base+step])
		}
		return w, x
	}
	return acc, l.In, tap
}

// ForwardElementPlane implements PlaneForwarder.
func (l *FCLayer) ForwardElementPlane(ctx *Context, in *tensor.Tensor, pf *PlaneFault, vals *[64]float64) float64 {
	acc, chainLen, tap := l.chainTap(ctx, in, pf.OutputIndex)
	return planeChain(ctx, pf, chainLen, acc, tap, vals)
}

// StepOperands implements PlaneForwarder.
func (l *FCLayer) StepOperands(ctx *Context, in *tensor.Tensor, outputIndex, macStep int) (w, x float64) {
	_, chainLen, tap := l.chainTap(ctx, in, outputIndex)
	if macStep < 0 || macStep >= chainLen {
		panic(fmt.Sprintf("fc %s: MAC step %d out of range [0,%d)", l.LayerName, macStep, chainLen))
	}
	return tap(macStep)
}
