package layers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

// TestForwardElementPlaneMatchesScalar is the bit-plane kernel's exactness
// property: for both MAC layer kinds, every numeric format, every latch
// target and random (element, step) sites, one plane replay must produce,
// for every bit position, exactly the value the scalar ForwardElement
// replay of the corresponding Fault produces — plus the golden chain value
// as its return.
func TestForwardElementPlaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	conv := NewConv("conv", 3, 4, 3, 2, 1)
	for i := range conv.Weights {
		conv.Weights[i] = rng.NormFloat64()
	}
	for i := range conv.Bias {
		conv.Bias[i] = rng.NormFloat64() * 0.2
	}
	fc := NewFC("fc", 3*5*5, 7)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.3
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.2
	}
	in := tensor.New(tensor.Shape{C: 3, H: 5, W: 5})
	for i := range in.Data {
		// Mix of negatives, zeros and positives exercises padding, ReLU
		// domains and exact-zero products.
		switch rng.Intn(4) {
		case 0:
			in.Data[i] = 0
		default:
			in.Data[i] = rng.NormFloat64()
		}
	}

	cases := []struct {
		l     PlaneForwarder
		chain int
	}{
		{conv, conv.MACChainLen()},
		{fc, fc.MACChainLen()},
	}
	for _, dt := range numeric.Types {
		width := dt.Width()
		full := ^uint64(0)
		if width < 64 {
			full = uint64(1)<<uint(width) - 1
		}
		for _, cache := range []*QuantCache{nil, NewQuantCache()} {
			for _, tc := range cases {
				dense := tc.l.Forward(&Context{DType: dt, Quant: cache}, in)
				for trial := 0; trial < 12; trial++ {
					oi := rng.Intn(len(dense.Data))
					step := rng.Intn(tc.chain)
					for tgt := Target(0); tgt < NumTargets; tgt++ {
						pf := &PlaneFault{OutputIndex: oi, MACStep: step, Target: tgt, Bits: full}
						var vals [64]float64
						g := tc.l.ForwardElementPlane(&Context{DType: dt, Quant: cache}, in, pf, &vals)
						if math.Float64bits(g) != math.Float64bits(dense.Data[oi]) {
							t.Fatalf("%s %s %v: plane golden %v, dense %v", tc.l.Name(), dt, tgt, g, dense.Data[oi])
						}
						for b := 0; b < width; b++ {
							f := &Fault{OutputIndex: oi, MACStep: step, Target: tgt, Bit: b}
							want := tc.l.ForwardElement(&Context{DType: dt, Fault: f, Quant: cache}, in, oi)
							if math.Float64bits(vals[b]) != math.Float64bits(want) {
								t.Fatalf("%s %s %v oi=%d step=%d bit=%d: plane %v (%x), scalar %v (%x)",
									tc.l.Name(), dt, tgt, oi, step, b,
									vals[b], math.Float64bits(vals[b]), want, math.Float64bits(want))
							}
						}
					}
				}
			}
		}
	}
}

// TestForwardElementPlaneSubsetMask checks that a partial bit mask
// evaluates exactly the requested lanes and leaves the rest of vals
// untouched.
func TestForwardElementPlaneSubsetMask(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	fc := NewFC("fc", 9, 4)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64()
	}
	in := tensor.New(tensor.Shape{C: 1, H: 3, W: 3})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	dt := numeric.Float16
	const sentinel = -12345.0

	mask := uint64(0b1010010001)
	var vals [64]float64
	for i := range vals {
		vals[i] = sentinel
	}
	pf := &PlaneFault{OutputIndex: 2, MACStep: 4, Target: TargetProduct, Bits: mask}
	fc.ForwardElementPlane(&Context{DType: dt}, in, pf, &vals)
	for b := 0; b < 64; b++ {
		set := mask&(uint64(1)<<uint(b)) != 0
		if set && vals[b] == sentinel {
			t.Errorf("bit %d requested but not written", b)
		}
		if !set && vals[b] != sentinel {
			t.Errorf("bit %d not requested but written to %v", b, vals[b])
		}
	}
}

// TestStepOperandsMatchChain pins StepOperands against the operands the
// scalar faulted replay consumes: flipping a weight operand via macFaulty
// must equal recomputing the chain with the flipped product built from
// StepOperands' (w, x).
func TestStepOperandsMatchChain(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	conv := NewConv("conv", 2, 3, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = rng.NormFloat64()
	}
	in := tensor.New(tensor.Shape{C: 2, H: 4, W: 4})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	for _, dt := range numeric.Types {
		ctx := &Context{DType: dt}
		dense := conv.Forward(ctx, in)
		for trial := 0; trial < 8; trial++ {
			oi := rng.Intn(len(dense.Data))
			step := rng.Intn(conv.MACChainLen())
			w, x := conv.StepOperands(ctx, in, oi, step)
			// The operands must already be quantized: re-quantization is a
			// bit-exact no-op.
			if math.Float64bits(dt.Quantize(w)) != math.Float64bits(w) ||
				math.Float64bits(dt.Quantize(x)) != math.Float64bits(x) {
				t.Fatalf("%s oi=%d step=%d: operands not quantized", dt, oi, step)
			}
			var prods [64]float64
			dt.FlipProducts(numeric.OpWeight, w, x, &prods)
			bit := rng.Intn(dt.Width())
			f := &Fault{OutputIndex: oi, MACStep: step, Target: TargetWeight, Bit: bit}
			want := conv.ForwardElement(&Context{DType: dt, Fault: f}, in, oi)
			pf := &PlaneFault{OutputIndex: oi, MACStep: step, Target: TargetWeight, Bits: uint64(1) << uint(bit)}
			var vals [64]float64
			conv.ForwardElementPlane(ctx, in, pf, &vals)
			if math.Float64bits(vals[bit]) != math.Float64bits(want) {
				t.Fatalf("%s oi=%d step=%d bit=%d: plane %v, scalar %v", dt, oi, step, bit, vals[bit], want)
			}
		}
	}
}

// TestFlipOperandPanicsForAccum documents that accumulator flips have no
// product-flip kernel (they apply after the MAC).
func TestFlipOperandPanicsForAccum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FlipOperand(TargetAccum) did not panic")
		}
	}()
	FlipOperand(TargetAccum)
}
