package layers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/tensor"
)

func doubleCtx() *Context { return &Context{DType: numeric.Double} }

func TestKindString(t *testing.T) {
	want := map[Kind]string{Conv: "CONV", FC: "FC", Pool: "POOL", ReLU: "ReLU", LRN: "LRN", Softmax: "SOFTMAX"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 reproduces the input.
	l := NewConv("c", 1, 1, 1, 1, 0)
	l.Weights[0] = 1
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 2, W: 2}, []float64{1, 2, 3, 4})
	out := l.Forward(doubleCtx(), in)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("out = %v, want identity", out.Data)
		}
	}
}

func TestConvKnownResult(t *testing.T) {
	// 2x2 input, 2x2 all-ones kernel, no pad: single output = sum + bias.
	l := NewConv("c", 1, 1, 2, 1, 0)
	for i := range l.Weights {
		l.Weights[i] = 1
	}
	l.Bias[0] = 0.5
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 2, W: 2}, []float64{1, 2, 3, 4})
	out := l.Forward(doubleCtx(), in)
	if out.Shape != (tensor.Shape{C: 1, H: 1, W: 1}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if out.Data[0] != 10.5 {
		t.Errorf("out = %v, want 10.5", out.Data[0])
	}
}

func TestConvPadding(t *testing.T) {
	// 3x3 kernel, pad 1, stride 1 keeps spatial size; corners see zeros.
	l := NewConv("c", 1, 1, 3, 1, 1)
	for i := range l.Weights {
		l.Weights[i] = 1
	}
	in := tensor.New(tensor.Shape{C: 1, H: 3, W: 3})
	in.Fill(1)
	out := l.Forward(doubleCtx(), in)
	if out.Shape != in.Shape {
		t.Fatalf("shape = %v, want %v", out.Shape, in.Shape)
	}
	if out.At(0, 0, 0) != 4 { // corner: 2x2 window inside
		t.Errorf("corner = %v, want 4", out.At(0, 0, 0))
	}
	if out.At(0, 1, 1) != 9 { // center: full window
		t.Errorf("center = %v, want 9", out.At(0, 1, 1))
	}
}

func TestConvStride(t *testing.T) {
	l := NewConv("c", 1, 1, 1, 2, 0)
	l.Weights[0] = 1
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 4, W: 4}, []float64{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	})
	out := l.Forward(doubleCtx(), in)
	if out.Shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	want := []float64{0, 2, 8, 10}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("out = %v, want %v", out.Data, want)
			break
		}
	}
}

func TestConvMultiChannel(t *testing.T) {
	// Two input channels summed by a 1x1 kernel with weights (2, 3).
	l := NewConv("c", 2, 1, 1, 1, 0)
	l.Weights[l.WeightIndex(0, 0, 0, 0)] = 2
	l.Weights[l.WeightIndex(0, 1, 0, 0)] = 3
	in := tensor.FromSlice(tensor.Shape{C: 2, H: 1, W: 1}, []float64{10, 100})
	out := l.Forward(doubleCtx(), in)
	if out.Data[0] != 320 {
		t.Errorf("out = %v, want 320", out.Data[0])
	}
}

func TestConvMACsCount(t *testing.T) {
	l := NewConv("c", 3, 8, 3, 1, 1)
	in := tensor.Shape{C: 3, H: 8, W: 8}
	os := l.OutShape(in)
	want := int64(os.Elems()) * int64(3*3*3)
	if got := l.MACs(in); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
	if got := l.MACChainLen(); got != 27 {
		t.Errorf("MACChainLen = %d, want 27", got)
	}
}

func TestConvChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on channel mismatch")
		}
	}()
	NewConv("c", 3, 1, 1, 1, 0).OutShape(tensor.Shape{C: 2, H: 2, W: 2})
}

func TestFCKnownResult(t *testing.T) {
	l := NewFC("f", 3, 2)
	copy(l.Weights, []float64{1, 2, 3, 4, 5, 6})
	copy(l.Bias, []float64{0.5, -0.5})
	in := tensor.FromSlice(tensor.Shape{C: 3, H: 1, W: 1}, []float64{1, 1, 1})
	out := l.Forward(doubleCtx(), in)
	if out.Data[0] != 6.5 || out.Data[1] != 14.5 {
		t.Errorf("out = %v, want [6.5 14.5]", out.Data)
	}
}

func TestFCFlattensSpatialInput(t *testing.T) {
	l := NewFC("f", 4, 1)
	copy(l.Weights, []float64{1, 1, 1, 1})
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 2, W: 2}, []float64{1, 2, 3, 4})
	out := l.Forward(doubleCtx(), in)
	if out.Data[0] != 10 {
		t.Errorf("out = %v, want 10", out.Data[0])
	}
}

func TestFCSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on size mismatch")
		}
	}()
	NewFC("f", 3, 1).OutShape(tensor.Shape{C: 4, H: 1, W: 1})
}

func TestReLU(t *testing.T) {
	l := NewReLU("r")
	in := tensor.FromSlice(tensor.Shape{C: 4, H: 1, W: 1}, []float64{-2, 0, 3, math.NaN()})
	out := l.Forward(doubleCtx(), in)
	want := []float64{0, 0, 3, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("ReLU out = %v, want %v", out.Data, want)
			break
		}
	}
}

func TestPool(t *testing.T) {
	l := NewPool("p", 2, 2)
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 4, W: 4}, []float64{
		1, 2, 5, 0,
		3, 4, 1, 1,
		0, 0, 9, 2,
		0, 7, 1, 1,
	})
	out := l.Forward(doubleCtx(), in)
	if out.Shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	want := []float64{4, 5, 7, 9}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("pool out = %v, want %v", out.Data, want)
			break
		}
	}
}

func TestPoolMasksNegativeDeviation(t *testing.T) {
	// A fault that drives one value very negative is invisible after max
	// pooling as long as a neighbour wins the window — the POOL masking
	// effect from §5.1.4.
	l := NewPool("p", 2, 2)
	golden := tensor.FromSlice(tensor.Shape{C: 1, H: 2, W: 2}, []float64{1, 2, 3, 4})
	faulty := golden.Clone()
	faulty.Data[0] = -1e30
	og := l.Forward(doubleCtx(), golden)
	of := l.Forward(doubleCtx(), faulty)
	if og.Data[0] != of.Data[0] {
		t.Errorf("pool did not mask negative deviation: %v vs %v", og.Data[0], of.Data[0])
	}
}

func TestLRNShrinksLargeDeviation(t *testing.T) {
	// LRN divides by a power of the local energy, so a huge activation is
	// pulled back by orders of magnitude (the Fig. 7 effect).
	l := NewLRN("n")
	l.Alpha = 1 // strengthen for the test
	in := tensor.New(tensor.Shape{C: 8, H: 1, W: 1})
	in.Fill(1)
	in.Data[3] = 1e6
	out := l.Forward(doubleCtx(), in)
	if out.Data[3] >= 1e4 {
		t.Errorf("LRN output %v, want large deviation suppressed", out.Data[3])
	}
	// Fault-free values match the closed form: channel 0's window covers
	// channels 0..2, so ss=3 and out = 1/(k + alpha/n*3)^beta.
	l2 := NewLRN("n2")
	in2 := tensor.New(tensor.Shape{C: 8, H: 1, W: 1})
	in2.Fill(1)
	out2 := l2.Forward(doubleCtx(), in2)
	want := 1 / math.Pow(l2.K+l2.Alpha/float64(l2.N)*3, l2.Beta)
	if math.Abs(out2.Data[0]-want) > 1e-12 {
		t.Errorf("LRN fault-free output = %v, want %v", out2.Data[0], want)
	}
}

func TestLRNHandlesInf(t *testing.T) {
	l := NewLRN("n")
	in := tensor.New(tensor.Shape{C: 4, H: 1, W: 1})
	in.Data[1] = math.Inf(1)
	out := l.Forward(doubleCtx(), in)
	for i, v := range out.Data {
		if math.IsNaN(v) {
			t.Errorf("LRN out[%d] is NaN", i)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	l := NewSoftmax("s")
	in := tensor.FromSlice(tensor.Shape{C: 4, H: 1, W: 1}, []float64{1, 2, 3, 4})
	out := l.Forward(doubleCtx(), in)
	var sum float64
	for _, v := range out.Data {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(out.Data[3] > out.Data[2] && out.Data[2] > out.Data[1]) {
		t.Errorf("softmax not monotone: %v", out.Data)
	}
}

func TestSoftmaxExtremeInputs(t *testing.T) {
	l := NewSoftmax("s")
	in := tensor.FromSlice(tensor.Shape{C: 3, H: 1, W: 1}, []float64{1e300, 1, math.NaN()})
	out := l.Forward(doubleCtx(), in)
	var sum float64
	for _, v := range out.Data {
		if math.IsNaN(v) {
			t.Fatalf("softmax produced NaN: %v", out.Data)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %v", sum)
	}
}

func TestSoftmaxAllNaN(t *testing.T) {
	l := NewSoftmax("s")
	in := tensor.FromSlice(tensor.Shape{C: 2, H: 1, W: 1}, []float64{math.NaN(), math.NaN()})
	out := l.Forward(doubleCtx(), in)
	if out.Data[0] != 0.5 || out.Data[1] != 0.5 {
		t.Errorf("softmax(all NaN) = %v, want uniform", out.Data)
	}
}

func TestConvFaultInjectionTargets(t *testing.T) {
	// Injecting into a specific MAC perturbs exactly the selected output
	// element, and Applied is set.
	l := NewConv("c", 1, 1, 2, 1, 0)
	for i := range l.Weights {
		l.Weights[i] = 1
	}
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 3, W: 3}, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	golden := l.Forward(doubleCtx(), in)

	for _, target := range []Target{TargetWeight, TargetInput, TargetProduct, TargetAccum} {
		f := &Fault{OutputIndex: 1, MACStep: 2, Target: target, Bit: 62}
		ctx := &Context{DType: numeric.Double, Fault: f}
		faulty := l.Forward(ctx, in)
		if !f.Applied {
			t.Errorf("%v: fault not applied", target)
		}
		if faulty.Data[1] == golden.Data[1] {
			t.Errorf("%v: faulted output unchanged", target)
		}
		for i := range golden.Data {
			if i != 1 && faulty.Data[i] != golden.Data[i] {
				t.Errorf("%v: output %d corrupted, expected only index 1", target, i)
			}
		}
	}
}

func TestFCFaultInjection(t *testing.T) {
	l := NewFC("f", 4, 3)
	for i := range l.Weights {
		l.Weights[i] = 0.5
	}
	in := tensor.FromSlice(tensor.Shape{C: 4, H: 1, W: 1}, []float64{1, 2, 3, 4})
	golden := l.Forward(doubleCtx(), in)
	f := &Fault{OutputIndex: 2, MACStep: 3, Target: TargetAccum, Bit: 55}
	faulty := l.Forward(&Context{DType: numeric.Double, Fault: f}, in)
	if !f.Applied {
		t.Fatal("fault not applied")
	}
	if faulty.Data[2] == golden.Data[2] {
		t.Error("faulted output unchanged")
	}
	if faulty.Data[0] != golden.Data[0] || faulty.Data[1] != golden.Data[1] {
		t.Error("non-faulted outputs corrupted")
	}
}

func TestFaultLastMACStep(t *testing.T) {
	// Boundary: the final MAC step of the chain is reachable.
	l := NewConv("c", 2, 1, 2, 1, 0)
	for i := range l.Weights {
		l.Weights[i] = 1
	}
	in := tensor.New(tensor.Shape{C: 2, H: 2, W: 2})
	in.Fill(1)
	last := l.MACChainLen() - 1
	f := &Fault{OutputIndex: 0, MACStep: last, Target: TargetProduct, Bit: 62}
	l.Forward(&Context{DType: numeric.Double, Fault: f}, in)
	if !f.Applied {
		t.Error("fault at last MAC step not applied")
	}
}

func TestQuantizedForwardMatchesManualFixedPoint(t *testing.T) {
	// In 16b_rb10 a conv of large values saturates at the format maximum.
	l := NewConv("c", 1, 1, 1, 1, 0)
	l.Weights[0] = 30
	in := tensor.FromSlice(tensor.Shape{C: 1, H: 1, W: 1}, []float64{30})
	out := l.Forward(&Context{DType: numeric.Fx16RB10}, in)
	if want := numeric.Fx16RB10.MaxValue(); out.Data[0] != want {
		t.Errorf("saturating conv = %v, want %v", out.Data[0], want)
	}
}

func TestForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewConv("c", 2, 3, 3, 1, 1)
	for i := range l.Weights {
		l.Weights[i] = rng.NormFloat64()
	}
	in := tensor.New(tensor.Shape{C: 2, H: 5, W: 5})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	a := l.Forward(&Context{DType: numeric.Float16}, in)
	b := l.Forward(&Context{DType: numeric.Float16}, in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
}

func TestOutShapeFormulas(t *testing.T) {
	cases := []struct {
		k, s, p  int
		in, want int
	}{
		{3, 1, 1, 8, 8},
		{3, 2, 1, 8, 4},
		{5, 1, 2, 8, 8},
		{2, 2, 0, 8, 4},
	}
	for _, c := range cases {
		l := NewConv("c", 1, 1, c.k, c.s, c.p)
		os := l.OutShape(tensor.Shape{C: 1, H: c.in, W: c.in})
		if os.H != c.want || os.W != c.want {
			t.Errorf("k=%d s=%d p=%d in=%d: out = %dx%d, want %d", c.k, c.s, c.p, c.in, os.H, os.W, c.want)
		}
	}
}
