package campaign

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinj"
	"repro/internal/layers"
	"repro/internal/models"
)

// TestSpecEvalValidation covers the Eval field's normalization rules: only
// the known modes pass, site modes demand the uniform selector, and the
// shard count of a site-draw campaign clamps to its draw-unit count rather
// than its injection count.
func TestSpecEvalValidation(t *testing.T) {
	bad := []Spec{
		{N: 10, Eval: "site"},
		{N: 10, Eval: "bitplane"},
		{N: 10, Eval: "site-bitplane", Select: "perbit", Param: 3},
		{N: 10, Eval: "site-scalar", Select: "perlayer"},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Fatalf("bad spec %d passed validation: %+v", i, s)
		}
	}

	s := Spec{N: 40, DType: "16b_rb10", Shards: 64, Eval: "site-scalar"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if want := faultinj.DrawUnits(40, 16); s.Shards != want {
		t.Fatalf("site-mode shards clamped to %d, want %d draw units", s.Shards, want)
	}
	b := Spec{N: 64, Surface: "buffer", Buffer: "psum", Eval: "site-bitplane"}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
}

// TestSiteEvalSoloModesBitIdentical runs the same spec through both
// site-draw modes end-to-end at the campaign layer: the bit-plane fast
// path must reproduce the scalar oracle's report exactly (PreMasked is the
// one permitted difference — the scalar mode simulates what the pre-screen
// proves).
func TestSiteEvalSoloModesBitIdentical(t *testing.T) {
	for _, dtype := range []string{"FLOAT16", "16b_rb10"} {
		for _, sampling := range []string{"uniform", "stratified"} {
			spec := testSpec(dtype)
			spec.Sampling = sampling
			spec.Eval = "site-scalar"
			want, err := Solo(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			spec.Eval = "site-bitplane"
			got, err := Solo(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, dtype+"/"+sampling, got, want)
			if want.PreMasked != 0 {
				t.Errorf("%s/%s: scalar mode pre-masked %d", dtype, sampling, want.PreMasked)
			}
		}
	}
}

// TestSiteEvalDistributedMatchesSolo extends the distributed contract to a
// site-draw campaign: a bit-plane campaign sharded over loopback workers
// merges bit-identical to the single-process run — PreMasked tally
// included — with the stratified design allocating whole draw units.
func TestSiteEvalDistributedMatchesSolo(t *testing.T) {
	spec := testSpec("16b_rb10")
	spec.Sampling = "stratified"
	spec.Eval = "site-bitplane"
	want, err := Solo(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, srv, 2, NewGoldenCache())

	select {
	case <-co.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("campaign did not finish: %d/%d shards", co.CompletedShards(), spec.Shards)
	}
	got, err := co.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "distributed", got.Datapath, want)
	if got.Datapath.PreMasked != want.PreMasked {
		t.Fatalf("distributed PreMasked %d, solo %d", got.Datapath.PreMasked, want.PreMasked)
	}
	if want.PreMasked == 0 {
		t.Error("bit-plane campaign never pre-masked an injection")
	}
}

// TestBufferSiteEvalDistributedMatchesSolo is the buffer-surface version:
// a PSum REG site-draw campaign distributes bit-identically, including the
// pre-screen tally.
func TestBufferSiteEvalDistributedMatchesSolo(t *testing.T) {
	spec := bufSpec("stratified")
	spec.Buffer = "psum"
	spec.Eval = "site-bitplane"
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	ec, b, err := spec.NewBufferCampaign()
	if err != nil {
		t.Fatal(err)
	}
	want := ec.Run(b, spec.BufferOptions())

	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, srv, 2, nil)

	select {
	case <-co.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("campaign did not finish: %d/%d shards", co.CompletedShards(), spec.Shards)
	}
	got, err := co.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBufferBitIdentical(t, "buffer site mode", got.Buffer, want)
	if got.Buffer.PreMasked != want.PreMasked {
		t.Fatalf("distributed PreMasked %d, solo %d", got.Buffer.PreMasked, want.PreMasked)
	}
}

// TestBufferWeightsDirCampaign pins the weights plumbing of buffer
// campaigns: a spec with WeightsDir must validate, build its per-shard
// networks from the saved weights, and run end-to-end.
func TestBufferWeightsDirCampaign(t *testing.T) {
	dir := t.TempDir()
	src := models.Build("ConvNet")
	src.Layers[0].(*layers.ConvLayer).Weights[0] = -9
	if err := models.SaveWeights(src, filepath.Join(dir, "ConvNet.weights")); err != nil {
		t.Fatal(err)
	}

	spec := bufSpec("uniform")
	spec.Buffer = "psum"
	spec.WeightsDir = dir
	if err := spec.Normalize(); err != nil {
		t.Fatalf("buffer spec with weights dir rejected: %v", err)
	}
	ec, b, err := spec.NewBufferCampaign()
	if err != nil {
		t.Fatal(err)
	}
	net := ec.Build()
	if got := net.Layers[0].(*layers.ConvLayer).Weights[0]; got != -9 {
		t.Fatalf("Build() ignored WeightsDir: weight %v, want -9", got)
	}
	r := ec.Run(b, spec.BufferOptions())
	if r.Counts.Trials != spec.N {
		t.Fatalf("weights-dir buffer campaign ran %d injections, want %d", r.Counts.Trials, spec.N)
	}

	// A corrupt weights file must fail eagerly at campaign construction.
	badDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(badDir, "ConvNet.weights"), []byte("not weights"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec.WeightsDir = badDir
	if _, _, err := spec.NewBufferCampaign(); err == nil {
		t.Fatal("corrupt weights dir did not fail campaign construction")
	}
}
