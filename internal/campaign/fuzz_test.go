package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinj"
)

// FuzzCheckpoint throws arbitrary bytes at the checkpoint loader. The
// contract under fuzz: openCheckpoint never panics, never accepts an entry
// outside the ledger, and every recovered entry sits at its own slot. The
// seeds cover the interesting shapes — valid log, torn tail, corrupt
// middle line, wrong version, stratified ledger — so mutations explore the
// parser's edges rather than only the "not JSON" rejection.
func FuzzCheckpoint(f *testing.F) {
	spec := Spec{Net: "ConvNet", DType: "FLOAT16", N: 40, Inputs: 1, Seed: 3, Shards: 2}
	if err := spec.Normalize(); err != nil {
		f.Fatal(err)
	}
	strat := spec
	strat.Sampling = "stratified"
	if err := strat.Normalize(); err != nil {
		f.Fatal(err)
	}

	hdr, _ := json.Marshal(checkpointHeader{Version: checkpointVersion, Spec: spec, Shards: spec.Slots()})
	stratHdr, _ := json.Marshal(checkpointHeader{Version: checkpointVersion, Spec: strat, Shards: strat.Slots()})
	rep := &Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
	rep.Datapath.Masked = 1
	entry, _ := json.Marshal(checkpointEntry{Shard: 0, Retries: 1, Report: rep})
	badVersion, _ := json.Marshal(checkpointHeader{Version: 1, Spec: spec, Shards: spec.Slots()})

	line := func(bs ...[]byte) []byte {
		var out []byte
		for _, b := range bs {
			out = append(out, b...)
			out = append(out, '\n')
		}
		return out
	}
	f.Add([]byte{})
	f.Add(line(hdr))
	f.Add(line(hdr, entry))
	f.Add(line(stratHdr, entry))
	f.Add(append(line(hdr, entry), []byte(`{"shard":1,"report"`)...)) // torn tail
	f.Add(line(hdr, []byte(`{"shard":1}`), entry))                    // corrupt middle
	f.Add(line(hdr, []byte(`{"shard":99,"report":{}}`)))              // slot out of range
	f.Add(line(badVersion, entry))
	f.Add([]byte("not json at all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, s := range []Spec{spec, strat} {
			p := filepath.Join(t.TempDir(), "campaign.ckpt")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			log, err := openCheckpoint(p, s)
			if err != nil {
				continue
			}
			if log.loaded {
				if len(log.entries) != s.Slots() {
					t.Fatalf("ledger sized %d, want %d", len(log.entries), s.Slots())
				}
				for slot := range log.entries {
					e := &log.entries[slot]
					if e.Report != nil && e.Shard != slot {
						t.Fatalf("entry for slot %d recovered at slot %d", e.Shard, slot)
					}
				}
			}
			log.Close()
		}
	})
}
