package campaign

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/systolic"
)

func sysSpec(sampling string) Spec {
	return Spec{
		Net: "ConvNet", DType: "16b_rb10", N: 60, Inputs: 2, Seed: 11,
		Shards: 3, Surface: "systolic", Sampling: sampling,
	}
}

// assertSystolicBitIdentical fails unless two systolic reports are
// bit-for-bit equal, including per-latch tallies and the per-stratum
// tallies of stratified campaigns.
func assertSystolicBitIdentical(t *testing.T, label string, got, want *systolic.Report) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil systolic report (got=%v want=%v)", label, got != nil, want != nil)
	}
	if got.Counts != want.Counts || got.PerLatch != want.PerLatch ||
		got.Detection != want.Detection || got.ArchMasked != want.ArchMasked ||
		got.PreMasked != want.PreMasked {
		t.Fatalf("%s: counts diverged:\n got %+v\nwant %+v", label, got, want)
	}
	if (got.Strata == nil) != (want.Strata == nil) {
		t.Fatalf("%s: strata presence diverged", label)
	}
	if want.Strata == nil {
		return
	}
	g, w := got.Strata, want.Strata
	if g.Blocks != w.Blocks || g.Bits != w.Bits || len(g.Counts) != len(w.Counts) {
		t.Fatalf("%s: strata dims diverged", label)
	}
	for h := range w.Counts {
		if math.Float64bits(g.Weight[h]) != math.Float64bits(w.Weight[h]) {
			t.Fatalf("%s: stratum %d weight diverged", label, h)
		}
		if g.Counts[h] != w.Counts[h] {
			t.Fatalf("%s: stratum %d counts diverged: %+v vs %+v", label, h, g.Counts[h], w.Counts[h])
		}
	}
}

// TestSystolicDistributedMatchesSolo extends the core contract to the
// systolic surface across its dataflow axis: a systolic campaign sharded
// over loopback workers merges bit-identical to the raw
// systolic.Campaign.Run of the same spec, for both sampling designs, a
// site-draw eval mode, MBU campaigns, and all three dataflows.
func TestSystolicDistributedMatchesSolo(t *testing.T) {
	cases := []struct {
		name     string
		sampling string
		eval     string
		mbu      int
		dataflow string
	}{
		{"uniform", "uniform", "", 0, ""},
		{"stratified", "stratified", "", 0, ""},
		{"site-bitplane", "uniform", "site-bitplane", 0, ""},
		{"mbu3", "stratified", "", 3, ""},
		{"output-uniform", "uniform", "", 0, "output"},
		{"output-stratified-mbu3", "stratified", "", 3, "output"},
		{"output-site-bitplane", "uniform", "site-bitplane", 0, "output"},
		{"input-uniform-mbu2", "uniform", "", 2, "input"},
		{"input-stratified", "stratified", "", 0, "input"},
		{"input-site-bitplane", "uniform", "site-bitplane", 0, "input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := sysSpec(tc.sampling)
			spec.Eval = tc.eval
			spec.MBU = tc.mbu
			spec.Dataflow = tc.dataflow
			if err := spec.Normalize(); err != nil {
				t.Fatal(err)
			}
			// The reference is the surface's own API, not SoloReport — the
			// distributed path must reproduce systolic exactly, not merely
			// itself.
			sc, err := spec.NewSystolicCampaign()
			if err != nil {
				t.Fatal(err)
			}
			want := sc.Run(spec.SystolicOptions())

			solo, _, err := SoloReport(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSystolicBitIdentical(t, "solo", solo.Systolic, want)

			co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()
			runWorkers(t, srv, 2, NewGoldenCache())
			select {
			case <-co.Done():
			case <-time.After(60 * time.Second):
				t.Fatalf("campaign did not finish: %d/%d slots", co.CompletedShards(), spec.Slots())
			}
			got, err := co.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertSystolicBitIdentical(t, "distributed", got.Systolic, want)

			// The wire report serializes the inner systolic report verbatim,
			// so distributed -out byte-compares against a solo systolic run.
			gj, _ := json.Marshal(got.Systolic)
			wj, _ := json.Marshal(want)
			if string(gj) != string(wj) {
				t.Fatalf("systolic report JSON diverged:\n got %s\nwant %s", gj, wj)
			}

			snap := co.Snapshot()
			if !snap.Done || snap.Injections != spec.N {
				t.Fatalf("snapshot off: done=%v injections=%d want %d", snap.Done, snap.Injections, spec.N)
			}
			if len(snap.PerBlock) != 0 {
				t.Fatal("systolic snapshot has datapath per-block aggregates")
			}
			if tc.sampling == "stratified" && len(snap.StrataWeights) == 0 {
				t.Fatal("stratified systolic snapshot missing strata weights")
			}
		})
	}
}

// TestSystolicCheckpointResume kills a stratified systolic campaign after
// two pilot slots and resumes from the checkpoint: the resumed coordinator
// must restore those slots, rebuild the Neyman allocation at the
// pilot→main boundary, and still finish bit-identical to the
// uninterrupted solo run — including under the output-stationary dataflow
// with a multi-bit upset, whose pilot strata shape the allocation.
func TestSystolicCheckpointResume(t *testing.T) {
	cases := []struct {
		name     string
		dataflow string
		mbu      int
	}{
		{"weight", "", 0},
		{"output-mbu3", "output", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := sysSpec("stratified")
			spec.Dataflow = tc.dataflow
			spec.MBU = tc.mbu
			want, _, err := SoloReport(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			cp := filepath.Join(t.TempDir(), "campaign.ckpt")

			co1, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv1 := httptest.NewServer(co1.Handler())
			w := &Worker{Base: srv1.URL, Poll: 10 * time.Millisecond, Client: srv1.Client(), MaxLeases: 2}
			if err := w.Run(context.Background()); err != nil {
				t.Fatalf("partial worker: %v", err)
			}
			srv1.Close()
			if got := co1.CompletedShards(); got != 2 {
				t.Fatalf("partial run completed %d slots, want 2", got)
			}

			co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if co2.Resumed() != 2 {
				t.Fatalf("resumed %d slots from checkpoint, want 2", co2.Resumed())
			}
			srv2 := httptest.NewServer(co2.Handler())
			defer srv2.Close()
			runWorkers(t, srv2, 2, nil)
			select {
			case <-co2.Done():
			case <-time.After(60 * time.Second):
				t.Fatal("resumed systolic campaign did not finish")
			}
			got, err := co2.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertSystolicBitIdentical(t, "systolic resume", got.Systolic, want.Systolic)
		})
	}
}

// TestSystolicPriorSeededAllocation runs the strata-artifact contract on
// the systolic surface: a prior-allocated distributed campaign must merge
// bit-identical to its solo twin, with every lease a table-carrying main
// phase.
func TestSystolicPriorSeededAllocation(t *testing.T) {
	fresh := sysSpec("stratified")
	if err := fresh.Normalize(); err != nil {
		t.Fatal(err)
	}
	sc, err := fresh.NewSystolicCampaign()
	if err != nil {
		t.Fatal(err)
	}
	var pilot *engine.StrataSummary
	opt := fresh.SystolicOptions()
	opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
	sc.Run(opt)
	if pilot == nil {
		t.Fatal("stratified run never surfaced its pilot strata")
	}
	pilotN, mainN := engine.PilotBudget(fresh.N, fresh.PilotN)

	path := filepath.Join(t.TempDir(), "strata.json")
	if err := engine.WriteStrataArtifact(path, &engine.StrataArtifact{
		Surface: fresh.Surface, Net: fresh.Net, DType: fresh.DType,
		N: fresh.N, PilotN: pilotN, Pilot: pilot,
	}); err != nil {
		t.Fatal(err)
	}

	seeded := sysSpec("stratified")
	seeded.N = mainN
	seeded.PriorPath = path
	if err := seeded.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !seeded.PriorAllocated() || seeded.Slots() != seeded.Shards {
		t.Fatalf("prior-seeded spec geometry off: pilot_n=%d slots=%d", seeded.PilotN, seeded.Slots())
	}

	want, soloPilot, err := SoloReport(seeded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if soloPilot != nil {
		t.Fatal("prior-allocated solo run reported pilot strata")
	}
	co, err := NewCoordinator(Config{Spec: seeded, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	probe := co.lease(time.Now())
	if probe.Lease == nil || probe.Lease.Phase != "main" || probe.Lease.Table == nil {
		t.Fatalf("prior-allocated lease is not a table-carrying main phase: %+v", probe.Lease)
	}
	co.heartbeat(probe.Lease.ID, time.Now().Add(-time.Hour))
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, srv, 2, nil)
	select {
	case <-co.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("prior-allocated systolic campaign did not finish")
	}
	got, err := co.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertSystolicBitIdentical(t, "prior-allocated", got.Systolic, want.Systolic)
}

// TestSpecNormalizeSystolic covers the systolic-surface validation rules
// plus the cross-surface MBU and dataflow matrix: MBU is now valid on
// every surface (bounded by the word and the per-bit evaluation mode),
// while the dataflow axis stays systolic-only.
func TestSpecNormalizeSystolic(t *testing.T) {
	bad := []Spec{
		{N: 10, Surface: "systolic", Buffer: "global"},
		{N: 10, Surface: "systolic", Select: "perbit", Param: 3},
		{N: 10, Surface: "systolic", TrackValues: 5},
		{N: 10, Surface: "systolic", TrackSpread: true},
		{N: 10, Surface: "systolic", MBU: -1},
		{N: 10, Surface: "systolic", DType: "16b_rb10", MBU: 17},
		{N: 10, Surface: "systolic", MBU: 3, Eval: "site-scalar"},
		{N: 10, Surface: "systolic", MBU: 3, Eval: "site-bitplane"},
		{N: 10, Surface: "datapath", MBU: -1},
		{N: 10, Surface: "datapath", DType: "16b_rb10", MBU: 17},
		{N: 10, Surface: "datapath", MBU: 3, Eval: "site-bitplane"},
		{N: 10, Surface: "datapath", MBU: 3, Select: "perbit", Param: 3},
		{N: 10, Surface: "buffer", MBU: 3, Eval: "site-scalar"},
		{N: 10, Surface: "systolic", Dataflow: "rowstat"},
		{N: 10, Surface: "systolic", Dataflow: "weight-stationary"},
		{N: 10, Surface: "datapath", Dataflow: "output"},
		{N: 10, Surface: "buffer", Dataflow: "weight"},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Fatalf("bad spec %d passed validation: %+v", i, s)
		}
	}

	s := Spec{N: 10, Surface: "systolic", MBU: 3}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !s.SystolicSurface() || s.BufferSurface() || s.MBU != 3 {
		t.Fatalf("systolic defaults off: %+v", s)
	}
	opt := s.SystolicOptions()
	if opt.MBU != 3 || opt.N != 10 {
		t.Fatalf("systolic options off: %+v", opt)
	}

	// MBU accepted on the datapath and buffer surfaces, flowing into the
	// per-surface options.
	d := Spec{N: 10, Surface: "datapath", MBU: 3}
	if err := d.Normalize(); err != nil {
		t.Fatalf("datapath MBU spec rejected: %v", err)
	}
	if got := d.Options().MBU; got != 3 {
		t.Fatalf("datapath options MBU = %d, want 3", got)
	}
	b := Spec{N: 10, Surface: "buffer", MBU: 3}
	if err := b.Normalize(); err != nil {
		t.Fatalf("buffer MBU spec rejected: %v", err)
	}
	if got := b.BufferOptions().MBU; got != 3 {
		t.Fatalf("buffer options MBU = %d, want 3", got)
	}

	// Every dataflow name parses on the systolic surface and reaches the
	// campaign's Flow.
	for _, name := range []string{"", "weight", "output", "input"} {
		f := Spec{N: 10, Surface: "systolic", Dataflow: name}
		if err := f.Normalize(); err != nil {
			t.Fatalf("dataflow %q rejected: %v", name, err)
		}
		sc, err := f.NewSystolicCampaign()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := systolic.ParseDataflow(name)
		if sc.Flow != want {
			t.Fatalf("dataflow %q built campaign flow %v, want %v", name, sc.Flow, want)
		}
	}
}
