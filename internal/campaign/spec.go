// Package campaign is the distributed fault-injection orchestration layer:
// it scales the per-injection engine of internal/faultinj from one process
// to a fleet. A coordinator deterministically partitions a campaign's
// injection space into shard leases and serves them over HTTP; workers
// lease shards, execute them through faultinj.RunShard, and push partial
// reports back for merging. The coordinator checkpoints merged state to
// disk (a killed run resumes without re-running completed shards),
// re-leases shards whose workers miss heartbeats, streams live aggregate
// results as NDJSON, and exports expvar counters.
//
// Determinism is the load-bearing property: shard s of S is exactly worker
// s of a single-process faultinj run with Workers=S, so the shard-order
// merge of a distributed campaign is bit-identical to Campaign.Run on one
// machine — regardless of how many workers participated, how shards were
// interleaved, or how many times the coordinator was killed and resumed.
package campaign

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/systolic"
	"repro/internal/tensor"
)

// Spec is the complete, serializable description of one campaign. Two
// processes holding equal specs execute bit-identical work; the spec is
// embedded in every lease (workers need no other configuration) and in the
// checkpoint (resume refuses a mismatched spec).
type Spec struct {
	// Net is one of the paper's model names (models.Names).
	Net string `json:"net"`
	// DType is the numeric format name (numeric.ParseType).
	DType string `json:"dtype"`
	// N is the total number of injections.
	N int `json:"n"`
	// Inputs is the number of distinct campaign images cycled through.
	Inputs int `json:"inputs"`
	// Seed drives every shard's PRNG stream.
	Seed int64 `json:"seed"`
	// Shards is the partition width S: shard s covers injections
	// s, s+S, s+2S, … exactly as worker s of a single-process run.
	Shards int `json:"shards"`
	// Select names the site selector: "uniform" (Fig. 3), "perbit"
	// (Fig. 4, fixed bit Param) or "perlayer" (Fig. 6, fixed block Param).
	Select string `json:"select"`
	// Param is the fixed bit or block for the non-uniform selectors.
	Param int `json:"param,omitempty"`
	// TrackValues, when positive, samples up to that many activation pairs.
	TrackValues int `json:"track_values,omitempty"`
	// TrackSpread enables the Table 5 final-block mismatch metric.
	TrackSpread bool `json:"track_spread,omitempty"`
	// WeightsDir, when set, loads pre-trained weights (cmd/pretrain
	// output); every participant must see the same directory contents —
	// the golden cache key hashes the loaded weights, and the coordinator
	// never validates worker arithmetic.
	WeightsDir string `json:"weights_dir,omitempty"`
	// Sampling selects the site-sampling design: "uniform" (default) or
	// "stratified" — the two-phase masking-aware campaign. A stratified
	// campaign's ledger has two slots per shard (pilot then main); the
	// coordinator computes the allocation table from the merged pilot and
	// serializes it into every main-phase lease.
	Sampling string `json:"sampling,omitempty"`
	// PilotN is the stratified pilot budget; Normalize defaults it to
	// faultinj.DefaultPilotN(N) so every participant agrees on the split.
	// Normalize forces it to -1 (pilot-free) when PriorPath seeds the
	// allocation from a previous campaign.
	PilotN int `json:"pilot_n,omitempty"`
	// Surface selects the fault surface: "datapath" (default; faultinj
	// latch campaigns), "buffer" (eyeriss buffer-hierarchy campaigns) or
	// "systolic" (dataflow-parameterized systolic-array campaigns, see
	// Dataflow).
	Surface string `json:"surface,omitempty"`
	// Buffer names the injected buffer class of a buffer-surface campaign:
	// "global", "filter", "img" or "psum" (default "global").
	Buffer string `json:"buffer,omitempty"`
	// Dataflow names the systolic-surface dataflow: "weight" (the
	// default, "" included), "output" or "input" — which operand stays
	// resident in each PE and therefore what corruption front each latch
	// fault expands into (systolic.ParseDataflow). Only valid on the
	// systolic surface.
	Dataflow string `json:"dataflow,omitempty"`
	// MBU is the multi-bit-upset width: every injection flips MBU
	// adjacent bits of the struck latch or buffer word, on any surface. 0
	// and 1 both mean single-bit upsets; values above 1 require the
	// per-bit evaluation mode.
	MBU int `json:"mbu,omitempty"`
	// Eval selects the evaluation design: "" (default, an independent
	// (site, bit) pair per injection — the paper's design) or the
	// site-draw modes "site-scalar" and "site-bitplane", which draw one
	// latch site per word width of injections and evaluate every bit
	// position there — "site-bitplane" through one bit-parallel chain
	// replay behind the analytical masking pre-screen. The two site modes
	// are bit-identical to each other; both require the uniform selector.
	Eval string `json:"eval,omitempty"`
	// PriorPath, for stratified campaigns, points at a strata artifact
	// (engine.StrataArtifact JSON) from a previous campaign of the same
	// geometry: the Neyman allocation is seeded from it and the pilot
	// phase is skipped entirely — every ledger slot is main-phase. Only
	// the coordinator (or solo runner) reads the file; workers receive the
	// derived table inside main-phase leases.
	PriorPath string `json:"prior_path,omitempty"`
}

// SelectorModes lists the valid Select values.
var SelectorModes = []string{"uniform", "perbit", "perlayer"}

// SamplingModes lists the valid Sampling values.
var SamplingModes = []string{"uniform", "stratified"}

// Surfaces lists the valid Surface values.
var Surfaces = []string{"datapath", "buffer", "systolic"}

// EvalModes lists the valid Eval values.
var EvalModes = []string{"", "site-scalar", "site-bitplane"}

// BufferNames lists the valid Buffer values in eyeriss.Buffers order.
var BufferNames = []string{"global", "filter", "img", "psum"}

// ParseBuffer maps a spec buffer name to its eyeriss buffer class.
func ParseBuffer(name string) (eyeriss.Buffer, error) {
	switch name {
	case "global":
		return eyeriss.GlobalBuffer, nil
	case "filter":
		return eyeriss.FilterSRAM, nil
	case "img":
		return eyeriss.ImgReg, nil
	case "psum":
		return eyeriss.PSumReg, nil
	}
	return 0, fmt.Errorf("campaign: unknown buffer %q (have %v)", name, BufferNames)
}

// Normalize applies defaults and validates the spec in place. It must be
// called (once) before a spec is served, checkpointed or executed, so that
// every participant agrees on the effective values.
func (s *Spec) Normalize() error {
	if s.Net == "" {
		s.Net = "AlexNet"
	}
	if !slices.Contains(models.Names, s.Net) {
		return fmt.Errorf("campaign: unknown network %q (have %v)", s.Net, models.Names)
	}
	if s.DType == "" {
		s.DType = "FLOAT16"
	}
	dt, err := numeric.ParseType(s.DType)
	if err != nil {
		return fmt.Errorf("campaign: %v", err)
	}
	if s.N <= 0 {
		return fmt.Errorf("campaign: need a positive injection count, got %d", s.N)
	}
	if s.Inputs <= 0 {
		s.Inputs = 1
	}
	if !slices.Contains(EvalModes, s.Eval) {
		return fmt.Errorf("campaign: unknown eval mode %q (have %v)", s.Eval, EvalModes)
	}
	// Site-draw campaigns stride shards over draw units (one per word
	// width of injections), so that is what bounds useful parallelism.
	shardUnits := s.N
	if s.Eval != "" {
		shardUnits = faultinj.DrawUnits(s.N, dt.Width())
	}
	if s.Shards <= 0 {
		s.Shards = 2 * runtime.NumCPU()
	}
	s.Shards = faultinj.EffectiveShards(s.Shards, shardUnits)
	if s.Select == "" {
		s.Select = "uniform"
	}
	switch s.Select {
	case "uniform":
	case "perbit":
		if s.Param < 0 || s.Param >= dt.Width() {
			return fmt.Errorf("campaign: bit %d out of range for %s", s.Param, s.DType)
		}
	case "perlayer":
		if s.Param < 0 {
			return fmt.Errorf("campaign: negative block %d", s.Param)
		}
	default:
		return fmt.Errorf("campaign: unknown selector %q (have %v)", s.Select, SelectorModes)
	}
	if s.Eval != "" && s.Select != "uniform" {
		return fmt.Errorf("campaign: eval mode %q requires the uniform selector, got %q", s.Eval, s.Select)
	}
	if s.Surface == "" {
		s.Surface = "datapath"
	}
	if s.MBU < 0 {
		return fmt.Errorf("campaign: negative MBU width %d", s.MBU)
	}
	if s.MBU > dt.Width() {
		return fmt.Errorf("campaign: MBU width %d exceeds the %d-bit %s word", s.MBU, dt.Width(), s.DType)
	}
	if s.MBU > 1 && s.Eval != "" {
		return fmt.Errorf("campaign: MBU campaigns require the per-bit evaluation mode, got %q", s.Eval)
	}
	switch s.Surface {
	case "datapath":
		if s.Buffer != "" {
			return fmt.Errorf("campaign: buffer %q set on a datapath-surface spec", s.Buffer)
		}
		if s.MBU > 1 && s.Select != "uniform" {
			return fmt.Errorf("campaign: MBU campaigns require the uniform selector, got %q", s.Select)
		}
	case "buffer":
		if s.Buffer == "" {
			s.Buffer = "global"
		}
		if _, err := ParseBuffer(s.Buffer); err != nil {
			return err
		}
		if s.Select != "uniform" {
			return fmt.Errorf("campaign: buffer campaigns support only the uniform selector, got %q", s.Select)
		}
		if s.TrackValues != 0 || s.TrackSpread {
			return fmt.Errorf("campaign: buffer campaigns do not track values or spread")
		}
	case "systolic":
		if s.Buffer != "" {
			return fmt.Errorf("campaign: buffer %q set on a systolic-surface spec", s.Buffer)
		}
		if s.Select != "uniform" {
			return fmt.Errorf("campaign: systolic campaigns support only the uniform selector, got %q", s.Select)
		}
		if s.TrackValues != 0 || s.TrackSpread {
			return fmt.Errorf("campaign: systolic campaigns do not track values or spread")
		}
		if _, err := systolic.ParseDataflow(s.Dataflow); err != nil {
			return fmt.Errorf("campaign: %v", err)
		}
	default:
		return fmt.Errorf("campaign: unknown surface %q (have %v)", s.Surface, Surfaces)
	}
	if s.Dataflow != "" && s.Surface != "systolic" {
		return fmt.Errorf("campaign: dataflow %q set on a %s-surface spec", s.Dataflow, s.Surface)
	}
	if s.Sampling == "" {
		s.Sampling = "uniform"
	}
	switch s.Sampling {
	case "uniform":
		s.PilotN = 0
		if s.PriorPath != "" {
			return fmt.Errorf("campaign: prior strata only seed stratified campaigns")
		}
	case "stratified":
		if s.Select != "uniform" {
			return fmt.Errorf("campaign: stratified sampling requires the uniform selector, got %q", s.Select)
		}
		if s.PriorPath != "" {
			// Pilot-free: the whole budget is main-phase, allocated from
			// the prior campaign's persisted strata.
			s.PilotN = -1
		} else {
			pilot, _ := faultinj.PilotBudget(s.N, s.PilotN)
			s.PilotN = pilot
		}
	default:
		return fmt.Errorf("campaign: unknown sampling %q (have %v)", s.Sampling, SamplingModes)
	}
	return nil
}

// BufferSurface reports whether the normalized spec targets the Eyeriss
// buffer hierarchy instead of the datapath.
func (s Spec) BufferSurface() bool { return s.Surface == "buffer" }

// SystolicSurface reports whether the normalized spec targets the
// systolic array (any dataflow).
func (s Spec) SystolicSurface() bool { return s.Surface == "systolic" }

// PriorAllocated reports whether the normalized stratified spec skips its
// pilot in favor of a prior campaign's strata.
func (s Spec) PriorAllocated() bool { return s.Stratified() && s.PilotN < 0 }

// Stratified reports whether the normalized spec uses the two-phase
// stratified design.
func (s Spec) Stratified() bool { return s.Sampling == "stratified" }

// Slots returns the coordinator ledger size: one slot per shard for
// uniform campaigns, an interleaved (pilot, main) slot pair per shard for
// stratified ones — slot 2s is shard s's pilot, slot 2s+1 its main phase.
// Merging slot reports in slot order is then exactly the canonical
// pilot₀ ⊕ main₀ ⊕ pilot₁ ⊕ … order of faultinj.Campaign.Run.
// Prior-allocated campaigns run no pilot, so their ledger is one
// main-phase slot per shard.
func (s Spec) Slots() int {
	if s.Stratified() && !s.PriorAllocated() {
		return 2 * s.Shards
	}
	return s.Shards
}

// SlotPhase maps a ledger slot to its phase ("" for uniform campaigns,
// "pilot" or "main" for stratified ones) and phase-local shard index.
func (s Spec) SlotPhase(slot int) (phase string, shard int) {
	if !s.Stratified() {
		return "", slot
	}
	if s.PriorAllocated() {
		return "main", slot
	}
	if slot%2 == 0 {
		return "pilot", slot / 2
	}
	return "main", slot / 2
}

// Type returns the parsed numeric format of a normalized spec.
func (s Spec) Type() numeric.Type {
	dt, err := numeric.ParseType(s.DType)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec not normalized: %v", err))
	}
	return dt
}

// Options assembles the faultinj options every shard of this campaign runs
// under.
func (s Spec) Options() faultinj.Options {
	opt := faultinj.Options{
		N:           s.N,
		Seed:        s.Seed,
		Workers:     s.Shards,
		TrackValues: s.TrackValues,
		TrackSpread: s.TrackSpread,
		MBU:         s.MBU,
	}
	switch s.Select {
	case "perbit":
		opt.Selector = faultinj.BitSelector(s.Param)
	case "perlayer":
		opt.Selector = faultinj.BlockSelector(s.Param)
	}
	if s.Stratified() {
		opt.Sampling = faultinj.SamplingStratified
		opt.PilotN = s.PilotN
	}
	opt.Eval = faultinj.EvalMode(s.Eval)
	return opt
}

// BuildTable derives the stratified main-phase allocation table every
// main-phase lease of this campaign carries, from the merged pilot (or
// prior) strata. The per-bit design allocates mainN injections over the
// (block, bit) grid; site-draw campaigns allocate whole draw units over
// per-block strata, one unit per word width of injections.
func (s Spec) BuildTable(strata *engine.StrataSummary) *engine.StratumTable {
	_, mainN := faultinj.PilotBudget(s.N, s.PilotN)
	if s.Eval != "" {
		return faultinj.BuildSiteStratumTable(strata, faultinj.DrawUnits(mainN, s.Type().Width()))
	}
	return faultinj.BuildStratumTable(strata, mainN)
}

// campaignKey identifies the prepared campaign object a spec needs — the
// fields that shape the network, format and input set. Specs differing
// only in N, Seed, selector or tracking share one prepared campaign (and
// therefore its profile and golden executions).
func (s Spec) campaignKey() string {
	return fmt.Sprintf("%s|%s|%d|%s", s.Net, s.DType, s.Inputs, s.WeightsDir)
}

// build constructs the spec's network and deterministic input set.
func (s Spec) build() (*network.Network, []*tensor.Tensor, error) {
	var net *network.Network
	if s.WeightsDir == "" {
		net = models.Build(s.Net)
	} else {
		n, _, err := models.LoadPretrained(s.Net, s.WeightsDir)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: loading weights: %v", err)
		}
		net = n
	}
	ins := make([]*tensor.Tensor, s.Inputs)
	for i := range ins {
		ins[i] = models.InputFor(s.Net, i)
	}
	return net, ins, nil
}

// NewCampaign builds and wires a faultinj campaign for the spec. When
// goldens is non-nil the campaign resolves golden executions through it,
// sharing them with every other campaign in the process whose
// (network, weights hash, input, dtype) coordinates match.
func (s Spec) NewCampaign(goldens *GoldenCache) (*faultinj.Campaign, error) {
	net, ins, err := s.build()
	if err != nil {
		return nil, err
	}
	c := faultinj.New(net, s.Type(), ins)
	if goldens != nil {
		hash := net.WeightsHash()
		netName, dtName := s.Net, s.DType
		c.GoldenFn = func(i int, compute func() *network.Execution) *network.Execution {
			return goldens.Get(GoldenKey{Net: netName, WeightsHash: hash, DType: dtName, Input: i}, compute)
		}
	}
	return c, nil
}

// BufferOptions assembles the eyeriss options every shard of a
// buffer-surface campaign runs under.
func (s Spec) BufferOptions() eyeriss.Options {
	opt := eyeriss.Options{N: s.N, Seed: s.Seed, Workers: s.Shards, MBU: s.MBU}
	if s.Stratified() {
		opt.Sampling = faultinj.SamplingStratified
		opt.PilotN = s.PilotN
	}
	opt.Eval = engine.EvalMode(s.Eval)
	return opt
}

// NewBufferCampaign builds the eyeriss campaign of a buffer-surface spec
// and resolves its buffer class. The Build closure returns a fresh network
// per shard/phase — eyeriss workers mutate their own instance's weights
// for Filter SRAM faults.
func (s Spec) NewBufferCampaign() (*eyeriss.Campaign, eyeriss.Buffer, error) {
	if !s.BufferSurface() {
		return nil, 0, fmt.Errorf("campaign: spec surface %q is not a buffer campaign", s.Surface)
	}
	buf, err := ParseBuffer(s.Buffer)
	if err != nil {
		return nil, 0, err
	}
	name, dir := s.Net, s.WeightsDir
	ins := make([]*tensor.Tensor, s.Inputs)
	for i := range ins {
		ins[i] = models.InputFor(name, i)
	}
	build := func() *network.Network { return models.Build(name) }
	if dir != "" {
		// Fail fast on a bad weights directory here, where an error can be
		// returned; the per-shard Build closures then load the same files,
		// so every shard sees identical weights (the directory contents are
		// part of the campaign's determinism contract, as on the datapath
		// surface).
		if _, _, err := models.LoadPretrained(name, dir); err != nil {
			return nil, 0, fmt.Errorf("campaign: loading weights: %v", err)
		}
		build = func() *network.Network {
			n, _, err := models.LoadPretrained(name, dir)
			if err != nil {
				panic(fmt.Sprintf("campaign: loading weights: %v", err))
			}
			return n
		}
	}
	return &eyeriss.Campaign{
		Build:  build,
		DType:  s.Type(),
		Inputs: ins,
	}, buf, nil
}

// SystolicOptions assembles the systolic options every shard of a
// systolic-surface campaign runs under.
func (s Spec) SystolicOptions() systolic.Options {
	opt := systolic.Options{N: s.N, Seed: s.Seed, Workers: s.Shards, MBU: s.MBU}
	if s.Stratified() {
		opt.Sampling = faultinj.SamplingStratified
		opt.PilotN = s.PilotN
	}
	opt.Eval = engine.EvalMode(s.Eval)
	return opt
}

// NewSystolicCampaign builds the systolic campaign of a systolic-surface
// spec. The Build closure returns a fresh network per shard/phase, like
// the buffer surface; the array geometry is the package default so every
// participant agrees on the physical address space, and the dataflow
// comes from the spec so every participant expands the same corruption
// fronts.
func (s Spec) NewSystolicCampaign() (*systolic.Campaign, error) {
	if !s.SystolicSurface() {
		return nil, fmt.Errorf("campaign: spec surface %q is not a systolic campaign", s.Surface)
	}
	flow, err := systolic.ParseDataflow(s.Dataflow)
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	name, dir := s.Net, s.WeightsDir
	ins := make([]*tensor.Tensor, s.Inputs)
	for i := range ins {
		ins[i] = models.InputFor(name, i)
	}
	build := func() *network.Network { return models.Build(name) }
	if dir != "" {
		// Fail fast on a bad weights directory here, where an error can be
		// returned; the per-shard Build closures then load the same files,
		// so every shard sees identical weights.
		if _, _, err := models.LoadPretrained(name, dir); err != nil {
			return nil, fmt.Errorf("campaign: loading weights: %v", err)
		}
		build = func() *network.Network {
			n, _, err := models.LoadPretrained(name, dir)
			if err != nil {
				panic(fmt.Sprintf("campaign: loading weights: %v", err))
			}
			return n
		}
	}
	return &systolic.Campaign{
		Build:  build,
		DType:  s.Type(),
		Inputs: ins,
		Array:  systolic.DefaultParams,
		Flow:   flow,
	}, nil
}

// LoadPrior reads the spec's PriorPath strata artifact and validates it
// against the campaign geometry the artifact records (when it records
// one). Only the coordinator and the solo runner call this; workers get
// the derived allocation table inside their main-phase leases.
func (s Spec) LoadPrior() (*engine.StrataSummary, error) {
	a, err := engine.ReadStrataArtifact(s.PriorPath)
	if err != nil {
		return nil, err
	}
	if a.Net != "" && a.Net != s.Net {
		return nil, fmt.Errorf("campaign: prior %s is for network %q, campaign runs %q", s.PriorPath, a.Net, s.Net)
	}
	if a.DType != "" && a.DType != s.DType {
		return nil, fmt.Errorf("campaign: prior %s is for format %q, campaign runs %q", s.PriorPath, a.DType, s.DType)
	}
	if a.Surface != "" && a.Surface != s.Surface {
		return nil, fmt.Errorf("campaign: prior %s is for surface %q, campaign runs %q", s.PriorPath, a.Surface, s.Surface)
	}
	if s.BufferSurface() && a.Buffer != "" && a.Buffer != s.Buffer {
		return nil, fmt.Errorf("campaign: prior %s is for buffer %q, campaign runs %q", s.PriorPath, a.Buffer, s.Buffer)
	}
	return a.Prior(), nil
}
