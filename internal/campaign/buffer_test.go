package campaign

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/eyeriss"
)

func bufSpec(sampling string) Spec {
	return Spec{
		Net: "ConvNet", DType: "16b_rb10", N: 60, Inputs: 2, Seed: 11,
		Shards: 3, Surface: "buffer", Buffer: "global", Sampling: sampling,
	}
}

// assertBufferBitIdentical fails unless two buffer reports are bit-for-bit
// equal, including the per-stratum tallies of stratified campaigns.
func assertBufferBitIdentical(t *testing.T, label string, got, want *eyeriss.Report) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil buffer report (got=%v want=%v)", label, got != nil, want != nil)
	}
	if got.Counts != want.Counts || got.Detection != want.Detection {
		t.Fatalf("%s: counts diverged:\n got %+v\nwant %+v", label, got.Counts, want.Counts)
	}
	if (got.Strata == nil) != (want.Strata == nil) {
		t.Fatalf("%s: strata presence diverged", label)
	}
	if want.Strata == nil {
		return
	}
	g, w := got.Strata, want.Strata
	if g.Blocks != w.Blocks || g.Bits != w.Bits || len(g.Counts) != len(w.Counts) {
		t.Fatalf("%s: strata dims diverged", label)
	}
	for h := range w.Counts {
		if math.Float64bits(g.Weight[h]) != math.Float64bits(w.Weight[h]) {
			t.Fatalf("%s: stratum %d weight diverged", label, h)
		}
		if g.Counts[h] != w.Counts[h] {
			t.Fatalf("%s: stratum %d counts diverged: %+v vs %+v", label, h, g.Counts[h], w.Counts[h])
		}
	}
}

// TestBufferDistributedMatchesSolo extends the core contract to the
// Eyeriss buffer surface: a buffer campaign sharded over loopback workers
// merges bit-identical to the raw eyeriss.Campaign.Run of the same spec,
// for both sampling designs and for multi-bit upsets.
func TestBufferDistributedMatchesSolo(t *testing.T) {
	cases := []struct {
		name     string
		sampling string
		mbu      int
	}{
		{"uniform", "uniform", 0},
		{"stratified", "stratified", 0},
		{"uniform-mbu3", "uniform", 3},
		{"stratified-mbu3", "stratified", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := bufSpec(tc.sampling)
			spec.MBU = tc.mbu
			if err := spec.Normalize(); err != nil {
				t.Fatal(err)
			}
			// The reference is the surface's own API, not SoloReport — the
			// distributed path must reproduce eyeriss exactly, not merely
			// itself.
			ec, b, err := spec.NewBufferCampaign()
			if err != nil {
				t.Fatal(err)
			}
			want := ec.Run(b, spec.BufferOptions())

			solo, _, err := SoloReport(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBufferBitIdentical(t, "solo", solo.Buffer, want)

			co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()
			runWorkers(t, srv, 2, NewGoldenCache())
			select {
			case <-co.Done():
			case <-time.After(60 * time.Second):
				t.Fatalf("campaign did not finish: %d/%d slots", co.CompletedShards(), spec.Slots())
			}
			got, err := co.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertBufferBitIdentical(t, "distributed", got.Buffer, want)

			// The wire report serializes the inner eyeriss report verbatim,
			// so distributed -out byte-compares against a solo eyeriss run.
			gj, _ := json.Marshal(got.Buffer)
			wj, _ := json.Marshal(want)
			if string(gj) != string(wj) {
				t.Fatalf("buffer report JSON diverged:\n got %s\nwant %s", gj, wj)
			}

			snap := co.Snapshot()
			if !snap.Done || snap.Injections != spec.N {
				t.Fatalf("snapshot off: done=%v injections=%d want %d", snap.Done, snap.Injections, spec.N)
			}
			if len(snap.PerBlock) != 0 {
				t.Fatal("buffer snapshot has datapath per-block aggregates")
			}
			if tc.sampling == "stratified" && len(snap.StrataWeights) == 0 {
				t.Fatal("stratified buffer snapshot missing strata weights")
			}
		})
	}
}

// TestBufferCheckpointResume kills a stratified buffer campaign after two
// pilot slots and resumes from the checkpoint: the resumed coordinator
// must restore those slots, rebuild the allocation at the boundary, and
// still finish bit-identical to the uninterrupted solo run.
func TestBufferCheckpointResume(t *testing.T) {
	spec := bufSpec("stratified")
	want, _, err := SoloReport(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")

	co1, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	w := &Worker{Base: srv1.URL, Poll: 10 * time.Millisecond, Client: srv1.Client(), MaxLeases: 2}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("partial worker: %v", err)
	}
	srv1.Close()
	if got := co1.CompletedShards(); got != 2 {
		t.Fatalf("partial run completed %d slots, want 2", got)
	}

	co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if co2.Resumed() != 2 {
		t.Fatalf("resumed %d slots from checkpoint, want 2", co2.Resumed())
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, srv2, 2, nil)
	select {
	case <-co2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed buffer campaign did not finish")
	}
	got, err := co2.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBufferBitIdentical(t, "buffer resume", got.Buffer, want.Buffer)
}

// TestPriorSeededAllocation is the strata-artifact contract: a campaign
// seeded from a previous campaign's persisted pilot strata must build
// exactly the allocation table the fresh pilot produced — given the same
// main-phase budget — and a prior-allocated distributed run must still
// merge bit-identical to its solo twin.
func TestPriorSeededAllocation(t *testing.T) {
	fresh := bufSpec("stratified")
	if err := fresh.Normalize(); err != nil {
		t.Fatal(err)
	}
	ec, b, err := fresh.NewBufferCampaign()
	if err != nil {
		t.Fatal(err)
	}
	var pilot *engine.StrataSummary
	opt := fresh.BufferOptions()
	opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
	ec.Run(b, opt)
	if pilot == nil {
		t.Fatal("stratified run never surfaced its pilot strata")
	}
	pilotN, mainN := engine.PilotBudget(fresh.N, fresh.PilotN)
	freshTable := engine.BuildStratumTable(pilot, mainN)

	path := filepath.Join(t.TempDir(), "strata.json")
	if err := engine.WriteStrataArtifact(path, &engine.StrataArtifact{
		Surface: fresh.Surface, Net: fresh.Net, DType: fresh.DType, Buffer: fresh.Buffer,
		N: fresh.N, PilotN: pilotN, Pilot: pilot,
	}); err != nil {
		t.Fatal(err)
	}

	// A prior-seeded campaign spends its whole budget in the main phase;
	// give it the fresh campaign's main budget so the allocations must
	// coincide exactly.
	seeded := bufSpec("stratified")
	seeded.N = mainN
	seeded.PriorPath = path
	if err := seeded.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !seeded.PriorAllocated() || seeded.Slots() != seeded.Shards {
		t.Fatalf("prior-seeded spec geometry off: pilot_n=%d slots=%d", seeded.PilotN, seeded.Slots())
	}
	if phase, shard := seeded.SlotPhase(1); phase != "main" || shard != 1 {
		t.Fatalf("prior-seeded SlotPhase off: (%q, %d)", phase, shard)
	}
	prior, err := seeded.LoadPrior()
	if err != nil {
		t.Fatal(err)
	}
	_, seededMainN := engine.PilotBudget(seeded.N, seeded.PilotN)
	seededTable := engine.BuildStratumTable(prior, seededMainN)
	if seededTable.MainN != freshTable.MainN ||
		seededTable.Blocks != freshTable.Blocks || seededTable.Bits != freshTable.Bits {
		t.Fatalf("table dims diverged: seeded MainN=%d fresh MainN=%d", seededTable.MainN, freshTable.MainN)
	}
	for h := range freshTable.Alloc {
		if seededTable.Alloc[h] != freshTable.Alloc[h] {
			t.Fatalf("stratum %d allocation diverged: %d vs %d", h, seededTable.Alloc[h], freshTable.Alloc[h])
		}
		if math.Float64bits(seededTable.Weight[h]) != math.Float64bits(freshTable.Weight[h]) {
			t.Fatalf("stratum %d weight diverged", h)
		}
	}

	// Distributed prior-allocated == solo prior-allocated, and the
	// coordinator's every lease is a table-carrying main phase.
	want, soloPilot, err := SoloReport(seeded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if soloPilot != nil {
		t.Fatal("prior-allocated solo run reported pilot strata")
	}
	co, err := NewCoordinator(Config{Spec: seeded, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	probe := co.lease(time.Now())
	if probe.Lease == nil || probe.Lease.Phase != "main" || probe.Lease.Table == nil {
		t.Fatalf("prior-allocated lease is not a table-carrying main phase: %+v", probe.Lease)
	}
	co.heartbeat(probe.Lease.ID, time.Now().Add(-time.Hour))
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, srv, 2, nil)
	select {
	case <-co.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("prior-allocated campaign did not finish")
	}
	if co.PilotStrata() != nil {
		t.Fatal("prior-allocated coordinator reported pilot strata")
	}
	got, err := co.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBufferBitIdentical(t, "prior-allocated", got.Buffer, want.Buffer)
}

// TestSpecNormalizeBuffer covers the buffer-surface and prior-path
// validation rules.
func TestSpecNormalizeBuffer(t *testing.T) {
	bad := []Spec{
		{N: 10, Surface: "cache"},
		{N: 10, Surface: "buffer", Buffer: "l2"},
		{N: 10, Surface: "buffer", Select: "perbit", Param: 3},
		{N: 10, Surface: "buffer", TrackValues: 5},
		{N: 10, Surface: "buffer", TrackSpread: true},
		{N: 10, Surface: "datapath", Buffer: "global"},
		{N: 10, PriorPath: "x.json"}, // prior on a uniform campaign
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Fatalf("bad spec %d passed validation: %+v", i, s)
		}
	}

	s := Spec{N: 10, Surface: "buffer"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Buffer != "global" || !s.BufferSurface() || s.PriorAllocated() {
		t.Fatalf("buffer defaults off: %+v", s)
	}
	d := Spec{N: 10}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.Surface != "datapath" || d.BufferSurface() {
		t.Fatalf("datapath default off: %+v", d)
	}
}
