package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
)

// Worker leases shards from a coordinator or control plane, executes them
// with the incremental fault-injection engine, and reports back. One
// Worker can drive several executor goroutines (Procs); all of them share
// the process-wide golden-execution cache and prepared-campaign memo, so
// the golden pass for each (network, weights, format, input) coordinate is
// paid once per process, not per lease. Against a multi-campaign control
// plane the same loop serves interleaved leases of many campaigns; leases
// carry campaign IDs, which the worker echoes in heartbeats and reports.
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:8711".
	Base string
	// Name labels the worker in errors.
	Name string
	// Token, when set, is sent as an Authorization bearer token on every
	// request — required by control planes configured with tenant keys.
	Token string
	// Procs is the number of concurrent shard executors. Default 1.
	Procs int
	// Poll is the idle re-poll interval when no lease is available and
	// the coordinator supplied no hint. Default 250ms.
	Poll time.Duration
	// MaxBackoff caps the jittered exponential backoff between failed
	// connect/post attempts. Default 5s.
	MaxBackoff time.Duration
	// GiveUp bounds how long lease requests may keep failing at the
	// transport level (coordinator down) before Run returns an error.
	// Default 30s.
	GiveUp time.Duration
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Goldens, when set, shares golden executions with other workers in
	// the process; a private cache is created when nil.
	Goldens *GoldenCache
	// MaxLeases, when positive, makes Run return after completing that
	// many shards — the hook the crash/resume tests and the smoke
	// script's kill-mid-campaign step use.
	MaxLeases int

	// draining, once set by Drain, stops the lease loops taking new work;
	// in-flight shards finish and deliver their reports, then Run returns
	// nil.
	draining atomic.Bool
}

// Drain asks the worker to stop taking new leases and exit cleanly once
// its in-flight shards have reported. Safe to call from a signal handler
// goroutine while Run is live; calling it more than once is harmless.
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain has been requested.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Run leases and executes shards until the coordinator reports the
// campaign done (returns nil), the campaign failed or the coordinator is
// unreachable for GiveUp (returns an error), MaxLeases is reached, Drain
// is requested (in-flight shards still deliver), or ctx is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	procs := w.Procs
	if procs <= 0 {
		procs = 1
	}
	cs := newCampaignSet(w.Goldens)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		leases   int
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	takeLease := func() bool {
		if w.MaxLeases <= 0 {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if leases >= w.MaxLeases {
			cancel()
			return false
		}
		leases++
		return true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.loop(ctx, cs, takeLease); err != nil && ctx.Err() == nil {
				fail(err)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// backoff returns the jittered exponential delay for the given consecutive
// failure count (1-based): base·2^(fails-1) capped at MaxBackoff, then
// jittered uniformly over [d/2, d] so a fleet of workers hammering a
// restarting coordinator spreads out instead of thundering in lockstep.
func (w *Worker) backoff(base time.Duration, fails int) time.Duration {
	maxB := w.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < fails && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	half := d / 2
	return half + rand.N(half+1)
}

func (w *Worker) loop(ctx context.Context, cs *campaignSet, takeLease func() bool) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	giveUp := w.GiveUp
	if giveUp <= 0 {
		giveUp = 30 * time.Second
	}
	var downSince time.Time
	fails := 0
	for {
		if ctx.Err() != nil || w.draining.Load() {
			return nil
		}
		var resp LeaseResponse
		if err := w.post(ctx, "/v1/lease", struct{}{}, &resp); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			now := time.Now()
			if downSince.IsZero() {
				downSince = now
			} else if now.Sub(downSince) > giveUp {
				return fmt.Errorf("campaign worker %s: coordinator unreachable: %v", w.Name, err)
			}
			fails++
			if !sleep(ctx, w.backoff(poll, fails)) {
				return nil
			}
			continue
		}
		downSince = time.Time{}
		fails = 0
		switch {
		case resp.Done:
			return nil
		case resp.Failed != "":
			return fmt.Errorf("campaign worker %s: campaign failed: %s", w.Name, resp.Failed)
		case resp.Lease == nil:
			d := poll
			if resp.RetryMillis > 0 {
				d = time.Duration(resp.RetryMillis) * time.Millisecond
			}
			if !sleep(ctx, d) {
				return nil
			}
			continue
		}
		if !takeLease() {
			return nil
		}
		if err := w.execute(ctx, cs, resp.Lease); err != nil {
			return err
		}
	}
}

// execute runs one leased shard, heartbeating in the background for its
// duration, and delivers the report. A drain requested mid-shard does not
// interrupt it: the shard finishes and its report is delivered before the
// loop notices the drain and exits.
func (w *Worker) execute(ctx context.Context, cs *campaignSet, l *Lease) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		interval := time.Duration(l.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			if !sleep(hbCtx, interval) {
				return
			}
			// A failed or rejected heartbeat is not fatal: the report
			// path is idempotent, so we keep computing and let delivery
			// decide.
			w.post(hbCtx, "/v1/heartbeat", HeartbeatRequest{Campaign: l.Campaign, LeaseID: l.ID}, nil)
		}
	}()
	report, err := w.runLease(cs, l)
	stopHB()
	hbWG.Wait()
	if err != nil {
		return fmt.Errorf("campaign worker %s: %v", w.Name, err)
	}
	if ctx.Err() != nil {
		return nil
	}

	req := ReportRequest{Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot, Report: report}
	var lastErr error
	for attempt := 1; attempt <= 5; attempt++ {
		if attempt > 1 && !sleep(ctx, w.backoff(200*time.Millisecond, attempt-1)) {
			return nil
		}
		if lastErr = w.post(ctx, "/v1/report", req, nil); lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
		// A 4xx is a definitive refusal — the campaign is gone, or a
		// control plane resumed from its journal no longer recognizes a
		// lease granted before the crash. Re-posting identical bytes cannot
		// succeed; abandon the shard and keep leasing. The coordinator
		// re-leases the slot and the re-run is bit-identical, so dropping
		// this copy costs only the wasted work.
		var se *statusError
		if errors.As(lastErr, &se) && se.code >= 400 && se.code < 500 {
			return nil
		}
	}
	return fmt.Errorf("campaign worker %s: delivering shard %d: %v", w.Name, l.Shard, lastErr)
}

// runLease dispatches one lease to its surface engine and wraps the
// partial report in the surface-tagged wire type. Datapath campaigns go
// through the process-wide campaignSet (shared profile and goldens),
// namespaced per campaign ID when the spec loads mutable external content;
// buffer campaigns are rebuilt per lease — the eyeriss engine clones its
// network per shard anyway, so there is nothing to memoize.
func (w *Worker) runLease(cs *campaignSet, l *Lease) (*Report, error) {
	if l.Spec.BufferSurface() {
		c, b, err := l.Spec.NewBufferCampaign()
		if err != nil {
			return nil, err
		}
		opts := l.Spec.BufferOptions()
		var r *eyeriss.Report
		switch l.Phase {
		case "pilot":
			r = c.PilotShard(l.Shard, l.Of, b, opts)
		case "main":
			r = c.MainShard(l.Shard, l.Of, b, l.Table, opts)
		default:
			r = c.RunShard(l.Shard, l.Of, b, opts)
		}
		return &Report{Buffer: r}, nil
	}
	c, err := cs.get(l.Campaign, l.Spec)
	if err != nil {
		return nil, err
	}
	opts := l.Spec.Options()
	var r *faultinj.Report
	switch l.Phase {
	case "pilot":
		r = c.PilotShard(l.Shard, l.Of, opts)
	case "main":
		r = c.MainShard(l.Shard, l.Of, l.Table, opts)
	default:
		r = c.RunShard(l.Shard, l.Of, opts)
	}
	return &Report{Datapath: r}, nil
}

// ExecuteLease computes one lease's shard report synchronously, outside
// any worker loop — for test harnesses and embedders that drive a
// coordinator or control plane directly. goldens may be nil.
func ExecuteLease(l *Lease, goldens *GoldenCache) (*Report, error) {
	w := &Worker{Goldens: goldens}
	return w.runLease(newCampaignSet(goldens), l)
}

// statusError is a non-2xx HTTP response, distinguishable from transport
// failures so callers can tell a definitive refusal from a flaky network.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// post sends a JSON request and decodes a JSON response when out is
// non-nil. Non-2xx statuses are *statusError carrying the response body.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg)),
		}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// sleep waits for d or context cancellation; it reports whether the full
// duration elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// SoloReport runs the spec's campaign in-process with no coordinator — the
// single-machine baseline every distributed run must match bit-for-bit,
// on either surface. PriorPath artifacts are loaded here (the distributed
// path loads them once in NewCoordinator). The second result is the merged
// pilot strata of a stratified campaign (nil for uniform or prior-allocated
// runs), for strata-artifact export.
func SoloReport(spec Spec, goldens *GoldenCache) (*Report, *engine.StrataSummary, error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	var prior, pilot *engine.StrataSummary
	if spec.PriorAllocated() {
		p, err := spec.LoadPrior()
		if err != nil {
			return nil, nil, err
		}
		prior = p
	}
	if spec.BufferSurface() {
		c, b, err := spec.NewBufferCampaign()
		if err != nil {
			return nil, nil, err
		}
		opt := spec.BufferOptions()
		opt.Prior = prior
		opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
		return &Report{Buffer: c.Run(b, opt)}, pilot, nil
	}
	c, err := spec.NewCampaign(goldens)
	if err != nil {
		return nil, nil, err
	}
	opt := spec.Options()
	opt.Prior = prior
	opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
	return &Report{Datapath: c.Run(opt)}, pilot, nil
}

// Solo is SoloReport for datapath specs, returning the bare faultinj
// report the original single-surface service exposed.
func Solo(spec Spec, goldens *GoldenCache) (*faultinj.Report, error) {
	r, _, err := SoloReport(spec, goldens)
	if err != nil {
		return nil, err
	}
	if r.Datapath == nil {
		return nil, fmt.Errorf("campaign: Solo only runs datapath specs; use SoloReport for surface %q", spec.Surface)
	}
	return r.Datapath, nil
}
