package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/systolic"
)

// Worker leases shards from a coordinator or control plane, executes them
// with the incremental fault-injection engine, and reports back. One
// Worker can drive several executor goroutines (Procs); all of them share
// the process-wide golden-execution cache and prepared-campaign memo, so
// the golden pass for each (network, weights, format, input) coordinate is
// paid once per process, not per lease. Against a multi-campaign control
// plane the same loop serves interleaved leases of many campaigns; leases
// carry campaign IDs, which the worker echoes in heartbeats and reports.
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:8711".
	Base string
	// Name labels the worker in errors.
	Name string
	// Token, when set, is sent as an Authorization bearer token on every
	// request — required by control planes configured with tenant keys.
	Token string
	// Procs is the number of concurrent shard executors. Default 1.
	Procs int
	// Poll is the idle re-poll interval when no lease is available and
	// the coordinator supplied no hint. Default 250ms.
	Poll time.Duration
	// MaxBackoff caps the jittered exponential backoff between failed
	// connect/post attempts. Default 5s.
	MaxBackoff time.Duration
	// GiveUp bounds how long lease requests may keep failing at the
	// transport level (coordinator down) before Run returns an error.
	// Default 30s.
	GiveUp time.Duration
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Goldens, when set, shares golden executions with other workers in
	// the process; a private cache is created when nil.
	Goldens *GoldenCache
	// MaxLeases, when positive, makes Run return after completing that
	// many shards — the hook the crash/resume tests and the smoke
	// script's kill-mid-campaign step use. It bounds leases taken, so a
	// prefetching worker never over-takes past the budget.
	MaxLeases int
	// Prefetch is how many leases beyond Procs one lease roundtrip may
	// fetch and queue, so executors never idle waiting on the network.
	// Default 2; negative disables prefetching (batch size = Procs).
	Prefetch int

	// draining, once set by Drain, stops the lease loops taking new work;
	// in-flight shards finish and deliver their reports, then Run returns
	// nil.
	draining atomic.Bool
}

// Drain asks the worker to stop taking new leases and exit cleanly once
// its in-flight shards have reported. Safe to call from a signal handler
// goroutine while Run is live; calling it more than once is harmless.
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain has been requested.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Run leases and executes shards until the coordinator reports the
// campaign done (returns nil), the campaign failed or the coordinator is
// unreachable for GiveUp (returns an error), MaxLeases is reached, Drain
// is requested (in-flight shards still deliver), or ctx is cancelled.
//
// The loop is a three-stage pipeline: one fetcher requests up to
// Procs+Prefetch leases per roundtrip and queues them, Procs executors
// run shards, and one reporter delivers finished reports — batching
// whatever has accumulated into a single POST /v1/reports. Executors
// therefore never stall on a lease roundtrip, and report delivery costs
// ~one roundtrip per batch instead of per shard. Reports still merge in
// slot order on the coordinator, so batching cannot perturb bit-identity.
func (w *Worker) Run(ctx context.Context) error {
	procs := w.Procs
	if procs <= 0 {
		procs = 1
	}
	prefetch := w.Prefetch
	if prefetch == 0 {
		prefetch = 2
	} else if prefetch < 0 {
		prefetch = 0
	}
	depth := procs + prefetch
	cs := newCampaignSet(w.Goldens)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	leaseCh := make(chan leaseJob, depth)
	repCh := make(chan pendingReport, depth)
	nudge := make(chan struct{}, 1)

	go w.fetch(ctx, leaseCh, depth, nudge, fail)

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range leaseCh {
				if ctx.Err() != nil {
					j.stopHB()
					continue
				}
				report, err := w.runLease(cs, j.lease)
				if err != nil {
					j.stopHB()
					fail(fmt.Errorf("campaign worker %s: %v", w.Name, err))
					return
				}
				pr := pendingReport{
					req: ReportRequest{
						Campaign: j.lease.Campaign, LeaseID: j.lease.ID,
						Shard: j.lease.Slot, Report: report,
					},
					stopHB: j.stopHB,
				}
				select {
				case repCh <- pr:
				case <-ctx.Done():
					j.stopHB()
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(repCh) }()

	if err := w.deliverLoop(ctx, repCh, depth, nudge); err != nil {
		fail(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// leaseJob pairs a fetched lease with the cancel of its heartbeat
// goroutine, which runs from fetch until the report is delivered or the
// shard abandoned.
type leaseJob struct {
	lease  *Lease
	stopHB context.CancelFunc
}

// pendingReport is a finished shard waiting for (batched) delivery.
type pendingReport struct {
	req    ReportRequest
	stopHB context.CancelFunc
}

// fetch is the pipeline's first stage: it keeps the lease queue topped up
// with one batched roundtrip per iteration, starts a heartbeat goroutine
// per granted lease, and stops on campaign completion, failure, drain,
// the MaxLeases budget, or sustained unreachability.
func (w *Worker) fetch(ctx context.Context, leaseCh chan<- leaseJob, depth int, nudge <-chan struct{}, fail func(error)) {
	defer close(leaseCh)
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	giveUp := w.GiveUp
	if giveUp <= 0 {
		giveUp = 30 * time.Second
	}
	var downSince time.Time
	fails, taken := 0, 0
	for {
		if ctx.Err() != nil || w.draining.Load() {
			return
		}
		want := depth - len(leaseCh)
		if want < 1 {
			want = 1
		}
		if w.MaxLeases > 0 && want > w.MaxLeases-taken {
			want = w.MaxLeases - taken
		}
		var resp LeaseResponse
		if err := w.post(ctx, "/v1/lease", LeaseRequest{Max: want}, &resp); err != nil {
			if ctx.Err() != nil {
				return
			}
			now := time.Now()
			if downSince.IsZero() {
				downSince = now
			} else if now.Sub(downSince) > giveUp {
				fail(fmt.Errorf("campaign worker %s: coordinator unreachable: %v", w.Name, err))
				return
			}
			fails++
			if !sleep(ctx, w.backoff(poll, fails)) {
				return
			}
			continue
		}
		downSince = time.Time{}
		fails = 0
		switch {
		case resp.Done:
			return
		case resp.Failed != "":
			fail(fmt.Errorf("campaign worker %s: campaign failed: %s", w.Name, resp.Failed))
			return
		}
		leases := resp.Leases
		if len(leases) == 0 && resp.Lease != nil {
			leases = []*Lease{resp.Lease}
		}
		if len(leases) == 0 {
			d := poll
			if resp.RetryMillis > 0 {
				d = time.Duration(resp.RetryMillis) * time.Millisecond
			}
			// Jitter the idle poll over [d/2, 3d/2): a large fleet polling
			// one plane at a fixed period would otherwise synchronize into
			// thundering herds after any shared idle moment. A delivered
			// report batch cuts the sleep short — when the in-flight work
			// was this worker's own, the campaign may have just completed
			// and the coordinator's Done must be seen before it exits.
			if !sleepOrNudge(ctx, d/2+rand.N(d+1), nudge) {
				return
			}
			continue
		}
		for _, l := range leases {
			hbCtx, stopHB := context.WithCancel(ctx)
			go w.heartbeatLoop(hbCtx, l)
			select {
			case leaseCh <- leaseJob{lease: l, stopHB: stopHB}:
			case <-ctx.Done():
				stopHB()
				return
			}
			taken++
			if w.MaxLeases > 0 && taken >= w.MaxLeases {
				return
			}
		}
	}
}

// heartbeatLoop keeps one lease alive until its context is cancelled. A
// failed or rejected heartbeat is not fatal: the report path is
// idempotent, so the worker keeps computing and lets delivery decide.
func (w *Worker) heartbeatLoop(ctx context.Context, l *Lease) {
	interval := time.Duration(l.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		if !sleep(ctx, interval) {
			return
		}
		w.post(ctx, "/v1/heartbeat", HeartbeatRequest{Campaign: l.Campaign, LeaseID: l.ID}, nil)
	}
}

// deliverLoop is the pipeline's last stage: it greedily drains whatever
// reports have accumulated (up to maxBatch) and delivers them in one
// roundtrip.
func (w *Worker) deliverLoop(ctx context.Context, repCh <-chan pendingReport, maxBatch int, nudge chan<- struct{}) error {
	for pr := range repCh {
		batch := []pendingReport{pr}
		greedy := true
		for greedy && len(batch) < maxBatch {
			select {
			case more, ok := <-repCh:
				if !ok {
					greedy = false
				} else {
					batch = append(batch, more)
				}
			default:
				greedy = false
			}
		}
		if err := w.deliver(ctx, batch); err != nil {
			return err
		}
		select {
		case nudge <- struct{}{}:
		default:
		}
	}
	return nil
}

// deliver posts one report batch, retrying transport failures with
// backoff. Per-report outcomes follow the single-report 4xx rule: a
// definitive refusal (campaign gone, or a control plane resumed from its
// journal no longer recognizes a pre-crash lease) abandons that shard —
// the slot is re-leased and recomputed bit-identically — while retryable
// refusals stay in the batch.
func (w *Worker) deliver(ctx context.Context, batch []pendingReport) error {
	remaining := batch
	var lastErr error
	for attempt := 1; attempt <= 5 && len(remaining) > 0; attempt++ {
		if attempt > 1 && !sleep(ctx, w.backoff(200*time.Millisecond, attempt-1)) {
			return nil
		}
		reqs := make([]ReportRequest, len(remaining))
		for i := range remaining {
			reqs[i] = remaining[i].req
		}
		var resp ReportBatchResponse
		lastErr = w.post(ctx, "/v1/reports", ReportBatchRequest{Reports: reqs}, &resp)
		if ctx.Err() != nil {
			return nil
		}
		if lastErr != nil {
			var se *statusError
			if errors.As(lastErr, &se) && se.code >= 400 && se.code < 500 {
				// The route itself refused the whole batch (auth/role):
				// re-posting identical bytes cannot succeed.
				for _, pr := range remaining {
					pr.stopHB()
				}
				return nil
			}
			continue
		}
		var retry []pendingReport
		for i, pr := range remaining {
			var oc ReportOutcome
			if i < len(resp.Results) {
				oc = resp.Results[i]
			}
			if oc.Code == 0 || (oc.Code >= 400 && oc.Code < 500) {
				pr.stopHB()
				continue
			}
			retry = append(retry, pr)
		}
		remaining = retry
		if len(remaining) > 0 {
			lastErr = fmt.Errorf("%d reports refused with retryable statuses", len(remaining))
		}
	}
	if len(remaining) > 0 {
		return fmt.Errorf("campaign worker %s: delivering %d shard reports: %v",
			w.Name, len(remaining), lastErr)
	}
	return nil
}

// backoff returns the jittered exponential delay for the given consecutive
// failure count (1-based): base·2^(fails-1) capped at MaxBackoff, then
// jittered uniformly over [d/2, d] so a fleet of workers hammering a
// restarting coordinator spreads out instead of thundering in lockstep.
func (w *Worker) backoff(base time.Duration, fails int) time.Duration {
	maxB := w.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < fails && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	half := d / 2
	return half + rand.N(half+1)
}

// runLease dispatches one lease to its surface engine and wraps the
// partial report in the surface-tagged wire type. Datapath campaigns go
// through the process-wide campaignSet (shared profile and goldens),
// namespaced per campaign ID when the spec loads mutable external content;
// buffer and systolic campaigns are rebuilt per lease — those engines
// clone or rebuild their network per shard anyway, so there is nothing to
// memoize.
func (w *Worker) runLease(cs *campaignSet, l *Lease) (*Report, error) {
	if l.Spec.SystolicSurface() {
		c, err := l.Spec.NewSystolicCampaign()
		if err != nil {
			return nil, err
		}
		opts := l.Spec.SystolicOptions()
		var r *systolic.Report
		switch l.Phase {
		case "pilot":
			r = c.PilotShard(l.Shard, l.Of, opts)
		case "main":
			r = c.MainShard(l.Shard, l.Of, l.Table, opts)
		default:
			r = c.RunShard(l.Shard, l.Of, opts)
		}
		return &Report{Systolic: r}, nil
	}
	if l.Spec.BufferSurface() {
		c, b, err := l.Spec.NewBufferCampaign()
		if err != nil {
			return nil, err
		}
		opts := l.Spec.BufferOptions()
		var r *eyeriss.Report
		switch l.Phase {
		case "pilot":
			r = c.PilotShard(l.Shard, l.Of, b, opts)
		case "main":
			r = c.MainShard(l.Shard, l.Of, b, l.Table, opts)
		default:
			r = c.RunShard(l.Shard, l.Of, b, opts)
		}
		return &Report{Buffer: r}, nil
	}
	c, err := cs.get(l.Campaign, l.Spec)
	if err != nil {
		return nil, err
	}
	opts := l.Spec.Options()
	var r *faultinj.Report
	switch l.Phase {
	case "pilot":
		r = c.PilotShard(l.Shard, l.Of, opts)
	case "main":
		r = c.MainShard(l.Shard, l.Of, l.Table, opts)
	default:
		r = c.RunShard(l.Shard, l.Of, opts)
	}
	return &Report{Datapath: r}, nil
}

// ExecuteLease computes one lease's shard report synchronously, outside
// any worker loop — for test harnesses and embedders that drive a
// coordinator or control plane directly. goldens may be nil.
func ExecuteLease(l *Lease, goldens *GoldenCache) (*Report, error) {
	w := &Worker{Goldens: goldens}
	return w.runLease(newCampaignSet(goldens), l)
}

// statusError is a non-2xx HTTP response, distinguishable from transport
// failures so callers can tell a definitive refusal from a flaky network.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// post sends a JSON request and decodes a JSON response when out is
// non-nil. Non-2xx statuses are *statusError carrying the response body.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg)),
		}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// sleep waits for d or context cancellation; it reports whether the full
// duration elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// sleepOrNudge is sleep that also wakes early on a nudge; it reports false
// only on context cancellation.
func sleepOrNudge(ctx context.Context, d time.Duration, nudge <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-nudge:
		return true
	case <-ctx.Done():
		return false
	}
}

// SoloReport runs the spec's campaign in-process with no coordinator — the
// single-machine baseline every distributed run must match bit-for-bit,
// on either surface. PriorPath artifacts are loaded here (the distributed
// path loads them once in NewCoordinator). The second result is the merged
// pilot strata of a stratified campaign (nil for uniform or prior-allocated
// runs), for strata-artifact export.
func SoloReport(spec Spec, goldens *GoldenCache) (*Report, *engine.StrataSummary, error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	var prior, pilot *engine.StrataSummary
	if spec.PriorAllocated() {
		p, err := spec.LoadPrior()
		if err != nil {
			return nil, nil, err
		}
		prior = p
	}
	if spec.SystolicSurface() {
		c, err := spec.NewSystolicCampaign()
		if err != nil {
			return nil, nil, err
		}
		opt := spec.SystolicOptions()
		opt.Prior = prior
		opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
		return &Report{Systolic: c.Run(opt)}, pilot, nil
	}
	if spec.BufferSurface() {
		c, b, err := spec.NewBufferCampaign()
		if err != nil {
			return nil, nil, err
		}
		opt := spec.BufferOptions()
		opt.Prior = prior
		opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
		return &Report{Buffer: c.Run(b, opt)}, pilot, nil
	}
	c, err := spec.NewCampaign(goldens)
	if err != nil {
		return nil, nil, err
	}
	opt := spec.Options()
	opt.Prior = prior
	opt.OnPilotStrata = func(s *engine.StrataSummary) { pilot = s }
	return &Report{Datapath: c.Run(opt)}, pilot, nil
}

// Solo is SoloReport for datapath specs, returning the bare faultinj
// report the original single-surface service exposed.
func Solo(spec Spec, goldens *GoldenCache) (*faultinj.Report, error) {
	r, _, err := SoloReport(spec, goldens)
	if err != nil {
		return nil, err
	}
	if r.Datapath == nil {
		return nil, fmt.Errorf("campaign: Solo only runs datapath specs; use SoloReport for surface %q", spec.Surface)
	}
	return r.Datapath, nil
}
