package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinj"
)

// acceptShards leases and reports n shards on a fresh coordinator with a
// checkpoint at path, returning the coordinator.
func acceptShards(t *testing.T, path string, spec Spec, n int) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(Config{Spec: spec, CheckpointPath: path, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		l := co.lease(now).Lease
		if l == nil {
			t.Fatalf("no lease for shard %d", i)
		}
		rep := &Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
		rep.Datapath.Counts.Trials = 10 + l.Shard // make shard reports distinguishable
		if err := co.acceptReport(ReportRequest{LeaseID: l.ID, Shard: l.Shard, Report: rep}); err != nil {
			t.Fatal(err)
		}
	}
	return co
}

// TestCheckpointAppendOnly pins the O(1)-per-acceptance write pattern:
// after k accepted shards the file holds exactly the header line plus k
// entry lines — no whole-state rewrites.
func TestCheckpointAppendOnly(t *testing.T) {
	spec := testSpec("FLOAT16")
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	co := acceptShards(t, cp, spec, 3)
	defer co.Close()

	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	if len(lines) != 1+3 {
		t.Fatalf("checkpoint holds %d lines, want header + 3 entries", len(lines))
	}

	co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if co2.Resumed() != 3 {
		t.Fatalf("resumed %d shards, want 3", co2.Resumed())
	}
}

// TestCheckpointTornTailTolerated simulates a crash mid-append: a partial
// trailing line must be dropped (and truncated away) on resume, losing
// only the shard it would have recorded.
func TestCheckpointTornTailTolerated(t *testing.T) {
	spec := testSpec("FLOAT16")
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	co := acceptShards(t, cp, spec, 2)
	co.Close()

	f, err := os.OpenFile(cp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard":2,"retries":0,"rep`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn, _ := os.ReadFile(cp)

	co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer co2.Close()
	if co2.Resumed() != 2 {
		t.Fatalf("resumed %d shards past torn tail, want 2", co2.Resumed())
	}
	clean, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) >= len(torn) {
		t.Fatalf("torn tail not truncated: %d bytes, had %d", len(clean), len(torn))
	}
	if !bytes.HasSuffix(clean, []byte("\n")) {
		t.Fatal("truncated checkpoint does not end at a line boundary")
	}
}

// TestCheckpointCorruptMiddleRefused distinguishes a torn tail from real
// corruption: a bad line that is NOT last must refuse the resume.
func TestCheckpointCorruptMiddleRefused(t *testing.T) {
	spec := testSpec("FLOAT16")
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	co := acceptShards(t, cp, spec, 2)
	co.Close()

	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	// header, entry, entry, "" -> corrupt the first entry, keep the second.
	lines[1] = []byte("{\"shard\":0,\"garbage\n")
	if err := os.WriteFile(cp, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp}); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt middle entry not refused: %v", err)
	}
}

// TestCheckpointOldVersionRefused: a version-1 whole-state checkpoint (a
// single JSON object, version field 1) must be refused with a version
// error, not misread.
func TestCheckpointOldVersionRefused(t *testing.T) {
	spec := testSpec("FLOAT16")
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	v1 := `{"version":1,"spec":{},"retries":[0,0,0,0],"reports":[null,null,null,null]}`
	if err := os.WriteFile(cp, []byte(v1+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp}); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version-1 checkpoint not refused: %v", err)
	}
}
