package campaign

import (
	"expvar"
	"sync/atomic"
	"time"
)

// Package-level expvar metrics. expvar panics on duplicate registration,
// so the counters live at package scope and accumulate across every
// coordinator and worker in the process; /debug/vars on any coordinator
// exposes them.
var (
	mShardsLeased    = expvar.NewInt("campaign_shards_leased")
	mShardsCompleted = expvar.NewInt("campaign_shards_completed")
	mShardsRetried   = expvar.NewInt("campaign_shards_retried")
	mInjections      = expvar.NewInt("campaign_injections_total")
	mMasked          = expvar.NewInt("campaign_masked_total")

	// startNanos is the first moment any coordinator accepted a report,
	// anchoring the injections/s rate.
	startNanos atomic.Int64
)

func init() {
	expvar.Publish("campaign_masked_fraction", expvar.Func(func() any {
		inj := mInjections.Value()
		if inj == 0 {
			return 0.0
		}
		return float64(mMasked.Value()) / float64(inj)
	}))
	expvar.Publish("campaign_injections_per_sec", expvar.Func(func() any {
		t0 := startNanos.Load()
		if t0 == 0 {
			return 0.0
		}
		el := time.Since(time.Unix(0, t0)).Seconds()
		if el <= 0 {
			return 0.0
		}
		return float64(mInjections.Value()) / el
	}))
}

// noteInjections records a completed shard's contribution to the
// throughput metrics.
func noteInjections(injections, masked int64) {
	startNanos.CompareAndSwap(0, time.Now().UnixNano())
	mInjections.Add(injections)
	mMasked.Add(masked)
}
