package campaign

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/network"
	"repro/internal/tensor"
)

// TestGoldenDiskRoundTrip pins the file format: an execution written and
// re-read is bit-identical, including negative zeros, NaN payload bits and
// denormals.
func TestGoldenDiskRoundTrip(t *testing.T) {
	in := tensor.New(tensor.Shape{C: 1, H: 2, W: 2})
	in.Data = []float64{1.5, math.Copysign(0, -1), math.Float64frombits(0x7ff8000000000042), 5e-324}
	act := tensor.New(tensor.Shape{C: 2, H: 1, W: 1})
	act.Data = []float64{-3.25, math.Inf(1)}
	exec := &network.Execution{Input: in, Acts: []*tensor.Tensor{act}}

	path := filepath.Join(t.TempDir(), "x.golden")
	if err := writeGoldenFile(path, exec); err != nil {
		t.Fatal(err)
	}
	back, ok := readGoldenFile(path)
	if !ok {
		t.Fatal("round trip failed to load")
	}
	if back.Input.Shape != in.Shape || len(back.Acts) != 1 || back.Acts[0].Shape != act.Shape {
		t.Fatalf("shapes diverged: %+v", back)
	}
	for i, v := range in.Data {
		if math.Float64bits(back.Input.Data[i]) != math.Float64bits(v) {
			t.Fatalf("input element %d not bit-exact", i)
		}
	}
	for i, v := range act.Data {
		if math.Float64bits(back.Acts[0].Data[i]) != math.Float64bits(v) {
			t.Fatalf("act element %d not bit-exact", i)
		}
	}
}

// TestGoldenDiskCorruptTolerated is the resilience contract: any corrupt,
// truncated or foreign cache file reads as a miss — never an error, never
// garbage data.
func TestGoldenDiskCorruptTolerated(t *testing.T) {
	dir := t.TempDir()
	in := tensor.New(tensor.Shape{C: 1, H: 1, W: 3})
	in.Data = []float64{1, 2, 3}
	exec := &network.Execution{Input: in}
	path := filepath.Join(dir, "x.golden")
	if err := writeGoldenFile(path, exec); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:4],
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"bad version": append(append([]byte(goldenMagic), 99), good[5:]...),
		"truncated":   good[:len(good)-8],
		"trailing":    append(append([]byte{}, good...), 0xEE),
	}
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-1] ^= 0xFF // payload bit flip breaks the CRC
	cases["bit flip"] = flipped
	for name, data := range cases {
		p := filepath.Join(dir, "c.golden")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := readGoldenFile(p); ok {
			t.Fatalf("%s: corrupt golden file loaded", name)
		}
	}
	if _, ok := readGoldenFile(filepath.Join(dir, "missing.golden")); ok {
		t.Fatal("missing golden file loaded")
	}
}

// TestGoldenCacheDiskPersistence runs the same campaign through three
// cache generations sharing one directory: the first computes and
// persists, the second loads every golden from disk, and the third — after
// the files are corrupted — silently recomputes and heals the cache. All
// three reports must be bit-identical.
func TestGoldenCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("FLOAT16")

	g1 := NewGoldenCache()
	g1.Persist(dir)
	first, err := Solo(spec, g1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded, written := g1.DiskStats(); loaded != 0 || written != spec.Inputs {
		t.Fatalf("cold cache: loaded=%d written=%d, want 0/%d", loaded, written, spec.Inputs)
	}

	g2 := NewGoldenCache()
	g2.Persist(dir)
	second, err := Solo(spec, g2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded, written := g2.DiskStats(); loaded != spec.Inputs || written != 0 {
		t.Fatalf("warm cache: loaded=%d written=%d, want %d/0", loaded, written, spec.Inputs)
	}
	assertBitIdentical(t, "disk-loaded goldens", second, first)

	files, err := filepath.Glob(filepath.Join(dir, "*.golden"))
	if err != nil || len(files) != spec.Inputs {
		t.Fatalf("cache holds %d files (%v), want %d", len(files), err, spec.Inputs)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	g3 := NewGoldenCache()
	g3.Persist(dir)
	third, err := Solo(spec, g3)
	if err != nil {
		t.Fatal(err)
	}
	if loaded, written := g3.DiskStats(); loaded != 0 || written != spec.Inputs {
		t.Fatalf("corrupted cache: loaded=%d written=%d, want 0/%d (recompute + heal)", loaded, written, spec.Inputs)
	}
	assertBitIdentical(t, "healed goldens", third, first)

	// And the healed files load again.
	g4 := NewGoldenCache()
	g4.Persist(dir)
	if _, err := Solo(spec, g4); err != nil {
		t.Fatal(err)
	}
	if loaded, _ := g4.DiskStats(); loaded != spec.Inputs {
		t.Fatalf("healed cache not reloaded: loaded=%d want %d", loaded, spec.Inputs)
	}
}
