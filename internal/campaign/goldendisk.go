package campaign

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/network"
	"repro/internal/tensor"
)

// Disk persistence for golden executions. A worker process that restarts —
// or a fleet of short-lived workers sharing a filesystem — pays for each
// golden forward pass once per cache directory rather than once per
// process: Get first tries <dir>/<net>_<hash>_<dtype>_<input>.golden, and
// falls back to computing (then persisting) on any miss. Files carry a
// CRC-32 of their payload; a torn, truncated or otherwise corrupt file is
// indistinguishable from a missing one — the execution is silently
// recomputed and the file rewritten, never trusted.
//
// The format is raw IEEE-754 bits (like the HexFloats JSON convention), so
// a loaded execution is bit-identical to the computed one and campaigns
// resolved through a warm disk cache merge bit-identical to cold runs.

const (
	goldenMagic   = "GLDN"
	goldenVersion = 1
)

// Persist enables disk persistence for this cache, rooted at dir (created
// on first write). Call before the first Get; persistence is best-effort —
// IO failures fall back to in-memory behavior.
func (g *GoldenCache) Persist(dir string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dir = dir
}

// DiskStats reports how many executions were loaded from (and written to)
// the persistence directory.
func (g *GoldenCache) DiskStats() (loaded, written int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.diskLoaded, g.diskWritten
}

// goldenPath names the cache file of one key. Net and DType are
// repo-defined identifiers (no separators), so the name is unambiguous.
func goldenPath(dir string, key GoldenKey) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%016x_%s_%d.golden", key.Net, key.WeightsHash, key.DType, key.Input))
}

// loadOrCompute resolves one entry: disk first (when persistence is on),
// compute otherwise, persisting what was computed.
func (g *GoldenCache) loadOrCompute(key GoldenKey, compute func() *network.Execution) *network.Execution {
	g.mu.Lock()
	dir := g.dir
	g.mu.Unlock()
	if dir == "" {
		return compute()
	}
	path := goldenPath(dir, key)
	if exec, ok := readGoldenFile(path); ok {
		g.mu.Lock()
		g.diskLoaded++
		g.mu.Unlock()
		return exec
	}
	exec := compute()
	if writeGoldenFile(path, exec) == nil {
		g.mu.Lock()
		g.diskWritten++
		g.mu.Unlock()
	}
	return exec
}

// putTensor appends one tensor (shape then element bits) to the payload.
func putTensor(w *bytes.Buffer, t *tensor.Tensor) {
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(t.Shape.C))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.Shape.H))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.Shape.W))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(t.Data)))
	w.Write(hdr[:])
	buf := make([]byte, 8*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	w.Write(buf)
}

// getTensor reads one tensor back; false on any structural mismatch.
func getTensor(data []byte) (*tensor.Tensor, []byte, bool) {
	if len(data) < 32 {
		return nil, nil, false
	}
	sh := tensor.Shape{
		C: int(binary.LittleEndian.Uint64(data[0:])),
		H: int(binary.LittleEndian.Uint64(data[8:])),
		W: int(binary.LittleEndian.Uint64(data[16:])),
	}
	n := int(binary.LittleEndian.Uint64(data[24:]))
	data = data[32:]
	if !sh.Valid() || n != sh.Elems() || len(data) < 8*n {
		return nil, nil, false
	}
	t := tensor.New(sh)
	for i := range t.Data {
		t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return t, data[8*n:], true
}

// writeGoldenFile persists one execution atomically (temp file + rename).
func writeGoldenFile(path string, exec *network.Execution) error {
	if exec == nil || exec.Input == nil {
		return fmt.Errorf("campaign: nil golden execution")
	}
	var payload bytes.Buffer
	putTensor(&payload, exec.Input)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(exec.Acts)))
	payload.Write(n[:])
	for _, a := range exec.Acts {
		putTensor(&payload, a)
	}

	var out bytes.Buffer
	out.WriteString(goldenMagic)
	out.WriteByte(goldenVersion)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(crc[:])
	out.Write(payload.Bytes())

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readGoldenFile loads one execution; false for missing, torn, corrupt or
// version-mismatched files — all of which simply mean "recompute".
func readGoldenFile(path string) (*network.Execution, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < len(goldenMagic)+1+4 {
		return nil, false
	}
	if string(data[:4]) != goldenMagic || data[4] != goldenVersion {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(data[5:9])
	payload := data[9:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	input, payload, ok := getTensor(payload)
	if !ok || len(payload) < 8 {
		return nil, false
	}
	nActs := int(binary.LittleEndian.Uint64(payload))
	payload = payload[8:]
	if nActs < 0 || nActs > len(payload) {
		return nil, false
	}
	exec := &network.Execution{Input: input, Acts: make([]*tensor.Tensor, nActs)}
	for i := range exec.Acts {
		exec.Acts[i], payload, ok = getTensor(payload)
		if !ok {
			return nil, false
		}
	}
	if len(payload) != 0 {
		return nil, false
	}
	return exec, true
}
