package campaign

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/sdc"
	"repro/internal/stats"
)

// Machine is the per-campaign shard-ledger state machine: it owns one
// campaign's slots through pending → leased → done, gates stratified
// main-phase slots on the pilot-derived allocation table, and merges slot
// reports deterministically. It is the piece of the single-campaign
// Coordinator that the multi-campaign control plane schedules many of.
//
// Machine is caller-synchronized: none of its methods lock. The
// Coordinator wraps one Machine under its mutex; internal/controlplane
// holds its own lock across scheduling decisions that span machines.
type Machine struct {
	spec       Spec
	maxRetries int

	shards    []shardState
	completed int
	resumed   int
	retried   int
	leaseSeq  int
	failure   error

	// pilotDone counts completed pilot slots of a stratified campaign;
	// table is the Neyman allocation computed (deterministically) from the
	// merged pilot once pilotDone reaches Spec.Shards — or, for a
	// prior-allocated campaign, from the PriorPath artifact at startup.
	// Main-phase slots are not leased until it exists. pilotStrata keeps
	// the merged pilot for strata-artifact export.
	pilotDone   int
	table       *faultinj.StratumTable
	pilotStrata *engine.StrataSummary

	// Scheduling indexes, maintained incrementally so the control plane's
	// grant loop never rescans the ledger: pending is a min-heap of
	// leasable slot indices (min-order keeps expired slots re-leased at
	// the lowest index, matching the full-scan behavior), gated holds
	// main-phase slots waiting on the allocation table, leases maps live
	// lease IDs to their slots for O(1) heartbeats, inFlight counts
	// leased unfinished slots, and nextExpiry is a lower bound on the
	// earliest live deadline so Expire is O(1) when nothing can lapse.
	inFlight   int
	pending    slotHeap
	gated      []int
	leases     map[string]int
	nextExpiry time.Time
}

// NewMachine validates the spec and returns a fresh ledger for it.
// maxRetries bounds how many times one slot may be re-leased after expiry
// before the campaign is declared failed (default 3 when non-positive).
func NewMachine(spec Spec, maxRetries int) (*Machine, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if maxRetries <= 0 {
		maxRetries = 3
	}
	m := &Machine{
		spec:       spec,
		maxRetries: maxRetries,
		shards:     make([]shardState, spec.Slots()),
		leases:     make(map[string]int),
	}
	if spec.PriorAllocated() {
		// Pilot-free campaign: the allocation table comes from the prior
		// artifact, built before any lease is served. Workers never read
		// the artifact — the table ships inside every (main-phase) lease.
		prior, err := spec.LoadPrior()
		if err != nil {
			return nil, err
		}
		m.table = spec.BuildTable(prior)
	}
	for s := range m.shards {
		if phase, _ := m.spec.SlotPhase(s); phase == "main" && m.table == nil {
			m.gated = append(m.gated, s)
			continue
		}
		m.pending.push(s)
	}
	return m, nil
}

// Spec returns the normalized campaign spec.
func (m *Machine) Spec() Spec { return m.spec }

// Done reports whether every slot has a final report.
func (m *Machine) Done() bool { return m.completed == len(m.shards) }

// Err reports a campaign-level failure (a slot exceeding maxRetries), or
// nil.
func (m *Machine) Err() error { return m.failure }

// Completed reports how many slots have final reports.
func (m *Machine) Completed() int { return m.completed }

// Resumed reports how many slots were restored from a journal instead of
// executed.
func (m *Machine) Resumed() int { return m.resumed }

// Retried reports the total lease expiries over the campaign's lifetime.
func (m *Machine) Retried() int { return m.retried }

// InFlight counts currently leased, unfinished slots — the quantity
// per-campaign quotas bound.
func (m *Machine) InFlight() int { return m.inFlight }

// Expire re-pends slots whose leases lapsed and returns how many lapsed.
// A slot exceeding maxRetries marks the campaign failed. The full scan
// runs only when a deadline may actually have passed: nextExpiry is a
// lower bound on the earliest live deadline (heartbeats that move a
// deadline earlier lower it), so the idle-fleet case is two comparisons.
func (m *Machine) Expire(now time.Time) int {
	if m.inFlight == 0 || (!m.nextExpiry.IsZero() && now.Before(m.nextExpiry)) {
		return 0
	}
	expired := 0
	var next time.Time
	for s := range m.shards {
		sh := &m.shards[s]
		if sh.done || sh.leaseID == "" {
			continue
		}
		if now.Before(sh.deadline) {
			if next.IsZero() || sh.deadline.Before(next) {
				next = sh.deadline
			}
			continue
		}
		delete(m.leases, sh.leaseID)
		sh.leaseID = ""
		sh.retries++
		m.retried++
		expired++
		m.inFlight--
		m.pending.push(s)
		if sh.retries > m.maxRetries && m.failure == nil {
			m.failure = fmt.Errorf("campaign: shard %d failed %d leases (MaxRetries=%d)",
				s, sh.retries, m.maxRetries)
		}
	}
	m.nextExpiry = next
	return expired
}

// nextSlot returns the lowest leasable slot index without claiming it:
// the head of the pending heap after discarding entries finished out of
// band (a late Accept of a pending slot). Returns -1 when everything
// unfinished is in flight or gated.
func (m *Machine) nextSlot() int {
	for m.pending.len() > 0 {
		s := m.pending.min()
		if m.shards[s].done || m.shards[s].leaseID != "" {
			m.pending.pop()
			continue
		}
		return s
	}
	return -1
}

// Available reports whether Lease would grant a lease right now. The
// control-plane scheduler probes with it before spending a campaign's
// deficit. Call Expire first.
func (m *Machine) Available() bool {
	return m.failure == nil && !m.Done() && m.nextSlot() >= 0
}

// Lease grants the next available slot until now+ttl, or nil when nothing
// is leasable. Call Expire first; check Err and Done for terminal states.
func (m *Machine) Lease(now time.Time, ttl time.Duration) *Lease {
	if m.failure != nil {
		return nil
	}
	s := m.nextSlot()
	if s < 0 {
		return nil
	}
	m.pending.pop()
	sh := &m.shards[s]
	phase, shard := m.spec.SlotPhase(s)
	m.leaseSeq++
	sh.leaseID = fmt.Sprintf("L%d-s%d", m.leaseSeq, s)
	sh.deadline = now.Add(ttl)
	m.leases[sh.leaseID] = s
	m.inFlight++
	if m.nextExpiry.IsZero() || sh.deadline.Before(m.nextExpiry) {
		m.nextExpiry = sh.deadline
	}
	l := &Lease{
		ID:        sh.leaseID,
		Slot:      s,
		Shard:     shard,
		Of:        m.spec.Shards,
		Spec:      m.spec,
		Phase:     phase,
		TTLMillis: ttl.Milliseconds(),
	}
	if phase == "main" {
		l.Table = m.table
	}
	return l
}

// Heartbeat extends a live lease to now+ttl. It reports false when the
// lease is no longer current (expired and re-leased, or the slot
// finished), telling the worker to abandon the shard. Call Expire first.
func (m *Machine) Heartbeat(leaseID string, now time.Time, ttl time.Duration) bool {
	s, ok := m.leases[leaseID]
	if !ok {
		return false
	}
	sh := &m.shards[s]
	if sh.done || sh.leaseID != leaseID {
		return false
	}
	sh.deadline = now.Add(ttl)
	// A backdated heartbeat can move a deadline below the cached lower
	// bound; lower it so Expire's fast path cannot skip the lapse.
	if sh.deadline.Before(m.nextExpiry) {
		m.nextExpiry = sh.deadline
	}
	return true
}

// LeaseEverGranted reports whether leaseID was ever handed out for slot —
// live or expired. Lease IDs are "L<seq>-s<slot>" with seq counting from
// 1, so a lease existed exactly when its sequence number has been issued
// and its slot matches. The control plane refuses reports failing this
// check: Accept is deliberately lease-agnostic (see below), so the check
// is what keeps a caller from injecting fabricated reports for slots it
// was never assigned, while late deliveries from expired leases still
// pass. Grants are not journaled, so after a resume the pre-crash
// sequence numbers are unknown and their leases report false; the slot is
// simply re-leased and recomputed bit-identically.
func (m *Machine) LeaseEverGranted(leaseID string, slot int) bool {
	var seq, s int
	if _, err := fmt.Sscanf(leaseID, "L%d-s%d", &seq, &s); err != nil {
		return false
	}
	// Reconstruct to reject trailing garbage Sscanf would ignore.
	return s == slot && seq >= 1 && seq <= m.leaseSeq &&
		leaseID == fmt.Sprintf("L%d-s%d", seq, s)
}

// Accept merges a finished slot report. Acceptance is idempotent and
// deliberately lease-agnostic for not-yet-done slots: a worker whose lease
// expired mid-run but still delivers is indistinguishable from the
// re-leased worker — shard execution is deterministic, so either copy of
// the report is bit-identical. first is true when the report was newly
// recorded (the caller journals and broadcasts exactly those).
func (m *Machine) Accept(slot int, r *Report) (first bool, err error) {
	if err := r.validate(m.spec); err != nil {
		return false, err
	}
	if slot < 0 || slot >= m.spec.Slots() {
		return false, fmt.Errorf("campaign: slot %d out of range [0,%d)", slot, m.spec.Slots())
	}
	sh := &m.shards[slot]
	if sh.done {
		return false, nil // duplicate delivery of a deterministic result
	}
	sh.done = true
	sh.report = r
	if sh.leaseID != "" {
		delete(m.leases, sh.leaseID)
		m.inFlight--
	}
	sh.leaseID = ""
	m.completed++
	if phase, _ := m.spec.SlotPhase(slot); phase == "pilot" {
		m.pilotDone++
		m.maybeBuildTable()
	}
	return true, nil
}

// Restore re-admits a slot report from a checkpoint or journal: like
// Accept, but counted as resumed and with the recorded retry budget
// restored. Duplicate slots keep the first report, like the live path.
func (m *Machine) Restore(slot, retries int, r *Report) error {
	first, err := m.Accept(slot, r)
	if err != nil {
		return err
	}
	if !first {
		return nil
	}
	m.shards[slot].retries = retries
	m.resumed++
	return nil
}

// maybeBuildTable computes the main-phase allocation once every pilot slot
// of a stratified campaign has reported. The pilot reports are merged in
// slot order, so every participant that runs this — the live coordinator
// at the pilot→main boundary, or a resumed one replaying its journal —
// derives a bit-identical table. Prior-allocated campaigns never reach
// this: their table is built from the artifact at startup.
func (m *Machine) maybeBuildTable() {
	if !m.spec.Stratified() || m.table != nil || m.pilotDone < m.spec.Shards {
		return
	}
	parts := make([]*Report, 0, m.spec.Shards)
	for s := range m.shards {
		if phase, _ := m.spec.SlotPhase(s); phase == "pilot" {
			parts = append(parts, m.shards[s].report)
		}
	}
	merged := MergeReports(parts)
	m.pilotStrata = merged.Strata()
	m.table = m.spec.BuildTable(m.pilotStrata)
	// The table ungates the main phase: move the held-back slots into the
	// pending heap (finished ones — journal replays restore main slots
	// before the last pilot lands — are pruned lazily by nextSlot).
	for _, s := range m.gated {
		if !m.shards[s].done {
			m.pending.push(s)
		}
	}
	m.gated = nil
}

// PilotStrata returns the merged pilot strata of a stratified campaign
// once its allocation table exists (nil before that, and always nil for
// uniform or prior-allocated campaigns).
func (m *Machine) PilotStrata() *engine.StrataSummary { return m.pilotStrata }

// SlotRetries reports the recorded re-lease count of one slot.
func (m *Machine) SlotRetries(slot int) int { return m.shards[slot].retries }

// SlotReport returns the accepted report of one slot, or nil while the
// slot is unfinished. Journal compaction reads these to write the minimal
// event history equivalent to the live ledger.
func (m *Machine) SlotReport(slot int) *Report { return m.shards[slot].report }

// FinalReport merges the slot reports into the campaign report — for
// uniform campaigns a shard-order fold, for stratified ones each shard's
// (pilot, main) slot pair pre-merged then folded in shard order. Both are
// exactly the association a single-process Campaign.Run with Workers equal
// to the shard count uses, so the result is bit-identical to solo. It
// errors until the campaign is done.
func (m *Machine) FinalReport() (*Report, error) {
	if !m.Done() {
		return nil, fmt.Errorf("campaign: %d/%d shards complete", m.completed, len(m.shards))
	}
	if m.spec.Stratified() && !m.spec.PriorAllocated() {
		pairs := make([]*Report, m.spec.Shards)
		for s := range pairs {
			pairs[s] = MergeReports([]*Report{
				m.shards[2*s].report, m.shards[2*s+1].report,
			})
		}
		return MergeReports(pairs), nil
	}
	parts := make([]*Report, len(m.shards))
	for s := range m.shards {
		parts[s] = m.shards[s].report
	}
	return MergeReports(parts), nil
}

// Snapshot assembles the campaign's live aggregate view from every slot
// report so far.
func (m *Machine) Snapshot() Snapshot {
	snap := Snapshot{
		CompletedShards: m.completed,
		TotalShards:     len(m.shards),
		ResumedShards:   m.resumed,
		RetriedLeases:   m.retried,
		Done:            m.Done(),
	}
	if m.failure != nil {
		snap.Failed = m.failure.Error()
	}
	var overall sdc.Counts
	var perBlock []sdc.Counts
	var strata *faultinj.StrataSummary
	masked := 0
	for s := range m.shards {
		r := m.shards[s].report
		if r == nil {
			continue
		}
		overall.Merge(r.Counts())
		masked += r.Masked()
		rb := r.PerBlock()
		if perBlock == nil {
			perBlock = make([]sdc.Counts, len(rb))
		}
		for b := range rb {
			perBlock[b].Merge(rb[b])
		}
		if rs := r.Strata(); rs != nil {
			if strata == nil {
				strata = rs.Clone()
			} else {
				strata.Merge(rs)
			}
		}
	}
	snap.Injections = overall.Trials
	if overall.Trials > 0 {
		snap.MaskedFraction = float64(masked) / float64(overall.Trials)
	}
	if m.spec.Stratified() {
		snap.Sampling = m.spec.Sampling
		snap.PilotShards = m.pilotDone
	}
	if strata != nil {
		// Weighted (Horvitz–Thompson) estimates: the raw pooled proportion
		// is biased under Neyman allocation, the stratified one is not.
		est := strata.Estimate(sdc.SDC1)
		snap.SDC1, snap.SDC1CI95 = est.P(), est.CI95()
		snap.StrataWeights = faultinj.HexFloats(strata.Weight)
		snap.StrataTrials = make([]int, len(strata.Counts))
		for h := range strata.Counts {
			snap.StrataTrials[h] = strata.Counts[h].Trials
		}
		for b := range perBlock {
			be := strata.BlockEstimate(b, sdc.SDC1)
			lo, hi := be.Bounds()
			snap.PerBlock = append(snap.PerBlock, BlockAggregate{
				Block: b, Trials: perBlock[b].Trials,
				SDC1: be.P(), CI95: be.CI95(), Lo: lo, Hi: hi,
			})
		}
		return snap
	}
	p := stats.Proportion{Successes: overall.Hits[sdc.SDC1], Trials: overall.DefinedTrials[sdc.SDC1]}
	snap.SDC1, snap.SDC1CI95 = p.P(), p.CI95()
	for b := range perBlock {
		bp := stats.Proportion{
			Successes: perBlock[b].Hits[sdc.SDC1],
			Trials:    perBlock[b].DefinedTrials[sdc.SDC1],
		}
		lo, hi := bp.Bounds()
		snap.PerBlock = append(snap.PerBlock, BlockAggregate{
			Block: b, Trials: perBlock[b].Trials,
			SDC1: bp.P(), CI95: bp.CI95(), Lo: lo, Hi: hi,
		})
	}
	return snap
}

// slotHeap is a min-heap of slot indices. Min-order matters: an expired
// slot re-enters the heap and must be re-leased before higher pending
// indices, exactly as the previous lowest-index scan behaved.
type slotHeap []int

func (h slotHeap) len() int { return len(h) }
func (h slotHeap) min() int { return h[0] }

func (h *slotHeap) push(s int) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *slotHeap) pop() int {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && (*h)[l] < (*h)[least] {
			least = l
		}
		if r < n && (*h)[r] < (*h)[least] {
			least = r
		}
		if least == i {
			break
		}
		(*h)[i], (*h)[least] = (*h)[least], (*h)[i]
		i = least
	}
	return top
}
