package campaign

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinj"
)

// Config configures a coordinator.
type Config struct {
	// Spec describes the campaign; NewCoordinator normalizes it.
	Spec Spec
	// CheckpointPath, when set, is an append-only log that records every
	// accepted shard report as one line. If the file already holds a
	// checkpoint for the same spec, the coordinator resumes from it;
	// a checkpoint for a different spec is refused.
	CheckpointPath string
	// LeaseTTL is how long a worker may hold a shard without heartbeating
	// before the shard is re-leased. Default 30s.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one shard may be re-leased after
	// expiry before the campaign is declared failed. Default 3.
	MaxRetries int
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Lease hands a worker everything needed to run one ledger slot: a whole
// shard for uniform campaigns, or one phase of a shard for stratified ones.
type Lease struct {
	ID string `json:"id"`
	// Campaign identifies the owning campaign on a multi-campaign control
	// plane; empty on single-campaign coordinators. Workers echo it in
	// heartbeats and reports so the control plane can route them.
	Campaign string `json:"campaign,omitempty"`
	// Slot is the coordinator ledger index the report must echo back;
	// equal to Shard for uniform campaigns.
	Slot int `json:"slot"`
	// Shard and Of are the phase-local shard coordinates the worker
	// executes (faultinj RunShard/PilotShard/MainShard semantics).
	Shard int  `json:"shard"`
	Of    int  `json:"of"`
	Spec  Spec `json:"spec"`
	// Phase is "" (uniform campaign), "pilot" or "main".
	Phase string `json:"phase,omitempty"`
	// Table is the pilot-derived Neyman allocation, present on main-phase
	// leases. Serializing it into the lease (and recomputing it
	// deterministically on resume) is what keeps distributed stratified
	// campaigns bit-identical to solo runs.
	Table *faultinj.StratumTable `json:"table,omitempty"`
	// TTLMillis is the heartbeat deadline; workers should heartbeat at
	// a fraction of it.
	TTLMillis int64 `json:"ttl_millis"`
}

// LeaseRequest is the body of POST /v1/lease. Max bounds how many leases
// one response may carry: pipelined workers ask for Procs+prefetch per
// roundtrip instead of one. Zero (or an empty body, which old workers
// send) means one.
type LeaseRequest struct {
	Max int `json:"max,omitempty"`
}

// LeaseResponse is the coordinator's answer to a lease request. Exactly
// one of Leases, Done, Failed or RetryMillis is meaningful: leases to run,
// campaign completion, campaign failure, or "all shards are in flight,
// poll again later". Lease duplicates the first granted lease so clients
// predating batched grants keep working.
type LeaseResponse struct {
	Lease       *Lease   `json:"lease,omitempty"`
	Leases      []*Lease `json:"leases,omitempty"`
	Done        bool     `json:"done,omitempty"`
	Failed      string   `json:"failed,omitempty"`
	RetryMillis int64    `json:"retry_millis,omitempty"`
}

// HeartbeatRequest is the worker→coordinator heartbeat body. Campaign is
// empty against single-campaign coordinators.
type HeartbeatRequest struct {
	Campaign string `json:"campaign,omitempty"`
	LeaseID  string `json:"lease_id"`
}

// ReportRequest is the worker→coordinator report delivery body. The Shard
// field is the ledger slot index (Lease.Slot); the wire name predates
// stratified sampling, under which a slot is one phase of a shard rather
// than a whole shard.
type ReportRequest struct {
	Campaign string  `json:"campaign,omitempty"`
	LeaseID  string  `json:"lease_id"`
	Shard    int     `json:"shard"`
	Report   *Report `json:"report"`
}

// ReportBatchRequest is the body of POST /v1/reports: several finished
// slots delivered in one roundtrip by a pipelined worker.
type ReportBatchRequest struct {
	Reports []ReportRequest `json:"reports"`
}

// ReportBatchResponse answers a report batch with one outcome per
// delivered report, in request order.
type ReportBatchResponse struct {
	Results []ReportOutcome `json:"results"`
}

// ReportOutcome is the per-report result of a batch delivery. Code 0
// means accepted (or idempotently dropped); otherwise it is the HTTP
// status the single-report route would have returned for that report
// alone, so workers apply the same abandon-on-4xx rule per item.
type ReportOutcome struct {
	Code  int    `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// shardState tracks one ledger slot through pending → leased → done.
type shardState struct {
	done     bool
	retries  int
	leaseID  string
	deadline time.Time
	report   *Report
}

// Coordinator serves exactly one campaign's Machine over HTTP: it hands
// out leases, expires them on missed heartbeats, merges incoming shard
// reports, checkpoints, and streams aggregate snapshots. The
// multi-campaign counterpart is internal/controlplane, which schedules
// many Machines behind one fleet API.
type Coordinator struct {
	cfg Config

	mu   sync.Mutex
	m    *Machine
	cp   *checkpointLog
	subs map[chan []byte]struct{}

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator validates the spec, loads any existing checkpoint for it,
// and returns a coordinator ready to serve.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	m, err := NewMachine(cfg.Spec, cfg.MaxRetries)
	if err != nil {
		return nil, err
	}
	cfg.Spec = m.Spec()
	c := &Coordinator{
		cfg:  cfg,
		m:    m,
		subs: make(map[chan []byte]struct{}),
		done: make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		cp, err := openCheckpoint(cfg.CheckpointPath, cfg.Spec)
		if err != nil {
			return nil, err
		}
		c.cp = cp
		if cp.loaded {
			for s := range cp.entries {
				e := &cp.entries[s]
				if e.Report == nil {
					continue
				}
				// A resume that lands past the pilot→allocation boundary
				// rebuilds the exact table the pre-crash coordinator leased
				// from — it is a pure function of the checkpointed pilot
				// reports, which Restore replays in slot order.
				if err := m.Restore(s, e.Retries, e.Report); err != nil {
					return nil, err
				}
			}
			cp.entries = nil
			if m.Done() {
				c.doneOnce.Do(func() { close(c.done) })
			}
		}
	}
	return c, nil
}

// PilotStrata returns the merged pilot strata of a stratified campaign
// once its allocation table exists (nil before that, and always nil for
// uniform or prior-allocated campaigns). Strata artifacts persist this for
// later PriorPath reuse.
func (c *Coordinator) PilotStrata() *engine.StrataSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.PilotStrata()
}

// Close releases the checkpoint append handle. The coordinator must not
// accept further reports after Close.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cp.Close()
}

// Spec returns the normalized campaign spec.
func (c *Coordinator) Spec() Spec { return c.cfg.Spec }

// Done is closed once every shard has reported.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Resumed reports how many shards were restored from the checkpoint
// instead of executed.
func (c *Coordinator) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Resumed()
}

// CompletedShards reports how many shards have final reports.
func (c *Coordinator) CompletedShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Completed()
}

// Err reports a campaign-level failure (a shard exceeding MaxRetries), or
// nil.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Err()
}

// FinalReport merges the slot reports into the campaign report; see
// Machine.FinalReport for the bit-identity contract. It errors until the
// campaign is done.
func (c *Coordinator) FinalReport() (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.FinalReport()
}

// lease implements the single-grant shard hand-out. It is exercised
// directly by tests; the handler goes through leaseBatch.
func (c *Coordinator) lease(now time.Time) LeaseResponse {
	return c.leaseBatch(now, 1)
}

// leaseBatch grants up to max leases in one response.
func (c *Coordinator) leaseBatch(now time.Time, max int) LeaseResponse {
	if max < 1 {
		max = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	mShardsRetried.Add(int64(c.m.Expire(now)))
	if err := c.m.Err(); err != nil {
		return LeaseResponse{Failed: err.Error()}
	}
	if c.m.Done() {
		return LeaseResponse{Done: true}
	}
	var leases []*Lease
	for len(leases) < max {
		l := c.m.Lease(now, c.cfg.LeaseTTL)
		if l == nil {
			break
		}
		mShardsLeased.Add(1)
		leases = append(leases, l)
	}
	if len(leases) > 0 {
		return LeaseResponse{Lease: leases[0], Leases: leases}
	}
	// Everything unfinished is in flight; ask the worker to poll at a
	// fraction of the TTL so expiries are noticed promptly.
	retry := c.cfg.LeaseTTL / 4
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return LeaseResponse{RetryMillis: retry.Milliseconds()}
}

// heartbeat extends a live lease. It reports false when the lease is no
// longer current (expired and re-leased, or the shard finished), telling
// the worker to abandon the shard.
func (c *Coordinator) heartbeat(leaseID string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	mShardsRetried.Add(int64(c.m.Expire(now)))
	return c.m.Heartbeat(leaseID, now, c.cfg.LeaseTTL)
}

// acceptReport merges a finished shard; see Machine.Accept for the
// idempotency contract.
func (c *Coordinator) acceptReport(req ReportRequest) error {
	c.mu.Lock()
	first, err := c.m.Accept(req.Shard, req.Report)
	if err != nil || !first {
		c.mu.Unlock()
		return err
	}
	mShardsCompleted.Add(1)
	noteInjections(int64(req.Report.Counts().Trials), int64(req.Report.Masked()))

	// One appended line per acceptance — O(1) in the number of shards
	// already finished, where the version-1 whole-state rewrite was O(n).
	cpErr := c.cp.append(checkpointEntry{
		Shard: req.Shard, Retries: c.m.SlotRetries(req.Shard), Report: req.Report,
	})
	snap := c.m.Snapshot()
	allDone := c.m.Done()
	c.broadcastLocked(snap)
	c.mu.Unlock()

	if allDone {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return cpErr
}

// BlockAggregate is the live per-block view in a snapshot: the SDC-1
// probability with its pooled 95% CI over the injections seen so far.
type BlockAggregate struct {
	Block  int     `json:"block"`
	Trials int     `json:"trials"`
	SDC1   float64 `json:"sdc1"`
	CI95   float64 `json:"ci95"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// Snapshot is one line of the coordinator's NDJSON stream: campaign
// progress plus running aggregates merged from every shard so far.
type Snapshot struct {
	CompletedShards int              `json:"completed_shards"`
	TotalShards     int              `json:"total_shards"`
	ResumedShards   int              `json:"resumed_shards"`
	RetriedLeases   int              `json:"retried_leases"`
	Injections      int              `json:"injections"`
	MaskedFraction  float64          `json:"masked_fraction"`
	SDC1            float64          `json:"sdc1"`
	SDC1CI95        float64          `json:"sdc1_ci95"`
	PerBlock        []BlockAggregate `json:"per_block"`
	// Sampling echoes the spec's sampling design; the stratified fields
	// below are only present for "stratified" campaigns.
	Sampling string `json:"sampling,omitempty"`
	// PilotShards counts completed pilot slots (stratified only).
	PilotShards int `json:"pilot_shards,omitempty"`
	// StrataWeights are the population stratum weights as hex float bits —
	// bit-exact across serialize/deserialize, like ValueRecord fields.
	StrataWeights faultinj.HexFloats `json:"strata_weights,omitempty"`
	// StrataTrials is the per-stratum trial count observed so far.
	StrataTrials []int  `json:"strata_trials,omitempty"`
	Done         bool   `json:"done"`
	Failed       string `json:"failed,omitempty"`
}

// Snapshot returns the current aggregate view.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Snapshot()
}

func (c *Coordinator) broadcastLocked(snap Snapshot) {
	line, err := json.Marshal(snap)
	if err != nil {
		return
	}
	for ch := range c.subs {
		select {
		case ch <- line:
		default: // a stalled stream reader must not block report intake
		}
	}
}

func (c *Coordinator) subscribe() chan []byte {
	ch := make(chan []byte, 16)
	c.mu.Lock()
	line, _ := json.Marshal(c.m.Snapshot())
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	ch <- line
	return ch
}

func (c *Coordinator) unsubscribe(ch chan []byte) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// Handler mounts the coordinator API:
//
//	POST /v1/lease      -> LeaseResponse (body LeaseRequest; max=N batches)
//	POST /v1/heartbeat  -> 204, or 410 when the lease is no longer current
//	POST /v1/report     -> 204 (idempotent)
//	POST /v1/reports    -> ReportBatchResponse (one outcome per report)
//	GET  /v1/stream     -> NDJSON Snapshot per completed shard
//	GET  /v1/status     -> one Snapshot
//	GET  /debug/vars    -> expvar metrics
//	GET  /debug/pprof/  -> profiling (only with Config.Pprof)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		// Tolerate empty bodies: pre-batching workers POST "{}" or nothing.
		var req LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		writeJSON(w, c.leaseBatch(time.Now(), req.Max))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !c.heartbeat(req.LeaseID, time.Now()) {
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.acceptReport(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, r *http.Request) {
		var req ReportBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := ReportBatchResponse{Results: make([]ReportOutcome, len(req.Reports))}
		for i, rr := range req.Reports {
			if err := c.acceptReport(rr); err != nil {
				resp.Results[i] = ReportOutcome{Code: http.StatusBadRequest, Error: err.Error()}
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		ch := c.subscribe()
		defer c.unsubscribe(ch)
		for {
			select {
			case line := <-ch:
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				fl.Flush()
			case <-c.done:
				// Drain anything queued, emit the final state, and end
				// the stream so curl-style consumers terminate cleanly.
				for {
					select {
					case line := <-ch:
						w.Write(append(line, '\n'))
					default:
						line, _ := json.Marshal(c.Snapshot())
						w.Write(append(line, '\n'))
						fl.Flush()
						return
					}
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	if c.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
