package campaign

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/sdc"
	"repro/internal/stats"
)

// Config configures a coordinator.
type Config struct {
	// Spec describes the campaign; NewCoordinator normalizes it.
	Spec Spec
	// CheckpointPath, when set, is an append-only log that records every
	// accepted shard report as one line. If the file already holds a
	// checkpoint for the same spec, the coordinator resumes from it;
	// a checkpoint for a different spec is refused.
	CheckpointPath string
	// LeaseTTL is how long a worker may hold a shard without heartbeating
	// before the shard is re-leased. Default 30s.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one shard may be re-leased after
	// expiry before the campaign is declared failed. Default 3.
	MaxRetries int
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Lease hands a worker everything needed to run one ledger slot: a whole
// shard for uniform campaigns, or one phase of a shard for stratified ones.
type Lease struct {
	ID string `json:"id"`
	// Slot is the coordinator ledger index the report must echo back;
	// equal to Shard for uniform campaigns.
	Slot int `json:"slot"`
	// Shard and Of are the phase-local shard coordinates the worker
	// executes (faultinj RunShard/PilotShard/MainShard semantics).
	Shard int  `json:"shard"`
	Of    int  `json:"of"`
	Spec  Spec `json:"spec"`
	// Phase is "" (uniform campaign), "pilot" or "main".
	Phase string `json:"phase,omitempty"`
	// Table is the pilot-derived Neyman allocation, present on main-phase
	// leases. Serializing it into the lease (and recomputing it
	// deterministically on resume) is what keeps distributed stratified
	// campaigns bit-identical to solo runs.
	Table *faultinj.StratumTable `json:"table,omitempty"`
	// TTLMillis is the heartbeat deadline; workers should heartbeat at
	// a fraction of it.
	TTLMillis int64 `json:"ttl_millis"`
}

// LeaseResponse is the coordinator's answer to a lease request. Exactly
// one of Lease, Done, Failed or RetryMillis is meaningful: a lease to run,
// campaign completion, campaign failure, or "all shards are in flight,
// poll again later".
type LeaseResponse struct {
	Lease       *Lease `json:"lease,omitempty"`
	Done        bool   `json:"done,omitempty"`
	Failed      string `json:"failed,omitempty"`
	RetryMillis int64  `json:"retry_millis,omitempty"`
}

// heartbeatRequest and reportRequest are the worker→coordinator bodies.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// reportRequest's Shard field is the ledger slot index (Lease.Slot); the
// name predates stratified sampling, under which a slot is one phase of a
// shard rather than a whole shard.
type reportRequest struct {
	LeaseID string  `json:"lease_id"`
	Shard   int     `json:"shard"`
	Report  *Report `json:"report"`
}

// shardState tracks one ledger slot through pending → leased → done.
type shardState struct {
	done     bool
	retries  int
	leaseID  string
	deadline time.Time
	report   *Report
}

// Coordinator owns a campaign's shard ledger: it hands out leases, expires
// them on missed heartbeats, merges incoming shard reports, checkpoints,
// and streams aggregate snapshots.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	cp        *checkpointLog
	shards    []shardState
	completed int
	resumed   int
	retried   int
	leaseSeq  int
	failure   error
	subs      map[chan []byte]struct{}
	// pilotDone counts completed pilot slots of a stratified campaign;
	// table is the Neyman allocation computed (deterministically) from the
	// merged pilot once pilotDone reaches Spec.Shards — or, for a
	// prior-allocated campaign, from the PriorPath artifact at startup.
	// Main-phase slots are not leased until it exists. pilotStrata keeps
	// the merged pilot for strata-artifact export (PilotStrata).
	pilotDone   int
	table       *faultinj.StratumTable
	pilotStrata *engine.StrataSummary

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator validates the spec, loads any existing checkpoint for it,
// and returns a coordinator ready to serve.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	c := &Coordinator{
		cfg:    cfg,
		shards: make([]shardState, cfg.Spec.Slots()),
		subs:   make(map[chan []byte]struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Spec.PriorAllocated() {
		// Pilot-free campaign: the allocation table comes from the prior
		// artifact, built before any lease is served. Workers never read
		// the artifact — the table ships inside every (main-phase) lease.
		prior, err := cfg.Spec.LoadPrior()
		if err != nil {
			return nil, err
		}
		c.table = cfg.Spec.BuildTable(prior)
	}
	if cfg.CheckpointPath != "" {
		cp, err := openCheckpoint(cfg.CheckpointPath, cfg.Spec)
		if err != nil {
			return nil, err
		}
		c.cp = cp
		if cp.loaded {
			for s := range cp.entries {
				e := &cp.entries[s]
				if e.Report == nil {
					continue
				}
				c.shards[s].done = true
				c.shards[s].retries = e.Retries
				c.shards[s].report = e.Report
				c.completed++
				c.resumed++
				if phase, _ := cfg.Spec.SlotPhase(s); phase == "pilot" {
					c.pilotDone++
				}
			}
			cp.entries = nil
			// A resume that lands past the pilot→allocation boundary must
			// recompute the exact table the pre-crash coordinator leased
			// from — it is a pure function of the checkpointed pilot
			// reports, so it does.
			c.maybeBuildTableLocked()
			if c.completed == len(c.shards) {
				c.doneOnce.Do(func() { close(c.done) })
			}
		}
	}
	return c, nil
}

// maybeBuildTableLocked computes the main-phase allocation once every
// pilot slot of a stratified campaign has reported. The pilot reports are
// merged in slot order, so every participant that runs this — the live
// coordinator at the pilot→main boundary, or a resumed one reloading the
// checkpoint — derives a bit-identical table. Prior-allocated campaigns
// never reach this: their table is built from the artifact at startup.
func (c *Coordinator) maybeBuildTableLocked() {
	if !c.cfg.Spec.Stratified() || c.table != nil || c.pilotDone < c.cfg.Spec.Shards {
		return
	}
	parts := make([]*Report, 0, c.cfg.Spec.Shards)
	for s := range c.shards {
		if phase, _ := c.cfg.Spec.SlotPhase(s); phase == "pilot" {
			parts = append(parts, c.shards[s].report)
		}
	}
	merged := MergeReports(parts)
	c.pilotStrata = merged.Strata()
	c.table = c.cfg.Spec.BuildTable(c.pilotStrata)
}

// PilotStrata returns the merged pilot strata of a stratified campaign
// once its allocation table exists (nil before that, and always nil for
// uniform or prior-allocated campaigns). Strata artifacts persist this for
// later PriorPath reuse.
func (c *Coordinator) PilotStrata() *engine.StrataSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pilotStrata
}

// Close releases the checkpoint append handle. The coordinator must not
// accept further reports after Close.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cp.Close()
}

// Spec returns the normalized campaign spec.
func (c *Coordinator) Spec() Spec { return c.cfg.Spec }

// Done is closed once every shard has reported.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Resumed reports how many shards were restored from the checkpoint
// instead of executed.
func (c *Coordinator) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// CompletedShards reports how many shards have final reports.
func (c *Coordinator) CompletedShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Err reports a campaign-level failure (a shard exceeding MaxRetries), or
// nil.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// FinalReport merges the slot reports into the campaign report — for
// uniform campaigns a shard-order fold, for stratified ones each shard's
// (pilot, main) slot pair pre-merged then folded in shard order. Both are
// exactly the association a single-process Campaign.Run with Workers equal
// to the shard count uses, so the result is bit-identical to solo. It
// errors until the campaign is done.
func (c *Coordinator) FinalReport() (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.completed != len(c.shards) {
		return nil, fmt.Errorf("campaign: %d/%d shards complete", c.completed, len(c.shards))
	}
	if c.cfg.Spec.Stratified() && !c.cfg.Spec.PriorAllocated() {
		pairs := make([]*Report, c.cfg.Spec.Shards)
		for s := range pairs {
			pairs[s] = MergeReports([]*Report{
				c.shards[2*s].report, c.shards[2*s+1].report,
			})
		}
		return MergeReports(pairs), nil
	}
	parts := make([]*Report, len(c.shards))
	for s := range c.shards {
		parts[s] = c.shards[s].report
	}
	return MergeReports(parts), nil
}

// expireLocked re-pends shards whose leases lapsed. Called with mu held
// from the request paths — with polling workers there is always a nearby
// request to piggyback on, so no background timer is needed.
func (c *Coordinator) expireLocked(now time.Time) {
	for s := range c.shards {
		sh := &c.shards[s]
		if sh.done || sh.leaseID == "" || now.Before(sh.deadline) {
			continue
		}
		sh.leaseID = ""
		sh.retries++
		c.retried++
		mShardsRetried.Add(1)
		if sh.retries > c.cfg.MaxRetries && c.failure == nil {
			c.failure = fmt.Errorf("campaign: shard %d failed %d leases (MaxRetries=%d)",
				s, sh.retries, c.cfg.MaxRetries)
		}
	}
}

// lease implements the shard hand-out. It is exported through the handler
// and exercised directly by tests.
func (c *Coordinator) lease(now time.Time) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if c.failure != nil {
		return LeaseResponse{Failed: c.failure.Error()}
	}
	if c.completed == len(c.shards) {
		return LeaseResponse{Done: true}
	}
	for s := range c.shards {
		sh := &c.shards[s]
		if sh.done || sh.leaseID != "" {
			continue
		}
		phase, shard := c.cfg.Spec.SlotPhase(s)
		if phase == "main" && c.table == nil {
			// Main phases are gated on the pilot: the allocation table
			// does not exist until every pilot slot has reported.
			continue
		}
		c.leaseSeq++
		sh.leaseID = fmt.Sprintf("L%d-s%d", c.leaseSeq, s)
		sh.deadline = now.Add(c.cfg.LeaseTTL)
		mShardsLeased.Add(1)
		l := &Lease{
			ID:        sh.leaseID,
			Slot:      s,
			Shard:     shard,
			Of:        c.cfg.Spec.Shards,
			Spec:      c.cfg.Spec,
			Phase:     phase,
			TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		}
		if phase == "main" {
			l.Table = c.table
		}
		return LeaseResponse{Lease: l}
	}
	// Everything unfinished is in flight; ask the worker to poll at a
	// fraction of the TTL so expiries are noticed promptly.
	retry := c.cfg.LeaseTTL / 4
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return LeaseResponse{RetryMillis: retry.Milliseconds()}
}

// heartbeat extends a live lease. It reports false when the lease is no
// longer current (expired and re-leased, or the shard finished), telling
// the worker to abandon the shard.
func (c *Coordinator) heartbeat(leaseID string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	for s := range c.shards {
		sh := &c.shards[s]
		if !sh.done && sh.leaseID == leaseID {
			sh.deadline = now.Add(c.cfg.LeaseTTL)
			return true
		}
	}
	return false
}

// acceptReport merges a finished shard. Acceptance is idempotent and
// deliberately lease-agnostic for not-yet-done shards: a worker whose
// lease expired mid-run but still delivers is indistinguishable from the
// re-leased worker — shard execution is deterministic, so either copy of
// the report is bit-identical.
func (c *Coordinator) acceptReport(req reportRequest) error {
	if err := req.Report.validate(c.cfg.Spec); err != nil {
		return err
	}
	if req.Shard < 0 || req.Shard >= c.cfg.Spec.Slots() {
		return fmt.Errorf("campaign: slot %d out of range [0,%d)", req.Shard, c.cfg.Spec.Slots())
	}
	c.mu.Lock()
	sh := &c.shards[req.Shard]
	if sh.done {
		c.mu.Unlock()
		return nil // duplicate delivery of a deterministic result
	}
	sh.done = true
	sh.report = req.Report
	sh.leaseID = ""
	c.completed++
	if phase, _ := c.cfg.Spec.SlotPhase(req.Shard); phase == "pilot" {
		c.pilotDone++
		c.maybeBuildTableLocked()
	}
	mShardsCompleted.Add(1)
	noteInjections(int64(req.Report.Counts().Trials), int64(req.Report.Masked()))

	// One appended line per acceptance — O(1) in the number of shards
	// already finished, where the version-1 whole-state rewrite was O(n).
	cpErr := c.cp.append(checkpointEntry{Shard: req.Shard, Retries: sh.retries, Report: req.Report})
	snap := c.snapshotLocked()
	allDone := c.completed == len(c.shards)
	c.broadcastLocked(snap)
	c.mu.Unlock()

	if allDone {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return cpErr
}

// BlockAggregate is the live per-block view in a snapshot: the SDC-1
// probability with its pooled 95% CI over the injections seen so far.
type BlockAggregate struct {
	Block  int     `json:"block"`
	Trials int     `json:"trials"`
	SDC1   float64 `json:"sdc1"`
	CI95   float64 `json:"ci95"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// Snapshot is one line of the coordinator's NDJSON stream: campaign
// progress plus running aggregates merged from every shard so far.
type Snapshot struct {
	CompletedShards int              `json:"completed_shards"`
	TotalShards     int              `json:"total_shards"`
	ResumedShards   int              `json:"resumed_shards"`
	RetriedLeases   int              `json:"retried_leases"`
	Injections      int              `json:"injections"`
	MaskedFraction  float64          `json:"masked_fraction"`
	SDC1            float64          `json:"sdc1"`
	SDC1CI95        float64          `json:"sdc1_ci95"`
	PerBlock        []BlockAggregate `json:"per_block"`
	// Sampling echoes the spec's sampling design; the stratified fields
	// below are only present for "stratified" campaigns.
	Sampling string `json:"sampling,omitempty"`
	// PilotShards counts completed pilot slots (stratified only).
	PilotShards int `json:"pilot_shards,omitempty"`
	// StrataWeights are the population stratum weights as hex float bits —
	// bit-exact across serialize/deserialize, like ValueRecord fields.
	StrataWeights faultinj.HexFloats `json:"strata_weights,omitempty"`
	// StrataTrials is the per-stratum trial count observed so far.
	StrataTrials []int  `json:"strata_trials,omitempty"`
	Done         bool   `json:"done"`
	Failed       string `json:"failed,omitempty"`
}

func (c *Coordinator) snapshotLocked() Snapshot {
	snap := Snapshot{
		CompletedShards: c.completed,
		TotalShards:     len(c.shards),
		ResumedShards:   c.resumed,
		RetriedLeases:   c.retried,
		Done:            c.completed == len(c.shards),
	}
	if c.failure != nil {
		snap.Failed = c.failure.Error()
	}
	var overall sdc.Counts
	var perBlock []sdc.Counts
	var strata *faultinj.StrataSummary
	masked := 0
	for s := range c.shards {
		r := c.shards[s].report
		if r == nil {
			continue
		}
		overall.Merge(r.Counts())
		masked += r.Masked()
		rb := r.PerBlock()
		if perBlock == nil {
			perBlock = make([]sdc.Counts, len(rb))
		}
		for b := range rb {
			perBlock[b].Merge(rb[b])
		}
		if rs := r.Strata(); rs != nil {
			if strata == nil {
				strata = rs.Clone()
			} else {
				strata.Merge(rs)
			}
		}
	}
	snap.Injections = overall.Trials
	if overall.Trials > 0 {
		snap.MaskedFraction = float64(masked) / float64(overall.Trials)
	}
	if c.cfg.Spec.Stratified() {
		snap.Sampling = c.cfg.Spec.Sampling
		snap.PilotShards = c.pilotDone
	}
	if strata != nil {
		// Weighted (Horvitz–Thompson) estimates: the raw pooled proportion
		// is biased under Neyman allocation, the stratified one is not.
		est := strata.Estimate(sdc.SDC1)
		snap.SDC1, snap.SDC1CI95 = est.P(), est.CI95()
		snap.StrataWeights = faultinj.HexFloats(strata.Weight)
		snap.StrataTrials = make([]int, len(strata.Counts))
		for h := range strata.Counts {
			snap.StrataTrials[h] = strata.Counts[h].Trials
		}
		for b := range perBlock {
			be := strata.BlockEstimate(b, sdc.SDC1)
			lo, hi := be.Bounds()
			snap.PerBlock = append(snap.PerBlock, BlockAggregate{
				Block: b, Trials: perBlock[b].Trials,
				SDC1: be.P(), CI95: be.CI95(), Lo: lo, Hi: hi,
			})
		}
		return snap
	}
	p := stats.Proportion{Successes: overall.Hits[sdc.SDC1], Trials: overall.DefinedTrials[sdc.SDC1]}
	snap.SDC1, snap.SDC1CI95 = p.P(), p.CI95()
	for b := range perBlock {
		bp := stats.Proportion{
			Successes: perBlock[b].Hits[sdc.SDC1],
			Trials:    perBlock[b].DefinedTrials[sdc.SDC1],
		}
		lo, hi := bp.Bounds()
		snap.PerBlock = append(snap.PerBlock, BlockAggregate{
			Block: b, Trials: perBlock[b].Trials,
			SDC1: bp.P(), CI95: bp.CI95(), Lo: lo, Hi: hi,
		})
	}
	return snap
}

// Snapshot returns the current aggregate view.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Coordinator) broadcastLocked(snap Snapshot) {
	line, err := json.Marshal(snap)
	if err != nil {
		return
	}
	for ch := range c.subs {
		select {
		case ch <- line:
		default: // a stalled stream reader must not block report intake
		}
	}
}

func (c *Coordinator) subscribe() chan []byte {
	ch := make(chan []byte, 16)
	c.mu.Lock()
	line, _ := json.Marshal(c.snapshotLocked())
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	ch <- line
	return ch
}

func (c *Coordinator) unsubscribe(ch chan []byte) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// Handler mounts the coordinator API:
//
//	POST /v1/lease      -> LeaseResponse
//	POST /v1/heartbeat  -> 204, or 410 when the lease is no longer current
//	POST /v1/report     -> 204 (idempotent)
//	GET  /v1/stream     -> NDJSON Snapshot per completed shard
//	GET  /v1/status     -> one Snapshot
//	GET  /debug/vars    -> expvar metrics
//	GET  /debug/pprof/  -> profiling (only with Config.Pprof)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.lease(time.Now()))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !c.heartbeat(req.LeaseID, time.Now()) {
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req reportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.acceptReport(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		ch := c.subscribe()
		defer c.unsubscribe(ch)
		for {
			select {
			case line := <-ch:
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				fl.Flush()
			case <-c.done:
				// Drain anything queued, emit the final state, and end
				// the stream so curl-style consumers terminate cleanly.
				for {
					select {
					case line := <-ch:
						w.Write(append(line, '\n'))
					default:
						line, _ := json.Marshal(c.Snapshot())
						w.Write(append(line, '\n'))
						fl.Flush()
						return
					}
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	if c.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
