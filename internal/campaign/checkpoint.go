package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinj"
)

// checkpointVersion guards the on-disk layout; a mismatch refuses the
// resume rather than silently misreading counts.
const checkpointVersion = 1

// checkpointFile is the coordinator's durable state: the normalized spec
// plus one slot per shard. A nil report marks a shard still pending (or
// in flight — leases are deliberately not persisted; after a crash every
// unfinished shard is simply re-leased).
type checkpointFile struct {
	Version int                `json:"version"`
	Spec    Spec               `json:"spec"`
	Retries []int              `json:"retries"`
	Reports []*faultinj.Report `json:"reports"`
}

// saveCheckpoint writes the state atomically: a temp file in the target
// directory followed by rename, so a crash mid-write leaves either the old
// checkpoint or the new one, never a torn file.
func saveCheckpoint(path string, cp *checkpointFile) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %v", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: committing checkpoint: %v", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint and validates it against the spec the
// coordinator was started with. A missing file is not an error — it
// returns (nil, nil) and the campaign starts fresh.
func loadCheckpoint(path string, spec Spec) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading checkpoint: %v", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("campaign: decoding checkpoint %s: %v", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.Spec != spec {
		return nil, fmt.Errorf("campaign: checkpoint %s was written for a different campaign spec", path)
	}
	if len(cp.Reports) != spec.Shards || len(cp.Retries) != spec.Shards {
		return nil, fmt.Errorf("campaign: checkpoint %s has %d shard slots, want %d", path, len(cp.Reports), spec.Shards)
	}
	return &cp, nil
}
