package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint is an append-only NDJSON log: a header line written once
// at campaign start, then one entry line per accepted shard report. Unlike
// the version-1 whole-state rewrite — which re-serialized every completed
// shard report on every acceptance, O(shards²) bytes over a campaign —
// acceptance cost is one line, independent of how many shards already
// finished. Resume semantics stay atomic: the header is created via
// temp-file + rename, each entry is one write of one line, and a torn
// trailing line (crash mid-append) is detected and truncated away on load;
// a torn or foreign line anywhere else refuses the resume rather than
// silently misreading counts.
//
// checkpointVersion guards the on-disk layout; version-1 files (a single
// whole-state JSON object) and version-2 files (bare datapath reports,
// before entries became surface-tagged wire Reports) are refused with a
// version mismatch.
const checkpointVersion = 3

// checkpointHeader is the first line of the log. Spec equality is what
// makes resume refuse a checkpoint written for a different campaign.
type checkpointHeader struct {
	Version int  `json:"version"`
	Spec    Spec `json:"spec"`
	Shards  int  `json:"shards"`
}

// checkpointEntry is one accepted shard report. Retries snapshots the
// shard's re-lease count at completion; retry counts of shards still
// pending at a crash are deliberately not persisted — they reset on
// resume, granting re-run shards a fresh retry budget.
type checkpointEntry struct {
	Shard   int     `json:"shard"`
	Retries int     `json:"retries"`
	Report  *Report `json:"report"`
}

// checkpointLog is an open append handle plus the loaded state.
type checkpointLog struct {
	f *os.File
	// entries holds the shard reports recovered on load, indexed by shard;
	// nil for shards still pending.
	entries []checkpointEntry
	loaded  bool
}

// openCheckpoint loads (or creates) the append-only checkpoint at path for
// the given normalized spec and returns it ready for appends. A missing
// file starts a fresh campaign: the header is written atomically (temp file
// + rename) so a crash during creation leaves either no checkpoint or a
// valid empty one, never a torn header.
func openCheckpoint(path string, spec Spec) (*checkpointLog, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := writeHeader(path, spec); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("campaign: reading checkpoint: %v", err)
	default:
		log, err := parseCheckpoint(path, spec, data)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("campaign: opening checkpoint for append: %v", err)
		}
		log.f = f
		return log, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening checkpoint for append: %v", err)
	}
	return &checkpointLog{f: f}, nil
}

// writeHeader atomically creates the checkpoint file holding just the
// header line.
func writeHeader(path string, spec Spec) error {
	hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Spec: spec, Shards: spec.Slots()})
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint header: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(hdr, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: writing checkpoint header: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: committing checkpoint header: %v", err)
	}
	return nil
}

// parseCheckpoint validates an existing log against the spec and recovers
// its entries. A trailing line that does not parse is a torn append from a
// crash: it is dropped and the file truncated to the last good line. A bad
// line anywhere else is corruption and refuses the resume.
func parseCheckpoint(path string, spec Spec, data []byte) (*checkpointLog, error) {
	lines := bytes.Split(data, []byte{'\n'})
	// A well-formed file ends in '\n', leaving one empty trailing element.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("campaign: checkpoint %s is empty", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("campaign: decoding checkpoint %s header: %v", path, err)
	}
	if hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.Spec != spec {
		return nil, fmt.Errorf("campaign: checkpoint %s was written for a different campaign spec", path)
	}
	if hdr.Shards != spec.Slots() {
		return nil, fmt.Errorf("campaign: checkpoint %s has %d ledger slots, want %d", path, hdr.Shards, spec.Slots())
	}

	log := &checkpointLog{entries: make([]checkpointEntry, spec.Slots()), loaded: true}
	goodBytes := len(lines[0]) + 1
	for i, line := range lines[1:] {
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Report.validate(spec) != nil {
			if i == len(lines)-2 {
				// Torn tail from a crash mid-append: drop it. The shard it
				// would have recorded simply re-runs.
				if terr := os.Truncate(path, int64(goodBytes)); terr != nil {
					return nil, fmt.Errorf("campaign: truncating torn checkpoint tail: %v", terr)
				}
				break
			}
			return nil, fmt.Errorf("campaign: checkpoint %s entry %d is corrupt", path, i)
		}
		if e.Shard < 0 || e.Shard >= spec.Slots() {
			return nil, fmt.Errorf("campaign: checkpoint %s entry %d has slot %d out of range [0,%d)",
				path, i, e.Shard, spec.Slots())
		}
		// Duplicate deliveries are deterministic re-executions; first wins.
		if log.entries[e.Shard].Report == nil {
			log.entries[e.Shard] = e
		}
		goodBytes += len(line) + 1
	}
	return log, nil
}

// append durably records one accepted shard report as a single log line.
func (l *checkpointLog) append(e checkpointEntry) error {
	if l == nil || l.f == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint entry: %v", err)
	}
	w := bufio.NewWriterSize(l.f, len(line)+1)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("campaign: appending checkpoint entry: %v", err)
	}
	return nil
}

// Close releases the append handle.
func (l *checkpointLog) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}
