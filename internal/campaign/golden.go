package campaign

import (
	"sync"

	"repro/internal/faultinj"
	"repro/internal/network"
)

// GoldenKey identifies one golden (fault-free) execution. Two campaigns
// whose keys match may share the execution: the network name and weights
// hash pin the arithmetic, the dtype pins the quantization, and the input
// index pins the image (inputs are generated deterministically per
// network, so an index is a complete description).
type GoldenKey struct {
	Net         string
	WeightsHash uint64
	DType       string
	Input       int
}

type goldenEntry struct {
	once sync.Once
	exec *network.Execution
}

// GoldenCache deduplicates golden executions across the campaigns of one
// process. A worker leasing shards of many campaigns over the same
// (network, weights, format, input) coordinates pays for each golden pass
// once; concurrent requests for the same key block on a single compute.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[GoldenKey]*goldenEntry

	hits, misses int

	// dir, when set via Persist, backs the cache with one file per key so
	// restarted workers skip recomputing goldens (see goldendisk.go).
	dir                     string
	diskLoaded, diskWritten int
}

// NewGoldenCache returns an empty cache.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{entries: make(map[GoldenKey]*goldenEntry)}
}

// Get returns the cached execution for key, computing it with compute on
// first use. compute runs at most once per key even under concurrent Gets.
func (g *GoldenCache) Get(key GoldenKey, compute func() *network.Execution) *network.Execution {
	g.mu.Lock()
	e, ok := g.entries[key]
	if !ok {
		e = &goldenEntry{}
		g.entries[key] = e
		g.misses++
	} else {
		g.hits++
	}
	g.mu.Unlock()
	e.once.Do(func() { e.exec = g.loadOrCompute(key, compute) })
	return e.exec
}

// Stats reports cache effectiveness: distinct goldens computed and lookups
// served from cache.
func (g *GoldenCache) Stats() (hits, misses int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// campaignSet memoizes prepared faultinj campaigns per campaignKey so that
// a worker executing many leases of the same campaign reuses one prepared
// network (profile, quantized-parameter cache, goldens) instead of
// rebuilding per lease.
//
// The memo is the golden-cache namespace layer for interleaved campaigns:
// GoldenKey itself is content-addressed (the weights hash pins the loaded
// arithmetic), but two campaigns naming the same WeightsDir path could see
// different directory contents if the files change between submissions.
// Namespacing such specs by campaign ID makes each campaign load its own
// weights exactly once, preserving the per-campaign solo bit-identity
// guarantee; built-in-weight specs stay shared across campaigns, so the
// fleet still pays one golden pass per (network, format, input).
type campaignSet struct {
	mu      sync.Mutex
	byKey   map[string]*faultinj.Campaign
	goldens *GoldenCache
}

func newCampaignSet(goldens *GoldenCache) *campaignSet {
	if goldens == nil {
		goldens = NewGoldenCache()
	}
	return &campaignSet{byKey: make(map[string]*faultinj.Campaign), goldens: goldens}
}

// get returns the prepared campaign for spec, building it on first use.
// campaignID namespaces specs that load mutable external content.
func (cs *campaignSet) get(campaignID string, spec Spec) (*faultinj.Campaign, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	key := spec.campaignKey()
	if spec.WeightsDir != "" {
		key = campaignID + "|" + key
	}
	if c, ok := cs.byKey[key]; ok {
		return c, nil
	}
	c, err := spec.NewCampaign(cs.goldens)
	if err != nil {
		return nil, err
	}
	cs.byKey[key] = c
	return c, nil
}
