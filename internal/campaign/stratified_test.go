package campaign

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinj"
)

func stratSpec(dtype string) Spec {
	s := testSpec(dtype)
	s.Sampling = "stratified"
	return s
}

// assertStrataBitIdentical extends assertBitIdentical to the stratified
// summary: weights, per-stratum counts and spread accumulators must all be
// bit-exact.
func assertStrataBitIdentical(t *testing.T, label string, got, want *faultinj.Report) {
	t.Helper()
	assertBitIdentical(t, label, got, want)
	if (got.Strata == nil) != (want.Strata == nil) {
		t.Fatalf("%s: strata presence diverged: got=%v want=%v", label, got.Strata != nil, want.Strata != nil)
	}
	if want.Strata == nil {
		return
	}
	g, w := got.Strata, want.Strata
	if g.Blocks != w.Blocks || g.Bits != w.Bits || len(g.Counts) != len(w.Counts) {
		t.Fatalf("%s: strata dims diverged", label)
	}
	for h := range w.Counts {
		if math.Float64bits(g.Weight[h]) != math.Float64bits(w.Weight[h]) {
			t.Fatalf("%s: stratum %d weight diverged", label, h)
		}
		if g.Counts[h] != w.Counts[h] {
			t.Fatalf("%s: stratum %d counts diverged: %+v vs %+v", label, h, g.Counts[h], w.Counts[h])
		}
	}
	if (g.SpreadSum == nil) != (w.SpreadSum == nil) {
		t.Fatalf("%s: strata spread presence diverged", label)
	}
	for h := range w.SpreadSum {
		if math.Float64bits(g.SpreadSum[h]) != math.Float64bits(w.SpreadSum[h]) || g.SpreadN[h] != w.SpreadN[h] {
			t.Fatalf("%s: stratum %d spread diverged", label, h)
		}
	}
}

// TestStratifiedDistributedMatchesSolo is the stratified twin of the core
// contract: a two-phase campaign sharded over loopback workers — pilot
// slots first, the Neyman table built at the boundary, main slots leased
// with the serialized table — merges bit-identical to the same spec run in
// one process.
func TestStratifiedDistributedMatchesSolo(t *testing.T) {
	for _, dtype := range []string{"FLOAT16", "32b_rb10"} {
		t.Run(dtype, func(t *testing.T) {
			spec := stratSpec(dtype)
			want, err := Solo(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if want.Strata == nil {
				t.Fatal("solo stratified run has no strata summary")
			}

			co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()
			runWorkers(t, srv, 2, NewGoldenCache())

			select {
			case <-co.Done():
			case <-time.After(60 * time.Second):
				t.Fatalf("campaign did not finish: %d/%d slots", co.CompletedShards(), co.Spec().Slots())
			}
			got, err := co.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertStrataBitIdentical(t, dtype, got.Datapath, want)

			snap := co.Snapshot()
			if !snap.Done || snap.Injections != spec.N {
				t.Fatalf("snapshot off: done=%v injections=%d want %d", snap.Done, snap.Injections, spec.N)
			}
			if snap.Sampling != "stratified" || snap.PilotShards != co.Spec().Shards {
				t.Fatalf("stratified snapshot fields off: sampling=%q pilot_shards=%d",
					snap.Sampling, snap.PilotShards)
			}
			if len(snap.StrataWeights) == 0 || len(snap.StrataTrials) != len(snap.StrataWeights) {
				t.Fatalf("snapshot strata arrays off: %d weights, %d trials",
					len(snap.StrataWeights), len(snap.StrataTrials))
			}
			total := 0
			for _, n := range snap.StrataTrials {
				total += n
			}
			if total != spec.N {
				t.Fatalf("strata trials sum to %d, want %d", total, spec.N)
			}
		})
	}
}

// TestStratifiedCheckpointResume kills a stratified campaign twice — first
// mid-pilot, then exactly at the pilot→allocation boundary (all pilot
// slots checkpointed, no main slot run) — and requires each resumed
// coordinator to recompute the identical allocation table from the
// checkpoint and finish bit-identical to the uninterrupted solo run.
func TestStratifiedCheckpointResume(t *testing.T) {
	spec := stratSpec("FLOAT16")
	want, err := Solo(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	goldens := NewGoldenCache()
	shards := func(co *Coordinator) int { return co.Spec().Shards }

	// Stage 1: die after two pilot slots.
	co1, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	w1 := &Worker{Base: srv1.URL, Poll: 10 * time.Millisecond, Client: srv1.Client(),
		Goldens: goldens, MaxLeases: 2}
	if err := w1.Run(context.Background()); err != nil {
		t.Fatalf("stage-1 worker: %v", err)
	}
	srv1.Close()
	if got := co1.CompletedShards(); got != 2 {
		t.Fatalf("stage 1 completed %d slots, want 2", got)
	}

	// Stage 2: resume mid-pilot, die with every pilot slot done but no
	// main slot started — the resume that follows spans the
	// pilot→allocation boundary.
	co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if co2.Resumed() != 2 {
		t.Fatalf("stage 2 resumed %d slots, want 2", co2.Resumed())
	}
	srv2 := httptest.NewServer(co2.Handler())
	w2 := &Worker{Base: srv2.URL, Poll: 10 * time.Millisecond, Client: srv2.Client(),
		Goldens: goldens, MaxLeases: shards(co2) - 2}
	if err := w2.Run(context.Background()); err != nil {
		t.Fatalf("stage-2 worker: %v", err)
	}
	srv2.Close()
	if got := co2.CompletedShards(); got != shards(co2) {
		t.Fatalf("stage 2 completed %d slots, want all %d pilots", got, shards(co2))
	}

	// Stage 3: the resumed coordinator sees only pilot entries in the
	// checkpoint and must rebuild the allocation table before leasing any
	// main slot.
	co3, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if co3.Resumed() != shards(co3) {
		t.Fatalf("stage 3 resumed %d slots, want %d", co3.Resumed(), shards(co3))
	}
	first := co3.lease(time.Now())
	if first.Lease == nil || first.Lease.Phase != "main" || first.Lease.Table == nil {
		t.Fatalf("post-boundary resume did not lease a main slot with a table: %+v", first.Lease)
	}
	// Return the probe lease by letting it expire instantly on the next
	// scan — heartbeats stop here, and LeaseTTL is what workers wait out.
	co3.heartbeat(first.Lease.ID, time.Now().Add(-time.Hour))
	srv3 := httptest.NewServer(co3.Handler())
	defer srv3.Close()
	runWorkers(t, srv3, 2, goldens)
	select {
	case <-co3.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed stratified campaign did not finish")
	}
	got, err := co3.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertStrataBitIdentical(t, "stratified resume", got.Datapath, want)
}

// TestStratifiedLeaseGating drives a coordinator directly (no HTTP): main
// slots must not lease until every pilot slot has reported, and the lease
// order must visit pilots in slot order.
func TestStratifiedLeaseGating(t *testing.T) {
	spec := stratSpec("FLOAT16")
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	camp, err := spec.NewCampaign(nil)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	opts := spec.Options()
	seen := make([]string, 0, spec.Slots())
	for {
		resp := co.lease(time.Now())
		if resp.Done {
			break
		}
		if resp.Lease == nil {
			t.Fatalf("no lease while %d/%d slots done", co.CompletedShards(), spec.Slots())
		}
		l := resp.Lease
		seen = append(seen, l.Phase)
		var rep *faultinj.Report
		switch l.Phase {
		case "pilot":
			if l.Table != nil {
				t.Fatal("pilot lease carries an allocation table")
			}
			rep = camp.PilotShard(l.Shard, l.Of, opts)
		case "main":
			if l.Table == nil {
				t.Fatal("main lease missing the allocation table")
			}
			rep = camp.MainShard(l.Shard, l.Of, l.Table, opts)
		default:
			t.Fatalf("unexpected phase %q", l.Phase)
		}
		if err := co.acceptReport(ReportRequest{LeaseID: l.ID, Shard: l.Slot, Report: &Report{Datapath: rep}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != spec.Slots() {
		t.Fatalf("leased %d slots, want %d", len(seen), spec.Slots())
	}
	for i, phase := range seen {
		want := "pilot"
		if i >= spec.Shards {
			want = "main"
		}
		if phase != want {
			t.Fatalf("lease %d was %q, want %q (pilots must all precede mains)", i, phase, want)
		}
	}
	want, err := Solo(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertStrataBitIdentical(t, "direct drive", got.Datapath, want)
}

// TestStratifiedSnapshotJSONRoundTrip ensures the NDJSON stream record for
// a stratified campaign survives serialize/deserialize bit-exactly,
// including the hex-encoded stratum weights.
func TestStratifiedSnapshotJSONRoundTrip(t *testing.T) {
	spec := stratSpec("FLOAT16")
	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, srv, 2, NewGoldenCache())
	<-co.Done()

	snap := co.Snapshot()
	line, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), `"strata_weights"`) {
		t.Fatalf("stream record missing strata_weights: %s", line)
	}
	var back Snapshot
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sampling != snap.Sampling || back.PilotShards != snap.PilotShards ||
		back.CompletedShards != snap.CompletedShards || back.Injections != snap.Injections ||
		back.Done != snap.Done {
		t.Fatalf("snapshot round trip diverged:\n got %+v\nwant %+v", back, snap)
	}
	if math.Float64bits(back.SDC1) != math.Float64bits(snap.SDC1) ||
		math.Float64bits(back.SDC1CI95) != math.Float64bits(snap.SDC1CI95) {
		t.Fatal("snapshot estimates not bit-exact after round trip")
	}
	if len(back.StrataWeights) != len(snap.StrataWeights) {
		t.Fatalf("weights length diverged: %d vs %d", len(back.StrataWeights), len(snap.StrataWeights))
	}
	for h := range snap.StrataWeights {
		if math.Float64bits(back.StrataWeights[h]) != math.Float64bits(snap.StrataWeights[h]) {
			t.Fatalf("stratum %d weight not bit-exact after round trip", h)
		}
		if back.StrataTrials[h] != snap.StrataTrials[h] {
			t.Fatalf("stratum %d trials diverged", h)
		}
	}
	for i := range snap.PerBlock {
		if back.PerBlock[i] != snap.PerBlock[i] {
			t.Fatalf("per-block aggregate %d diverged", i)
		}
	}
}

// TestSpecNormalizeStratified covers the sampling-specific validation and
// the slot geometry helpers.
func TestSpecNormalizeStratified(t *testing.T) {
	bad := []Spec{
		{N: 10, Sampling: "sideways"},
		{N: 100, Sampling: "stratified", Select: "perbit", Param: 3},
		{N: 100, Sampling: "stratified", Select: "perlayer", Param: 0},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Fatalf("bad spec %d passed validation: %+v", i, s)
		}
	}

	s := Spec{N: 100, Shards: 4, Sampling: "stratified"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	pilot, _ := faultinj.PilotBudget(s.N, 0)
	if s.PilotN != pilot {
		t.Fatalf("PilotN defaulted to %d, want %d", s.PilotN, pilot)
	}
	if !s.Stratified() || s.Slots() != 2*s.Shards {
		t.Fatalf("slot geometry off: stratified=%v slots=%d shards=%d", s.Stratified(), s.Slots(), s.Shards)
	}
	for slot := 0; slot < s.Slots(); slot++ {
		phase, shard := s.SlotPhase(slot)
		wantPhase := "pilot"
		if slot%2 == 1 {
			wantPhase = "main"
		}
		if phase != wantPhase || shard != slot/2 {
			t.Fatalf("slot %d mapped to (%q, %d), want (%q, %d)", slot, phase, shard, wantPhase, slot/2)
		}
	}
	opt := s.Options()
	if opt.Sampling != faultinj.SamplingStratified || opt.PilotN != s.PilotN {
		t.Fatalf("Options did not carry sampling config: %+v", opt)
	}

	// Uniform specs must zero any stray pilot budget so spec equality
	// (checkpoint resume) is well defined.
	u := Spec{N: 100, PilotN: 33}
	if err := u.Normalize(); err != nil {
		t.Fatal(err)
	}
	if u.Sampling != "uniform" || u.PilotN != 0 || u.Slots() != u.Shards {
		t.Fatalf("uniform normalization off: %+v", u)
	}
	if phase, shard := u.SlotPhase(3); phase != "" || shard != 3 {
		t.Fatalf("uniform SlotPhase off: (%q, %d)", phase, shard)
	}
}
