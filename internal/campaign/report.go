package campaign

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/sdc"
	"repro/internal/systolic"
)

// Report is the surface-tagged wire report of one ledger slot (and of the
// merged campaign): exactly one of Datapath, Buffer or Systolic is set,
// matching Spec.Surface. It exists so one coordinator ledger, checkpoint
// format and worker protocol carry every fault surface; the inner reports
// keep their own JSON shapes, so a distributed campaign's final report
// still byte-compares against the solo faultinj/eyeriss/systolic run.
type Report struct {
	Datapath *faultinj.Report `json:"datapath,omitempty"`
	Buffer   *eyeriss.Report  `json:"buffer,omitempty"`
	Systolic *systolic.Report `json:"systolic,omitempty"`
}

// surfaces returns how many inner reports are set.
func (r *Report) surfaces() int {
	n := 0
	if r.Datapath != nil {
		n++
	}
	if r.Buffer != nil {
		n++
	}
	if r.Systolic != nil {
		n++
	}
	return n
}

// validate rejects wire reports that don't carry exactly the spec's
// surface.
func (r *Report) validate(spec Spec) error {
	if r == nil {
		return fmt.Errorf("campaign: report missing body")
	}
	if r.surfaces() != 1 {
		return fmt.Errorf("campaign: report must carry exactly one surface")
	}
	if spec.BufferSurface() != (r.Buffer != nil) || spec.SystolicSurface() != (r.Systolic != nil) {
		return fmt.Errorf("campaign: report surface does not match spec surface %q", spec.Surface)
	}
	return nil
}

// Merge folds r2 into r (same surface on both sides). Like the inner
// merges, shard-order folding is part of the bit-identity contract.
func (r *Report) Merge(r2 *Report) {
	switch {
	case r2 == nil:
	case r.Datapath != nil && r2.Datapath != nil:
		r.Datapath.Merge(r2.Datapath)
	case r.Buffer != nil && r2.Buffer != nil:
		r.Buffer.Merge(r2.Buffer)
	case r.Systolic != nil && r2.Systolic != nil:
		r.Systolic.Merge(r2.Systolic)
	default:
		panic("campaign: merging reports of different surfaces")
	}
}

// MergeReports folds per-slot wire reports in slot order — nil entries
// (skipped slots) are ignored; nil when every entry is nil. The inner fold
// association is exactly the surface's own MergeReports.
func MergeReports(rs []*Report) *Report {
	var dps []*faultinj.Report
	var bufs []*eyeriss.Report
	var syss []*systolic.Report
	hasDP, hasBuf, hasSys := false, false, false
	for _, r := range rs {
		if r == nil {
			continue
		}
		dps = append(dps, r.Datapath)
		bufs = append(bufs, r.Buffer)
		syss = append(syss, r.Systolic)
		hasDP = hasDP || r.Datapath != nil
		hasBuf = hasBuf || r.Buffer != nil
		hasSys = hasSys || r.Systolic != nil
	}
	set := 0
	for _, has := range []bool{hasDP, hasBuf, hasSys} {
		if has {
			set++
		}
	}
	switch {
	case set > 1:
		panic("campaign: merging reports of different surfaces")
	case hasBuf:
		return &Report{Buffer: eyeriss.MergeReports(bufs)}
	case hasSys:
		return &Report{Systolic: systolic.MergeReports(syss)}
	case hasDP:
		return &Report{Datapath: faultinj.MergeReports(dps)}
	}
	return nil
}

// Counts returns the inner report's overall SDC tally.
func (r *Report) Counts() sdc.Counts {
	switch {
	case r.Buffer != nil:
		return r.Buffer.Counts
	case r.Systolic != nil:
		return r.Systolic.Counts
	}
	return r.Datapath.Counts
}

// Masked returns the injections the incremental engine proved bit-clean
// (datapath only; the other surfaces always classify the full output).
func (r *Report) Masked() int {
	if r.Datapath != nil {
		return r.Datapath.Masked
	}
	return 0
}

// PerBlock returns the per-block tallies of a datapath report; nil for
// the other surfaces (their per-layer view lives in Strata).
func (r *Report) PerBlock() []sdc.Counts {
	if r.Datapath != nil {
		return r.Datapath.PerBlock
	}
	return nil
}

// Strata returns the inner report's per-stratum tallies (nil for uniform
// campaigns).
func (r *Report) Strata() *engine.StrataSummary {
	switch {
	case r.Buffer != nil:
		return r.Buffer.Strata
	case r.Systolic != nil:
		return r.Systolic.Strata
	}
	return r.Datapath.Strata
}

// SDCEstimate returns the inner report's uniform-design SDC estimate for
// criterion k with its 95% CI half-width.
func (r *Report) SDCEstimate(k sdc.Kind) (p, ci95 float64) {
	switch {
	case r.Buffer != nil:
		return r.Buffer.SDCEstimate(k)
	case r.Systolic != nil:
		return r.Systolic.SDCEstimate(k)
	}
	return r.Datapath.SDCEstimate(k)
}
