package campaign

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinj"
)

// assertBitIdentical fails unless got and want are bit-for-bit equal,
// including the order-sensitive value samples and spread accumulators.
func assertBitIdentical(t *testing.T, label string, got, want *faultinj.Report) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil report (got=%v want=%v)", label, got != nil, want != nil)
	}
	if got.Counts != want.Counts || got.Masked != want.Masked || got.Detection != want.Detection {
		t.Fatalf("%s: counts diverged:\n got %+v masked=%d\nwant %+v masked=%d",
			label, got.Counts, got.Masked, want.Counts, want.Masked)
	}
	for b := range want.PerBit {
		if got.PerBit[b] != want.PerBit[b] {
			t.Fatalf("%s: per-bit %d diverged", label, b)
		}
	}
	for b := range want.PerBlock {
		if got.PerBlock[b] != want.PerBlock[b] {
			t.Fatalf("%s: per-block %d diverged", label, b)
		}
		if math.Float64bits(got.SpreadSum[b]) != math.Float64bits(want.SpreadSum[b]) || got.SpreadN[b] != want.SpreadN[b] {
			t.Fatalf("%s: spread at block %d diverged", label, b)
		}
	}
	for tg := range want.PerTarget {
		if got.PerTarget[tg] != want.PerTarget[tg] {
			t.Fatalf("%s: per-target %d diverged", label, tg)
		}
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: value sample sizes diverged: %d vs %d", label, len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		a, b := got.Values[i], want.Values[i]
		if math.Float64bits(a.Golden) != math.Float64bits(b.Golden) ||
			math.Float64bits(a.Faulty) != math.Float64bits(b.Faulty) || a.SDC != b.SDC {
			t.Fatalf("%s: value record %d diverged: %+v vs %+v", label, i, a, b)
		}
	}
}

func testSpec(dtype string) Spec {
	return Spec{
		Net:         "ConvNet",
		DType:       dtype,
		N:           110,
		Inputs:      2,
		Seed:        7,
		Shards:      5,
		TrackValues: 24,
		TrackSpread: true,
	}
}

// runWorkers drives n loopback workers against srv until the campaign
// completes, sharing one golden cache.
func runWorkers(t *testing.T, srv *httptest.Server, n int, goldens *GoldenCache) {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		w := &Worker{
			Base:    srv.URL,
			Name:    "w" + string(rune('0'+i)),
			Poll:    10 * time.Millisecond,
			GiveUp:  5 * time.Second,
			Client:  srv.Client(),
			Goldens: goldens,
		}
		go func() { errs <- w.Run(context.Background()) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}

// TestDistributedMatchesSolo is the subsystem's core contract: a campaign
// sharded over multiple workers through loopback HTTP merges bit-identical
// to the same spec run in a single process, across numeric formats.
func TestDistributedMatchesSolo(t *testing.T) {
	for _, dtype := range []string{"FLOAT16", "32b_rb10"} {
		t.Run(dtype, func(t *testing.T) {
			spec := testSpec(dtype)
			want, err := Solo(spec, nil)
			if err != nil {
				t.Fatal(err)
			}

			co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()
			runWorkers(t, srv, 2, NewGoldenCache())

			select {
			case <-co.Done():
			case <-time.After(60 * time.Second):
				t.Fatalf("campaign did not finish: %d/%d shards", co.CompletedShards(), spec.Shards)
			}
			got, err := co.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, dtype, got.Datapath, want)

			snap := co.Snapshot()
			if !snap.Done || snap.Injections != spec.N {
				t.Fatalf("snapshot off: done=%v injections=%d want %d", snap.Done, snap.Injections, spec.N)
			}
			if len(snap.PerBlock) == 0 {
				t.Fatal("snapshot has no per-block aggregates")
			}
		})
	}
}

// TestMBUDistributedMatchesSolo runs the core contract for datapath
// multi-bit-upset campaigns: the distributed merge must reproduce the raw
// faultinj.Campaign.Run of the same spec bit for bit, for both sampling
// designs.
func TestMBUDistributedMatchesSolo(t *testing.T) {
	for _, sampling := range []string{"uniform", "stratified"} {
		t.Run(sampling, func(t *testing.T) {
			spec := testSpec("16b_rb10")
			spec.MBU = 3
			spec.Sampling = sampling
			if sampling == "stratified" {
				// Stratified campaigns track no values or spread.
				spec.TrackValues, spec.TrackSpread = 0, false
			}
			if err := spec.Normalize(); err != nil {
				t.Fatal(err)
			}
			// The reference is the surface's own API, not Solo — the
			// distributed path must reproduce faultinj exactly, not merely
			// itself.
			fc, err := spec.NewCampaign(nil)
			if err != nil {
				t.Fatal(err)
			}
			want := fc.Run(spec.Options())

			solo, err := Solo(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "solo", solo, want)

			co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()
			runWorkers(t, srv, 2, NewGoldenCache())
			select {
			case <-co.Done():
			case <-time.After(60 * time.Second):
				t.Fatalf("campaign did not finish: %d/%d slots", co.CompletedShards(), spec.Slots())
			}
			got, err := co.FinalReport()
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "distributed", got.Datapath, want)
		})
	}
}

// TestCheckpointResume kills a campaign after two shards (worker
// MaxLeases) and restarts a fresh coordinator from the checkpoint: the
// resumed run must restore exactly those shards without re-running them
// and still merge bit-identical to the uninterrupted solo run.
func TestCheckpointResume(t *testing.T) {
	spec := testSpec("FLOAT16")
	want, err := Solo(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	goldens := NewGoldenCache()

	co1, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	w := &Worker{Base: srv1.URL, Poll: 10 * time.Millisecond, Client: srv1.Client(),
		Goldens: goldens, MaxLeases: 2}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("partial worker: %v", err)
	}
	srv1.Close()
	if got := co1.CompletedShards(); got != 2 {
		t.Fatalf("partial run completed %d shards, want 2", got)
	}

	co2, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if co2.Resumed() != 2 {
		t.Fatalf("resumed %d shards from checkpoint, want 2", co2.Resumed())
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, srv2, 2, goldens)
	select {
	case <-co2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed campaign did not finish")
	}
	got, err := co2.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "resume", got.Datapath, want)

	// A third coordinator sees the finished checkpoint: done immediately.
	co3, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-co3.Done():
	default:
		t.Fatal("fully-checkpointed campaign not immediately done")
	}
	final, err := co3.FinalReport()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "cold final", final.Datapath, want)
}

// TestCheckpointSpecMismatch ensures a checkpoint never silently feeds a
// different campaign.
func TestCheckpointSpecMismatch(t *testing.T) {
	spec := testSpec("FLOAT16")
	cp := filepath.Join(t.TempDir(), "campaign.ckpt")
	co, err := NewCoordinator(Config{Spec: spec, CheckpointPath: cp, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	l := co.lease(now).Lease
	rep := &Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
	if err := co.acceptReport(ReportRequest{LeaseID: l.ID, Shard: l.Shard, Report: rep}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 999
	if _, err := NewCoordinator(Config{Spec: other, CheckpointPath: cp}); err == nil ||
		!strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("mismatched spec not rejected: %v", err)
	}
}

// TestLeaseExpiryAndMaxRetries drives the lease state machine with
// synthetic clocks: missed heartbeats re-lease a shard a bounded number of
// times, then fail the campaign.
func TestLeaseExpiryAndMaxRetries(t *testing.T) {
	spec := testSpec("FLOAT16")
	ttl := 50 * time.Millisecond
	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: ttl, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	first := co.lease(base)
	if first.Lease == nil || first.Lease.Shard != 0 || first.Lease.Of != spec.Shards {
		t.Fatalf("unexpected first lease: %+v", first)
	}
	// Walk shard 0 through MaxRetries expiries; each expiry hands the
	// shard out again under a fresh lease ID.
	now := base
	prevID := first.Lease.ID
	for retry := 1; retry <= 2; retry++ {
		now = now.Add(ttl + time.Millisecond)
		resp := co.lease(now)
		if resp.Lease == nil || resp.Lease.Shard != 0 {
			t.Fatalf("retry %d: shard 0 not re-leased: %+v", retry, resp)
		}
		if resp.Lease.ID == prevID {
			t.Fatalf("retry %d: lease ID not rotated", retry)
		}
		prevID = resp.Lease.ID
	}
	// One more expiry exceeds MaxRetries: campaign fails.
	now = now.Add(ttl + time.Millisecond)
	resp := co.lease(now)
	if resp.Failed == "" {
		t.Fatalf("campaign did not fail after exhausting retries: %+v", resp)
	}
	if co.Err() == nil {
		t.Fatal("Err() nil after campaign failure")
	}
}

// TestHeartbeatExtendsLease verifies a heartbeat moves the deadline and a
// dead lease is refused.
func TestHeartbeatExtendsLease(t *testing.T) {
	spec := testSpec("FLOAT16")
	ttl := 50 * time.Millisecond
	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: ttl, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	l := co.lease(base).Lease
	if !co.heartbeat(l.ID, base.Add(40*time.Millisecond)) {
		t.Fatal("live heartbeat refused")
	}
	// Past the original deadline but within the extended one: leasing
	// must hand out a different shard, not re-lease shard 0.
	resp := co.lease(base.Add(60 * time.Millisecond))
	if resp.Lease == nil || resp.Lease.Shard == l.Shard {
		t.Fatalf("heartbeat did not hold the lease: %+v", resp)
	}
	// Once truly expired, the old lease ID is dead.
	if co.heartbeat(l.ID, base.Add(time.Hour)) {
		t.Fatal("expired lease heartbeat accepted")
	}
}

// TestReportAcceptanceIdempotent covers late delivery from an expired
// lease (accepted — deterministic shards make the stale copy identical)
// and duplicate delivery (ignored).
func TestReportAcceptanceIdempotent(t *testing.T) {
	spec := testSpec("FLOAT16")
	co, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 50 * time.Millisecond, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	stale := co.lease(base).Lease
	// Expire it and re-lease to a second worker.
	release := co.lease(base.Add(time.Second)).Lease
	if release == nil || release.Shard != stale.Shard {
		t.Fatalf("shard not re-leased: %+v", release)
	}
	rep := &Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
	rep.Datapath.Masked = 1
	if err := co.acceptReport(ReportRequest{LeaseID: stale.ID, Shard: stale.Shard, Report: rep}); err != nil {
		t.Fatalf("stale-but-first delivery rejected: %v", err)
	}
	if co.CompletedShards() != 1 {
		t.Fatalf("completed=%d want 1", co.CompletedShards())
	}
	// The re-leased worker delivers the same shard again: no double count.
	if err := co.acceptReport(ReportRequest{LeaseID: release.ID, Shard: release.Shard, Report: rep}); err != nil {
		t.Fatalf("duplicate delivery errored: %v", err)
	}
	if co.CompletedShards() != 1 {
		t.Fatalf("duplicate delivery double-counted: completed=%d", co.CompletedShards())
	}
	if err := co.acceptReport(ReportRequest{Shard: spec.Shards + 3, Report: rep}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestGoldenCacheSharing runs two campaigns over the same coordinates
// through one cache: the second pays zero golden passes.
func TestGoldenCacheSharing(t *testing.T) {
	goldens := NewGoldenCache()
	spec := testSpec("FLOAT16")
	first, err := Solo(spec, goldens)
	if err != nil {
		t.Fatal(err)
	}
	_, misses0 := goldens.Stats()
	if misses0 != spec.Inputs {
		t.Fatalf("first run computed %d goldens, want %d", misses0, spec.Inputs)
	}
	// Different N and seed, same network/format/inputs: all hits.
	spec2 := spec
	spec2.N, spec2.Seed = 60, 99
	if _, err := Solo(spec2, goldens); err != nil {
		t.Fatal(err)
	}
	hits, misses := goldens.Stats()
	if misses != misses0 {
		t.Fatalf("second run recomputed goldens: misses %d -> %d", misses0, misses)
	}
	if hits < spec.Inputs {
		t.Fatalf("second run hit cache %d times, want >= %d", hits, spec.Inputs)
	}
	// And the cached goldens change nothing: cache-free run is identical.
	plain, err := Solo(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "golden cache", first, plain)
}

// TestSpecNormalize covers validation and defaulting.
func TestSpecNormalize(t *testing.T) {
	bad := []Spec{
		{Net: "NoSuchNet", N: 10},
		{DType: "FLOAT13", N: 10},
		{N: 0},
		{N: 10, Select: "sideways"},
		{N: 10, Select: "perbit", Param: 99},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Fatalf("bad spec %d passed validation: %+v", i, s)
		}
	}
	s := Spec{N: 10, Shards: 64}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Net == "" || s.DType == "" || s.Select != "uniform" || s.Inputs != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.Shards > s.N {
		t.Fatalf("shards %d not clamped to N=%d", s.Shards, s.N)
	}
}
