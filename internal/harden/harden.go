// Package harden implements the paper's Selective Latch Hardening (SLH,
// §6.3) following the analytical model of Sullivan et al.: given the
// per-bit SDC FIT contribution of a datapath word (measured by the Fig. 4
// campaigns), choose for each latch the cheapest hardened design such that
// a target whole-word FIT reduction is met at minimum area.
//
// Three hardened latch designs are considered (Table 9): strike
// suppression (RCC), redundant node (SEUT) and triplication (TMR), with
// FIT reductions of 6.3x, 37x and 1,000,000x at area costs of 1.15x, 2x
// and 3.5x the baseline latch.
package harden

import (
	"fmt"
	"math"
	"sort"
)

// Design is a hardened latch option from Table 9.
type Design struct {
	// Name labels the design.
	Name string
	// Area is the area relative to an unprotected latch.
	Area float64
	// Reduction is the per-latch FIT reduction factor.
	Reduction float64
}

// The Table 9 design space.
var (
	Baseline = Design{Name: "Baseline", Area: 1, Reduction: 1}
	RCC      = Design{Name: "RCC", Area: 1.15, Reduction: 6.3}
	SEUT     = Design{Name: "SEUT", Area: 2, Reduction: 37}
	TMR      = Design{Name: "TMR", Area: 3.5, Reduction: 1e6}
)

// Designs lists the hardening options in increasing strength.
var Designs = []Design{RCC, SEUT, TMR}

// Sensitivity is the per-latch (per-bit) SDC FIT contribution of a
// datapath word. Entries may be zero (bits whose flips never cause SDCs).
type Sensitivity []float64

// Total returns the unprotected word FIT.
func (s Sensitivity) Total() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Beta quantifies the asymmetry of the sensitivity distribution as the
// exponent of the best-fit curve y = (1-exp(-βx))/(1-exp(-β)) through the
// perfect-protection curve (Fig. 9a): a high β means a few latches carry
// nearly all the FIT.
func (s Sensitivity) Beta() float64 {
	xs, ys := s.ProtectionCurve()
	// Golden-section search for the β minimizing squared error.
	lo, hi := 0.01, 60.0
	const phi = 0.6180339887498949
	sse := func(beta float64) float64 {
		var e float64
		denom := 1 - math.Exp(-beta)
		for i := range xs {
			pred := (1 - math.Exp(-beta*xs[i])) / denom
			d := pred - ys[i]
			e += d * d
		}
		return e
	}
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	for b-a > 1e-6 {
		if sse(c) < sse(d) {
			b = d
		} else {
			a = c
		}
		c = b - phi*(b-a)
		d = a + phi*(b-a)
	}
	return (a + b) / 2
}

// ProtectionCurve returns the Fig. 9a curve: protecting the k most
// sensitive latches (perfectly) removes ys[k] of the total FIT, at
// xs[k] = k/len fraction of latches protected. Curves start at (0,0) and
// end at (1,1).
func (s Sensitivity) ProtectionCurve() (xs, ys []float64) {
	sorted := append(Sensitivity(nil), s...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := s.Total()
	n := len(s)
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	cum := 0.0
	for k := 1; k <= n; k++ {
		cum += sorted[k-1]
		xs[k] = float64(k) / float64(n)
		if total > 0 {
			ys[k] = cum / total
		} else {
			ys[k] = xs[k]
		}
	}
	return xs, ys
}

// Assignment maps each latch (by index) to its chosen design; nil entries
// mean baseline (unprotected).
type Assignment []*Design

// Area returns the total latch area overhead of the assignment as a
// fraction of the unprotected word area (e.g. 0.2 = +20%).
func (a Assignment) Area() float64 {
	var extra float64
	for _, d := range a {
		if d != nil {
			extra += d.Area - 1
		}
	}
	return extra / float64(len(a))
}

// ResidualFIT returns the word FIT remaining under the assignment.
func (a Assignment) ResidualFIT(s Sensitivity) float64 {
	var t float64
	for i, v := range s {
		if d := a[i]; d != nil {
			v /= d.Reduction
		}
		t += v
	}
	return t
}

// Uniform returns the sensitivity of a word whose bits contribute equally
// — the paper's "Uniform" reference curve in Fig. 9a.
func Uniform(n int) Sensitivity {
	s := make(Sensitivity, n)
	for i := range s {
		s[i] = 1 / float64(n)
	}
	return s
}

// SingleDesignPlan protects latches in descending sensitivity order with
// one design until the target whole-word FIT reduction factor is met.
// ok is false when the design cannot reach the target even protecting
// every latch (e.g. RCC capped at 6.3x).
func SingleDesignPlan(s Sensitivity, d Design, target float64) (Assignment, bool) {
	if target <= 0 {
		panic(fmt.Sprintf("harden: invalid target %v", target))
	}
	order := sensitivityOrder(s)
	a := make(Assignment, len(s))
	total := s.Total()
	if total == 0 {
		return a, true
	}
	budget := total / target
	for _, i := range order {
		if a.ResidualFIT(s) <= budget {
			return a, true
		}
		a[i] = &d
	}
	return a, a.ResidualFIT(s) <= budget
}

// MultiPlan combines the designs cost-optimally: repeatedly apply the
// upgrade (latch, design) with the best marginal FIT-reduction-per-area
// until the target reduction factor is met. This reproduces the "Multi"
// curve of Fig. 9b/9c.
func MultiPlan(s Sensitivity, target float64) (Assignment, bool) {
	if target <= 0 {
		panic(fmt.Sprintf("harden: invalid target %v", target))
	}
	a := make(Assignment, len(s))
	total := s.Total()
	if total == 0 {
		return a, true
	}
	budget := total / target
	for a.ResidualFIT(s) > budget {
		bi, bd, best := -1, (*Design)(nil), 0.0
		for i, v := range s {
			if v == 0 {
				continue
			}
			cur := a[i]
			curFIT, curArea := v, 1.0
			if cur != nil {
				curFIT, curArea = v/cur.Reduction, cur.Area
			}
			for di := range Designs {
				d := &Designs[di]
				if cur != nil && d.Reduction <= cur.Reduction {
					continue
				}
				dFIT := curFIT - v/d.Reduction
				dArea := d.Area - curArea
				if dArea <= 0 || dFIT <= 0 {
					continue
				}
				if ratio := dFIT / dArea; ratio > best {
					best, bi, bd = ratio, i, d
				}
			}
		}
		if bi < 0 {
			return a, false // no upgrade available; target unreachable
		}
		a[bi] = bd
	}
	return a, true
}

// OverheadCurve evaluates a plan function over a sweep of target FIT
// reduction factors, returning the area overhead (fraction) at each
// reachable target and NaN where unreachable — the Fig. 9b/9c series.
func OverheadCurve(s Sensitivity, targets []float64, plan func(Sensitivity, float64) (Assignment, bool)) []float64 {
	out := make([]float64, len(targets))
	for i, t := range targets {
		a, ok := plan(s, t)
		if !ok {
			out[i] = math.NaN()
			continue
		}
		out[i] = a.Area()
	}
	return out
}

// sensitivityOrder returns latch indices in descending sensitivity.
func sensitivityOrder(s Sensitivity) []int {
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })
	return order
}
