package harden

import (
	"math"
	"testing"
)

// f16like mimics a FLOAT16 per-bit FIT profile: only the high exponent
// bits contribute (Fig. 4b).
func f16like() Sensitivity {
	s := make(Sensitivity, 16)
	s[14] = 0.060
	s[13] = 0.030
	s[12] = 0.010
	s[11] = 0.002
	s[10] = 0.0005
	return s
}

func TestTable9Designs(t *testing.T) {
	if RCC.Area != 1.15 || RCC.Reduction != 6.3 {
		t.Errorf("RCC drifted: %+v", RCC)
	}
	if SEUT.Area != 2 || SEUT.Reduction != 37 {
		t.Errorf("SEUT drifted: %+v", SEUT)
	}
	if TMR.Area != 3.5 || TMR.Reduction != 1e6 {
		t.Errorf("TMR drifted: %+v", TMR)
	}
	if Baseline.Area != 1 || Baseline.Reduction != 1 {
		t.Errorf("Baseline drifted: %+v", Baseline)
	}
}

func TestSensitivityTotal(t *testing.T) {
	s := f16like()
	if got := s.Total(); math.Abs(got-0.1025) > 1e-12 {
		t.Errorf("Total = %v, want 0.1025", got)
	}
}

func TestProtectionCurveShape(t *testing.T) {
	s := f16like()
	xs, ys := s.ProtectionCurve()
	if len(xs) != 17 || len(ys) != 17 {
		t.Fatalf("curve lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != 0 || ys[0] != 0 || xs[16] != 1 || math.Abs(ys[16]-1) > 1e-12 {
		t.Errorf("curve endpoints: (%v,%v) .. (%v,%v)", xs[0], ys[0], xs[16], ys[16])
	}
	// Monotone non-decreasing and concave-ish: first step is the biggest.
	for k := 1; k < 17; k++ {
		if ys[k] < ys[k-1] {
			t.Fatalf("curve decreasing at %d", k)
		}
	}
	if ys[1] < 0.5 {
		t.Errorf("protecting the single most sensitive latch removes %v, want >= 0.5", ys[1])
	}
}

func TestUniformCurveIsDiagonal(t *testing.T) {
	xs, ys := Uniform(8).ProtectionCurve()
	for i := range xs {
		if math.Abs(xs[i]-ys[i]) > 1e-12 {
			t.Fatalf("uniform curve not diagonal at %d: (%v,%v)", i, xs[i], ys[i])
		}
	}
}

func TestBetaOrdersAsymmetry(t *testing.T) {
	// A concentrated profile has a much higher β than the uniform one —
	// the Fig. 9a comparison (FLOAT16 β=7.34 vs uniform).
	concentrated := f16like().Beta()
	uniform := Uniform(16).Beta()
	if concentrated <= uniform {
		t.Errorf("β(concentrated)=%v should exceed β(uniform)=%v", concentrated, uniform)
	}
	if concentrated < 3 {
		t.Errorf("β(concentrated)=%v suspiciously low", concentrated)
	}
}

func TestAssignmentAreaAndResidual(t *testing.T) {
	s := Sensitivity{0.5, 0.3, 0.2, 0}
	a := make(Assignment, 4)
	a[0] = &TMR
	a[1] = &SEUT
	wantArea := ((TMR.Area - 1) + (SEUT.Area - 1)) / 4
	if got := a.Area(); math.Abs(got-wantArea) > 1e-12 {
		t.Errorf("Area = %v, want %v", got, wantArea)
	}
	wantFIT := 0.5/1e6 + 0.3/37 + 0.2
	if got := a.ResidualFIT(s); math.Abs(got-wantFIT) > 1e-15 {
		t.Errorf("ResidualFIT = %v, want %v", got, wantFIT)
	}
}

func TestSingleDesignPlanReachesTarget(t *testing.T) {
	s := f16like()
	for _, d := range []Design{SEUT, TMR} {
		a, ok := SingleDesignPlan(s, d, 20)
		if !ok {
			t.Fatalf("%s cannot reach 20x", d.Name)
		}
		if got := s.Total() / a.ResidualFIT(s); got < 20 {
			t.Errorf("%s: achieved %vx, want >= 20x", d.Name, got)
		}
	}
}

func TestRCCCannotReachHighTargets(t *testing.T) {
	s := f16like()
	if _, ok := SingleDesignPlan(s, RCC, 100); ok {
		t.Error("RCC (6.3x max) claimed to reach 100x")
	}
	if _, ok := SingleDesignPlan(s, RCC, 5); !ok {
		t.Error("RCC should reach 5x")
	}
}

func TestSingleDesignProtectsMostSensitiveFirst(t *testing.T) {
	s := Sensitivity{0.01, 0.9, 0.05, 0}
	a, ok := SingleDesignPlan(s, TMR, 5)
	if !ok {
		t.Fatal("TMR cannot reach 5x")
	}
	if a[1] == nil {
		t.Error("most sensitive latch left unprotected")
	}
	if a[3] != nil {
		t.Error("zero-sensitivity latch protected")
	}
}

func TestMultiPlanCheaperOrEqualToTMR(t *testing.T) {
	s := f16like()
	for _, target := range []float64{10, 50, 100} {
		multi, ok1 := MultiPlan(s, target)
		tmr, ok2 := SingleDesignPlan(s, TMR, target)
		if !ok1 || !ok2 {
			t.Fatalf("target %vx unreachable: multi=%v tmr=%v", target, ok1, ok2)
		}
		if multi.Area() > tmr.Area()+1e-12 {
			t.Errorf("target %vx: Multi area %v exceeds TMR-only area %v", target, multi.Area(), tmr.Area())
		}
		if got := s.Total() / multi.ResidualFIT(s); got < target {
			t.Errorf("target %vx: Multi achieved only %vx", target, got)
		}
	}
}

func TestMultiPlanUnreachableTarget(t *testing.T) {
	// Even TMR everywhere cannot exceed ~1e6x on a uniform profile.
	if _, ok := MultiPlan(Uniform(4), 1e9); ok {
		t.Error("MultiPlan claimed to reach 1e9x")
	}
}

func TestPaperScaleResult(t *testing.T) {
	// §6.3: combining the techniques reaches 100x latch FIT reduction at
	// modest area cost. With a concentrated FLOAT16-like profile the Multi
	// plan must stay well below TMR-everywhere (250% overhead).
	s := f16like()
	a, ok := MultiPlan(s, 100)
	if !ok {
		t.Fatal("100x unreachable")
	}
	if got := a.Area(); got > 1.0 {
		t.Errorf("100x at %v area overhead, want < 100%%", got)
	}
}

func TestOverheadCurve(t *testing.T) {
	s := f16like()
	targets := []float64{2, 6.3, 37, 100}
	curve := OverheadCurve(s, targets, MultiPlan)
	if len(curve) != len(targets) {
		t.Fatalf("curve length %d", len(curve))
	}
	last := -1.0
	for i, v := range curve {
		if math.IsNaN(v) {
			t.Fatalf("Multi curve unreachable at %vx", targets[i])
		}
		if v < last-1e-12 {
			t.Errorf("overhead not monotone at %vx: %v < %v", targets[i], v, last)
		}
		last = v
	}
	// RCC curve must be NaN past its 6.3x ceiling.
	rccCurve := OverheadCurve(s, targets, func(s Sensitivity, t float64) (Assignment, bool) {
		return SingleDesignPlan(s, RCC, t)
	})
	if !math.IsNaN(rccCurve[3]) {
		t.Error("RCC curve should be unreachable at 100x")
	}
}

func TestZeroSensitivityTrivial(t *testing.T) {
	s := make(Sensitivity, 8)
	a, ok := MultiPlan(s, 1000)
	if !ok || a.Area() != 0 {
		t.Errorf("zero-FIT word should meet any target for free: ok=%v area=%v", ok, a.Area())
	}
}

func TestPlanPanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on target <= 0")
		}
	}()
	MultiPlan(Uniform(4), 0)
}
