package eyeriss

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/numeric"
)

// TestBufferMBUCampaign runs a multi-bit-upset campaign over every buffer
// class: base bits whose span would cross the word end are never drawn,
// the distributed shard-order merge stays bit-identical to the solo run,
// and stratified runs leave the crossing strata empty.
func TestBufferMBUCampaign(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	opt := Options{N: 60, Seed: 7, Workers: 2, MBU: 3}
	differs := false
	for _, b := range Buffers {
		r := c.Run(b, opt)
		if r.Counts.Trials != 60 {
			t.Errorf("%s: trials = %d, want 60", b, r.Counts.Trials)
		}
		single := opt
		single.MBU = 1
		if c.Run(b, single).Counts != r.Counts {
			differs = true
		}
		parts := []*Report{c.RunShard(0, 2, b, opt), c.RunShard(1, 2, b, opt)}
		assertBufferReportsBitIdentical(t, fmt.Sprintf("%s mbu distributed", b), MergeReports(parts), r)
	}
	if !differs {
		t.Error("MBU=3 tallied identically to MBU=1 on every buffer class")
	}

	// Stratified MBU campaigns must leave the top MBU-1 base-bit strata
	// empty: their population weight is zero.
	width := numeric.Fx16RB10.Width()
	for _, b := range []Buffer{GlobalBuffer, ImgReg} {
		sopt := opt
		sopt.Sampling = faultinj.SamplingStratified
		sopt.PilotN = 24
		sr := c.Run(b, sopt)
		if sr.Strata == nil {
			t.Fatalf("%s: no strata", b)
		}
		blocks := len(sr.Strata.Counts) / width
		for blk := 0; blk < blocks; blk++ {
			for bit := width - opt.MBU + 1; bit < width; bit++ {
				if n := sr.Strata.Counts[blk*width+bit].Trials; n != 0 {
					t.Errorf("%s: stratum (%d,%d) got %d trials; MBU span would cross the word end", b, blk, bit, n)
				}
			}
		}
		parts := []*Report{c.RunShard(0, 2, b, sopt), c.RunShard(1, 2, b, sopt)}
		assertBufferReportsBitIdentical(t, fmt.Sprintf("%s mbu stratified", b), MergeReports(parts), sr)
	}
}

func TestBufferMBURejectsSiteModes(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1)}
	defer func() {
		if recover() == nil {
			t.Error("MBU + site mode did not panic")
		}
	}()
	c.Run(PSumReg, Options{N: 8, Seed: 1, MBU: 2, Eval: engine.EvalSiteScalar})
}

func TestBufferMBUWiderThanWordRejected(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1)}
	defer func() {
		if recover() == nil {
			t.Error("MBU wider than the word did not panic")
		}
	}()
	c.Run(GlobalBuffer, Options{N: 8, Seed: 1, MBU: 17})
}
