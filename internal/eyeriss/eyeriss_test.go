package eyeriss

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultinj"
	"repro/internal/fit"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

func buildSmall() *network.Network {
	conv := layers.NewConv("conv1", 1, 4, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = 0.2 * float64(i%5-2)
	}
	fc := layers.NewFC("fc2", 4*4*4, 8)
	for i := range fc.Weights {
		fc.Weights[i] = 0.08 * float64(i%7-3)
	}
	n := &network.Network{
		Name:    "small",
		InShape: tensor.Shape{C: 1, H: 8, W: 8},
		Classes: 8,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func smallInputs(n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		img := dataset.Image(dataset.CIFARLike, 8, i)
		one := tensor.New(tensor.Shape{C: 1, H: 8, W: 8})
		copy(one.Data, img.Data[:64])
		ins[i] = one
	}
	return ins
}

func TestTable7Parameters(t *testing.T) {
	if Params65nm.NumPEs != 168 || Params65nm.GlobalBufferKB != 98 {
		t.Errorf("65nm params drifted: %+v", Params65nm)
	}
	if Params16nm.NumPEs != 1344 || Params16nm.GlobalBufferKB != 784 {
		t.Errorf("16nm params drifted: %+v", Params16nm)
	}
	if Params16nm.FilterSRAMKB != 3.52 || Params16nm.ImgRegKB != 0.19 || Params16nm.PSumRegKB != 0.38 {
		t.Errorf("16nm per-PE sizes drifted: %+v", Params16nm)
	}
}

func TestScale(t *testing.T) {
	p := Scale(Params65nm, 8, "16nm-naive")
	if p.NumPEs != 1344 {
		t.Errorf("scaled PEs = %d, want 1344", p.NumPEs)
	}
	if math.Abs(p.GlobalBufferKB-784) > 1e-9 {
		t.Errorf("scaled GB = %v, want 784", p.GlobalBufferKB)
	}
}

func TestBufferStrings(t *testing.T) {
	want := map[Buffer]string{
		GlobalBuffer: "Global Buffer", FilterSRAM: "Filter SRAM",
		ImgReg: "Img REG", PSumReg: "PSum REG",
	}
	for b, s := range want {
		if b.String() != s {
			t.Errorf("%d.String() = %q", int(b), b.String())
		}
	}
}

func TestComponentBitsMatchPaperArithmetic(t *testing.T) {
	// The Table 8 FIT/SDC ratios imply these component sizes (in binary
	// megabits): GB 6.125, Filter SRAM ~4.61, Img REG ~0.249, PSum ~0.498.
	p := Params16nm
	mb := func(b Buffer) float64 { return float64(p.ComponentBits(b)) / fit.BitsPerMb }
	if got := mb(GlobalBuffer); math.Abs(got-6.125) > 1e-9 {
		t.Errorf("GB = %v Mb, want 6.125", got)
	}
	if got := mb(FilterSRAM); math.Abs(got-4.61) > 0.02 {
		t.Errorf("Filter SRAM = %v Mb, want ~4.61", got)
	}
	if got := mb(ImgReg); math.Abs(got-0.249) > 0.005 {
		t.Errorf("Img REG = %v Mb, want ~0.249", got)
	}
	if got := mb(PSumReg); math.Abs(got-0.498) > 0.005 {
		t.Errorf("PSum REG = %v Mb, want ~0.498", got)
	}
}

func TestTable8SanityAgainstPaper(t *testing.T) {
	// Plugging the paper's published SDC probabilities into our Eq. 1
	// implementation must reproduce the paper's published FIT rates.
	cases := []struct {
		b    Buffer
		sdc  float64
		want float64
	}{
		{GlobalBuffer, 0.697, 87.47},
		{FilterSRAM, 0.6637, 62.74},
		{ImgReg, 0.709, 3.57},
		{PSumReg, 0.2798, 2.82},
	}
	for _, c := range cases {
		got := FITComponent(Params16nm, c.b, c.sdc).FIT()
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%s: FIT = %v, want ~%v (ConvNet row of Table 8)", c.b, got, c.want)
		}
	}
}

func TestDatapathFromParams(t *testing.T) {
	d := Params16nm.Datapath(numeric.Fx16RB10)
	if d.NumPEs != 1344 || d.TotalLatchBits() != 1344*4*16 {
		t.Errorf("datapath = %+v bits=%d", d, d.TotalLatchBits())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	opt := Options{N: 120, Seed: 9, Workers: 3}
	r1 := c.Run(GlobalBuffer, opt)
	r2 := c.Run(GlobalBuffer, opt)
	if r1.Counts != r2.Counts {
		t.Errorf("buffer campaign not deterministic: %+v vs %+v", r1.Counts, r2.Counts)
	}
	if r1.Counts.Trials != 120 {
		t.Errorf("Trials = %d", r1.Counts.Trials)
	}
}

func TestAllBuffersRun(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1)}
	for _, b := range Buffers {
		r := c.Run(b, Options{N: 40, Seed: 3})
		if r.Counts.Trials != 40 {
			t.Errorf("%s: trials = %d", b, r.Counts.Trials)
		}
	}
}

func TestFilterSRAMRestoresWeights(t *testing.T) {
	// After a campaign the worker's own network is mutated and restored;
	// the injector must leave weights untouched between injections. We
	// verify via determinism of repeated golden runs through the campaign
	// (a leaked mutation would corrupt later goldens) and by running two
	// identical campaigns.
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(3)}
	r1 := c.Run(FilterSRAM, Options{N: 90, Seed: 17, Workers: 1})
	r2 := c.Run(FilterSRAM, Options{N: 90, Seed: 17, Workers: 1})
	if r1.Counts != r2.Counts {
		t.Error("FilterSRAM campaign leaked weight mutations")
	}
}

func TestGlobalBufferFaultSpreads(t *testing.T) {
	// A high-bit Global Buffer fault must corrupt multiple outputs of the
	// faulted layer (reuse), unlike a datapath fault which corrupts one.
	net := buildSmall()
	in := smallInputs(1)[0]
	g := net.Forward(numeric.Fx16RB10, in)
	inj := newInjector(net, numeric.Fx16RB10, nil)

	corrupted := layerInput(g, 0).Clone()
	corrupted.Data[30] = numeric.Fx16RB10.FlipBit(corrupted.Data[30], 14)
	faulty := inj.net.ForwardFromInput(numeric.Fx16RB10, g, 0, corrupted)
	diff := tensor.BitwiseMismatch(g.Acts[0], faulty.Acts[0])
	if diff < 2 {
		t.Errorf("GB fault affected %d conv outputs, want >= 2 (reuse)", diff)
	}
}

func TestImgRegFaultConfinedToRow(t *testing.T) {
	// An Img REG fault corrupts at most one output row of one channel of
	// the faulted conv layer.
	net := buildSmall()
	in := smallInputs(1)[0]
	dt := numeric.Fx16RB10
	g := net.Forward(dt, in)
	conv := net.Layers[0].(*layers.ConvLayer)
	act := g.Acts[0].Clone()
	inj := newInjector(net, dt, nil)
	corrupt := dt.FlipBit(in.At(0, 3, 3), 14)
	inj.recomputeRow(conv, in, act, 2, 3, 0, 3, 3, corrupt)

	os := act.Shape
	for c := 0; c < os.C; c++ {
		for h := 0; h < os.H; h++ {
			for w := 0; w < os.W; w++ {
				same := act.At(c, h, w) == g.Acts[0].At(c, h, w)
				if (c != 2 || h != 3) && !same {
					t.Fatalf("Img REG fault leaked to output (%d,%d,%d)", c, h, w)
				}
			}
		}
	}
}

func TestPSumRegSingleUpset(t *testing.T) {
	// PSum REG faults corrupt exactly one output element of the faulted
	// layer (single accumulation consumption).
	net := buildSmall()
	dt := numeric.Fx16RB10
	g := net.Forward(dt, smallInputs(1)[0])
	f := &layers.Fault{OutputIndex: 5, MACStep: 2, Target: layers.TargetAccum, Bit: 13}
	faulty := net.ForwardFrom(dt, g, 0, f)
	if diff := tensor.BitwiseMismatch(g.Acts[0], faulty.Acts[0]); diff > 1 {
		t.Errorf("PSum fault corrupted %d elements of the faulted layer, want <= 1", diff)
	}
}

func TestBufferFaultsCauseSomeSDCs(t *testing.T) {
	// With the small network and 16b_rb10, buffer faults must produce a
	// nonzero SDC-1 rate (high reuse, shallow net — the ConvNet row of
	// Table 8 is ~66-71%).
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	r := c.Run(FilterSRAM, Options{N: 150, Seed: 21})
	if r.Counts.Hits[sdc.SDC1] == 0 {
		t.Error("no SDC-1 from 150 Filter SRAM faults in a shallow network")
	}
}

func TestResidencyWeightsRouteLayers(t *testing.T) {
	// With all residency on the FC layer, Filter SRAM faults never hit the
	// conv layer: every injection corrupts exactly one FC output (weight
	// used once), so the faulted-layer spread stays minimal.
	c := &Campaign{
		Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1),
		Residency: []float64{0, 1}, // conv1, fc2
	}
	r := c.Run(PSumReg, Options{N: 50, Seed: 31})
	if r.Counts.Trials != 50 {
		t.Fatalf("trials = %d", r.Counts.Trials)
	}
	// And an invalid weight vector is rejected.
	bad := &Campaign{
		Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1),
		Residency: []float64{1}, // wrong length
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched residency length did not panic")
		}
	}()
	bad.Run(PSumReg, Options{N: 1, Seed: 1, Workers: 1})
}

// TestFilterSRAMQuantInvalidation verifies the per-layer quantized-weight
// cache stays coherent across the mutate/forward/restore cycle of a Filter
// SRAM injection: a warmed cache must serve the flipped weight during the
// faulty pass and the original weight afterwards, bit-identical to a
// cache-less network.
func TestFilterSRAMQuantInvalidation(t *testing.T) {
	dt := numeric.Fx16RB10
	in := smallInputs(1)[0]

	cached := buildSmall()
	cached.EnableQuantCache()
	plain := buildSmall()

	// Warm the cache with a golden pass.
	cg := cached.Forward(dt, in)
	pg := plain.Forward(dt, in)

	mutate := func(n *network.Network) func() {
		conv := n.Layers[0].(*layers.ConvLayer)
		orig := conv.Weights[3]
		conv.Weights[3] = dt.FlipBit(orig, 12)
		return func() { conv.Weights[3] = orig }
	}

	restore := mutate(cached)
	cached.InvalidateLayerQuant(cached.Layers[0])
	cf := cached.ForwardFromInput(dt, cg, 0, in)
	restore()
	cached.InvalidateLayerQuant(cached.Layers[0])

	restoreP := mutate(plain)
	pf := plain.ForwardFromInput(dt, pg, 0, in)
	restoreP()

	for li := range cf.Acts {
		for e := range cf.Acts[li].Data {
			if math.Float64bits(cf.Acts[li].Data[e]) != math.Float64bits(pf.Acts[li].Data[e]) {
				t.Fatalf("faulty pass diverged at layer %d elem %d: %v vs %v",
					li, e, cf.Acts[li].Data[e], pf.Acts[li].Data[e])
			}
		}
	}

	// After restore + invalidate the cached network must again match the
	// original golden execution bit-for-bit.
	cg2 := cached.Forward(dt, in)
	for li := range cg2.Acts {
		for e := range cg2.Acts[li].Data {
			if math.Float64bits(cg2.Acts[li].Data[e]) != math.Float64bits(cg.Acts[li].Data[e]) {
				t.Fatalf("post-restore golden diverged at layer %d elem %d", li, e)
			}
		}
	}
}

// TestBufferCampaignsDeterministicWithCache pins the seeded determinism of
// every buffer class now that workers run through the quantized-parameter
// cache.
func TestBufferCampaignsDeterministicWithCache(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	for _, b := range Buffers {
		r1 := c.Run(b, Options{N: 40, Seed: 9, Workers: 2})
		r2 := c.Run(b, Options{N: 40, Seed: 9, Workers: 2})
		if r1.Counts != r2.Counts {
			t.Errorf("%v: counts diverged across identical runs: %+v vs %+v", b, r1.Counts, r2.Counts)
		}
	}
}

// TestRunShardMergeMatchesRun requires the shard-order merge of RunShard
// partials to equal Run with Workers equal to the shard count — the same
// determinism contract the datapath engine's faultinj.RunShard carries,
// extended to buffer campaigns so a distributed service can shard them
// identically.
func TestRunShardMergeMatchesRun(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	const shards = 4
	opt := Options{N: 103, Seed: 31, Workers: shards}
	for _, b := range Buffers {
		want := c.Run(b, opt)
		parts := make([]*Report, shards)
		for s := 0; s < shards; s++ {
			parts[s] = c.RunShard(s, shards, b, opt)
		}
		got := MergeReports(parts)
		if got.Counts != want.Counts || got.Detection != want.Detection {
			t.Fatalf("%s: sharded merge diverged: %+v vs %+v", b, got, want)
		}
	}
}

// TestRunShardRejectsBadIndices pins the shard-range contract.
func TestRunShardRejectsBadIndices(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1)}
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RunShard(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			c.RunShard(bad[0], bad[1], GlobalBuffer, Options{N: 10, Seed: 1})
		}()
	}
}

// assertBufferReportsBitIdentical compares two buffer-campaign reports
// field by field, including the per-stratum tallies and bit-exact weights.
func assertBufferReportsBitIdentical(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Counts != want.Counts {
		t.Fatalf("%s: counts diverged: %+v vs %+v", label, got.Counts, want.Counts)
	}
	if got.Detection != want.Detection {
		t.Fatalf("%s: detection diverged", label)
	}
	if (got.Strata == nil) != (want.Strata == nil) {
		t.Fatalf("%s: strata presence diverged", label)
	}
	if want.Strata == nil {
		return
	}
	gs, ws := got.Strata, want.Strata
	if gs.Blocks != ws.Blocks || gs.Bits != ws.Bits {
		t.Fatalf("%s: strata dims diverged", label)
	}
	for h := range ws.Counts {
		if math.Float64bits(gs.Weight[h]) != math.Float64bits(ws.Weight[h]) {
			t.Fatalf("%s: stratum %d weight diverged", label, h)
		}
		if gs.Counts[h] != ws.Counts[h] {
			t.Fatalf("%s: stratum %d counts diverged: %+v vs %+v", label, h, gs.Counts[h], ws.Counts[h])
		}
	}
}

// TestStratifiedBufferSmoke runs the stratified design over every buffer
// class: the budget must be spent exactly, the per-stratum tallies must
// partition it, and the design weights must be a probability vector.
func TestStratifiedBufferSmoke(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	const n = 150
	for _, b := range Buffers {
		r := c.Run(b, Options{N: n, Seed: 13, Workers: 3, Sampling: faultinj.SamplingStratified})
		if r.Counts.Trials != n {
			t.Fatalf("%s: trials = %d, want %d", b, r.Counts.Trials, n)
		}
		if r.Strata == nil {
			t.Fatalf("%s: stratified run produced no strata", b)
		}
		total, mass := 0, 0.0
		for h := range r.Strata.Counts {
			total += r.Strata.Counts[h].Trials
			mass += r.Strata.Weight[h]
		}
		if total != n {
			t.Errorf("%s: strata trials sum to %d, want %d", b, total, n)
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("%s: stratum weights sum to %v, want 1", b, mass)
		}
		p, ci := r.SDCEstimate(sdc.SDC1)
		if p < 0 || p > 1 || ci < 0 || ci > 1 || math.IsNaN(p) || math.IsNaN(ci) {
			t.Errorf("%s: SDC estimate %v ±%v malformed", b, p, ci)
		}
	}
}

// TestStratifiedBufferRunShardMergeMatchesRun is the eyeriss half of the
// stratified determinism contract: for S in {1, 2, 7} the shard-order
// merge of stratified RunShard partials must be bit-identical to the solo
// stratified Run, per-stratum tallies included.
func TestStratifiedBufferRunShardMergeMatchesRun(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	for _, b := range []Buffer{GlobalBuffer, ImgReg} {
		for _, shards := range []int{1, 2, 7} {
			opt := Options{N: 97, Seed: 19, Workers: shards, Sampling: faultinj.SamplingStratified}
			want := c.Run(b, opt)
			parts := make([]*Report, shards)
			for s := 0; s < shards; s++ {
				parts[s] = c.RunShard(s, shards, b, opt)
			}
			got := MergeReports(parts)
			assertBufferReportsBitIdentical(t, fmt.Sprintf("%s/S=%d", b, shards), got, want)
		}
	}
}

// TestStratifiedBufferPhaseShardsMatchRun drives the PilotShard/MainShard
// split the distributed coordinator uses and checks the paired slot merge
// reproduces solo Run bit-for-bit.
func TestStratifiedBufferPhaseShardsMatchRun(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	const shards = 3
	opt := Options{N: 101, Seed: 23, Workers: shards, Sampling: faultinj.SamplingStratified}
	want := c.Run(FilterSRAM, opt)

	pilots := make([]*Report, shards)
	for s := 0; s < shards; s++ {
		pilots[s] = c.PilotShard(s, shards, FilterSRAM, opt)
	}
	_, mainN := faultinj.PilotBudget(opt.N, opt.PilotN)
	table := faultinj.BuildStratumTable(MergeReports(pilots).Strata, mainN)
	got := &Report{}
	for s := 0; s < shards; s++ {
		pair := &Report{}
		pair.Merge(pilots[s])
		pair.Merge(c.MainShard(s, shards, FilterSRAM, table, opt))
		got.Merge(pair)
	}
	assertBufferReportsBitIdentical(t, "phase-sharded", got, want)
}

// TestStratifiedBufferEstimateAgreesWithUniform checks the reweighting on
// a buffer campaign: the stratified Horvitz-Thompson SDC-1 estimate of the
// Global Buffer campaign must agree with the uniform estimate within the
// pooled 99% interval.
func TestStratifiedBufferEstimateAgreesWithUniform(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	const n = 1200
	uni := c.Run(GlobalBuffer, Options{N: n, Seed: 29, Workers: 4})
	str := c.Run(GlobalBuffer, Options{N: n, Seed: 29, Workers: 4, Sampling: faultinj.SamplingStratified})
	pu, ciu := uni.SDCEstimate(sdc.SDC1)
	ps, cis := str.SDCEstimate(sdc.SDC1)
	const z95, z99 = 1.959963984540054, 2.5758293035489004
	seu, ses := ciu/z95, cis/z95
	bound := z99*math.Sqrt(seu*seu+ses*ses) + 1e-9
	if diff := math.Abs(pu - ps); diff > bound {
		t.Errorf("stratified SDC-1 %.4f vs uniform %.4f differ by %.4f, pooled 99%% bound %.4f",
			ps, pu, diff, bound)
	}
}
