package eyeriss

import (
	"strings"
	"testing"

	"repro/internal/models"
)

func TestReuseSmallNetwork(t *testing.T) {
	net := buildSmall() // conv1: 1->4, k3, pad 1 on 8x8; fc2: 64->8
	stats := Reuse(net)
	if len(stats) != 2 {
		t.Fatalf("stats = %d entries", len(stats))
	}
	conv := stats[0]
	if conv.Name != "conv1" {
		t.Fatalf("first entry %q", conv.Name)
	}
	// Weight reuse: one read per ofmap position (8x8 = 64).
	if conv.WeightReads != 64 {
		t.Errorf("conv WeightReads = %d, want 64", conv.WeightReads)
	}
	// Image reuse: OutC * KH * KW = 4*3*3 = 36 for interior pixels.
	if conv.ImageReads != 36 {
		t.Errorf("conv ImageReads = %d, want 36", conv.ImageReads)
	}
	// Output reuse: chain length = InC*KH*KW = 9.
	if conv.OutputAccumulations != 9 {
		t.Errorf("conv OutputAccumulations = %d, want 9", conv.OutputAccumulations)
	}

	fc := stats[1]
	if fc.WeightReads != 1 {
		t.Errorf("fc WeightReads = %d, want 1 (no weight reuse in FC)", fc.WeightReads)
	}
	if fc.ImageReads != 8 {
		t.Errorf("fc ImageReads = %d, want 8", fc.ImageReads)
	}
	if fc.OutputAccumulations != 64 {
		t.Errorf("fc OutputAccumulations = %d, want 64", fc.OutputAccumulations)
	}
}

func TestReuseExplainsBufferVulnerability(t *testing.T) {
	// The reuse factors of the real models must be large — the Table 8
	// premise that one buffer upset is consumed many times.
	for _, name := range models.Names {
		stats := Reuse(models.Build(name))
		conv0 := stats[0]
		if conv0.WeightReads < 100 {
			t.Errorf("%s conv1 weight reuse = %d, expected hundreds", name, conv0.WeightReads)
		}
	}
}

func TestFormatReuse(t *testing.T) {
	out := FormatReuse(Reuse(buildSmall()))
	if !strings.Contains(out, "conv1") || !strings.Contains(out, "WeightReads") {
		t.Errorf("FormatReuse output:\n%s", out)
	}
}
