// Site-draw evaluation for buffer campaigns: instead of drawing an
// independent (site, bit) pair per injection, a site-mode campaign draws
// one buffer site per DType.Width() injections and evaluates every bit
// position of the stored word at that site. For the reuse-window buffers
// (Global Buffer, Filter SRAM, Img REG) a flipped word corrupts many MACs,
// so every bit is replayed through the class's usual injection model and
// the two site modes run literally the same code. PSum REG faults are
// single accumulator upsets — the datapath case — so EvalSiteBitPlane
// evaluates all bits of a PSum site in one bit-parallel chain replay
// (layers.PlaneForwarder) behind the analytical ReLU sign-domain
// pre-screen, while EvalSiteScalar replays the chain once per bit as the
// bit-identity oracle.
package eyeriss

import (
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/sdc"
)

// runShardPhaseSites is runShardPhase for the site-draw evaluation modes:
// the phase's N injections are covered by engine.DrawUnits(N, SiteBits)
// site draws, the shard strides over draw units, and each unit expands
// into nbits injections tallied in ascending bit order. Site draws consume
// the unit's PRNG values once — per-bit evaluation is deterministic — so
// the scalar and bit-plane modes share one draw sequence.
func (c *Campaign) runShardPhaseSites(shard, of int, b Buffer, opt Options, ph engine.Phase) *Report {
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*7_654_321 + ph.SeedSalt))
	net := c.Build()
	net.EnableQuantCache()
	goldens := make(map[int]*network.Execution)
	golden := func(i int) *network.Execution {
		g, ok := goldens[i]
		if !ok {
			g = net.Forward(c.DType, c.Inputs[i])
			goldens[i] = g
		}
		return g
	}

	inj := newInjector(net, c.DType, c.Residency)
	width := c.DType.Width()
	r := &Report{}
	if ph.Strata {
		r.Strata = engine.NewStrata(len(inj.macLayers), width, inj.stratumWeights(b, width), false)
	}
	units := engine.DrawUnits(ph.N, ph.SiteBits)
	for u := shard; u < units; u += of {
		nbits := ph.SiteBits
		if rem := ph.N - u*ph.SiteBits; rem < nbits {
			nbits = rem
		}
		g := golden((ph.InputBase + u) % len(c.Inputs))
		pos := -1
		if ph.Table != nil {
			pos, _ = ph.Table.Stratum(u)
		}
		c.runSiteUnit(rng, inj, b, opt, g, pos, nbits, r)
	}
	return r
}

// tallySite folds one injection outcome of a site unit into the report —
// the same tally sequence as the per-bit path. faulty is nil only for
// analytically pre-screened injections, which exist only when no detector
// is configured.
func (c *Campaign) tallySite(r *Report, opt Options, g *network.Execution, pos, bit int, outcome sdc.Outcome, faulty *network.Execution) {
	r.Counts.Add(outcome)
	if r.Strata != nil {
		r.Strata.Counts[pos*c.DType.Width()+bit].Add(outcome)
	}
	if opt.Detector != nil {
		r.Detection.Tally(outcome.Hit[sdc.SDC1], opt.Detector(faulty))
	}
}

// runSiteUnit draws one buffer site (without a bit) and evaluates every
// bit position of the word at that site. pos forces the MAC-layer stratum
// (the main phase of a stratified campaign); pos < 0 draws it exactly as
// the class's uniform model does.
func (c *Campaign) runSiteUnit(rng *rand.Rand, inj *injector, b Buffer, opt Options, g *network.Execution, pos, nbits int, r *Report) {
	net := inj.net
	dt := c.DType
	switch b {
	case GlobalBuffer:
		if pos < 0 {
			pos = inj.pickLayerPos(rng)
		}
		li := inj.macLayers[pos]
		in := layerInput(g, li).Clone()
		e := rng.Intn(len(in.Data))
		orig := in.Data[e]
		for bit := 0; bit < nbits; bit++ {
			in.Data[e] = dt.FlipBit(orig, bit)
			faulty := net.ForwardFromInput(dt, g, li, in)
			c.tallySite(r, opt, g, pos, bit, sdc.Classify(net, g, faulty), faulty)
		}
		in.Data[e] = orig

	case FilterSRAM:
		if pos < 0 {
			pos = inj.pickLayerPos(rng)
		}
		li := inj.macLayers[pos]
		var wts []float64
		switch l := net.Layers[li].(type) {
		case *layers.ConvLayer:
			wts = l.Weights
		case *layers.FCLayer:
			wts = l.Weights
		default:
			panic("eyeriss: MAC layer without weights")
		}
		wi := rng.Intn(len(wts))
		orig := wts[wi]
		for bit := 0; bit < nbits; bit++ {
			wts[wi] = dt.FlipBit(orig, bit)
			net.InvalidateLayerQuant(net.Layers[li])
			faulty := net.ForwardFromInput(dt, g, li, layerInput(g, li))
			wts[wi] = orig
			net.InvalidateLayerQuant(net.Layers[li])
			c.tallySite(r, opt, g, pos, bit, sdc.Classify(net, g, faulty), faulty)
		}

	case ImgReg:
		if pos < 0 {
			pos = inj.layerPos(inj.convOnly[rng.Intn(len(inj.convOnly))])
		}
		li := inj.macLayers[pos]
		conv, ok := net.Layers[li].(*layers.ConvLayer)
		if !ok {
			panic("eyeriss: Img REG injection into non-CONV layer")
		}
		in := layerInput(g, li)
		os := g.Acts[li].Shape
		ic := rng.Intn(in.Shape.C)
		ih := rng.Intn(in.Shape.H)
		iw := rng.Intn(in.Shape.W)
		oc := rng.Intn(os.C)
		var rows []int
		for oh := 0; oh < os.H; oh++ {
			top := oh*conv.Stride - conv.Pad
			if ih >= top && ih < top+conv.KH {
				rows = append(rows, oh)
			}
		}
		oh := -1
		if len(rows) > 0 {
			oh = rows[rng.Intn(len(rows))]
		}
		for bit := 0; bit < nbits; bit++ {
			act := g.Acts[li].Clone()
			if oh >= 0 {
				corrupt := dt.FlipBit(in.At(ic, ih, iw), bit)
				inj.recomputeRow(conv, in, act, oc, oh, ic, ih, iw, corrupt)
			}
			faulty := net.ForwardWithAct(dt, g, li, act)
			c.tallySite(r, opt, g, pos, bit, sdc.Classify(net, g, faulty), faulty)
		}

	case PSumReg:
		if pos < 0 {
			pos = inj.pickLayerPos(rng)
		}
		li := inj.macLayers[pos]
		var chain, outs int
		switch l := net.Layers[li].(type) {
		case *layers.ConvLayer:
			chain = l.MACChainLen()
			outs = g.Acts[li].Shape.Elems()
		case *layers.FCLayer:
			chain = l.MACChainLen()
			outs = l.Out
		}
		outIdx := rng.Intn(outs)
		macStep := rng.Intn(chain)
		c.runPSumSite(inj, opt, g, pos, li, outIdx, macStep, nbits, r)

	default:
		panic("eyeriss: unknown buffer")
	}
}

// runPSumSite evaluates every bit of one PSum REG site — a single
// accumulator upset, the one buffer class with a single-MAC fault model.
// EvalSiteScalar replays the faulted chain per bit; EvalSiteBitPlane runs
// the analytical pre-screen and one bit-parallel replay for the surviving
// bits, then propagates each through the shared sparse path. The two are
// bit-identical: the plane kernel reproduces every scalar chain value
// exactly, and a pre-screened bit's fault provably never escapes the next
// ReLU (fixed-point accumulation is exact-then-saturate and saturation is
// 1-Lipschitz, so the faulty chain output differs from golden by at most
// 2^(bit−FractionBits); when golden plus that bound is ≤ 0 both outputs
// fall in the clamp domain and the ReLU emits bit-identical zeros).
func (c *Campaign) runPSumSite(inj *injector, opt Options, g *network.Execution, pos, li, outIdx, macStep, nbits int, r *Report) {
	net := inj.net
	dt := c.DType

	if opt.Eval != engine.EvalSiteBitPlane {
		for bit := 0; bit < nbits; bit++ {
			f := &layers.Fault{OutputIndex: outIdx, MACStep: macStep, Target: layers.TargetAccum, Bit: bit}
			faulty := net.ForwardFrom(dt, g, li, f)
			c.tallySite(r, opt, g, pos, bit, sdc.Classify(net, g, faulty), faulty)
		}
		return
	}

	batch := net.NewInjectionBatch(dt, g, li, nbits)
	gv := g.Acts[li].Data[outIdx]
	// maskedOut is the classification every masked injection shares: a
	// masked faulty execution's downstream tensors alias golden, so
	// classifying golden against itself is the same pure computation.
	maskedOut := sdc.Classify(net, g, g)

	// ReLU sign-domain pre-screen (fixed point only; detector campaigns
	// need the real execution, so they skip it).
	var rk uint64
	if opt.Detector == nil && !dt.IsFloat() &&
		li+1 < len(net.Layers) && net.Layers[li+1].Kind() == layers.ReLU {
		for bit := 0; bit < nbits; bit++ {
			if gv+dt.FxFlipMagnitude(bit) <= 0 {
				rk |= uint64(1) << uint(bit)
			}
		}
	}

	full := ^uint64(0)
	if nbits < 64 {
		full = uint64(1)<<uint(nbits) - 1
	}
	live := full &^ rk
	var vals [64]float64
	if live != 0 {
		pf := layers.PlaneFault{OutputIndex: outIdx, MACStep: macStep, Target: layers.TargetAccum, Bits: live}
		if gg := batch.ForwardPlane(&pf, &vals); math.Float64bits(gg) != math.Float64bits(gv) {
			panic("eyeriss: plane replay diverged from the golden execution")
		}
	}

	for bit := 0; bit < nbits; bit++ {
		if rk&(uint64(1)<<uint(bit)) != 0 {
			r.PreMasked++
			c.tallySite(r, opt, g, pos, bit, maskedOut, nil)
			continue
		}
		fv := vals[bit]
		if opt.Detector != nil {
			faulty := batch.Propagate(outIdx, fv)
			c.tallySite(r, opt, g, pos, bit, sdc.Classify(net, g, faulty), faulty)
			continue
		}
		exec, masked := batch.PropagateShared(outIdx, fv)
		outcome := maskedOut
		if !masked {
			outcome = sdc.Classify(net, g, exec)
		}
		c.tallySite(r, opt, g, pos, bit, outcome, exec)
	}
}
