package eyeriss

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/numeric"
)

// stripPre returns a shallow copy with the PreMasked diagnostic zeroed —
// the one field the bit-plane mode is allowed to differ from the scalar
// oracle in (the scalar mode simulates what the pre-screen proves).
func stripPre(r *Report) *Report {
	cp := *r
	cp.PreMasked = 0
	return &cp
}

// TestPSumSiteBitPlaneMatchesSiteScalar is the buffer-surface half of the
// site-mode exactness property: for every numeric format and both sampling
// designs, a PSum REG campaign under EvalSiteBitPlane — one bit-parallel
// chain replay per site plus the analytical ReLU pre-screen — must produce
// a report bit-identical to EvalSiteScalar's per-bit chain replays.
func TestPSumSiteBitPlaneMatchesSiteScalar(t *testing.T) {
	c := &Campaign{Build: buildSmall, Inputs: smallInputs(3)}
	preFx := 0
	for _, dt := range numeric.Types {
		c.DType = dt
		for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
			opt := Options{N: 2*dt.Width() + 5, Seed: 977, Workers: 2, Sampling: sampling}
			opt.Eval = engine.EvalSiteScalar
			ref := c.Run(PSumReg, opt)
			opt.Eval = engine.EvalSiteBitPlane
			got := c.Run(PSumReg, opt)
			if ref.PreMasked != 0 {
				t.Errorf("%s/%v: scalar mode pre-masked %d injections", dt, sampling, ref.PreMasked)
			}
			if !reflect.DeepEqual(stripPre(got), stripPre(ref)) {
				t.Errorf("%s/%v: bit-plane report diverged from scalar:\n got %+v\nwant %+v",
					dt, sampling, got, ref)
			}
			if !dt.IsFloat() {
				preFx += got.PreMasked
			}
			t.Logf("%s/%v: pre-masked %d of %d", dt, sampling, got.PreMasked, opt.N)
		}
	}
	if preFx == 0 {
		t.Error("analytical pre-screen never fired on any fixed-point format")
	}
}

// TestBufferSiteModesAllClasses runs both site modes over every buffer
// class on the Table 8 format: the reuse-window classes replay per bit in
// both modes (identical code, identical draws), and PSum REG crosses the
// plane/scalar boundary — all four must agree bit-for-bit.
func TestBufferSiteModesAllClasses(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2)}
	for _, b := range Buffers {
		for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
			opt := Options{N: 37, Seed: 41, Workers: 2, Sampling: sampling}
			opt.Eval = engine.EvalSiteScalar
			ref := c.Run(b, opt)
			opt.Eval = engine.EvalSiteBitPlane
			got := c.Run(b, opt)
			if !reflect.DeepEqual(stripPre(got), stripPre(ref)) {
				t.Errorf("%v/%v: site modes diverged:\n got %+v\nwant %+v", b, sampling, got, ref)
			}
			if b != PSumReg && got.PreMasked != 0 {
				t.Errorf("%v: pre-screen fired on a reuse-window buffer (%d)", b, got.PreMasked)
			}
		}
	}
}

// TestBufferSiteModesShardMergeMatchesRun pins the distributed contract in
// the site modes: the shard-order merge of RunShard(s, S) for S in
// {1, 2, 7} must be bit-identical to Run — including the PreMasked tally —
// for both site modes and both sampling designs.
func TestBufferSiteModesShardMergeMatchesRun(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(3)}
	for _, b := range []Buffer{PSumReg, ImgReg} {
		for _, eval := range []engine.EvalMode{engine.EvalSiteScalar, engine.EvalSiteBitPlane} {
			for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
				for _, shards := range []int{1, 2, 7} {
					opt := Options{N: 128, Seed: 7, Workers: shards, Sampling: sampling, Eval: eval}
					want := c.Run(b, opt)
					parts := make([]*Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, b, opt)
					}
					got := MergeReports(parts)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%v/%v/%v shards=%d: merged shards diverged from Run:\n got %+v\nwant %+v",
							b, eval, sampling, shards, got, want)
					}
				}
			}
		}
	}
}

// TestBufferSiteModesWithDetector checks the detector gating: with a
// detector configured the pre-screen must stay off (detectors read the
// faulty execution) and the two site modes must still agree bit-for-bit,
// Detection tallies included.
func TestBufferSiteModesWithDetector(t *testing.T) {
	det := func(f *network.Execution) bool {
		last := f.Acts[len(f.Acts)-1]
		return last.Data[0] > 0.12
	}
	c := &Campaign{Build: buildSmall, Inputs: smallInputs(2)}
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		c.DType = dt
		opt := Options{N: dt.Width() + 9, Seed: 19, Workers: 2, Detector: det}
		opt.Eval = engine.EvalSiteScalar
		ref := c.Run(PSumReg, opt)
		opt.Eval = engine.EvalSiteBitPlane
		got := c.Run(PSumReg, opt)
		if got.PreMasked != 0 {
			t.Errorf("%s: pre-screen fired under a detector campaign (%d)", dt, got.PreMasked)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: detector site modes diverged:\n got %+v\nwant %+v", dt, got, ref)
		}
		if ref.Detection.Total == 0 {
			t.Errorf("%s: detector never tallied", dt)
		}
	}
}
