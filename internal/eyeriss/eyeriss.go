// Package eyeriss models the buffer hierarchy of the Eyeriss accelerator
// (Chen et al., ISCA'16) as the paper's §5.2 case study: the shared Global
// Buffer plus the per-PE Filter SRAM, Img REG and PSum REG that implement
// Eyeriss's row-stationary dataflow and its three data reuses (weight,
// image and output reuse, Table 1).
//
// The crucial difference from datapath faults is reuse: a flipped bit in a
// buffer is read many times before it is evicted, so one upset spreads to
// many MACs (§2.2). Each buffer's injection model reproduces its reuse
// window:
//
//	Global Buffer — holds a whole layer's ifmap for the layer's duration;
//	                a fault corrupts one ifmap word for every consumer.
//	Filter SRAM  — caches filter weights reused across the entire fmap;
//	                a fault corrupts one weight for the whole layer.
//	Img REG      — caches one ifmap row; a fault corrupts one ifmap word
//	                for the single output row computed from that register.
//	PSum REG     — holds one partial sum consumed by the next accumulate;
//	                a fault is a single accumulator upset.
package eyeriss

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/engine"
	"repro/internal/fit"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Params are the microarchitectural parameters of Table 7.
type Params struct {
	// FeatureSize labels the process node.
	FeatureSize string
	// NumPEs is the processing-engine count.
	NumPEs int
	// Sizes are in kilobytes (1024 bytes), as published.
	GlobalBufferKB float64
	FilterSRAMKB   float64 // per PE
	ImgRegKB       float64 // per PE
	PSumRegKB      float64 // per PE
}

// Params65nm is the original Eyeriss design point (Table 7).
var Params65nm = Params{
	FeatureSize:    "65nm",
	NumPEs:         168,
	GlobalBufferKB: 98,
	FilterSRAMKB:   0.344,
	ImgRegKB:       0.02,
	PSumRegKB:      0.05,
}

// Params16nm is the paper's 16 nm projection (Table 7): PE count and
// buffer sizes scaled by 8 across the four technology generations between
// 65 nm and 16 nm.
var Params16nm = Params{
	FeatureSize:    "16nm",
	NumPEs:         1344,
	GlobalBufferKB: 784,
	FilterSRAMKB:   3.52,
	ImgRegKB:       0.19,
	PSumRegKB:      0.38,
}

// Scale projects parameters by a per-generation factor over the given
// number of technology generations, as §5.2 does (factor 2, 4 generations
// between 65 nm and 16 nm would be the naive reading; the published table
// uses an overall factor of 8 for both the PE count and the buffer sizes).
func Scale(p Params, factor float64, label string) Params {
	return Params{
		FeatureSize:    label,
		NumPEs:         int(float64(p.NumPEs) * factor),
		GlobalBufferKB: p.GlobalBufferKB * factor,
		FilterSRAMKB:   p.FilterSRAMKB * factor,
		ImgRegKB:       p.ImgRegKB * factor,
		PSumRegKB:      p.PSumRegKB * factor,
	}
}

// Buffer identifies one buffer class of the hierarchy.
type Buffer int

const (
	// GlobalBuffer is the shared on-chip SRAM holding fmaps between layers.
	GlobalBuffer Buffer = iota
	// FilterSRAM is the per-PE weight scratchpad (weight reuse).
	FilterSRAM
	// ImgReg is the per-PE image row register (image reuse).
	ImgReg
	// PSumReg is the per-PE partial-sum register (output reuse).
	PSumReg

	// NumBuffers is the number of buffer classes.
	NumBuffers
)

// Buffers lists the classes in Table 8 order.
var Buffers = []Buffer{GlobalBuffer, FilterSRAM, ImgReg, PSumReg}

// String names the buffer as in Table 8.
func (b Buffer) String() string {
	switch b {
	case GlobalBuffer:
		return "Global Buffer"
	case FilterSRAM:
		return "Filter SRAM"
	case ImgReg:
		return "Img REG"
	case PSumReg:
		return "PSum REG"
	}
	return fmt.Sprintf("eyeriss.Buffer(%d)", int(b))
}

// ComponentBits returns the Eq. 1 size term for a buffer class. Working
// the published Table 8 numbers backwards (FIT / SDC / Rraw) shows the
// paper sized the per-PE structures as 168 units of the 16 nm per-unit
// capacity; we match that arithmetic so the FIT columns are comparable.
func (p Params) ComponentBits(b Buffer) int64 {
	const bitsPerKB = 8 * 1024
	perPE := func(kb float64) int64 {
		return int64(kb*bitsPerKB) * int64(fitUnits)
	}
	switch b {
	case GlobalBuffer:
		return int64(p.GlobalBufferKB * bitsPerKB)
	case FilterSRAM:
		return perPE(p.FilterSRAMKB)
	case ImgReg:
		return perPE(p.ImgRegKB)
	case PSumReg:
		return perPE(p.PSumRegKB)
	}
	panic("eyeriss: unknown buffer")
}

// fitUnits is the per-PE unit count entering the FIT size term (see
// ComponentBits).
const fitUnits = 168

// Datapath returns the canonical datapath latch plane of this design
// point for the given format.
func (p Params) Datapath(dt numeric.Type) accel.Datapath {
	return accel.Datapath{NumPEs: p.NumPEs, DType: dt}
}

// Report aggregates a buffer-fault campaign.
type Report struct {
	Counts sdc.Counts
	// Detection tallies the optional symptom detector (§6.2).
	Detection engine.Detection
	// PreMasked counts injections the bit-plane site mode's analytical
	// pre-screen proved masked without any replay (PSum REG sites whose
	// accumulator perturbation provably dies in the next ReLU's clamp
	// domain). Those injections are still tallied in Counts (and Strata) as
	// masked outcomes; this is a diagnostic breakdown, zero outside
	// EvalSiteBitPlane.
	PreMasked int `json:",omitempty"`
	// Strata carries the per-(MAC layer, bit) tallies and population
	// weights of a stratified campaign; nil for uniform campaigns. When
	// present, Counts is a sample tally under the stratified design and
	// SDCEstimate applies the reweighting that recovers the unbiased
	// uniform-design estimate.
	Strata *engine.StrataSummary `json:",omitempty"`
}

// Merge folds r2 into r. Both fields merge commutatively, but distributed
// campaigns merge shard reports in shard order anyway, mirroring the
// datapath engine's contract.
func (r *Report) Merge(r2 *Report) {
	r.Counts.Merge(r2.Counts)
	r.Detection.Merge(r2.Detection)
	r.PreMasked += r2.PreMasked
	if r2.Strata != nil {
		if r.Strata == nil {
			r.Strata = r2.Strata.Clone()
		} else {
			r.Strata.Merge(r2.Strata)
		}
	}
}

// SDCEstimate returns the campaign's estimate of the uniform-design SDC
// probability for criterion k with its 95% CI half-width — the reweighted
// stratified estimator when the campaign stratified, the raw pooled
// proportion otherwise.
func (r *Report) SDCEstimate(k sdc.Kind) (p, ci95 float64) {
	if r.Strata != nil {
		e := r.Strata.Estimate(k)
		return e.P(), e.CI95()
	}
	pr := stats.Proportion{Successes: r.Counts.Hits[k], Trials: r.Counts.DefinedTrials[k]}
	return pr.P(), pr.CI95()
}

// MergeReports folds per-shard reports — indexed and merged in shard
// order — into one campaign report. Nil entries (skipped shards) are
// ignored; the result is nil when every entry is nil.
func MergeReports(rs []*Report) *Report {
	var total *Report
	for _, r := range rs {
		if r == nil {
			continue
		}
		if total == nil {
			total = &Report{}
		}
		total.Merge(r)
	}
	return total
}

// Options configures a buffer campaign.
type Options struct {
	// N is the number of injections.
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Workers caps parallelism; NumCPU when zero.
	Workers int
	// Detector, when non-nil, is evaluated on every faulty execution for
	// the §6.2 precision/recall tally. It must be safe for concurrent use.
	Detector func(*network.Execution) bool
	// Sampling selects uniform (default) or the two-phase stratified
	// campaign of the shared engine (internal/engine); strata are keyed by
	// (MAC layer, flipped bit) with weights from the buffer's residency
	// model.
	Sampling engine.SamplingMode
	// PilotN is the stratified pilot budget; engine.DefaultPilotN(N) when
	// zero, negative for a pilot-free prior-allocated campaign (Prior).
	PilotN int
	// Prior, when non-nil, seeds a stratified campaign's Neyman allocation
	// from a previous campaign's persisted strata instead of running a
	// pilot; the prior must come from a campaign over the same network,
	// format and buffer class.
	Prior *engine.StrataSummary
	// OnPilotStrata, when non-nil, observes the merged pilot strata of a
	// stratified Run right after the allocation table is built.
	OnPilotStrata func(*engine.StrataSummary)
	// Eval selects the evaluation design. The default (engine.EvalPerBit)
	// draws an independent (site, bit) pair per injection — the paper's
	// design. The site-draw modes (engine.EvalSiteScalar and
	// engine.EvalSiteBitPlane) draw one buffer site per DType.Width()
	// injections and evaluate every bit position of the word at that site;
	// the two site modes share one PRNG stream and produce bit-identical
	// reports, with EvalSiteBitPlane evaluating PSum REG sites through a
	// single bit-parallel chain replay plus the analytical masking
	// pre-screen (the other buffer classes corrupt whole reuse windows, so
	// their site modes replay per bit either way).
	Eval engine.EvalMode
	// MBU is the multi-bit-upset width: every injection flips MBU
	// adjacent bits of the struck buffer word. 0 and 1 both mean
	// single-bit upsets. Requires the per-bit evaluation mode; the base
	// bit is drawn uniformly over the Width()−MBU+1 in-word spans.
	MBU int
}

// mbu resolves the upset width (≥ 1).
func (opt Options) mbu() int {
	if opt.MBU <= 1 {
		return 1
	}
	return opt.MBU
}

// engineOptions maps the surface options onto the shared engine's
// orchestration options; width is the campaign word width, which becomes
// the draw-unit size of the site-draw evaluation modes.
func (opt Options) engineOptions(width int) engine.Options {
	if opt.MBU > width {
		panic(fmt.Sprintf("eyeriss: MBU width %d exceeds the %d-bit word", opt.MBU, width))
	}
	eo := engine.Options{
		N: opt.N, Workers: opt.Workers,
		Sampling: opt.Sampling, PilotN: opt.PilotN,
		Prior: opt.Prior, OnPilot: opt.OnPilotStrata,
	}
	switch opt.Eval {
	case engine.EvalPerBit:
	case engine.EvalSiteScalar, engine.EvalSiteBitPlane:
		if opt.mbu() > 1 {
			panic("eyeriss: MBU campaigns require the per-bit evaluation mode")
		}
		eo.SiteBits = width
	default:
		panic(fmt.Sprintf("eyeriss: unknown eval mode %q", opt.Eval))
	}
	return eo
}

// Campaign injects buffer faults into a network. Build must return a fresh
// network instance (each worker mutates its own copy's weights for Filter
// SRAM faults).
type Campaign struct {
	// Build constructs the network; it must be deterministic.
	Build func() *network.Network
	// DType is the stored word format (Eyeriss uses a 16-bit fixed-point
	// datapath, so Table 8 uses 16b_rb10).
	DType numeric.Type
	// Inputs are the inference inputs to cycle through.
	Inputs []*tensor.Tensor
	// Residency, when non-nil, gives per-MAC-layer probabilities for
	// where a random-in-time upset lands (e.g. the cycle weights of the
	// rowstat scheduler). When nil, layers are weighted by MAC count.
	Residency []float64
}

// surface adapts a (campaign, buffer class) pair to the shared engine's
// Surface interface: the engine owns all shard fan-out, phase sequencing,
// allocation-table construction and the canonical merge association, and
// calls back here for report algebra and per-injection execution.
type surface struct {
	c   *Campaign
	b   Buffer
	opt Options
}

func (s surface) NewReport() *Report                     { return &Report{} }
func (s surface) Merge(dst, src *Report)                 { dst.Merge(src) }
func (s surface) Strata(r *Report) *engine.StrataSummary { return r.Strata }
func (s surface) RunPhase(shard, of int, ph engine.Phase) *Report {
	return s.c.runShardPhase(shard, of, s.b, s.opt, ph)
}

// Surface exposes the (campaign, buffer class) engine adapter and the
// engine options it runs under, for the cross-surface conformance suite
// (engine.CheckSurface).
func (c *Campaign) Surface(b Buffer, opt Options) (engine.Surface[*Report], engine.Options) {
	c.validate()
	return surface{c, b, opt}, opt.engineOptions(c.DType.Width())
}

// Run injects opt.N faults into buffer class b and tallies SDC outcomes.
// It is exactly the shard-order merge of RunShard(s, S, b, opt) for s in
// [0, S) with S = engine.EffectiveShards(opt.Workers, opt.N), with the
// shards running on goroutines — the reference a distributed run of the
// same S shards is bit-identical to.
func (c *Campaign) Run(b Buffer, opt Options) *Report {
	c.validate()
	return engine.Run[*Report](surface{c, b, opt}, opt.engineOptions(c.DType.Width()))
}

// RunShard runs one shard of an of-way deterministic partition of the
// buffer campaign, serially, and returns its partial report — the same
// strided-partition contract as faultinj.Campaign.RunShard, which is what
// lets buffer campaigns execute on the distributed campaign service.
// Shard s covers injections s, s+of, s+2·of, … of the N-injection
// campaign, drawn from a PRNG stream seeded by (opt.Seed, s), so every
// injection belongs to exactly one shard; each shard builds its own
// network instance, so shards can execute anywhere — goroutines,
// processes, machines — and the shard-order merge (MergeReports) is
// bit-identical to Run with Workers=of.
func (c *Campaign) RunShard(shard, of int, b Buffer, opt Options) *Report {
	c.validate()
	return engine.RunShard[*Report](surface{c, b, opt}, shard, of, opt.engineOptions(c.DType.Width()))
}

// PilotShard runs one shard of a stratified buffer campaign's uniform
// pilot phase (see engine.PilotShard).
func (c *Campaign) PilotShard(shard, of int, b Buffer, opt Options) *Report {
	c.validate()
	return engine.PilotShard[*Report](surface{c, b, opt}, shard, of, opt.engineOptions(c.DType.Width()))
}

// MainShard runs one shard of a stratified buffer campaign's allocated
// main phase (see engine.MainShard).
func (c *Campaign) MainShard(shard, of int, b Buffer, table *engine.StratumTable, opt Options) *Report {
	c.validate()
	return engine.MainShard[*Report](surface{c, b, opt}, shard, of, table, opt.engineOptions(c.DType.Width()))
}

// validate fails fast on a malformed campaign before any shard runs:
// missing inputs, or a residency vector that does not match the network's
// MAC layers.
func (c *Campaign) validate() {
	if len(c.Inputs) == 0 {
		panic("eyeriss: campaign needs at least one input")
	}
	newInjector(c.Build(), c.DType, c.Residency)
}

// runShardPhase executes one phase of one shard (see engine.Phase) — the
// per-injection execution the engine's orchestration calls back into,
// serially, on a private network instance (Filter SRAM injections mutate
// weights in place) with a private PRNG stream.
func (c *Campaign) runShardPhase(shard, of int, b Buffer, opt Options, ph engine.Phase) *Report {
	if ph.SiteBits > 0 {
		return c.runShardPhaseSites(shard, of, b, opt, ph)
	}
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*7_654_321 + ph.SeedSalt))
	net := c.Build()
	// Quantize layer parameters once per worker instead of once per
	// forward pass (bit-identical; see layers.QuantCache). Filter SRAM
	// injections mutate weights in place and invalidate just the faulted
	// layer's entries around each injection.
	net.EnableQuantCache()
	goldens := make(map[int]*network.Execution)
	golden := func(i int) *network.Execution {
		g, ok := goldens[i]
		if !ok {
			g = net.Forward(c.DType, c.Inputs[i])
			goldens[i] = g
		}
		return g
	}

	inj := newInjector(net, c.DType, c.Residency)
	inj.mbu = opt.mbu()
	width := c.DType.Width()
	r := &Report{}
	if ph.Strata {
		r.Strata = engine.NewStrata(len(inj.macLayers), width, inj.stratumWeights(b, width), false)
	}
	for i := shard; i < ph.N; i += of {
		g := golden((ph.InputBase + i) % len(c.Inputs))
		var faulty *network.Execution
		var pos, bit int
		if ph.Table != nil {
			pos, bit = ph.Table.Stratum(i)
			faulty = inj.injectAt(rng, b, g, pos, bit)
		} else {
			faulty, pos, bit = inj.inject(rng, b, g)
		}
		outcome := sdc.Classify(net, g, faulty)
		r.Counts.Add(outcome)
		if r.Strata != nil {
			r.Strata.Counts[pos*width+bit].Add(outcome)
		}
		if opt.Detector != nil {
			r.Detection.Tally(outcome.Hit[sdc.SDC1], opt.Detector(faulty))
		}
	}
	return r
}

// injector holds the per-worker geometry for buffer-fault placement.
type injector struct {
	net *network.Network
	dt  numeric.Type
	// macLayers are the CONV/FC layer indices; cum holds the cumulative
	// residency weights used to select where a random-in-time upset
	// lands (MAC counts by default, scheduler cycle weights when the
	// campaign provides them).
	macLayers []int
	cum       []float64
	convOnly  []int // CONV layers (Img REG faults need row reuse)
	// mbu is the upset width (≥ 1): every injection flips mbu adjacent
	// bits of the struck word, base bit uniform over the in-word spans.
	mbu int
}

func newInjector(net *network.Network, dt numeric.Type, residency []float64) *injector {
	inj := &injector{net: net, dt: dt, mbu: 1}
	var weights []float64
	shape := net.InShape
	for i, l := range net.Layers {
		if m := l.MACs(shape); m > 0 {
			inj.macLayers = append(inj.macLayers, i)
			weights = append(weights, float64(m))
			if l.Kind() == layers.Conv {
				inj.convOnly = append(inj.convOnly, i)
			}
		}
		shape = l.OutShape(shape)
	}
	if len(inj.macLayers) == 0 {
		panic("eyeriss: network has no MAC layers")
	}
	if residency != nil {
		if len(residency) != len(inj.macLayers) {
			panic(fmt.Sprintf("eyeriss: %d residency weights for %d MAC layers",
				len(residency), len(inj.macLayers)))
		}
		weights = residency
	}
	total := 0.0
	inj.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			panic("eyeriss: negative residency weight")
		}
		total += w
		inj.cum[i] = total
	}
	if total <= 0 {
		panic("eyeriss: residency weights sum to zero")
	}
	for i := range inj.cum {
		inj.cum[i] /= total
	}
	return inj
}

// pickLayerPos draws a MAC-layer position by residency weight — the
// probability a random-in-time upset strikes while that layer's data is
// buffered. The position indexes macLayers (and the stratum grid).
func (inj *injector) pickLayerPos(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range inj.cum {
		if u < c {
			return i
		}
	}
	return len(inj.macLayers) - 1
}

// layerPos returns the macLayers position of a network layer index.
func (inj *injector) layerPos(li int) int {
	for i, l := range inj.macLayers {
		if l == li {
			return i
		}
	}
	panic(fmt.Sprintf("eyeriss: layer %d is not a MAC layer", li))
}

// layerProb returns the residency probability of MAC-layer position i.
func (inj *injector) layerProb(i int) float64 {
	if i == 0 {
		return inj.cum[0]
	}
	return inj.cum[i] - inj.cum[i-1]
}

// stratumWeights returns the (MAC layer, base bit) population
// probabilities of buffer class b's uniform injection design — the
// weights that make the stratified estimator unbiased for it. For most
// buffers a layer's probability is its residency weight and base bits are
// uniform over the word's width−mbu+1 in-word spans (the top mbu−1
// base-bit strata carry zero weight under a multi-bit upset); Img REG
// faults only strike CONV layers (row reuse), uniformly, so FC strata
// carry zero weight there and are never allocated injections.
func (inj *injector) stratumWeights(b Buffer, width int) engine.HexFloats {
	validBits := width - inj.mbu + 1
	w := make(engine.HexFloats, len(inj.macLayers)*width)
	if b == ImgReg {
		per := 1 / (float64(len(inj.convOnly)) * float64(validBits))
		for _, li := range inj.convOnly {
			pos := inj.layerPos(li)
			for bit := 0; bit < validBits; bit++ {
				w[pos*width+bit] = per
			}
		}
		return w
	}
	for i := range inj.macLayers {
		wl := inj.layerProb(i) / float64(validBits)
		for bit := 0; bit < validBits; bit++ {
			w[i*width+bit] = wl
		}
	}
	return w
}

// layerInput returns the golden input tensor of a layer.
func layerInput(g *network.Execution, layerIdx int) *tensor.Tensor {
	if layerIdx == 0 {
		return g.Input
	}
	return g.Acts[layerIdx-1]
}

// inject draws a uniform injection for buffer class b and returns the
// faulty execution plus the drawn stratum coordinate (MAC-layer position,
// flipped bit) — what the stratified pilot records. The PRNG consumption
// order of each buffer model is unchanged from the pre-stratification
// engine, so uniform campaigns stay bit-identical across versions.
func (inj *injector) inject(rng *rand.Rand, b Buffer, g *network.Execution) (faulty *network.Execution, pos, bit int) {
	switch b {
	case GlobalBuffer:
		pos = inj.pickLayerPos(rng)
		return inj.injectGlobalBufferAt(rng, g, pos, -1)
	case FilterSRAM:
		pos = inj.pickLayerPos(rng)
		return inj.injectFilterSRAMAt(rng, g, pos, -1)
	case ImgReg:
		pos = inj.layerPos(inj.convOnly[rng.Intn(len(inj.convOnly))])
		return inj.injectImgRegAt(rng, g, pos, -1)
	case PSumReg:
		pos = inj.pickLayerPos(rng)
		return inj.injectPSumRegAt(rng, g, pos, -1)
	}
	panic("eyeriss: unknown buffer")
}

// injectAt places one injection in a forced (MAC-layer position, bit)
// stratum — the main phase of a stratified campaign. Within the stratum
// the site is drawn uniformly, matching the conditional distribution of a
// uniform draw that landed there.
func (inj *injector) injectAt(rng *rand.Rand, b Buffer, g *network.Execution, pos, bit int) *network.Execution {
	var faulty *network.Execution
	switch b {
	case GlobalBuffer:
		faulty, _, _ = inj.injectGlobalBufferAt(rng, g, pos, bit)
	case FilterSRAM:
		faulty, _, _ = inj.injectFilterSRAMAt(rng, g, pos, bit)
	case ImgReg:
		faulty, _, _ = inj.injectImgRegAt(rng, g, pos, bit)
	case PSumReg:
		faulty, _, _ = inj.injectPSumRegAt(rng, g, pos, bit)
	default:
		panic("eyeriss: unknown buffer")
	}
	return faulty
}

// drawBit resolves the flipped base-bit position: forced when bit >= 0
// (stratified main phase, no randomness consumed), drawn uniformly over
// the word's Width()−mbu+1 in-word spans otherwise — in exactly the PRNG
// slot the uniform models always used.
func (inj *injector) drawBit(rng *rand.Rand, bit int) int {
	if bit >= 0 {
		return bit
	}
	return rng.Intn(inj.dt.Width() - inj.mbu + 1)
}

// injectGlobalBufferAt flips one bit span of one word of a layer's
// resident ifmap; every read of that word during the layer sees the
// corruption.
func (inj *injector) injectGlobalBufferAt(rng *rand.Rand, g *network.Execution, pos, bit int) (*network.Execution, int, int) {
	li := inj.macLayers[pos]
	in := layerInput(g, li).Clone()
	e := rng.Intn(len(in.Data))
	bit = inj.drawBit(rng, bit)
	in.Data[e] = inj.dt.FlipBits(in.Data[e], bit, inj.mbu)
	return inj.net.ForwardFromInput(inj.dt, g, li, in), pos, bit
}

// injectFilterSRAMAt flips one bit of one cached weight for the duration
// of the layer (weight reuse spreads it across the whole fmap).
func (inj *injector) injectFilterSRAMAt(rng *rand.Rand, g *network.Execution, pos, bit int) (*network.Execution, int, int) {
	li := inj.macLayers[pos]
	var wts []float64
	switch l := inj.net.Layers[li].(type) {
	case *layers.ConvLayer:
		wts = l.Weights
	case *layers.FCLayer:
		wts = l.Weights
	default:
		panic("eyeriss: MAC layer without weights")
	}
	wi := rng.Intn(len(wts))
	bit = inj.drawBit(rng, bit)
	orig := wts[wi]
	wts[wi] = inj.dt.FlipBits(orig, bit, inj.mbu)
	// The faulted layer's cached quantized weights are stale while the
	// flip is in place; drop just that layer's entries so the forward
	// pass re-quantizes it (and it alone), then again after restoring.
	inj.net.InvalidateLayerQuant(inj.net.Layers[li])
	faulty := inj.net.ForwardFromInput(inj.dt, g, li, layerInput(g, li))
	wts[wi] = orig
	inj.net.InvalidateLayerQuant(inj.net.Layers[li])
	return faulty, pos, bit
}

// injectImgRegAt corrupts one ifmap word for exactly one output row of one
// output channel of a CONV layer — the single-row reuse window of the
// image register. The corrupted row is recomputed directly; everything
// else keeps its golden value.
func (inj *injector) injectImgRegAt(rng *rand.Rand, g *network.Execution, pos, bit int) (*network.Execution, int, int) {
	li := inj.macLayers[pos]
	conv, ok := inj.net.Layers[li].(*layers.ConvLayer)
	if !ok {
		panic(fmt.Sprintf("eyeriss: Img REG injection into non-CONV layer %d", li))
	}
	in := layerInput(g, li)
	act := g.Acts[li].Clone()
	os := act.Shape

	// Choose the corrupted input coordinate and a consuming output row.
	ic := rng.Intn(in.Shape.C)
	ih := rng.Intn(in.Shape.H)
	iw := rng.Intn(in.Shape.W)
	bit = inj.drawBit(rng, bit)
	corrupt := inj.dt.FlipBits(in.At(ic, ih, iw), bit, inj.mbu)
	oc := rng.Intn(os.C)
	// Output rows whose kernel window covers input row ih:
	// oh*Stride - Pad <= ih < oh*Stride - Pad + KH.
	var rows []int
	for oh := 0; oh < os.H; oh++ {
		top := oh*conv.Stride - conv.Pad
		if ih >= top && ih < top+conv.KH {
			rows = append(rows, oh)
		}
	}
	if len(rows) > 0 {
		oh := rows[rng.Intn(len(rows))]
		inj.recomputeRow(conv, in, act, oc, oh, ic, ih, iw, corrupt)
	}
	return inj.net.ForwardWithAct(inj.dt, g, li, act), pos, bit
}

// recomputeRow recomputes output row (oc, oh) of conv with the input value
// at (ic, ih, iw) replaced by corrupt.
func (inj *injector) recomputeRow(conv *layers.ConvLayer, in, act *tensor.Tensor, oc, oh, ic, ih, iw int, corrupt float64) {
	dt := inj.dt
	os := act.Shape
	bias := dt.Quantize(conv.Bias[oc])
	for ow := 0; ow < os.W; ow++ {
		acc := bias
		for c := 0; c < conv.InC; c++ {
			for kh := 0; kh < conv.KH; kh++ {
				y := oh*conv.Stride + kh - conv.Pad
				for kw := 0; kw < conv.KW; kw++ {
					x := ow*conv.Stride + kw - conv.Pad
					var v float64
					if y >= 0 && y < in.Shape.H && x >= 0 && x < in.Shape.W {
						if c == ic && y == ih && x == iw {
							v = corrupt
						} else {
							v = in.At(c, y, x)
						}
					}
					acc = dt.MAC(acc, conv.Weights[conv.WeightIndex(oc, c, kh, kw)], v)
				}
			}
		}
		act.Set(oc, oh, ow, acc)
	}
}

// injectPSumRegAt upsets one partial sum, consumed by the next
// accumulation — equivalent to a single accumulator-latch fault in the
// datapath.
func (inj *injector) injectPSumRegAt(rng *rand.Rand, g *network.Execution, pos, bit int) (*network.Execution, int, int) {
	li := inj.macLayers[pos]
	var chain int
	var outs int
	switch l := inj.net.Layers[li].(type) {
	case *layers.ConvLayer:
		chain = l.MACChainLen()
		outs = g.Acts[li].Shape.Elems()
	case *layers.FCLayer:
		chain = l.MACChainLen()
		outs = l.Out
	}
	f := &layers.Fault{
		OutputIndex: rng.Intn(outs),
		MACStep:     rng.Intn(chain),
		Target:      layers.TargetAccum,
		Width:       inj.mbu,
	}
	f.Bit = inj.drawBit(rng, bit)
	return inj.net.ForwardFrom(inj.dt, g, li, f), pos, f.Bit
}

// FITComponent assembles the Table 8 Eq. 1 term for a buffer class.
func FITComponent(p Params, b Buffer, sdcProb float64) fit.Component {
	return fit.Component{Name: b.String(), Bits: p.ComponentBits(b), SDCProb: sdcProb}
}
