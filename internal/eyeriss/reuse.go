package eyeriss

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/network"
)

// ReuseStats quantifies, per CONV/FC layer, how many times the
// row-stationary dataflow reads each word of the three reused data classes
// (Table 1). These analytic counts explain why buffer faults are so much
// more damaging than datapath faults: a single upset in the Filter SRAM is
// consumed WeightReads times before eviction.
type ReuseStats struct {
	// Layer is the network layer index; Name its instance name.
	Layer int
	Name  string
	// WeightReads is the number of MACs consuming each weight word
	// (weight reuse: every ofmap position of the layer).
	WeightReads int64
	// ImageReads is the number of MACs consuming each ifmap word
	// (image reuse: every filter and kernel offset covering the pixel).
	ImageReads int64
	// OutputAccumulations is the accumulation-chain length of each ofmap
	// word (output reuse: the partial sum is read back once per MAC).
	OutputAccumulations int64
}

// Reuse computes the per-layer reuse factors of a network.
func Reuse(net *network.Network) []ReuseStats {
	var stats []ReuseStats
	shape := net.InShape
	for i, l := range net.Layers {
		switch cl := l.(type) {
		case *layers.ConvLayer:
			os := cl.OutShape(shape)
			positions := int64(os.H) * int64(os.W)
			stats = append(stats, ReuseStats{
				Layer: i, Name: cl.Name(),
				// Each weight is applied at every spatial position.
				WeightReads: positions,
				// Each input pixel is covered by up to KH*KW kernel
				// offsets for each of the OutC filters (interior pixels;
				// boundary pixels see fewer, so this is the peak reuse).
				ImageReads:          int64(cl.OutC) * int64(cl.KH) * int64(cl.KW),
				OutputAccumulations: int64(cl.MACChainLen()),
			})
		case *layers.FCLayer:
			stats = append(stats, ReuseStats{
				Layer: i, Name: cl.Name(),
				// FC weights are consumed exactly once per inference —
				// no weight reuse, which is why Table 1 dataflows focus
				// on convolutional layers.
				WeightReads: 1,
				// Each input activation feeds every output neuron.
				ImageReads:          int64(cl.Out),
				OutputAccumulations: int64(cl.MACChainLen()),
			})
		}
		shape = l.OutShape(shape)
	}
	return stats
}

// FormatReuse renders the reuse table.
func FormatReuse(stats []ReuseStats) string {
	out := fmt.Sprintf("%-8s %12s %12s %12s\n", "Layer", "WeightReads", "ImageReads", "OutputAccum")
	for _, s := range stats {
		out += fmt.Sprintf("%-8s %12d %12d %12d\n", s.Name, s.WeightReads, s.ImageReads, s.OutputAccumulations)
	}
	return out
}
