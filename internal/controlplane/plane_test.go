package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

func testSpec(seed int64) campaign.Spec {
	return campaign.Spec{
		Net:    "ConvNet",
		DType:  "FLOAT16",
		N:      60,
		Inputs: 2,
		Seed:   seed,
		Shards: 4,
	}
}

func newTestPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func mustSubmit(t *testing.T, p *Plane, tenant string, spec campaign.Spec, priority, quota int) string {
	t.Helper()
	st, err := p.Submit(tenant, spec, priority, quota)
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// drainLeases pulls leases without ever reporting, recording the grant
// order per campaign, until the plane has nothing left to hand out.
func drainLeases(t *testing.T, p *Plane, now time.Time) []string {
	t.Helper()
	var order []string
	for {
		resp := p.lease(now)
		if resp.Lease == nil {
			return order
		}
		order = append(order, resp.Lease.Campaign)
	}
}

// TestFairShareDRR submits three campaigns with priorities 4, 2 and 1 —
// the priority-1 tenant is the one a naive highest-priority-first
// scheduler would starve — and checks that deficit round-robin hands out
// priority-proportional bursts while still visiting every campaign each
// cycle.
func TestFairShareDRR(t *testing.T) {
	p := newTestPlane(t, Config{LeaseTTL: time.Minute})
	// 16 shards each so one full DRR cycle (4+2+1 leases) never exhausts a
	// campaign mid-pattern.
	spec := testSpec(1)
	spec.Shards = 16
	spec.N = 160
	a := mustSubmit(t, p, "alice", spec, 4, 0)
	spec.Seed = 2
	b := mustSubmit(t, p, "bob", spec, 2, 0)
	spec.Seed = 3
	c := mustSubmit(t, p, "carol", spec, 1, 0)

	order := drainLeases(t, p, time.Now())
	if len(order) != 48 {
		t.Fatalf("granted %d leases, want 48", len(order))
	}
	// The ring serves A×4, B×2, C×1 per cycle until A (16 shards) runs dry
	// after 4 cycles, then B×2 C×1 until B runs dry, then C alone.
	want := []string{a, a, a, a, b, b, c}
	for i := 0; i < 4*7; i++ {
		if order[i] != want[i%7] {
			t.Fatalf("lease %d went to %s, want %s (order %v)", i, order[i], want[i%7], order[:i+1])
		}
	}
	// The starved-priority campaign gets exactly one lease per cycle — it
	// is never skipped.
	counts := map[string]int{}
	for _, id := range order[:28] {
		counts[id]++
	}
	if counts[a] != 16 || counts[b] != 8 || counts[c] != 4 {
		t.Fatalf("shares over 4 cycles: %v, want %s=16 %s=8 %s=4", counts, a, b, c)
	}
}

// TestQuotaEnforcement caps one campaign at 2 in-flight leases and checks
// the plane never exceeds it, resumes granting after a report frees a
// slot, and falls back to Config.DefaultQuota when the submission has
// none.
func TestQuotaEnforcement(t *testing.T) {
	p := newTestPlane(t, Config{LeaseTTL: time.Minute, DefaultQuota: 3})
	id := mustSubmit(t, p, "alice", testSpec(1), 1, 2)

	now := time.Now()
	order := drainLeases(t, p, now)
	if len(order) != 2 {
		t.Fatalf("quota 2 but %d leases granted", len(order))
	}
	st, _ := p.Get("alice", id)
	if st.InFlight != 2 {
		t.Fatalf("in-flight %d, want 2", st.InFlight)
	}

	// Defaulted quota: a second campaign without one inherits DefaultQuota.
	id2 := mustSubmit(t, p, "bob", testSpec(2), 1, 0)
	st2, _ := p.Get("bob", id2)
	if st2.Quota != 3 {
		t.Fatalf("defaulted quota %d, want 3", st2.Quota)
	}
	if extra := drainLeases(t, p, now); len(extra) != 3 {
		t.Fatalf("default quota 3 but %d leases granted", len(extra))
	}
}

// TestCancellationMidLease cancels a campaign while a worker holds a
// live lease: the lease dies at its next heartbeat, the late report is
// dropped without error, remaining shards are never handed out, and the
// owner check refuses a cross-tenant cancel.
func TestCancellationMidLease(t *testing.T) {
	auth, err := NewAuthenticator(map[string]string{"alice": "ka", "mallory": "km"})
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlane(t, Config{LeaseTTL: time.Minute, Auth: auth})
	id := mustSubmit(t, p, "alice", testSpec(1), 1, 0)

	now := time.Now()
	resp := p.lease(now)
	if resp.Lease == nil {
		t.Fatal("no lease granted")
	}

	if err := p.Cancel("mallory", id); err == nil {
		t.Fatal("cross-tenant cancel succeeded")
	}
	if err := p.Cancel("alice", id); err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel("alice", id); err != nil {
		t.Fatalf("cancel is not idempotent: %v", err)
	}

	hb := campaign.HeartbeatRequest{Campaign: id, LeaseID: resp.Lease.ID}
	if p.heartbeat(hb, now) {
		t.Fatal("heartbeat survived cancellation")
	}
	if got := p.lease(now); got.Lease != nil {
		t.Fatalf("cancelled campaign still leasing shard %d", got.Lease.Shard)
	}
	// The worker finishes anyway and posts: silently dropped.
	rep := campaign.ReportRequest{Campaign: id, LeaseID: resp.Lease.ID, Shard: resp.Lease.Slot, Report: &campaign.Report{}}
	if err := p.report(rep); err != nil {
		t.Fatalf("late report for cancelled campaign errored: %v", err)
	}
	st, _ := p.Get("alice", id)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
}

// runFleet drives n workers against the plane's HTTP handler until stop
// closes — the shared-fleet analogue of the campaign package's worker
// loops, ended externally because a plane (unlike a coordinator) is never
// "done".
func runFleet(t *testing.T, srv *httptest.Server, n int, token string, stop chan struct{}) chan error {
	t.Helper()
	errs := make(chan error, n)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-stop; cancel() }()
	for i := 0; i < n; i++ {
		w := &campaign.Worker{
			Base:    srv.URL,
			Name:    fmt.Sprintf("w%d", i),
			Poll:    5 * time.Millisecond,
			GiveUp:  10 * time.Second,
			Client:  srv.Client(),
			Token:   token,
			Goldens: campaign.NewGoldenCache(),
		}
		go func() { errs <- w.Run(ctx) }()
	}
	return errs
}

func waitState(t *testing.T, p *Plane, id, state string) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		st, err := p.Get("", id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return
		}
		if st.State != StateActive {
			t.Fatalf("campaign %s reached %s, want %s", id, st.State, state)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, _ := p.Get("", id)
	t.Fatalf("campaign %s stuck %s (completed %d), want %s", id, st.State, st.Snapshot.CompletedShards, state)
}

func soloBytes(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	r, _, err := campaign.SoloReport(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var inner any = r.Datapath
	if r.Buffer != nil {
		inner = r.Buffer
	}
	if r.Systolic != nil {
		inner = r.Systolic
	}
	data, err := json.MarshalIndent(inner, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSharedFleetMatchesSolo runs three concurrent campaigns — one
// stratified datapath, one uniform buffer, one stratified systolic
// campaign — through one worker fleet and requires each merged report to
// be byte-identical to its solo run. The stratified campaigns'
// pilot→allocation boundaries are crossed while the other campaigns'
// shards interleave on the same workers.
func TestSharedFleetMatchesSolo(t *testing.T) {
	dp := testSpec(11)
	dp.Sampling = "stratified"
	dp.PilotN = 20
	buf := campaign.Spec{
		Net: "ConvNet", DType: "FLOAT16", N: 60, Inputs: 2, Seed: 12,
		Shards: 4, Surface: "buffer", Buffer: "global",
	}
	sys := campaign.Spec{
		Net: "ConvNet", DType: "16b_rb10", N: 60, Inputs: 2, Seed: 13,
		Shards: 3, Surface: "systolic", Sampling: "stratified",
	}
	wantDP := soloBytes(t, dp)
	wantBuf := soloBytes(t, buf)
	wantSys := soloBytes(t, sys)

	p := newTestPlane(t, Config{LeaseTTL: 10 * time.Second})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	idDP := mustSubmit(t, p, "alice", dp, 4, 0)
	idBuf := mustSubmit(t, p, "bob", buf, 1, 0)
	idSys := mustSubmit(t, p, "carol", sys, 2, 0)

	stop := make(chan struct{})
	errs := runFleet(t, srv, 3, "", stop)
	waitState(t, p, idDP, StateDone)
	waitState(t, p, idBuf, StateDone)
	waitState(t, p, idSys, StateDone)
	close(stop)
	for i := 0; i < 3; i++ {
		<-errs
	}

	gotDP, err := p.FinalReportJSON("alice", idDP)
	if err != nil {
		t.Fatal(err)
	}
	gotBuf, err := p.FinalReportJSON("bob", idBuf)
	if err != nil {
		t.Fatal(err)
	}
	gotSys, err := p.FinalReportJSON("carol", idSys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDP, wantDP) {
		t.Fatalf("stratified datapath report diverged from solo (%d vs %d bytes)", len(gotDP), len(wantDP))
	}
	if !bytes.Equal(gotBuf, wantBuf) {
		t.Fatalf("buffer report diverged from solo (%d vs %d bytes)", len(gotBuf), len(wantBuf))
	}
	if !bytes.Equal(gotSys, wantSys) {
		t.Fatalf("systolic report diverged from solo (%d vs %d bytes)", len(gotSys), len(wantSys))
	}
}

// TestJournalResumeMidPilot kills the plane (Close + reopen on the same
// journal) while a stratified campaign is mid-pilot and a second campaign
// is partially done, then finishes both on the resumed plane: the resumed
// stratified campaign must rebuild its Neyman table from mixed
// journal-restored and freshly-run pilots and still merge byte-identical
// to solo.
func TestJournalResumeMidPilot(t *testing.T) {
	dp := testSpec(21)
	dp.Sampling = "stratified"
	dp.PilotN = 20
	other := testSpec(22)
	wantDP := soloBytes(t, dp)
	wantOther := soloBytes(t, other)

	journal := filepath.Join(t.TempDir(), "ctl.journal")
	p1, err := New(Config{JournalPath: journal, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	idDP := mustSubmit(t, p1, "alice", dp, 2, 0)
	idOther := mustSubmit(t, p1, "bob", other, 1, 0)

	// Hand-run a few slots: 3 of the 4 datapath pilots and 1 shard of the
	// other campaign, then "crash". The plane's lease carries everything a
	// worker needs, so we execute leases inline via the worker's solo path.
	goldens := campaign.NewGoldenCache()
	done := map[string]int{}
	for done[idDP] < 3 || done[idOther] < 1 {
		resp := p1.lease(time.Now())
		if resp.Lease == nil {
			t.Fatalf("plane idle before pre-crash work finished: %v", done)
		}
		l := resp.Lease
		if l.Campaign == idDP && done[idDP] >= 3 {
			continue // leave this pilot (or gated main) for after resume
		}
		rep, err := campaign.ExecuteLease(l, goldens)
		if err != nil {
			t.Fatal(err)
		}
		if err := p1.report(campaign.ReportRequest{Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot, Report: rep}); err != nil {
			t.Fatal(err)
		}
		done[l.Campaign]++
	}
	p1.Close()

	// Resume: both campaigns must come back active with their finished
	// slots restored, and run to completion bit-identically.
	p2 := newTestPlane(t, Config{JournalPath: journal, LeaseTTL: time.Minute})
	srv := httptest.NewServer(p2.Handler())
	defer srv.Close()
	stop := make(chan struct{})
	errs := runFleet(t, srv, 2, "", stop)
	waitState(t, p2, idDP, StateDone)
	waitState(t, p2, idOther, StateDone)
	close(stop)
	for i := 0; i < 2; i++ {
		<-errs
	}

	gotDP, err := p2.FinalReportJSON("alice", idDP)
	if err != nil {
		t.Fatal(err)
	}
	gotOther, err := p2.FinalReportJSON("bob", idOther)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDP, wantDP) {
		t.Fatal("resumed stratified campaign diverged from solo")
	}
	if !bytes.Equal(gotOther, wantOther) {
		t.Fatal("resumed uniform campaign diverged from solo")
	}
}

// TestAuthEndpoints checks the HTTP authn contract: with tokens
// configured, mutating and reading endpoints refuse missing/garbage
// tokens with 401 and accept minted ones; without an authenticator the
// loopback dev mode serves unauthenticated requests.
func TestAuthEndpoints(t *testing.T) {
	auth, err := NewAuthenticator(map[string]string{"alice": "secret-a", FleetTenant: "secret-f"})
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlane(t, Config{LeaseTTL: time.Minute, Auth: auth})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := func() *bytes.Reader {
		b, _ := json.Marshal(SubmitRequest{Spec: testSpec(1)})
		return bytes.NewReader(b)
	}
	do := func(token string) int {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/campaigns", body())
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := do(""); got != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", got)
	}
	if got := do("alice.deadbeef"); got != http.StatusUnauthorized {
		t.Fatalf("forged token: %d, want 401", got)
	}
	if got := do("eve.00"); got != http.StatusUnauthorized {
		t.Fatalf("unknown tenant: %d, want 401", got)
	}
	tok, err := auth.Token("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := do(tok); got != http.StatusCreated {
		t.Fatalf("minted token: %d, want 201", got)
	}
	// Worker-facing endpoint is gated too.
	resp, err := srv.Client().Post(srv.URL+"/v1/lease", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated lease: %d, want 401", resp.StatusCode)
	}

	// Role separation: the tenant token is refused on every fleet route,
	// the fleet token on every campaign route, and the fleet token is what
	// the fleet routes accept.
	ftok, err := auth.Token(FleetTenant)
	if err != nil {
		t.Fatal(err)
	}
	call := func(method, path, token, payload string) int {
		req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader(payload))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{"/v1/lease", "/v1/heartbeat", "/v1/report"} {
		if got := call("POST", path, tok, "{}"); got != http.StatusForbidden {
			t.Errorf("tenant token on %s: %d, want 403", path, got)
		}
	}
	for method, path := range map[string]string{
		"GET":  "/v1/campaigns",
		"POST": "/v1/campaigns",
	} {
		if got := call(method, path, ftok, "{}"); got != http.StatusForbidden {
			t.Errorf("fleet token on %s %s: %d, want 403", method, path, got)
		}
	}
	if got := call("POST", "/v1/lease", ftok, "{}"); got != http.StatusOK {
		t.Fatalf("fleet token on /v1/lease: %d, want 200", got)
	}

	// Dev mode: no authenticator, no tokens needed.
	open := newTestPlane(t, Config{LeaseTTL: time.Minute})
	osrv := httptest.NewServer(open.Handler())
	defer osrv.Close()
	oresp, err := osrv.Client().Post(osrv.URL+"/v1/campaigns", "application/json", body())
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusCreated {
		t.Fatalf("dev-mode submit: %d, want 201", oresp.StatusCode)
	}
	sts := open.List("")
	if len(sts) != 1 || sts[0].Tenant != devTenant {
		t.Fatalf("dev-mode tenant %+v, want %q", sts, devTenant)
	}
}

// TestTenantIsolationReadRoutes: with authentication enabled, a tenant
// sees only its own campaigns — listing filters to the caller, and get,
// stream and final-report fetch refuse other tenants' IDs with 403, the
// same owner check cancel already applied.
func TestTenantIsolationReadRoutes(t *testing.T) {
	auth, err := NewAuthenticator(map[string]string{"alice": "ka", "bob": "kb"})
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlane(t, Config{LeaseTTL: time.Minute, Auth: auth})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	idA := mustSubmit(t, p, "alice", testSpec(1), 1, 0)
	mustSubmit(t, p, "bob", testSpec(2), 1, 0)

	get := func(path, tenant string) (int, []byte) {
		tok, err := auth.Token(tenant)
		if err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Listing is tenant-filtered: each tenant sees exactly its own.
	for _, tenant := range []string{"alice", "bob"} {
		code, body := get("/v1/campaigns", tenant)
		if code != http.StatusOK {
			t.Fatalf("%s list: %d, want 200", tenant, code)
		}
		var sts []Status
		if err := json.Unmarshal(body, &sts); err != nil {
			t.Fatal(err)
		}
		if len(sts) != 1 || sts[0].Tenant != tenant {
			t.Fatalf("%s list sees %+v, want only its own campaign", tenant, sts)
		}
	}

	// Every per-campaign read route is owner-checked.
	for _, path := range []string{
		"/v1/campaigns/" + idA,
		"/v1/campaigns/" + idA + "/report",
		"/v1/campaigns/" + idA + "/stream",
	} {
		if code, _ := get(path, "bob"); code != http.StatusForbidden {
			t.Errorf("bob on %s: %d, want 403", path, code)
		}
	}
	if code, _ := get("/v1/campaigns/"+idA, "alice"); code != http.StatusOK {
		t.Errorf("alice on her own campaign: %d, want 200", code)
	}
}

// TestForgedReportRefused: the report path only merges results whose
// lease was actually granted for that slot — a structurally-valid report
// with a fabricated or mismatched lease ID is refused, while a late
// delivery from an expired (re-leased) lease still lands.
func TestForgedReportRefused(t *testing.T) {
	p := newTestPlane(t, Config{LeaseTTL: time.Minute})
	id := mustSubmit(t, p, "alice", testSpec(1), 1, 0)

	now := time.Now()
	resp := p.lease(now)
	if resp.Lease == nil {
		t.Fatal("no lease granted")
	}
	l := resp.Lease
	rep, err := campaign.ExecuteLease(l, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, req := range map[string]campaign.ReportRequest{
		"never-granted seq": {Campaign: id, LeaseID: "L99-s0", Shard: l.Slot, Report: rep},
		"empty lease":       {Campaign: id, Shard: l.Slot, Report: rep},
		"garbage lease":     {Campaign: id, LeaseID: "forged", Shard: l.Slot, Report: rep},
		"slot mismatch":     {Campaign: id, LeaseID: l.ID, Shard: l.Slot + 1, Report: rep},
		"trailing garbage":  {Campaign: id, LeaseID: l.ID + "x", Shard: l.Slot, Report: rep},
	} {
		if err := p.report(req); err == nil {
			t.Errorf("%s: forged report accepted", name)
		}
	}
	st, _ := p.Get("", id)
	if st.Snapshot.CompletedShards != 0 {
		t.Fatalf("forged reports completed %d shards", st.Snapshot.CompletedShards)
	}
	if err := p.report(campaign.ReportRequest{Campaign: id, LeaseID: l.ID, Shard: l.Slot, Report: rep}); err != nil {
		t.Fatalf("genuine report refused: %v", err)
	}

	// Late delivery: a second slot's lease expires and is re-granted; the
	// original holder's report must still be accepted (deterministic
	// shards make either copy bit-identical).
	resp2 := p.lease(now)
	if resp2.Lease == nil {
		t.Fatal("no second lease granted")
	}
	stale := resp2.Lease
	release := p.lease(now.Add(2 * time.Minute)) // past the TTL: expires + re-leases
	if release.Lease == nil || release.Lease.Slot != stale.Slot {
		t.Fatalf("expected slot %d re-leased, got %+v", stale.Slot, release.Lease)
	}
	rep2, err := campaign.ExecuteLease(stale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.report(campaign.ReportRequest{Campaign: id, LeaseID: stale.ID, Shard: stale.Slot, Report: rep2}); err != nil {
		t.Fatalf("late delivery from expired lease refused: %v", err)
	}
}

// TestStreamTerminalStatusOnce: a stream opened on a campaign already in
// a terminal state ends after exactly one status line — the drain path
// must not emit the terminal status twice.
func TestStreamTerminalStatusOnce(t *testing.T) {
	p := newTestPlane(t, Config{LeaseTTL: time.Minute})
	id := mustSubmit(t, p, "alice", testSpec(1), 1, 0)
	if err := p.Cancel("", id); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("terminal stream wrote %d lines, want 1:\n%s", len(lines), body)
	}
	var st Status
	if err := json.Unmarshal([]byte(lines[0]), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("stream line state %s, want cancelled", st.State)
	}
}
