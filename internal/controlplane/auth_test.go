package controlplane

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTokenRoundTrip(t *testing.T) {
	a, err := NewAuthenticator(map[string]string{"alice": "ka", "bob": "kb"})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := a.Token("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, "alice.") {
		t.Fatalf("token %q does not carry its tenant", tok)
	}
	if tenant, ok := a.Verify(tok); !ok || tenant != "alice" {
		t.Fatalf("minted token refused: tenant=%q ok=%v", tenant, ok)
	}

	bad := []string{
		"",
		"alice",                          // no MAC
		"alice.",                         // empty MAC
		".deadbeef",                      // empty tenant
		"alice.zzzz",                     // not hex
		tok + "00",                       // extended MAC
		tok[:len(tok)-2],                 // truncated MAC
		"bob." + tok[len("alice."):],     // alice's MAC claimed by bob
		"mallory." + tok[len("alice."):], // unknown tenant, real-looking MAC
	}
	for _, b := range bad {
		if tenant, ok := a.Verify(b); ok {
			t.Errorf("Verify(%q) accepted as %q", b, tenant)
		}
	}
	if _, err := a.Token("mallory"); err == nil {
		t.Error("minted token for unknown tenant")
	}
}

func TestNewAuthenticatorRejectsBadTenants(t *testing.T) {
	for _, bad := range []map[string]string{
		{},
		{"": "k"},
		{"a": ""},
		{"a.b": "k"},
		{"a:b": "k"},
		{"a b": "k"},
	} {
		if _, err := NewAuthenticator(bad); err == nil {
			t.Errorf("NewAuthenticator(%v) accepted", bad)
		}
	}
}

func TestLoadKeyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	content := "# tenants\nalice:ka\n\nbob:kb\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	a, err := LoadKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Tenants(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("tenants %v", got)
	}
	// The offline-minted token is what the server-side authenticator
	// accepts — same derivation both sides.
	tok, err := a.Token("bob")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := b.Verify(tok); !ok || tenant != "bob" {
		t.Fatal("reloaded key file refused the minted token")
	}

	for _, bad := range []string{"alice\n", "alice:ka\nalice:kb\n", ":k\n", "a:\n"} {
		p := filepath.Join(t.TempDir(), "keys")
		os.WriteFile(p, []byte(bad), 0o600)
		if _, err := LoadKeyFile(p); err == nil {
			t.Errorf("LoadKeyFile accepted %q", bad)
		}
	}
}
