package controlplane

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
)

// tokenContext domain-separates the tenant MAC from any other use of the
// same key material.
const tokenContext = "faultserve.tenant.v1:"

// FleetTenant is the reserved principal name for the shared worker fleet.
// Its token is the only one the fleet routes (/v1/lease, /v1/heartbeat,
// /v1/report) accept, and the only one the tenant routes refuse: a
// tenant's token cannot pull other tenants' shard leases or inject
// fabricated reports, and a leaked worker token cannot submit, cancel or
// read campaigns. Configure it like any other key-file line
// ("fleet:secret") and mint its token with -role token -tenant fleet.
const FleetTenant = "fleet"

// Authenticator verifies per-tenant HMAC bearer tokens. A token is
// "tenant.hex(HMAC-SHA256(key_tenant, context||tenant))": self-describing
// (the tenant name rides in the clear), deterministic (mintable offline by
// anyone holding the keys file), and verified with a constant-time
// compare. A nil *Authenticator means authentication is disabled —
// loopback dev mode, where every request acts as the "local" tenant.
type Authenticator struct {
	keys map[string][]byte
}

// NewAuthenticator builds an authenticator from tenant → secret pairs.
// Empty tenants or secrets are rejected.
func NewAuthenticator(keys map[string]string) (*Authenticator, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("controlplane: no tenant keys")
	}
	a := &Authenticator{keys: make(map[string][]byte, len(keys))}
	for tenant, secret := range keys {
		if tenant == "" || secret == "" {
			return nil, fmt.Errorf("controlplane: empty tenant name or secret")
		}
		if strings.ContainsAny(tenant, ".: \t\n") {
			return nil, fmt.Errorf("controlplane: tenant %q may not contain '.', ':' or whitespace", tenant)
		}
		a.keys[tenant] = []byte(secret)
	}
	return a, nil
}

// LoadKeyFile reads a tenant key file: one "tenant:secret" per line, blank
// lines and #-comments ignored.
func LoadKeyFile(path string) (*Authenticator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("controlplane: tenant keys: %v", err)
	}
	defer f.Close()
	keys := make(map[string]string)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tenant, secret, ok := strings.Cut(line, ":")
		if !ok || tenant == "" || secret == "" {
			return nil, fmt.Errorf("controlplane: tenant keys %s:%d: want tenant:secret", path, lineNo)
		}
		if _, dup := keys[tenant]; dup {
			return nil, fmt.Errorf("controlplane: tenant keys %s:%d: duplicate tenant %q", path, lineNo, tenant)
		}
		keys[tenant] = secret
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: tenant keys: %v", err)
	}
	return NewAuthenticator(keys)
}

// mac computes the tenant's token MAC with the given key.
func tokenMAC(key []byte, tenant string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(tokenContext + tenant))
	return h.Sum(nil)
}

// Token mints the bearer token for a tenant.
func (a *Authenticator) Token(tenant string) (string, error) {
	key, ok := a.keys[tenant]
	if !ok {
		return "", fmt.Errorf("controlplane: unknown tenant %q", tenant)
	}
	return tenant + "." + hex.EncodeToString(tokenMAC(key, tenant)), nil
}

// dummyKey keeps Verify doing one HMAC computation whether or not the
// claimed tenant exists, so response timing does not enumerate tenants.
var dummyKey = []byte("faultserve.dummy.verification.key")

// Verify checks a bearer token and returns the authenticated tenant. The
// MAC comparison is constant-time (hmac.Equal), and unknown tenants still
// pay for a full MAC computation.
func (a *Authenticator) Verify(token string) (tenant string, ok bool) {
	i := strings.LastIndexByte(token, '.')
	if i <= 0 || i == len(token)-1 {
		return "", false
	}
	claimed, macHex := token[:i], token[i+1:]
	got, err := hex.DecodeString(macHex)
	if err != nil {
		return "", false
	}
	key, known := a.keys[claimed]
	if !known {
		key = dummyKey
	}
	want := tokenMAC(key, claimed)
	if !known || !hmac.Equal(got, want) {
		// Burn the compare on the dummy path too before refusing.
		return "", false
	}
	return claimed, true
}

// Has reports whether a key is configured for the named principal.
func (a *Authenticator) Has(tenant string) bool {
	_, ok := a.keys[tenant]
	return ok
}

// Tenants lists the configured tenant names, sorted.
func (a *Authenticator) Tenants() []string {
	out := make([]string, 0, len(a.keys))
	for t := range a.keys {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
