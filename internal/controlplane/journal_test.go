package controlplane

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinj"
)

func journalLines(bs ...[]byte) []byte {
	var out []byte
	for _, b := range bs {
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out
}

func testReport(spec campaign.Spec) *campaign.Report {
	r := &campaign.Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
	r.Datapath.Masked = 1
	return r
}

// TestJournalTornTail crashes mid-append (a half-written last line) and
// checks the resume drops exactly that line, truncates the file to the
// good prefix, and keeps every earlier campaign.
func TestJournalTornTail(t *testing.T) {
	spec := testSpec(1)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	hdr, _ := json.Marshal(journalHeader{Version: journalVersion})
	sub, _ := json.Marshal(journalEvent{Event: evSubmit, Campaign: "c1", Tenant: "alice", Priority: 2, Spec: &spec})
	rep, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c1", Slot: 0, Report: testReport(spec)})

	path := filepath.Join(t.TempDir(), "ctl.journal")
	good := journalLines(hdr, sub, rep)
	torn := append(append([]byte{}, good...), []byte(`{"event":"report","campaign":"c1","slot":1,"rep`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st, err := p.Get("alice", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateActive || st.Snapshot.CompletedShards != 1 {
		t.Fatalf("resumed state %s with %d shards, want active with 1", st.State, st.Snapshot.CompletedShards)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(good) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(data), len(good))
	}
}

// TestJournalRefusals: a v3 single-campaign checkpoint, an event for a
// campaign the journal never admitted, and corruption before the tail all
// refuse the resume instead of silently dropping state.
func TestJournalRefusals(t *testing.T) {
	spec := testSpec(1)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	hdr, _ := json.Marshal(journalHeader{Version: journalVersion})
	v3hdr, _ := json.Marshal(journalHeader{Version: 3})
	sub, _ := json.Marshal(journalEvent{Event: evSubmit, Campaign: "c1", Spec: &spec})
	rep, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c1", Slot: 0, Report: testReport(spec)})
	foreign, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c9", Slot: 0, Report: testReport(spec)})

	cases := map[string][]byte{
		"v3 checkpoint":     journalLines(v3hdr, sub),
		"foreign campaign":  journalLines(hdr, sub, foreign, rep),
		"corrupt middle":    journalLines(hdr, sub, []byte(`{"event":`), rep),
		"dup submission":    journalLines(hdr, sub, sub),
		"cancel before sub": journalLines(hdr, []byte(`{"event":"cancel","campaign":"c1"}`), sub),
		"slot out of range": journalLines(hdr, sub, []byte(`{"event":"report","campaign":"c1","slot":99,"report":{}}`), rep),
		"empty file":        {},
	}
	for name, data := range cases {
		path := filepath.Join(t.TempDir(), "ctl.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := New(Config{JournalPath: path}); err == nil {
			t.Errorf("%s: resume accepted", name)
		}
	}
}

// FuzzQueueCheckpoint throws arbitrary bytes at the interleaved v4
// journal loader. The contract: New never panics; when it succeeds, every
// recovered campaign replays cleanly (reports land in their own ledgers,
// in range) and a re-resume of the now-truncated file also succeeds —
// loading is idempotent once the torn tail is gone. Seeds cover the
// interesting shapes: multi-campaign interleaving, torn tail, foreign
// campaign IDs, v3 refusal, cancel events.
func FuzzQueueCheckpoint(f *testing.F) {
	specA := testSpec(1)
	specB := testSpec(2)
	specB.Shards = 2
	specB.N = 30
	for _, s := range []*campaign.Spec{&specA, &specB} {
		if err := s.Normalize(); err != nil {
			f.Fatal(err)
		}
	}
	hdr, _ := json.Marshal(journalHeader{Version: journalVersion})
	v3hdr, _ := json.Marshal(journalHeader{Version: 3})
	subA, _ := json.Marshal(journalEvent{Event: evSubmit, Campaign: "c1", Tenant: "alice", Priority: 4, Quota: 2, Spec: &specA})
	subB, _ := json.Marshal(journalEvent{Event: evSubmit, Campaign: "c2", Tenant: "bob", Priority: 1, Spec: &specB})
	repA, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c1", Slot: 1, Report: testReport(specA)})
	repB, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c2", Slot: 0, Report: testReport(specB)})
	cancelB, _ := json.Marshal(journalEvent{Event: evCancel, Campaign: "c2"})
	foreign, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c9", Slot: 0, Report: testReport(specA)})

	f.Add([]byte{})
	f.Add(journalLines(hdr))
	f.Add(journalLines(hdr, subA, subB, repB, repA))       // interleaved
	f.Add(journalLines(hdr, subA, repA, subB, cancelB))    // cancel
	f.Add(append(journalLines(hdr, subA), subA[:20]...))   // torn tail
	f.Add(journalLines(hdr, subA, foreign, repA))          // foreign ID mid-file
	f.Add(journalLines(hdr, subA, repA, foreign))          // foreign ID at tail
	f.Add(journalLines(v3hdr, subA))                       // v3 refusal
	f.Add(journalLines(hdr, []byte(`{"event":"submit"}`))) // no campaign ID
	f.Add([]byte("not json\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ctl.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
		if err != nil {
			return
		}
		for _, st := range p.List("") {
			if st.Snapshot.CompletedShards > st.Snapshot.TotalShards {
				t.Fatalf("campaign %s recovered %d/%d shards", st.ID, st.Snapshot.CompletedShards, st.Snapshot.TotalShards)
			}
		}
		p.Close()
		// Idempotence: the surviving file must load again, byte-stable.
		p2, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
		if err != nil {
			t.Fatalf("clean journal refused on second load: %v", err)
		}
		p2.Close()
	})
}
