package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/campaign"
)

// The journal is checkpoint version 5: one append-only NDJSON file that
// interleaves the events of many campaigns — a header line written once at
// plane creation, then one line per event (campaign submitted, slot report
// accepted, campaign cancelled) in commit order. Resume replays the file
// and re-admits every unfinished, uncancelled campaign; the single-
// campaign v3 checkpoint (and older) is refused with a version mismatch
// rather than misread. Version 4 files (which lack the header sequence
// field) are read compatibly and upgraded to v5 by the load-time
// compaction.
//
// Two mechanisms distinguish v5 from v4, neither weakening the crash
// contract:
//
// Group commit. Appends no longer pay one fsync each: a committer
// goroutine coalesces every event enqueued while the previous batch was
// syncing into one buffered write followed by one fsync, and each
// caller's acknowledgment is released only after the batch holding its
// event is durable. Under concurrency the fsync cost is amortized over
// the whole batch; a lone append still gets its own immediate sync, so
// the worst case equals the old path. A write or sync failure is sticky:
// it fails the waiting batch and every append after it.
//
// Snapshot compaction. The file no longer grows without bound: on load
// (when terminal campaigns exist or the file is v4) and whenever the file
// outgrows a size threshold, the journal is rewritten as the minimal
// event history equivalent to the live ledgers — one submit plus one
// report per finished slot for each unfinished campaign — retiring every
// event of terminal campaigns. The rewrite is atomic (temp file, fsync,
// rename, directory fsync): a crash at any byte leaves either the old
// journal or the new one, never a hybrid, and the torn-tail/foreign/
// corrupt refusal matrix applies unchanged to whichever survives. The
// header's seq field persists the campaign ID counter so retired IDs are
// never reused.
const (
	journalVersion   = 5
	journalVersionV4 = 4
)

// journalHeader is the first line of the file. Seq records the highest
// campaign sequence number ever assigned, so compaction can retire a
// terminal campaign's events without its ID being reused by a later
// submission (v4 files, which predate compaction, have no Seq and derive
// the counter from the replayed events).
type journalHeader struct {
	Version int `json:"version"`
	Seq     int `json:"seq,omitempty"`
}

// Event kinds.
const (
	evSubmit = "submit"
	evReport = "report"
	evCancel = "cancel"
)

// journalEvent is one line of the journal. Event selects which fields are
// meaningful: submit carries the campaign's spec and admission parameters,
// report carries one accepted slot report, cancel carries only the ID.
type journalEvent struct {
	Event    string `json:"event"`
	Campaign string `json:"campaign"`

	// submit
	Tenant   string         `json:"tenant,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Quota    int            `json:"quota,omitempty"`
	Spec     *campaign.Spec `json:"spec,omitempty"`

	// report
	Slot    int              `json:"slot,omitempty"`
	Retries int              `json:"retries,omitempty"`
	Report  *campaign.Report `json:"report,omitempty"`
}

// JournalStats is the journal's hot-path instrumentation, also exported
// per-plane so benchmarks comparing sync policies in one process are not
// confused by the process-global expvars.
type JournalStats struct {
	// Batches and Events count committed group-commit batches and the
	// events they carried; Events/Batches is the realized amortization.
	Batches int64 `json:"batches"`
	Events  int64 `json:"events"`
	// MaxBatch is the largest single batch committed.
	MaxBatch int64 `json:"max_batch"`
	// Fsyncs counts file syncs on the append path (one per batch under
	// group commit, one per event under FsyncPerAppend).
	Fsyncs int64 `json:"fsyncs"`
	// FsyncNanos is total time spent in append-path write+sync.
	FsyncNanos int64 `json:"fsync_nanos"`
	// Bytes is the journal file's current size.
	Bytes int64 `json:"bytes"`
	// Compactions counts snapshot rewrites; RetiredEvents is how many
	// journal events they dropped.
	Compactions   int64 `json:"compactions"`
	RetiredEvents int64 `json:"retired_events"`
}

// commitBatch collects the appends coalesced into one write+fsync. done
// is closed once the batch is durable (or failed); err is valid after.
type commitBatch struct {
	n    int
	done chan struct{}
	err  error
}

// journal is an open append handle, the group-commit machinery, and the
// state recovered on load.
type journal struct {
	path string

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	// buf and batch hold encoded lines (and their waiters) enqueued since
	// the committer last picked up work.
	buf   []byte
	batch *commitBatch
	// err is sticky: once a write or sync fails, every later append fails
	// with it — callers must not be told "durable" after the file broke.
	err        error
	closed     bool
	started    bool
	size       int64
	eventCount int
	// compactReq asks the committer to run a compaction; compactDone
	// counts finished attempts so forceCompact can wait for one.
	compactReq  bool
	compactDone int64
	// lastCompactSize gates re-compaction: the file must exceed both
	// compactAt and twice the last compacted size, so a threshold smaller
	// than the live state cannot cause a rewrite per batch.
	lastCompactSize int64
	stats           JournalStats

	// perAppend reverts to the v4 policy — one write+fsync per event —
	// as the measured baseline for the group-commit path.
	perAppend bool
	// compactAt, when positive, triggers compaction past that many bytes.
	compactAt int64
	// snapshot, set by the plane before the committer starts, returns the
	// persisted seq counter, the minimal live-state event history, and any
	// stolen not-yet-committed batch (superseded by the snapshot, acked
	// when it lands). nil disables compaction.
	snapshot func() (seq int, events []*journalEvent, stolen *commitBatch)

	// events holds the replayable history in file order; nil when the file
	// was freshly created. version is what the loaded file declared.
	events  []journalEvent
	loaded  bool
	version int
	seq     int

	done chan struct{}
}

// openJournal loads (or creates) the interleaved journal at path. A
// missing file starts a fresh control plane: the header is written
// atomically (temp file + rename) so a crash during creation leaves either
// no journal or a valid empty one, never a torn header.
func openJournal(path string) (*journal, error) {
	data, err := os.ReadFile(path)
	var jl *journal
	switch {
	case os.IsNotExist(err):
		if err := writeJournalHeader(path); err != nil {
			return nil, err
		}
		jl = &journal{path: path, version: journalVersion}
		hdr, _ := json.Marshal(journalHeader{Version: journalVersion})
		jl.size = int64(len(hdr) + 1)
	case err != nil:
		return nil, fmt.Errorf("controlplane: reading journal: %v", err)
	default:
		jl, err = parseJournal(path, data)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: opening journal for append: %v", err)
	}
	jl.f = f
	jl.cond = sync.NewCond(&jl.mu)
	jl.done = make(chan struct{})
	jl.eventCount = len(jl.events)
	return jl, nil
}

// start launches the committer goroutine. The plane calls it after replay
// and any load-time compaction, so the synchronous phase never races it.
func (jl *journal) start() {
	if jl == nil || jl.started {
		return
	}
	jl.started = true
	go jl.run()
}

func writeJournalHeader(path string) error {
	hdr, err := json.Marshal(journalHeader{Version: journalVersion})
	if err != nil {
		return fmt.Errorf("controlplane: encoding journal header: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("controlplane: journal dir: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(hdr, '\n'), 0o644); err != nil {
		return fmt.Errorf("controlplane: writing journal header: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("controlplane: committing journal header: %v", err)
	}
	return nil
}

// parseJournal validates an existing journal and recovers its events. A
// trailing line that does not parse or does not validate against the
// campaigns submitted so far is a torn append from a crash: it is dropped
// and the file truncated to the last good line. A bad line anywhere else
// is corruption and refuses the resume.
func parseJournal(path string, data []byte) (*journal, error) {
	lines := bytes.Split(data, []byte{'\n'})
	// A well-formed file ends in '\n', leaving one empty trailing element.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("controlplane: journal %s is empty", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("controlplane: decoding journal %s header: %v", path, err)
	}
	if hdr.Version != journalVersion && hdr.Version != journalVersionV4 {
		return nil, fmt.Errorf("controlplane: journal %s has version %d, want %d (v3 and older are single-campaign coordinator checkpoints — they do not resume on a control plane)",
			path, hdr.Version, journalVersion)
	}

	jl := &journal{path: path, loaded: true, version: hdr.Version, seq: hdr.Seq}
	// specs tracks submitted campaigns so report/cancel events can be
	// validated in stream order: an event naming a campaign the journal
	// never admitted is foreign — it cannot have been written by a plane
	// appending to this file.
	specs := make(map[string]campaign.Spec)
	goodBytes := len(lines[0]) + 1
	for i, line := range lines[1:] {
		e, err := validateEvent(line, specs)
		if err != nil {
			// Only an unparseable *last* line can be a torn append: a write
			// cut short never leaves valid JSON (every proper prefix of a
			// JSON object is invalid), so a line that parses but fails
			// validation — foreign campaign, out-of-range slot, duplicate
			// submission — is corruption wherever it sits, and refuses the
			// resume rather than silently dropping an event.
			var torn tornLineError
			if i == len(lines)-2 && errors.As(err, &torn) {
				if terr := os.Truncate(path, int64(goodBytes)); terr != nil {
					return nil, fmt.Errorf("controlplane: truncating torn journal tail: %v", terr)
				}
				break
			}
			return nil, fmt.Errorf("controlplane: journal %s event %d: %v", path, i, err)
		}
		jl.events = append(jl.events, *e)
		goodBytes += len(line) + 1
	}
	jl.size = int64(goodBytes)
	return jl, nil
}

// tornLineError marks a line that failed to decode at all — the only
// failure shape a crash mid-append can produce.
type tornLineError struct{ err error }

func (e tornLineError) Error() string { return e.err.Error() }

// validateEvent parses one journal line against the campaigns admitted so
// far, updating specs on submissions.
func validateEvent(line []byte, specs map[string]campaign.Spec) (*journalEvent, error) {
	var e journalEvent
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, tornLineError{fmt.Errorf("undecodable: %v", err)}
	}
	if e.Campaign == "" {
		return nil, fmt.Errorf("missing campaign ID")
	}
	switch e.Event {
	case evSubmit:
		if e.Spec == nil {
			return nil, fmt.Errorf("submission of %s has no spec", e.Campaign)
		}
		if _, dup := specs[e.Campaign]; dup {
			return nil, fmt.Errorf("campaign %s submitted twice", e.Campaign)
		}
		spec := *e.Spec
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("submission of %s: %v", e.Campaign, err)
		}
		specs[e.Campaign] = spec
	case evReport:
		spec, known := specs[e.Campaign]
		if !known {
			return nil, fmt.Errorf("report for foreign campaign %s", e.Campaign)
		}
		if e.Slot < 0 || e.Slot >= spec.Slots() {
			return nil, fmt.Errorf("campaign %s slot %d out of range [0,%d)", e.Campaign, e.Slot, spec.Slots())
		}
		if e.Report == nil {
			return nil, fmt.Errorf("campaign %s slot %d has no report", e.Campaign, e.Slot)
		}
	case evCancel:
		if _, known := specs[e.Campaign]; !known {
			return nil, fmt.Errorf("cancel of foreign campaign %s", e.Campaign)
		}
	default:
		return nil, fmt.Errorf("unknown event %q", e.Event)
	}
	return &e, nil
}

// enqueue hands one event to the committer and returns a wait closure
// that blocks until the batch holding the event is durable — the caller
// acknowledges its mutation only after wait returns nil. Enqueueing is
// cheap (one marshal, one buffer append) and safe to do under the
// plane's scheduler lock; the wait must happen after that lock is
// released, which is what keeps fsync latency off the dispatch path.
func (jl *journal) enqueue(e journalEvent) func() error {
	if jl == nil {
		return func() error { return nil }
	}
	line, err := json.Marshal(e)
	if err != nil {
		err = fmt.Errorf("controlplane: encoding journal event: %v", err)
		return func() error { return err }
	}
	jl.mu.Lock()
	if jl.closed {
		jl.mu.Unlock()
		return func() error { return fmt.Errorf("controlplane: journal closed") }
	}
	if jl.err != nil {
		err := jl.err
		jl.mu.Unlock()
		return func() error { return err }
	}
	if jl.batch == nil {
		jl.batch = &commitBatch{done: make(chan struct{})}
	}
	b := jl.batch
	jl.buf = append(jl.buf, line...)
	jl.buf = append(jl.buf, '\n')
	b.n++
	jl.cond.Signal()
	jl.mu.Unlock()
	return func() error {
		<-b.done
		return b.err
	}
}

// append enqueues one event and waits for durability — the synchronous
// convenience used where no scheduler lock is held.
func (jl *journal) append(e journalEvent) error {
	return jl.enqueue(e)()
}

// run is the committer: it repeatedly swaps out everything enqueued since
// the last commit, writes it as one buffer, fsyncs once, and releases the
// batch's waiters. Compaction requests are honored between batches.
func (jl *journal) run() {
	defer close(jl.done)
	jl.mu.Lock()
	for {
		for len(jl.buf) == 0 && !jl.closed && !jl.compactReq {
			jl.cond.Wait()
		}
		if jl.compactReq {
			jl.compactReq = false
			if jl.snapshot != nil && jl.err == nil {
				jl.mu.Unlock()
				jl.compact()
				jl.mu.Lock()
			} else {
				jl.compactDone++
				jl.cond.Broadcast()
			}
			continue
		}
		if len(jl.buf) == 0 {
			break // closed and drained
		}
		buf, b := jl.buf, jl.batch
		jl.buf, jl.batch = nil, nil
		f, perAppend := jl.f, jl.perAppend
		jl.mu.Unlock()

		start := time.Now()
		total := int64(len(buf))
		var werr error
		syncs := int64(0)
		if perAppend {
			// Baseline policy: one write + one fsync per event line.
			for len(buf) > 0 && werr == nil {
				nl := bytes.IndexByte(buf, '\n')
				_, werr = f.Write(buf[:nl+1])
				if werr == nil {
					werr = f.Sync()
					syncs++
				}
				buf = buf[nl+1:]
			}
		} else {
			_, werr = f.Write(buf)
			if werr == nil {
				werr = f.Sync()
				syncs = 1
			}
		}
		elapsed := time.Since(start).Nanoseconds()

		jl.mu.Lock()
		if werr != nil {
			werr = fmt.Errorf("controlplane: committing journal batch: %v", werr)
			if jl.err == nil {
				jl.err = werr
			}
		} else {
			jl.size += total
			jl.eventCount += b.n
			jl.stats.Batches++
			jl.stats.Events += int64(b.n)
			if int64(b.n) > jl.stats.MaxBatch {
				jl.stats.MaxBatch = int64(b.n)
			}
			jl.stats.Fsyncs += syncs
			jl.stats.FsyncNanos += elapsed
			jl.stats.Bytes = jl.size
			noteJournalCommit(int64(b.n), syncs, elapsed, jl.size)
			if jl.compactAt > 0 && jl.size > jl.compactAt && jl.size > 2*jl.lastCompactSize {
				jl.compactReq = true
			}
		}
		b.err = werr
		close(b.done)
	}
	jl.mu.Unlock()
}

// compact rewrites the journal as the minimal event history equivalent to
// the live campaign state. It runs with jl.mu released: the snapshot
// callback holds the plane lock while assembling events (and steals any
// uncommitted batch, whose mutations the snapshot already contains), so
// no event can land between snapshot and rename. The temp file is synced
// before the rename and the directory after it; the old append handle is
// dropped for the temp handle, which after the rename names the journal.
func (jl *journal) compact() {
	seq, events, stolen := jl.snapshot()
	f, size, werr := writeSnapshotFile(jl.path, seq, events)

	jl.mu.Lock()
	if werr != nil {
		if jl.err == nil {
			jl.err = werr
		}
	} else {
		old := jl.f
		jl.f = f
		retired := int64(jl.eventCount - len(events))
		if stolen != nil {
			retired += int64(stolen.n)
		}
		if retired < 0 {
			retired = 0
		}
		jl.eventCount = len(events)
		jl.size = size
		jl.lastCompactSize = size
		jl.stats.Compactions++
		jl.stats.RetiredEvents += retired
		jl.stats.Bytes = size
		noteJournalCompaction(retired, size)
		old.Close()
	}
	jl.compactDone++
	jl.cond.Broadcast()
	jl.mu.Unlock()

	if stolen != nil {
		stolen.err = werr
		close(stolen.done)
	}
}

// writeSnapshotFile writes a fresh journal holding hdr(seq)+events to
// path via temp file + fsync + rename + directory fsync, returning the
// still-open handle (positioned at EOF, ready for appends) and its size.
func writeSnapshotFile(path string, seq int, events []*journalEvent) (*os.File, int64, error) {
	var buf bytes.Buffer
	hdr, err := json.Marshal(journalHeader{Version: journalVersion, Seq: seq})
	if err != nil {
		return nil, 0, fmt.Errorf("controlplane: encoding journal header: %v", err)
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, 0, fmt.Errorf("controlplane: encoding journal snapshot event: %v", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("controlplane: creating journal snapshot: %v", err)
	}
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, 0, fmt.Errorf("controlplane: writing journal snapshot: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, 0, fmt.Errorf("controlplane: committing journal snapshot: %v", err)
	}
	syncDir(filepath.Dir(path))
	return f, int64(buf.Len()), nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// forceCompact asks the committer for a compaction and waits for the
// attempt to finish.
func (jl *journal) forceCompact() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return fmt.Errorf("controlplane: journal closed")
	}
	target := jl.compactDone + 1
	jl.compactReq = true
	jl.cond.Signal()
	for jl.compactDone < target && !jl.closed {
		jl.cond.Wait()
	}
	return jl.err
}

// Stats returns a copy of the journal's counters.
func (jl *journal) Stats() JournalStats {
	if jl == nil {
		return JournalStats{}
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	s := jl.stats
	s.Bytes = jl.size
	return s
}

// Close drains the committer (pending batches still commit) and releases
// the append handle.
func (jl *journal) Close() error {
	if jl == nil || jl.f == nil {
		return nil
	}
	jl.mu.Lock()
	if jl.closed {
		jl.mu.Unlock()
		return nil
	}
	jl.closed = true
	jl.cond.Broadcast()
	started := jl.started
	jl.mu.Unlock()
	if started {
		<-jl.done
	}
	return jl.f.Close()
}
