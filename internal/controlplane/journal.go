package controlplane

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
)

// The journal is checkpoint version 4: one append-only NDJSON file that
// interleaves the events of many campaigns — a header line written once at
// plane creation, then one line per event (campaign submitted, slot report
// accepted, campaign cancelled) in arrival order. Resume replays the file
// and re-admits every unfinished, uncancelled campaign; the single-
// campaign v3 checkpoint (and older) is refused with a version mismatch
// rather than misread.
//
// Crash semantics strengthen the v3 log: the header is created via
// temp-file + rename, each event is one write of one line fsynced before
// the mutation is acknowledged (the v3 checkpoint never synced, so it
// could lose acknowledged shards to an OS crash), a torn trailing line is
// detected and truncated away on load, and a torn or foreign line anywhere
// else refuses the resume rather than silently dropping campaigns.
const journalVersion = 4

// journalHeader is the first line of the file.
type journalHeader struct {
	Version int `json:"version"`
}

// Event kinds.
const (
	evSubmit = "submit"
	evReport = "report"
	evCancel = "cancel"
)

// journalEvent is one line of the journal. Event selects which fields are
// meaningful: submit carries the campaign's spec and admission parameters,
// report carries one accepted slot report, cancel carries only the ID.
type journalEvent struct {
	Event    string `json:"event"`
	Campaign string `json:"campaign"`

	// submit
	Tenant   string         `json:"tenant,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Quota    int            `json:"quota,omitempty"`
	Spec     *campaign.Spec `json:"spec,omitempty"`

	// report
	Slot    int              `json:"slot,omitempty"`
	Retries int              `json:"retries,omitempty"`
	Report  *campaign.Report `json:"report,omitempty"`
}

// journal is an open append handle plus the state recovered on load.
type journal struct {
	f *os.File
	// events holds the replayable history in file order; nil when the file
	// was freshly created.
	events []journalEvent
	loaded bool
}

// openJournal loads (or creates) the interleaved journal at path. A
// missing file starts a fresh control plane: the header is written
// atomically (temp file + rename) so a crash during creation leaves either
// no journal or a valid empty one, never a torn header.
func openJournal(path string) (*journal, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := writeJournalHeader(path); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("controlplane: reading journal: %v", err)
	default:
		jl, err := parseJournal(path, data)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("controlplane: opening journal for append: %v", err)
		}
		jl.f = f
		return jl, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: opening journal for append: %v", err)
	}
	return &journal{f: f}, nil
}

func writeJournalHeader(path string) error {
	hdr, err := json.Marshal(journalHeader{Version: journalVersion})
	if err != nil {
		return fmt.Errorf("controlplane: encoding journal header: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("controlplane: journal dir: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(hdr, '\n'), 0o644); err != nil {
		return fmt.Errorf("controlplane: writing journal header: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("controlplane: committing journal header: %v", err)
	}
	return nil
}

// parseJournal validates an existing journal and recovers its events. A
// trailing line that does not parse or does not validate against the
// campaigns submitted so far is a torn append from a crash: it is dropped
// and the file truncated to the last good line. A bad line anywhere else
// is corruption and refuses the resume.
func parseJournal(path string, data []byte) (*journal, error) {
	lines := bytes.Split(data, []byte{'\n'})
	// A well-formed file ends in '\n', leaving one empty trailing element.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("controlplane: journal %s is empty", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("controlplane: decoding journal %s header: %v", path, err)
	}
	if hdr.Version != journalVersion {
		return nil, fmt.Errorf("controlplane: journal %s has version %d, want %d (v3 and older are single-campaign coordinator checkpoints — they do not resume on a control plane)",
			path, hdr.Version, journalVersion)
	}

	jl := &journal{loaded: true}
	// specs tracks submitted campaigns so report/cancel events can be
	// validated in stream order: an event naming a campaign the journal
	// never admitted is foreign — it cannot have been written by a plane
	// appending to this file.
	specs := make(map[string]campaign.Spec)
	goodBytes := len(lines[0]) + 1
	for i, line := range lines[1:] {
		e, err := validateEvent(line, specs)
		if err != nil {
			// Only an unparseable *last* line can be a torn append: a write
			// cut short never leaves valid JSON (every proper prefix of a
			// JSON object is invalid), so a line that parses but fails
			// validation — foreign campaign, out-of-range slot, duplicate
			// submission — is corruption wherever it sits, and refuses the
			// resume rather than silently dropping an event.
			var torn tornLineError
			if i == len(lines)-2 && errors.As(err, &torn) {
				if terr := os.Truncate(path, int64(goodBytes)); terr != nil {
					return nil, fmt.Errorf("controlplane: truncating torn journal tail: %v", terr)
				}
				break
			}
			return nil, fmt.Errorf("controlplane: journal %s event %d: %v", path, i, err)
		}
		jl.events = append(jl.events, *e)
		goodBytes += len(line) + 1
	}
	return jl, nil
}

// tornLineError marks a line that failed to decode at all — the only
// failure shape a crash mid-append can produce.
type tornLineError struct{ err error }

func (e tornLineError) Error() string { return e.err.Error() }

// validateEvent parses one journal line against the campaigns admitted so
// far, updating specs on submissions.
func validateEvent(line []byte, specs map[string]campaign.Spec) (*journalEvent, error) {
	var e journalEvent
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, tornLineError{fmt.Errorf("undecodable: %v", err)}
	}
	if e.Campaign == "" {
		return nil, fmt.Errorf("missing campaign ID")
	}
	switch e.Event {
	case evSubmit:
		if e.Spec == nil {
			return nil, fmt.Errorf("submission of %s has no spec", e.Campaign)
		}
		if _, dup := specs[e.Campaign]; dup {
			return nil, fmt.Errorf("campaign %s submitted twice", e.Campaign)
		}
		spec := *e.Spec
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("submission of %s: %v", e.Campaign, err)
		}
		specs[e.Campaign] = spec
	case evReport:
		spec, known := specs[e.Campaign]
		if !known {
			return nil, fmt.Errorf("report for foreign campaign %s", e.Campaign)
		}
		if e.Slot < 0 || e.Slot >= spec.Slots() {
			return nil, fmt.Errorf("campaign %s slot %d out of range [0,%d)", e.Campaign, e.Slot, spec.Slots())
		}
		if e.Report == nil {
			return nil, fmt.Errorf("campaign %s slot %d has no report", e.Campaign, e.Slot)
		}
	case evCancel:
		if _, known := specs[e.Campaign]; !known {
			return nil, fmt.Errorf("cancel of foreign campaign %s", e.Campaign)
		}
	default:
		return nil, fmt.Errorf("unknown event %q", e.Event)
	}
	return &e, nil
}

// append durably records one event as a single journal line, fsynced
// before returning: an acknowledged submission or accepted report
// survives not just SIGKILL but OS crash and power loss. Events are
// shard-granular (one per submit/report/cancel, never per injection), so
// the sync is far off the hot path.
func (jl *journal) append(e journalEvent) error {
	if jl == nil || jl.f == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("controlplane: encoding journal event: %v", err)
	}
	w := bufio.NewWriterSize(jl.f, len(line)+1)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("controlplane: appending journal event: %v", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("controlplane: syncing journal event: %v", err)
	}
	return nil
}

// Close releases the append handle.
func (jl *journal) Close() error {
	if jl == nil || jl.f == nil {
		return nil
	}
	return jl.f.Close()
}
