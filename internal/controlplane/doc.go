// Package controlplane is the multi-tenant campaign service layer: where
// internal/campaign's Coordinator serves exactly one campaign per process,
// a Plane owns a persistent queue of many campaigns, schedules shard
// leases across one shared worker fleet with priority-weighted fair-share
// (deficit round-robin over active campaigns, per-campaign in-flight
// quotas), authenticates tenants with HMAC bearer tokens, and fans each
// campaign's NDJSON result stream out to many concurrent subscribers.
//
// Authorization separates two roles. Campaign routes are tenant-scoped:
// a tenant lists, reads, streams and cancels only its own campaigns.
// Fleet routes (lease, heartbeat, report) accept only the reserved
// "fleet" worker principal, and a report is merged only when its lease
// was actually granted for that slot — tenants can neither pull other
// tenants' shard leases (whose specs they would otherwise see) nor
// inject fabricated reports into other tenants' campaigns.
//
// Durability is a single append-only journal (checkpoint v4) that
// interleaves every campaign's events — submissions, slot reports,
// cancellations — in one file. A control plane restarted on the same
// journal re-admits every unfinished campaign and resumes scheduling,
// including stratified campaigns killed between their pilot and main
// phases: the Neyman allocation table is a pure function of the journaled
// pilot reports, so the resumed plane rebuilds it bit-identically.
//
// Bit-identity is inherited from the campaign layer and preserved under
// interleaving: each campaign owns a private campaign.Machine whose
// slot-order merge is exactly the solo association, so the final report of
// every campaign on a shared fleet is byte-identical to its
// campaign.SoloReport run — regardless of how many campaigns ran
// concurrently, how the scheduler interleaved their leases, or how many
// times the plane was killed and resumed.
package controlplane
