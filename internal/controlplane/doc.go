// Package controlplane is the multi-tenant campaign service layer: where
// internal/campaign's Coordinator serves exactly one campaign per process,
// a Plane owns a persistent queue of many campaigns, schedules shard
// leases across one shared worker fleet with priority-weighted fair-share
// (deficit round-robin over active campaigns, per-campaign in-flight
// quotas), authenticates tenants with HMAC bearer tokens, and fans each
// campaign's NDJSON result stream out to many concurrent subscribers.
//
// Authorization separates two roles. Campaign routes are tenant-scoped:
// a tenant lists, reads, streams and cancels only its own campaigns.
// Fleet routes (lease, heartbeat, report) accept only the reserved
// "fleet" worker principal, and a report is merged only when its lease
// was actually granted for that slot — tenants can neither pull other
// tenants' shard leases (whose specs they would otherwise see) nor
// inject fabricated reports into other tenants' campaigns.
//
// Durability is a single append-only journal (checkpoint v5, reads v4)
// that interleaves every campaign's events — submissions, slot reports,
// cancellations — in one file. Appends are group-committed: concurrent
// events coalesce into one buffered write and a single fsync, and every
// ack is released only after the batch that contains it is durable, so
// an acked submit or report survives kill -9 while the fsync rate stays
// bounded by the batch rate, not the event rate. The journal is
// compacted on restart and past a size threshold: live campaign state is
// rewritten as an atomic snapshot (tmp + fsync + rename), terminal
// campaigns' events are retired, and a crash at any byte of the rewrite
// recovers to either the old journal or the new snapshot, never a
// hybrid. A control plane restarted on the same journal re-admits every
// unfinished campaign and resumes scheduling, including stratified
// campaigns killed between their pilot and main phases: the Neyman
// allocation table is a pure function of the journaled pilot reports, so
// the resumed plane rebuilds it bit-identically.
//
// The fleet path is pipelined: a worker asks for up to max leases per
// lease roundtrip and delivers finished shard results in batches via the
// reports route, while the scheduler grants from an incremental
// deficit-round-robin ring — O(1) typical, O(active campaigns) worst —
// and never holds its lock across an fsync.
//
// Bit-identity is inherited from the campaign layer and preserved under
// interleaving: each campaign owns a private campaign.Machine whose
// slot-order merge is exactly the solo association, so the final report of
// every campaign on a shared fleet is byte-identical to its
// campaign.SoloReport run — regardless of how many campaigns ran
// concurrently, how the scheduler interleaved their leases, or how many
// times the plane was killed and resumed.
package controlplane
