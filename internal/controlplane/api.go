package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/campaign"
)

// SubmitRequest is the body of POST /v1/campaigns.
type SubmitRequest struct {
	Spec     campaign.Spec `json:"spec"`
	Priority int           `json:"priority,omitempty"`
	Quota    int           `json:"quota,omitempty"`
}

// tenantKeyCtx carries the authenticated tenant through the middleware.
type ctxKey struct{}

// devTenant is who every caller is when authentication is disabled.
const devTenant = "local"

// withAuth wraps a handler with bearer-token authentication. With no
// authenticator configured the plane is in loopback dev mode and every
// request proceeds as the "local" tenant; otherwise a missing or invalid
// token is a 401 on every route, mutating or not.
func (p *Plane) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := devTenant
		if p.cfg.Auth != nil {
			raw := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			t, ok := p.cfg.Auth.Verify(raw)
			if !ok {
				noteRejected("")
				http.Error(w, "invalid or missing bearer token", http.StatusUnauthorized)
				return
			}
			tenant = t
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, tenant)))
	})
}

// fleetOnly restricts a fleet route (lease/heartbeat/report) to the
// reserved worker principal when authentication is enabled: a tenant's
// token must not be able to pull other tenants' shard leases (their specs
// ride inside) or inject fabricated reports into their campaigns. Dev
// mode stays open — the loopback fleet is trusted.
func (p *Plane) fleetOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.cfg.Auth != nil && tenantFrom(r) != FleetTenant {
			http.Error(w, "fleet routes require the worker token (tenant \""+FleetTenant+"\")", http.StatusForbidden)
			return
		}
		next(w, r)
	}
}

// tenantOnly is the converse: the worker token carries no tenant
// identity, so it may not submit, cancel or read campaigns.
func (p *Plane) tenantOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.cfg.Auth != nil && tenantFrom(r) == FleetTenant {
			http.Error(w, "the worker token may not access campaign routes", http.StatusForbidden)
			return
		}
		next(w, r)
	}
}

// Handler mounts the control-plane API:
//
//	POST /v1/campaigns              submit one campaign      -> Status (201)
//	GET  /v1/campaigns              list all campaigns       -> []Status
//	GET  /v1/campaigns/{id}         one campaign             -> Status
//	POST /v1/campaigns/{id}/cancel  cancel                   -> 204
//	GET  /v1/campaigns/{id}/stream  NDJSON Status per shard
//	GET  /v1/campaigns/{id}/report  final merged report (solo-identical bytes)
//	POST /v1/lease                  worker shard lease(s)    -> campaign.LeaseResponse
//	                                (body {"max":N} batches up to N grants)
//	POST /v1/heartbeat              extend a lease           -> 204 / 410
//	POST /v1/report                 deliver a shard report   -> 204
//	POST /v1/reports                deliver a report batch   -> campaign.ReportBatchResponse
//	GET  /debug/vars                expvar metrics
//	GET  /debug/pprof/              profiling (only with Config.Pprof)
//
// All /v1 routes sit behind bearer-token authentication when Config.Auth
// is set; /debug stays unauthenticated like the coordinator's. Roles are
// separated on top of authentication: campaign routes are tenant-scoped
// (listing shows only the caller's campaigns; get/cancel/stream/report
// are owner-checked), while the fleet routes accept only the reserved
// "fleet" worker token and vice versa.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/campaigns", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			noteRejected(tenantFrom(r))
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := p.Submit(tenantFrom(r), req.Spec, req.Priority, req.Quota)
		if err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, st)
	}))
	mux.HandleFunc("GET /v1/campaigns", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.List(tenantFrom(r)))
	}))
	mux.HandleFunc("GET /v1/campaigns/{id}", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		st, err := p.Get(tenantFrom(r), r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, st)
	}))
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		if err := p.Cancel(tenantFrom(r), r.PathValue("id")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /v1/campaigns/{id}/report", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		data, err := p.FinalReportJSON(tenantFrom(r), r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		// No trailing newline: the body must byte-compare against a solo
		// run's -out file.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}))
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", p.tenantOnly(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		id := r.PathValue("id")
		ch, done, err := p.subscribe(tenantFrom(r), id)
		if err != nil {
			httpError(w, err)
			return
		}
		defer p.unsubscribe(id, ch)
		w.Header().Set("Content-Type", "application/x-ndjson")
		// last remembers the previous line written so the drain path does
		// not emit the terminal status twice: a finished stream usually has
		// the terminal broadcast already queued in ch, and the closing
		// statusJSON is only a fallback for subscribers whose buffer
		// dropped it.
		var last []byte
		for {
			select {
			case line := <-ch:
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				fl.Flush()
				last = line
			case <-done:
				// Drain anything queued, emit the terminal state once, and
				// end the stream so curl-style consumers terminate cleanly.
				for {
					select {
					case line := <-ch:
						w.Write(append(line, '\n'))
						last = line
					default:
						if line := p.statusJSON(id); line != nil && !bytes.Equal(line, last) {
							w.Write(append(line, '\n'))
						}
						fl.Flush()
						return
					}
				}
			case <-r.Context().Done():
				return
			}
		}
	}))

	mux.HandleFunc("POST /v1/lease", p.fleetOnly(func(w http.ResponseWriter, r *http.Request) {
		// Tolerate empty bodies: pre-batching workers POST "{}" or nothing.
		var req campaign.LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		writeJSON(w, p.leaseBatch(time.Now(), req.Max))
	}))
	mux.HandleFunc("POST /v1/heartbeat", p.fleetOnly(func(w http.ResponseWriter, r *http.Request) {
		var req campaign.HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !p.heartbeat(req, time.Now()) {
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("POST /v1/report", p.fleetOnly(func(w http.ResponseWriter, r *http.Request) {
		var req campaign.ReportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := p.report(req); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("POST /v1/reports", p.fleetOnly(func(w http.ResponseWriter, r *http.Request) {
		var req campaign.ReportBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		errs := p.reportBatch(req.Reports)
		resp := campaign.ReportBatchResponse{Results: make([]campaign.ReportOutcome, len(errs))}
		for i, err := range errs {
			if err == nil {
				continue
			}
			var pe planeError
			if errors.As(err, &pe) {
				resp.Results[i] = campaign.ReportOutcome{Code: pe.code, Error: pe.msg}
			} else {
				resp.Results[i] = campaign.ReportOutcome{Code: http.StatusBadRequest, Error: err.Error()}
			}
		}
		writeJSON(w, resp)
	}))

	root := http.NewServeMux()
	root.Handle("/v1/", p.withAuth(mux))
	root.Handle("GET /debug/vars", expvar.Handler())
	if p.cfg.Pprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return root
}

func tenantFrom(r *http.Request) string {
	if t, ok := r.Context().Value(ctxKey{}).(string); ok {
		return t
	}
	return devTenant
}

// httpError maps plane errors to their HTTP status; anything untyped is a
// 400 (validation failure).
func httpError(w http.ResponseWriter, err error) {
	var pe planeError
	if errors.As(err, &pe) {
		http.Error(w, pe.msg, pe.code)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
