package controlplane

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Campaign lifecycle states.
const (
	StateActive    = "active"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Priority bounds: a campaign's priority is its deficit-round-robin
// quantum — the number of consecutive leases it may draw per scheduler
// visit — so shares are proportional to priority and bounded enough that
// no tenant can starve the ring.
const (
	MinPriority = 1
	MaxPriority = 16
)

// Config configures a control plane.
type Config struct {
	// JournalPath, when set, is the interleaved v4 journal the plane
	// appends every event to; a plane restarted on the same path re-admits
	// every unfinished campaign.
	JournalPath string
	// LeaseTTL is how long a worker may hold a shard without heartbeating
	// before the shard is re-leased. Default 30s.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one slot may be re-leased after
	// expiry before its campaign is declared failed. Default 3.
	MaxRetries int
	// Auth, when non-nil, requires a valid tenant bearer token on every
	// /v1 request. Nil is loopback dev mode: no tokens, every caller is
	// the "local" tenant.
	Auth *Authenticator
	// DefaultQuota is the per-campaign in-flight lease cap applied when a
	// submission does not set one. 0 = unlimited.
	DefaultQuota int
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// camp is one queued campaign: its state machine plus admission metadata
// and scheduling state.
type camp struct {
	id       string
	tenant   string
	priority int
	quota    int
	state    string
	m        *campaign.Machine

	// deficit is the campaign's remaining deficit-round-robin balance: the
	// number of further leases it may draw before the scheduler cursor
	// moves on. Refilled to priority when the cursor arrives with none.
	deficit int

	subs map[chan []byte]struct{}
	// done closes when the campaign reaches a terminal state; stream
	// handlers use it to end their response.
	done chan struct{}
}

func (c *camp) terminal() bool { return c.state != StateActive }

// Status is the public view of one queued campaign — the control plane's
// listing entry and NDJSON stream line.
type Status struct {
	ID       string            `json:"id"`
	Tenant   string            `json:"tenant,omitempty"`
	Priority int               `json:"priority"`
	Quota    int               `json:"quota,omitempty"`
	State    string            `json:"state"`
	InFlight int               `json:"in_flight"`
	Snapshot campaign.Snapshot `json:"snapshot"`
}

// Plane is the multi-campaign control plane: a persistent campaign queue,
// a fair-share scheduler handing shard leases of many campaigns to one
// worker fleet, and per-campaign result fanout.
type Plane struct {
	cfg Config

	mu     sync.Mutex
	jl     *journal
	seq    int
	camps  map[string]*camp
	order  []string // submission order, for listing
	ring   []string // active campaigns, scheduler order
	cursor int
	closed bool
}

// New opens (or creates) the journal and returns a plane ready to serve.
// Every unfinished, uncancelled campaign recorded in the journal is
// re-admitted and scheduled again; completed ones stay queryable with
// their final reports.
func New(cfg Config) (*Plane, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	p := &Plane{cfg: cfg, camps: make(map[string]*camp)}
	if cfg.JournalPath != "" {
		jl, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		p.jl = jl
		for i := range jl.events {
			if err := p.replay(&jl.events[i]); err != nil {
				return nil, fmt.Errorf("controlplane: journal %s: %v", cfg.JournalPath, err)
			}
		}
		jl.events = nil
	}
	// Settle terminal states and build the scheduling ring.
	for _, id := range p.order {
		c := p.camps[id]
		if c.state == StateActive && c.m.Done() {
			c.state = StateDone
		}
		if c.terminal() {
			close(c.done)
		} else {
			p.ring = append(p.ring, id)
		}
	}
	setQueueDepth(len(p.ring))
	return p, nil
}

// replay applies one journal event during New. Events were validated
// structurally by the journal parser; machine-level validation (report
// surface, duplicate slots) happens here.
func (p *Plane) replay(e *journalEvent) error {
	switch e.Event {
	case evSubmit:
		m, err := campaign.NewMachine(*e.Spec, p.cfg.MaxRetries)
		if err != nil {
			return fmt.Errorf("re-admitting %s: %v", e.Campaign, err)
		}
		p.camps[e.Campaign] = &camp{
			id:       e.Campaign,
			tenant:   e.Tenant,
			priority: clampPriority(e.Priority),
			quota:    e.Quota,
			state:    StateActive,
			m:        m,
			subs:     make(map[chan []byte]struct{}),
			done:     make(chan struct{}),
		}
		p.order = append(p.order, e.Campaign)
		var n int
		if _, err := fmt.Sscanf(e.Campaign, "c%d", &n); err == nil && n > p.seq {
			p.seq = n
		}
	case evReport:
		// A resume that lands past a stratified campaign's
		// pilot→allocation boundary rebuilds the exact table the pre-crash
		// plane leased from: Restore replays pilot reports in journal
		// order and the table is a pure function of them.
		if err := p.camps[e.Campaign].m.Restore(e.Slot, e.Retries, e.Report); err != nil {
			return fmt.Errorf("restoring %s slot %d: %v", e.Campaign, e.Slot, err)
		}
	case evCancel:
		p.camps[e.Campaign].state = StateCancelled
	}
	return nil
}

// Close releases the journal append handle. The plane must not accept
// further mutations after Close.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return p.jl.Close()
}

func clampPriority(pr int) int {
	if pr < MinPriority {
		return MinPriority
	}
	if pr > MaxPriority {
		return MaxPriority
	}
	return pr
}

// Submit validates and admits one campaign for tenant, journals it, and
// returns its assigned ID. priority is clamped to [MinPriority,
// MaxPriority]; quota 0 inherits Config.DefaultQuota (0 = unlimited).
func (p *Plane) Submit(tenant string, spec campaign.Spec, priority, quota int) (Status, error) {
	m, err := campaign.NewMachine(spec, p.cfg.MaxRetries)
	if err != nil {
		noteRejected(tenant)
		return Status{}, err
	}
	if quota <= 0 {
		quota = p.cfg.DefaultQuota
	}
	priority = clampPriority(priority)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		noteRejected(tenant)
		return Status{}, fmt.Errorf("controlplane: plane is closed")
	}
	p.seq++
	id := fmt.Sprintf("c%d", p.seq)
	// Durable before acknowledged: the submission is journaled first, so
	// an ID returned to the tenant survives any later crash.
	if err := p.jl.append(journalEvent{
		Event: evSubmit, Campaign: id,
		Tenant: tenant, Priority: priority, Quota: quota,
		Spec: ptr(m.Spec()),
	}); err != nil {
		noteRejected(tenant)
		return Status{}, err
	}
	c := &camp{
		id: id, tenant: tenant, priority: priority, quota: quota,
		state: StateActive, m: m,
		subs: make(map[chan []byte]struct{}),
		done: make(chan struct{}),
	}
	p.camps[id] = c
	p.order = append(p.order, id)
	p.ring = append(p.ring, id)
	noteSubmitted(tenant)
	setQueueDepth(len(p.ring))
	return p.statusLocked(c), nil
}

func ptr[T any](v T) *T { return &v }

// Cancel moves a campaign to the cancelled state: its remaining slots are
// never leased again, outstanding leases die at their next heartbeat, and
// late reports are dropped. Owner-checked when the plane authenticates
// tenants; idempotent for already-cancelled campaigns.
func (p *Plane) Cancel(tenant, id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return err
	}
	switch c.state {
	case StateCancelled:
		return nil
	case StateDone, StateFailed:
		return errConflict(fmt.Sprintf("campaign %s already %s", id, c.state))
	}
	if err := p.jl.append(journalEvent{Event: evCancel, Campaign: id}); err != nil {
		return err
	}
	c.state = StateCancelled
	close(c.done)
	p.dropFromRing(id)
	p.broadcastLocked(c)
	return nil
}

// authzLocked is the per-campaign ownership check every tenant-facing
// accessor shares: with authentication enabled, only the submitting
// tenant may see or mutate a campaign. In loopback dev mode (no
// authenticator) every caller is trusted.
func (p *Plane) authzLocked(c *camp, tenant string) error {
	if p.cfg.Auth != nil && c.tenant != tenant {
		return errForbidden(c.id)
	}
	return nil
}

// dropFromRing removes id from the scheduling ring, keeping the cursor on
// the same neighbor so fair-share rotation is unaffected.
func (p *Plane) dropFromRing(id string) {
	for i, rid := range p.ring {
		if rid != id {
			continue
		}
		p.ring = append(p.ring[:i], p.ring[i+1:]...)
		if p.cursor > i {
			p.cursor--
		}
		if len(p.ring) > 0 {
			p.cursor %= len(p.ring)
		} else {
			p.cursor = 0
		}
		break
	}
	setQueueDepth(len(p.ring))
}

// finishLocked retires an active campaign into a terminal state.
func (p *Plane) finishLocked(c *camp, state string) {
	if c.terminal() {
		return
	}
	c.state = state
	close(c.done)
	p.dropFromRing(c.id)
	p.broadcastLocked(c)
}

// expireLocked sweeps every active campaign's lease deadlines, failing
// campaigns whose slots ran out of retries.
func (p *Plane) expireLocked(now time.Time) {
	for _, id := range p.order {
		c := p.camps[id]
		if c.terminal() {
			continue
		}
		noteLeaseExpired(id, c.m.Expire(now))
		if c.m.Err() != nil {
			p.finishLocked(c, StateFailed)
		}
	}
}

// lease is the fleet-facing shard hand-out: deficit round-robin over the
// active campaigns. Each campaign's priority is its quantum — when the
// cursor arrives with an empty deficit it refills to priority and the
// campaign draws up to that many consecutive leases before the cursor
// moves on — so long-run shares are proportional to priority, every
// active campaign is visited once per ring cycle (no starvation), and a
// campaign at its in-flight quota or with nothing leasable is skipped
// without banking credit.
//
// Unlike the single-campaign coordinator, the fleet is never "done" and a
// failed campaign never poisons it: workers poll for as long as the plane
// serves, and campaign-terminal states are per-campaign.
func (p *Plane) lease(now time.Time) campaign.LeaseResponse {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(now)
	for visits := 0; visits < len(p.ring); visits++ {
		if p.cursor >= len(p.ring) {
			p.cursor = 0
		}
		c := p.camps[p.ring[p.cursor]]
		underQuota := c.quota <= 0 || c.m.InFlight() < c.quota
		if !underQuota || !c.m.Available() {
			// Nothing to serve here right now: forfeit any banked deficit
			// (DRR resets credit when the queue is empty) and move on.
			c.deficit = 0
			p.cursor = (p.cursor + 1) % len(p.ring)
			continue
		}
		if c.deficit <= 0 {
			c.deficit = c.priority
		}
		l := c.m.Lease(now, p.cfg.LeaseTTL)
		l.Campaign = c.id
		noteLeaseGranted(c.id)
		c.deficit--
		if c.deficit <= 0 {
			p.cursor = (p.cursor + 1) % len(p.ring)
		}
		return campaign.LeaseResponse{Lease: l}
	}
	// Nothing leasable anywhere: ask the worker to poll at a fraction of
	// the TTL so expiries and new submissions are noticed promptly.
	retry := p.cfg.LeaseTTL / 4
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return campaign.LeaseResponse{RetryMillis: retry.Milliseconds()}
}

// heartbeat extends a live lease. False tells the worker to abandon the
// shard: the lease expired and was re-granted, the slot finished, or the
// campaign was cancelled.
func (p *Plane) heartbeat(req campaign.HeartbeatRequest, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(now)
	c, ok := p.camps[req.Campaign]
	if !ok || c.terminal() {
		return false
	}
	return c.m.Heartbeat(req.LeaseID, now, p.cfg.LeaseTTL)
}

// report accepts one finished slot. Reports for cancelled campaigns are
// dropped without error — the worker did honest work against a lease that
// was valid when granted; there is nothing for it to retry. A report
// whose lease was never granted for its slot is refused: Accept itself is
// lease-agnostic (a late delivery from an expired lease is bit-identical
// to the re-leased worker's), so without this check any caller could
// inject a structurally-valid fabricated report and have it merged
// silently.
func (p *Plane) report(req campaign.ReportRequest) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[req.Campaign]
	if !ok {
		return errNotFound(req.Campaign)
	}
	if c.state == StateCancelled || c.state == StateFailed {
		return nil
	}
	if !c.m.LeaseEverGranted(req.LeaseID, req.Shard) {
		return planeError{403, fmt.Sprintf("controlplane: campaign %s never granted lease %q for slot %d", c.id, req.LeaseID, req.Shard)}
	}
	first, err := c.m.Accept(req.Shard, req.Report)
	if err != nil || !first {
		return err
	}
	noteShardDone(c.id)
	jlErr := p.jl.append(journalEvent{
		Event: evReport, Campaign: c.id,
		Slot: req.Shard, Retries: c.m.SlotRetries(req.Shard), Report: req.Report,
	})
	p.broadcastLocked(c)
	if c.m.Done() {
		p.finishLocked(c, StateDone)
	}
	return jlErr
}

func (p *Plane) statusLocked(c *camp) Status {
	return Status{
		ID:       c.id,
		Tenant:   c.tenant,
		Priority: c.priority,
		Quota:    c.quota,
		State:    c.state,
		InFlight: c.m.InFlight(),
		Snapshot: c.m.Snapshot(),
	}
}

// List returns the tenant's campaigns' statuses in submission order —
// every campaign in loopback dev mode, only the caller's own when the
// plane authenticates tenants.
func (p *Plane) List(tenant string) []Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Status, 0, len(p.order))
	for _, id := range p.order {
		c := p.camps[id]
		if p.authzLocked(c, tenant) != nil {
			continue
		}
		out = append(out, p.statusLocked(c))
	}
	return out
}

// Active counts campaigns still schedulable (for operator logging; not
// tenant-scoped, unlike List).
func (p *Plane) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ring)
}

// Get returns one campaign's status. Owner-checked like Cancel when the
// plane authenticates tenants.
func (p *Plane) Get(tenant, id string) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return Status{}, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return Status{}, err
	}
	return p.statusLocked(c), nil
}

// FinalReportJSON returns the finished campaign's merged report as the
// inner surface report, indented — byte-identical to what a solo
// faultserve run of the same spec writes with -out, which is what makes
// shared-fleet results directly byte-comparable against solo baselines.
// Owner-checked like Cancel when the plane authenticates tenants.
func (p *Plane) FinalReportJSON(tenant, id string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return nil, err
	}
	if c.state == StateCancelled {
		return nil, errConflict(fmt.Sprintf("campaign %s was cancelled", id))
	}
	r, err := c.m.FinalReport()
	if err != nil {
		return nil, errConflict(err.Error())
	}
	var inner any = r.Datapath
	if r.Buffer != nil {
		inner = r.Buffer
	}
	return json.MarshalIndent(inner, "", "  ")
}

// broadcastLocked fans the campaign's current status out to its stream
// subscribers; a stalled reader must not block report intake.
func (p *Plane) broadcastLocked(c *camp) {
	line, err := json.Marshal(p.statusLocked(c))
	if err != nil {
		return
	}
	for ch := range c.subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// subscribe attaches a stream reader to a campaign. The returned done
// channel closes when the campaign reaches a terminal state.
// Owner-checked like Cancel when the plane authenticates tenants.
func (p *Plane) subscribe(tenant, id string) (ch chan []byte, done <-chan struct{}, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil, nil, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return nil, nil, err
	}
	ch = make(chan []byte, 16)
	line, _ := json.Marshal(p.statusLocked(c))
	c.subs[ch] = struct{}{}
	ch <- line
	return ch, c.done, nil
}

func (p *Plane) unsubscribe(id string, ch chan []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.camps[id]; ok {
		delete(c.subs, ch)
	}
}

// statusJSON returns the marshaled current status (for ending streams).
func (p *Plane) statusJSON(id string) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil
	}
	line, _ := json.Marshal(p.statusLocked(c))
	return line
}

// Typed errors the API layer maps onto HTTP statuses.

type planeError struct {
	code int // http status
	msg  string
}

func (e planeError) Error() string { return e.msg }

func errNotFound(id string) error {
	return planeError{404, fmt.Sprintf("controlplane: unknown campaign %q", id)}
}
func errForbidden(id string) error {
	return planeError{403, fmt.Sprintf("controlplane: campaign %q belongs to another tenant", id)}
}
func errConflict(msg string) error { return planeError{409, msg} }
