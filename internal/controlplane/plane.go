package controlplane

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Campaign lifecycle states.
const (
	StateActive    = "active"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Priority bounds: a campaign's priority is its deficit-round-robin
// quantum — the number of consecutive leases it may draw per scheduler
// visit — so shares are proportional to priority and bounded enough that
// no tenant can starve the ring.
const (
	MinPriority = 1
	MaxPriority = 16
)

// Config configures a control plane.
type Config struct {
	// JournalPath, when set, is the interleaved v5 journal the plane
	// appends every event to (group-committed; see journal.go); a plane
	// restarted on the same path re-admits every unfinished campaign.
	// v4 journals are read and upgraded on load.
	JournalPath string
	// LeaseTTL is how long a worker may hold a shard without heartbeating
	// before the shard is re-leased. Default 30s.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one slot may be re-leased after
	// expiry before its campaign is declared failed. Default 3.
	MaxRetries int
	// Auth, when non-nil, requires a valid tenant bearer token on every
	// /v1 request. Nil is loopback dev mode: no tokens, every caller is
	// the "local" tenant.
	Auth *Authenticator
	// DefaultQuota is the per-campaign in-flight lease cap applied when a
	// submission does not set one. 0 = unlimited.
	DefaultQuota int
	// MaxQueuedPerTenant caps how many campaigns one tenant may have
	// active (queued or running) at once; submissions past the cap are
	// refused with HTTP 429. 0 = unlimited.
	MaxQueuedPerTenant int
	// CompactBytes, when positive, compacts the journal once it grows past
	// this size (and past twice its last compacted size, so a threshold
	// smaller than the live state cannot thrash). Load-time compaction —
	// retiring terminal campaigns' events after a restart — runs
	// regardless. 0 disables size-triggered compaction.
	CompactBytes int64
	// FsyncPerAppend reverts the journal to the v4 policy of one fsync per
	// event — the measured baseline for group commit, kept for
	// `benchtrack -mode plane -baseline`. Durability is identical; only
	// the amortization differs.
	FsyncPerAppend bool
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// camp is one queued campaign: its state machine plus admission metadata
// and scheduling state.
type camp struct {
	id       string
	tenant   string
	priority int
	quota    int
	state    string
	m        *campaign.Machine

	// deficit is the campaign's remaining deficit-round-robin balance: the
	// number of further leases it may draw before the scheduler cursor
	// moves on. Refilled to priority when the cursor arrives with none.
	deficit int

	subs map[chan []byte]struct{}
	// done closes when the campaign reaches a terminal state; stream
	// handlers use it to end their response.
	done chan struct{}
}

func (c *camp) terminal() bool { return c.state != StateActive }

// Status is the public view of one queued campaign — the control plane's
// listing entry and NDJSON stream line.
type Status struct {
	ID       string            `json:"id"`
	Tenant   string            `json:"tenant,omitempty"`
	Priority int               `json:"priority"`
	Quota    int               `json:"quota,omitempty"`
	State    string            `json:"state"`
	InFlight int               `json:"in_flight"`
	Snapshot campaign.Snapshot `json:"snapshot"`
}

// Plane is the multi-campaign control plane: a persistent campaign queue,
// a fair-share scheduler handing shard leases of many campaigns to one
// worker fleet, and per-campaign result fanout.
type Plane struct {
	cfg Config

	mu     sync.Mutex
	jl     *journal
	seq    int
	camps  map[string]*camp
	order  []string // submission order, for listing
	ring   []string // active campaigns, scheduler order
	cursor int
	closed bool
	// activeByTenant counts each tenant's non-terminal campaigns, for the
	// per-tenant queue cap.
	activeByTenant map[string]int
}

// New opens (or creates) the journal and returns a plane ready to serve.
// Every unfinished, uncancelled campaign recorded in the journal is
// re-admitted and scheduled again; completed ones stay queryable with
// their final reports.
func New(cfg Config) (*Plane, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	p := &Plane{
		cfg:            cfg,
		camps:          make(map[string]*camp),
		activeByTenant: make(map[string]int),
	}
	if cfg.JournalPath != "" {
		jl, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		p.jl = jl
		for i := range jl.events {
			if err := p.replay(&jl.events[i]); err != nil {
				return nil, fmt.Errorf("controlplane: journal %s: %v", cfg.JournalPath, err)
			}
		}
		jl.events = nil
	}
	// Settle terminal states and build the scheduling ring.
	anyTerminal := false
	for _, id := range p.order {
		c := p.camps[id]
		if c.state == StateActive && c.m.Done() {
			c.state = StateDone
		}
		if c.terminal() {
			close(c.done)
			anyTerminal = true
		} else {
			p.ring = append(p.ring, id)
			p.activeByTenant[c.tenant]++
		}
	}
	setQueueDepth(len(p.ring))
	if p.jl != nil {
		// Header seq (v5) survives compaction; replayed campaign IDs cover
		// v4 files and pre-compaction tails.
		if p.jl.seq > p.seq {
			p.seq = p.jl.seq
		}
		p.jl.perAppend = cfg.FsyncPerAppend
		p.jl.compactAt = cfg.CompactBytes
		p.jl.snapshot = p.compactionSnapshot
		// Load-time compaction retires terminal campaigns' events (bounding
		// the file across restarts) and rewrites v4 journals as v5. Note
		// retired campaigns are dropped entirely: they stop being queryable
		// after the *next* restart, which is the documented trade for a
		// bounded journal.
		if p.jl.loaded && (anyTerminal || p.jl.version == journalVersionV4) {
			p.jl.compact()
			if err := p.jl.err; err != nil {
				return nil, err
			}
		}
		p.jl.start()
	}
	return p, nil
}

// replay applies one journal event during New. Events were validated
// structurally by the journal parser; machine-level validation (report
// surface, duplicate slots) happens here.
func (p *Plane) replay(e *journalEvent) error {
	switch e.Event {
	case evSubmit:
		m, err := campaign.NewMachine(*e.Spec, p.cfg.MaxRetries)
		if err != nil {
			return fmt.Errorf("re-admitting %s: %v", e.Campaign, err)
		}
		p.camps[e.Campaign] = &camp{
			id:       e.Campaign,
			tenant:   e.Tenant,
			priority: clampPriority(e.Priority),
			quota:    e.Quota,
			state:    StateActive,
			m:        m,
			subs:     make(map[chan []byte]struct{}),
			done:     make(chan struct{}),
		}
		p.order = append(p.order, e.Campaign)
		var n int
		if _, err := fmt.Sscanf(e.Campaign, "c%d", &n); err == nil && n > p.seq {
			p.seq = n
		}
	case evReport:
		// A resume that lands past a stratified campaign's
		// pilot→allocation boundary rebuilds the exact table the pre-crash
		// plane leased from: Restore replays pilot reports in journal
		// order and the table is a pure function of them.
		if err := p.camps[e.Campaign].m.Restore(e.Slot, e.Retries, e.Report); err != nil {
			return fmt.Errorf("restoring %s slot %d: %v", e.Campaign, e.Slot, err)
		}
	case evCancel:
		p.camps[e.Campaign].state = StateCancelled
	}
	return nil
}

// Close drains the journal committer (pending batches still commit) and
// releases the append handle. The plane must not accept further mutations
// after Close.
func (p *Plane) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	// Outside p.mu: the committer may be mid-compaction, which takes p.mu
	// for its state snapshot.
	return p.jl.Close()
}

// Compact synchronously rewrites the journal as the minimal event history
// of the live campaigns, retiring terminal campaigns' events. No-op
// without a journal.
func (p *Plane) Compact() error {
	return p.jl.forceCompact()
}

// JournalStats returns this plane's journal hot-path counters (zero
// without a journal).
func (p *Plane) JournalStats() JournalStats {
	return p.jl.Stats()
}

// compactionSnapshot assembles, under the plane lock, the minimal event
// history equivalent to the live campaign state: one submit plus one
// report per finished slot for each non-terminal campaign, in submission
// order. It also steals the journal's uncommitted batch — those events'
// mutations are already visible in the state being snapshotted, so
// writing both the snapshot and the batch would duplicate them; the
// stolen batch is acknowledged when the snapshot lands.
func (p *Plane) compactionSnapshot() (int, []*journalEvent, *commitBatch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var stolen *commitBatch
	if p.jl != nil {
		p.jl.mu.Lock()
		stolen = p.jl.batch
		p.jl.buf, p.jl.batch = nil, nil
		p.jl.mu.Unlock()
	}
	var events []*journalEvent
	for _, id := range p.order {
		c := p.camps[id]
		if c.terminal() {
			continue
		}
		events = append(events, &journalEvent{
			Event: evSubmit, Campaign: c.id,
			Tenant: c.tenant, Priority: c.priority, Quota: c.quota,
			Spec: ptr(c.m.Spec()),
		})
		for s := 0; s < c.m.Spec().Slots(); s++ {
			if r := c.m.SlotReport(s); r != nil {
				events = append(events, &journalEvent{
					Event: evReport, Campaign: c.id,
					Slot: s, Retries: c.m.SlotRetries(s), Report: r,
				})
			}
		}
	}
	return p.seq, events, stolen
}

func clampPriority(pr int) int {
	if pr < MinPriority {
		return MinPriority
	}
	if pr > MaxPriority {
		return MaxPriority
	}
	return pr
}

// Submit validates and admits one campaign for tenant, journals it, and
// returns its assigned ID. priority is clamped to [MinPriority,
// MaxPriority]; quota 0 inherits Config.DefaultQuota (0 = unlimited).
func (p *Plane) Submit(tenant string, spec campaign.Spec, priority, quota int) (Status, error) {
	m, err := campaign.NewMachine(spec, p.cfg.MaxRetries)
	if err != nil {
		noteRejected(tenant)
		return Status{}, err
	}
	if quota <= 0 {
		quota = p.cfg.DefaultQuota
	}
	priority = clampPriority(priority)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		noteRejected(tenant)
		return Status{}, fmt.Errorf("controlplane: plane is closed")
	}
	if cap := p.cfg.MaxQueuedPerTenant; cap > 0 && p.activeByTenant[tenant] >= cap {
		p.mu.Unlock()
		noteRejected(tenant)
		noteQueueCapped(tenant)
		return Status{}, planeError{429, fmt.Sprintf(
			"controlplane: tenant %q has %d campaigns queued (cap %d); retry after one finishes",
			tenantKey(tenant), cap, cap)}
	}
	p.seq++
	id := fmt.Sprintf("c%d", p.seq)
	// Durable before acknowledged: the submission is admitted and enqueued
	// under the lock, but the ID is returned to the tenant only after the
	// journal batch carrying it is fsynced — the wait happens with the
	// scheduler lock released, so dispatch never stalls behind the disk.
	wait := p.jl.enqueue(journalEvent{
		Event: evSubmit, Campaign: id,
		Tenant: tenant, Priority: priority, Quota: quota,
		Spec: ptr(m.Spec()),
	})
	c := &camp{
		id: id, tenant: tenant, priority: priority, quota: quota,
		state: StateActive, m: m,
		subs: make(map[chan []byte]struct{}),
		done: make(chan struct{}),
	}
	p.camps[id] = c
	p.order = append(p.order, id)
	p.ring = append(p.ring, id)
	p.activeByTenant[tenant]++
	noteSubmitted(tenant)
	setQueueDepth(len(p.ring))
	st := p.statusLocked(c)
	p.mu.Unlock()

	if err := wait(); err != nil {
		// The journal is broken (sticky): every later mutation fails too,
		// so the in-memory admission cannot outlive an acknowledged one.
		noteRejected(tenant)
		return Status{}, err
	}
	return st, nil
}

func ptr[T any](v T) *T { return &v }

// Cancel moves a campaign to the cancelled state: its remaining slots are
// never leased again, outstanding leases die at their next heartbeat, and
// late reports are dropped. Owner-checked when the plane authenticates
// tenants; idempotent for already-cancelled campaigns.
func (p *Plane) Cancel(tenant, id string) error {
	p.mu.Lock()
	c, ok := p.camps[id]
	if !ok {
		p.mu.Unlock()
		return errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		p.mu.Unlock()
		return err
	}
	switch c.state {
	case StateCancelled:
		p.mu.Unlock()
		return nil
	case StateDone, StateFailed:
		state := c.state
		p.mu.Unlock()
		return errConflict(fmt.Sprintf("campaign %s already %s", id, state))
	}
	wait := p.jl.enqueue(journalEvent{Event: evCancel, Campaign: id})
	p.finishLocked(c, StateCancelled)
	p.mu.Unlock()
	return wait()
}

// authzLocked is the per-campaign ownership check every tenant-facing
// accessor shares: with authentication enabled, only the submitting
// tenant may see or mutate a campaign. In loopback dev mode (no
// authenticator) every caller is trusted.
func (p *Plane) authzLocked(c *camp, tenant string) error {
	if p.cfg.Auth != nil && c.tenant != tenant {
		return errForbidden(c.id)
	}
	return nil
}

// dropFromRing removes id from the scheduling ring, keeping the cursor on
// the same neighbor so fair-share rotation is unaffected.
func (p *Plane) dropFromRing(id string) {
	for i, rid := range p.ring {
		if rid != id {
			continue
		}
		p.ring = append(p.ring[:i], p.ring[i+1:]...)
		if p.cursor > i {
			p.cursor--
		}
		if len(p.ring) > 0 {
			p.cursor %= len(p.ring)
		} else {
			p.cursor = 0
		}
		break
	}
	setQueueDepth(len(p.ring))
}

// finishLocked retires an active campaign into a terminal state.
func (p *Plane) finishLocked(c *camp, state string) {
	if c.terminal() {
		return
	}
	c.state = state
	close(c.done)
	p.dropFromRing(c.id)
	if p.activeByTenant[c.tenant] > 0 {
		p.activeByTenant[c.tenant]--
	}
	p.broadcastLocked(c)
}

// expireLocked sweeps the active campaigns' lease deadlines, failing
// campaigns whose slots ran out of retries. Only the ring is visited
// (terminal campaigns have no leases), downward so finishLocked's
// removals cannot skip an entry, and each visit is O(1) unless that
// machine's earliest deadline actually passed.
func (p *Plane) expireLocked(now time.Time) {
	for i := len(p.ring) - 1; i >= 0; i-- {
		c := p.camps[p.ring[i]]
		noteLeaseExpired(c.id, c.m.Expire(now))
		if c.m.Err() != nil {
			p.finishLocked(c, StateFailed)
		}
	}
}

// lease is the fleet-facing shard hand-out: deficit round-robin over the
// active campaigns. Each campaign's priority is its quantum — when the
// cursor arrives with an empty deficit it refills to priority and the
// campaign draws up to that many consecutive leases before the cursor
// moves on — so long-run shares are proportional to priority, every
// active campaign is visited once per ring cycle (no starvation), and a
// campaign at its in-flight quota or with nothing leasable is skipped
// without banking credit.
//
// Unlike the single-campaign coordinator, the fleet is never "done" and a
// failed campaign never poisons it: workers poll for as long as the plane
// serves, and campaign-terminal states are per-campaign.
func (p *Plane) lease(now time.Time) campaign.LeaseResponse {
	return p.leaseBatch(now, 1)
}

// leaseBatch grants up to max leases under one lock acquisition,
// continuing the deficit round-robin exactly where sequential single
// grants would have left it — a batch of N is indistinguishable from N
// roundtrips, so fair-share proportions are unchanged.
func (p *Plane) leaseBatch(now time.Time, max int) campaign.LeaseResponse {
	if max < 1 {
		max = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(now)
	var leases []*campaign.Lease
	for len(leases) < max {
		l := p.grantLocked(now)
		if l == nil {
			break
		}
		leases = append(leases, l)
	}
	if len(leases) > 0 {
		return campaign.LeaseResponse{Lease: leases[0], Leases: leases}
	}
	// Nothing leasable anywhere: ask the worker to poll at a fraction of
	// the TTL so expiries and new submissions are noticed promptly.
	retry := p.cfg.LeaseTTL / 4
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return campaign.LeaseResponse{RetryMillis: retry.Milliseconds()}
}

// grantLocked makes one deficit-round-robin grant, or nil when nothing is
// leasable. O(1) when the campaign at the cursor can serve (the typical
// loaded-plane case), O(active) worst case — the machines' own
// availability checks are heap-backed, never ledger scans.
func (p *Plane) grantLocked(now time.Time) *campaign.Lease {
	for visits := 0; visits < len(p.ring); visits++ {
		if p.cursor >= len(p.ring) {
			p.cursor = 0
		}
		c := p.camps[p.ring[p.cursor]]
		underQuota := c.quota <= 0 || c.m.InFlight() < c.quota
		if !underQuota || !c.m.Available() {
			// Nothing to serve here right now: forfeit any banked deficit
			// (DRR resets credit when the queue is empty) and move on.
			c.deficit = 0
			p.cursor = (p.cursor + 1) % len(p.ring)
			continue
		}
		if c.deficit <= 0 {
			c.deficit = c.priority
		}
		l := c.m.Lease(now, p.cfg.LeaseTTL)
		l.Campaign = c.id
		noteLeaseGranted(c.id)
		c.deficit--
		if c.deficit <= 0 {
			p.cursor = (p.cursor + 1) % len(p.ring)
		}
		return l
	}
	return nil
}

// LeaseBatch grants up to max shard leases in one call — the in-process
// equivalent of POST /v1/lease {"max":N}, exported for embedded fleets
// and the plane benchmark (benchtrack -mode plane).
func (p *Plane) LeaseBatch(now time.Time, max int) campaign.LeaseResponse {
	return p.leaseBatch(now, max)
}

// ReportBatch applies several finished slots in one call — the
// in-process equivalent of POST /v1/reports, exported for embedded
// fleets and the plane benchmark. One error (or nil) per report, in
// request order.
func (p *Plane) ReportBatch(reqs []campaign.ReportRequest) []error {
	return p.reportBatch(reqs)
}

// heartbeat extends a live lease. False tells the worker to abandon the
// shard: the lease expired and was re-granted, the slot finished, or the
// campaign was cancelled.
func (p *Plane) heartbeat(req campaign.HeartbeatRequest, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(now)
	c, ok := p.camps[req.Campaign]
	if !ok || c.terminal() {
		return false
	}
	return c.m.Heartbeat(req.LeaseID, now, p.cfg.LeaseTTL)
}

// report accepts one finished slot. Reports for cancelled campaigns are
// dropped without error — the worker did honest work against a lease that
// was valid when granted; there is nothing for it to retry. A report
// whose lease was never granted for its slot is refused: Accept itself is
// lease-agnostic (a late delivery from an expired lease is bit-identical
// to the re-leased worker's), so without this check any caller could
// inject a structurally-valid fabricated report and have it merged
// silently.
func (p *Plane) report(req campaign.ReportRequest) error {
	return p.reportBatch([]campaign.ReportRequest{req})[0]
}

// reportBatch accepts several finished slots under one lock acquisition
// and one journal batch, returning one error (or nil) per report in
// request order. Every report's ledger mutation and journal enqueue
// happen under the lock; the durability waits happen after it is
// released, so a batch of reports costs the scheduler one lock hold and
// the disk (at most) one fsync.
func (p *Plane) reportBatch(reqs []campaign.ReportRequest) []error {
	errs := make([]error, len(reqs))
	waits := make([]func() error, len(reqs))
	p.mu.Lock()
	for i := range reqs {
		errs[i], waits[i] = p.reportLocked(&reqs[i])
	}
	p.mu.Unlock()
	for i, wait := range waits {
		if wait == nil {
			continue
		}
		if err := wait(); err != nil && errs[i] == nil {
			errs[i] = err
		}
	}
	return errs
}

// reportLocked applies one report to its campaign's ledger and enqueues
// the journal event, returning the validation error (if any) and the
// durability wait for the caller to resolve outside the lock.
func (p *Plane) reportLocked(req *campaign.ReportRequest) (error, func() error) {
	c, ok := p.camps[req.Campaign]
	if !ok {
		return errNotFound(req.Campaign), nil
	}
	if c.state == StateCancelled || c.state == StateFailed {
		return nil, nil
	}
	if !c.m.LeaseEverGranted(req.LeaseID, req.Shard) {
		return planeError{403, fmt.Sprintf("controlplane: campaign %s never granted lease %q for slot %d", c.id, req.LeaseID, req.Shard)}, nil
	}
	first, err := c.m.Accept(req.Shard, req.Report)
	if err != nil || !first {
		return err, nil
	}
	noteShardDone(c.id)
	wait := p.jl.enqueue(journalEvent{
		Event: evReport, Campaign: c.id,
		Slot: req.Shard, Retries: c.m.SlotRetries(req.Shard), Report: req.Report,
	})
	p.broadcastLocked(c)
	if c.m.Done() {
		p.finishLocked(c, StateDone)
	}
	return nil, wait
}

func (p *Plane) statusLocked(c *camp) Status {
	return Status{
		ID:       c.id,
		Tenant:   c.tenant,
		Priority: c.priority,
		Quota:    c.quota,
		State:    c.state,
		InFlight: c.m.InFlight(),
		Snapshot: c.m.Snapshot(),
	}
}

// List returns the tenant's campaigns' statuses in submission order —
// every campaign in loopback dev mode, only the caller's own when the
// plane authenticates tenants.
func (p *Plane) List(tenant string) []Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Status, 0, len(p.order))
	for _, id := range p.order {
		c := p.camps[id]
		if p.authzLocked(c, tenant) != nil {
			continue
		}
		out = append(out, p.statusLocked(c))
	}
	return out
}

// Active counts campaigns still schedulable (for operator logging; not
// tenant-scoped, unlike List).
func (p *Plane) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ring)
}

// Get returns one campaign's status. Owner-checked like Cancel when the
// plane authenticates tenants.
func (p *Plane) Get(tenant, id string) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return Status{}, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return Status{}, err
	}
	return p.statusLocked(c), nil
}

// FinalReportJSON returns the finished campaign's merged report as the
// inner surface report, indented — byte-identical to what a solo
// faultserve run of the same spec writes with -out, which is what makes
// shared-fleet results directly byte-comparable against solo baselines.
// Owner-checked like Cancel when the plane authenticates tenants.
func (p *Plane) FinalReportJSON(tenant, id string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return nil, err
	}
	if c.state == StateCancelled {
		return nil, errConflict(fmt.Sprintf("campaign %s was cancelled", id))
	}
	r, err := c.m.FinalReport()
	if err != nil {
		return nil, errConflict(err.Error())
	}
	var inner any = r.Datapath
	if r.Buffer != nil {
		inner = r.Buffer
	}
	if r.Systolic != nil {
		inner = r.Systolic
	}
	return json.MarshalIndent(inner, "", "  ")
}

// broadcastLocked fans the campaign's current status out to its stream
// subscribers; a stalled reader must not block report intake. With no
// subscribers it skips even building the status — Snapshot is O(slots),
// far too expensive to compute per report for nobody.
func (p *Plane) broadcastLocked(c *camp) {
	if len(c.subs) == 0 {
		return
	}
	line, err := json.Marshal(p.statusLocked(c))
	if err != nil {
		return
	}
	for ch := range c.subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// subscribe attaches a stream reader to a campaign. The returned done
// channel closes when the campaign reaches a terminal state.
// Owner-checked like Cancel when the plane authenticates tenants.
func (p *Plane) subscribe(tenant, id string) (ch chan []byte, done <-chan struct{}, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil, nil, errNotFound(id)
	}
	if err := p.authzLocked(c, tenant); err != nil {
		return nil, nil, err
	}
	ch = make(chan []byte, 16)
	line, _ := json.Marshal(p.statusLocked(c))
	c.subs[ch] = struct{}{}
	ch <- line
	return ch, c.done, nil
}

func (p *Plane) unsubscribe(id string, ch chan []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.camps[id]; ok {
		delete(c.subs, ch)
	}
}

// statusJSON returns the marshaled current status (for ending streams).
func (p *Plane) statusJSON(id string) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.camps[id]
	if !ok {
		return nil
	}
	line, _ := json.Marshal(p.statusLocked(c))
	return line
}

// Typed errors the API layer maps onto HTTP statuses.

type planeError struct {
	code int // http status
	msg  string
}

func (e planeError) Error() string { return e.msg }

func errNotFound(id string) error {
	return planeError{404, fmt.Sprintf("controlplane: unknown campaign %q", id)}
}
func errForbidden(id string) error {
	return planeError{403, fmt.Sprintf("controlplane: campaign %q belongs to another tenant", id)}
}
func errConflict(msg string) error { return planeError{409, msg} }
