package controlplane

import "expvar"

// Control-plane expvar metrics. expvar panics on duplicate registration,
// so the maps live at package scope and accumulate across every Plane in
// the process; /debug/vars on any plane exposes them.
//
//	campaign: {"<id>.leases_granted", "<id>.leases_expired", "<id>.shards_done"}
//	tenant:   {"<tenant>.submitted", "<tenant>.rejected", "<tenant>.queue_capped"}
//	controlplane_queue_depth: campaigns currently active (schedulable)
//	controlplane_journal: group-commit hot-path counters —
//	  {"batches", "events", "fsyncs", "fsync_nanos", "bytes",
//	   "compactions", "retired_events"}; events/batches is the realized
//	  group-commit amortization, bytes the current file size.
var (
	mCampaigns  = expvar.NewMap("campaign")
	mTenants    = expvar.NewMap("tenant")
	mQueueDepth = expvar.NewInt("controlplane_queue_depth")
	mJournal    = expvar.NewMap("controlplane_journal")
)

func noteLeaseGranted(id string) { mCampaigns.Add(id+".leases_granted", 1) }
func noteLeaseExpired(id string, n int) {
	if n > 0 {
		mCampaigns.Add(id+".leases_expired", int64(n))
	}
}
func noteShardDone(id string)       { mCampaigns.Add(id+".shards_done", 1) }
func noteSubmitted(tenant string)   { mTenants.Add(tenantKey(tenant)+".submitted", 1) }
func noteRejected(tenant string)    { mTenants.Add(tenantKey(tenant)+".rejected", 1) }
func setQueueDepth(active int)      { mQueueDepth.Set(int64(active)) }
func noteQueueCapped(tenant string) { mTenants.Add(tenantKey(tenant)+".queue_capped", 1) }

// noteJournalCommit records one committed batch: how many events rode how
// many fsyncs (one under group commit), how long the write+sync took, and
// the file size after.
func noteJournalCommit(events, syncs, nanos, bytes int64) {
	mJournal.Add("batches", 1)
	mJournal.Add("events", events)
	mJournal.Add("fsyncs", syncs)
	mJournal.Add("fsync_nanos", nanos)
	setJournalBytes(bytes)
}

// noteJournalCompaction records one snapshot rewrite and the events it
// retired.
func noteJournalCompaction(retired, bytes int64) {
	mJournal.Add("compactions", 1)
	mJournal.Add("retired_events", retired)
	setJournalBytes(bytes)
}

func setJournalBytes(bytes int64) {
	var v expvar.Int
	v.Set(bytes)
	mJournal.Set("bytes", &v)
}

// tenantKey keeps metric keys well-formed for unauthenticated or
// unidentified callers.
func tenantKey(tenant string) string {
	if tenant == "" {
		return "anonymous"
	}
	return tenant
}
