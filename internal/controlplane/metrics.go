package controlplane

import "expvar"

// Control-plane expvar metrics. expvar panics on duplicate registration,
// so the maps live at package scope and accumulate across every Plane in
// the process; /debug/vars on any plane exposes them.
//
//	campaign: {"<id>.leases_granted", "<id>.leases_expired", "<id>.shards_done"}
//	tenant:   {"<tenant>.submitted", "<tenant>.rejected"}
//	controlplane_queue_depth: campaigns currently active (schedulable)
var (
	mCampaigns  = expvar.NewMap("campaign")
	mTenants    = expvar.NewMap("tenant")
	mQueueDepth = expvar.NewInt("controlplane_queue_depth")
)

func noteLeaseGranted(id string)  { mCampaigns.Add(id+".leases_granted", 1) }
func noteLeaseExpired(id string, n int) {
	if n > 0 {
		mCampaigns.Add(id+".leases_expired", int64(n))
	}
}
func noteShardDone(id string)      { mCampaigns.Add(id+".shards_done", 1) }
func noteSubmitted(tenant string)  { mTenants.Add(tenantKey(tenant)+".submitted", 1) }
func noteRejected(tenant string)   { mTenants.Add(tenantKey(tenant)+".rejected", 1) }
func setQueueDepth(active int)     { mQueueDepth.Set(int64(active)) }

// tenantKey keeps metric keys well-formed for unauthenticated or
// unidentified callers.
func tenantKey(tenant string) string {
	if tenant == "" {
		return "anonymous"
	}
	return tenant
}
