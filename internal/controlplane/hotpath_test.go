package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestGroupCommitDurability: an acknowledged mutation must already be on
// disk. Concurrent submits and a report are pushed through the
// group-commit path; once every call has returned, the raw journal file
// — read exactly as a successor process would after a SIGKILL, with no
// Close and no flush — must contain every acknowledged event.
func TestGroupCommitDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctl.journal")
	p, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const submits = 24
	var wg sync.WaitGroup
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Submit("alice", testSpec(int64(i+1)), 1, 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	resp := p.lease(time.Now())
	if resp.Lease == nil {
		t.Fatal("no lease granted")
	}
	l := resp.Lease
	if err := p.report(campaign.ReportRequest{
		Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot, Report: testReport(l.Spec),
	}); err != nil {
		t.Fatal(err)
	}

	// Crash-read the file: every acked event must be a durable line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var hdr journalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Version != journalVersion {
		t.Fatalf("journal header %q (err %v), want version %d", lines[0], err, journalVersion)
	}
	counts := map[string]int{}
	for _, line := range lines[1:] {
		var e journalEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("acked journal holds unparseable line %q: %v", line, err)
		}
		counts[e.Event]++
	}
	if counts[evSubmit] != submits || counts[evReport] != 1 {
		t.Fatalf("durable events %v, want %d submits and 1 report", counts, submits)
	}

	// The committer must never fsync more than once per batch.
	st := p.JournalStats()
	if st.Events != submits+1 || st.Fsyncs > st.Batches {
		t.Fatalf("stats %+v: want %d events and fsyncs <= batches", st, submits+1)
	}
}

// TestLeaseBatchingBitIdentity: a pipelined worker that leases in bulk
// (max=N), prefetches ahead of its executors and delivers reports in
// batches must produce a merged report byte-identical to both the solo
// run and a worker with batching disabled.
func TestLeaseBatchingBitIdentity(t *testing.T) {
	spec := testSpec(31)
	want := soloBytes(t, spec)

	p := newTestPlane(t, Config{LeaseTTL: 10 * time.Second})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	run := func(name string, procs, prefetch int) []byte {
		t.Helper()
		id := mustSubmit(t, p, "alice", spec, 1, 0)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		w := &campaign.Worker{
			Base: srv.URL, Name: name,
			Procs: procs, Prefetch: prefetch,
			Poll: 5 * time.Millisecond, GiveUp: 10 * time.Second,
			Client: srv.Client(), Goldens: campaign.NewGoldenCache(),
		}
		errs := make(chan error, 1)
		go func() { errs <- w.Run(ctx) }()
		waitState(t, p, id, StateDone)
		cancel()
		<-errs
		got, err := p.FinalReportJSON("alice", id)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	if got := run("batched", 2, 6); !bytes.Equal(got, want) {
		t.Fatalf("batched worker diverged from solo (%d vs %d bytes)", len(got), len(want))
	}
	if got := run("unbatched", 1, -1); !bytes.Equal(got, want) {
		t.Fatalf("unbatched worker diverged from solo (%d vs %d bytes)", len(got), len(want))
	}
}

// TestPerTenantQueueCap: submissions past Config.MaxQueuedPerTenant are
// refused with a 429 plane error, other tenants are unaffected, and
// finishing (cancelling) a campaign frees the slot.
func TestPerTenantQueueCap(t *testing.T) {
	p := newTestPlane(t, Config{LeaseTTL: time.Minute, MaxQueuedPerTenant: 2})
	id1 := mustSubmit(t, p, "alice", testSpec(1), 1, 0)
	mustSubmit(t, p, "alice", testSpec(2), 1, 0)

	_, err := p.Submit("alice", testSpec(3), 1, 0)
	var pe planeError
	if !errors.As(err, &pe) || pe.code != 429 {
		t.Fatalf("over-cap submit: %v, want a 429 plane error", err)
	}
	if _, err := p.Submit("bob", testSpec(4), 1, 0); err != nil {
		t.Fatalf("other tenant capped too: %v", err)
	}
	if err := p.Cancel("", id1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("alice", testSpec(3), 1, 0); err != nil {
		t.Fatalf("submit after a slot freed: %v", err)
	}
}

// compactionFixture builds the two on-disk images a crash during
// compaction can leave behind: orig is a journal holding one terminal
// campaign (c1, 1/1 shards) and one live campaign (c2, 1/4 shards); snap
// is the compacted rewrite of the same state (c1's events retired).
func compactionFixture(t testing.TB) (orig, snap []byte) {
	t.Helper()
	dir, err := os.MkdirTemp("", "compactfix-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ctl.journal")
	p, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	spec1 := testSpec(1)
	spec1.Shards = 1
	for i, spec := range []campaign.Spec{spec1, testSpec(2)} {
		if _, err := p.Submit([]string{"alice", "bob"}[i], spec, 1, 0); err != nil {
			t.Fatal(err)
		}
		resp := p.lease(time.Now())
		if resp.Lease == nil {
			t.Fatal("no lease granted")
		}
		l := resp.Lease
		if err := p.report(campaign.ReportRequest{
			Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot, Report: testReport(l.Spec),
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if orig, err = os.ReadFile(path); err != nil {
		t.Fatal(err)
	}

	// Reload: c1 settles terminal, so load-time compaction rewrites the
	// journal — that rewrite is exactly the snapshot a size-triggered
	// compaction would have produced.
	p2, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
	if snap, err = os.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(orig, snap) {
		t.Fatal("compaction left the journal unchanged")
	}
	return orig, snap
}

// checkCompactionRecovery loads one crash image and asserts the
// recovered state is exactly the old state (terminal campaign still
// replayed from its events) or exactly the new one (terminal campaign
// retired) — never a hybrid, and the live campaign's progress never
// moves either way.
func checkCompactionRecovery(t testing.TB, dir string, renamed bool) {
	p, err := New(Config{JournalPath: filepath.Join(dir, "ctl.journal"), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("recovery refused: %v", err)
	}
	defer p.Close()
	if st, err := p.Get("", "c1"); renamed {
		if err == nil {
			t.Fatalf("retired campaign c1 still present after rename: %+v", st)
		}
	} else {
		if err != nil {
			t.Fatalf("campaign c1 lost before rename: %v", err)
		}
		if st.State != StateDone || st.Snapshot.CompletedShards != 1 {
			t.Fatalf("c1 recovered as %s %d/1 shards, want done 1/1", st.State, st.Snapshot.CompletedShards)
		}
	}
	st, err := p.Get("", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateActive || st.Snapshot.CompletedShards != 1 {
		t.Fatalf("c2 recovered as %s with %d shards done, want active with 1", st.State, st.Snapshot.CompletedShards)
	}
}

// writeCrashImage lays out the files a kill at byte cut of the snapshot
// write would leave: before the rename the original journal is intact
// next to a partial .tmp; at cut == len(snap) the rename has happened
// and only the snapshot remains.
func writeCrashImage(t testing.TB, dir string, orig, snap []byte, cut int) (renamed bool) {
	t.Helper()
	path := filepath.Join(dir, "ctl.journal")
	if cut >= len(snap) {
		if err := os.WriteFile(path, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		return true
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", snap[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return false
}

// TestCompactionKillAtEveryByte simulates a kill at every byte of the
// snapshot write plus the post-rename state, and requires every image to
// recover to exactly the old or exactly the new journal.
func TestCompactionKillAtEveryByte(t *testing.T) {
	orig, snap := compactionFixture(t)
	step := 1
	if testing.Short() {
		step = 64
	}
	for cut := 0; cut <= len(snap); cut += step {
		dir := t.TempDir()
		renamed := writeCrashImage(t, dir, orig, snap, cut)
		checkCompactionRecovery(t, dir, renamed)
	}
	// The boundary case always runs, whatever the step.
	dir := t.TempDir()
	checkCompactionRecovery(t, dir, writeCrashImage(t, dir, orig, snap, len(snap)))
}

// FuzzJournalCompaction drives the same invariant with fuzzed kill
// offsets and fuzzed garbage in the .tmp file: recovery must never read
// the temporary snapshot, never lose the pre-compaction state before the
// rename, and never resurrect retired events after it.
func FuzzJournalCompaction(f *testing.F) {
	orig, snap := compactionFixture(f)
	f.Add(uint16(0), false)
	f.Add(uint16(1), false)
	f.Add(uint16(len(snap)/2), false)
	f.Add(uint16(len(snap)-1), true)
	f.Add(uint16(len(snap)), false)
	f.Fuzz(func(t *testing.T, cut uint16, garbage bool) {
		dir := t.TempDir()
		var renamed bool
		if garbage {
			// Arbitrary leftover .tmp content — even valid-looking journal
			// bytes — must never influence recovery.
			path := filepath.Join(dir, "ctl.journal")
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatal(err)
			}
			junk := append([]byte(fmt.Sprintf(`{"version":%d}`+"\n", journalVersion)), snap[:int(cut)%len(snap)]...)
			if err := os.WriteFile(path+".tmp", junk, 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			renamed = writeCrashImage(t, dir, orig, snap, int(cut))
		}
		checkCompactionRecovery(t, dir, renamed)
	})
}

// TestJournalV4Upgrade: a v4 journal (fsync-per-append era, no seq
// header) loads, replays its campaigns, and is rewritten as a v5
// snapshot on the spot, with campaign IDs never reused after the
// upgrade.
func TestJournalV4Upgrade(t *testing.T) {
	spec := testSpec(1)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	hdr4, _ := json.Marshal(journalHeader{Version: journalVersionV4})
	sub, _ := json.Marshal(journalEvent{Event: evSubmit, Campaign: "c7", Tenant: "alice", Priority: 2, Spec: &spec})
	rep, _ := json.Marshal(journalEvent{Event: evReport, Campaign: "c7", Slot: 0, Report: testReport(spec)})
	path := filepath.Join(t.TempDir(), "ctl.journal")
	if err := os.WriteFile(path, journalLines(hdr4, sub, rep), 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Get("alice", "c7")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateActive || st.Snapshot.CompletedShards != 1 {
		t.Fatalf("upgraded campaign %s with %d shards, want active with 1", st.State, st.Snapshot.CompletedShards)
	}
	// A new submission on the upgraded plane must not collide with c7.
	st2, err := p.Submit("bob", testSpec(2), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == "c7" {
		t.Fatal("campaign ID reused after v4 upgrade")
	}
	p.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hdr journalHeader
	if err := json.Unmarshal(data[:bytes.IndexByte(data, '\n')], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Version != journalVersion || hdr.Seq < 7 {
		t.Fatalf("upgraded header %+v, want version %d with seq >= 7", hdr, journalVersion)
	}
	p2, err := New(Config{JournalPath: path, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("upgraded journal refused: %v", err)
	}
	p2.Close()
}
