// Package core is the reproduction's experiment suite: one entry point per
// table and figure of the paper's evaluation (see DESIGN.md §4 for the
// index). Each experiment returns a typed result with a Format method that
// prints the same rows/series the paper reports; cmd/paperrepro and the
// repository benchmarks are thin wrappers over this package.
package core

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// newRand returns a seeded PRNG for serial experiment loops.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildNet constructs a network honoring cfg.WeightsDir.
func buildNet(cfg Config, name string) *network.Network {
	if cfg.WeightsDir == "" {
		return models.Build(name)
	}
	net, _, err := models.LoadPretrained(name, cfg.WeightsDir)
	if err != nil {
		panic(err)
	}
	return net
}

// Config sets the scale of a campaign.
type Config struct {
	// Injections per configuration (the paper uses 3000 per component).
	Injections int
	// Inputs is the number of distinct images cycled per network.
	Inputs int
	// Seed drives every PRNG.
	Seed int64
	// Workers caps goroutines; 0 = NumCPU.
	Workers int
	// WeightsDir, when set, loads pre-trained weights (cmd/pretrain
	// output) into every network the experiments build; missing files
	// fall back to the calibrated synthetic weights.
	WeightsDir string
}

// Quick is a CI-scale configuration for tests and benchmarks.
var Quick = Config{Injections: 150, Inputs: 2, Seed: 1}

// PaperScale matches the paper's 3000 injections per configuration.
var PaperScale = Config{Injections: 3000, Inputs: 8, Seed: 1}

// inputsFor generates the deterministic campaign input set of a network.
func inputsFor(name string, n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = models.InputFor(name, i)
	}
	return ins
}

// trainingInputs generates detector-training images from an index range
// disjoint from the campaign inputs.
func trainingInputs(name string, n int) []*tensor.Tensor {
	const trainingOffset = 10_000
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = models.InputFor(name, trainingOffset+i)
	}
	return ins
}

// ImageNetNets are the networks using the ImageNet-like dataset; the paper
// plots them separately from ConvNet in Figs. 3 and 6.
var ImageNetNets = []string{"AlexNet", "CaffeNet", "NiN"}

// AllDataTypes lists the Table 3 formats in paper order.
var AllDataTypes = []numeric.Type{
	numeric.Double, numeric.Float, numeric.Float16,
	numeric.Fx32RB26, numeric.Fx32RB10, numeric.Fx16RB10,
}

// table is a small text-table builder shared by the Format methods.
type table struct {
	sb     strings.Builder
	widths []int
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) String() string {
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(t.widths) {
				t.widths = append(t.widths, 0)
			}
			if len(c) > t.widths[i] {
				t.widths[i] = len(c)
			}
		}
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				t.sb.WriteString("  ")
			}
			t.sb.WriteString(c)
			t.sb.WriteString(strings.Repeat(" ", t.widths[i]-len(c)))
		}
		t.sb.WriteString("\n")
	}
	return t.sb.String()
}

// pct formats a probability as a percentage.
func pct(p float64) string { return fmt.Sprintf("%.2f%%", p*100) }
