package core

import (
	"fmt"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/pearray"
)

// PEArrayValidation cross-checks the cycle-level PE-array simulator
// against the abstract per-MAC fault model: N random physically addressed
// weight/image faults are injected into the first conv layer via both
// models and the ofmaps compared bit for bit (under order-safe fixed-point
// arithmetic).
type PEArrayValidation struct {
	Network string
	DType   numeric.Type
	// Checked is the number of compared faults; Matches how many produced
	// identical ofmaps.
	Checked, Matches int
	// Geometry echoes the simulated schedule.
	Geometry pearray.Geometry
}

// ValidatePEArray runs the cross-check on the named network's first conv
// layer.
func ValidatePEArray(cfg Config, netName string) PEArrayValidation {
	const dt = numeric.Fx32RB26 // exact, order-safe arithmetic
	net := buildNet(cfg, netName)
	conv := net.Layers[net.MACLayerIndices()[0]].(*layers.ConvLayer)
	in := inputsFor(netName, 1)[0]
	// Scale the input into the format's exact small-value regime so the
	// comparison is immune to accumulation-order rounding.
	scaled := in.Clone()
	scaled.Apply(func(v float64) float64 { return dt.Quantize(v / 1024) })

	sim := pearray.New(conv, dt)
	res := PEArrayValidation{Network: netName, DType: dt, Geometry: sim.Geometry(scaled.Shape)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for res.Checked < cfg.Injections {
		f := sim.RandomFault(rng, scaled.Shape)
		if f.Latch == pearray.LatchPsum {
			continue // psum order differs by design; see pearray docs
		}
		f.Bit = rng.Intn(28) // avoid sign-bit saturation clipping
		af, ok := sim.AbstractFault(f, scaled.Shape)
		if !ok {
			continue
		}
		phys := sim.Run(scaled, f)
		abs := conv.Forward(&layers.Context{DType: dt, Fault: &af}, scaled)
		same := true
		for i := range abs.Data {
			if phys.Data[i] != abs.Data[i] {
				same = false
				break
			}
		}
		res.Checked++
		if same {
			res.Matches++
		}
	}
	return res
}

// Format renders the validation summary.
func (r PEArrayValidation) Format() string {
	return fmt.Sprintf("%s conv1 on a %dx%d RS PE set (%d passes, %d cycles/pass): %d/%d physically addressed faults bit-identical to the abstract per-MAC model\n",
		r.Network, r.Geometry.Rows, r.Geometry.Cols, r.Geometry.Passes, r.Geometry.CyclesPerPass,
		r.Matches, r.Checked)
}
