package core

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/numeric"
)

// parseCSV asserts the document is well-formed and returns its records.
func parseCSV(t *testing.T, doc string) [][]string {
	t.Helper()
	records, err := csv.NewReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, doc)
	}
	return records
}

func TestCSVExports(t *testing.T) {
	cfg := Config{Injections: 40, Inputs: 1, Seed: 51}

	f3 := Fig3(cfg, []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10})
	recs := parseCSV(t, f3.CSV())
	if len(recs) != 2 || recs[0][0] != "network" || recs[1][1] != "32b_rb10" {
		t.Errorf("fig3 CSV records: %v", recs)
	}

	f4 := Fig4(Config{Injections: 32, Inputs: 1, Seed: 52}, "ConvNet", numeric.Fx16RB10)
	recs = parseCSV(t, f4.CSV())
	if len(recs) != 17 { // header + 16 bits
		t.Errorf("fig4 CSV rows = %d, want 17", len(recs))
	}

	f5 := Fig5(cfg, "ConvNet", numeric.Fx32RB10)
	recs = parseCSV(t, f5.CSV())
	if len(recs) != 1+len(f5.SDC)+len(f5.Benign) {
		t.Errorf("fig5 CSV rows = %d", len(recs))
	}

	f6 := Fig6(cfg, "ConvNet", numeric.Fx16RB10)
	recs = parseCSV(t, f6.CSV())
	if len(recs) != 6 { // header + 5 blocks
		t.Errorf("fig6 CSV rows = %d, want 6", len(recs))
	}

	f7 := Fig7(Config{Injections: 5, Inputs: 1, Seed: 53}, "ConvNet", numeric.Double)
	recs = parseCSV(t, f7.CSV())
	if len(recs) != 6 {
		t.Errorf("fig7 CSV rows = %d, want 6", len(recs))
	}

	t6 := Table6(cfg, []string{"ConvNet"}, []numeric.Type{numeric.Fx16RB10})
	recs = parseCSV(t, Table6CSV(t6))
	if len(recs) != 2 {
		t.Errorf("table6 CSV rows = %d", len(recs))
	}

	t8 := Table8(Config{Injections: 20, Inputs: 1, Seed: 54}, []string{"ConvNet"})
	recs = parseCSV(t, Table8CSV(t8))
	if len(recs) != 5 { // header + 4 buffers
		t.Errorf("table8 CSV rows = %d, want 5", len(recs))
	}

	f9 := Fig9(Config{Injections: 64, Inputs: 1, Seed: 55}, "ConvNet", numeric.Fx16RB10)
	recs = parseCSV(t, f9.CSV())
	// header + 17 protection points + 4 designs x 9 targets.
	if want := 1 + 17 + 4*len(Fig9Targets); len(recs) != want {
		t.Errorf("fig9 CSV rows = %d, want %d", len(recs), want)
	}

	f8 := []Fig8Row{{Network: "AlexNet", Precision: 0.98, Recall: 0.9}}
	recs = parseCSV(t, Fig8CSV(f8))
	if len(recs) != 2 || recs[1][0] != "AlexNet" {
		t.Errorf("fig8 CSV records: %v", recs)
	}
}
