package core

import (
	"fmt"

	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/precision"
	"repro/internal/rowstat"
	"repro/internal/sdc"
)

// The experiments in this file go beyond the paper's published artifacts:
// an ablation isolating the LRN masking effect the paper infers from
// cross-network comparisons (§5.1.4), the §6.1 "just-enough format"
// recommendation made executable, and the analytic reuse factors behind
// the Table 8 buffer vulnerability.

// ---- Ablation: LRN masking ----

// AblationResult compares a network against its ablated variant.
type AblationResult struct {
	Network  string
	Ablation models.Ablation
	DType    numeric.Type
	// BaselineSDC and AblatedSDC are layer-1 SDC-1 probabilities (the
	// LRN effect concentrates in the early layers).
	BaselineSDC float64
	AblatedSDC  float64
}

// AblateLRN measures layer-1 SDC probability with and without the
// normalization layers. The paper attributes AlexNet/CaffeNet's low
// early-layer SDC to LRN; removing it while keeping the weights identical
// tests that attribution directly.
func AblateLRN(cfg Config, netName string, dt numeric.Type) AblationResult {
	run := func(net *network.Network) float64 {
		c := faultinj.New(net, dt, inputsFor(netName, cfg.Inputs))
		r := c.Run(faultinj.Options{
			N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers,
			Selector: faultinj.BlockSelector(0),
		})
		return r.Counts.Probability(sdc.SDC1)
	}
	return AblationResult{
		Network: netName, Ablation: models.WithoutLRN, DType: dt,
		BaselineSDC: run(buildNet(cfg, netName)),
		AblatedSDC:  run(models.BuildAblated(netName, models.WithoutLRN)),
	}
}

// Format renders the ablation comparison.
func (r AblationResult) Format() string {
	return fmt.Sprintf("%s/%s layer-1 SDC-1: baseline %s vs %s %s\n",
		r.Network, r.DType, pct(r.BaselineSDC), r.Ablation, pct(r.AblatedSDC))
}

// ---- §6.1 implication: just-enough numeric formats ----

// FormatRecommendation profiles a network and recommends the least
// redundant covering format (precision package).
func FormatRecommendation(cfg Config, netName string) precision.Recommendation {
	net := buildNet(cfg, netName)
	var ranges []network.Range
	for i := 0; i < cfg.Inputs; i++ {
		exec := net.Forward(numeric.Double, models.InputFor(netName, i))
		rs := net.BlockRanges(exec)
		if ranges == nil {
			ranges = rs
			continue
		}
		for b := range ranges {
			if rs[b].Min < ranges[b].Min {
				ranges[b].Min = rs[b].Min
			}
			if rs[b].Max > ranges[b].Max {
				ranges[b].Max = rs[b].Max
			}
		}
	}
	return precision.Recommend(ranges, numeric.Types)
}

// FormatRecommendations renders the recommendation per network.
func FormatRecommendations(cfg Config, networks []string) string {
	out := ""
	for _, name := range networks {
		rec := FormatRecommendation(cfg, name)
		out += fmt.Sprintf("%s:\n%s", name, rec.Format())
	}
	return out
}

// ---- Row-stationary schedule (rowstat) ----

// ScheduleReport renders the row-stationary mapping and buffer traffic of
// each network on the 16 nm Eyeriss array.
func ScheduleReport(networks []string) string {
	out := ""
	for _, name := range networks {
		s := rowstat.New(models.Build(name), rowstat.Eyeriss16nm)
		out += fmt.Sprintf("%s on %dx%d PEs:\n%s%s",
			name, rowstat.Eyeriss16nm.Rows, rowstat.Eyeriss16nm.Cols,
			s.Format(), s.FormatTraffic())
	}
	return out
}

// Table8Residency recomputes Table 8 with cycle-accurate residency weights
// from the row-stationary scheduler instead of the MAC-count proxy — an
// ablation of the fault-timing model.
func Table8Residency(cfg Config, networks []string) []Table8Cell {
	const dt = numeric.Fx16RB10
	var cells []Table8Cell
	for _, name := range networks {
		camp := bufferCampaign(cfg, name, dt)
		camp.Residency = rowstat.New(models.Build(name), rowstat.Eyeriss16nm).ResidencyWeights()
		for _, b := range eyeriss.Buffers {
			r := camp.Run(b, eyeriss.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers})
			p := r.Counts.Probability(sdc.SDC1)
			cells = append(cells, Table8Cell{
				Network: name, Buffer: b, SDCProb: p,
				FIT: eyeriss.FITComponent(eyeriss.Params16nm, b, p).FIT(),
			})
		}
	}
	return cells
}

// ---- Reuse factors behind Table 8 ----

// ReuseReport renders the analytic per-layer reuse factors of each
// network's dataflow.
func ReuseReport(networks []string) string {
	out := ""
	for _, name := range networks {
		out += fmt.Sprintf("%s:\n%s", name, eyeriss.FormatReuse(eyeriss.Reuse(models.Build(name))))
	}
	return out
}

// ---- Per-latch breakdown of datapath faults ----

// LatchRow is the SDC probability of faults striking one ALU latch class.
type LatchRow struct {
	Network string
	DType   numeric.Type
	Target  layers.Target
	SDCProb float64
	Trials  int
}

// LatchBreakdown splits a datapath campaign's SDC probability by the ALU
// latch struck (weight operand, activation operand, multiplier output,
// accumulator) — the per-latch sensitivity the SLH model assumes is
// uniform across latch planes, measured.
func LatchBreakdown(cfg Config, netName string, dt numeric.Type) []LatchRow {
	c := campaignFor(cfg, netName, dt)
	r := c.Run(faultinj.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers})
	rows := make([]LatchRow, 0, len(r.PerTarget))
	for tgt := range r.PerTarget {
		rows = append(rows, LatchRow{
			Network: netName, DType: dt, Target: layers.Target(tgt),
			SDCProb: r.PerTarget[tgt].Probability(sdc.SDC1),
			Trials:  r.PerTarget[tgt].Trials,
		})
	}
	return rows
}

// FormatLatchBreakdown renders the per-latch table.
func FormatLatchBreakdown(rows []LatchRow) string {
	t := &table{}
	t.add("Network", "DataType", "Latch", "Trials", "SDC-1")
	for _, r := range rows {
		t.addf("%s\t%s\t%s\t%d\t%s", r.Network, r.DType, r.Target, r.Trials, pct(r.SDCProb))
	}
	return t.String()
}
