package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/fit"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
)

// campaignFor builds a datapath campaign for one network and format.
func campaignFor(cfg Config, netName string, dt numeric.Type) *faultinj.Campaign {
	return faultinj.New(buildNet(cfg, netName), dt, inputsFor(netName, cfg.Inputs))
}

// ---- E1: Figure 3 — SDC probability × network × data type ----

// Fig3Row is one (network, data type) bar group of Figure 3.
type Fig3Row struct {
	Network string
	DType   numeric.Type
	// Prob and CI are indexed by sdc.Kind; CI is the 95% half-width.
	Prob [sdc.NumKinds]float64
	CI   [sdc.NumKinds]float64
	// Defined reports whether the criterion applies (confidence SDCs do
	// not apply to NiN).
	Defined [sdc.NumKinds]bool
}

// Fig3Result is the full Figure 3 dataset.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the datapath fault campaign of Figure 3 over the given
// networks and data types.
func Fig3(cfg Config, networks []string, dtypes []numeric.Type) *Fig3Result {
	res := &Fig3Result{}
	for _, name := range networks {
		for _, dt := range dtypes {
			c := campaignFor(cfg, name, dt)
			r := c.Run(faultinj.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers})
			row := Fig3Row{Network: name, DType: dt}
			for _, k := range sdc.Kinds {
				row.Prob[k] = r.Counts.Probability(k)
				p := stats.Proportion{Successes: r.Counts.Hits[k], Trials: r.Counts.DefinedTrials[k]}
				row.CI[k] = p.CI95()
				row.Defined[k] = r.Counts.DefinedTrials[k] > 0
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Format renders the Figure 3 rows as a text table.
func (r *Fig3Result) Format() string {
	t := &table{}
	t.add("Network", "DataType", "SDC-1", "SDC-5", "SDC-10%", "SDC-20%")
	for _, row := range r.Rows {
		cells := []string{row.Network, row.DType.String()}
		for _, k := range sdc.Kinds {
			if row.Defined[k] {
				cells = append(cells, fmt.Sprintf("%s ±%.2f%%", pct(row.Prob[k]), row.CI[k]*100))
			} else {
				cells = append(cells, "N/A")
			}
		}
		t.add(cells...)
	}
	return t.String()
}

// ---- E2: Figure 4 — per-bit SDC probability ----

// Fig4Result is the per-bit SDC series for one network and data type.
type Fig4Result struct {
	Network string
	DType   numeric.Type
	// Prob[b] is the SDC-1 probability of flipping bit b.
	Prob []float64
	CI   []float64
}

// Fig4 measures the per-bit SDC sensitivity (Figure 4) by injecting a
// fixed number of faults per bit position.
func Fig4(cfg Config, netName string, dt numeric.Type) *Fig4Result {
	c := campaignFor(cfg, netName, dt)
	res := &Fig4Result{Network: netName, DType: dt,
		Prob: make([]float64, dt.Width()), CI: make([]float64, dt.Width())}
	perBit := cfg.Injections / dt.Width()
	if perBit < 1 {
		perBit = 1
	}
	for bit := 0; bit < dt.Width(); bit++ {
		r := c.Run(faultinj.Options{
			N: perBit, Seed: cfg.Seed + int64(bit)*97, Workers: cfg.Workers,
			Selector: faultinj.BitSelector(bit),
		})
		res.Prob[bit] = r.Counts.Probability(sdc.SDC1)
		res.CI[bit] = stats.Proportion{Successes: r.Counts.Hits[sdc.SDC1], Trials: r.Counts.DefinedTrials[sdc.SDC1]}.CI95()
	}
	return res
}

// Format renders the per-bit series, highest bit first.
func (r *Fig4Result) Format() string {
	t := &table{}
	t.add("Bit", "Class", "SDC-1", "±CI")
	for bit := r.DType.Width() - 1; bit >= 0; bit-- {
		t.addf("%d\t%s\t%s\t%.2f%%", bit, r.DType.Classify(bit), pct(r.Prob[bit]), r.CI[bit]*100)
	}
	return fmt.Sprintf("%s / %s per-bit SDC probability:\n%s", r.Network, r.DType, t.String())
}

// Sensitivity converts the per-bit SDC series into a per-latch FIT
// sensitivity vector for the SLH model (§6.3): each bit's contribution is
// Rraw · 1 bit · SDC_bit.
func (r *Fig4Result) Sensitivity() []float64 {
	s := make([]float64, len(r.Prob))
	for i, p := range r.Prob {
		s[i] = fit.Rate(1, p)
	}
	return s
}

// ---- E3: Figure 5 — activation values before/after SDC vs benign faults ----

// Fig5Result partitions sampled faulted-activation values by outcome.
type Fig5Result struct {
	Network string
	DType   numeric.Type
	// SDC and Benign hold (golden, faulty) value pairs.
	SDC    []faultinj.ValueRecord
	Benign []faultinj.ValueRecord
}

// Fig5 samples faulted ACT values (the paper uses AlexNet with FLOAT16).
func Fig5(cfg Config, netName string, dt numeric.Type) *Fig5Result {
	c := campaignFor(cfg, netName, dt)
	r := c.Run(faultinj.Options{
		N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers,
		TrackValues: cfg.Injections,
	})
	res := &Fig5Result{Network: netName, DType: dt}
	for _, v := range r.Values {
		if v.SDC {
			res.SDC = append(res.SDC, v)
		} else {
			res.Benign = append(res.Benign, v)
		}
	}
	return res
}

// LargeDeviationShare returns, for the SDC and benign populations, the
// fraction of faults whose faulty value deviates from golden by more than
// threshold — the paper's "large deviations mostly cause SDCs" statistic.
func (r *Fig5Result) LargeDeviationShare(threshold float64) (sdcShare, benignShare float64) {
	count := func(vs []faultinj.ValueRecord) float64 {
		if len(vs) == 0 {
			return 0
		}
		n := 0
		for _, v := range vs {
			d := v.Faulty - v.Golden
			if d < 0 {
				d = -d
			}
			if d > threshold || d != d { // non-finite deviations count as large
				n++
			}
		}
		return float64(n) / float64(len(vs))
	}
	return count(r.SDC), count(r.Benign)
}

// Format summarizes the two populations.
func (r *Fig5Result) Format() string {
	s, b := r.LargeDeviationShare(64)
	return fmt.Sprintf("%s/%s: %d SDC samples, %d benign samples; large-deviation share: SDC %s vs benign %s\n",
		r.Network, r.DType, len(r.SDC), len(r.Benign), pct(s), pct(b))
}

// ---- E5: Figure 6 — SDC probability per layer ----

// Fig6Result is the per-layer SDC series of one network.
type Fig6Result struct {
	Network string
	DType   numeric.Type
	// Prob[i] is the SDC-1 probability of faults injected into block i.
	Prob []float64
	CI   []float64
}

// Fig6 injects a fixed number of faults into each CONV/FC block.
func Fig6(cfg Config, netName string, dt numeric.Type) *Fig6Result {
	c := campaignFor(cfg, netName, dt)
	blocks := c.Profile().NumMACLayers()
	res := &Fig6Result{Network: netName, DType: dt,
		Prob: make([]float64, blocks), CI: make([]float64, blocks)}
	perBlock := cfg.Injections / blocks
	if perBlock < 1 {
		perBlock = 1
	}
	for b := 0; b < blocks; b++ {
		r := c.Run(faultinj.Options{
			N: perBlock, Seed: cfg.Seed + int64(b)*131, Workers: cfg.Workers,
			Selector: faultinj.BlockSelector(b),
		})
		res.Prob[b] = r.Counts.Probability(sdc.SDC1)
		res.CI[b] = stats.Proportion{Successes: r.Counts.Hits[sdc.SDC1], Trials: r.Counts.DefinedTrials[sdc.SDC1]}.CI95()
	}
	return res
}

// Format renders the per-layer series.
func (r *Fig6Result) Format() string {
	t := &table{}
	t.add("Layer", "SDC-1", "±CI")
	for b, p := range r.Prob {
		t.addf("%d\t%s\t%.2f%%", b+1, pct(p), r.CI[b]*100)
	}
	return fmt.Sprintf("%s / %s per-layer SDC probability:\n%s", r.Network, r.DType, t.String())
}

// ---- E6: Figure 7 — Euclidean distance per layer after layer-1 faults ----

// fig7Clamp caps per-run layer distances at the float32-max scale
// (~3.4e38), matching the dynamic range of the paper's Figure 7.
const fig7Clamp = 3.4e38

// Fig7Result is the mean per-layer error distance of one network.
type Fig7Result struct {
	Network string
	DType   numeric.Type
	// Dist[i] is the mean Euclidean distance between faulty and golden
	// ACTs at the end of block i, for faults injected at block 0.
	Dist []float64
}

// Fig7 injects faults into the first block and traces the mean error
// magnitude through the network (the paper uses DOUBLE to accentuate the
// differences). Distances from runs where the fault was masked entirely
// contribute zero, as in the paper's averages.
func Fig7(cfg Config, netName string, dt numeric.Type) *Fig7Result {
	net := buildNet(cfg, netName)
	c := faultinj.New(net, dt, inputsFor(netName, cfg.Inputs))
	p := c.Profile()
	blocks := p.NumMACLayers()
	res := &Fig7Result{Network: netName, DType: dt, Dist: make([]float64, blocks)}

	// Distance tracing needs the faulty executions, so run serially here
	// (N is modest for this figure).
	rng := newRand(cfg.Seed)
	n := cfg.Injections
	for i := 0; i < n; i++ {
		golden := c.Golden(i % cfg.Inputs)
		site := p.RandomSiteInBlock(rng, 0)
		fault := site.Fault
		faulty := net.ForwardFrom(dt, golden, site.Layer, &fault)
		for b, d := range net.LayerDistances(golden, faulty) {
			// Clamp unbounded blow-ups (DOUBLE faults can reach 1e300+)
			// at the float32-max scale the paper's Figure 7 axis tops
			// out at, so a single astronomical run cannot drown the mean.
			if d > fig7Clamp {
				d = fig7Clamp
			}
			res.Dist[b] += d / float64(n)
		}
	}
	return res
}

// Format renders the distance series.
func (r *Fig7Result) Format() string {
	t := &table{}
	t.add("Layer", "MeanEuclideanDistance")
	for b, d := range r.Dist {
		t.addf("%d\t%.4g", b+1, d)
	}
	return fmt.Sprintf("%s / %s distance after layer-1 faults:\n%s", r.Network, r.DType, t.String())
}

// ---- E4: Table 4 — per-layer activation value ranges ----

// Table4Row holds one network's per-layer golden value ranges.
type Table4Row struct {
	Network string
	Ranges  []Range
}

// Range mirrors network.Range for the experiment report.
type Range struct{ Min, Max float64 }

// Table4 profiles the error-free per-layer value ranges of each network
// over the configured inputs.
func Table4(cfg Config, networks []string, dt numeric.Type) []Table4Row {
	var rows []Table4Row
	for _, name := range networks {
		net := buildNet(cfg, name)
		var agg []Range
		for i := 0; i < cfg.Inputs; i++ {
			exec := net.Forward(dt, models.InputFor(name, i))
			rs := net.BlockRanges(exec)
			if agg == nil {
				agg = make([]Range, len(rs))
				for b := range rs {
					agg[b] = Range{Min: rs[b].Min, Max: rs[b].Max}
				}
				continue
			}
			for b := range rs {
				if rs[b].Min < agg[b].Min {
					agg[b].Min = rs[b].Min
				}
				if rs[b].Max > agg[b].Max {
					agg[b].Max = rs[b].Max
				}
			}
		}
		rows = append(rows, Table4Row{Network: name, Ranges: agg})
	}
	return rows
}

// FormatTable4 renders the value-range table.
func FormatTable4(rows []Table4Row) string {
	t := &table{}
	t.add("Network", "Layer", "Min", "Max")
	for _, row := range rows {
		for b, r := range row.Ranges {
			t.addf("%s\t%d\t%.4g\t%.4g", row.Network, b+1, r.Min, r.Max)
		}
	}
	return t.String()
}

// ---- E7: Table 5 — bit-wise SDC (propagation) rate per layer ----

// Table5Result is the per-layer propagation table for one network.
type Table5Result struct {
	Network string
	DType   numeric.Type
	// Spread[i] is the mean fraction of final-layer ACTs that differ
	// bit-wise from golden for faults injected into block i.
	Spread []float64
	// SDC1[i] is the block's SDC-1 probability, for the masking contrast.
	SDC1 []float64
}

// Table5 measures how widely faults injected into each layer spread into
// the final layer's ACTs (AlexNet with FLOAT16 in the paper).
func Table5(cfg Config, netName string, dt numeric.Type) *Table5Result {
	c := campaignFor(cfg, netName, dt)
	blocks := c.Profile().NumMACLayers()
	res := &Table5Result{Network: netName, DType: dt,
		Spread: make([]float64, blocks), SDC1: make([]float64, blocks)}
	perBlock := cfg.Injections / blocks
	if perBlock < 1 {
		perBlock = 1
	}
	for b := 0; b < blocks; b++ {
		r := c.Run(faultinj.Options{
			N: perBlock, Seed: cfg.Seed + int64(b)*17, Workers: cfg.Workers,
			Selector:    faultinj.BlockSelector(b),
			TrackSpread: true,
		})
		res.Spread[b] = r.SpreadRate(b)
		res.SDC1[b] = r.Counts.Probability(sdc.SDC1)
	}
	return res
}

// Format renders the propagation table.
func (r *Table5Result) Format() string {
	t := &table{}
	t.add("Layer", "Bit-wise spread", "SDC-1")
	for b := range r.Spread {
		t.addf("%d\t%s\t%s", b+1, pct(r.Spread[b]), pct(r.SDC1[b]))
	}
	return fmt.Sprintf("%s / %s propagation to final layer:\n%s", r.Network, r.DType, t.String())
}

// ---- E8: Table 6 — datapath FIT rate × network × data type ----

// Table6Cell is one datapath FIT entry.
type Table6Cell struct {
	Network string
	DType   numeric.Type
	SDCProb float64
	FIT     float64
}

// Table6 computes datapath FIT rates: the Fig. 3 SDC-1 probabilities
// applied to the canonical datapath latch plane (Eq. 1) at the Eyeriss
// 16 nm PE count.
func Table6(cfg Config, networks []string, dtypes []numeric.Type) []Table6Cell {
	var cells []Table6Cell
	for _, name := range networks {
		for _, dt := range dtypes {
			c := campaignFor(cfg, name, dt)
			r := c.Run(faultinj.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers})
			p := r.Counts.Probability(sdc.SDC1)
			d := eyeriss.Params16nm.Datapath(dt)
			cells = append(cells, Table6Cell{
				Network: name, DType: dt, SDCProb: p,
				FIT: fit.Rate(d.TotalLatchBits(), p),
			})
		}
	}
	return cells
}

// FormatTable6 renders the datapath FIT table.
func FormatTable6(cells []Table6Cell) string {
	t := &table{}
	t.add("Network", "DataType", "SDC-1", "Datapath FIT")
	for _, c := range cells {
		t.addf("%s\t%s\t%s\t%.4g", c.Network, c.DType, pct(c.SDCProb), c.FIT)
	}
	t.add("", "", "", fmt.Sprintf("(latch plane: %d PEs x %d latches)", eyeriss.Params16nm.NumPEs, accel.LatchesPerPE))
	return t.String()
}
