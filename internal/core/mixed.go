package core

import (
	"math/rand"

	"repro/internal/eyeriss"
	"repro/internal/fit"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

// MixedPrecisionRow evaluates the reduced-precision storage protocol the
// paper defers to future work (§6.1): fmaps are stored in the global
// buffer in Storage format and unfolded to Compute format in the datapath.
// Shrinking Storage cuts buffer FIT twice over — the buffer holds fewer
// bits (the S term of Eq. 1) AND a bounded-range storage format caps the
// value deviation a flipped bit can cause (the SDC term).
type MixedPrecisionRow struct {
	Network          string
	Compute, Storage numeric.Type
	// SDCProb is the SDC-1 probability of global-buffer faults under this
	// protocol.
	SDCProb float64
	// FIT scales the Table 7 global-buffer capacity by the storage width
	// (narrower words -> proportionally smaller buffer footprint for the
	// same fmaps).
	FIT float64
}

// MixedPrecision runs a global-buffer fault campaign with split
// compute/storage formats.
func MixedPrecision(cfg Config, netName string, compute, storage numeric.Type) MixedPrecisionRow {
	net := buildNet(cfg, netName)
	inputs := inputsFor(netName, cfg.Inputs)

	// Golden executions under the storage protocol.
	goldens := make([]*network.Execution, len(inputs))
	for i, in := range inputs {
		goldens[i] = net.ForwardStored(compute, storage, in)
	}

	// MAC-count residency weights over MAC layers.
	type macLayer struct {
		idx int
		cum int64
	}
	var macs []macLayer
	var total int64
	shape := net.InShape
	for i, l := range net.Layers {
		if m := l.MACs(shape); m > 0 {
			total += m
			macs = append(macs, macLayer{idx: i, cum: total})
		}
		shape = l.OutShape(shape)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var counts sdc.Counts
	for i := 0; i < cfg.Injections; i++ {
		g := goldens[i%len(inputs)]
		// Residency-weighted layer pick.
		m := rng.Int63n(total)
		li := macs[len(macs)-1].idx
		for _, ml := range macs {
			if m < ml.cum {
				li = ml.idx
				break
			}
		}
		in := g.Input
		if li > 0 {
			in = g.Acts[li-1]
		}
		corrupted := in.Clone()
		e := rng.Intn(len(corrupted.Data))
		// The upset flips a bit of the *stored* word.
		corrupted.Data[e] = storage.FlipBit(corrupted.Data[e], rng.Intn(storage.Width()))
		faulty := net.ForwardStoredFromInput(compute, storage, g, li, corrupted)
		counts.Add(sdc.Classify(net, g, faulty))
	}

	p := counts.Probability(sdc.SDC1)
	// Buffer footprint scales with the storage width relative to the
	// 16-bit words Table 7 assumes.
	bits := eyeriss.Params16nm.ComponentBits(eyeriss.GlobalBuffer)
	bits = bits * int64(storage.Width()) / 16
	return MixedPrecisionRow{
		Network: netName, Compute: compute, Storage: storage,
		SDCProb: p,
		FIT:     fit.Rate(bits, p),
	}
}

// FormatMixedPrecision renders the protocol comparison.
func FormatMixedPrecision(rows []MixedPrecisionRow) string {
	t := &table{}
	t.add("Network", "Compute", "Storage", "GB SDC-1", "GB FIT")
	for _, r := range rows {
		t.addf("%s\t%s\t%s\t%s\t%.4g", r.Network, r.Compute, r.Storage, pct(r.SDCProb), r.FIT)
	}
	return t.String()
}
