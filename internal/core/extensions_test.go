package core

import (
	"strings"
	"testing"

	"repro/internal/numeric"
	"repro/internal/sdc"
)

func TestAblateLRNMasking(t *testing.T) {
	// Removing LRN must not decrease layer-1 SDC probability — the paper's
	// §5.1.4 attribution, tested directly.
	cfg := Config{Injections: 250, Inputs: 1, Seed: 23}
	res := AblateLRN(cfg, "AlexNet", numeric.Float16)
	if res.AblatedSDC < res.BaselineSDC {
		t.Errorf("no-LRN layer-1 SDC %.4f below baseline %.4f", res.AblatedSDC, res.BaselineSDC)
	}
	if !strings.Contains(res.Format(), "no-LRN") {
		t.Error("format missing ablation name")
	}
}

func TestFormatRecommendationsAllNetworks(t *testing.T) {
	out := FormatRecommendations(Config{Inputs: 1}, []string{"ConvNet", "AlexNet"})
	if !strings.Contains(out, "recommended") {
		t.Errorf("no recommendation in:\n%s", out)
	}
	// ConvNet's small ranges fit the 16-bit fixed format.
	rec := FormatRecommendation(Config{Inputs: 2}, "ConvNet")
	if !rec.Valid {
		t.Fatal("no valid recommendation for ConvNet")
	}
	if rec.Best != numeric.Fx16RB10 {
		t.Errorf("ConvNet recommendation = %v, want 16b_rb10", rec.Best)
	}
}

func TestReuseReportCoversNetworks(t *testing.T) {
	out := ReuseReport([]string{"ConvNet", "NiN"})
	for _, want := range []string{"ConvNet", "NiN", "conv1", "WeightReads"} {
		if !strings.Contains(out, want) {
			t.Errorf("reuse report missing %q", want)
		}
	}
}

func TestScheduleReportCoversNetworks(t *testing.T) {
	out := ScheduleReport([]string{"AlexNet"})
	for _, want := range []string{"AlexNet", "conv1", "fc8", "efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule report missing %q", want)
		}
	}
}

func TestTable8ResidencyRuns(t *testing.T) {
	cfg := Config{Injections: 40, Inputs: 1, Seed: 25}
	cells := Table8Residency(cfg, []string{"ConvNet"})
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.SDCProb < 0 || c.SDCProb > 1 {
			t.Errorf("%s: SDC %v out of range", c.Buffer, c.SDCProb)
		}
	}
}

func TestMixedPrecisionNarrowStorageHelps(t *testing.T) {
	// The reduced-precision storage protocol: FLOAT16 storage must yield
	// a lower global-buffer FIT than FLOAT storage at the same compute
	// format (half the bits; bounded deviations).
	cfg := Config{Injections: 150, Inputs: 1, Seed: 27}
	wide := MixedPrecision(cfg, "AlexNet", numeric.Float, numeric.Float)
	narrow := MixedPrecision(cfg, "AlexNet", numeric.Float, numeric.Float16)
	if narrow.FIT >= wide.FIT {
		t.Errorf("FLOAT16 storage FIT %.4g not below FLOAT storage FIT %.4g", narrow.FIT, wide.FIT)
	}
	out := FormatMixedPrecision([]MixedPrecisionRow{wide, narrow})
	if !strings.Contains(out, "Storage") {
		t.Error("format missing header")
	}
}

func TestWeightsDirFallsBackSilently(t *testing.T) {
	// A WeightsDir without files must fall back to synthetic weights and
	// produce a working campaign.
	cfg := Config{Injections: 20, Inputs: 1, Seed: 29, WeightsDir: t.TempDir()}
	res := Fig3(cfg, []string{"ConvNet"}, []numeric.Type{numeric.Fx16RB10})
	if res.Rows[0].Prob[0] < 0 {
		t.Fatal("campaign failed")
	}
}

func TestValidatePEArrayAllMatch(t *testing.T) {
	res := ValidatePEArray(Config{Injections: 40, Inputs: 1, Seed: 31}, "ConvNet")
	if res.Checked != 40 {
		t.Fatalf("checked = %d", res.Checked)
	}
	if res.Matches != res.Checked {
		t.Errorf("only %d/%d faults matched the abstract model", res.Matches, res.Checked)
	}
	if !strings.Contains(res.Format(), "bit-identical") {
		t.Error("format missing summary")
	}
}

func TestReplicateStability(t *testing.T) {
	// The ConvNet/32b_rb10 SDC-1 probability must be stable across seeds:
	// the relative spread at n=150 stays well under the mean.
	cfg := Config{Injections: 150, Inputs: 1, Seed: 40}
	rep := Replicate(cfg, 4, func(c Config) float64 {
		res := Fig3(c, []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10})
		return res.Rows[0].Prob[sdc.SDC1]
	})
	if rep.Mean <= 0.05 {
		t.Errorf("mean SDC-1 %.4f suspiciously low", rep.Mean)
	}
	if rep.StdDev > rep.Mean {
		t.Errorf("cross-seed spread %.4f exceeds the mean %.4f", rep.StdDev, rep.Mean)
	}
	if len(rep.Values) != 4 {
		t.Fatalf("values = %d", len(rep.Values))
	}
	if !strings.Contains(rep.String(), "n=4") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestReplicatePanicsOnZeroSeeds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Replicate with 0 seeds did not panic")
		}
	}()
	Replicate(Config{}, 0, func(Config) float64 { return 0 })
}

func TestLatchBreakdown(t *testing.T) {
	cfg := Config{Injections: 200, Inputs: 1, Seed: 33}
	rows := LatchBreakdown(cfg, "ConvNet", numeric.Fx32RB10)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 latch classes", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Trials
		if r.SDCProb < 0 || r.SDCProb > 1 {
			t.Errorf("%v: SDC %v out of range", r.Target, r.SDCProb)
		}
	}
	if total != 200 {
		t.Errorf("trials partition = %d, want 200", total)
	}
	if !strings.Contains(FormatLatchBreakdown(rows), "accum-latch") {
		t.Error("format missing latch names")
	}
}
