package core

import (
	"fmt"
	"math"

	"repro/internal/detect"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/fit"
	"repro/internal/harden"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

// ---- E11: Figure 8 — SED precision and recall ----

// Fig8Row is one network's detector scores, averaged across data types and
// hardware components as in the paper's Figure 8.
type Fig8Row struct {
	Network   string
	Precision float64
	Recall    float64
	// PerDType keeps the per-format breakdown for inspection.
	PerDType map[numeric.Type]faultinj.Detection
}

// SEDDataTypes are the formats the paper evaluates the detector on: the
// three FP types plus 32b_rb10. (16b_rb10 and 32b_rb26 suppress the value
// symptoms, and ConvNet lacks them — §6.2.)
var SEDDataTypes = []numeric.Type{numeric.Double, numeric.Float, numeric.Float16, numeric.Fx32RB10}

// SEDNetworks are the networks of the Figure 8 evaluation.
var SEDNetworks = []string{"AlexNet", "CaffeNet", "NiN"}

// Fig8 learns the symptom detector per (network, format) and evaluates it
// against datapath and buffer fault campaigns.
func Fig8(cfg Config, networks []string, dtypes []numeric.Type) []Fig8Row {
	var rows []Fig8Row
	for _, name := range networks {
		row := Fig8Row{Network: name, PerDType: map[numeric.Type]faultinj.Detection{}}
		var agg faultinj.Detection
		for _, dt := range dtypes {
			det := LearnDetector(cfg, name, dt)
			net := buildNet(cfg, name)
			checker := func(e *network.Execution) bool { return det.Check(net, e) }

			var forType faultinj.Detection
			// Datapath faults.
			c := faultinj.New(net, dt, inputsFor(name, cfg.Inputs))
			r := c.Run(faultinj.Options{
				N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers,
				Detector: checker,
			})
			forType.Merge(r.Detection)
			// Buffer faults (the two dominant classes: Global Buffer and
			// Filter SRAM).
			camp := bufferCampaign(cfg, name, dt)
			for _, b := range []eyeriss.Buffer{eyeriss.GlobalBuffer, eyeriss.FilterSRAM} {
				br := camp.Run(b, eyeriss.Options{
					N: cfg.Injections / 2, Seed: cfg.Seed + int64(b), Workers: cfg.Workers,
					Detector: checker,
				})
				forType.Merge(br.Detection)
			}
			row.PerDType[dt] = forType
			agg.Merge(forType)
		}
		row.Precision = agg.Precision()
		row.Recall = agg.Recall()
		rows = append(rows, row)
	}
	return rows
}

// LearnDetector trains the §6.2 symptom detector for a network and format.
// Training images are drawn from an index range disjoint from the campaign
// inputs, so the learned ranges generalize rather than memorize.
func LearnDetector(cfg Config, name string, dt numeric.Type) *detect.Detector {
	net := buildNet(cfg, name)
	n := cfg.Inputs * 4
	if n < 8 {
		n = 8
	}
	return detect.Learn(net, dt, trainingInputs(name, n), detect.DefaultCushion)
}

// FormatFig8 renders the precision/recall table.
func FormatFig8(rows []Fig8Row) string {
	t := &table{}
	t.add("Network", "Precision", "Recall")
	for _, r := range rows {
		t.addf("%s\t%s\t%s", r.Network, pct(r.Precision), pct(r.Recall))
	}
	return t.String()
}

// ---- E12-E14: Table 9 and Figure 9 — selective latch hardening ----

// Table9 returns the hardened latch design space.
func Table9() []harden.Design {
	return []harden.Design{harden.Baseline, harden.RCC, harden.SEUT, harden.TMR}
}

// FormatTable9 renders the design space.
func FormatTable9(designs []harden.Design) string {
	t := &table{}
	t.add("Latch Type", "Area Overhead", "FIT Reduction")
	for _, d := range designs {
		t.addf("%s\t%.2fx\t%gx", d.Name, d.Area, d.Reduction)
	}
	return t.String()
}

// Fig9Result holds the SLH exploration for one network and format.
type Fig9Result struct {
	Network string
	DType   numeric.Type
	// Sensitivity is the per-bit FIT vector measured by the Fig. 4
	// campaign.
	Sensitivity harden.Sensitivity
	// Beta characterizes its asymmetry (Fig. 9a annotation).
	Beta float64
	// CurveX/CurveY is the perfect-protection curve of Fig. 9a.
	CurveX, CurveY []float64
	// Targets and the per-design overhead series of Fig. 9b/9c; NaN marks
	// unreachable targets.
	Targets  []float64
	Overhead map[string][]float64
}

// Fig9Targets is the sweep of whole-word FIT reduction targets (the x-axis
// of Fig. 9b/9c: 1x .. 100x).
var Fig9Targets = []float64{1.5, 2, 4, 6.3, 10, 20, 37, 60, 100}

// Fig9 measures per-bit sensitivity and explores the hardening design
// space for one network and format.
func Fig9(cfg Config, netName string, dt numeric.Type) *Fig9Result {
	f4 := Fig4(cfg, netName, dt)
	s := harden.Sensitivity(f4.Sensitivity())
	xs, ys := s.ProtectionCurve()
	res := &Fig9Result{
		Network: netName, DType: dt,
		Sensitivity: s,
		Beta:        s.Beta(),
		CurveX:      xs, CurveY: ys,
		Targets:  Fig9Targets,
		Overhead: map[string][]float64{},
	}
	for _, d := range harden.Designs {
		d := d
		res.Overhead[d.Name] = harden.OverheadCurve(s, Fig9Targets, func(s harden.Sensitivity, t float64) (harden.Assignment, bool) {
			return harden.SingleDesignPlan(s, d, t)
		})
	}
	res.Overhead["Multi"] = harden.OverheadCurve(s, Fig9Targets, harden.MultiPlan)
	return res
}

// Format renders the Fig. 9 exploration.
func (r *Fig9Result) Format() string {
	t := &table{}
	t.add("TargetReduction", "RCC", "SEUT", "TMR", "Multi")
	fmtOv := func(v float64) string {
		if math.IsNaN(v) {
			return "unreachable"
		}
		return fmt.Sprintf("%.1f%%", v*100)
	}
	for i, target := range r.Targets {
		t.addf("%gx\t%s\t%s\t%s\t%s", target,
			fmtOv(r.Overhead["RCC"][i]), fmtOv(r.Overhead["SEUT"][i]),
			fmtOv(r.Overhead["TMR"][i]), fmtOv(r.Overhead["Multi"][i]))
	}
	return fmt.Sprintf("%s / %s (β=%.2f) latch area overhead vs FIT reduction target:\n%s",
		r.Network, r.DType, r.Beta, t.String())
}

// ---- E15: SED FIT reduction on Eyeriss ----

// SEDFITRow compares a configuration's Eyeriss FIT with and without the
// symptom detector (the paper's 8.55 → 0.35 style numbers for FLOAT).
type SEDFITRow struct {
	Network   string
	DType     numeric.Type
	FITBefore float64
	FITAfter  float64
	Recall    float64
}

// SEDFIT estimates the detector's FIT reduction: every detected
// SDC-causing fault stops counting toward the SDC probability, so each
// component's effective SDC probability scales by (1 - recall).
func SEDFIT(cfg Config, netName string, dt numeric.Type) SEDFITRow {
	det := LearnDetector(cfg, netName, dt)
	net := buildNet(cfg, netName)
	checker := func(e *network.Execution) bool { return det.Check(net, e) }

	// Datapath component.
	c := faultinj.New(net, dt, inputsFor(netName, cfg.Inputs))
	r := c.Run(faultinj.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers, Detector: checker})
	dp := eyeriss.Params16nm.Datapath(dt)
	components := []fit.Component{{Name: "datapath", Bits: dp.TotalLatchBits(), SDCProb: r.Counts.Probability(sdc.SDC1)}}
	var detTally faultinj.Detection
	detTally.Merge(r.Detection)

	// Buffer components.
	camp := bufferCampaign(cfg, netName, dt)
	for _, b := range eyeriss.Buffers {
		br := camp.Run(b, eyeriss.Options{N: cfg.Injections / 2, Seed: cfg.Seed + int64(b)*3, Workers: cfg.Workers, Detector: checker})
		components = append(components, eyeriss.FITComponent(eyeriss.Params16nm, b, br.Counts.Probability(sdc.SDC1)))
		detTally.Merge(br.Detection)
	}

	before := fit.Total(components)
	recall := detTally.Recall()
	return SEDFITRow{
		Network: netName, DType: dt,
		FITBefore: before,
		FITAfter:  before * (1 - recall),
		Recall:    recall,
	}
}

// FormatSEDFIT renders the before/after comparison.
func FormatSEDFIT(rows []SEDFITRow) string {
	t := &table{}
	t.add("Network", "DataType", "FIT before", "FIT after SED", "Recall")
	for _, r := range rows {
		t.addf("%s\t%s\t%.4g\t%.4g\t%s", r.Network, r.DType, r.FITBefore, r.FITAfter, pct(r.Recall))
	}
	return t.String()
}
