package core

import (
	"fmt"
	"math"
)

// Replication summarizes a statistic measured across independent campaign
// seeds — the reproduction's answer to "how stable is this number?",
// complementing the per-campaign binomial error bars.
type Replication struct {
	// Values holds the per-seed measurements.
	Values []float64
	// Mean and StdDev summarize them (sample standard deviation).
	Mean, StdDev float64
}

// Replicate runs measure once per seed (cfg.Seed + i) and summarizes the
// returned statistic.
func Replicate(cfg Config, seeds int, measure func(Config) float64) Replication {
	if seeds <= 0 {
		panic("core: Replicate needs at least one seed")
	}
	r := Replication{Values: make([]float64, seeds)}
	for i := 0; i < seeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		r.Values[i] = measure(c)
		r.Mean += r.Values[i]
	}
	r.Mean /= float64(seeds)
	if seeds > 1 {
		var ss float64
		for _, v := range r.Values {
			d := v - r.Mean
			ss += d * d
		}
		r.StdDev = math.Sqrt(ss / float64(seeds-1))
	}
	return r
}

// String formats the replication as mean ± sd (n).
func (r Replication) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean, r.StdDev, len(r.Values))
}
