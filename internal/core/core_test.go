package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/harden"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

// tiny keeps unit-test campaigns fast on small machines; the benchmarks
// and cmd/paperrepro run the larger configurations.
var tiny = Config{Injections: 80, Inputs: 1, Seed: 3}

func TestFig3ConvNetIsMostVulnerable(t *testing.T) {
	// Paper: ConvNet's SDC probabilities are far above the deeper
	// networks', and 32b_rb10 is far above 32b_rb26.
	res := Fig3(tiny, []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10, numeric.Fx32RB26})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rb10, rb26 := res.Rows[0], res.Rows[1]
	if rb10.DType != numeric.Fx32RB10 {
		rb10, rb26 = rb26, rb10
	}
	if rb10.Prob[sdc.SDC1] <= rb26.Prob[sdc.SDC1] {
		t.Errorf("32b_rb10 SDC-1 %.3f not above 32b_rb26 %.3f", rb10.Prob[sdc.SDC1], rb26.Prob[sdc.SDC1])
	}
	if rb10.Prob[sdc.SDC1] == 0 {
		t.Error("ConvNet/32b_rb10 SDC-1 is zero; campaign misconfigured")
	}
	out := res.Format()
	if !strings.Contains(out, "ConvNet") || !strings.Contains(out, "32b_rb10") {
		t.Errorf("Format output missing headers:\n%s", out)
	}
}

func TestFig3NiNHasNoConfidenceSDCs(t *testing.T) {
	res := Fig3(tiny, []string{"NiN"}, []numeric.Type{numeric.Fx32RB10})
	row := res.Rows[0]
	if row.Defined[sdc.SDC10] || row.Defined[sdc.SDC20] {
		t.Error("NiN should not define confidence SDCs (no softmax)")
	}
	if !strings.Contains(res.Format(), "N/A") {
		t.Error("Format should mark undefined criteria as N/A")
	}
}

func TestFig4HighBitsOnly(t *testing.T) {
	cfg := Config{Injections: 320, Inputs: 1, Seed: 5}
	res := Fig4(cfg, "ConvNet", numeric.Fx16RB10)
	if len(res.Prob) != 16 {
		t.Fatalf("prob entries = %d", len(res.Prob))
	}
	// High integer bits dominate; the lowest fraction bits are near zero.
	high := res.Prob[14] + res.Prob[13] + res.Prob[12]
	low := res.Prob[0] + res.Prob[1] + res.Prob[2]
	if high <= low {
		t.Errorf("high-bit SDC %.3f not above low-bit %.3f", high, low)
	}
	if !strings.Contains(res.Format(), "integer") {
		t.Error("Format missing bit-class labels")
	}
	// Sensitivity vector converts for the SLH model.
	if s := res.Sensitivity(); len(s) != 16 {
		t.Errorf("sensitivity length %d", len(s))
	}
}

func TestFig5LargeDeviationsCauseSDCs(t *testing.T) {
	cfg := Config{Injections: 250, Inputs: 1, Seed: 7}
	res := Fig5(cfg, "ConvNet", numeric.Fx32RB10)
	if len(res.SDC)+len(res.Benign) == 0 {
		t.Fatal("no value samples recorded")
	}
	s, b := res.LargeDeviationShare(64)
	if s <= b {
		t.Errorf("large-deviation share: SDC %.3f should exceed benign %.3f", s, b)
	}
	if res.Format() == "" {
		t.Error("empty format")
	}
}

func TestFig6FCLayersElevated(t *testing.T) {
	cfg := Config{Injections: 400, Inputs: 1, Seed: 9}
	res := Fig6(cfg, "ConvNet", numeric.Fx32RB10)
	if len(res.Prob) != 5 {
		t.Fatalf("blocks = %d", len(res.Prob))
	}
	// Paper: FC layers (blocks 4-5 of ConvNet) have elevated SDC
	// probability versus the mean of the conv blocks.
	convMean := (res.Prob[0] + res.Prob[1] + res.Prob[2]) / 3
	fcMax := math.Max(res.Prob[3], res.Prob[4])
	if fcMax < convMean {
		t.Errorf("FC SDC %.3f below conv mean %.3f", fcMax, convMean)
	}
	if !strings.Contains(res.Format(), "Layer") {
		t.Error("format missing header")
	}
}

func TestFig7LRNCollapsesDistance(t *testing.T) {
	cfg := Config{Injections: 30, Inputs: 1, Seed: 11}
	alex := Fig7(cfg, "AlexNet", numeric.Double)
	nin := Fig7(cfg, "NiN", numeric.Double)
	if len(alex.Dist) != 8 || len(nin.Dist) != 12 {
		t.Fatalf("dist lengths %d/%d", len(alex.Dist), len(nin.Dist))
	}
	// AlexNet's LRN after layer 1 collapses the distance sharply; NiN has
	// no LRN, so its decay is much weaker.
	if alex.Dist[0] <= 0 {
		t.Fatal("AlexNet layer-1 distance should be positive")
	}
	alexDrop := alex.Dist[1] / alex.Dist[0]
	ninDrop := nin.Dist[1] / nin.Dist[0]
	if alexDrop >= ninDrop {
		t.Errorf("AlexNet L1->L2 ratio %.4f should be below NiN's %.4f (LRN)", alexDrop, ninDrop)
	}
	if !strings.Contains(alex.Format(), "Euclidean") {
		t.Error("format missing header")
	}
}

func TestTable4Shapes(t *testing.T) {
	rows := Table4(Config{Inputs: 2, Seed: 1}, []string{"ConvNet", "AlexNet"}, numeric.Double)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0].Ranges) != 5 || len(rows[1].Ranges) != 8 {
		t.Errorf("range counts %d/%d, want 5/8", len(rows[0].Ranges), len(rows[1].Ranges))
	}
	for _, row := range rows {
		for i, r := range row.Ranges {
			if r.Min > r.Max {
				t.Errorf("%s layer %d inverted range", row.Network, i+1)
			}
		}
	}
	if !strings.Contains(FormatTable4(rows), "AlexNet") {
		t.Error("format missing network")
	}
}

func TestTable5SpreadShape(t *testing.T) {
	cfg := Config{Injections: 200, Inputs: 1, Seed: 13}
	res := Table5(cfg, "ConvNet", numeric.Fx32RB10)
	if len(res.Spread) != 5 {
		t.Fatalf("blocks = %d", len(res.Spread))
	}
	for b, s := range res.Spread {
		if s < 0 || s > 1 {
			t.Errorf("spread[%d] = %v out of [0,1]", b, s)
		}
	}
	// Paper Table 5: a small fraction of widely spread faults become SDCs;
	// the spread rate generally exceeds the SDC rate in early layers.
	if res.Spread[0] < res.SDC1[0] {
		t.Logf("note: layer-1 spread %.3f below SDC %.3f (unusual)", res.Spread[0], res.SDC1[0])
	}
	if !strings.Contains(res.Format(), "spread") {
		t.Error("format missing header")
	}
}

func TestTable6FITOrdering(t *testing.T) {
	cells := Table6(tiny, []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10, numeric.Fx32RB26})
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	byType := map[numeric.Type]Table6Cell{}
	for _, c := range cells {
		byType[c.DType] = c
		if c.FIT < 0 {
			t.Errorf("negative FIT %v", c.FIT)
		}
	}
	if byType[numeric.Fx32RB10].FIT <= byType[numeric.Fx32RB26].FIT {
		t.Errorf("32b_rb10 FIT %.4g not above 32b_rb26 %.4g",
			byType[numeric.Fx32RB10].FIT, byType[numeric.Fx32RB26].FIT)
	}
	if !strings.Contains(FormatTable6(cells), "Datapath FIT") {
		t.Error("format missing header")
	}
}

func TestTable7Rows(t *testing.T) {
	rows := Table7()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NumPEs != 168 || rows[1].NumPEs != 1344 {
		t.Error("Table 7 parameter rows drifted")
	}
	if !strings.Contains(FormatTable7(rows), "65nm") {
		t.Error("format missing node labels")
	}
}

func TestTable8BufferHierarchy(t *testing.T) {
	cfg := Config{Injections: 60, Inputs: 1, Seed: 15}
	cells := Table8(cfg, []string{"ConvNet"})
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	byBuf := map[string]Table8Cell{}
	for _, c := range cells {
		byBuf[c.Buffer.String()] = c
	}
	// Paper Table 8 (ConvNet row): Global Buffer and Filter SRAM dominate;
	// their reuse makes buffer SDC probabilities much higher than PSum's
	// single-consumption faults.
	if byBuf["Filter SRAM"].SDCProb <= byBuf["PSum REG"].SDCProb {
		t.Errorf("Filter SRAM SDC %.3f not above PSum REG %.3f",
			byBuf["Filter SRAM"].SDCProb, byBuf["PSum REG"].SDCProb)
	}
	if byBuf["Global Buffer"].FIT <= 0 {
		t.Error("Global Buffer FIT should be positive for ConvNet")
	}
	total := EyerissTotalFIT(cells, 0.5, "ConvNet")
	if total <= 0.5 {
		t.Error("total FIT should include buffer contributions")
	}
	check := FormatBudgetCheck("ConvNet", total)
	if !strings.Contains(check, "ISO 26262") {
		t.Error("budget check missing standard reference")
	}
	if !strings.Contains(FormatTable8(cells), "Global Buffer") {
		t.Error("format missing buffer names")
	}
}

func TestFig8DetectorScores(t *testing.T) {
	// FLOAT has the widest redundant value range, so its symptoms are the
	// strongest (§5.1.3) — the right format for a fast smoke check.
	cfg := Config{Injections: 100, Inputs: 1, Seed: 17}
	rows := Fig8(cfg, []string{"AlexNet"}, []numeric.Type{numeric.Float})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Precision < 0.9 {
		t.Errorf("precision %.3f below 0.9", r.Precision)
	}
	// Recall at this tiny scale rides on a handful of SDCs; the aggregate
	// Figure 8 campaign measures 74-98%. Only guard against collapse.
	if r.Recall < 0.3 {
		t.Errorf("recall %.3f below 0.3", r.Recall)
	}
	if !strings.Contains(FormatFig8(rows), "Precision") {
		t.Error("format missing header")
	}
}

func TestTable9AndFig9(t *testing.T) {
	if len(Table9()) != 4 {
		t.Error("Table 9 should list baseline + 3 hardened designs")
	}
	cfg := Config{Injections: 320, Inputs: 1, Seed: 19}
	res := Fig9(cfg, "ConvNet", numeric.Fx16RB10)
	if res.Beta <= 0 {
		t.Errorf("beta = %v", res.Beta)
	}
	multi := res.Overhead["Multi"]
	tmr := res.Overhead["TMR"]
	for i := range multi {
		if math.IsNaN(multi[i]) {
			continue
		}
		if !math.IsNaN(tmr[i]) && multi[i] > tmr[i]+1e-9 {
			t.Errorf("Multi overhead %.4f above TMR %.4f at target %gx", multi[i], tmr[i], res.Targets[i])
		}
	}
	// RCC cannot reach the 100x target.
	rcc := res.Overhead["RCC"]
	if !math.IsNaN(rcc[len(rcc)-1]) {
		t.Error("RCC should be unreachable at 100x")
	}
	if !strings.Contains(res.Format(), "β=") {
		t.Error("format missing beta")
	}
	_ = harden.Baseline
}

func TestSEDFITReduces(t *testing.T) {
	cfg := Config{Injections: 60, Inputs: 1, Seed: 21}
	row := SEDFIT(cfg, "AlexNet", numeric.Float16)
	if row.FITBefore <= 0 {
		t.Fatal("FIT before should be positive")
	}
	if row.FITAfter > row.FITBefore {
		t.Errorf("SED increased FIT: %.4g -> %.4g", row.FITBefore, row.FITAfter)
	}
	out := FormatSEDFIT([]SEDFITRow{row})
	if !strings.Contains(out, "FIT after SED") {
		t.Error("format missing header")
	}
}

func TestConfigsExist(t *testing.T) {
	if Quick.Injections <= 0 || PaperScale.Injections != 3000 {
		t.Error("scale configs drifted")
	}
	if len(AllDataTypes) != 6 {
		t.Error("AllDataTypes should list the six Table 3 formats")
	}
}
