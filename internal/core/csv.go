package core

import (
	"encoding/csv"
	"strconv"
	"strings"

	"repro/internal/sdc"
)

// CSV serializations of the experiment results, for regenerating the
// paper's figures with external plotting tools. Each method returns a
// complete CSV document with a header row.

// writeCSV renders rows through encoding/csv (proper quoting for free).
func writeCSV(header []string, rows [][]string) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return sb.String()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// CSV renders the Figure 3 dataset.
func (r *Fig3Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Network, row.DType.String()}
		for _, k := range sdc.Kinds {
			if row.Defined[k] {
				cells = append(cells, f(row.Prob[k]), f(row.CI[k]))
			} else {
				cells = append(cells, "", "")
			}
		}
		rows = append(rows, cells)
	}
	return writeCSV([]string{
		"network", "dtype",
		"sdc1", "sdc1_ci", "sdc5", "sdc5_ci", "sdc10", "sdc10_ci", "sdc20", "sdc20_ci",
	}, rows)
}

// CSV renders the per-bit series of Figure 4.
func (r *Fig4Result) CSV() string {
	rows := make([][]string, 0, len(r.Prob))
	for bit := r.DType.Width() - 1; bit >= 0; bit-- {
		rows = append(rows, []string{
			r.Network, r.DType.String(), strconv.Itoa(bit),
			r.DType.Classify(bit).String(), f(r.Prob[bit]), f(r.CI[bit]),
		})
	}
	return writeCSV([]string{"network", "dtype", "bit", "class", "sdc1", "ci"}, rows)
}

// CSV renders the Figure 5 value scatter (one row per sampled fault).
func (r *Fig5Result) CSV() string {
	var rows [][]string
	for _, v := range r.SDC {
		rows = append(rows, []string{r.Network, r.DType.String(), f(v.Golden), f(v.Faulty), "sdc"})
	}
	for _, v := range r.Benign {
		rows = append(rows, []string{r.Network, r.DType.String(), f(v.Golden), f(v.Faulty), "benign"})
	}
	return writeCSV([]string{"network", "dtype", "golden", "faulty", "outcome"}, rows)
}

// CSV renders the Figure 6 per-layer series.
func (r *Fig6Result) CSV() string {
	rows := make([][]string, 0, len(r.Prob))
	for b := range r.Prob {
		rows = append(rows, []string{
			r.Network, r.DType.String(), strconv.Itoa(b + 1), f(r.Prob[b]), f(r.CI[b]),
		})
	}
	return writeCSV([]string{"network", "dtype", "layer", "sdc1", "ci"}, rows)
}

// CSV renders the Figure 7 distance series.
func (r *Fig7Result) CSV() string {
	rows := make([][]string, 0, len(r.Dist))
	for b, d := range r.Dist {
		rows = append(rows, []string{r.Network, r.DType.String(), strconv.Itoa(b + 1), f(d)})
	}
	return writeCSV([]string{"network", "dtype", "layer", "mean_euclidean_distance"}, rows)
}

// Table6CSV renders the datapath FIT table.
func Table6CSV(cells []Table6Cell) string {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{c.Network, c.DType.String(), f(c.SDCProb), f(c.FIT)})
	}
	return writeCSV([]string{"network", "dtype", "sdc1", "fit"}, rows)
}

// Table8CSV renders the buffer table.
func Table8CSV(cells []Table8Cell) string {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{c.Network, c.Buffer.String(), f(c.SDCProb), f(c.CI), f(c.FIT)})
	}
	return writeCSV([]string{"network", "buffer", "sdc1", "ci", "fit"}, rows)
}

// CSV renders both Figure 9 curve families: the perfect-protection curve
// (kind=protection) and the overhead-vs-target series (kind=overhead,
// one row per design and target; unreachable targets have an empty cell).
func (r *Fig9Result) CSV() string {
	var rows [][]string
	for i := range r.CurveX {
		rows = append(rows, []string{
			r.Network, r.DType.String(), "protection", "",
			f(r.CurveX[i]), f(r.CurveY[i]),
		})
	}
	for name, series := range r.Overhead {
		for i, target := range r.Targets {
			v := ""
			if series[i] == series[i] { // not NaN
				v = f(series[i])
			}
			rows = append(rows, []string{
				r.Network, r.DType.String(), "overhead", name,
				f(target), v,
			})
		}
	}
	return writeCSV([]string{"network", "dtype", "kind", "design", "x", "y"}, rows)
}

// Fig8CSV renders the detector scores.
func Fig8CSV(rows []Fig8Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Network, f(r.Precision), f(r.Recall)})
	}
	return writeCSV([]string{"network", "precision", "recall"}, out)
}
