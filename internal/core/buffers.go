package core

import (
	"fmt"

	"repro/internal/eyeriss"
	"repro/internal/fit"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
)

// ---- E9: Table 7 — Eyeriss microarchitecture scaling ----

// Table7 returns the published 65 nm and 16 nm Eyeriss parameter rows plus
// the naive factor-8 projection for comparison.
func Table7() []eyeriss.Params {
	return []eyeriss.Params{
		eyeriss.Params65nm,
		eyeriss.Params16nm,
		eyeriss.Scale(eyeriss.Params65nm, 8, "16nm(scaled x8)"),
	}
}

// FormatTable7 renders the parameter table.
func FormatTable7(rows []eyeriss.Params) string {
	t := &table{}
	t.add("Node", "PEs", "GlobalBuf(KB)", "FilterSRAM(KB)", "ImgREG(KB)", "PSumREG(KB)")
	for _, p := range rows {
		t.addf("%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g",
			p.FeatureSize, p.NumPEs, p.GlobalBufferKB, p.FilterSRAMKB, p.ImgRegKB, p.PSumRegKB)
	}
	return t.String()
}

// ---- E10: Table 8 — buffer SDC probability and FIT per network ----

// Table8Cell is one (network, buffer) entry.
type Table8Cell struct {
	Network string
	Buffer  eyeriss.Buffer
	SDCProb float64
	CI      float64
	FIT     float64
}

// bufferCampaign builds the Eyeriss campaign for one network.
func bufferCampaign(cfg Config, name string, dt numeric.Type) *eyeriss.Campaign {
	return &eyeriss.Campaign{
		Build:  func() *network.Network { return buildNet(cfg, name) },
		DType:  dt,
		Inputs: inputsFor(name, cfg.Inputs),
	}
}

// Table8 runs the Eyeriss buffer-fault campaigns (16b_rb10, as Eyeriss
// implements a 16-bit fixed-point datapath) and derives per-buffer FIT.
func Table8(cfg Config, networks []string) []Table8Cell {
	const dt = numeric.Fx16RB10
	var cells []Table8Cell
	for _, name := range networks {
		camp := bufferCampaign(cfg, name, dt)
		for _, b := range eyeriss.Buffers {
			r := camp.Run(b, eyeriss.Options{N: cfg.Injections, Seed: cfg.Seed, Workers: cfg.Workers})
			p := r.Counts.Probability(sdc.SDC1)
			cells = append(cells, Table8Cell{
				Network: name, Buffer: b, SDCProb: p,
				CI:  stats.Proportion{Successes: r.Counts.Hits[sdc.SDC1], Trials: r.Counts.DefinedTrials[sdc.SDC1]}.CI95(),
				FIT: eyeriss.FITComponent(eyeriss.Params16nm, b, p).FIT(),
			})
		}
	}
	return cells
}

// FormatTable8 renders the buffer table.
func FormatTable8(cells []Table8Cell) string {
	t := &table{}
	t.add("Network", "Buffer", "SDC-1", "±CI", "FIT")
	for _, c := range cells {
		t.addf("%s\t%s\t%s\t%.2f%%\t%.4g", c.Network, c.Buffer, pct(c.SDCProb), c.CI*100, c.FIT)
	}
	return t.String()
}

// EyerissTotalFIT sums a network's Table 8 buffer FIT entries with its
// datapath FIT — the "overall FIT rate of Eyeriss" the paper compares
// against the ISO 26262 budget.
func EyerissTotalFIT(cells []Table8Cell, datapathFIT float64, network string) float64 {
	total := datapathFIT
	for _, c := range cells {
		if c.Network == network {
			total += c.FIT
		}
	}
	return total
}

// FormatBudgetCheck renders the ISO 26262 comparison for a total FIT rate.
func FormatBudgetCheck(network string, totalFIT float64) string {
	verdict := "within"
	if fit.ExceedsBudget(totalFIT, fit.ISO26262SoCBudget) {
		verdict = "EXCEEDS"
	}
	return fmt.Sprintf("%s: Eyeriss total FIT %.4g %s the %.0f-FIT ISO 26262 SoC budget\n",
		network, totalFIT, verdict, fit.ISO26262SoCBudget)
}
