package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// TestLRNInputGradientNumerically isolates backwardLRN and checks its
// input gradient against central finite differences of a scalar loss
// L = Σ g_i · LRN(a)_i with fixed random g — the cross-channel terms are
// the easiest part of the backward pass to get wrong.
func TestLRNInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := layers.NewLRN("n")
	l.Alpha = 0.3 // strengthen the cross terms beyond AlexNet's 1e-4
	in := tensor.New(tensor.Shape{C: 7, H: 2, W: 2})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	gout := make([]float64, len(in.Data))
	for i := range gout {
		gout[i] = rng.NormFloat64()
	}

	loss := func() float64 {
		out := l.Forward(&layers.Context{DType: numeric.Double}, in)
		var s float64
		for i, v := range out.Data {
			s += gout[i] * v
		}
		return s
	}

	gin := backwardLRN(l, in, gout)
	const eps = 1e-6
	for k := 0; k < 30; k++ {
		j := rng.Intn(len(in.Data))
		orig := in.Data[j]
		in.Data[j] = orig + eps
		lp := loss()
		in.Data[j] = orig - eps
		lm := loss()
		in.Data[j] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-gin[j]) > 1e-5*math.Max(1, math.Abs(num)) {
			t.Errorf("din[%d]: analytic %.8g vs numeric %.8g", j, gin[j], num)
		}
	}
}

// TestMomentumAcceleratesDescent verifies the velocity update: with
// momentum, repeated identical gradients produce growing steps.
func TestMomentumAcceleratesDescent(t *testing.T) {
	net := gradNet(71)
	fc := net.Layers[4].(*layers.FCLayer)
	tr := New(net, 0.01, 0.9)
	sample := makeSamples(1, 4, 200)[0]

	w0 := fc.Weights[0]
	tr.Step([]Sample{sample})
	step1 := math.Abs(fc.Weights[0] - w0)
	w1 := fc.Weights[0]
	tr.Step([]Sample{sample})
	step2 := math.Abs(fc.Weights[0] - w1)
	// Velocity accumulates, so the second step along a persistent gradient
	// direction is larger (unless the gradient is zero at this weight).
	if step1 > 0 && step2 <= step1*0.9 {
		t.Errorf("momentum did not accumulate: step1=%.3g step2=%.3g", step1, step2)
	}
}
