package train

import (
	"math"

	"repro/internal/layers"
	"repro/internal/tensor"
)

// Per-layer backward passes. Each takes the layer's forward input (and
// output where needed), the gradient w.r.t. the layer output, and returns
// the gradient w.r.t. the layer input, accumulating parameter gradients
// in place.

// backwardFC: out[o] = b[o] + Σ_i W[o][i]·in[i].
func backwardFC(l *layers.FCLayer, in *tensor.Tensor, gout, gw, gb []float64) []float64 {
	gin := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		go_ := gout[o]
		gb[o] += go_
		row := l.Weights[o*l.In : (o+1)*l.In]
		grow := gw[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			grow[i] += go_ * in.Data[i]
			gin[i] += go_ * row[i]
		}
	}
	return gin
}

// backwardConv mirrors ConvLayer.Forward's loop structure exactly.
func backwardConv(l *layers.ConvLayer, in *tensor.Tensor, gout, gw, gb []float64) []float64 {
	os := l.OutShape(in.Shape)
	gin := make([]float64, len(in.Data))
	inH, inW := in.Shape.H, in.Shape.W

	oi := 0
	for oc := 0; oc < l.OutC; oc++ {
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				g := gout[oi]
				oi++
				if g == 0 {
					continue
				}
				gb[oc] += g
				for ic := 0; ic < l.InC; ic++ {
					inBase := ic * inH * inW
					for kh := 0; kh < l.KH; kh++ {
						ih := oh*l.Stride + kh - l.Pad
						if ih < 0 || ih >= inH {
							continue
						}
						rowBase := inBase + ih*inW
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.Stride + kw - l.Pad
							if iw < 0 || iw >= inW {
								continue
							}
							wi := l.WeightIndex(oc, ic, kh, kw)
							gw[wi] += g * in.Data[rowBase+iw]
							gin[rowBase+iw] += g * l.Weights[wi]
						}
					}
				}
			}
		}
	}
	return gin
}

// backwardReLU gates gradients by the forward output's sign.
func backwardReLU(out *tensor.Tensor, gout []float64) []float64 {
	gin := make([]float64, len(gout))
	for i, v := range out.Data {
		if v > 0 {
			gin[i] = gout[i]
		}
	}
	return gin
}

// backwardPool routes each output gradient to the window's argmax
// (recomputed from the forward input; ties go to the first maximum, the
// same element the forward max found).
func backwardPool(l *layers.PoolLayer, in, out *tensor.Tensor, gout []float64) []float64 {
	gin := make([]float64, len(in.Data))
	os := out.Shape
	oi := 0
	for c := 0; c < os.C; c++ {
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				g := gout[oi]
				oi++
				if g == 0 {
					continue
				}
				best := math.Inf(-1)
				bi := -1
				for kh := 0; kh < l.K; kh++ {
					ih := oh*l.Stride + kh
					if ih >= in.Shape.H {
						break
					}
					for kw := 0; kw < l.K; kw++ {
						iw := ow*l.Stride + kw
						if iw >= in.Shape.W {
							break
						}
						if v := in.At(c, ih, iw); v > best {
							best = v
							bi = in.Index(c, ih, iw)
						}
					}
				}
				if bi >= 0 {
					gin[bi] += g
				}
			}
		}
	}
	return gin
}

// backwardLRN differentiates b_i = a_i · s_i^{-β} with
// s_i = k + (α/n)·Σ_{j∈w(i)} a_j²:
//
//	∂L/∂a_i = g_i·s_i^{-β} − 2β(α/n)·a_i·Σ_{j: i∈w(j)} g_j·a_j·s_j^{-β-1}
//
// where w(j) is the channel window centred on j (i ∈ w(j) ⇔ j ∈ w(i)).
func backwardLRN(l *layers.LRNLayer, in *tensor.Tensor, gout []float64) []float64 {
	gin := make([]float64, len(in.Data))
	half := l.N / 2
	C, H, W := in.Shape.C, in.Shape.H, in.Shape.W
	coef := 2 * l.Beta * l.Alpha / float64(l.N)

	for h := 0; h < H; h++ {
		for w := 0; w < W; w++ {
			// Precompute s_j and the shared term g_j·a_j·s_j^{-β-1} per
			// channel at this pixel.
			s := make([]float64, C)
			shared := make([]float64, C)
			for c := 0; c < C; c++ {
				lo, hi := c-half, c+half
				if lo < 0 {
					lo = 0
				}
				if hi >= C {
					hi = C - 1
				}
				var ss float64
				for cc := lo; cc <= hi; cc++ {
					v := in.At(cc, h, w)
					ss += v * v
				}
				s[c] = l.K + l.Alpha/float64(l.N)*ss
				idx := in.Index(c, h, w)
				shared[c] = gout[idx] * in.Data[idx] * math.Pow(s[c], -l.Beta-1)
			}
			for c := 0; c < C; c++ {
				idx := in.Index(c, h, w)
				g := gout[idx] * math.Pow(s[c], -l.Beta)
				lo, hi := c-half, c+half
				if lo < 0 {
					lo = 0
				}
				if hi >= C {
					hi = C - 1
				}
				var cross float64
				for j := lo; j <= hi; j++ {
					cross += shared[j]
				}
				gin[idx] = g - coef*in.Data[idx]*cross
			}
		}
	}
	return gin
}
