// Package train implements backpropagation and SGD for the simulator's
// networks. The paper's substrate (Tiny-CNN) is a trainable framework with
// pre-trained Caffe weights; this package closes that gap for the
// reproduction — networks can be trained on the synthetic labeled task
// (dataset.Labeled) so fault-injection campaigns run against genuinely
// trained classifiers instead of range-calibrated random weights.
//
// Training always runs in float64 (the accelerator formats are an
// inference-time choice); gradients are exact for every layer kind,
// including the LRN cross-channel normalization.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Sample is one labeled training example.
type Sample struct {
	Input *tensor.Tensor
	Label int
}

// Trainer holds the optimization state for one network.
type Trainer struct {
	Net *network.Network
	// LR is the SGD learning rate; Momentum the classical momentum
	// coefficient (0 disables it).
	LR, Momentum float64
	// Temperature divides raw scores before the loss-side softmax of
	// networks without their own softmax layer (NiN), keeping the
	// cross-entropy from saturating when scores span hundreds. 1 when
	// zero-valued. It has no effect on networks ending in softmax.
	Temperature float64
	// velocity per trainable layer: [layer] -> (weight velocity, bias
	// velocity).
	velW, velB map[int][]float64
}

// New creates a trainer with the given hyperparameters.
func New(net *network.Network, lr, momentum float64) *Trainer {
	return &Trainer{
		Net: net, LR: lr, Momentum: momentum,
		velW: map[int][]float64{}, velB: map[int][]float64{},
	}
}

// Loss computes the cross-entropy loss of a forward execution against a
// label at temperature 1. Networks ending in softmax use their own
// confidences; networks without one (NiN) get a softmax applied inside
// the loss.
func Loss(net *network.Network, exec *network.Execution, label int) float64 {
	return LossT(net, exec, label, 1)
}

// LossT is Loss with an explicit temperature for softmax-less networks.
func LossT(net *network.Network, exec *network.Execution, label int, temperature float64) float64 {
	p := probabilities(net, exec, temperature)
	return -math.Log(math.Max(p[label], 1e-300))
}

// probabilities returns the class distribution of an execution.
func probabilities(net *network.Network, exec *network.Execution, temperature float64) []float64 {
	out := exec.Output().Data
	if net.HasSoftmax() {
		return out
	}
	if temperature <= 0 {
		temperature = 1
	}
	z := make([]float64, len(out))
	for i, v := range out {
		z[i] = v / temperature
	}
	return softmax(z)
}

func softmax(z []float64) []float64 {
	max := math.Inf(-1)
	for _, v := range z {
		if v > max {
			max = v
		}
	}
	p := make([]float64, len(z))
	var sum float64
	for i, v := range z {
		p[i] = math.Exp(v - max)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Step runs one SGD minibatch: forward, backward, parameter update.
// It returns the mean loss and the batch accuracy.
func (t *Trainer) Step(batch []Sample) (loss, accuracy float64) {
	if len(batch) == 0 {
		panic("train: empty batch")
	}
	grads := newGradients(t.Net)
	correct := 0
	for _, s := range batch {
		exec := t.Net.Forward(numeric.Double, s.Input)
		loss += LossT(t.Net, exec, s.Label, t.Temperature)
		if exec.Top1() == s.Label {
			correct++
		}
		t.backward(exec, s.Label, grads)
	}
	loss /= float64(len(batch))
	accuracy = float64(correct) / float64(len(batch))
	t.apply(grads, float64(len(batch)))
	return loss, accuracy
}

// gradients accumulates dL/dW and dL/dB per trainable layer.
type gradients struct {
	w, b map[int][]float64
}

func newGradients(net *network.Network) *gradients {
	g := &gradients{w: map[int][]float64{}, b: map[int][]float64{}}
	for i, l := range net.Layers {
		switch tl := l.(type) {
		case *layers.ConvLayer:
			g.w[i] = make([]float64, len(tl.Weights))
			g.b[i] = make([]float64, len(tl.Bias))
		case *layers.FCLayer:
			g.w[i] = make([]float64, len(tl.Weights))
			g.b[i] = make([]float64, len(tl.Bias))
		}
	}
	return g
}

// backward propagates dL/dActs from the loss to every trainable layer,
// accumulating parameter gradients.
func (t *Trainer) backward(exec *network.Execution, label int, g *gradients) {
	net := t.Net
	nL := len(net.Layers)

	// Seed: d(cross-entropy with softmax)/d(pre-softmax scores) = p - y.
	// If the network ends in softmax, that layer is folded into the loss;
	// otherwise the fold happens at the raw output.
	temp := t.Temperature
	if temp <= 0 || net.HasSoftmax() {
		temp = 1
	}
	p := probabilities(net, exec, temp)
	grad := make([]float64, len(p))
	for i := range p {
		grad[i] = p[i] / temp
	}
	grad[label] -= 1 / temp

	start := nL - 1
	if net.HasSoftmax() {
		start = nL - 2 // softmax consumed by the loss gradient
	}

	for i := start; i >= 0; i-- {
		in := exec.Input
		if i > 0 {
			in = exec.Acts[i-1]
		}
		out := exec.Acts[i]
		switch l := net.Layers[i].(type) {
		case *layers.FCLayer:
			grad = backwardFC(l, in, grad, g.w[i], g.b[i])
		case *layers.ConvLayer:
			grad = backwardConv(l, in, grad, g.w[i], g.b[i])
		case *layers.ReLULayer:
			grad = backwardReLU(out, grad)
		case *layers.PoolLayer:
			grad = backwardPool(l, in, out, grad)
		case *layers.LRNLayer:
			grad = backwardLRN(l, in, grad)
		case *layers.SoftmaxLayer:
			panic("train: softmax may only appear as the final layer")
		default:
			panic(fmt.Sprintf("train: no backward for layer %T", l))
		}
	}
}

// apply updates parameters with momentum SGD.
func (t *Trainer) apply(g *gradients, batchSize float64) {
	scale := t.LR / batchSize
	for i, l := range t.Net.Layers {
		var w, b []float64
		switch tl := l.(type) {
		case *layers.ConvLayer:
			w, b = tl.Weights, tl.Bias
		case *layers.FCLayer:
			w, b = tl.Weights, tl.Bias
		default:
			continue
		}
		vw := t.velW[i]
		if vw == nil {
			vw = make([]float64, len(w))
			t.velW[i] = vw
		}
		vb := t.velB[i]
		if vb == nil {
			vb = make([]float64, len(b))
			t.velB[i] = vb
		}
		for j := range w {
			vw[j] = t.Momentum*vw[j] - scale*g.w[i][j]
			w[j] += vw[j]
		}
		for j := range b {
			vb[j] = t.Momentum*vb[j] - scale*g.b[i][j]
			b[j] += vb[j]
		}
	}
	// The parameters just changed under any attached quantized-weight
	// cache; drop it so later campaigns re-quantize the new values.
	t.Net.InvalidateQuantCache()
}

// Train runs steps minibatches drawn deterministically from the sample
// generator and returns the final step's loss and accuracy.
func (t *Trainer) Train(samples []Sample, batchSize, steps int, seed int64) (loss, accuracy float64) {
	if batchSize <= 0 || batchSize > len(samples) {
		panic("train: bad batch size")
	}
	rng := rand.New(rand.NewSource(seed))
	batch := make([]Sample, batchSize)
	for s := 0; s < steps; s++ {
		for j := range batch {
			batch[j] = samples[rng.Intn(len(samples))]
		}
		loss, accuracy = t.Step(batch)
	}
	return loss, accuracy
}

// Evaluate returns the classification accuracy over a sample set.
func Evaluate(net *network.Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if net.Forward(numeric.Double, s.Input).Top1() == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
