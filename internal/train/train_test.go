package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// gradNet exercises every trainable and non-trainable layer kind.
func gradNet(seed int64) *network.Network {
	rng := rand.New(rand.NewSource(seed))
	conv := layers.NewConv("conv1", 2, 3, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = rng.NormFloat64() * 0.4
	}
	for i := range conv.Bias {
		conv.Bias[i] = rng.NormFloat64() * 0.1
	}
	fc := layers.NewFC("fc2", 3*3*3, 4)
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.3
	}
	for i := range fc.Bias {
		fc.Bias[i] = rng.NormFloat64() * 0.1
	}
	n := &network.Network{
		Name:    "grad",
		InShape: tensor.Shape{C: 2, H: 6, W: 6},
		Classes: 4,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewLRN("norm1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func gradInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(tensor.Shape{C: 2, H: 6, W: 6})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	return in
}

// TestGradientCheck compares every analytic weight/bias gradient against
// central finite differences — the definitive correctness test for the
// whole backward chain (conv, ReLU, LRN, max-pool, FC, softmax+CE).
func TestGradientCheck(t *testing.T) {
	net := gradNet(1)
	in := gradInput(2)
	const label = 2
	const eps = 1e-6

	tr := New(net, 0, 0)
	g := newGradients(net)
	exec := net.Forward(numeric.Double, in)
	tr.backward(exec, label, g)

	lossAt := func() float64 {
		return Loss(net, net.Forward(numeric.Double, in), label)
	}
	check := func(name string, params []float64, grads []float64) {
		// Sample a subset of parameters to keep the test fast but
		// deterministic.
		rng := rand.New(rand.NewSource(3))
		for k := 0; k < 25 && k < len(params); k++ {
			j := rng.Intn(len(params))
			orig := params[j]
			params[j] = orig + eps
			lp := lossAt()
			params[j] = orig - eps
			lm := lossAt()
			params[j] = orig
			num := (lp - lm) / (2 * eps)
			ana := grads[j]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if math.Abs(num-ana)/scale > 1e-4 {
				t.Errorf("%s[%d]: analytic %.8g vs numeric %.8g", name, j, ana, num)
			}
		}
	}

	conv := net.Layers[0].(*layers.ConvLayer)
	fc := net.Layers[4].(*layers.FCLayer)
	check("conv.W", conv.Weights, g.w[0])
	check("conv.B", conv.Bias, g.b[0])
	check("fc.W", fc.Weights, g.w[4])
	check("fc.B", fc.Bias, g.b[4])
}

// TestGradientCheckNoSoftmax exercises the loss-side softmax fold used for
// NiN-style networks.
func TestGradientCheckNoSoftmax(t *testing.T) {
	net := gradNet(5)
	net.Layers = net.Layers[:len(net.Layers)-1] // drop softmax
	in := gradInput(6)
	const label = 1
	const eps = 1e-6

	tr := New(net, 0, 0)
	g := newGradients(net)
	tr.backward(net.Forward(numeric.Double, in), label, g)

	fc := net.Layers[4].(*layers.FCLayer)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 20; k++ {
		j := rng.Intn(len(fc.Weights))
		orig := fc.Weights[j]
		fc.Weights[j] = orig + eps
		lp := Loss(net, net.Forward(numeric.Double, in), label)
		fc.Weights[j] = orig - eps
		lm := Loss(net, net.Forward(numeric.Double, in), label)
		fc.Weights[j] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-g.w[4][j]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Errorf("fc.W[%d]: analytic %.8g vs numeric %.8g", j, g.w[4][j], num)
		}
	}
}

func TestLossDecreasesUnderSGD(t *testing.T) {
	net := gradNet(11)
	samples := makeSamples(12, 4, 100)
	tr := New(net, 0.05, 0.9)
	first, _ := tr.Step(samples[:8])
	var last float64
	for i := 0; i < 40; i++ {
		last, _ = tr.Step(samples[:8])
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

// makeSamples builds labeled samples for a C-channel 6x6 toy task by
// cropping the synthetic labeled dataset.
func makeSamples(n, classes int, seed int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		img, label := dataset.Labeled(dataset.CIFARLike, 6, classes, seed+i)
		in := tensor.New(tensor.Shape{C: 2, H: 6, W: 6})
		copy(in.Data, img.Data[:2*36])
		out[i] = Sample{Input: in, Label: label}
	}
	return out
}

func TestTrainingBeatsChance(t *testing.T) {
	// A small conv net must learn the 3-class synthetic task well above
	// the 33% chance level.
	rngNet := gradNet(21)
	rngNet.Layers[4] = layers.NewFC("fc2", 27, 4)
	fc := rngNet.Layers[4].(*layers.FCLayer)
	rng := rand.New(rand.NewSource(23))
	for i := range fc.Weights {
		fc.Weights[i] = rng.NormFloat64() * 0.3
	}
	train := makeSamples(60, 3, 0)
	tr := New(rngNet, 0.05, 0.9)
	tr.Train(train, 10, 120, 99)
	acc := Evaluate(rngNet, train)
	if acc < 0.6 {
		t.Errorf("training accuracy %.2f, want >= 0.6 (chance is 0.33)", acc)
	}
}

func TestEvaluate(t *testing.T) {
	net := gradNet(31)
	samples := makeSamples(10, 4, 50)
	acc := Evaluate(net, samples)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v out of range", acc)
	}
	if Evaluate(net, nil) != 0 {
		t.Error("empty evaluation should be 0")
	}
}

func TestStepPanicsOnEmptyBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty batch did not panic")
		}
	}()
	New(gradNet(41), 0.01, 0).Step(nil)
}

func TestTrainPanicsOnBadBatchSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad batch size did not panic")
		}
	}()
	New(gradNet(43), 0.01, 0).Train(makeSamples(4, 2, 0), 8, 1, 1)
}

func TestLossFiniteAndPositive(t *testing.T) {
	net := gradNet(51)
	exec := net.Forward(numeric.Double, gradInput(52))
	for label := 0; label < 4; label++ {
		l := Loss(net, exec, label)
		if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
			t.Errorf("loss(label=%d) = %v", label, l)
		}
	}
}
