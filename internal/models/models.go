// Package models builds the four networks of the paper's Table 2 —
// ConvNet, AlexNet, CaffeNet and NiN — as topology-faithful, reduced-width
// instances with deterministic synthetic weights (see DESIGN.md,
// "Substitutions"). The layer sequences match the paper exactly:
//
//	ConvNet:  3 CONV + 2 FC, max-pool, softmax, 10 outputs (CIFAR-10-like)
//	AlexNet:  5 CONV (LRN after conv1 & conv2) + 3 FC, softmax, 1000 outputs
//	CaffeNet: as AlexNet but with the pool/LRN order swapped in the first
//	          two blocks (the only difference the paper notes)
//	NiN:      12 CONV, no FC, no LRN, no softmax, 1000 outputs
package models

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/tensor"
)

// ImageNet-like instances use 24x24 inputs and 1000 classes; the
// CIFAR-10-like ConvNet uses 32x32 and 10 classes.
const (
	imageNetSize    = 24
	imageNetClasses = 1000
	cifarSize       = 32
	cifarClasses    = 10
)

// Names lists the four model names in Table 2 order.
var Names = []string{"ConvNet", "AlexNet", "CaffeNet", "NiN"}

// Dataset returns the synthetic dataset kind a named model consumes.
func Dataset(name string) dataset.Kind {
	if name == "ConvNet" {
		return dataset.CIFARLike
	}
	return dataset.ImageNetLike
}

// InputFor generates input image idx for the named model.
func InputFor(name string, idx int) *tensor.Tensor {
	if name == "ConvNet" {
		return dataset.Image(dataset.CIFARLike, cifarSize, idx)
	}
	return dataset.Image(dataset.ImageNetLike, imageNetSize, idx)
}

// Build constructs the named network with its deterministic synthetic
// weights. It panics on an unknown name (the set is closed, Table 2).
func Build(name string) *network.Network {
	switch name {
	case "ConvNet":
		return buildConvNet()
	case "AlexNet":
		return buildAlexNet(false)
	case "CaffeNet":
		return buildAlexNet(true)
	case "NiN":
		return buildNiN()
	}
	panic(fmt.Sprintf("models: unknown network %q", name))
}

// All builds the four networks.
func All() []*network.Network {
	nets := make([]*network.Network, len(Names))
	for i, n := range Names {
		nets[i] = Build(n)
	}
	return nets
}

// initializer seeds weights deterministically per network so every run of
// every campaign sees identical models.
type initializer struct {
	rng *rand.Rand
}

func newInitializer(netName string) *initializer {
	var seed int64 = 0x5117e
	for _, r := range netName {
		seed = seed*131 + int64(r)
	}
	return &initializer{rng: rand.New(rand.NewSource(seed))}
}

// conv fills a conv layer with He-scaled Gaussian weights times gain. The
// gain shapes the per-layer activation ranges so the profile behaves like
// Table 4 (large early ranges that shrink with depth for the LRN networks).
func (ini *initializer) conv(l *layers.ConvLayer, gain float64) *layers.ConvLayer {
	fanIn := float64(l.InC * l.KH * l.KW)
	std := gain * math.Sqrt(2/fanIn)
	for i := range l.Weights {
		l.Weights[i] = ini.rng.NormFloat64() * std
	}
	for i := range l.Bias {
		l.Bias[i] = (ini.rng.Float64()*2 - 1) * 0.02 * gain
	}
	return l
}

// fc fills a fully-connected layer the same way.
func (ini *initializer) fc(l *layers.FCLayer, gain float64) *layers.FCLayer {
	std := gain * math.Sqrt(2/float64(l.In))
	for i := range l.Weights {
		l.Weights[i] = ini.rng.NormFloat64() * std
	}
	for i := range l.Bias {
		l.Bias[i] = (ini.rng.Float64()*2 - 1) * 0.02 * gain
	}
	return l
}

func buildConvNet() *network.Network {
	ini := newInitializer("ConvNet")
	n := &network.Network{
		Name:    "ConvNet",
		InShape: tensor.Shape{C: 3, H: cifarSize, W: cifarSize},
		Classes: cifarClasses,
		Layers: []layers.Layer{
			ini.conv(layers.NewConv("conv1", 3, 6, 3, 1, 1), 1.0),
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			ini.conv(layers.NewConv("conv2", 6, 8, 3, 1, 1), 1.1),
			layers.NewReLU("relu2"),
			layers.NewPool("pool2", 2, 2),
			ini.conv(layers.NewConv("conv3", 8, 12, 3, 1, 1), 1.2),
			layers.NewReLU("relu3"),
			layers.NewPool("pool3", 2, 2),
			ini.fc(layers.NewFC("fc4", 12*4*4, 48), 1.6),
			layers.NewReLU("relu4"),
			ini.fc(layers.NewFC("fc5", 48, cifarClasses), 2.2),
			layers.NewSoftmax("prob"),
		},
	}
	mustValidate(n)
	return n
}

// buildAlexNet builds AlexNet, or CaffeNet when caffeOrder is true. The
// paper notes the two differ only in the order of ReLU and sub-sampling
// around the LRN in the first two blocks.
func buildAlexNet(caffeOrder bool) *network.Network {
	name := "AlexNet"
	if caffeOrder {
		name = "CaffeNet"
	}
	ini := newInitializer(name)

	// Block 1 & 2 post-op order:
	//   AlexNet:  conv -> ReLU -> LRN -> pool
	//   CaffeNet: conv -> ReLU -> pool -> LRN
	block12 := func(i int, conv *layers.ConvLayer) []layers.Layer {
		relu := layers.NewReLU(fmt.Sprintf("relu%d", i))
		lrn := layers.NewLRN(fmt.Sprintf("norm%d", i))
		pool := layers.NewPool(fmt.Sprintf("pool%d", i), 2, 2)
		if caffeOrder {
			return []layers.Layer{conv, relu, pool, lrn}
		}
		return []layers.Layer{conv, relu, lrn, pool}
	}

	var ls []layers.Layer
	ls = append(ls, block12(1, ini.conv(layers.NewConv("conv1", 3, 10, 3, 1, 1), 1.0))...)
	ls = append(ls, block12(2, ini.conv(layers.NewConv("conv2", 10, 12, 3, 1, 1), 1.0))...)
	ls = append(ls,
		ini.conv(layers.NewConv("conv3", 12, 16, 3, 1, 1), 0.8),
		layers.NewReLU("relu3"),
		ini.conv(layers.NewConv("conv4", 16, 16, 3, 1, 1), 0.7),
		layers.NewReLU("relu4"),
		ini.conv(layers.NewConv("conv5", 16, 12, 3, 1, 1), 0.6),
		layers.NewReLU("relu5"),
		layers.NewPool("pool5", 2, 2),
		ini.fc(layers.NewFC("fc6", 12*3*3, 192), 0.6),
		layers.NewReLU("relu6"),
		ini.fc(layers.NewFC("fc7", 192, 128), 0.5),
		layers.NewReLU("relu7"),
		// The classifier gain sets the spread of the final scores: large
		// enough that the golden softmax is decisive (trained networks
		// are confident), keeping the Table 4 layer-8 range near the
		// paper's ±15.
		ini.fc(layers.NewFC("fc8", 128, imageNetClasses), 1.4),
		layers.NewSoftmax("prob"),
	)

	n := &network.Network{
		Name:    name,
		InShape: tensor.Shape{C: 3, H: imageNetSize, W: imageNetSize},
		Classes: imageNetClasses,
		Layers:  ls,
	}
	mustValidate(n)
	return n
}

func buildNiN() *network.Network {
	ini := newInitializer("NiN")
	// Four NiN blocks of conv + two 1x1 "cccp" convs; max pools between
	// blocks; a full-extent max pool reduces the final 1000-channel fmap
	// to the class vector. No FC, no LRN, no softmax (Table 2).
	n := &network.Network{
		Name:    "NiN",
		InShape: tensor.Shape{C: 3, H: imageNetSize, W: imageNetSize},
		Classes: imageNetClasses,
		Layers: []layers.Layer{
			ini.conv(layers.NewConv("conv1", 3, 12, 3, 1, 1), 1.1),
			layers.NewReLU("relu1"),
			ini.conv(layers.NewConv("cccp1", 12, 8, 1, 1, 0), 1.4),
			layers.NewReLU("relu_c1"),
			ini.conv(layers.NewConv("cccp2", 8, 8, 1, 1, 0), 1.4),
			layers.NewReLU("relu_c2"),
			layers.NewPool("pool1", 2, 2),

			ini.conv(layers.NewConv("conv2", 8, 16, 3, 1, 1), 1.2),
			layers.NewReLU("relu2"),
			ini.conv(layers.NewConv("cccp3", 16, 12, 1, 1, 0), 1.3),
			layers.NewReLU("relu_c3"),
			ini.conv(layers.NewConv("cccp4", 12, 12, 1, 1, 0), 1.3),
			layers.NewReLU("relu_c4"),
			layers.NewPool("pool2", 2, 2),

			ini.conv(layers.NewConv("conv3", 12, 16, 3, 1, 1), 1.1),
			layers.NewReLU("relu3"),
			ini.conv(layers.NewConv("cccp5", 16, 16, 1, 1, 0), 1.1),
			layers.NewReLU("relu_c5"),
			ini.conv(layers.NewConv("cccp6", 16, 16, 1, 1, 0), 1.0),
			layers.NewReLU("relu_c6"),
			layers.NewPool("pool3", 2, 2),

			ini.conv(layers.NewConv("conv4", 16, 16, 3, 1, 1), 0.5),
			layers.NewReLU("relu4"),
			ini.conv(layers.NewConv("cccp7", 16, 16, 1, 1, 0), 0.4),
			layers.NewReLU("relu_c7"),
			ini.conv(layers.NewConv("cccp8", 16, imageNetClasses, 1, 1, 0), 0.3),
			layers.NewReLU("relu_c8"),
			layers.NewPool("gpool", 3, 3), // full-extent pool over the 3x3 fmap
		},
	}
	mustValidate(n)
	return n
}

func mustValidate(n *network.Network) {
	if err := n.Validate(); err != nil {
		panic(err)
	}
}
