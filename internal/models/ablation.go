package models

import (
	"repro/internal/layers"
	"repro/internal/network"
)

// Ablation selects a structural modification for sensitivity studies of
// the design choices the paper credits with error masking (§5.1.4).
type Ablation int

const (
	// NoAblation builds the standard network.
	NoAblation Ablation = iota
	// WithoutLRN removes the normalization layers (shape-preserving):
	// isolates the LRN masking effect behind AlexNet/CaffeNet's low
	// early-layer SDC probability.
	WithoutLRN
	// WithoutReLU removes the activation layers (shape-preserving):
	// isolates ReLU's masking of negative-going deviations.
	WithoutReLU
)

// String names the ablation.
func (a Ablation) String() string {
	switch a {
	case NoAblation:
		return "baseline"
	case WithoutLRN:
		return "no-LRN"
	case WithoutReLU:
		return "no-ReLU"
	}
	return "ablation?"
}

// BuildAblated builds the named network with a structural ablation
// applied. Weights are identical to the baseline build (the ablated layer
// kinds carry no weights), so any resilience difference is attributable to
// the removed layer alone.
func BuildAblated(name string, a Ablation) *network.Network {
	net := Build(name)
	if a == NoAblation {
		return net
	}
	var drop layers.Kind
	switch a {
	case WithoutLRN:
		drop = layers.LRN
	case WithoutReLU:
		drop = layers.ReLU
	}
	kept := net.Layers[:0]
	for _, l := range net.Layers {
		if l.Kind() != drop {
			kept = append(kept, l)
		}
	}
	net.Layers = kept
	net.Name = net.Name + "(" + a.String() + ")"
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}
