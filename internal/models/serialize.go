package models

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/layers"
	"repro/internal/network"
)

// weightFile is the on-disk format of a trained model: per-layer weight
// and bias vectors keyed by layer name, mirroring how Caffe model files
// pair with a network prototype (§4.1's pre-trained BVLC models).
type weightFile struct {
	Network string
	Weights map[string][]float64
	Biases  map[string][]float64
}

// SaveWeights writes a network's trainable parameters to path.
func SaveWeights(net *network.Network, path string) error {
	wf := weightFile{
		Network: net.Name,
		Weights: map[string][]float64{},
		Biases:  map[string][]float64{},
	}
	for _, l := range net.Layers {
		switch tl := l.(type) {
		case *layers.ConvLayer:
			wf.Weights[tl.Name()] = tl.Weights
			wf.Biases[tl.Name()] = tl.Bias
		case *layers.FCLayer:
			wf.Weights[tl.Name()] = tl.Weights
			wf.Biases[tl.Name()] = tl.Bias
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("models: save %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("models: save %s: %w", path, err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(wf); err != nil {
		return fmt.Errorf("models: encode %s: %w", path, err)
	}
	return nil
}

// LoadWeights replaces a network's trainable parameters with the contents
// of path. Layer names and vector lengths must match the network exactly.
func LoadWeights(net *network.Network, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("models: load %s: %w", path, err)
	}
	defer f.Close()
	var wf weightFile
	if err := gob.NewDecoder(f).Decode(&wf); err != nil {
		return fmt.Errorf("models: decode %s: %w", path, err)
	}
	for _, l := range net.Layers {
		var w, b []float64
		switch tl := l.(type) {
		case *layers.ConvLayer:
			w, b = tl.Weights, tl.Bias
		case *layers.FCLayer:
			w, b = tl.Weights, tl.Bias
		default:
			continue
		}
		sw, ok := wf.Weights[l.Name()]
		if !ok {
			return fmt.Errorf("models: %s: no weights for layer %s", path, l.Name())
		}
		sb := wf.Biases[l.Name()]
		if len(sw) != len(w) || len(sb) != len(b) {
			return fmt.Errorf("models: %s: layer %s size mismatch (%d/%d weights, %d/%d biases)",
				path, l.Name(), len(sw), len(w), len(sb), len(b))
		}
		copy(w, sw)
		copy(b, sb)
	}
	return nil
}

// LoadPretrained builds the named network and, when a weight file exists
// in dir (as written by cmd/pretrain), loads it. The boolean reports
// whether trained weights were found; otherwise the calibrated synthetic
// weights remain in place.
func LoadPretrained(name, dir string) (*network.Network, bool, error) {
	net := Build(name)
	path := filepath.Join(dir, name+".weights")
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return net, false, nil
		}
		return nil, false, err
	}
	if err := LoadWeights(net, path); err != nil {
		return nil, false, err
	}
	return net, true, nil
}
