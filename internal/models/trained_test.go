package models

import (
	"testing"

	"repro/internal/train"
)

func TestTrainingSamplesGeometry(t *testing.T) {
	for _, name := range Names {
		net := Build(name)
		samples := TrainingSamples(name, 3, 0)
		for _, s := range samples {
			if s.Input.Shape != net.InShape {
				t.Errorf("%s: sample shape %v, want %v", name, s.Input.Shape, net.InShape)
			}
			if s.Label < 0 || s.Label >= net.Classes {
				t.Errorf("%s: label %d out of range", name, s.Label)
			}
		}
	}
}

func TestTrainingSamplesCappedLabels(t *testing.T) {
	samples := TrainingSamplesCapped("AlexNet", 25, 0)
	for _, s := range samples {
		if s.Label < 0 || s.Label >= 10 {
			t.Errorf("capped label %d out of [0,10)", s.Label)
		}
	}
}

func TestBuildTrainedImprovesConvNet(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	before := TrainedAccuracy(Build("ConvNet"), "ConvNet", 40)
	net := BuildTrained("ConvNet", 300, 7)
	after := TrainedAccuracy(net, "ConvNet", 40)
	if after < 0.5 {
		t.Errorf("trained ConvNet held-out accuracy %.2f, want >= 0.5 (untrained %.2f)", after, before)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.2f -> %.2f", before, after)
	}
}

func TestBuildTrainedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	a := BuildTrained("ConvNet", 30, 5)
	b := BuildTrained("ConvNet", 30, 5)
	fa := a.Forward(0, InputFor("ConvNet", 0))
	fb := b.Forward(0, InputFor("ConvNet", 0))
	for i := range fa.Output().Data {
		if fa.Output().Data[i] != fb.Output().Data[i] {
			t.Fatal("BuildTrained is not deterministic")
		}
	}
	_ = train.Sample{}
}
