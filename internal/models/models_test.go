package models

import (
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
)

func TestBuildAllValidate(t *testing.T) {
	for _, name := range Names {
		n := Build(name)
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTable2Topologies(t *testing.T) {
	// Table 2: ConvNet = 3 CONV + 2 FC; AlexNet/CaffeNet = 5 CONV (LRN) +
	// 3 FC; NiN = 12 CONV.
	counts := func(name string) (conv, fc, lrn, softmax int) {
		for _, l := range Build(name).Layers {
			switch l.Kind() {
			case layers.Conv:
				conv++
			case layers.FC:
				fc++
			case layers.LRN:
				lrn++
			case layers.Softmax:
				softmax++
			}
		}
		return
	}
	if c, f, _, s := counts("ConvNet"); c != 3 || f != 2 || s != 1 {
		t.Errorf("ConvNet: conv=%d fc=%d softmax=%d, want 3/2/1", c, f, s)
	}
	for _, name := range []string{"AlexNet", "CaffeNet"} {
		c, f, l, s := counts(name)
		if c != 5 || f != 3 || l != 2 || s != 1 {
			t.Errorf("%s: conv=%d fc=%d lrn=%d softmax=%d, want 5/3/2/1", name, c, f, l, s)
		}
	}
	if c, f, l, s := counts("NiN"); c != 12 || f != 0 || l != 0 || s != 0 {
		t.Errorf("NiN: conv=%d fc=%d lrn=%d softmax=%d, want 12/0/0/0", c, f, l, s)
	}
}

func TestClassCounts(t *testing.T) {
	want := map[string]int{"ConvNet": 10, "AlexNet": 1000, "CaffeNet": 1000, "NiN": 1000}
	for name, classes := range want {
		if got := Build(name).Classes; got != classes {
			t.Errorf("%s classes = %d, want %d", name, got, classes)
		}
	}
}

func TestNiNHasNoSoftmax(t *testing.T) {
	if Build("NiN").HasSoftmax() {
		t.Error("NiN must not have a softmax (§4.1: rankings without confidence)")
	}
	for _, name := range []string{"ConvNet", "AlexNet", "CaffeNet"} {
		if !Build(name).HasSoftmax() {
			t.Errorf("%s must end in softmax", name)
		}
	}
}

func TestCaffeNetDiffersOnlyInBlockOrder(t *testing.T) {
	a, c := Build("AlexNet"), Build("CaffeNet")
	if len(a.Layers) != len(c.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(a.Layers), len(c.Layers))
	}
	// AlexNet block 1: conv,relu,LRN,pool. CaffeNet: conv,relu,pool,LRN.
	if a.Layers[2].Kind() != layers.LRN || a.Layers[3].Kind() != layers.Pool {
		t.Errorf("AlexNet block1 order: %v,%v", a.Layers[2].Kind(), a.Layers[3].Kind())
	}
	if c.Layers[2].Kind() != layers.Pool || c.Layers[3].Kind() != layers.LRN {
		t.Errorf("CaffeNet block1 order: %v,%v", c.Layers[2].Kind(), c.Layers[3].Kind())
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build("AlexNet"), Build("AlexNet")
	ca := a.Layers[0].(*layers.ConvLayer)
	cb := b.Layers[0].(*layers.ConvLayer)
	for i := range ca.Weights {
		if ca.Weights[i] != cb.Weights[i] {
			t.Fatal("Build is not deterministic")
		}
	}
}

func TestBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(unknown) did not panic")
		}
	}()
	Build("ResNet")
}

func TestGoldenInference(t *testing.T) {
	// Golden runs are finite, deterministic and produce a valid ranking.
	for _, name := range Names {
		n := Build(name)
		in := InputFor(name, 0)
		e1 := n.Forward(numeric.Double, in)
		e2 := n.Forward(numeric.Double, InputFor(name, 0))
		if e1.Top1() != e2.Top1() {
			t.Errorf("%s: nondeterministic top1", name)
		}
		if top := e1.Top1(); top < 0 || top >= n.Classes {
			t.Errorf("%s: top1 = %d out of range", name, top)
		}
	}
}

func TestActivationProfileMatchesTable4Shape(t *testing.T) {
	// The substitution contract from DESIGN.md: activation ranges must
	// reproduce Table 4's qualitative shape.
	nets := map[string][]float64{}
	for _, name := range Names {
		n := Build(name)
		exec := n.Forward(numeric.Double, InputFor(name, 0))
		var maxes []float64
		for _, r := range n.BlockRanges(exec) {
			m := r.Max
			if -r.Min > m {
				m = -r.Min
			}
			maxes = append(maxes, m)
		}
		nets[name] = maxes
	}

	// (1) AlexNet/CaffeNet: late layers need narrower ranges than layer 1.
	for _, name := range []string{"AlexNet", "CaffeNet"} {
		m := nets[name]
		last := m[len(m)-1]
		if last >= m[0]/2 {
			t.Errorf("%s: final range %v not well below layer-1 range %v", name, last, m[0])
		}
	}
	// (2) ConvNet ranges are small (normalized CIFAR inputs): within the
	// 16b_rb10 dynamic range so fixed point does not saturate golden runs.
	for _, m := range nets["ConvNet"] {
		if m >= 32 {
			t.Errorf("ConvNet range %v exceeds 16b_rb10 max", m)
		}
	}
	// (3) ImageNet-like networks exceed the small fixed-point range at
	// layer 1 (raw-pixel scale), like the paper's ±700 ranges.
	for _, name := range []string{"AlexNet", "CaffeNet", "NiN"} {
		if nets[name][0] <= 32 {
			t.Errorf("%s layer-1 range %v should exceed 16b_rb10 max", name, nets[name][0])
		}
	}
	// (4) No golden value overflows FLOAT16.
	for name, m := range nets {
		for i, v := range m {
			if v >= 65504 {
				t.Errorf("%s block %d range %v overflows FLOAT16", name, i+1, v)
			}
		}
	}
	// (5) NiN peaks mid-network and tapers at the end (Table 4 NiN shape).
	nin := nets["NiN"]
	peak := 0.0
	for _, v := range nin {
		if v > peak {
			peak = v
		}
	}
	if nin[len(nin)-1] >= peak/2 {
		t.Errorf("NiN final range %v should be well below peak %v", nin[len(nin)-1], peak)
	}
}

func TestDatasetAssignment(t *testing.T) {
	if Dataset("ConvNet").String() != "cifar-like" {
		t.Error("ConvNet should use the CIFAR-like dataset")
	}
	for _, name := range []string{"AlexNet", "CaffeNet", "NiN"} {
		if Dataset(name).String() != "imagenet-like" {
			t.Errorf("%s should use the ImageNet-like dataset", name)
		}
	}
}

func TestInputShapes(t *testing.T) {
	for _, name := range Names {
		n := Build(name)
		in := InputFor(name, 3)
		if in.Shape != n.InShape {
			t.Errorf("%s: input shape %v, want %v", name, in.Shape, n.InShape)
		}
	}
}

func TestAllReturnsFour(t *testing.T) {
	nets := All()
	if len(nets) != 4 {
		t.Fatalf("All() returned %d networks", len(nets))
	}
	for i, n := range nets {
		if n.Name != Names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, n.Name, Names[i])
		}
	}
}
