package models

import (
	"path/filepath"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ConvNet.weights")
	a := Build("ConvNet")
	// Perturb so the file differs from a fresh build.
	conv := a.Layers[0].(*layers.ConvLayer)
	conv.Weights[0] = 42.5
	if err := SaveWeights(a, path); err != nil {
		t.Fatal(err)
	}
	b := Build("ConvNet")
	if err := LoadWeights(b, path); err != nil {
		t.Fatal(err)
	}
	if got := b.Layers[0].(*layers.ConvLayer).Weights[0]; got != 42.5 {
		t.Errorf("loaded weight = %v, want 42.5", got)
	}
	// Outputs must now be bit-identical.
	in := InputFor("ConvNet", 0)
	fa, fb := a.Forward(numeric.Double, in), b.Forward(numeric.Double, in)
	for i := range fa.Output().Data {
		if fa.Output().Data[i] != fb.Output().Data[i] {
			t.Fatal("round-tripped network diverges")
		}
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.weights")
	if err := SaveWeights(Build("ConvNet"), path); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(Build("AlexNet"), path); err == nil {
		t.Error("loading ConvNet weights into AlexNet did not fail")
	}
}

func TestLoadWeightsMissingFile(t *testing.T) {
	if err := LoadWeights(Build("ConvNet"), filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file did not fail")
	}
}

func TestLoadPretrainedFallback(t *testing.T) {
	net, trained, err := LoadPretrained("ConvNet", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if trained {
		t.Error("reported trained weights from an empty dir")
	}
	if net == nil || net.Name != "ConvNet" {
		t.Error("fallback network missing")
	}
}

func TestLoadPretrainedReadsFile(t *testing.T) {
	dir := t.TempDir()
	src := Build("ConvNet")
	src.Layers[0].(*layers.ConvLayer).Weights[0] = -9
	if err := SaveWeights(src, filepath.Join(dir, "ConvNet.weights")); err != nil {
		t.Fatal(err)
	}
	net, trained, err := LoadPretrained("ConvNet", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !trained {
		t.Fatal("did not report trained weights")
	}
	if got := net.Layers[0].(*layers.ConvLayer).Weights[0]; got != -9 {
		t.Errorf("pretrained weight = %v, want -9", got)
	}
}
