package models

import (
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
)

func TestBuildAblatedWithoutLRN(t *testing.T) {
	base := Build("AlexNet")
	abl := BuildAblated("AlexNet", WithoutLRN)
	if len(abl.Layers) != len(base.Layers)-2 {
		t.Fatalf("ablated layers = %d, want %d", len(abl.Layers), len(base.Layers)-2)
	}
	for _, l := range abl.Layers {
		if l.Kind() == layers.LRN {
			t.Fatal("LRN layer survived ablation")
		}
	}
	if err := abl.Validate(); err != nil {
		t.Fatalf("ablated net invalid: %v", err)
	}
	if abl.Name != "AlexNet(no-LRN)" {
		t.Errorf("ablated name %q", abl.Name)
	}
}

func TestBuildAblatedWithoutReLU(t *testing.T) {
	abl := BuildAblated("NiN", WithoutReLU)
	for _, l := range abl.Layers {
		if l.Kind() == layers.ReLU {
			t.Fatal("ReLU layer survived ablation")
		}
	}
	if err := abl.Validate(); err != nil {
		t.Fatalf("ablated net invalid: %v", err)
	}
}

func TestBuildAblatedBaselineIdentical(t *testing.T) {
	a := BuildAblated("ConvNet", NoAblation)
	b := Build("ConvNet")
	if a.Name != b.Name || len(a.Layers) != len(b.Layers) {
		t.Error("NoAblation changed the network")
	}
}

func TestAblationChangesGoldenValues(t *testing.T) {
	// Removing LRN must change the activations (it is load-bearing).
	base := Build("AlexNet")
	abl := BuildAblated("AlexNet", WithoutLRN)
	in := InputFor("AlexNet", 0)
	gb := base.Forward(numeric.Double, in)
	ga := abl.Forward(numeric.Double, in)
	rb := base.BlockRanges(gb)
	ra := abl.BlockRanges(ga)
	if rb[1].Max == ra[1].Max {
		t.Error("LRN removal did not change block-2 activations")
	}
	// Without LRN's division the early-layer ranges must be wider.
	if ra[0].Max <= rb[0].Max {
		t.Errorf("no-LRN layer-1 max %v should exceed baseline %v", ra[0].Max, rb[0].Max)
	}
}

func TestAblationStrings(t *testing.T) {
	if NoAblation.String() != "baseline" || WithoutLRN.String() != "no-LRN" || WithoutReLU.String() != "no-ReLU" {
		t.Error("ablation names drifted")
	}
}
