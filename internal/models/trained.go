package models

import (
	"repro/internal/dataset"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/train"
)

// TrainingSamples generates n labeled samples of the synthetic
// classification task sized for the named network (dataset.Labeled with
// the network's input geometry and class count). The index offset keeps
// the training distribution disjoint from the evaluation images used by
// fault campaigns.
func TrainingSamples(name string, n, startIdx int) []train.Sample {
	net := Build(name)
	kind := Dataset(name)
	size := net.InShape.H
	out := make([]train.Sample, n)
	for i := range out {
		img, label := dataset.Labeled(kind, size, net.Classes, startIdx+i)
		out[i] = train.Sample{Input: img, Label: label}
	}
	return out
}

// TrainingSamplesCapped is TrainingSamples with the synthetic task's class
// count capped at 10 (the trainable-task convention of BuildTrained).
func TrainingSamplesCapped(name string, n, startIdx int) []train.Sample {
	net := Build(name)
	classes := net.Classes
	if classes > 10 {
		classes = 10
	}
	kind := Dataset(name)
	size := net.InShape.H
	out := make([]train.Sample, n)
	for i := range out {
		img, label := dataset.Labeled(kind, size, classes, startIdx+i)
		out[i] = train.Sample{Input: img, Label: label}
	}
	return out
}

// BuildTrained builds the named network and fine-tunes it on the synthetic
// labeled task for the given number of SGD steps. Training runs in float64
// and is deterministic for a (name, steps, seed) triple, so campaigns
// against trained models are reproducible. The class count of the
// synthetic task is capped at 10 (labels cycle through the first 10 output
// candidates) to keep the task learnable in a short budget.
func BuildTrained(name string, steps int, seed int64) *network.Network {
	net := Build(name)
	classes := net.Classes
	if classes > 10 {
		classes = 10
	}
	kind := Dataset(name)
	size := net.InShape.H

	const pool = 160
	samples := make([]train.Sample, pool)
	for i := range samples {
		img, label := dataset.Labeled(kind, size, classes, 50_000+i)
		samples[i] = train.Sample{Input: img, Label: label}
	}
	tr := train.New(net, trainLR(name), 0.9)
	if !net.HasSoftmax() {
		// Temperature-scale the loss for softmax-less networks (NiN):
		// their raw scores span hundreds and would saturate the
		// cross-entropy otherwise. Profile the score scale once.
		exec := net.Forward(numeric.Double, samples[0].Input)
		min, max := exec.Output().MinMax()
		peak := max
		if -min > peak {
			peak = -min
		}
		if peak > 10 {
			tr.Temperature = peak / 10
		}
	}
	tr.Train(samples, 8, steps, seed)
	return net
}

// trainLR picks a stable learning rate per network: raw-pixel
// ImageNet-like inputs need a much smaller rate than normalized CIFAR-like
// ones, and NiN (huge activation scale, no FC head) smaller still.
func trainLR(name string) float64 {
	if name == "NiN" {
		return 1e-3
	}
	if Dataset(name) == dataset.ImageNetLike {
		return 3e-3
	}
	return 0.01
}

// TrainedAccuracy evaluates a network on held-out samples of the synthetic
// task (same geometry, disjoint indices).
func TrainedAccuracy(net *network.Network, name string, n int) float64 {
	classes := net.Classes
	if classes > 10 {
		classes = 10
	}
	kind := Dataset(name)
	size := net.InShape.H
	samples := make([]train.Sample, n)
	for i := range samples {
		img, label := dataset.Labeled(kind, size, classes, 90_000+i)
		samples[i] = train.Sample{Input: img, Label: label}
	}
	return train.Evaluate(net, samples)
}
