// Package precision implements the paper's first design implication
// (§6.1): a DNN system should use a numeric format that provides
// *just-enough* dynamic range for the network's activations, because any
// redundant range turns high-order bits into pure SDC liability (the
// Fig. 4 asymmetry). Given a network's profiled per-layer value ranges
// (Table 4), the package recommends formats and quantifies the range
// redundancy of each candidate.
package precision

import (
	"fmt"
	"math"

	"repro/internal/network"
	"repro/internal/numeric"
)

// PeakMagnitude returns the largest absolute activation value across a
// profile of per-layer ranges.
func PeakMagnitude(ranges []network.Range) float64 {
	var peak float64
	for _, r := range ranges {
		if m := math.Abs(r.Min); m > peak {
			peak = m
		}
		if r.Max > peak {
			peak = r.Max
		}
	}
	return peak
}

// RequiredIntegerBits returns the minimum number of integer bits (sign
// excluded) a 2's-complement fixed-point format needs to represent
// magnitudes up to peak without saturating.
func RequiredIntegerBits(peak float64) int {
	if peak <= 0 {
		return 0
	}
	bits := 0
	for float64(int64(1)<<uint(bits)) <= peak {
		bits++
	}
	return bits
}

// Redundancy quantifies how much of a format's dynamic range a network
// leaves unused: MaxValue / peak. A redundancy of 1 is "just enough"; the
// paper shows SDC vulnerability grows with this factor because faults can
// push values into the unused range.
func Redundancy(t numeric.Type, peak float64) float64 {
	if peak == 0 {
		return math.Inf(1)
	}
	return t.MaxValue() / peak
}

// Covers reports whether the format can represent the profile's peak
// magnitude (with the given safety margin, e.g. 1.1 for 10%) without
// saturation.
func Covers(t numeric.Type, peak, margin float64) bool {
	return t.MaxValue() >= peak*margin
}

// Recommendation is the outcome of a format search.
type Recommendation struct {
	// Best is the covering format with the least redundant range; Valid
	// is false when no candidate covers the profile.
	Best  numeric.Type
	Valid bool
	// PerCandidate records each candidate's redundancy (NaN when it does
	// not cover the profile).
	PerCandidate map[numeric.Type]float64
	// Peak is the profiled peak magnitude.
	Peak float64
	// IdealRadix16/IdealRadix32 give the paper-style name of the minimal
	// 16- and 32-bit fixed-point formats for this profile (e.g.
	// "16b_rb8"), regardless of whether they are in the candidate set.
	IdealRadix16, IdealRadix32 string
}

// Recommend searches candidates for the covering format with minimal
// redundancy, using a 10% safety margin like the SED detector bounds.
func Recommend(ranges []network.Range, candidates []numeric.Type) Recommendation {
	const margin = 1.1
	peak := PeakMagnitude(ranges)
	rec := Recommendation{
		PerCandidate: map[numeric.Type]float64{},
		Peak:         peak,
	}
	intBits := RequiredIntegerBits(peak * margin)
	if frac := 16 - 1 - intBits; frac >= 0 {
		rec.IdealRadix16 = fmt.Sprintf("16b_rb%d", frac)
	} else {
		rec.IdealRadix16 = "none (peak exceeds 16-bit range)"
	}
	if frac := 32 - 1 - intBits; frac >= 0 {
		rec.IdealRadix32 = fmt.Sprintf("32b_rb%d", frac)
	} else {
		rec.IdealRadix32 = "none (peak exceeds 32-bit range)"
	}

	best := math.Inf(1)
	for _, t := range candidates {
		if !Covers(t, peak, margin) {
			rec.PerCandidate[t] = math.NaN()
			continue
		}
		red := Redundancy(t, peak)
		rec.PerCandidate[t] = red
		// Prefer less redundancy; break ties toward the narrower word
		// (cheaper and, per Table 6, lower FIT).
		if red < best || (red == best && rec.Valid && t.Width() < rec.Best.Width()) {
			best, rec.Best, rec.Valid = red, t, true
		}
	}
	return rec
}

// Format renders the recommendation.
func (r Recommendation) Format() string {
	out := fmt.Sprintf("peak |ACT| = %.4g; minimal formats: %s / %s\n", r.Peak, r.IdealRadix16, r.IdealRadix32)
	for _, t := range numeric.Types {
		red, ok := r.PerCandidate[t]
		if !ok {
			continue
		}
		if math.IsNaN(red) {
			out += fmt.Sprintf("  %-9s saturates (max %.4g)\n", t, t.MaxValue())
			continue
		}
		marker := ""
		if r.Valid && t == r.Best {
			marker = "  <- recommended (just-enough range)"
		}
		out += fmt.Sprintf("  %-9s redundancy %.3gx%s\n", t, red, marker)
	}
	return out
}
