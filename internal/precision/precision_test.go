package precision

import (
	"math"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/numeric"
)

func profile(vals ...float64) []network.Range {
	rs := make([]network.Range, 0, len(vals)/2)
	for i := 0; i+1 < len(vals); i += 2 {
		rs = append(rs, network.Range{Min: vals[i], Max: vals[i+1]})
	}
	return rs
}

func TestPeakMagnitude(t *testing.T) {
	p := profile(-3, 2, -1, 7, -12, 4)
	if got := PeakMagnitude(p); got != 12 {
		t.Errorf("peak = %v, want 12", got)
	}
	if got := PeakMagnitude(nil); got != 0 {
		t.Errorf("empty peak = %v", got)
	}
}

func TestRequiredIntegerBits(t *testing.T) {
	cases := map[float64]int{0: 0, 0.5: 0, 1: 1, 1.5: 1, 2: 2, 3.9: 2, 4: 3, 31: 5, 32: 6, 700: 10}
	for peak, want := range cases {
		if got := RequiredIntegerBits(peak); got != want {
			t.Errorf("RequiredIntegerBits(%v) = %d, want %d", peak, got, want)
		}
	}
}

func TestCovers(t *testing.T) {
	// 16b_rb10 max ~32: covers peak 12 at 10% margin but not peak 31.
	if !Covers(numeric.Fx16RB10, 12, 1.1) {
		t.Error("16b_rb10 should cover peak 12")
	}
	if Covers(numeric.Fx16RB10, 31, 1.1) {
		t.Error("16b_rb10 should not cover 31*1.1")
	}
}

func TestRedundancy(t *testing.T) {
	if got := Redundancy(numeric.Fx16RB10, 16); math.Abs(got-2) > 0.01 {
		t.Errorf("redundancy = %v, want ~2", got)
	}
	if !math.IsInf(Redundancy(numeric.Float, 0), 1) {
		t.Error("zero peak should give infinite redundancy")
	}
}

func TestRecommendPicksJustEnough(t *testing.T) {
	// ConvNet-like profile: peak ~12. Among all formats, 16b_rb10
	// (max ~32) has the least redundancy.
	rec := Recommend(profile(-8, 12), numeric.Types)
	if !rec.Valid {
		t.Fatal("no format recommended")
	}
	if rec.Best != numeric.Fx16RB10 && rec.Best != numeric.Fx32RB26 {
		t.Errorf("Best = %v, want a ~32-max fixed format", rec.Best)
	}
	// 16b_rb10 and 32b_rb26 have the same max; the narrower word wins.
	if rec.Best != numeric.Fx16RB10 {
		t.Errorf("tie should break toward the narrower word, got %v", rec.Best)
	}
}

func TestRecommendExcludesSaturating(t *testing.T) {
	// AlexNet-like profile: peak ~700 exceeds the 5-integer-bit formats.
	rec := Recommend(profile(-700, 660), numeric.Types)
	if !rec.Valid {
		t.Fatal("no format recommended")
	}
	if rec.Best == numeric.Fx16RB10 || rec.Best == numeric.Fx32RB26 {
		t.Errorf("Best = %v saturates at this profile", rec.Best)
	}
	if !math.IsNaN(rec.PerCandidate[numeric.Fx16RB10]) {
		t.Error("16b_rb10 should be marked saturating")
	}
	// FLOAT16 (max 65504, redundancy ~94x) beats 32b_rb10 (max ~2^21,
	// redundancy ~3000x) — matching Table 6, where FLOAT16's datapath FIT
	// is orders of magnitude below 32b_rb10's.
	if rec.Best != numeric.Float16 {
		t.Errorf("Best = %v, want FLOAT16", rec.Best)
	}
	if rec.PerCandidate[numeric.Float16] >= rec.PerCandidate[numeric.Fx32RB10] {
		t.Error("FLOAT16 should have less redundancy than 32b_rb10 at peak 700")
	}
}

func TestIdealRadixNames(t *testing.T) {
	rec := Recommend(profile(-12, 12), numeric.Types)
	if rec.IdealRadix16 != "16b_rb11" {
		t.Errorf("IdealRadix16 = %q, want 16b_rb11 (4 integer bits for peak 13.2)", rec.IdealRadix16)
	}
	if rec.IdealRadix32 != "32b_rb27" {
		t.Errorf("IdealRadix32 = %q", rec.IdealRadix32)
	}
	// A peak beyond 2^15 cannot fit a 16-bit word at all.
	rec = Recommend(profile(-1e5, 1e5), numeric.Types)
	if !strings.Contains(rec.IdealRadix16, "none") {
		t.Errorf("IdealRadix16 = %q, want none", rec.IdealRadix16)
	}
}

func TestFormatOutput(t *testing.T) {
	// An AlexNet-like profile exercises both the "recommended" marker and
	// the "saturates" marker (the small fixed formats cannot hold ±700).
	rec := Recommend(profile(-700, 660), numeric.Types)
	out := rec.Format()
	if !strings.Contains(out, "recommended") || !strings.Contains(out, "saturates") {
		t.Errorf("Format output incomplete:\n%s", out)
	}
}
