// Package rowstat implements the row-stationary (RS) dataflow of Eyeriss
// (Chen et al., ISCA'16) as an analytic scheduler: it maps each CONV/FC
// layer of a network onto the physical PE array, producing per-layer cycle
// counts, PE utilization and buffer traffic.
//
// In the RS dataflow a logical PE set of R x E engines processes one
// (filter row, ofmap row) pair each: PE (r, e) convolves filter row r with
// ifmap row r+e*stride and produces partial sums for ofmap row e, which are
// accumulated vertically across the R PEs of the column. Logical sets are
// folded onto the physical array when E exceeds the array height and
// replicated across spare columns when it is smaller.
//
// The paper's buffer-fault campaigns need to know how long each layer's
// data is resident in each buffer; the scheduler's cycle counts provide the
// residency weights (one fault strikes a uniformly random cycle, so the
// probability it lands during layer L is cycles(L)/totalCycles).
package rowstat

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/tensor"
)

// Array is the physical PE grid of the accelerator.
type Array struct {
	// Rows x Cols processing engines.
	Rows, Cols int
}

// Eyeriss65nm is the original 12x14 array (168 PEs).
var Eyeriss65nm = Array{Rows: 12, Cols: 14}

// Eyeriss16nm is the paper's scaled array: 8x the PE count, laid out as
// 32x42 (1344 PEs).
var Eyeriss16nm = Array{Rows: 32, Cols: 42}

// PEs returns the engine count.
func (a Array) PEs() int { return a.Rows * a.Cols }

// Mapping is the RS schedule of one CONV or FC layer.
type Mapping struct {
	// Layer is the network layer index; Name its instance name.
	Layer int
	Name  string
	// LogicalRows (R: filter rows) and LogicalCols (E: ofmap rows) define
	// one logical PE set.
	LogicalRows, LogicalCols int
	// Folds is how many vertical strips the logical set is cut into to
	// fit the array height; Replication is how many logical sets run
	// side by side across spare columns.
	Folds, Replication int
	// Passes is the number of sequential array passes covering all
	// (input channel, output channel, fold) combinations.
	Passes int
	// CyclesPerPass is the MAC cycles of one pass (one 1-D convolution
	// per PE).
	CyclesPerPass int64
	// Cycles is the layer's total MAC cycle count.
	Cycles int64
	// UsedPEs is the number of engines active during a pass.
	UsedPEs int
	// Utilization is UsedPEs / array size.
	Utilization float64
	// MACs is the layer's algorithmic MAC count (for the efficiency
	// cross-check: Cycles*UsedPEs >= MACs).
	MACs int64
}

// Traffic estimates one layer's buffer accesses under RS reuse.
type Traffic struct {
	// GlobalBufferReads counts ifmap words fetched from the global
	// buffer (each ifmap row is read once per pass that needs it).
	GlobalBufferReads int64
	// FilterSRAMFills counts filter words loaded into per-PE SRAMs
	// (once per pass).
	FilterSRAMFills int64
	// ImgRegFills counts ifmap words staged through the image registers.
	ImgRegFills int64
	// PSumSpills counts partial-sum words written back to the global
	// buffer at the end of passes that could not complete accumulation
	// on-PE.
	PSumSpills int64
}

// Schedule is the full-network RS schedule.
type Schedule struct {
	Array    Array
	Mappings []Mapping
	Traffics []Traffic
	// TotalCycles is the sum over layers.
	TotalCycles int64
}

// New schedules every CONV/FC layer of a network on the array.
func New(net *network.Network, a Array) *Schedule {
	s := &Schedule{Array: a}
	shape := net.InShape
	for i, l := range net.Layers {
		switch cl := l.(type) {
		case *layers.ConvLayer:
			m, t := mapConv(cl, i, shape, a)
			s.Mappings = append(s.Mappings, m)
			s.Traffics = append(s.Traffics, t)
			s.TotalCycles += m.Cycles
		case *layers.FCLayer:
			m, t := mapFC(cl, i, shape, a)
			s.Mappings = append(s.Mappings, m)
			s.Traffics = append(s.Traffics, t)
			s.TotalCycles += m.Cycles
		}
		shape = l.OutShape(shape)
	}
	if len(s.Mappings) == 0 {
		panic(fmt.Sprintf("rowstat: network %s has no CONV/FC layers", net.Name))
	}
	return s
}

// mapConv builds the RS mapping of a convolution layer.
func mapConv(l *layers.ConvLayer, idx int, in tensor.Shape, a Array) (Mapping, Traffic) {
	out := l.OutShape(in)
	r := l.KH  // logical set height: filter rows
	e := out.H // logical set width: ofmap rows
	if r > a.Rows {
		panic(fmt.Sprintf("rowstat: filter height %d exceeds array height %d", r, a.Rows))
	}

	// Folding: cut the logical set into vertical strips of at most
	// a.Cols ofmap rows.
	strips := (e + a.Cols - 1) / a.Cols
	setW := e
	if setW > a.Cols {
		setW = a.Cols
	}
	// Replication: stack logical sets vertically and side by side.
	vertRep := a.Rows / r
	if vertRep < 1 {
		vertRep = 1
	}
	horizRep := a.Cols / setW
	if horizRep < 1 {
		horizRep = 1
	}
	sets := vertRep * horizRep

	// One logical set processes one (input channel, output channel)
	// filter plane per strip.
	planeStrips := int64(l.InC) * int64(l.OutC) * int64(strips)
	passes := int((planeStrips + int64(sets) - 1) / int64(sets))

	// Each PE runs a 1-D convolution per pass: out.W positions x KW taps.
	cyclesPerPass := int64(out.W) * int64(l.KW)
	usedPEs := sets * r * setW
	if usedPEs > a.PEs() {
		usedPEs = a.PEs()
	}

	m := Mapping{
		Layer: idx, Name: l.Name(),
		LogicalRows: r, LogicalCols: e,
		Folds: strips, Replication: sets,
		Passes:        passes,
		CyclesPerPass: cyclesPerPass,
		Cycles:        int64(passes) * cyclesPerPass,
		UsedPEs:       usedPEs,
		Utilization:   float64(usedPEs) / float64(a.PEs()),
		MACs:          l.MACs(in),
	}

	// Traffic model: every pass stages its strip's ifmap rows through the
	// global buffer and image registers, loads one filter plane per set,
	// and spills the strip's partial-sum rows.
	rowsPerStrip := int64((setW-1)*l.Stride + r)
	if rowsPerStrip > int64(in.H) {
		rowsPerStrip = int64(in.H)
	}
	t := Traffic{
		GlobalBufferReads: int64(passes) * int64(sets) * rowsPerStrip * int64(in.W),
		FilterSRAMFills:   planeStrips * int64(r) * int64(l.KW),
		ImgRegFills:       int64(passes) * int64(sets) * rowsPerStrip * int64(in.W),
		PSumSpills:        int64(passes) * int64(sets) * int64(setW) * int64(out.W),
	}
	return m, t
}

// mapFC maps a fully-connected layer: each PE computes one output neuron
// (a 1-D dot product), with sequential passes covering all neurons.
func mapFC(l *layers.FCLayer, idx int, in tensor.Shape, a Array) (Mapping, Traffic) {
	used := l.Out
	if used > a.PEs() {
		used = a.PEs()
	}
	passes := (l.Out + used - 1) / used
	cyclesPerPass := int64(l.In)
	m := Mapping{
		Layer: idx, Name: l.Name(),
		LogicalRows: 1, LogicalCols: used,
		Folds: 1, Replication: 1,
		Passes:        passes,
		CyclesPerPass: cyclesPerPass,
		Cycles:        int64(passes) * cyclesPerPass,
		UsedPEs:       used,
		Utilization:   float64(used) / float64(a.PEs()),
		MACs:          l.MACs(in),
	}
	t := Traffic{
		// The input vector is broadcast once per pass; weights stream
		// through the filter SRAMs exactly once (no weight reuse in FC).
		GlobalBufferReads: int64(passes) * int64(l.In),
		FilterSRAMFills:   int64(l.Out) * int64(l.In),
		ImgRegFills:       int64(passes) * int64(l.In),
		PSumSpills:        int64(l.Out),
	}
	return m, t
}

// ResidencyWeights returns, per mapped layer, the probability that a
// uniformly random cycle falls within that layer's execution — the
// time-residency weights for buffer-fault sampling.
func (s *Schedule) ResidencyWeights() []float64 {
	w := make([]float64, len(s.Mappings))
	for i, m := range s.Mappings {
		w[i] = float64(m.Cycles) / float64(s.TotalCycles)
	}
	return w
}

// Efficiency returns the array-level MAC efficiency: algorithmic MACs
// divided by (cycles x total PEs). It is bounded by the mean utilization.
func (s *Schedule) Efficiency() float64 {
	var macs int64
	for _, m := range s.Mappings {
		macs += m.MACs
	}
	return float64(macs) / (float64(s.TotalCycles) * float64(s.Array.PEs()))
}

// Format renders the schedule as a table.
func (s *Schedule) Format() string {
	out := fmt.Sprintf("%-8s %6s %6s %6s %7s %10s %12s %6s\n",
		"Layer", "R", "E", "Folds", "Passes", "Cycles", "UsedPEs", "Util")
	for _, m := range s.Mappings {
		out += fmt.Sprintf("%-8s %6d %6d %6d %7d %10d %12d %5.1f%%\n",
			m.Name, m.LogicalRows, m.LogicalCols, m.Folds, m.Passes, m.Cycles, m.UsedPEs, m.Utilization*100)
	}
	out += fmt.Sprintf("total cycles %d, array efficiency %.1f%%\n", s.TotalCycles, s.Efficiency()*100)
	return out
}

// FormatTraffic renders the buffer-traffic table.
func (s *Schedule) FormatTraffic() string {
	out := fmt.Sprintf("%-8s %14s %14s %14s %14s\n",
		"Layer", "GBReads", "FilterFills", "ImgRegFills", "PSumSpills")
	for i, t := range s.Traffics {
		out += fmt.Sprintf("%-8s %14d %14d %14d %14d\n",
			s.Mappings[i].Name, t.GlobalBufferReads, t.FilterSRAMFills, t.ImgRegFills, t.PSumSpills)
	}
	return out
}
