package rowstat

import (
	"math"
	"strings"
	"testing"

	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/tensor"
)

// handNet is a conv+fc network whose RS mapping is small enough to verify
// by hand.
func handNet() *network.Network {
	n := &network.Network{
		Name:    "hand",
		InShape: tensor.Shape{C: 2, H: 8, W: 8},
		Classes: 5,
		Layers: []layers.Layer{
			layers.NewConv("conv1", 2, 4, 3, 1, 1), // out 4x8x8
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2), // 4x4x4
			layers.NewFC("fc2", 64, 5),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func TestArrays(t *testing.T) {
	if Eyeriss65nm.PEs() != 168 {
		t.Errorf("65nm PEs = %d, want 168", Eyeriss65nm.PEs())
	}
	if Eyeriss16nm.PEs() != 1344 {
		t.Errorf("16nm PEs = %d, want 1344", Eyeriss16nm.PEs())
	}
}

func TestHandComputedConvMapping(t *testing.T) {
	s := New(handNet(), Eyeriss65nm)
	if len(s.Mappings) != 2 {
		t.Fatalf("mappings = %d", len(s.Mappings))
	}
	conv := s.Mappings[0]
	// r=3, e=8: one strip, 4 vertical replicas, 1 horizontal replica.
	if conv.LogicalRows != 3 || conv.LogicalCols != 8 {
		t.Errorf("logical set = %dx%d, want 3x8", conv.LogicalRows, conv.LogicalCols)
	}
	if conv.Folds != 1 || conv.Replication != 4 {
		t.Errorf("folds=%d replication=%d, want 1/4", conv.Folds, conv.Replication)
	}
	// 2 ic x 4 oc = 8 plane-strips over 4 sets = 2 passes of 8*3 cycles.
	if conv.Passes != 2 || conv.CyclesPerPass != 24 || conv.Cycles != 48 {
		t.Errorf("passes=%d cpp=%d cycles=%d, want 2/24/48", conv.Passes, conv.CyclesPerPass, conv.Cycles)
	}
	if conv.UsedPEs != 96 {
		t.Errorf("usedPEs = %d, want 96", conv.UsedPEs)
	}
	// This mapping is perfectly efficient: cycles*usedPEs == MACs.
	if conv.Cycles*int64(conv.UsedPEs) != conv.MACs {
		t.Errorf("cycles*PEs = %d, MACs = %d", conv.Cycles*int64(conv.UsedPEs), conv.MACs)
	}
}

func TestHandComputedFCMapping(t *testing.T) {
	s := New(handNet(), Eyeriss65nm)
	fc := s.Mappings[1]
	if fc.UsedPEs != 5 || fc.Passes != 1 || fc.Cycles != 64 {
		t.Errorf("fc mapping: used=%d passes=%d cycles=%d, want 5/1/64", fc.UsedPEs, fc.Passes, fc.Cycles)
	}
	if math.Abs(fc.Utilization-5.0/168) > 1e-12 {
		t.Errorf("fc utilization = %v", fc.Utilization)
	}
}

func TestHandComputedTraffic(t *testing.T) {
	s := New(handNet(), Eyeriss65nm)
	conv := s.Traffics[0]
	if conv.GlobalBufferReads != 512 {
		t.Errorf("GB reads = %d, want 512", conv.GlobalBufferReads)
	}
	if conv.FilterSRAMFills != 72 {
		t.Errorf("filter fills = %d, want 72", conv.FilterSRAMFills)
	}
	if conv.PSumSpills != 512 {
		t.Errorf("psum spills = %d, want 512", conv.PSumSpills)
	}
	fc := s.Traffics[1]
	if fc.FilterSRAMFills != 64*5 {
		t.Errorf("fc filter fills = %d, want 320", fc.FilterSRAMFills)
	}
}

func TestFoldingTriggered(t *testing.T) {
	// A 32-row ofmap exceeds the 14-column 65nm array: 3 folds.
	n := &network.Network{
		Name:    "wide",
		InShape: tensor.Shape{C: 1, H: 32, W: 32},
		Classes: 32 * 32,
		Layers:  []layers.Layer{layers.NewConv("conv", 1, 1, 3, 1, 1)},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(n, Eyeriss65nm)
	if s.Mappings[0].Folds != 3 {
		t.Errorf("folds = %d, want 3", s.Mappings[0].Folds)
	}
	// On the 16nm array (42 columns) no folding is needed.
	s16 := New(n, Eyeriss16nm)
	if s16.Mappings[0].Folds != 1 {
		t.Errorf("16nm folds = %d, want 1", s16.Mappings[0].Folds)
	}
}

func TestScheduleInvariantsOnAllModels(t *testing.T) {
	for _, name := range models.Names {
		net := models.Build(name)
		for _, arr := range []Array{Eyeriss65nm, Eyeriss16nm} {
			s := New(net, arr)
			if s.TotalCycles <= 0 {
				t.Fatalf("%s: no cycles", name)
			}
			var macs int64
			for i, m := range s.Mappings {
				if m.Utilization <= 0 || m.Utilization > 1 {
					t.Errorf("%s %s: utilization %v out of (0,1]", name, m.Name, m.Utilization)
				}
				// The schedule can never do more work per cycle than its
				// active PEs: cycles*usedPEs >= MACs.
				if m.Cycles*int64(m.UsedPEs) < m.MACs {
					t.Errorf("%s %s: cycles*PEs %d < MACs %d", name, m.Name,
						m.Cycles*int64(m.UsedPEs), m.MACs)
				}
				macs += m.MACs
				tr := s.Traffics[i]
				if tr.GlobalBufferReads <= 0 || tr.FilterSRAMFills <= 0 {
					t.Errorf("%s %s: zero traffic", name, m.Name)
				}
			}
			if eff := s.Efficiency(); eff <= 0 || eff > 1 {
				t.Errorf("%s: efficiency %v out of (0,1]", name, eff)
			}
		}
	}
}

func TestResidencyWeights(t *testing.T) {
	s := New(models.Build("AlexNet"), Eyeriss16nm)
	w := s.ResidencyWeights()
	if len(w) != 8 {
		t.Fatalf("weights = %d entries", len(w))
	}
	sum := 0.0
	for _, v := range w {
		if v < 0 || v > 1 {
			t.Fatalf("weight %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestBiggerArrayNeverSlower(t *testing.T) {
	// The 16nm array (8x the PEs) must not need more cycles than 65nm.
	for _, name := range models.Names {
		net := models.Build(name)
		c65 := New(net, Eyeriss65nm).TotalCycles
		c16 := New(net, Eyeriss16nm).TotalCycles
		if c16 > c65 {
			t.Errorf("%s: 16nm cycles %d exceed 65nm cycles %d", name, c16, c65)
		}
	}
}

func TestFormatOutputs(t *testing.T) {
	s := New(handNet(), Eyeriss65nm)
	if out := s.Format(); !strings.Contains(out, "conv1") || !strings.Contains(out, "efficiency") {
		t.Errorf("Format:\n%s", out)
	}
	if out := s.FormatTraffic(); !strings.Contains(out, "GBReads") {
		t.Errorf("FormatTraffic:\n%s", out)
	}
}

func TestPanicsOnOversizedFilter(t *testing.T) {
	n := &network.Network{
		Name:    "big",
		InShape: tensor.Shape{C: 1, H: 20, W: 20},
		Classes: 36,
		Layers:  []layers.Layer{layers.NewConv("conv", 1, 1, 15, 1, 0)},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for filter taller than array")
		}
	}()
	New(n, Eyeriss65nm)
}
