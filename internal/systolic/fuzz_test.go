package systolic

import (
	"math"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

// FuzzSystolicFault drives arbitrary physical fault addresses through the
// decoder: out-of-range addresses must error, and every in-range address
// must land on exactly one injection site — pinned by the Encode/Resolve
// bijection — and be consumed by the cycle-level simulation (except the
// architecturally masked pipe-at-tile-edge case, which must change
// nothing).
func FuzzSystolicFault(f *testing.F) {
	dt := numeric.Fx16RB10
	l := fxConv(3, 2, 3, 3, 1, 1)
	in := fxInput(103, 2, 5, 5)
	sim := New(l, dt, tinyArray)
	geo := sim.Geometry(in.Shape)
	golden := sim.Run(in, nil)

	f.Add(0, 0, 0, 0, 0, 0, 1)
	f.Add(1, 5, 2, 1, 1, 7, 1)
	f.Add(geo.Passes-1, geo.CyclesPerPass-1, geo.Rows-1, geo.Cols-1, 3, 15, 2)
	f.Add(0, 3, 0, 2, 3, 14, 1)  // pipe at a tile edge
	f.Add(2, 100, 1, 1, 2, 8, 3) // drain-cycle reject
	f.Fuzz(func(t *testing.T, pass, cycle, row, col, latch, bit, width int) {
		fault := Fault{
			Pass: pass, Cycle: cycle, Row: row, Col: col,
			Latch: Latch(latch), Bit: bit, Width: width,
		}
		site, err := geo.Resolve(&fault, dt.Width())
		if err != nil {
			return // out-of-range: rejected, nothing to inject
		}

		// The site must be in range...
		if site.K < 0 || site.K >= geo.K || site.Out < 0 || site.Out >= geo.Outs ||
			site.P < 0 || site.P >= geo.P {
			t.Fatalf("Resolve(%+v) produced out-of-range site %+v", fault, site)
		}
		if site.Width < 1 || site.Bit < 0 || site.Bit+site.Width > dt.Width() {
			t.Fatalf("Resolve(%+v) produced invalid bit span %+v", fault, site)
		}
		// ...and unique: re-encoding recovers the canonical address.
		enc := geo.Encode(site)
		enc.Applied = fault.Applied
		norm := fault
		if norm.Width == 0 {
			norm.Width = 1
		}
		if enc != norm {
			t.Fatalf("Encode(Resolve(%+v)) = %+v; address decodes to more than one site", norm, enc)
		}

		faulty := sim.Run(in, &fault)
		edgePipe := site.Latch == LatchPipe && geo.ColTileEnd(site.Out) == site.Out+1
		if fault.Applied == edgePipe {
			t.Fatalf("fault %+v: applied=%v, want %v", fault, fault.Applied, !edgePipe)
		}
		if edgePipe {
			for i := range golden.Data {
				if math.Float64bits(faulty.Data[i]) != math.Float64bits(golden.Data[i]) {
					t.Fatalf("architecturally masked fault %+v changed output %d", fault, i)
				}
			}
		}
	})
}

// FuzzDataflowFault is FuzzSystolicFault generalized over the dataflow
// axis: for every dataflow, an arbitrary physical address either rejects
// or resolves to exactly one site (Encode/Resolve bijection), the
// cycle-level simulation consumes it (except the architecturally masked
// pipe-at-tile-edge case, which must change nothing), and the campaign
// path's per-MAC corruption front reproduces the simulator's faulted
// ofmap bit for bit — the effect-expansion equivalence proof driven from
// fuzzed addresses instead of hand-picked sites.
func FuzzDataflowFault(f *testing.F) {
	dt := numeric.Fx16RB10
	l := fxConv(3, 2, 3, 3, 1, 1)
	in := fxInput(103, 2, 5, 5)

	type flowState struct {
		sim    *Sim
		geo    Geometry
		golden []float64
	}
	states := make([]flowState, NumDataflows)
	for flow := WeightStationary; flow < NumDataflows; flow++ {
		sim := NewFlow(l, dt, tinyArray, flow)
		states[flow] = flowState{sim: sim, geo: sim.Geometry(in.Shape), golden: sim.Run(in, nil).Data}
	}

	f.Add(1, 0, 0, 0, 0, 0, 0, 1)
	f.Add(1, 1, 5, 2, 1, 1, 7, 1)
	f.Add(2, 0, 3, 0, 2, 3, 14, 2)
	f.Add(2, 4, 2, 1, 2, 0, 4, 3)
	f.Fuzz(func(t *testing.T, flowInt, pass, cycle, row, col, latch, bit, width int) {
		flow := Dataflow(((flowInt % int(NumDataflows)) + int(NumDataflows)) % int(NumDataflows))
		st := states[flow]
		fault := Fault{
			Pass: pass, Cycle: cycle, Row: row, Col: col,
			Latch: Latch(latch), Bit: bit, Width: width,
		}
		site, err := st.geo.Resolve(&fault, dt.Width())
		if err != nil {
			return
		}
		if site.K < 0 || site.K >= st.geo.K || site.Out < 0 || site.Out >= st.geo.Outs ||
			site.P < 0 || site.P >= st.geo.P {
			t.Fatalf("%s: Resolve(%+v) produced out-of-range site %+v", flow, fault, site)
		}
		enc := st.geo.Encode(site)
		norm := fault
		if norm.Width == 0 {
			norm.Width = 1
		}
		if enc != norm {
			t.Fatalf("%s: Encode(Resolve(%+v)) = %+v; address decodes to more than one site", flow, norm, enc)
		}

		faulty := st.sim.Run(in, &fault)
		edgePipe := st.geo.PipeMasked(site)
		if fault.Applied == edgePipe {
			t.Fatalf("%s: fault %+v: applied=%v, want %v", flow, fault, fault.Applied, !edgePipe)
		}

		// The campaign's corruption front must reproduce the simulator.
		op, elems := st.geo.effects(site)
		if edgePipe != (len(elems) == 0) {
			t.Fatalf("%s: site %+v: effects emitted %d elems, arch-masked=%v", flow, site, len(elems), edgePipe)
		}
		want := append([]float64(nil), st.golden...)
		for _, oi := range elems {
			want[oi] = chainEvalLayer(l, dt, in, oi, site, op)
		}
		for i := range want {
			if math.Float64bits(faulty.Data[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: site %+v: out[%d] = %v (sim) vs %v (effect expansion)",
					flow, site, i, faulty.Data[i], want[i])
			}
		}
	})
}

// chainEvalLayer recomputes one output element's accumulation chain with
// the site's flip applied at step s.K — a standalone mirror of the
// injector's chainEval for fuzzing without a network.
func chainEvalLayer(l *layers.ConvLayer, dt numeric.Type, in *tensor.Tensor, oi int, s Site, op faultOp) float64 {
	quant, mac := dt.QuantFunc(), dt.MACFunc()
	os := l.OutShape(in.Shape)
	plane := os.H * os.W
	khkw := l.KH * l.KW
	oc, oh, ow := oi/plane, (oi%plane)/os.W, oi%os.W
	acc := quant(l.Bias[oc])
	for k := 0; k < l.MACChainLen(); k++ {
		ic, kh, kw := k/khkw, (k/l.KW)%l.KH, k%l.KW
		ih, iw := oh*l.Stride+kh-l.Pad, ow*l.Stride+kw-l.Pad
		var x float64
		if ih >= 0 && ih < in.Shape.H && iw >= 0 && iw < in.Shape.W {
			x = quant(in.At(ic, ih, iw))
		}
		w := quant(l.Weights[l.WeightIndex(oc, ic, kh, kw)])
		if k == s.K {
			switch op {
			case opWeight:
				w = flipBits(dt, w, s.Bit, s.Width)
			case opAct:
				x = flipBits(dt, x, s.Bit, s.Width)
			}
		}
		acc = mac(acc, w, x)
		if op == opAccum && k == s.K {
			acc = flipBits(dt, acc, s.Bit, s.Width)
		}
	}
	return acc
}

// FuzzPreScreenSoundness re-simulates every flip the bit-plane mode's
// analytical pre-screen would claim masked: when golden plus the flip's
// maximum magnitude is ≤ 0 ahead of a ReLU, the full execution must be
// bit-identical to golden and classify as masked.
func FuzzPreScreenSoundness(f *testing.F) {
	dt := numeric.Fx16RB10
	net := buildSmall()
	net.EnableQuantCache()
	g := net.Forward(dt, smallInputs(1)[0])
	const li = 0 // conv1, followed by ReLU
	outs := g.Acts[li].Shape.Elems()
	chain := net.Layers[li].(*layers.ConvLayer).MACChainLen()
	goldenOut := sdc.Classify(net, g, g)

	f.Add(0, 0, 0)
	f.Add(7, 3, 12)
	f.Add(63, 8, 15)
	f.Fuzz(func(t *testing.T, outIdx, macStep, bit int) {
		outIdx = ((outIdx % outs) + outs) % outs
		macStep = ((macStep % chain) + chain) % chain
		bit = ((bit % dt.Width()) + dt.Width()) % dt.Width()

		gv := g.Acts[li].Data[outIdx]
		if gv+dt.FxFlipMagnitude(bit) > 0 {
			return // pre-screen would replay this flip; nothing claimed
		}

		fault := &layers.Fault{OutputIndex: outIdx, MACStep: macStep, Target: layers.TargetAccum, Bit: bit}
		faulty := net.ForwardFrom(dt, g, li, fault)
		if !faulty.Masked {
			t.Fatalf("pre-screen claims (out %d, step %d, bit %d) masked; execution disagrees", outIdx, macStep, bit)
		}
		final := len(faulty.Acts) - 1
		for i := range faulty.Acts[final].Data {
			if math.Float64bits(faulty.Acts[final].Data[i]) != math.Float64bits(g.Acts[final].Data[i]) {
				t.Fatalf("pre-screened flip (out %d, step %d, bit %d) reached the output", outIdx, macStep, bit)
			}
		}
		if out := sdc.Classify(net, g, faulty); out != goldenOut {
			t.Fatalf("pre-screened flip classified %+v, want golden %+v", out, goldenOut)
		}
	})
}
