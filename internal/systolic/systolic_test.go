package systolic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// fxConv builds a conv layer with values small enough that 32b_rb26
// fixed-point arithmetic is exact and saturation-free, making every
// summation order produce identical bits — the precondition for the
// bit-exact equivalence tests.
func fxConv(seed int64, inC, outC, k, stride, pad int) *layers.ConvLayer {
	rng := rand.New(rand.NewSource(seed))
	l := layers.NewConv("c", inC, outC, k, stride, pad)
	for i := range l.Weights {
		l.Weights[i] = float64(rng.Intn(41)-20) / 256 // grid-exact, small
	}
	for i := range l.Bias {
		l.Bias[i] = float64(rng.Intn(17)-8) / 256
	}
	return l
}

func fxFC(seed int64, in, out int) *layers.FCLayer {
	rng := rand.New(rand.NewSource(seed))
	l := layers.NewFC("f", in, out)
	for i := range l.Weights {
		l.Weights[i] = float64(rng.Intn(41)-20) / 256
	}
	for i := range l.Bias {
		l.Bias[i] = float64(rng.Intn(17)-8) / 256
	}
	return l
}

func fxInput(seed int64, c, h, w int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(tensor.Shape{C: c, H: h, W: w})
	for i := range in.Data {
		in.Data[i] = float64(rng.Intn(41)-20) / 256
	}
	return in
}

// tinyArray tiles the test layers in both dimensions so the edge-tile and
// cross-tile paths are exercised.
var tinyArray = Params{Rows: 4, Cols: 3}

func TestGeometry(t *testing.T) {
	l := fxConv(1, 2, 4, 3, 1, 1)
	sim := New(l, numeric.Fx32RB26, tinyArray)
	geo := sim.Geometry(tensor.Shape{C: 2, H: 6, W: 6})
	if geo.K != 18 || geo.Outs != 4 || geo.P != 36 {
		t.Errorf("K/Outs/P = %d/%d/%d, want 18/4/36", geo.K, geo.Outs, geo.P)
	}
	if geo.RowTiles != 5 || geo.ColTiles != 2 || geo.Passes != 10 {
		t.Errorf("tiles = %dx%d passes %d, want 5x2 passes 10", geo.RowTiles, geo.ColTiles, geo.Passes)
	}
	if geo.CyclesPerPass != 36+4+3-2 {
		t.Errorf("cycles/pass = %d, want %d", geo.CyclesPerPass, 36+4+3-2)
	}
	if ColTileEnd := geo.ColTileEnd(0); ColTileEnd != 3 {
		t.Errorf("ColTileEnd(0) = %d, want 3", ColTileEnd)
	}
	if ColTileEnd := geo.ColTileEnd(3); ColTileEnd != 4 {
		t.Errorf("ColTileEnd(3) = %d, want 4 (edge tile)", ColTileEnd)
	}
}

func TestGeometryPerDataflow(t *testing.T) {
	// K=18, Outs=4, P=36 on a 4×3 array; each dataflow tiles its own
	// (row, column) axes and streams the third through time.
	l := fxConv(1, 2, 4, 3, 1, 1)
	in := tensor.Shape{C: 2, H: 6, W: 6}
	cases := []struct {
		flow                       Dataflow
		rowTiles, colTiles, cycles int
	}{
		{WeightStationary, 5, 2, 36 + 4 + 3 - 2},  // rows↔K, cols↔Outs, time↔P
		{OutputStationary, 9, 2, 18 + 4 + 3 - 2},  // rows↔P, cols↔Outs, time↔K
		{InputStationary, 5, 12, 4 + 4 + 3 - 2},   // rows↔K, cols↔P, time↔Outs
	}
	for _, tc := range cases {
		geo := NewFlow(l, numeric.Fx32RB26, tinyArray, tc.flow).Geometry(in)
		if geo.K != 18 || geo.Outs != 4 || geo.P != 36 {
			t.Errorf("%s: K/Outs/P = %d/%d/%d, want 18/4/36", tc.flow, geo.K, geo.Outs, geo.P)
		}
		if geo.RowTiles != tc.rowTiles || geo.ColTiles != tc.colTiles {
			t.Errorf("%s: tiles = %dx%d, want %dx%d", tc.flow, geo.RowTiles, geo.ColTiles, tc.rowTiles, tc.colTiles)
		}
		if geo.Passes != tc.rowTiles*tc.colTiles {
			t.Errorf("%s: passes = %d, want %d", tc.flow, geo.Passes, tc.rowTiles*tc.colTiles)
		}
		if geo.CyclesPerPass != tc.cycles {
			t.Errorf("%s: cycles/pass = %d, want %d", tc.flow, geo.CyclesPerPass, tc.cycles)
		}
	}
	// The input-stationary column axis is the stream position.
	isGeo := NewFlow(l, numeric.Fx32RB26, tinyArray, InputStationary).Geometry(in)
	if end := isGeo.ColTileEnd(34); end != 36 {
		t.Errorf("input-stationary ColTileEnd(34) = %d, want 36 (edge P tile)", end)
	}
}

func TestFaultFreeMatchesLayersExactlyAllFormats(t *testing.T) {
	// The array folds every accumulation chain in the layers package's
	// chain order with the same quantize-then-MAC kernel, so the fault-free
	// output is bit-identical under EVERY format — including floats, where
	// the operation sequences coincide exactly (stronger than associativity
	// arguments).
	for flow := WeightStationary; flow < NumDataflows; flow++ {
		for _, dt := range numeric.Types {
			for trial := int64(0); trial < 8; trial++ {
				l := fxConv(trial, 1+int(trial%3), 1+int(trial%5), 1+int(trial%3), 1+int(trial%2), int(trial%2))
				in := fxInput(trial+100, l.InC, 5+int(trial%4), 5+int(trial%4))
				sim := NewFlow(l, dt, tinyArray, flow)
				got := sim.Run(in, nil)
				want := l.Forward(&layers.Context{DType: dt}, in)
				if got.Shape != want.Shape {
					t.Fatalf("%s/%s trial %d: shape %v vs %v", flow, dt, trial, got.Shape, want.Shape)
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%s/%s trial %d: out[%d] = %v, want %v", flow, dt, trial, i, got.Data[i], want.Data[i])
					}
				}
			}
			// FC layers map with P=1.
			fc := fxFC(3, 12, 7)
			in := fxInput(200, 1, 1, 12)
			got := NewFlow(fc, dt, tinyArray, flow).Run(in, nil)
			want := fc.Forward(&layers.Context{DType: dt}, in)
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%s/%s FC: out[%d] = %v, want %v", flow, dt, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestResolveEncodeRoundTrip(t *testing.T) {
	// Every logical site has exactly one physical address and vice versa —
	// under every dataflow's axis mapping.
	l := fxConv(5, 2, 4, 3, 1, 1)
	for flow := WeightStationary; flow < NumDataflows; flow++ {
		sim := NewFlow(l, numeric.Fx16RB10, tinyArray, flow)
		geo := sim.Geometry(tensor.Shape{C: 2, H: 5, W: 5})
		for k := 0; k < geo.K; k++ {
			for o := 0; o < geo.Outs; o++ {
				for p := 0; p < geo.P; p += 7 {
					for latch := Latch(0); latch < NumLatches; latch++ {
						s := Site{K: k, Out: o, P: p, Latch: latch, Bit: 3, Width: 1}
						f := geo.Encode(s)
						got, err := geo.Resolve(&f, 16)
						if err != nil {
							t.Fatalf("%s: Encode(%+v) = %+v unresolvable: %v", flow, s, f, err)
						}
						if got != s {
							t.Fatalf("%s: round trip %+v -> %+v -> %+v", flow, s, f, got)
						}
					}
				}
			}
		}
	}
}

func TestResolveRejectsInvalidAddresses(t *testing.T) {
	l := fxConv(5, 2, 4, 3, 1, 1)
	sim := New(l, numeric.Fx16RB10, tinyArray)
	geo := sim.Geometry(tensor.Shape{C: 2, H: 5, W: 5})
	bad := []Fault{
		{Latch: NumLatches},                                  // unknown latch
		{Latch: -1},                                          // unknown latch
		{Bit: -1},                                            // bit below word
		{Bit: 15, Width: 2},                                  // MBU span past word end
		{Bit: 16},                                            // bit past word end
		{Width: -2},                                          // negative width
		{Pass: geo.Passes},                                   // pass out of range
		{Pass: -1},                                           // pass out of range
		{Row: geo.Rows},                                      // row off the array
		{Col: geo.Cols},                                      // col off the array
		{Pass: geo.Passes - 2, Row: geo.Rows - 1, Cycle: 3},  // idle row: last row tile holds K%Rows rows
		{Pass: 1, Col: geo.Cols - 1, Cycle: 4},               // idle col: edge column tile holds Outs%Cols cols
		{Cycle: geo.CyclesPerPass + 5},                       // beyond the drain
		{Row: 2, Col: 1, Cycle: 1},                           // fill skew: operand not yet arrived
		{Row: 0, Col: 0, Cycle: geo.P},                       // drain skew: stream already past
	}
	for _, f := range bad {
		f := f
		if _, err := geo.Resolve(&f, 16); err == nil {
			t.Errorf("Resolve(%+v) accepted an invalid address", f)
		}
	}
}

func TestPhysicalFaultMatchesAbstractFault(t *testing.T) {
	// A single-MAC physical fault must produce exactly the ofmap of the
	// layers package's per-MAC fault: act and psum latches always, weight
	// at the last stream position, pipe with one downstream consumer.
	dt := numeric.Fx32RB26
	l := fxConv(3, 2, 4, 3, 1, 1)
	in := fxInput(103, 2, 6, 6)
	sim := New(l, dt, tinyArray)
	geo := sim.Geometry(in.Shape)
	rng := rand.New(rand.NewSource(17))

	compare := func(f *Fault) {
		t.Helper()
		af, ok := sim.AbstractFault(f, in.Shape)
		if !ok {
			t.Fatalf("fault not comparable: %+v", f)
		}
		phys := sim.Run(in, f)
		if !f.Applied {
			t.Fatalf("physical fault not applied: %+v", f)
		}
		abs := l.Forward(&layers.Context{DType: dt, Fault: &af}, in)
		if !af.Applied {
			t.Fatalf("abstract fault not applied: %+v", af)
		}
		for i := range abs.Data {
			if phys.Data[i] != abs.Data[i] {
				t.Fatalf("fault %+v -> %+v: out[%d] = %v (physical) vs %v (abstract)",
					f, af, i, phys.Data[i], abs.Data[i])
			}
		}
	}

	seen := map[Latch]int{}
	for tested := 0; tested < 120; {
		f := sim.RandomFault(rng, in.Shape)
		f.Bit = rng.Intn(30) // keep clear of sign-bit saturation clipping
		if _, ok := sim.AbstractFault(f, in.Shape); !ok {
			continue
		}
		compare(f)
		seen[f.Latch]++
		tested++
	}
	// The always-single-MAC latches must show up in a random sample; the
	// conditional weight/pipe cases are rare and forced explicitly below.
	if seen[LatchAct] == 0 || seen[LatchPsum] == 0 {
		t.Errorf("random sample missed a single-MAC latch: %v", seen)
	}

	// Force the two conditional cases: a weight fault at the last stream
	// position and a pipe fault one PE west of its tile edge.
	wf := geo.Encode(Site{K: 5, Out: 1, P: geo.P - 1, Latch: LatchWeight, Bit: 20, Width: 1})
	compare(&wf)
	pf := geo.Encode(Site{K: 5, Out: 1, P: 4, Latch: LatchPipe, Bit: 20, Width: 1})
	compare(&pf)
	// And their negatives.
	wf2 := geo.Encode(Site{K: 5, Out: 1, P: 0, Latch: LatchWeight, Bit: 20, Width: 1})
	if _, ok := sim.AbstractFault(&wf2, in.Shape); ok {
		t.Error("mid-stream weight fault wrongly comparable (corrupts many MACs)")
	}
	pf2 := geo.Encode(Site{K: 5, Out: 0, P: 4, Latch: LatchPipe, Bit: 20, Width: 1})
	if _, ok := sim.AbstractFault(&pf2, in.Shape); ok {
		t.Error("pipe fault with two downstream consumers wrongly comparable")
	}
}

// TestDataflowAbstractFaults is TestPhysicalFaultMatchesAbstractFault
// for the new dataflows: under each one, the latches the dataflow makes
// single-read must produce exactly the layers package's per-MAC ofmap,
// and the resident/pipe latches must be comparable exactly at their
// single-remaining-read / one-downstream-consumer boundary conditions.
func TestDataflowAbstractFaults(t *testing.T) {
	dt := numeric.Fx32RB26
	l := fxConv(3, 2, 4, 3, 1, 1)
	in := fxInput(103, 2, 6, 6)

	for _, flow := range []Dataflow{OutputStationary, InputStationary} {
		sim := NewFlow(l, dt, tinyArray, flow)
		geo := sim.Geometry(in.Shape)

		compare := func(f *Fault) {
			t.Helper()
			af, ok := sim.AbstractFault(f, in.Shape)
			if !ok {
				t.Fatalf("%s: fault not comparable: %+v", flow, f)
			}
			phys := sim.Run(in, f)
			if !f.Applied {
				t.Fatalf("%s: physical fault not applied: %+v", flow, f)
			}
			abs := l.Forward(&layers.Context{DType: dt, Fault: &af}, in)
			if !af.Applied {
				t.Fatalf("%s: abstract fault not applied: %+v", flow, af)
			}
			for i := range abs.Data {
				if phys.Data[i] != abs.Data[i] {
					t.Fatalf("%s: fault %+v -> %+v: out[%d] = %v (physical) vs %v (abstract)",
						flow, f, af, i, phys.Data[i], abs.Data[i])
				}
			}
		}

		// The dataflow's single-read latches at an interior site.
		single := []Latch{LatchWeight, LatchPsum}
		if flow == OutputStationary {
			single = append(single, LatchAct)
		}
		for _, latch := range single {
			f := geo.Encode(Site{K: 5, Out: 1, P: 7, Latch: latch, Bit: 20, Width: 1})
			compare(&f)
		}

		if flow == InputStationary {
			// Resident act: comparable only at the last time step (output).
			lf := geo.Encode(Site{K: 5, Out: geo.Outs - 1, P: 7, Latch: LatchAct, Bit: 20, Width: 1})
			compare(&lf)
			mid := geo.Encode(Site{K: 5, Out: 0, P: 7, Latch: LatchAct, Bit: 20, Width: 1})
			if _, ok := sim.AbstractFault(&mid, in.Shape); ok {
				t.Errorf("%s: early resident act fault wrongly comparable (corrupts many MACs)", flow)
			}
			// Pipe walks P: one downstream consumer at the P-tile edge - 2.
			end := geo.ColTileEnd(0)
			pf := geo.Encode(Site{K: 5, Out: 1, P: end - 2, Latch: LatchPipe, Bit: 20, Width: 1})
			compare(&pf)
		} else {
			// Pipe walks Out: one downstream consumer one PE west of the edge.
			pf := geo.Encode(Site{K: 5, Out: 1, P: 7, Latch: LatchPipe, Bit: 20, Width: 1})
			compare(&pf)
			pf2 := geo.Encode(Site{K: 5, Out: 0, P: 7, Latch: LatchPipe, Bit: 20, Width: 1})
			if _, ok := sim.AbstractFault(&pf2, in.Shape); ok {
				t.Errorf("%s: pipe fault with two downstream consumers wrongly comparable", flow)
			}
		}
	}
}

func TestWeightFaultCorruptsStreamSuffix(t *testing.T) {
	// A weight-register flip at stream position p0 corrupts the faulted
	// output column at positions p0..P-1 and nothing else: the register
	// reloads at the next pass.
	dt := numeric.Fx32RB26
	l := fxConv(7, 1, 2, 3, 1, 1)
	in := fxInput(107, 1, 6, 6)
	sim := New(l, dt, tinyArray)
	geo := sim.Geometry(in.Shape)
	golden := sim.Run(in, nil)

	s := Site{K: 4, Out: 1, P: 10, Latch: LatchWeight, Bit: 28, Width: 1}
	f := geo.Encode(s)
	faulty := sim.Run(in, &f)
	if !f.Applied {
		t.Fatal("weight fault not applied")
	}
	for i := range golden.Data {
		o, p := i/geo.P, i%geo.P
		inSuffix := o == s.Out && p >= s.P
		if !inSuffix && golden.Data[i] != faulty.Data[i] {
			t.Fatalf("weight fault leaked to output (%d,%d)", o, p)
		}
	}
	// The flip is a high bit on exact fixed point, so the struck position
	// itself must actually change.
	if golden.Data[s.Out*geo.P+s.P] == faulty.Data[s.Out*geo.P+s.P] {
		t.Error("weight fault did not corrupt the struck stream position")
	}
}

func TestPipeFaultCorruptsDownstreamPEs(t *testing.T) {
	// A pipeline-register flip corrupts only the PEs east of the fault in
	// the same column tile, all at the struck stream position.
	dt := numeric.Fx32RB26
	l := fxConv(9, 1, 3, 3, 1, 1)
	in := fxInput(109, 1, 6, 6)
	sim := New(l, dt, tinyArray) // Cols=3: one full column tile
	geo := sim.Geometry(in.Shape)
	golden := sim.Run(in, nil)

	s := Site{K: 2, Out: 0, P: 12, Latch: LatchPipe, Bit: 28, Width: 1}
	f := geo.Encode(s)
	faulty := sim.Run(in, &f)
	if !f.Applied {
		t.Fatal("pipe fault with downstream consumers not applied")
	}
	changed := 0
	for i := range golden.Data {
		o, p := i/geo.P, i%geo.P
		downstream := o > s.Out && o < geo.ColTileEnd(s.Out) && p == s.P
		if golden.Data[i] != faulty.Data[i] {
			changed++
			if !downstream {
				t.Fatalf("pipe fault leaked to output (%d,%d)", o, p)
			}
		}
	}
	if changed != 2 {
		t.Errorf("pipe fault corrupted %d outputs, want 2 (columns 1 and 2 at P)", changed)
	}
}

func TestPipeFaultAtTileEdgeArchMasked(t *testing.T) {
	// At the east edge of a column tile the corrupted operand leaves the
	// array unconsumed: nothing changes and the fault reports unapplied.
	dt := numeric.Fx32RB26
	l := fxConv(9, 1, 4, 3, 1, 1)
	in := fxInput(111, 1, 6, 6)
	sim := New(l, dt, tinyArray) // Outs=4, Cols=3: col tile 1 holds only output 3
	geo := sim.Geometry(in.Shape)
	golden := sim.Run(in, nil)

	s := Site{K: 1, Out: 3, P: 5, Latch: LatchPipe, Bit: 28, Width: 1}
	f := geo.Encode(s)
	faulty := sim.Run(in, &f)
	if f.Applied {
		t.Error("architecturally masked pipe fault reported applied")
	}
	for i := range golden.Data {
		if golden.Data[i] != faulty.Data[i] {
			t.Fatal("architecturally masked pipe fault changed the output")
		}
	}
}

func TestMBUFlipsAdjacentBits(t *testing.T) {
	// A width-w fault inverts w adjacent bits of the struck latch word.
	for _, dt := range numeric.Types {
		v := 0.3125
		got := flipBits(dt, v, 2, 3)
		want := dt.Decode(dt.Encode(v) ^ (0b111 << 2))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: flipBits = %v, want %v", dt, got, want)
		}
		if math.Float64bits(flipBits(dt, v, 4, 1)) != math.Float64bits(dt.FlipBit(v, 4)) {
			t.Errorf("%s: width-1 flip is not FlipBit", dt)
		}
	}

	// In the array, an MBU on the psum latch equals flipping the mask on
	// the accumulator word directly.
	dt := numeric.Fx32RB26
	l := fxConv(13, 1, 2, 3, 1, 1)
	in := fxInput(113, 1, 5, 5)
	sim := New(l, dt, tinyArray)
	geo := sim.Geometry(in.Shape)
	golden := sim.Run(in, nil)

	s := Site{K: geo.K - 1, Out: 1, P: 3, Latch: LatchPsum, Bit: 24, Width: 3}
	f := geo.Encode(s)
	faulty := sim.Run(in, &f)
	oi := s.Out*geo.P + s.P
	want := flipBits(dt, golden.Data[oi], s.Bit, s.Width)
	if math.Float64bits(faulty.Data[oi]) != math.Float64bits(want) {
		t.Errorf("MBU on final psum: got %v, want %v", faulty.Data[oi], want)
	}
}

func TestRandomFaultInRange(t *testing.T) {
	l := fxConv(11, 2, 3, 3, 1, 1)
	sim := New(l, numeric.Fx16RB10, tinyArray)
	rng := rand.New(rand.NewSource(23))
	shape := tensor.Shape{C: 2, H: 6, W: 6}
	geo := sim.Geometry(shape)
	for i := 0; i < 500; i++ {
		f := sim.RandomFault(rng, shape)
		if _, err := geo.Resolve(f, 16); err != nil {
			t.Fatalf("RandomFault produced an unresolvable address %+v: %v", f, err)
		}
	}
}

func TestLatchStrings(t *testing.T) {
	want := map[Latch]string{
		LatchWeight: "weight", LatchAct: "act-reg",
		LatchPsum: "psum-reg", LatchPipe: "pipeline-reg",
	}
	for latch, s := range want {
		if latch.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(latch), latch.String(), s)
		}
	}
}
