package systolic

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

func buildSmall() *network.Network {
	conv := layers.NewConv("conv1", 1, 4, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = 0.2 * float64(i%5-2)
	}
	fc := layers.NewFC("fc2", 4*4*4, 8)
	for i := range fc.Weights {
		fc.Weights[i] = 0.08 * float64(i%7-3)
	}
	n := &network.Network{
		Name:    "small",
		InShape: tensor.Shape{C: 1, H: 8, W: 8},
		Classes: 8,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func smallInputs(n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		img := dataset.Image(dataset.CIFARLike, 8, i)
		one := tensor.New(tensor.Shape{C: 1, H: 8, W: 8})
		copy(one.Data, img.Data[:64])
		ins[i] = one
	}
	return ins
}

func TestCampaignDeterministic(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2), Array: tinyArray}
	opt := Options{N: 120, Seed: 9, Workers: 3}
	r1 := c.Run(opt)
	r2 := c.Run(opt)
	if r1.Counts != r2.Counts {
		t.Errorf("systolic campaign not deterministic: %+v vs %+v", r1.Counts, r2.Counts)
	}
	if r1.Counts.Trials != 120 {
		t.Errorf("Trials = %d, want 120", r1.Counts.Trials)
	}
	perLatch := 0
	for latch := range r1.PerLatch {
		perLatch += r1.PerLatch[latch].Trials
	}
	if perLatch != r1.Counts.Trials {
		t.Errorf("PerLatch trials sum to %d, want %d", perLatch, r1.Counts.Trials)
	}
}

// TestEffectExpansionMatchesSim is the campaign half of the tentpole's
// equivalence proof, run under every dataflow: for every latch class —
// including the multi-MAC resident and pipeline faults and MBU widths —
// the injector's per-MAC effect expansion must reproduce the cycle-level
// simulator's faulted ofmap bit for bit.
func TestEffectExpansionMatchesSim(t *testing.T) {
	for flow := WeightStationary; flow < NumDataflows; flow++ {
		for _, dt := range []numeric.Type{numeric.Fx16RB10, numeric.Fx32RB26, numeric.Float, numeric.Double} {
			net := buildSmall()
			net.EnableQuantCache()
			in := smallInputs(1)[0]
			g := net.Forward(dt, in)
			inj := newInjector(net, dt, tinyArray, flow, nil)

			for pos, li := range inj.macLayers {
				geo := inj.geos[pos]
				sim := NewFlow(net.Layers[li], dt, tinyArray, flow)
				simIn := layerInput(g, li)
				cases := []Site{
					{K: 1, Out: 1, P: geo.P / 2, Latch: LatchAct, Bit: 3, Width: 1},
					{K: geo.K - 1, Out: geo.Outs - 1, P: 0, Latch: LatchPsum, Bit: dt.Width() - 3, Width: 1},
					{K: 2, Out: 0, P: geo.P / 3, Latch: LatchWeight, Bit: 5, Width: 1},
					{K: geo.K / 2, Out: 0, P: geo.P - 1, Latch: LatchPipe, Bit: 4, Width: 1},
					{K: 0, Out: geo.Outs - 1, P: 0, Latch: LatchPipe, Bit: 4, Width: 1}, // WS/OS tile edge
					{K: 1, Out: 0, P: geo.P - 1, Latch: LatchPipe, Bit: 4, Width: 1},    // IS tile edge (P)
					{K: 0, Out: 0, P: 0, Latch: LatchAct, Bit: 6, Width: 1},             // IS: resident whole pass
					{K: 2, Out: geo.Outs - 1, P: 0, Latch: LatchAct, Bit: 5, Width: 1},  // IS: one remaining read
					{K: 1, Out: 2, P: geo.P / 2, Latch: LatchWeight, Bit: 2, Width: 3},  // MBU
					{K: 1, Out: 1, P: geo.P / 4, Latch: LatchAct, Bit: 1, Width: 2},     // MBU
					{K: 3, Out: 1, P: geo.P / 2, Latch: LatchPsum, Bit: 0, Width: 4},    // MBU
					{K: 0, Out: 1, P: 0, Latch: LatchPipe, Bit: 2, Width: 2},            // MBU on the moving operand
				}
				for _, s := range cases {
					faulty := inj.execute(g, pos, s)
					f := geo.Encode(s)
					want := sim.Run(simIn, &f)
					// Masked executions alias golden tensors where the
					// perturbation died — in exactly those cases the sim output
					// equals golden too, so one comparison covers all paths.
					got := faulty.Acts[li]
					for i := range want.Data {
						if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
							t.Fatalf("%s/%s layer %d site %+v: act[%d] = %v (campaign) vs %v (sim)",
								flow, dt, li, s, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

func marshal(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardMergeBitIdentical is the distributed == solo property across
// the full matrix the issue pins: eval modes × all six formats × shard
// counts {1,2,7}, uniform and stratified. The shard-order merge of serial
// RunShard reports must byte-compare equal to the solo Run.
func TestShardMergeBitIdentical(t *testing.T) {
	inputs := smallInputs(2)
	for _, dt := range numeric.Types {
		for _, eval := range []engine.EvalMode{engine.EvalPerBit, engine.EvalSiteScalar, engine.EvalSiteBitPlane} {
			for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
				for _, shards := range []int{1, 2, 7} {
					c := &Campaign{Build: buildSmall, DType: dt, Inputs: inputs, Array: tinyArray}
					opt := Options{N: 24, Seed: 11, Workers: shards, Sampling: sampling, PilotN: 8, Eval: eval}
					solo := marshal(t, c.Run(opt))
					parts := make([]*Report, shards)
					for s := 0; s < shards; s++ {
						parts[s] = c.RunShard(s, shards, opt)
					}
					merged := marshal(t, MergeReports(parts))
					if string(solo) != string(merged) {
						t.Fatalf("%s/%s/%s S=%d: distributed != solo\nsolo:   %s\nmerged: %s",
							dt, eval, samplingName(sampling), shards, solo, merged)
					}
				}
			}
		}
	}
}

func samplingName(m engine.SamplingMode) string {
	if m == engine.SamplingStratified {
		return "stratified"
	}
	return "uniform"
}

// TestDataflowShardMergeBitIdentical extends the distributed == solo
// property to the output- and input-stationary dataflows, including an
// MBU campaign on each: shard-order merge must byte-compare equal to the
// solo run.
func TestDataflowShardMergeBitIdentical(t *testing.T) {
	inputs := smallInputs(2)
	for _, flow := range []Dataflow{OutputStationary, InputStationary} {
		for _, dt := range []numeric.Type{numeric.Fx16RB10, numeric.Float} {
			for _, eval := range []engine.EvalMode{engine.EvalPerBit, engine.EvalSiteScalar, engine.EvalSiteBitPlane} {
				for _, sampling := range []engine.SamplingMode{engine.SamplingUniform, engine.SamplingStratified} {
					for _, shards := range []int{1, 3} {
						c := &Campaign{Build: buildSmall, DType: dt, Inputs: inputs, Array: tinyArray, Flow: flow}
						opt := Options{N: 24, Seed: 11, Workers: shards, Sampling: sampling, PilotN: 8, Eval: eval}
						if eval == engine.EvalPerBit {
							opt.MBU = 3
						}
						solo := marshal(t, c.Run(opt))
						parts := make([]*Report, shards)
						for s := 0; s < shards; s++ {
							parts[s] = c.RunShard(s, shards, opt)
						}
						merged := marshal(t, MergeReports(parts))
						if string(solo) != string(merged) {
							t.Fatalf("%s/%s/%s/%s S=%d: distributed != solo\nsolo:   %s\nmerged: %s",
								flow, dt, eval, samplingName(sampling), shards, solo, merged)
						}
					}
				}
			}
		}
	}
}

// TestDataflowSiteModesBitIdentical pins the bit-plane fast path to the
// scalar oracle under the new dataflows — in particular the
// output-stationary weight latch, whose plane replay runs through
// layers.TargetWeight.
func TestDataflowSiteModesBitIdentical(t *testing.T) {
	for _, flow := range []Dataflow{OutputStationary, InputStationary} {
		for _, dt := range numeric.Types {
			c := &Campaign{Build: buildSmall, DType: dt, Inputs: smallInputs(2), Array: tinyArray, Flow: flow}
			base := Options{N: 3*dt.Width() + 5, Seed: 13, Workers: 2}
			scalar := base
			scalar.Eval = engine.EvalSiteScalar
			plane := base
			plane.Eval = engine.EvalSiteBitPlane
			rs := c.Run(scalar)
			rp := c.Run(plane)
			rs.PreMasked, rp.PreMasked = 0, 0
			if string(marshal(t, rs)) != string(marshal(t, rp)) {
				t.Errorf("%s/%s: site-scalar and site-bitplane reports differ\nscalar: %s\nplane:  %s",
					flow, dt, marshal(t, rs), marshal(t, rp))
			}
		}
	}
}

// TestDataflowsDiverge guards against the dataflow parameter being wired
// but inert: at equal seeds the three dataflows must not all produce the
// same per-latch tallies (their corruption fronts differ by
// construction).
func TestDataflowsDiverge(t *testing.T) {
	reports := make([]string, NumDataflows)
	for flow := WeightStationary; flow < NumDataflows; flow++ {
		c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2), Array: tinyArray, Flow: flow}
		reports[flow] = string(marshal(t, c.Run(Options{N: 300, Seed: 5})))
	}
	if reports[WeightStationary] == reports[OutputStationary] &&
		reports[WeightStationary] == reports[InputStationary] {
		t.Error("all three dataflows produced identical reports at N=300; the dataflow axis looks inert")
	}
}

// TestSiteModesBitIdentical pins the bit-plane fast path to the scalar
// oracle: same draws, same tallies, byte-identical reports.
func TestSiteModesBitIdentical(t *testing.T) {
	for _, dt := range numeric.Types {
		c := &Campaign{Build: buildSmall, DType: dt, Inputs: smallInputs(2), Array: tinyArray}
		base := Options{N: 3*dt.Width() + 5, Seed: 13, Workers: 2}
		scalar := base
		scalar.Eval = engine.EvalSiteScalar
		plane := base
		plane.Eval = engine.EvalSiteBitPlane
		rs := c.Run(scalar)
		rp := c.Run(plane)
		rs.PreMasked, rp.PreMasked = 0, 0 // diagnostic only: the pre-screen exists only in plane mode
		if string(marshal(t, rs)) != string(marshal(t, rp)) {
			t.Errorf("%s: site-scalar and site-bitplane reports differ\nscalar: %s\nplane:  %s",
				dt, marshal(t, rs), marshal(t, rp))
		}
	}
}

func TestStratifiedEstimateAndPrior(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2), Array: tinyArray}
	var pilot *engine.StrataSummary
	opt := Options{
		N: 160, Seed: 7, Workers: 3, Sampling: engine.SamplingStratified, PilotN: 48,
		OnPilotStrata: func(s *engine.StrataSummary) { pilot = s.Clone() },
	}
	r := c.Run(opt)
	if r.Strata == nil {
		t.Fatal("stratified run produced no strata")
	}
	if pilot == nil {
		t.Fatal("OnPilotStrata not called")
	}
	if r.Counts.Trials != 160 {
		t.Errorf("Trials = %d, want 160", r.Counts.Trials)
	}
	p, ci := r.SDCEstimate(sdc.SDC1)
	if math.IsNaN(p) || p < 0 || p > 1 || ci < 0 {
		t.Errorf("estimate = %v ± %v", p, ci)
	}

	// A prior-allocated campaign (pilot-free) must run on the recorded
	// strata and remain deterministic.
	prior := Options{
		N: 80, Seed: 7, Workers: 2, Sampling: engine.SamplingStratified,
		PilotN: -1, Prior: pilot,
	}
	r1 := c.Run(prior)
	r2 := c.Run(prior)
	if string(marshal(t, r1)) != string(marshal(t, r2)) {
		t.Error("prior-allocated campaign not deterministic")
	}
	if r1.Counts.Trials != 80 {
		t.Errorf("prior-allocated Trials = %d, want 80", r1.Counts.Trials)
	}
}

func TestMBUCampaign(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2), Array: tinyArray}
	opt := Options{N: 100, Seed: 19, Workers: 2, MBU: 3}
	r := c.Run(opt)
	if r.Counts.Trials != 100 {
		t.Errorf("Trials = %d, want 100", r.Counts.Trials)
	}

	// Stratified MBU campaigns must leave the top MBU-1 base-bit strata
	// empty: those spans would cross the word end.
	sopt := opt
	sopt.Sampling = engine.SamplingStratified
	sopt.PilotN = 32
	sr := c.Run(sopt)
	if sr.Strata == nil {
		t.Fatal("no strata")
	}
	width := numeric.Fx16RB10.Width()
	blocks := len(sr.Strata.Counts) / width
	for blk := 0; blk < blocks; blk++ {
		for bit := width - opt.MBU + 1; bit < width; bit++ {
			if n := sr.Strata.Counts[blk*width+bit].Trials; n != 0 {
				t.Errorf("stratum (%d,%d) got %d trials; MBU span would cross the word end", blk, bit, n)
			}
		}
	}

	// Distributed MBU == solo as well.
	parts := []*Report{c.RunShard(0, 2, opt), c.RunShard(1, 2, opt)}
	if string(marshal(t, c.Run(opt))) != string(marshal(t, MergeReports(parts))) {
		t.Error("MBU campaign distributed != solo")
	}
}

func TestMBURejectsSiteModes(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1), Array: tinyArray}
	defer func() {
		if recover() == nil {
			t.Error("MBU + site mode did not panic")
		}
	}()
	c.Run(Options{N: 8, Seed: 1, MBU: 2, Eval: engine.EvalSiteScalar})
}

func TestMBUWiderThanWordRejected(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1), Array: tinyArray}
	defer func() {
		if recover() == nil {
			t.Error("MBU wider than the word did not panic")
		}
	}()
	c.Run(Options{N: 8, Seed: 1, MBU: 17})
}

func TestResidencyWeightsRouteLayers(t *testing.T) {
	c := &Campaign{
		Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1), Array: tinyArray,
		Residency: []float64{0, 1}, // conv1, fc2
	}
	r := c.Run(Options{N: 50, Seed: 31})
	if r.Counts.Trials != 50 {
		t.Fatalf("trials = %d", r.Counts.Trials)
	}
	bad := &Campaign{
		Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1),
		Residency: []float64{1}, // wrong length
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched residency length did not panic")
		}
	}()
	bad.Run(Options{N: 1, Seed: 1, Workers: 1})
}

func TestDetectorTally(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(1), Array: tinyArray}
	detect := func(e *network.Execution) bool { return e != nil && !e.Masked }
	r := c.Run(Options{N: 60, Seed: 23, Workers: 2, Detector: detect})
	if r.Detection.Total != 60 {
		t.Errorf("detector tallied %d of 60 injections", r.Detection.Total)
	}
	if p, rec := r.Detection.Precision(), r.Detection.Recall(); p < 0 || p > 1 || rec < 0 || rec > 1 {
		t.Errorf("precision/recall out of range: %v/%v", p, rec)
	}
}

func TestFaultsCauseSomeSDCs(t *testing.T) {
	c := &Campaign{Build: buildSmall, DType: numeric.Fx16RB10, Inputs: smallInputs(2), Array: tinyArray}
	r := c.Run(Options{N: 200, Seed: 21})
	if r.Counts.Hits[sdc.SDC1] == 0 {
		t.Error("no SDC-1 from 200 systolic faults in a shallow fixed-point network")
	}
}

func TestLatchBits(t *testing.T) {
	if got := LatchBits(Params{}, numeric.Fx16RB10); got != 16*16*4*16 {
		t.Errorf("LatchBits(default, fx16) = %d", got)
	}
	comp := FITComponent(1024, 0.5)
	if comp.Bits != 1024 || comp.SDCProb != 0.5 || comp.Name == "" {
		t.Errorf("FITComponent drifted: %+v", comp)
	}
}
