// Campaign adapter: the dataflow-parameterized array as an engine.Surface.
// The shared engine owns shard fan-out, stratified pilot→Neyman phase
// sequencing, allocation tables and the canonical merge association; this
// file supplies the per-injection execution and the report algebra.
//
// Injection draws live in site space — (MAC layer, latch, chain step,
// output column, stream position, bit) — the image of the uniform
// physical-address distribution restricted to occupied sites, which
// Geometry.Encode maps back to physical coordinates bijectively. The
// campaign path does not run the cycle-level simulator per injection;
// it expands each fault into its per-MAC effects (one for the local
// latches, a downstream or stream-suffix set for the moving-operand
// latches) and replays only the corrupted accumulation chains, which the
// package's tests prove bit-identical to Sim.Run.
package systolic

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/fit"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Report aggregates a systolic-array fault campaign.
type Report struct {
	Counts sdc.Counts
	// PerLatch breaks Counts down by the struck latch class, in Latch
	// order: weight, act-reg, psum-reg, pipeline-reg.
	PerLatch [NumLatches]sdc.Counts
	// Detection tallies the optional symptom detector.
	Detection engine.Detection
	// ArchMasked counts pipeline-register faults whose corrupted east
	// output left the array unconsumed (fault at a column tile's east
	// edge) — architecturally masked with no MAC touched. Still tallied
	// in Counts (and Strata) as masked outcomes.
	ArchMasked int `json:",omitempty"`
	// PreMasked counts injections the bit-plane site mode's analytical
	// pre-screen proved masked without any replay (psum-reg sites whose
	// accumulator perturbation provably dies in the next ReLU's clamp
	// domain). Zero outside EvalSiteBitPlane.
	PreMasked int `json:",omitempty"`
	// Strata carries the per-(MAC layer, bit) tallies and population
	// weights of a stratified campaign; nil for uniform campaigns.
	Strata *engine.StrataSummary `json:",omitempty"`
}

// Merge folds r2 into r. Every field merges commutatively; distributed
// campaigns merge shard reports in shard order anyway, mirroring the
// other surfaces' contract.
func (r *Report) Merge(r2 *Report) {
	r.Counts.Merge(r2.Counts)
	for l := range r.PerLatch {
		r.PerLatch[l].Merge(r2.PerLatch[l])
	}
	r.Detection.Merge(r2.Detection)
	r.ArchMasked += r2.ArchMasked
	r.PreMasked += r2.PreMasked
	if r2.Strata != nil {
		if r.Strata == nil {
			r.Strata = r2.Strata.Clone()
		} else {
			r.Strata.Merge(r2.Strata)
		}
	}
}

// SDCEstimate returns the campaign's estimate of the uniform-design SDC
// probability for criterion k with its 95% CI half-width — reweighted
// when the campaign stratified, the raw pooled proportion otherwise.
func (r *Report) SDCEstimate(k sdc.Kind) (p, ci95 float64) {
	if r.Strata != nil {
		e := r.Strata.Estimate(k)
		return e.P(), e.CI95()
	}
	pr := stats.Proportion{Successes: r.Counts.Hits[k], Trials: r.Counts.DefinedTrials[k]}
	return pr.P(), pr.CI95()
}

// MergeReports folds per-shard reports — indexed and merged in shard
// order — into one campaign report. Nil entries (skipped shards) are
// ignored; the result is nil when every entry is nil.
func MergeReports(rs []*Report) *Report {
	var total *Report
	for _, r := range rs {
		if r == nil {
			continue
		}
		if total == nil {
			total = &Report{}
		}
		total.Merge(r)
	}
	return total
}

// Options configures a systolic-array campaign.
type Options struct {
	// N is the number of injections.
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Workers caps parallelism; NumCPU when zero.
	Workers int
	// Detector, when non-nil, is evaluated on every faulty execution for
	// the precision/recall tally. It must be safe for concurrent use.
	Detector func(*network.Execution) bool
	// Sampling selects uniform (default) or the two-phase stratified
	// campaign of the shared engine; strata are keyed by (MAC layer,
	// flipped base bit).
	Sampling engine.SamplingMode
	// PilotN is the stratified pilot budget; engine.DefaultPilotN(N) when
	// zero, negative for a pilot-free prior-allocated campaign (Prior).
	PilotN int
	// Prior, when non-nil, seeds a stratified campaign's Neyman
	// allocation from a previous campaign's persisted strata.
	Prior *engine.StrataSummary
	// OnPilotStrata, when non-nil, observes the merged pilot strata of a
	// stratified Run right after the allocation table is built.
	OnPilotStrata func(*engine.StrataSummary)
	// Eval selects the evaluation design: per-bit (default, one
	// independent site+bit draw per injection), or the site-draw modes
	// that evaluate every bit of one site per DType.Width() injections.
	// EvalSiteScalar and EvalSiteBitPlane share one PRNG stream and
	// produce bit-identical reports; the bit-plane mode evaluates the
	// single-MAC latches (act-reg, psum-reg) through one bit-parallel
	// chain replay, psum-reg behind the analytical ReLU pre-screen.
	Eval engine.EvalMode
	// MBU is the multi-bit-upset width: every injection flips MBU
	// adjacent bits of the struck latch. 0 and 1 both mean single-bit
	// upsets. Requires the per-bit evaluation mode; the base bit is drawn
	// uniformly over the Width()−MBU+1 in-word spans.
	MBU int
}

// mbu resolves the upset width (≥ 1).
func (opt Options) mbu() int {
	if opt.MBU <= 1 {
		return 1
	}
	return opt.MBU
}

// engineOptions maps the surface options onto the shared engine's
// orchestration options; width is the campaign word width, which becomes
// the draw-unit size of the site-draw evaluation modes.
func (opt Options) engineOptions(width int) engine.Options {
	if opt.MBU > width {
		panic(fmt.Sprintf("systolic: MBU width %d exceeds the %d-bit word", opt.MBU, width))
	}
	eo := engine.Options{
		N: opt.N, Workers: opt.Workers,
		Sampling: opt.Sampling, PilotN: opt.PilotN,
		Prior: opt.Prior, OnPilot: opt.OnPilotStrata,
	}
	switch opt.Eval {
	case engine.EvalPerBit:
	case engine.EvalSiteScalar, engine.EvalSiteBitPlane:
		if opt.mbu() > 1 {
			panic("systolic: MBU campaigns require the per-bit evaluation mode")
		}
		eo.SiteBits = width
	default:
		panic(fmt.Sprintf("systolic: unknown eval mode %q", opt.Eval))
	}
	return eo
}

// Campaign injects systolic-array faults into a network. Build must
// return a fresh network instance per worker.
type Campaign struct {
	// Build constructs the network; it must be deterministic.
	Build func() *network.Network
	// DType is the datapath word format.
	DType numeric.Type
	// Inputs are the inference inputs to cycle through.
	Inputs []*tensor.Tensor
	// Array is the physical PE array size; DefaultParams when zero.
	Array Params
	// Flow is the array's dataflow; the zero value is weight-stationary.
	Flow Dataflow
	// Residency, when non-nil, gives per-MAC-layer probabilities for
	// where a random-in-time upset lands. When nil, layers are weighted
	// by MAC count (proportional to their array occupancy time).
	Residency []float64
}

// surface adapts the campaign to the shared engine's Surface interface.
type surface struct {
	c   *Campaign
	opt Options
}

func (s surface) NewReport() *Report                     { return &Report{} }
func (s surface) Merge(dst, src *Report)                 { dst.Merge(src) }
func (s surface) Strata(r *Report) *engine.StrataSummary { return r.Strata }
func (s surface) RunPhase(shard, of int, ph engine.Phase) *Report {
	return s.c.runShardPhase(shard, of, s.opt, ph)
}

// Surface exposes the campaign's engine adapter and the engine options it
// runs under, for the cross-surface conformance suite
// (engine.CheckSurface).
func (c *Campaign) Surface(opt Options) (engine.Surface[*Report], engine.Options) {
	c.validate()
	return surface{c, opt}, opt.engineOptions(c.DType.Width())
}

// Run injects opt.N faults and tallies SDC outcomes. It is exactly the
// shard-order merge of RunShard(s, S, opt) for s in [0, S) with
// S = engine.EffectiveShards(opt.Workers, opt.N), with the shards running
// on goroutines — the reference a distributed run of the same S shards is
// bit-identical to.
func (c *Campaign) Run(opt Options) *Report {
	c.validate()
	return engine.Run[*Report](surface{c, opt}, opt.engineOptions(c.DType.Width()))
}

// RunShard runs one shard of an of-way deterministic partition of the
// campaign, serially, and returns its partial report — the same
// strided-partition contract as the other surfaces: shard s covers
// injections s, s+of, s+2·of, … from a PRNG stream seeded by (opt.Seed,
// s), so the shard-order merge (MergeReports) is bit-identical to Run
// with Workers=of.
func (c *Campaign) RunShard(shard, of int, opt Options) *Report {
	c.validate()
	return engine.RunShard[*Report](surface{c, opt}, shard, of, opt.engineOptions(c.DType.Width()))
}

// PilotShard runs one shard of a stratified campaign's uniform pilot
// phase (see engine.PilotShard).
func (c *Campaign) PilotShard(shard, of int, opt Options) *Report {
	c.validate()
	return engine.PilotShard[*Report](surface{c, opt}, shard, of, opt.engineOptions(c.DType.Width()))
}

// MainShard runs one shard of a stratified campaign's allocated main
// phase (see engine.MainShard).
func (c *Campaign) MainShard(shard, of int, table *engine.StratumTable, opt Options) *Report {
	c.validate()
	return engine.MainShard[*Report](surface{c, opt}, shard, of, table, opt.engineOptions(c.DType.Width()))
}

// validate fails fast on a malformed campaign before any shard runs.
func (c *Campaign) validate() {
	if len(c.Inputs) == 0 {
		panic("systolic: campaign needs at least one input")
	}
	if c.Flow < 0 || c.Flow >= NumDataflows {
		panic(fmt.Sprintf("systolic: unknown dataflow %d", int(c.Flow)))
	}
	newInjector(c.Build(), c.DType, c.Array, c.Flow, c.Residency)
}

// seedMul separates the per-shard PRNG streams of this surface from the
// other surfaces' streams under equal campaign seeds.
const seedMul = 3_141_593

// runShardPhase executes one phase of one shard — the per-injection
// execution the engine's orchestration calls back into, serially, on a
// private network instance with a private PRNG stream.
func (c *Campaign) runShardPhase(shard, of int, opt Options, ph engine.Phase) *Report {
	if ph.SiteBits > 0 {
		return c.runShardPhaseSites(shard, of, opt, ph)
	}
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*seedMul + ph.SeedSalt))
	net := c.Build()
	net.EnableQuantCache()
	goldens := make(map[int]*network.Execution)
	golden := func(i int) *network.Execution {
		g, ok := goldens[i]
		if !ok {
			g = net.Forward(c.DType, c.Inputs[i])
			goldens[i] = g
		}
		return g
	}

	inj := newInjector(net, c.DType, c.Array, c.Flow, c.Residency)
	width := c.DType.Width()
	mbu := opt.mbu()
	r := &Report{}
	if ph.Strata {
		r.Strata = engine.NewStrata(len(inj.macLayers), width, inj.stratumWeights(width, mbu), false)
	}
	for i := shard; i < ph.N; i += of {
		g := golden((ph.InputBase + i) % len(c.Inputs))
		pos, bit := -1, -1
		if ph.Table != nil {
			pos, bit = ph.Table.Stratum(i)
		}
		faulty, s, pos := inj.inject(rng, g, pos, bit, mbu)
		outcome := sdc.Classify(net, g, faulty)
		r.Counts.Add(outcome)
		r.PerLatch[s.Latch].Add(outcome)
		if faulty.Masked && inj.geos[pos].PipeMasked(s) {
			r.ArchMasked++
		}
		if r.Strata != nil {
			r.Strata.Counts[pos*width+s.Bit].Add(outcome)
		}
		if opt.Detector != nil {
			r.Detection.Tally(outcome.Hit[sdc.SDC1], opt.Detector(faulty))
		}
	}
	return r
}

// injector holds the per-worker geometry for fault placement.
type injector struct {
	net *network.Network
	dt  numeric.Type
	// macLayers are the CONV/FC layer indices; geos their array
	// schedules; cum the cumulative residency weights selecting where a
	// random-in-time upset lands.
	macLayers []int
	geos      []Geometry
	cum       []float64
}

func newInjector(net *network.Network, dt numeric.Type, par Params, flow Dataflow, residency []float64) *injector {
	inj := &injector{net: net, dt: dt}
	var weights []float64
	shape := net.InShape
	for i, l := range net.Layers {
		if geo, ok := LayerGeometry(l, shape, par, flow); ok {
			inj.macLayers = append(inj.macLayers, i)
			inj.geos = append(inj.geos, geo)
			weights = append(weights, float64(l.MACs(shape)))
		}
		shape = l.OutShape(shape)
	}
	if len(inj.macLayers) == 0 {
		panic("systolic: network has no MAC layers")
	}
	if residency != nil {
		if len(residency) != len(inj.macLayers) {
			panic(fmt.Sprintf("systolic: %d residency weights for %d MAC layers",
				len(residency), len(inj.macLayers)))
		}
		weights = residency
	}
	total := 0.0
	inj.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			panic("systolic: negative residency weight")
		}
		total += w
		inj.cum[i] = total
	}
	if total <= 0 {
		panic("systolic: residency weights sum to zero")
	}
	for i := range inj.cum {
		inj.cum[i] /= total
	}
	return inj
}

// pickLayerPos draws a MAC-layer position by residency weight.
func (inj *injector) pickLayerPos(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range inj.cum {
		if u < c {
			return i
		}
	}
	return len(inj.macLayers) - 1
}

// layerProb returns the residency probability of MAC-layer position i.
func (inj *injector) layerProb(i int) float64 {
	if i == 0 {
		return inj.cum[0]
	}
	return inj.cum[i] - inj.cum[i-1]
}

// stratumWeights returns the (MAC layer, base bit) population
// probabilities of the uniform injection design. Under an MBU of width m
// the base bit is uniform over the word's width−m+1 in-word spans, so the
// top m−1 base-bit strata carry zero weight and are never allocated
// injections.
func (inj *injector) stratumWeights(width, mbu int) engine.HexFloats {
	validBits := width - mbu + 1
	w := make(engine.HexFloats, len(inj.macLayers)*width)
	for i := range inj.macLayers {
		wl := inj.layerProb(i) / float64(validBits)
		for bit := 0; bit < validBits; bit++ {
			w[i*width+bit] = wl
		}
	}
	return w
}

// drawBit resolves the flipped base bit: forced when bit >= 0 (stratified
// main phase, no randomness consumed), drawn uniformly over the in-word
// spans otherwise.
func (inj *injector) drawBit(rng *rand.Rand, bit, mbu int) int {
	if bit >= 0 {
		return bit
	}
	return rng.Intn(inj.dt.Width() - mbu + 1)
}

// inject draws one injection — pos and bit force the stratum of a
// stratified main phase (negative to draw uniformly) — executes it and
// returns the faulty execution, the drawn site and the MAC-layer
// position. Draw order per injection: layer position (one float, skipped
// when forced), latch, chain step, output column, stream position, base
// bit (skipped when forced).
func (inj *injector) inject(rng *rand.Rand, g *network.Execution, pos, bit, mbu int) (*network.Execution, Site, int) {
	if pos < 0 {
		pos = inj.pickLayerPos(rng)
	}
	geo := inj.geos[pos]
	s := Site{
		Latch: Latch(rng.Intn(int(NumLatches))),
		K:     rng.Intn(geo.K),
		Out:   rng.Intn(geo.Outs),
		P:     rng.Intn(geo.P),
		Width: mbu,
	}
	s.Bit = inj.drawBit(rng, bit, mbu)
	return inj.execute(g, pos, s), s, pos
}

// faultOp is the per-MAC effect kind a latch fault expands into.
type faultOp int

const (
	// opWeight flips the weight operand of chain step K.
	opWeight faultOp = iota
	// opAct flips the activation operand of chain step K.
	opAct
	// opAccum flips the accumulator after chain step K's MAC.
	opAccum
)

// target maps the effect kind onto the layers package's latch target.
func (op faultOp) target() layers.Target {
	switch op {
	case opWeight:
		return layers.TargetWeight
	case opAct:
		return layers.TargetInput
	case opAccum:
		return layers.TargetAccum
	}
	panic("systolic: unknown fault op")
}

// execute expands a site into its per-MAC effects under the geometry's
// dataflow (Geometry.effects — the corruption-front table in
// dataflow.go, proven bit-identical to the cycle-level simulator by the
// package's tests) and runs the faulty inference.
func (inj *injector) execute(g *network.Execution, pos int, s Site) *network.Execution {
	li := inj.macLayers[pos]
	geo := inj.geos[pos]
	op, elems := geo.effects(s)
	return inj.apply(g, li, geo, s, op, elems)
}

// apply runs the faulty inference for an effect set. The empty set is the
// architecturally masked pipeline fault: the execution aliases golden
// with Masked set, exactly what a masked incremental forward returns. A
// single-MAC single-bit effect takes the network's incremental
// fault-injection path; everything else replays each corrupted chain and
// forwards from the patched activation.
func (inj *injector) apply(g *network.Execution, li int, geo Geometry, s Site, op faultOp, elems []int) *network.Execution {
	if len(elems) == 0 {
		return &network.Execution{Input: g.Input, Acts: g.Acts, Masked: true}
	}
	if len(elems) == 1 && s.Width == 1 {
		f := &layers.Fault{OutputIndex: elems[0], MACStep: s.K, Target: op.target(), Bit: s.Bit}
		return inj.net.ForwardFrom(inj.dt, g, li, f)
	}
	in := layerInput(g, li)
	act := g.Acts[li].Clone()
	for _, oi := range elems {
		act.Data[oi] = inj.chainEval(li, in, oi, s, op)
	}
	return inj.net.ForwardWithAct(inj.dt, g, li, act)
}

// layerInput returns the golden input tensor of a layer.
func layerInput(g *network.Execution, layerIdx int) *tensor.Tensor {
	if layerIdx == 0 {
		return g.Input
	}
	return g.Acts[layerIdx-1]
}

// chainEval recomputes one output element's accumulation chain with the
// site's flip applied at step s.K — bit-identical to the layers package's
// ForwardElement with the corresponding Fault for Width 1 (quantization
// is idempotent, so flipping the pre-quantized operand equals macFaulty's
// flip-then-multiply), and the MBU generalization for Width > 1.
func (inj *injector) chainEval(li int, in *tensor.Tensor, oi int, s Site, op faultOp) float64 {
	dt := inj.dt
	quant, mac := dt.QuantFunc(), dt.MACFunc()
	step := func(acc, w, x float64, k int) float64 {
		if k == s.K {
			switch op {
			case opWeight:
				w = flipBits(dt, w, s.Bit, s.Width)
			case opAct:
				x = flipBits(dt, x, s.Bit, s.Width)
			}
		}
		acc = mac(acc, w, x)
		if op == opAccum && k == s.K {
			acc = flipBits(dt, acc, s.Bit, s.Width)
		}
		return acc
	}
	switch l := inj.net.Layers[li].(type) {
	case *layers.ConvLayer:
		os := l.OutShape(in.Shape)
		plane := os.H * os.W
		khkw := l.KH * l.KW
		oc, oh, ow := oi/plane, (oi%plane)/os.W, oi%os.W
		acc := quant(l.Bias[oc])
		for k := 0; k < l.MACChainLen(); k++ {
			ic, kh, kw := k/khkw, (k/l.KW)%l.KH, k%l.KW
			ih, iw := oh*l.Stride+kh-l.Pad, ow*l.Stride+kw-l.Pad
			var x float64
			if ih >= 0 && ih < in.Shape.H && iw >= 0 && iw < in.Shape.W {
				x = quant(in.At(ic, ih, iw))
			}
			acc = step(acc, quant(l.Weights[l.WeightIndex(oc, ic, kh, kw)]), x, k)
		}
		return acc
	case *layers.FCLayer:
		acc := quant(l.Bias[oi])
		for k := 0; k < l.In; k++ {
			acc = step(acc, quant(l.Weights[oi*l.In+k]), quant(in.Data[k]), k)
		}
		return acc
	}
	panic("systolic: faulted layer is not a MAC layer")
}

// LatchBits returns the exposed latch-bit count of the array under a
// format — NumLatches registers per PE at the word width, the S_component
// term of the paper's Eq. 1 for this surface.
func LatchBits(par Params, dt numeric.Type) int64 {
	par = par.withDefaults()
	return int64(par.Rows) * int64(par.Cols) * int64(NumLatches) * int64(dt.Width())
}

// FITComponent assembles the Eq. 1 term for the array's latch plane.
func FITComponent(bits int64, sdcProb float64) fit.Component {
	return fit.Component{Name: "systolic array", Bits: bits, SDCProb: sdcProb}
}
