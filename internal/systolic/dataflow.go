// Dataflow strategies. The array model is parameterized by which operand
// stays resident in the PEs: the three classic stationary dataflows share
// one logical coordinate system — chain step K, output column Out, stream
// position P — and one physical addressing scheme (pass, cycle, PE row,
// PE col, latch, bit). A dataflow chooses the mapping between the two:
// which logical axes tile onto the physical row/column axes, which axis
// streams through time, and therefore which latches hold resident
// (persistent) versus moving (single-read or forwarded) operands. The
// per-latch corruption fronts below are everything the campaign path,
// the cycle-level simulator and the analytical pre-screen need; all other
// machinery (site sampling, stratification, MBU spans, shard merge) is
// dataflow-independent.
//
//	dataflow  resident  rows↔  cols↔  time↔  east-flowing  south-flowing
//	weight    weight    K      Out    P      activation    partial sum
//	output    psum      P      Out    K      activation    weight
//	input     act       K      P      Out    weight        partial sum
//
// Per-latch corruption fronts (effects on the logical MAC grid):
//
//	latch   weight-stationary        output-stationary       input-stationary
//	weight  resident: step K of      one read: step K of     one read: step K of
//	        (Out, p′) ∀ p′ ≥ P       (Out, P)                (Out, P)
//	act     one read: step K of      one read: step K of     resident: step K of
//	        (Out, P)                 (Out, P)                (o′, P) ∀ o′ ≥ Out
//	psum    one flip after step K    one flip after step K   one flip after step K
//	        of (Out, P)              of (Out, P) — resident, of (Out, P)
//	                                 persists by accumulation
//	pipe    east-forwarded act:      east-forwarded act:     east-forwarded weight:
//	        step K of (o′, P) for    step K of (o′, P) for   step K of (Out, p′) for
//	        o′ east in column tile   o′ east in column tile  p′ east in column tile
//
// A pipe fault whose PE sits at its column tile's east edge leaves the
// array unconsumed in every dataflow — architecturally masked.
package systolic

import (
	"fmt"

	"repro/internal/layers"
)

// Dataflow selects which operand stays resident in the PEs. The zero
// value is the weight-stationary dataflow.
type Dataflow int

const (
	// WeightStationary holds weights resident: activations flow east,
	// partial sums flow south (TPU-style).
	WeightStationary Dataflow = iota
	// OutputStationary holds partial sums resident: activations flow
	// east, weights flow south; each pass completes its outputs.
	OutputStationary
	// InputStationary holds activations resident: weights flow east,
	// partial sums flow south.
	InputStationary

	// NumDataflows is the number of dataflow strategies.
	NumDataflows
)

// String names the dataflow (the campaign.Spec wire names).
func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "weight"
	case OutputStationary:
		return "output"
	case InputStationary:
		return "input"
	}
	return fmt.Sprintf("systolic.Dataflow(%d)", int(d))
}

// DataflowNames lists the accepted dataflow spec names.
var DataflowNames = []string{"weight", "output", "input"}

// ParseDataflow resolves a spec name to its dataflow; the empty name is
// the weight-stationary default.
func ParseDataflow(name string) (Dataflow, error) {
	switch name {
	case "", "weight":
		return WeightStationary, nil
	case "output":
		return OutputStationary, nil
	case "input":
		return InputStationary, nil
	}
	return 0, fmt.Errorf("systolic: unknown dataflow %q (want weight, output or input)", name)
}

// axes returns the logical extents mapped onto the physical row, column
// and time axes under the geometry's dataflow.
func (g Geometry) axes() (rowExt, colExt, timeExt int) {
	switch g.Flow {
	case OutputStationary:
		return g.P, g.Outs, g.K
	case InputStationary:
		return g.K, g.P, g.Outs
	}
	return g.K, g.Outs, g.P
}

// physical maps a site's logical coordinates onto the (row-axis,
// column-axis, time-axis) values of the dataflow.
func (g Geometry) physical(s Site) (rv, cv, tv int) {
	switch g.Flow {
	case OutputStationary:
		return s.P, s.Out, s.K
	case InputStationary:
		return s.K, s.P, s.Out
	}
	return s.K, s.Out, s.P
}

// logical is the inverse of physical.
func (g Geometry) logical(rv, cv, tv int) (k, o, p int) {
	switch g.Flow {
	case OutputStationary:
		return tv, cv, rv
	case InputStationary:
		return rv, tv, cv
	}
	return rv, cv, tv
}

// colCoord returns the logical value living on the column axis — the
// coordinate the east-forwarding pipe register walks across.
func (g Geometry) colCoord(s Site) int {
	if g.Flow == InputStationary {
		return s.P
	}
	return s.Out
}

// PipeMasked reports whether a pipeline-register site is architecturally
// masked: its PE sits at the east edge of its column tile, so the
// corrupted forwarded operand leaves the array unconsumed.
func (g Geometry) PipeMasked(s Site) bool {
	if s.Latch != LatchPipe {
		return false
	}
	cv := g.colCoord(s)
	return g.ColTileEnd(cv) == cv+1
}

// effects expands a site into its per-MAC corruption front under the
// geometry's dataflow: the effect kind and the faulted output elements
// (flat (Out, P) indices, each corrupted at chain step K). An empty set
// is the architecturally masked pipe fault at a tile's east edge.
func (g Geometry) effects(s Site) (op faultOp, elems []int) {
	one := []int{s.Out*g.P + s.P}
	switch s.Latch {
	case LatchAct:
		if g.Flow == InputStationary {
			// Resident operand: corrupted for the rest of the pass — every
			// remaining time step (output column) that reads it.
			elems = make([]int, 0, g.Outs-s.Out)
			for o := s.Out; o < g.Outs; o++ {
				elems = append(elems, o*g.P+s.P)
			}
			return opAct, elems
		}
		return opAct, one
	case LatchPsum:
		// South-flowing (weight/input-stationary) or resident
		// (output-stationary): either way one accumulator-word flip after
		// step K, carried forward by the remaining accumulation.
		return opAccum, one
	case LatchWeight:
		if g.Flow == WeightStationary {
			// Resident operand: corrupted reads for the rest of the pass.
			elems = make([]int, 0, g.P-s.P)
			for p := s.P; p < g.P; p++ {
				elems = append(elems, s.Out*g.P+p)
			}
			return opWeight, elems
		}
		return opWeight, one
	case LatchPipe:
		// East-forwarding register: the corrupted moving operand is
		// consumed by every occupied PE east of the fault in its column
		// tile. What moves east — and so which operand the downstream MACs
		// see corrupted — is the dataflow's moving operand.
		cv := g.colCoord(s)
		end := g.ColTileEnd(cv)
		elems = make([]int, 0, end-cv-1)
		if g.Flow == InputStationary {
			for p := s.P + 1; p < end; p++ {
				elems = append(elems, s.Out*g.P+p)
			}
			return opWeight, elems
		}
		for o := s.Out + 1; o < end; o++ {
			elems = append(elems, o*g.P+s.P)
		}
		return opAct, elems
	}
	panic("systolic: unknown latch")
}

// planeTarget reports whether a latch is a single-MAC upset under the
// geometry's dataflow — exactly one corrupted read or accumulator word —
// and maps it onto the layers package's latch target for the
// bit-parallel plane replay. Multi-MAC (resident or forwarded) latches
// return ok false and replay through the effect expansion per bit.
func (g Geometry) planeTarget(l Latch) (t layers.Target, ok bool) {
	switch l {
	case LatchAct:
		if g.Flow == InputStationary {
			return 0, false
		}
		return layers.TargetInput, true
	case LatchPsum:
		return layers.TargetAccum, true
	case LatchWeight:
		if g.Flow == WeightStationary {
			return 0, false
		}
		return layers.TargetWeight, true
	}
	return 0, false
}

// abstract translates a single-bit site into the layers package's
// per-MAC descriptor when it corrupts exactly one MAC: the dataflow's
// single-read latches always, its resident latch when struck at the last
// time step (one remaining read), and a pipe fault with exactly one
// downstream consumer. ok is false for multi-MAC or architecturally
// masked sites.
func (g Geometry) abstract(s Site) (f layers.Fault, ok bool) {
	oi := s.Out*g.P + s.P
	switch s.Latch {
	case LatchPsum:
		return layers.Fault{OutputIndex: oi, MACStep: s.K, Target: layers.TargetAccum, Bit: s.Bit}, true
	case LatchAct:
		if g.Flow != InputStationary || s.Out == g.Outs-1 {
			return layers.Fault{OutputIndex: oi, MACStep: s.K, Target: layers.TargetInput, Bit: s.Bit}, true
		}
	case LatchWeight:
		if g.Flow != WeightStationary || s.P == g.P-1 {
			return layers.Fault{OutputIndex: oi, MACStep: s.K, Target: layers.TargetWeight, Bit: s.Bit}, true
		}
	case LatchPipe:
		cv := g.colCoord(s)
		if g.ColTileEnd(cv) == cv+2 {
			if g.Flow == InputStationary {
				return layers.Fault{OutputIndex: s.Out*g.P + s.P + 1, MACStep: s.K, Target: layers.TargetWeight, Bit: s.Bit}, true
			}
			return layers.Fault{OutputIndex: (s.Out+1)*g.P + s.P, MACStep: s.K, Target: layers.TargetInput, Bit: s.Bit}, true
		}
	}
	return layers.Fault{}, false
}
