// Site-draw evaluation for systolic campaigns: instead of drawing an
// independent (site, bit) pair per injection, a site-mode campaign draws
// one array site per DType.Width() injections and evaluates every bit
// position of the struck latch word. The dataflow's resident latch and
// the pipeline register corrupt many MACs, so every bit replays through
// the campaign's usual effect expansion and the two site modes run
// literally the same code. The dataflow's single-read latches
// (Geometry.planeTarget — act-reg and psum-reg under weight-stationary,
// plus or minus the weight/act registers under the other dataflows) are
// single-MAC upsets — the datapath case — so EvalSiteBitPlane evaluates
// all bits of such a site in one bit-parallel chain replay
// (layers.PlaneForwarder), psum-reg behind the analytical ReLU
// sign-domain pre-screen, while EvalSiteScalar replays the chain once
// per bit as the bit-identity oracle.
package systolic

import (
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/sdc"
)

// runShardPhaseSites is runShardPhase for the site-draw evaluation modes:
// the phase's N injections are covered by engine.DrawUnits(N, SiteBits)
// site draws, the shard strides over draw units, and each unit expands
// into nbits injections tallied in ascending bit order. Site draws
// consume the unit's PRNG values once — per-bit evaluation is
// deterministic — so the scalar and bit-plane modes share one draw
// sequence.
func (c *Campaign) runShardPhaseSites(shard, of int, opt Options, ph engine.Phase) *Report {
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*seedMul + ph.SeedSalt))
	net := c.Build()
	net.EnableQuantCache()
	goldens := make(map[int]*network.Execution)
	golden := func(i int) *network.Execution {
		g, ok := goldens[i]
		if !ok {
			g = net.Forward(c.DType, c.Inputs[i])
			goldens[i] = g
		}
		return g
	}

	inj := newInjector(net, c.DType, c.Array, c.Flow, c.Residency)
	width := c.DType.Width()
	r := &Report{}
	if ph.Strata {
		r.Strata = engine.NewStrata(len(inj.macLayers), width, inj.stratumWeights(width, 1), false)
	}
	units := engine.DrawUnits(ph.N, ph.SiteBits)
	for u := shard; u < units; u += of {
		nbits := ph.SiteBits
		if rem := ph.N - u*ph.SiteBits; rem < nbits {
			nbits = rem
		}
		g := golden((ph.InputBase + u) % len(c.Inputs))
		pos := -1
		if ph.Table != nil {
			pos, _ = ph.Table.Stratum(u)
		}
		c.runSiteUnit(rng, inj, opt, g, pos, nbits, r)
	}
	return r
}

// tallySite folds one injection outcome of a site unit into the report —
// the same tally sequence as the per-bit path. faulty is nil only for
// analytically pre-screened injections, which exist only when no detector
// is configured.
func (c *Campaign) tallySite(r *Report, opt Options, pos int, s Site, bit int, outcome sdc.Outcome, faulty *network.Execution) {
	r.Counts.Add(outcome)
	r.PerLatch[s.Latch].Add(outcome)
	if r.Strata != nil {
		r.Strata.Counts[pos*c.DType.Width()+bit].Add(outcome)
	}
	if opt.Detector != nil {
		r.Detection.Tally(outcome.Hit[sdc.SDC1], opt.Detector(faulty))
	}
}

// runSiteUnit draws one array site (without a bit) and evaluates every
// bit position of the struck latch word. pos forces the MAC-layer stratum
// (the main phase of a stratified campaign); pos < 0 draws it exactly as
// the uniform per-bit model does. The site draw consumes the PRNG in the
// per-bit model's order minus the trailing bit draw: layer position,
// latch, chain step, output column, stream position.
func (c *Campaign) runSiteUnit(rng *rand.Rand, inj *injector, opt Options, g *network.Execution, pos, nbits int, r *Report) {
	if pos < 0 {
		pos = inj.pickLayerPos(rng)
	}
	geo := inj.geos[pos]
	s := Site{
		Latch: Latch(rng.Intn(int(NumLatches))),
		K:     rng.Intn(geo.K),
		Out:   rng.Intn(geo.Outs),
		P:     rng.Intn(geo.P),
		Width: 1,
	}

	if opt.Eval == engine.EvalSiteBitPlane {
		if target, ok := geo.planeTarget(s.Latch); ok {
			c.runPlaneSite(inj, opt, g, pos, s, target, nbits, r)
			return
		}
	}

	// Multi-MAC latches (and the scalar oracle mode): replay the effect
	// expansion once per bit.
	archMasked := geo.PipeMasked(s)
	for bit := 0; bit < nbits; bit++ {
		s.Bit = bit
		faulty := inj.execute(g, pos, s)
		if archMasked {
			r.ArchMasked++
		}
		c.tallySite(r, opt, pos, s, bit, sdc.Classify(inj.net, g, faulty), faulty)
	}
}

// runPlaneSite evaluates every bit of one single-MAC site — an operand
// or accumulator flip at one (output, stream position, chain step),
// whichever latches the dataflow makes single-read (Geometry.planeTarget)
// — through one bit-parallel chain replay, then propagates each
// surviving bit through the shared sparse path. Psum-reg sites
// additionally run the analytical ReLU sign-domain pre-screen: a bit-b
// accumulator flip perturbs the chain output by at most
// 2^(bit−FractionBits) (fixed-point accumulation is exact-then-saturate
// and saturation is 1-Lipschitz), so when golden plus that bound is ≤ 0
// both outputs fall in the next ReLU's clamp domain and the fault
// provably dies. Operand flips perturb a product, not the accumulator,
// so no such bound applies and every bit is replayed.
func (c *Campaign) runPlaneSite(inj *injector, opt Options, g *network.Execution, pos int, s Site, target layers.Target, nbits int, r *Report) {
	net := inj.net
	dt := c.DType
	li := inj.macLayers[pos]
	geo := inj.geos[pos]
	oi := s.Out*geo.P + s.P

	batch := net.NewInjectionBatch(dt, g, li, nbits)
	gv := g.Acts[li].Data[oi]
	// maskedOut is the classification every masked injection shares: a
	// masked faulty execution's downstream tensors alias golden, so
	// classifying golden against itself is the same pure computation.
	maskedOut := sdc.Classify(net, g, g)

	// ReLU sign-domain pre-screen (psum-reg, fixed point only; detector
	// campaigns need the real execution, so they skip it).
	var rk uint64
	if s.Latch == LatchPsum && opt.Detector == nil && !dt.IsFloat() &&
		li+1 < len(net.Layers) && net.Layers[li+1].Kind() == layers.ReLU {
		for bit := 0; bit < nbits; bit++ {
			if gv+dt.FxFlipMagnitude(bit) <= 0 {
				rk |= uint64(1) << uint(bit)
			}
		}
	}

	full := ^uint64(0)
	if nbits < 64 {
		full = uint64(1)<<uint(nbits) - 1
	}
	live := full &^ rk
	var vals [64]float64
	if live != 0 {
		pf := layers.PlaneFault{OutputIndex: oi, MACStep: s.K, Target: target, Bits: live}
		if gg := batch.ForwardPlane(&pf, &vals); math.Float64bits(gg) != math.Float64bits(gv) {
			panic("systolic: plane replay diverged from the golden execution")
		}
	}

	for bit := 0; bit < nbits; bit++ {
		s.Bit = bit
		if rk&(uint64(1)<<uint(bit)) != 0 {
			r.PreMasked++
			c.tallySite(r, opt, pos, s, bit, maskedOut, nil)
			continue
		}
		fv := vals[bit]
		if opt.Detector != nil {
			faulty := batch.Propagate(oi, fv)
			c.tallySite(r, opt, pos, s, bit, sdc.Classify(net, g, faulty), faulty)
			continue
		}
		exec, masked := batch.PropagateShared(oi, fv)
		outcome := maskedOut
		if !masked {
			outcome = sdc.Classify(net, g, exec)
		}
		c.tallySite(r, opt, pos, s, bit, outcome, exec)
	}
}
