// Package systolic is the repo's third fault-injection surface: a
// weight-stationary systolic array in the style of the TPU, the
// architecture most deployed inference accelerators actually use. The
// source paper measures error propagation on a row-stationary (Eyeriss)
// datapath; Jonckers et al.'s systolic-array SEU analysis shows that the
// weight-stationary dataflow changes the story qualitatively, because two
// of its four PE latches hold *moving* operands — a flipped activation or
// pipeline register corrupts every PE the operand subsequently flows
// through, and a flipped resident weight corrupts every stream position
// that reads it until the pass ends.
//
// Mapping. A CONV/FC layer is viewed as the matmul the array executes:
// array columns hold output channels (CONV) or neurons (FC), array rows
// hold accumulation-chain steps k — the (ic, kh, kw) taps of a CONV chain
// or the input index of an FC dot product, in exactly the layers package's
// chain order — and the activation stream presents spatial output
// positions p in output-row-major order. Weights stay resident in their
// PEs for a whole pass; activations flow east; partial sums flow south,
// one MAC per PE per cycle. Layers larger than the physical array are
// tiled: row tile rt and column tile ct execute as pass rt·ColTiles + ct,
// with the bias injected as the initial partial sum at the top of row
// tile 0 and cross-tile accumulation sequential in k — so the fault-free
// array output is bit-identical to layers.Forward under every numeric
// format (stronger than the row-stationary pearray model, whose psum
// reduction order differs).
//
// Skew. The operand for stream position p reaches PE (r, c) at cycle
// p + r + c of its pass — the standard diagonal wavefront. A physical
// fault address is therefore (pass, cycle, PE row, PE col, latch, bit),
// and Geometry.Resolve maps it to exactly one logical injection site or
// rejects it (idle row/column tiles, fill/drain cycles where the PE has
// no operand).
//
// Latches. Each PE carries four fault targets:
//
//	weight — the resident weight register. Stationary but persistent: a
//	         flip at stream position p corrupts the reads of positions
//	         p, p+1, …, P−1 (the register is reloaded at the next pass).
//	act    — the PE-local operand register feeding the multiplier. One
//	         corrupted read: exactly one MAC, the layers package's
//	         input-latch fault.
//	psum   — the south-flowing partial-sum register. One corrupted
//	         accumulator word after the PE's MAC: the accum-latch fault.
//	pipe   — the east-output forwarding register. The corrupted operand
//	         flows on: every occupied PE east of the fault in the same
//	         column tile consumes it at chain step k. At the tile's east
//	         edge the corrupted word leaves the array unconsumed — the
//	         fault is architecturally masked.
//
// MBU. A Width > 1 fault flips Width adjacent bits of the struck latch —
// the multi-bit-upset mode of the TWEPP'25 pipeline bit-fault analysis.
package systolic

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Params is the physical array size in PEs.
type Params struct {
	Rows, Cols int
}

// DefaultParams is the 16×16 array the campaigns default to — large
// enough that the reduced-width model layers tile it in both dimensions.
var DefaultParams = Params{Rows: 16, Cols: 16}

// withDefaults resolves zero fields to the default array.
func (p Params) withDefaults() Params {
	if p.Rows <= 0 {
		p.Rows = DefaultParams.Rows
	}
	if p.Cols <= 0 {
		p.Cols = DefaultParams.Cols
	}
	return p
}

// Latch identifies the physical latch a fault strikes inside one PE.
type Latch int

const (
	// LatchWeight is the resident (stationary) weight register.
	LatchWeight Latch = iota
	// LatchAct is the PE-local activation operand register.
	LatchAct
	// LatchPsum is the south-flowing partial-sum register.
	LatchPsum
	// LatchPipe is the east-output activation forwarding register.
	LatchPipe

	// NumLatches is the number of latch classes per PE.
	NumLatches
)

// String names the latch.
func (l Latch) String() string {
	switch l {
	case LatchWeight:
		return "weight"
	case LatchAct:
		return "act-reg"
	case LatchPsum:
		return "psum-reg"
	case LatchPipe:
		return "pipeline-reg"
	}
	return fmt.Sprintf("systolic.Latch(%d)", int(l))
}

// Fault is a physically addressed transient fault: at the given cycle of
// the given pass, bits [Bit, Bit+Width) of the Latch register of PE
// (Row, Col) are inverted. Width 0 behaves as 1 (an SEU); Width > 1 is an
// MBU flipping adjacent bits.
type Fault struct {
	Pass  int
	Cycle int
	Row   int // PE row: chain-step index within the row tile
	Col   int // PE column: output-channel index within the column tile
	Latch Latch
	Bit   int
	Width int

	// Applied records whether the simulation consumed the fault — for
	// pipeline faults, whether any downstream PE consumed the corrupted
	// operand.
	Applied bool
}

// Geometry describes the tiled schedule of one MAC layer on the array.
type Geometry struct {
	// Rows × Cols physical PEs.
	Rows, Cols int
	// K is the accumulation-chain length (rows of the logical matmul),
	// Outs the output-channel/neuron count (columns), P the stream length
	// (spatial output positions; 1 for FC).
	K, Outs, P int
	// RowTiles × ColTiles passes cover the K × Outs logical array.
	RowTiles, ColTiles int
	// Passes = RowTiles·ColTiles; pass rt·ColTiles + ct executes row tile
	// rt against column tile ct.
	Passes int
	// CyclesPerPass covers the skewed wavefront: P + Rows + Cols − 2.
	CyclesPerPass int
}

// LayerGeometry computes the schedule of a MAC layer for an input shape;
// ok is false for non-MAC layers.
func LayerGeometry(l layers.Layer, in tensor.Shape, par Params) (geo Geometry, ok bool) {
	par = par.withDefaults()
	geo = Geometry{Rows: par.Rows, Cols: par.Cols}
	switch t := l.(type) {
	case *layers.ConvLayer:
		os := t.OutShape(in)
		geo.K = t.MACChainLen()
		geo.Outs = t.OutC
		geo.P = os.H * os.W
	case *layers.FCLayer:
		geo.K = t.In
		geo.Outs = t.Out
		geo.P = 1
	default:
		return Geometry{}, false
	}
	geo.RowTiles = (geo.K + geo.Rows - 1) / geo.Rows
	geo.ColTiles = (geo.Outs + geo.Cols - 1) / geo.Cols
	geo.Passes = geo.RowTiles * geo.ColTiles
	geo.CyclesPerPass = geo.P + geo.Rows + geo.Cols - 2
	return geo, true
}

// Site is the logical injection site a physical fault resolves to: chain
// step K of the accumulation chain of output column Out at stream
// position P, striking the given latch bits.
type Site struct {
	K     int // chain step (global row index rt·Rows + PE row)
	Out   int // output channel / neuron (global column index)
	P     int // stream position (spatial output element; 0 for FC)
	Latch Latch
	Bit   int
	Width int // adjacent bits flipped (≥ 1)
}

// Resolve maps a physical fault address onto its unique logical injection
// site, or reports why the address is invalid: unknown latch, bit span
// outside the word, coordinates outside the physical array, idle rows or
// columns of a partially occupied edge tile, or fill/drain cycles where
// the addressed PE holds no operand. In-range addresses land on exactly
// one site (Encode is the inverse).
func (g Geometry) Resolve(f *Fault, width int) (Site, error) {
	if f.Latch < 0 || f.Latch >= NumLatches {
		return Site{}, fmt.Errorf("systolic: unknown latch %d", int(f.Latch))
	}
	w := f.Width
	if w == 0 {
		w = 1
	}
	if w < 0 {
		return Site{}, fmt.Errorf("systolic: negative fault width %d", f.Width)
	}
	if f.Bit < 0 || f.Bit+w > width {
		return Site{}, fmt.Errorf("systolic: bit span [%d,%d) outside %d-bit word", f.Bit, f.Bit+w, width)
	}
	if f.Pass < 0 || f.Pass >= g.Passes {
		return Site{}, fmt.Errorf("systolic: pass %d out of range [0,%d)", f.Pass, g.Passes)
	}
	if f.Row < 0 || f.Row >= g.Rows {
		return Site{}, fmt.Errorf("systolic: PE row %d out of range [0,%d)", f.Row, g.Rows)
	}
	if f.Col < 0 || f.Col >= g.Cols {
		return Site{}, fmt.Errorf("systolic: PE col %d out of range [0,%d)", f.Col, g.Cols)
	}
	rt, ct := f.Pass/g.ColTiles, f.Pass%g.ColTiles
	k := rt*g.Rows + f.Row
	if k >= g.K {
		return Site{}, fmt.Errorf("systolic: PE row %d idle in row tile %d (chain length %d)", f.Row, rt, g.K)
	}
	o := ct*g.Cols + f.Col
	if o >= g.Outs {
		return Site{}, fmt.Errorf("systolic: PE col %d idle in column tile %d (%d outputs)", f.Col, ct, g.Outs)
	}
	p := f.Cycle - f.Row - f.Col
	if p < 0 || p >= g.P {
		return Site{}, fmt.Errorf("systolic: PE (%d,%d) idle at cycle %d (stream position %d outside [0,%d))",
			f.Row, f.Col, f.Cycle, p, g.P)
	}
	return Site{K: k, Out: o, P: p, Latch: f.Latch, Bit: f.Bit, Width: w}, nil
}

// Encode is the inverse of Resolve: the unique physical address of a
// logical site.
func (g Geometry) Encode(s Site) Fault {
	rt, ct := s.K/g.Rows, s.Out/g.Cols
	row, col := s.K%g.Rows, s.Out%g.Cols
	return Fault{
		Pass:  rt*g.ColTiles + ct,
		Cycle: s.P + row + col,
		Row:   row,
		Col:   col,
		Latch: s.Latch,
		Bit:   s.Bit,
		Width: s.Width,
	}
}

// ColTileEnd returns the exclusive end of output column o's column tile —
// the first output index the tile does not hold. The PEs between o and
// the end are the downstream consumers of o's east output.
func (g Geometry) ColTileEnd(o int) int {
	end := (o/g.Cols + 1) * g.Cols
	if end > g.Outs {
		end = g.Outs
	}
	return end
}

// flipBits inverts width adjacent bits starting at bit — the SEU flip for
// width 1, the MBU flip otherwise. The caller guarantees the span lies
// inside the format word.
func flipBits(dt numeric.Type, v float64, bit, width int) float64 {
	if width <= 1 {
		return dt.FlipBit(v, bit)
	}
	mask := (uint64(1)<<uint(width) - 1) << uint(bit)
	return dt.Decode(dt.Encode(v) ^ mask)
}
