// Package systolic is the repo's third fault-injection surface: a
// dataflow-parameterized systolic array. The source paper measures error
// propagation on a row-stationary (Eyeriss) datapath; Jonckers et al.'s
// systolic-array SEU analysis shows the stationary dataflow changes the
// story qualitatively, because which PE latches hold *moving* operands —
// a flipped forwarding or stream register corrupts every PE the operand
// subsequently flows through, and a flipped resident register corrupts
// every time step that reads it until the pass ends — is a property of
// the dataflow, not the array. One cycle-level core therefore models
// weight-stationary (TPU-style, the default), output-stationary and
// input-stationary arrays; Dataflow owns operand residency, skew and the
// per-latch corruption-front geometry (see dataflow.go).
//
// Mapping. A CONV/FC layer is viewed as the matmul the array executes
// over logical coordinates (k, o, p): accumulation-chain steps k — the
// (ic, kh, kw) taps of a CONV chain or the input index of an FC dot
// product, in exactly the layers package's chain order — output channels
// or neurons o, and spatial output positions p in output-row-major
// order. The dataflow maps two of the axes onto the physical PE rows and
// columns and streams the third through time; the resident operand stays
// in its PE for a whole pass, the other two flow east and south, one MAC
// per PE per cycle. Layers larger than the physical array are tiled: row
// tile rt and column tile ct execute as pass rt·ColTiles + ct, with the
// bias injected as the initial partial sum of chain step 0 and
// accumulation sequential in ascending k — so the fault-free array
// output is bit-identical to layers.Forward under every numeric format
// and dataflow (stronger than the row-stationary pearray model, whose
// psum reduction order differs).
//
// Skew. The operand for time step t reaches PE (r, c) at cycle t + r + c
// of its pass — the standard diagonal wavefront. A physical fault
// address is therefore (pass, cycle, PE row, PE col, latch, bit), and
// Geometry.Resolve maps it to exactly one logical injection site or
// rejects it (idle row/column tiles, fill/drain cycles where the PE has
// no operand).
//
// Latches. Each PE carries four fault targets — weight, act, psum and
// the east-output forwarding (pipe) register. Which of them is the
// persistent resident register, which are single-read stream registers,
// and which operand the pipe register forwards east depend on the
// dataflow; the corruption-front table in dataflow.go is the complete
// map. In every dataflow a pipe fault at a column tile's east edge
// leaves the array unconsumed — architecturally masked.
//
// MBU. A Width > 1 fault flips Width adjacent bits of the struck latch —
// the multi-bit-upset mode of the TWEPP'25 pipeline bit-fault analysis —
// on every dataflow and latch class.
package systolic

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Params is the physical array size in PEs.
type Params struct {
	Rows, Cols int
}

// DefaultParams is the 16×16 array the campaigns default to — large
// enough that the reduced-width model layers tile it in both dimensions.
var DefaultParams = Params{Rows: 16, Cols: 16}

// withDefaults resolves zero fields to the default array.
func (p Params) withDefaults() Params {
	if p.Rows <= 0 {
		p.Rows = DefaultParams.Rows
	}
	if p.Cols <= 0 {
		p.Cols = DefaultParams.Cols
	}
	return p
}

// Latch identifies the physical latch a fault strikes inside one PE.
type Latch int

const (
	// LatchWeight is the weight register — resident under the
	// weight-stationary dataflow, a single-read stream register otherwise.
	LatchWeight Latch = iota
	// LatchAct is the activation operand register — resident under the
	// input-stationary dataflow, single-read otherwise.
	LatchAct
	// LatchPsum is the partial-sum register — resident under the
	// output-stationary dataflow, south-flowing otherwise.
	LatchPsum
	// LatchPipe is the east-output forwarding register carrying the
	// dataflow's east-moving operand.
	LatchPipe

	// NumLatches is the number of latch classes per PE.
	NumLatches
)

// String names the latch.
func (l Latch) String() string {
	switch l {
	case LatchWeight:
		return "weight"
	case LatchAct:
		return "act-reg"
	case LatchPsum:
		return "psum-reg"
	case LatchPipe:
		return "pipeline-reg"
	}
	return fmt.Sprintf("systolic.Latch(%d)", int(l))
}

// Fault is a physically addressed transient fault: at the given cycle of
// the given pass, bits [Bit, Bit+Width) of the Latch register of PE
// (Row, Col) are inverted. Width 0 behaves as 1 (an SEU); Width > 1 is an
// MBU flipping adjacent bits.
type Fault struct {
	Pass  int
	Cycle int
	Row   int // PE row: row-axis index within the row tile (dataflow-mapped)
	Col   int // PE column: column-axis index within the column tile (dataflow-mapped)
	Latch Latch
	Bit   int
	Width int

	// Applied records whether the simulation consumed the fault — for
	// pipeline faults, whether any downstream PE consumed the corrupted
	// operand.
	Applied bool
}

// Geometry describes the tiled schedule of one MAC layer on the array
// under one dataflow.
type Geometry struct {
	// Rows × Cols physical PEs.
	Rows, Cols int
	// Flow is the dataflow the schedule runs under.
	Flow Dataflow
	// K is the accumulation-chain length (rows of the logical matmul),
	// Outs the output-channel/neuron count (columns), P the stream length
	// (spatial output positions; 1 for FC). Which of the three maps onto
	// the physical rows, columns and time is the dataflow's choice.
	K, Outs, P int
	// RowTiles × ColTiles passes cover the dataflow's (row axis × column
	// axis) logical plane.
	RowTiles, ColTiles int
	// Passes = RowTiles·ColTiles; pass rt·ColTiles + ct executes row tile
	// rt against column tile ct.
	Passes int
	// CyclesPerPass covers the skewed wavefront: the time-axis extent
	// plus Rows + Cols − 2.
	CyclesPerPass int
}

// LayerGeometry computes the schedule of a MAC layer for an input shape
// under a dataflow; ok is false for non-MAC layers.
func LayerGeometry(l layers.Layer, in tensor.Shape, par Params, flow Dataflow) (geo Geometry, ok bool) {
	par = par.withDefaults()
	geo = Geometry{Rows: par.Rows, Cols: par.Cols, Flow: flow}
	switch t := l.(type) {
	case *layers.ConvLayer:
		os := t.OutShape(in)
		geo.K = t.MACChainLen()
		geo.Outs = t.OutC
		geo.P = os.H * os.W
	case *layers.FCLayer:
		geo.K = t.In
		geo.Outs = t.Out
		geo.P = 1
	default:
		return Geometry{}, false
	}
	rowExt, colExt, timeExt := geo.axes()
	geo.RowTiles = (rowExt + geo.Rows - 1) / geo.Rows
	geo.ColTiles = (colExt + geo.Cols - 1) / geo.Cols
	geo.Passes = geo.RowTiles * geo.ColTiles
	geo.CyclesPerPass = timeExt + geo.Rows + geo.Cols - 2
	return geo, true
}

// Site is the logical injection site a physical fault resolves to: chain
// step K of the accumulation chain of output column Out at stream
// position P, striking the given latch bits.
type Site struct {
	K     int // chain step (global row index rt·Rows + PE row)
	Out   int // output channel / neuron (global column index)
	P     int // stream position (spatial output element; 0 for FC)
	Latch Latch
	Bit   int
	Width int // adjacent bits flipped (≥ 1)
}

// Resolve maps a physical fault address onto its unique logical injection
// site, or reports why the address is invalid: unknown latch, bit span
// outside the word, coordinates outside the physical array, idle rows or
// columns of a partially occupied edge tile, or fill/drain cycles where
// the addressed PE holds no operand. In-range addresses land on exactly
// one site (Encode is the inverse).
func (g Geometry) Resolve(f *Fault, width int) (Site, error) {
	if f.Latch < 0 || f.Latch >= NumLatches {
		return Site{}, fmt.Errorf("systolic: unknown latch %d", int(f.Latch))
	}
	w := f.Width
	if w == 0 {
		w = 1
	}
	if w < 0 {
		return Site{}, fmt.Errorf("systolic: negative fault width %d", f.Width)
	}
	if f.Bit < 0 || f.Bit+w > width {
		return Site{}, fmt.Errorf("systolic: bit span [%d,%d) outside %d-bit word", f.Bit, f.Bit+w, width)
	}
	if f.Pass < 0 || f.Pass >= g.Passes {
		return Site{}, fmt.Errorf("systolic: pass %d out of range [0,%d)", f.Pass, g.Passes)
	}
	if f.Row < 0 || f.Row >= g.Rows {
		return Site{}, fmt.Errorf("systolic: PE row %d out of range [0,%d)", f.Row, g.Rows)
	}
	if f.Col < 0 || f.Col >= g.Cols {
		return Site{}, fmt.Errorf("systolic: PE col %d out of range [0,%d)", f.Col, g.Cols)
	}
	rt, ct := f.Pass/g.ColTiles, f.Pass%g.ColTiles
	rowExt, colExt, timeExt := g.axes()
	rv := rt*g.Rows + f.Row
	if rv >= rowExt {
		return Site{}, fmt.Errorf("systolic: PE row %d idle in row tile %d (row-axis extent %d)", f.Row, rt, rowExt)
	}
	cv := ct*g.Cols + f.Col
	if cv >= colExt {
		return Site{}, fmt.Errorf("systolic: PE col %d idle in column tile %d (column-axis extent %d)", f.Col, ct, colExt)
	}
	tv := f.Cycle - f.Row - f.Col
	if tv < 0 || tv >= timeExt {
		return Site{}, fmt.Errorf("systolic: PE (%d,%d) idle at cycle %d (time step %d outside [0,%d))",
			f.Row, f.Col, f.Cycle, tv, timeExt)
	}
	k, o, p := g.logical(rv, cv, tv)
	return Site{K: k, Out: o, P: p, Latch: f.Latch, Bit: f.Bit, Width: w}, nil
}

// Encode is the inverse of Resolve: the unique physical address of a
// logical site.
func (g Geometry) Encode(s Site) Fault {
	rv, cv, tv := g.physical(s)
	row, col := rv%g.Rows, cv%g.Cols
	return Fault{
		Pass:  (rv/g.Rows)*g.ColTiles + cv/g.Cols,
		Cycle: tv + row + col,
		Row:   row,
		Col:   col,
		Latch: s.Latch,
		Bit:   s.Bit,
		Width: s.Width,
	}
}

// ColTileEnd returns the exclusive end of the column tile holding
// column-axis value v — output column for the weight- and
// output-stationary dataflows, stream position for input-stationary.
// The PEs between v and the end are the downstream consumers of the
// PE's east output.
func (g Geometry) ColTileEnd(v int) int {
	_, colExt, _ := g.axes()
	end := (v/g.Cols + 1) * g.Cols
	if end > colExt {
		end = colExt
	}
	return end
}

// flipBits inverts width adjacent bits starting at bit — the SEU flip for
// width 1, the MBU flip otherwise. The caller guarantees the span lies
// inside the format word.
func flipBits(dt numeric.Type, v float64, bit, width int) float64 {
	return dt.FlipBits(v, bit, width)
}
