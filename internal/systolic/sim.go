// Cycle-level simulation of one MAC layer on the array under any of the
// three stationary dataflows. The simulator exists to validate the
// abstract fault model the campaign path uses: its register-transfer
// loops make each dataflow's operand movement explicit (which operand is
// resident, which flows east, which flows south), so the package's tests
// can prove that a physically addressed fault equals the layers
// package's per-MAC injection — and, for the moving- and
// resident-operand latches, the campaign's multi-MAC effect expansion.
package systolic

import (
	"fmt"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Sim executes one CONV/FC layer on the array under a datapath format.
type Sim struct {
	Layer layers.Layer
	DType numeric.Type
	Array Params
	// Flow selects the dataflow; the zero value is weight-stationary.
	Flow Dataflow
}

// New builds a weight-stationary simulator. The layer must be CONV or FC.
func New(l layers.Layer, dt numeric.Type, par Params) *Sim {
	return NewFlow(l, dt, par, WeightStationary)
}

// NewFlow builds a simulator under an explicit dataflow.
func NewFlow(l layers.Layer, dt numeric.Type, par Params, flow Dataflow) *Sim {
	switch l.(type) {
	case *layers.ConvLayer, *layers.FCLayer:
	default:
		panic(fmt.Sprintf("systolic: layer %s is not a MAC layer", l.Name()))
	}
	if flow < 0 || flow >= NumDataflows {
		panic(fmt.Sprintf("systolic: unknown dataflow %d", int(flow)))
	}
	return &Sim{Layer: l, DType: dt, Array: par, Flow: flow}
}

// Geometry returns the tiled schedule for an input shape.
func (s *Sim) Geometry(in tensor.Shape) Geometry {
	geo, ok := LayerGeometry(s.Layer, in, s.Array, s.Flow)
	if !ok {
		panic(fmt.Sprintf("systolic: layer %s is not a MAC layer", s.Layer.Name()))
	}
	return geo
}

// operands resolves the layer's quantized operand accessors: the
// weight of (output column o, chain step k), the activation of
// (chain step k, stream position p), and the per-column bias that enters
// as the initial partial sum.
func (s *Sim) operands(in *tensor.Tensor) (weight func(o, k int) float64, stream func(k, p int) float64, bias func(o int) float64, outShape tensor.Shape) {
	dt := s.DType
	quant := dt.QuantFunc()
	switch l := s.Layer.(type) {
	case *layers.ConvLayer:
		os := l.OutShape(in.Shape)
		khkw := l.KH * l.KW
		weight = func(o, k int) float64 {
			ic, kh, kw := k/khkw, (k/l.KW)%l.KH, k%l.KW
			return quant(l.Weights[l.WeightIndex(o, ic, kh, kw)])
		}
		stream = func(k, p int) float64 {
			ic, kh, kw := k/khkw, (k/l.KW)%l.KH, k%l.KW
			oh, ow := p/os.W, p%os.W
			ih, iw := oh*l.Stride+kh-l.Pad, ow*l.Stride+kw-l.Pad
			if ih < 0 || ih >= in.Shape.H || iw < 0 || iw >= in.Shape.W {
				return 0
			}
			return quant(in.At(ic, ih, iw))
		}
		bias = func(o int) float64 { return quant(l.Bias[o]) }
		return weight, stream, bias, os
	case *layers.FCLayer:
		weight = func(o, k int) float64 { return quant(l.Weights[o*l.In+k]) }
		stream = func(k, p int) float64 { return quant(in.Data[k]) }
		bias = func(o int) float64 { return quant(l.Bias[o]) }
		return weight, stream, bias, l.OutShape(in.Shape)
	}
	panic("systolic: not a MAC layer")
}

// Run executes the layer and returns its output fmap. A non-nil fault is
// injected at its physical coordinate (Run panics on an unresolvable
// address; campaigns draw in site space, tests probe Resolve directly).
//
// In every dataflow the accumulator of output (o, p) folds chain steps
// in ascending k — the layers package's chain order — starting from the
// quantized bias, which makes the fault-free output bit-identical to
// layers.Forward under every format.
func (s *Sim) Run(in *tensor.Tensor, f *Fault) *tensor.Tensor {
	dt := s.DType
	geo := s.Geometry(in.Shape)
	var site Site
	if f != nil {
		var err error
		site, err = geo.Resolve(f, dt.Width())
		if err != nil {
			panic(err)
		}
	}
	weight, stream, bias, outShape := s.operands(in)
	out := tensor.New(outShape)
	switch s.Flow {
	case OutputStationary:
		s.runOS(geo, out.Data, weight, stream, bias, f, site)
	case InputStationary:
		s.runIS(geo, out.Data, weight, stream, bias, f, site)
	default:
		s.runWS(geo, out.Data, weight, stream, bias, f, site)
	}
	return out
}

// runWS is the weight-stationary register-transfer loop. Dataflow per
// pass (row tile rt over k, column tile ct over o): PE (r, c) holds
// weight (o = ct·Cols + c, k = rt·Rows + r) resident for the whole pass,
// consumes the east-flowing stream operand of position p at cycle
// p + r + c, forwards it east, and pushes its updated partial sum south.
// Cross-row-tile accumulation is sequential in k, with the bias injected
// at the top of row tile 0.
func (s *Sim) runWS(geo Geometry, acc []float64, weight, stream func(int, int) float64, bias func(int) float64, f *Fault, site Site) {
	dt := s.DType
	// acc[o·P + p] is the partial sum of output (o, p) — for CONV exactly
	// the (oc, oh, ow) flat activation index, for FC just o.
	for o := 0; o < geo.Outs; o++ {
		b := bias(o)
		for p := 0; p < geo.P; p++ {
			acc[o*geo.P+p] = b
		}
	}
	mac := dt.MACFunc()
	for pass := 0; pass < geo.Passes; pass++ {
		rt, ct := pass/geo.ColTiles, pass%geo.ColTiles
		rowsOcc := geo.K - rt*geo.Rows
		if rowsOcc > geo.Rows {
			rowsOcc = geo.Rows
		}
		colsOcc := geo.Outs - ct*geo.Cols
		if colsOcc > geo.Cols {
			colsOcc = geo.Cols
		}
		for p := 0; p < geo.P; p++ {
			for r := 0; r < rowsOcc; r++ {
				k := rt*geo.Rows + r
				// xflow is the operand in flight along row r for stream
				// position p; PE (r, c) reads it at cycle p + r + c.
				xflow := stream(k, p)
				for c := 0; c < colsOcc; c++ {
					o := ct*geo.Cols + c
					hitPE := f != nil && f.Pass == pass && f.Row == r && f.Col == c
					atCycle := hitPE && p+r+c == f.Cycle
					x := xflow
					if atCycle && f.Latch == LatchAct {
						// Local operand register: one corrupted read.
						x = flipBits(dt, xflow, site.Bit, site.Width)
						f.Applied = true
					}
					w := weight(o, k)
					if hitPE && f.Latch == LatchWeight && p >= site.P {
						// Resident register: corrupted until pass end.
						w = flipBits(dt, w, site.Bit, site.Width)
						f.Applied = true
					}
					ai := o*geo.P + p
					a := mac(acc[ai], w, x)
					if atCycle && f.Latch == LatchPsum {
						a = flipBits(dt, a, site.Bit, site.Width)
						f.Applied = true
					}
					acc[ai] = a
					if atCycle && f.Latch == LatchPipe {
						// East output register: the corruption flows on.
						xflow = flipBits(dt, xflow, site.Bit, site.Width)
						if c+1 < colsOcc {
							f.Applied = true
						}
					}
				}
			}
		}
	}
}

// runOS is the output-stationary register-transfer loop. Dataflow per
// pass (row tile rt over p, column tile ct over o): PE (r, c) holds the
// accumulator of output (o = ct·Cols + c, p = rt·Rows + r) resident,
// initialized from the bias at pass start; the activation of (k, p)
// flows east along row r, the weight of (o, k) flows south down column
// c, and PE (r, c) folds chain step k at cycle k + r + c. Each pass
// completes its output block — no cross-pass accumulation.
func (s *Sim) runOS(geo Geometry, acc []float64, weight, stream func(int, int) float64, bias func(int) float64, f *Fault, site Site) {
	dt := s.DType
	mac := dt.MACFunc()
	for pass := 0; pass < geo.Passes; pass++ {
		rt, ct := pass/geo.ColTiles, pass%geo.ColTiles
		rowsOcc := geo.P - rt*geo.Rows
		if rowsOcc > geo.Rows {
			rowsOcc = geo.Rows
		}
		colsOcc := geo.Outs - ct*geo.Cols
		if colsOcc > geo.Cols {
			colsOcc = geo.Cols
		}
		for c := 0; c < colsOcc; c++ {
			o := ct*geo.Cols + c
			b := bias(o)
			for r := 0; r < rowsOcc; r++ {
				acc[o*geo.P+rt*geo.Rows+r] = b
			}
		}
		for k := 0; k < geo.K; k++ {
			for r := 0; r < rowsOcc; r++ {
				p := rt*geo.Rows + r
				// xflow is the activation in flight along row r for chain
				// step k; PE (r, c) reads it at cycle k + r + c.
				xflow := stream(k, p)
				for c := 0; c < colsOcc; c++ {
					o := ct*geo.Cols + c
					hitPE := f != nil && f.Pass == pass && f.Row == r && f.Col == c
					atCycle := hitPE && k+r+c == f.Cycle
					x := xflow
					if atCycle && f.Latch == LatchAct {
						// Stream register: one corrupted read.
						x = flipBits(dt, xflow, site.Bit, site.Width)
						f.Applied = true
					}
					w := weight(o, k)
					if atCycle && f.Latch == LatchWeight {
						// South-flowing weight register: one corrupted read.
						w = flipBits(dt, w, site.Bit, site.Width)
						f.Applied = true
					}
					ai := o*geo.P + p
					a := mac(acc[ai], w, x)
					if atCycle && f.Latch == LatchPsum {
						// Resident accumulator: the flip persists through
						// the remaining accumulation by construction.
						a = flipBits(dt, a, site.Bit, site.Width)
						f.Applied = true
					}
					acc[ai] = a
					if atCycle && f.Latch == LatchPipe {
						// East output register: the corruption flows on.
						xflow = flipBits(dt, xflow, site.Bit, site.Width)
						if c+1 < colsOcc {
							f.Applied = true
						}
					}
				}
			}
		}
	}
}

// runIS is the input-stationary register-transfer loop. Dataflow per
// pass (row tile rt over k, column tile ct over p): PE (r, c) holds the
// activation of (k = rt·Rows + r, p = ct·Cols + c) resident for the
// whole pass; the weight of (o, k) flows east along row r, partial sums
// flow south down column c, and PE (r, c) folds chain step k of output o
// at cycle o + r + c. Cross-row-tile accumulation is sequential in k,
// with the bias injected at the top of row tile 0.
func (s *Sim) runIS(geo Geometry, acc []float64, weight, stream func(int, int) float64, bias func(int) float64, f *Fault, site Site) {
	dt := s.DType
	for o := 0; o < geo.Outs; o++ {
		b := bias(o)
		for p := 0; p < geo.P; p++ {
			acc[o*geo.P+p] = b
		}
	}
	mac := dt.MACFunc()
	for pass := 0; pass < geo.Passes; pass++ {
		rt, ct := pass/geo.ColTiles, pass%geo.ColTiles
		rowsOcc := geo.K - rt*geo.Rows
		if rowsOcc > geo.Rows {
			rowsOcc = geo.Rows
		}
		colsOcc := geo.P - ct*geo.Cols
		if colsOcc > geo.Cols {
			colsOcc = geo.Cols
		}
		for o := 0; o < geo.Outs; o++ {
			for r := 0; r < rowsOcc; r++ {
				k := rt*geo.Rows + r
				// wflow is the weight in flight along row r for output
				// column o; PE (r, c) reads it at cycle o + r + c.
				wflow := weight(o, k)
				for c := 0; c < colsOcc; c++ {
					p := ct*geo.Cols + c
					hitPE := f != nil && f.Pass == pass && f.Row == r && f.Col == c
					atCycle := hitPE && o+r+c == f.Cycle
					w := wflow
					if atCycle && f.Latch == LatchWeight {
						// Stream register: one corrupted read.
						w = flipBits(dt, wflow, site.Bit, site.Width)
						f.Applied = true
					}
					x := stream(k, p)
					if hitPE && f.Latch == LatchAct && o >= site.Out {
						// Resident register: corrupted until pass end.
						x = flipBits(dt, x, site.Bit, site.Width)
						f.Applied = true
					}
					ai := o*geo.P + p
					a := mac(acc[ai], w, x)
					if atCycle && f.Latch == LatchPsum {
						a = flipBits(dt, a, site.Bit, site.Width)
						f.Applied = true
					}
					acc[ai] = a
					if atCycle && f.Latch == LatchPipe {
						// East output register: the corrupted weight flows on.
						wflow = flipBits(dt, wflow, site.Bit, site.Width)
						if c+1 < colsOcc {
							f.Applied = true
						}
					}
				}
			}
		}
	}
}

// RandomFault draws a uniformly random in-range physical fault for an
// input shape: uniform over the occupied (chain step, output column,
// stream position, latch, bit) sites, encoded to its physical address.
func (s *Sim) RandomFault(rng *rand.Rand, in tensor.Shape) *Fault {
	geo := s.Geometry(in)
	f := geo.Encode(Site{
		K:     rng.Intn(geo.K),
		Out:   rng.Intn(geo.Outs),
		P:     rng.Intn(geo.P),
		Latch: Latch(rng.Intn(int(NumLatches))),
		Bit:   rng.Intn(s.DType.Width()),
		Width: 1,
	})
	return &f
}

// AbstractFault translates a physical fault into the layers package's
// per-MAC descriptor when the fault corrupts exactly one MAC under the
// simulator's dataflow: the dataflow's single-read latches always, its
// resident latch when struck at the last time step (a single remaining
// read), and pipeline faults with exactly one downstream consumer.
// comparable is false for multi-MAC or architecturally masked faults —
// those are validated against the campaign's effect expansion instead.
func (s *Sim) AbstractFault(f *Fault, in tensor.Shape) (layerFault layers.Fault, comparable bool) {
	geo := s.Geometry(in)
	site, err := geo.Resolve(f, s.DType.Width())
	if err != nil || site.Width != 1 {
		return layers.Fault{}, false
	}
	return geo.abstract(site)
}
