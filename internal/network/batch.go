package network

import (
	"fmt"
	"math"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// InjectionBatch amortizes the per-injection setup of ForwardFrom across a
// group of faults that share one (golden execution, faulted layer): the
// campaign groups a shard's injections by (input, faulted layer) and runs
// each group through a batch, so the faulted layer's quantized input and
// the shared golden prefix views are resolved once per group rather than
// once per injection. Downstream propagation is the same sparse
// receptive-field delta-stepping ForwardFrom uses (propagateElement), so
// grouped injections also skip the dense forward cost of unmasked faults.
// Every Run result is bit-identical to the corresponding ForwardFrom call.
//
// A batch is not safe for concurrent use; each campaign shard builds its
// own.
type InjectionBatch struct {
	net      *Network
	dt       numeric.Type
	golden   *Execution
	layerIdx int
	// ef is nil when the faulted layer cannot element-forward; Run then
	// falls back to the dense path, exactly as ForwardFrom does.
	ef    layers.ElementForwarder
	in    *tensor.Tensor
	quant *layers.QuantCache
	// qin is the pre-quantized faulted-layer input, populated only when
	// the group is large enough that one whole-input quantization is
	// cheaper than per-tap quantization across the group's chains.
	qin []float64
	// ctx is reused across Run calls (the batch runs on one goroutine).
	ctx layers.Context
	// pfw is non-nil when the faulted layer supports bit-plane evaluation
	// (every CONV/FC layer does).
	pfw layers.PlaneForwarder
	// scratch is the reusable faulted-layer activation clone of
	// PropagateShared: patched before each propagation, restored to golden
	// after, so masked injections stop paying one full tensor clone each.
	scratch *tensor.Tensor
	// acts holds PropagateShared's per-layer delta outputs until it knows
	// whether the fault masked (then they are dropped) or needs an
	// Execution (then they are moved into it — ForwardDelta clones before
	// writing, so they never alias scratch).
	acts []*tensor.Tensor
	// chains caches golden accumulation-chain partials of the downstream
	// MAC layers so repeated propagations replay only diverged chain
	// suffixes (see layers.ChainCache). Valid for the batch's lifetime:
	// downstream layer parameters and golden activations are fixed even
	// when the faulted layer's own weights are perturbed.
	chains *layers.ChainCache
}

// NewInjectionBatch prepares a batch of expected faulty runs against the
// faulted layer layerIdx of a golden execution. expected is the group size
// the caller intends to Run; it only tunes the pre-quantization heuristic,
// not correctness — any number of Run calls is valid.
func (n *Network) NewInjectionBatch(dt numeric.Type, golden *Execution, layerIdx, expected int) *InjectionBatch {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	b := &InjectionBatch{
		net: n, dt: dt, golden: golden, layerIdx: layerIdx,
		quant:  n.quant.Load(),
		chains: layers.NewChainCache(dt),
	}
	ef, ok := n.Layers[layerIdx].(layers.ElementForwarder)
	if !ok {
		return b
	}
	b.ef = ef
	b.in = golden.Input
	if layerIdx > 0 {
		b.in = golden.Acts[layerIdx-1]
	}
	// Pre-quantize the whole input only when the group's accumulation
	// chains would otherwise quantize at least as many taps: FC chains
	// span the full input, so any group of two wins; early CONV layers
	// have short chains, so small groups stay on per-tap quantization.
	if cl, ok := ef.(interface{ MACChainLen() int }); ok {
		if chain := cl.MACChainLen(); chain > 0 && expected*chain >= len(b.in.Data) {
			b.qin = layers.QuantizeSlice(dt, b.in.Data)
		}
	}
	b.ctx = layers.Context{DType: dt, Quant: b.quant, QIn: b.qin}
	b.pfw, _ = ef.(layers.PlaneForwarder)
	return b
}

// CanPlane reports whether the faulted layer supports bit-plane evaluation.
func (b *InjectionBatch) CanPlane() bool { return b.pfw != nil }

// ForwardPlane replays the faulted accumulation chain once, writing into
// vals[bit] — for every bit set in pf.Bits — the faulty chain output of
// flipping that bit at (pf.MACStep, pf.Target). Each value is bit-identical
// to the ForwardElement replay of the corresponding scalar Fault; the
// return value is the golden chain output.
func (b *InjectionBatch) ForwardPlane(pf *layers.PlaneFault, vals *[64]float64) float64 {
	if b.pfw == nil {
		panic(fmt.Sprintf("network %s: layer %d cannot plane-forward", b.net.Name, b.layerIdx))
	}
	return b.pfw.ForwardElementPlane(&b.ctx, b.in, pf, vals)
}

// StepOperands returns the quantized (weight, activation) operand pair one
// MAC step of one output element consumes — the inputs of the analytical
// masking pre-screen.
func (b *InjectionBatch) StepOperands(outputIndex, macStep int) (w, x float64) {
	if b.pfw == nil {
		panic(fmt.Sprintf("network %s: layer %d cannot plane-forward", b.net.Name, b.layerIdx))
	}
	return b.pfw.StepOperands(&b.ctx, b.in, outputIndex, macStep)
}

// Propagate finishes a faulty run from an already-computed faulted-element
// value, bit-identical to the tail of Run after ForwardElement.
func (b *InjectionBatch) Propagate(outputIndex int, faultyVal float64) *Execution {
	return b.net.propagateElement(b.dt, b.golden, b.layerIdx, outputIndex, faultyVal, b.quant, b.chains)
}

// PropagateShared is Propagate for callers that only need an Execution when
// the fault is unmasked: it returns (nil, true) for masked faults —
// bit-identical in classification to the Masked Execution Propagate would
// build (every downstream activation aliases golden) — without cloning the
// faulted layer's activation per injection. The changed-set walk runs on a
// reusable scratch clone patched in place and restored afterwards; unmasked
// faults still materialize a full Execution, bit-identical to Propagate's.
//
// Callers that inspect the faulty execution itself (e.g. detectors) must
// use Propagate: a masked (nil, true) result has no activations to read.
func (b *InjectionBatch) PropagateShared(outputIndex int, faultyVal float64) (*Execution, bool) {
	n, golden := b.net, b.golden
	goldenVal := golden.Acts[b.layerIdx].Data[outputIndex]
	if math.Float64bits(faultyVal) == math.Float64bits(goldenVal) {
		return nil, true
	}
	if b.scratch == nil {
		b.scratch = golden.Acts[b.layerIdx].Clone()
		b.acts = make([]*tensor.Tensor, len(n.Layers))
	}
	cur := b.scratch
	cur.Data[outputIndex] = faultyVal
	changed := []int{outputIndex}

	base := n.sparseDensityCutoff()
	auto := n.autoCutoff.Load()
	clean := &layers.Context{DType: b.dt, Quant: b.quant, DenseCutoff: base, Chains: b.chains}
	i := b.layerIdx + 1
	for ; i < len(n.Layers) && len(changed) > 0; i++ {
		df, ok := n.Layers[i].(layers.DeltaForwarder)
		if !ok {
			break
		}
		if auto != nil && base == 0 {
			clean.DenseCutoff = auto.observe(i, float64(len(changed))/float64(len(cur.Data)))
		}
		clean.QIn = cur.Data
		clean.GoldenIn = golden.Acts[i-1].Data
		cur, changed = df.ForwardDelta(clean, cur, golden.Acts[i], changed)
		b.acts[i] = cur
	}
	clean.QIn = nil
	clean.GoldenIn = nil
	if len(changed) == 0 {
		b.scratch.Data[outputIndex] = goldenVal
		return nil, true
	}

	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	copy(exec.Acts[:b.layerIdx], golden.Acts[:b.layerIdx])
	patched := golden.Acts[b.layerIdx].Clone()
	patched.Data[outputIndex] = faultyVal
	exec.Acts[b.layerIdx] = patched
	copy(exec.Acts[b.layerIdx+1:i], b.acts[b.layerIdx+1:i])
	b.scratch.Data[outputIndex] = goldenVal
	if cur == b.scratch {
		// No delta layer ran before the dense tail (the layer after the
		// faulted one is not a DeltaForwarder): the tail must read the
		// patched activation, not the restored scratch.
		cur = patched
	}
	for ; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(clean, cur)
		exec.Acts[i] = cur
	}
	return exec, false
}

// Run executes one faulty inference of the batch, bit-identical to
// ForwardFrom(dt, golden, layerIdx, fault).
func (b *InjectionBatch) Run(fault *layers.Fault) *Execution {
	if b.ef == nil || fault == nil {
		return b.net.ForwardFromDense(b.dt, b.golden, b.layerIdx, fault)
	}
	b.ctx.Fault = fault
	faultyVal := b.ef.ForwardElement(&b.ctx, b.in, fault.OutputIndex)
	b.ctx.Fault = nil
	return b.net.propagateElement(b.dt, b.golden, b.layerIdx, fault.OutputIndex, faultyVal, b.quant, b.chains)
}
