package network

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// InjectionBatch amortizes the per-injection setup of ForwardFrom across a
// group of faults that share one (golden execution, faulted layer): the
// campaign groups a shard's injections by (input, faulted layer) and runs
// each group through a batch, so the faulted layer's quantized input and
// the shared golden prefix views are resolved once per group rather than
// once per injection. Downstream propagation is the same sparse
// receptive-field delta-stepping ForwardFrom uses (propagateElement), so
// grouped injections also skip the dense forward cost of unmasked faults.
// Every Run result is bit-identical to the corresponding ForwardFrom call.
//
// A batch is not safe for concurrent use; each campaign shard builds its
// own.
type InjectionBatch struct {
	net      *Network
	dt       numeric.Type
	golden   *Execution
	layerIdx int
	// ef is nil when the faulted layer cannot element-forward; Run then
	// falls back to the dense path, exactly as ForwardFrom does.
	ef    layers.ElementForwarder
	in    *tensor.Tensor
	quant *layers.QuantCache
	// qin is the pre-quantized faulted-layer input, populated only when
	// the group is large enough that one whole-input quantization is
	// cheaper than per-tap quantization across the group's chains.
	qin []float64
	// ctx is reused across Run calls (the batch runs on one goroutine).
	ctx layers.Context
}

// NewInjectionBatch prepares a batch of expected faulty runs against the
// faulted layer layerIdx of a golden execution. expected is the group size
// the caller intends to Run; it only tunes the pre-quantization heuristic,
// not correctness — any number of Run calls is valid.
func (n *Network) NewInjectionBatch(dt numeric.Type, golden *Execution, layerIdx, expected int) *InjectionBatch {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	b := &InjectionBatch{net: n, dt: dt, golden: golden, layerIdx: layerIdx, quant: n.quant.Load()}
	ef, ok := n.Layers[layerIdx].(layers.ElementForwarder)
	if !ok {
		return b
	}
	b.ef = ef
	b.in = golden.Input
	if layerIdx > 0 {
		b.in = golden.Acts[layerIdx-1]
	}
	// Pre-quantize the whole input only when the group's accumulation
	// chains would otherwise quantize at least as many taps: FC chains
	// span the full input, so any group of two wins; early CONV layers
	// have short chains, so small groups stay on per-tap quantization.
	if cl, ok := ef.(interface{ MACChainLen() int }); ok {
		if chain := cl.MACChainLen(); chain > 0 && expected*chain >= len(b.in.Data) {
			b.qin = layers.QuantizeSlice(dt, b.in.Data)
		}
	}
	b.ctx = layers.Context{DType: dt, Quant: b.quant, QIn: b.qin}
	return b
}

// Run executes one faulty inference of the batch, bit-identical to
// ForwardFrom(dt, golden, layerIdx, fault).
func (b *InjectionBatch) Run(fault *layers.Fault) *Execution {
	if b.ef == nil || fault == nil {
		return b.net.ForwardFromDense(b.dt, b.golden, b.layerIdx, fault)
	}
	b.ctx.Fault = fault
	faultyVal := b.ef.ForwardElement(&b.ctx, b.in, fault.OutputIndex)
	b.ctx.Fault = nil
	return b.net.propagateElement(b.dt, b.golden, b.layerIdx, fault.OutputIndex, faultyVal, b.quant)
}
