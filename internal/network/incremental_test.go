package network

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// lrnNet builds an AlexNet-style block structure — conv -> ReLU -> LRN ->
// pool -> conv -> ReLU -> fc (-> softmax) — exercising every layer kind
// the incremental engine propagates through.
func lrnNet(withSoftmax bool, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	conv1 := layers.NewConv("conv1", 2, 6, 3, 1, 1)
	conv2 := layers.NewConv("conv2", 6, 4, 3, 1, 0)
	fc := layers.NewFC("fc3", 4*2*2, 5)
	for _, p := range [][]float64{conv1.Weights, conv1.Bias, conv2.Weights, conv2.Bias, fc.Weights, fc.Bias} {
		for i := range p {
			p[i] = rng.NormFloat64() * 0.4
		}
	}
	ls := []layers.Layer{
		conv1,
		layers.NewReLU("relu1"),
		layers.NewLRN("norm1"),
		layers.NewPool("pool1", 2, 2),
		conv2,
		layers.NewReLU("relu2"),
		fc,
	}
	if withSoftmax {
		ls = append(ls, layers.NewSoftmax("prob"))
	}
	n := &Network{
		Name:    "lrnNet",
		InShape: tensor.Shape{C: 2, H: 8, W: 8},
		Classes: 5,
		Layers:  ls,
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

// deepNet stacks three CONV blocks and two FC layers so a fault injected
// at conv1 must delta-step through downstream CONV and FC layers — the
// receptive-field-bounded sparse path — not just activations, before the
// softmax tail.
func deepNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	conv1 := layers.NewConv("conv1", 2, 4, 3, 1, 1) // 8x8 -> 4x8x8
	conv2 := layers.NewConv("conv2", 4, 6, 3, 2, 1) // 4x4x4 -> 6x2x2
	conv3 := layers.NewConv("conv3", 6, 6, 1, 1, 0) // pointwise
	fc4 := layers.NewFC("fc4", 6*2*2, 8)
	fc5 := layers.NewFC("fc5", 8, 4)
	for _, p := range [][]float64{
		conv1.Weights, conv1.Bias, conv2.Weights, conv2.Bias,
		conv3.Weights, conv3.Bias, fc4.Weights, fc4.Bias, fc5.Weights, fc5.Bias,
	} {
		for i := range p {
			p[i] = rng.NormFloat64() * 0.4
		}
	}
	n := &Network{
		Name:    "deepNet",
		InShape: tensor.Shape{C: 2, H: 8, W: 8},
		Classes: 4,
		Layers: []layers.Layer{
			conv1, layers.NewReLU("relu1"), layers.NewPool("pool1", 2, 2),
			conv2, layers.NewReLU("relu2"),
			conv3, layers.NewReLU("relu3"),
			fc4, layers.NewReLU("relu4"),
			fc5, layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func randInput(shape tensor.Shape, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(shape)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	return in
}

// TestForwardFromEquivalence is the bit-exactness property test of the
// incremental propagation engine: for seeded random (layer, output
// element, MAC step, target, bit) fault sites across every numeric type,
// the incremental ForwardFrom must produce activations bit-identical to
// the dense reference ForwardFromDense at every layer.
func TestForwardFromEquivalence(t *testing.T) {
	nets := []*Network{tinyNet(), lrnNet(true, 7), lrnNet(false, 8), deepNet(19)}
	for _, n := range nets {
		// Exercise both the cold path and the quantized-parameter cache.
		for _, withCache := range []bool{false, true} {
			if withCache {
				n.EnableQuantCache()
			}
			for _, dt := range numeric.Types {
				t.Run(fmt.Sprintf("%s/%s/cache=%v", n.Name, dt, withCache), func(t *testing.T) {
					testEquivalence(t, n, dt)
				})
			}
		}
	}
}

func testEquivalence(t *testing.T, n *Network, dt numeric.Type) {
	in := randInput(n.InShape, 42)
	golden := n.Forward(dt, in)
	macLayers := n.MACLayerIndices()
	rng := rand.New(rand.NewSource(int64(dt) + 1))

	masked, unmasked := 0, 0
	for trial := 0; trial < 60; trial++ {
		li := macLayers[rng.Intn(len(macLayers))]
		layerIn := golden.Input
		if li > 0 {
			layerIn = golden.Acts[li-1]
		}
		var outElems, chain int
		switch l := n.Layers[li].(type) {
		case *layers.ConvLayer:
			outElems = l.OutShape(layerIn.Shape).Elems()
			chain = l.MACChainLen()
		case *layers.FCLayer:
			outElems = l.Out
			chain = l.MACChainLen()
		}
		fault := &layers.Fault{
			OutputIndex: rng.Intn(outElems),
			MACStep:     rng.Intn(chain),
			Target:      layers.Target(rng.Intn(int(layers.NumTargets))),
			Bit:         rng.Intn(dt.Width()),
		}
		dense := *fault
		inc := n.ForwardFrom(dt, golden, li, fault)
		ref := n.ForwardFromDense(dt, golden, li, &dense)
		if !fault.Applied || !dense.Applied {
			t.Fatalf("trial %d: fault not applied (inc=%v dense=%v)", trial, fault.Applied, dense.Applied)
		}
		if inc.Masked {
			masked++
		} else {
			unmasked++
		}
		for i := range n.Layers {
			a, b := inc.Acts[i], ref.Acts[i]
			if a.Shape != b.Shape {
				t.Fatalf("trial %d (site %+v): layer %d shape %v vs %v", trial, fault, i, a.Shape, b.Shape)
			}
			for j := range a.Data {
				if math.Float64bits(a.Data[j]) != math.Float64bits(b.Data[j]) {
					t.Fatalf("trial %d (layer %d of %s, site %+v): element %d incremental %v (%#x) != dense %v (%#x)",
						trial, li, n.Layers[li].Name(), fault, j,
						a.Data[j], math.Float64bits(a.Data[j]), b.Data[j], math.Float64bits(b.Data[j]))
				}
			}
		}
	}
	// Sanity: the trial mix must exercise both engine paths, or the test
	// proves less than it claims.
	if masked == 0 || unmasked == 0 {
		t.Logf("warning: %s mix masked=%d unmasked=%d", dt, masked, unmasked)
	}
}

// TestForwardFromSparseCutoffSweep pins that the density cutoff is a
// throughput knob only: whether it forces the dense fallback on every
// delta step (1e-9), never allows it (1), or sits at the benchmark default
// (0), ForwardFrom stays bit-identical to ForwardFromDense on a net deep
// enough that faults delta-step through downstream CONV and FC layers.
func TestForwardFromSparseCutoffSweep(t *testing.T) {
	n := deepNet(19)
	defer n.SetSparseDensityCutoff(0)
	for _, cutoff := range []float64{1e-9, 0, 1} {
		n.SetSparseDensityCutoff(cutoff)
		for _, dt := range []numeric.Type{numeric.Float16, numeric.Float, numeric.Fx32RB10} {
			t.Run(fmt.Sprintf("cutoff=%g/%s", cutoff, dt), func(t *testing.T) {
				testEquivalence(t, n, dt)
			})
		}
	}
}

// TestForwardFromMaskedAliasesGolden pins the early-exit contract: a fault
// absorbed before the output yields an execution whose downstream tensors
// alias golden and whose Masked flag is set.
func TestForwardFromMaskedAliasesGolden(t *testing.T) {
	n := lrnNet(true, 7)
	dt := numeric.Float16
	in := randInput(n.InShape, 42)
	golden := n.Forward(dt, in)

	// Find a masked fault by scanning low-order mantissa bits of weight
	// operands; quantization absorbs most of them.
	macLayers := n.MACLayerIndices()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		li := macLayers[rng.Intn(len(macLayers))]
		layerIn := golden.Input
		if li > 0 {
			layerIn = golden.Acts[li-1]
		}
		var outElems, chain int
		switch l := n.Layers[li].(type) {
		case *layers.ConvLayer:
			outElems = l.OutShape(layerIn.Shape).Elems()
			chain = l.MACChainLen()
		case *layers.FCLayer:
			outElems = l.Out
			chain = l.MACChainLen()
		}
		fault := &layers.Fault{
			OutputIndex: rng.Intn(outElems),
			MACStep:     rng.Intn(chain),
			Target:      layers.TargetWeight,
			Bit:         rng.Intn(3), // low mantissa bits: usually masked
		}
		exec := n.ForwardFrom(dt, golden, li, fault)
		if !exec.Masked {
			continue
		}
		last := len(n.Layers) - 1
		if exec.Acts[last] != golden.Acts[last] {
			t.Fatal("masked execution does not alias the golden output tensor")
		}
		for i := range exec.Acts {
			for j := range exec.Acts[i].Data {
				if math.Float64bits(exec.Acts[i].Data[j]) != math.Float64bits(golden.Acts[i].Data[j]) {
					t.Fatalf("masked execution differs from golden at layer %d elem %d", i, j)
				}
			}
		}
		return
	}
	t.Fatal("no masked fault found in 2000 low-bit trials; masking logic suspect")
}

// TestForwardParallelMatchesSerial checks that splitting CONV/FC loops
// across goroutines is bit-identical to the serial pass.
func TestForwardParallelMatchesSerial(t *testing.T) {
	n := lrnNet(true, 9)
	in := randInput(n.InShape, 11)
	for _, dt := range []numeric.Type{numeric.Double, numeric.Float16, numeric.Fx32RB10} {
		serial := n.Forward(dt, in)
		parallel := n.ForwardParallel(dt, in, 8)
		for i := range serial.Acts {
			for j := range serial.Acts[i].Data {
				if math.Float64bits(serial.Acts[i].Data[j]) != math.Float64bits(parallel.Acts[i].Data[j]) {
					t.Fatalf("%s: parallel forward differs at layer %d elem %d", dt, i, j)
				}
			}
		}
	}
}

// TestQuantCacheInvalidation verifies that weight mutation plus
// InvalidateQuantCache yields fresh quantized values.
func TestQuantCacheInvalidation(t *testing.T) {
	n := tinyNet()
	n.EnableQuantCache()
	in := tinyInput()
	dt := numeric.Float16
	before := n.Forward(dt, in).Output().Clone()

	conv := n.Layers[0].(*layers.ConvLayer)
	for i := range conv.Weights {
		conv.Weights[i] += 0.5
	}
	n.InvalidateQuantCache()
	after := n.Forward(dt, in)

	// A fresh network with the same mutated weights is the reference.
	ref := tinyNet()
	refConv := ref.Layers[0].(*layers.ConvLayer)
	for i := range refConv.Weights {
		refConv.Weights[i] += 0.5
	}
	want := ref.Forward(dt, in)
	diff := false
	for i := range after.Output().Data {
		if math.Float64bits(after.Output().Data[i]) != math.Float64bits(want.Output().Data[i]) {
			t.Fatalf("invalidated cache: output[%d] = %v, want %v", i, after.Output().Data[i], want.Output().Data[i])
		}
		if after.Output().Data[i] != before.Data[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("weight mutation had no visible effect; test is vacuous")
	}
}
