package network

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/layers"
)

// WeightsHash returns a stable 64-bit FNV-1a digest of the network's
// identity: its name, input shape, class count, the name and kind of every
// layer, and the raw IEEE-754 bits of every CONV/FC weight and bias. Two
// networks with equal hashes run bit-identical golden executions for equal
// inputs and numeric formats — the property the distributed campaign
// service's golden-execution cache keys on. It is an identity digest, not
// a cryptographic commitment.
func (n *Network) WeightsHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wrf := func(vs []float64) {
		for _, v := range vs {
			wr(math.Float64bits(v))
		}
	}
	io.WriteString(h, n.Name)
	wr(uint64(n.InShape.C))
	wr(uint64(n.InShape.H))
	wr(uint64(n.InShape.W))
	wr(uint64(n.Classes))
	for _, l := range n.Layers {
		io.WriteString(h, l.Name())
		wr(uint64(l.Kind()))
		switch t := l.(type) {
		case *layers.ConvLayer:
			wr(uint64(t.Stride))
			wr(uint64(t.Pad))
			wrf(t.Weights)
			wrf(t.Bias)
		case *layers.FCLayer:
			wrf(t.Weights)
			wrf(t.Bias)
		}
	}
	return h.Sum64()
}
