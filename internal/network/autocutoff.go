package network

import "sync/atomic"

// Per-layer auto-tuning of the sparse-propagation density cutoff. The
// static layers.DefaultSparseDensityCutoff (0.5) sits in the middle of the
// empirically flat sparse/dense crossover band (~0.4–0.8, per the
// cmd/benchtrack sweeps); where inside the band a layer should sit depends
// on the changed-set densities its faults actually produce, which differ
// per layer (early CONV cones stay tiny, late FC deltas are dense). The
// auto-tuner observes the input density of every delta step and tunes each
// layer's cutoff within the band: layers whose perturbations typically stay
// sparse keep the sparse path up to 0.8, layers that routinely see dense
// deltas hand over to the dense pass at 0.4. The choice only moves work
// between two bit-identical code paths, so reports are invariant under any
// tuning (and under the cross-shard observation races the atomics allow).
const (
	// autoCutoffWarmup is the number of observations a layer needs before
	// its tuned cutoff replaces the package default.
	autoCutoffWarmup = 64
	// autoCutoffScale converts observed densities (∈ [0,1]) to the fixed-
	// point accumulator grid.
	autoCutoffScale = 1 << 32
	// autoCutoffLo/Hi bound the tuned cutoff to the flat crossover band.
	autoCutoffLo = 0.4
	autoCutoffHi = 0.8
)

// autoCutoffState accumulates per-layer density observations. Concurrent
// campaign shards share one instance; the accumulators are independent
// atomics, so observations from any interleaving produce a valid (if not
// identical) tuning — acceptable because every tuning is report-invariant.
type autoCutoffState struct {
	stats []cutoffStat
}

type cutoffStat struct {
	// sum accumulates observed densities in 32.32 fixed point; n counts
	// them.
	sum atomic.Uint64
	n   atomic.Uint64
}

// EnableAutoSparseCutoff attaches the per-layer density auto-tuner to the
// network: every subsequent sparse delta propagation observes its per-layer
// changed-set densities and resolves each layer's dense-fallback cutoff
// from the running mean instead of the global default. An explicit
// SetSparseDensityCutoff override takes precedence. Results are
// bit-identical at any cutoff; only throughput changes.
func (n *Network) EnableAutoSparseCutoff() {
	if n.autoCutoff.Load() != nil {
		return
	}
	n.autoCutoff.CompareAndSwap(nil, &autoCutoffState{stats: make([]cutoffStat, len(n.Layers))})
}

// observe records one delta step's input density for a layer and returns
// the layer's current cutoff: 0 (the package default) until the layer has
// warmed up, then clamp(0.8 − mean density, 0.4, 0.8) — the sparser a
// layer's typical perturbations, the longer it keeps the sparse path.
func (st *autoCutoffState) observe(layer int, density float64) float64 {
	s := &st.stats[layer]
	if density < 0 {
		density = 0
	} else if density > 1 {
		density = 1
	}
	s.sum.Add(uint64(density * autoCutoffScale))
	cnt := s.n.Add(1)
	if cnt < autoCutoffWarmup {
		return 0
	}
	mean := float64(s.sum.Load()) / autoCutoffScale / float64(cnt)
	c := autoCutoffHi - mean
	if c < autoCutoffLo {
		c = autoCutoffLo
	}
	return c
}

// AutoSparseCutoffs reports the current effective per-layer cutoffs of the
// auto-tuner (0 = package default: tuner disabled, layer not warmed up, or
// layer never observed). Diagnostic only.
func (n *Network) AutoSparseCutoffs() []float64 {
	st := n.autoCutoff.Load()
	if st == nil {
		return nil
	}
	out := make([]float64, len(st.stats))
	for i := range st.stats {
		s := &st.stats[i]
		cnt := s.n.Load()
		if cnt < autoCutoffWarmup {
			continue
		}
		c := autoCutoffHi - float64(s.sum.Load())/autoCutoffScale/float64(cnt)
		if c < autoCutoffLo {
			c = autoCutoffLo
		}
		out[i] = c
	}
	return out
}
