package network

import (
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// tinyNet builds a small conv -> relu -> pool -> fc -> softmax network with
// fixed weights for deterministic assertions.
func tinyNet() *Network {
	conv := layers.NewConv("conv1", 1, 2, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = 0.1 * float64(i%5)
	}
	fc := layers.NewFC("fc2", 2*2*2, 4)
	for i := range fc.Weights {
		fc.Weights[i] = 0.05 * float64(i%7-3)
	}
	return &Network{
		Name:    "tiny",
		InShape: tensor.Shape{C: 1, H: 4, W: 4},
		Classes: 4,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
}

func tinyInput() *tensor.Tensor {
	in := tensor.New(tensor.Shape{C: 1, H: 4, W: 4})
	for i := range in.Data {
		in.Data[i] = float64(i)*0.3 - 2
	}
	return in
}

func TestValidate(t *testing.T) {
	if err := tinyNet().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesShapeError(t *testing.T) {
	n := tinyNet()
	n.InShape = tensor.Shape{C: 2, H: 4, W: 4} // conv expects 1 channel
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted mismatched input shape")
	}
}

func TestValidateCatchesClassCount(t *testing.T) {
	n := tinyNet()
	n.Classes = 7
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted wrong class count")
	}
}

func TestHasSoftmax(t *testing.T) {
	n := tinyNet()
	if !n.HasSoftmax() {
		t.Error("tinyNet should report softmax")
	}
	n.Layers = n.Layers[:len(n.Layers)-1]
	if n.HasSoftmax() {
		t.Error("truncated net should not report softmax")
	}
}

func TestMACLayerIndices(t *testing.T) {
	n := tinyNet()
	got := n.MACLayerIndices()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("MACLayerIndices = %v, want [0 3]", got)
	}
	if n.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d, want 2", n.NumBlocks())
	}
}

func TestBlockOfLayer(t *testing.T) {
	n := tinyNet()
	want := []int{0, 0, 0, 1, 1} // conv,relu,pool -> block0; fc,softmax -> block1
	for i, w := range want {
		if got := n.BlockOfLayer(i); got != w {
			t.Errorf("BlockOfLayer(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestForwardCapturesAllActs(t *testing.T) {
	n := tinyNet()
	exec := n.Forward(numeric.Double, tinyInput())
	if len(exec.Acts) != len(n.Layers) {
		t.Fatalf("captured %d acts, want %d", len(exec.Acts), len(n.Layers))
	}
	for i, a := range exec.Acts {
		if a == nil {
			t.Fatalf("act %d is nil", i)
		}
	}
	if got := exec.Output().Shape.Elems(); got != 4 {
		t.Errorf("output elems = %d, want 4", got)
	}
}

func TestForwardRejectsWrongShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Forward accepted wrong input shape")
		}
	}()
	tinyNet().Forward(numeric.Double, tensor.New(tensor.Shape{C: 1, H: 3, W: 3}))
}

func TestForwardFromMatchesFullRun(t *testing.T) {
	// A faulty resume must be bit-identical to a full forward pass where
	// the same layer receives the same fault.
	n := tinyNet()
	in := tinyInput()
	for _, dt := range []numeric.Type{numeric.Double, numeric.Float16, numeric.Fx16RB10} {
		golden := n.Forward(dt, in)

		fault := &layers.Fault{OutputIndex: 3, MACStep: 1, Target: layers.TargetAccum, Bit: dt.Width() - 2}
		resumed := n.ForwardFrom(dt, golden, 0, fault)

		// Full run with the fault routed manually to layer 0.
		fault2 := *fault
		fault2.Applied = false
		ctx := &layers.Context{DType: dt, Fault: &fault2}
		cur := n.Layers[0].Forward(ctx, in)
		clean := &layers.Context{DType: dt}
		for _, l := range n.Layers[1:] {
			cur = l.Forward(clean, cur)
		}
		for i := range cur.Data {
			if cur.Data[i] != resumed.Output().Data[i] {
				t.Fatalf("%s: resume mismatch at %d: %v vs %v", dt, i, resumed.Output().Data[i], cur.Data[i])
			}
		}
		if !fault.Applied {
			t.Fatalf("%s: fault not applied", dt)
		}
	}
}

func TestForwardFromSharesPrefix(t *testing.T) {
	n := tinyNet()
	golden := n.Forward(numeric.Double, tinyInput())
	fault := &layers.Fault{OutputIndex: 0, MACStep: 0, Target: layers.TargetAccum, Bit: 62}
	exec := n.ForwardFrom(numeric.Double, golden, 3, fault)
	for i := 0; i < 3; i++ {
		if exec.Acts[i] != golden.Acts[i] {
			t.Errorf("act %d not shared with golden", i)
		}
	}
	if exec.Acts[3] == golden.Acts[3] {
		t.Error("faulted layer act shared with golden")
	}
}

func TestForwardFromNoFaultEqualsGolden(t *testing.T) {
	n := tinyNet()
	golden := n.Forward(numeric.Float16, tinyInput())
	exec := n.ForwardFrom(numeric.Float16, golden, 2, nil)
	for i := range golden.Output().Data {
		if exec.Output().Data[i] != golden.Output().Data[i] {
			t.Fatal("nil-fault resume diverged from golden")
		}
	}
}

func TestTopK(t *testing.T) {
	n := tinyNet()
	exec := n.Forward(numeric.Double, tinyInput())
	top := exec.TopK(4)
	if len(top) != 4 {
		t.Fatalf("TopK(4) len = %d", len(top))
	}
	if top[0] != exec.Top1() {
		t.Error("TopK[0] != Top1")
	}
	out := exec.Output()
	for i := 1; i < len(top); i++ {
		if out.Data[top[i-1]] < out.Data[top[i]] {
			t.Error("TopK not descending")
		}
	}
}

func TestBlockActsAndRanges(t *testing.T) {
	n := tinyNet()
	exec := n.Forward(numeric.Double, tinyInput())
	acts := n.BlockActs(exec)
	if len(acts) != 2 {
		t.Fatalf("BlockActs len = %d, want 2", len(acts))
	}
	// Block 0 ends after pool1 (layer 2); block 1 ends at fc2 (layer 3,
	// softmax excluded).
	if acts[0] != exec.Acts[2] {
		t.Error("block 0 should end at pool1")
	}
	if acts[1] != exec.Acts[3] {
		t.Error("block 1 should end at fc2, not softmax")
	}
	ranges := n.BlockRanges(exec)
	for i, r := range ranges {
		if r.Min > r.Max {
			t.Errorf("range %d inverted: %+v", i, r)
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Min: -1, Max: 2}
	for v, want := range map[float64]bool{-1: true, 0: true, 2: true, -1.01: false, 2.01: false} {
		if got := r.Contains(v); got != want {
			t.Errorf("Contains(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestLayerDistances(t *testing.T) {
	n := tinyNet()
	in := tinyInput()
	a := n.Forward(numeric.Double, in)
	ds := n.LayerDistances(a, a)
	for i, d := range ds {
		if d != 0 {
			t.Errorf("self distance at block %d = %v", i, d)
		}
	}
	fault := &layers.Fault{OutputIndex: 0, MACStep: 0, Target: layers.TargetAccum, Bit: 62}
	b := n.ForwardFrom(numeric.Double, a, 0, fault)
	ds = n.LayerDistances(a, b)
	if ds[0] == 0 {
		t.Error("faulted block distance should be nonzero")
	}
}

func TestForwardStoredQuantizesBoundaries(t *testing.T) {
	n := tinyNet()
	in := tinyInput()
	exec := n.ForwardStored(numeric.Double, numeric.Float16, in)
	// Every captured activation must be representable in the storage
	// format (except the final softmax, which runs on the host).
	for i, act := range exec.Acts {
		if n.Layers[i].Kind() == layers.Softmax {
			continue
		}
		for j, v := range act.Data {
			if q := numeric.Float16.Quantize(v); q != v {
				t.Fatalf("act[%d][%d] = %v not FLOAT16-representable", i, j, v)
			}
		}
	}
	// With an identical storage format the run matches plain Forward.
	plain := n.Forward(numeric.Float16, in)
	stored := n.ForwardStored(numeric.Float16, numeric.Float16, in)
	for i := range plain.Output().Data {
		if plain.Output().Data[i] != stored.Output().Data[i] {
			t.Fatal("identity storage diverges from plain Forward")
		}
	}
}

func TestForwardStoredFromInputMatchesFull(t *testing.T) {
	n := tinyNet()
	in := tinyInput()
	golden := n.ForwardStored(numeric.Float, numeric.Float16, in)
	// Resuming at layer 0 with the unmodified input reproduces golden.
	resumed := n.ForwardStoredFromInput(numeric.Float, numeric.Float16, golden, 0, in)
	for i := range golden.Output().Data {
		if resumed.Output().Data[i] != golden.Output().Data[i] {
			t.Fatal("stored resume diverged from golden")
		}
	}
	// A corrupted stored word changes the output path.
	corrupted := in.Clone()
	corrupted.Data[3] = numeric.Float16.FlipBit(numeric.Float16.Quantize(corrupted.Data[3]), 14)
	faulty := n.ForwardStoredFromInput(numeric.Float, numeric.Float16, golden, 0, corrupted)
	diff := false
	for i := range golden.Acts[0].Data {
		if faulty.Acts[0].Data[i] != golden.Acts[0].Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("corrupted stored input had no effect")
	}
}
