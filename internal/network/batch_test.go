package network_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/numeric"
)

// TestInjectionBatchMatchesForwardFrom requires batch execution to be
// bit-identical to per-injection ForwardFrom for CONV and FC fault sites,
// with the pre-quantized-input fast path both engaged (large expected
// group) and disengaged (expected 0).
func TestInjectionBatchMatchesForwardFrom(t *testing.T) {
	net := models.Build("ConvNet")
	in := models.InputFor("ConvNet", 3)
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		golden := net.Forward(dt, in)
		rng := rand.New(rand.NewSource(77))
		for _, layerIdx := range net.MACLayerIndices() {
			l := net.Layers[layerIdx]
			outs := golden.Acts[layerIdx].Shape.Elems()
			chain := l.(interface{ MACChainLen() int }).MACChainLen()
			for _, expected := range []int{0, 1 << 20} {
				batch := net.NewInjectionBatch(dt, golden, layerIdx, expected)
				for k := 0; k < 8; k++ {
					f := layers.Fault{
						OutputIndex: rng.Intn(outs),
						MACStep:     rng.Intn(chain),
						Target:      layers.Target(rng.Intn(int(layers.NumTargets))),
						Bit:         rng.Intn(dt.Width()),
					}
					fRef := f
					got := batch.Run(&f)
					want := net.ForwardFrom(dt, golden, layerIdx, &fRef)
					if !f.Applied || !fRef.Applied {
						t.Fatalf("%s layer %d: fault not applied", dt, layerIdx)
					}
					if got.Masked != want.Masked {
						t.Fatalf("%s layer %d: masked flag diverged", dt, layerIdx)
					}
					for li := range got.Acts {
						for e := range got.Acts[li].Data {
							if math.Float64bits(got.Acts[li].Data[e]) != math.Float64bits(want.Acts[li].Data[e]) {
								t.Fatalf("%s layer %d expected=%d: act[%d][%d] diverged: %v vs %v",
									dt, layerIdx, expected, li, e, got.Acts[li].Data[e], want.Acts[li].Data[e])
							}
						}
					}
				}
			}
		}
	}
}

func TestWeightsHashStability(t *testing.T) {
	a, b := models.Build("AlexNet"), models.Build("AlexNet")
	if a.WeightsHash() != b.WeightsHash() {
		t.Fatal("two identical builds hash differently")
	}
	if models.Build("AlexNet").WeightsHash() == models.Build("CaffeNet").WeightsHash() {
		t.Fatal("different networks share a hash")
	}
	h0 := b.WeightsHash()
	for _, l := range b.Layers {
		if conv, ok := l.(*layers.ConvLayer); ok {
			conv.Weights[0] += 1e-9
			break
		}
	}
	if b.WeightsHash() == h0 {
		t.Fatal("weight mutation did not change the hash")
	}
}

func TestWeightsHashKeysGoldenEquivalence(t *testing.T) {
	// The golden-cache contract: equal hash => bit-identical golden runs.
	a, b := models.Build("NiN"), models.Build("NiN")
	if a.WeightsHash() != b.WeightsHash() {
		t.Fatal("deterministic builds must hash equal")
	}
	in := models.InputFor("NiN", 5)
	ea, eb := a.Forward(numeric.Float16, in), b.Forward(numeric.Float16, in)
	for li := range ea.Acts {
		for e := range ea.Acts[li].Data {
			if math.Float64bits(ea.Acts[li].Data[e]) != math.Float64bits(eb.Acts[li].Data[e]) {
				t.Fatalf("equal-hash networks diverged at layer %d elem %d", li, e)
			}
		}
	}
}
