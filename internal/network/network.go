// Package network assembles layers into the feed-forward DNNs the paper
// studies and executes them under a chosen numeric format. It supports the
// fault-injection campaign's two performance-critical operations: capturing
// every intermediate activation tensor of a golden run, and resuming a
// faulty run from the faulted layer using the cached golden input — exact
// under the single-fault model and far cheaper than a full re-execution.
package network

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Network is an ordered pipeline of layers with a fixed input shape.
type Network struct {
	// Name is the model name ("AlexNet", "NiN", ...).
	Name string
	// InShape is the expected input feature-map shape.
	InShape tensor.Shape
	// Layers are executed in order.
	Layers []layers.Layer
	// Classes is the number of output candidates.
	Classes int

	// quant, when set, caches quantized layer parameters for every
	// forward pass of this network (see EnableQuantCache).
	quant atomic.Pointer[layers.QuantCache]
	// sparseCutoff holds the Float64bits of the sparse-propagation density
	// cutoff (see SetSparseDensityCutoff); zero means the layers package
	// default. Atomic so concurrent campaign shards may (re)set it.
	sparseCutoff atomic.Uint64
	// autoCutoff, when set, tunes the cutoff per layer from observed delta
	// densities (see EnableAutoSparseCutoff). An explicit sparseCutoff
	// override wins.
	autoCutoff atomic.Pointer[autoCutoffState]
}

// SetSparseDensityCutoff tunes the changed-set density at which the sparse
// downstream propagation of ForwardFrom falls back to dense per-layer
// re-execution (bit-identical either way; only throughput changes).
// Non-positive restores layers.DefaultSparseDensityCutoff.
func (n *Network) SetSparseDensityCutoff(v float64) {
	if v <= 0 {
		v = 0
	}
	n.sparseCutoff.Store(math.Float64bits(v))
}

// sparseDensityCutoff reads the tuned cutoff (0 = package default).
func (n *Network) sparseDensityCutoff() float64 {
	return math.Float64frombits(n.sparseCutoff.Load())
}

// EnableQuantCache attaches a quantized-parameter cache to the network:
// every subsequent forward pass reads CONV/FC weights and biases quantized
// once per numeric format instead of re-quantizing them per inference.
// Results are bit-identical. Campaigns enable it before injecting; code
// that mutates layer parameters afterwards must call InvalidateQuantCache.
func (n *Network) EnableQuantCache() {
	n.quant.CompareAndSwap(nil, layers.NewQuantCache())
}

// InvalidateQuantCache drops cached quantized parameters after a weight
// mutation (e.g. a training step). The cache stays enabled and refills
// lazily from the new values.
func (n *Network) InvalidateQuantCache() {
	if n.quant.Load() != nil {
		n.quant.Store(layers.NewQuantCache())
	}
}

// InvalidateLayerQuant drops the cached quantized parameters of a single
// layer after an in-place mutation of its weights (e.g. a Filter SRAM
// fault). Cheaper than InvalidateQuantCache when only one layer changed:
// every other layer keeps its entries. A no-op when no cache is attached.
func (n *Network) InvalidateLayerQuant(l layers.Layer) {
	if q := n.quant.Load(); q != nil {
		q.InvalidateLayer(l)
	}
}

// Validate checks that the layer shapes compose and that the final output
// is a Classes-long vector.
func (n *Network) Validate() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("network %s: %v", n.Name, r)
		}
	}()
	s := n.InShape
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	if s.Elems() != n.Classes {
		return fmt.Errorf("network %s: final shape %v has %d elems, want %d classes",
			n.Name, s, s.Elems(), n.Classes)
	}
	return nil
}

// HasSoftmax reports whether the final layer produces confidence scores.
// NiN has no softmax, so its output is a ranking without confidences
// (§4.1) and the SDC-10%/SDC-20% criteria do not apply.
func (n *Network) HasSoftmax() bool {
	if len(n.Layers) == 0 {
		return false
	}
	return n.Layers[len(n.Layers)-1].Kind() == layers.Softmax
}

// MACLayerIndices returns the indices of CONV and FC layers — the layers
// executed on the PE array and therefore the datapath fault sites.
func (n *Network) MACLayerIndices() []int {
	var idx []int
	for i, l := range n.Layers {
		if k := l.Kind(); k == layers.Conv || k == layers.FC {
			idx = append(idx, i)
		}
	}
	return idx
}

// NumBlocks returns the number of paper-style "layers": each CONV/FC and
// its attached POOL/ReLU/LRN post-ops form one block, matching the layer
// numbering of Fig. 6 and Table 4.
func (n *Network) NumBlocks() int { return len(n.MACLayerIndices()) }

// BlockOfLayer maps a layer index to its 0-based block number. Post-op
// layers belong to the block of the preceding CONV/FC. It panics for
// layers before the first block (none of the paper's networks start with a
// post-op).
func (n *Network) BlockOfLayer(layerIdx int) int {
	block := -1
	for i := 0; i <= layerIdx; i++ {
		if k := n.Layers[i].Kind(); k == layers.Conv || k == layers.FC {
			block++
		}
	}
	if block < 0 {
		panic(fmt.Sprintf("network %s: layer %d precedes the first CONV/FC block", n.Name, layerIdx))
	}
	return block
}

// blockEnds returns, for each block, the index of its last layer
// (excluding a trailing softmax, which reports confidences rather than
// ACTs).
func (n *Network) blockEnds() []int {
	var ends []int
	cur := -1
	for i, l := range n.Layers {
		switch l.Kind() {
		case layers.Conv, layers.FC:
			cur++
			ends = append(ends, i)
		case layers.Softmax:
			// Not part of any block.
		default:
			if cur >= 0 {
				ends[cur] = i
			}
		}
	}
	return ends
}

// Execution captures one forward pass: the input and the output of every
// layer.
type Execution struct {
	Input *tensor.Tensor
	// Acts[i] is the output tensor of Layers[i].
	Acts []*tensor.Tensor
	// Masked records that a fault injected into this execution was fully
	// absorbed before reaching the network output: from the masking point
	// on, Acts alias the golden tensors bit-identically. Classification,
	// spread and detector paths read the same values they would from a
	// dense re-execution; the flag only tells them no recomputation
	// happened.
	Masked bool
}

// Forward runs the whole network under format dt, capturing every layer
// output.
func (n *Network) Forward(dt numeric.Type, in *tensor.Tensor) *Execution {
	return n.ForwardParallel(dt, in, 0)
}

// ForwardParallel is Forward with the independent CONV/FC output loops
// split across up to workers goroutines (0 or 1 means serial). Output is
// bit-identical to Forward; campaigns use it so a golden pass over a
// single input still saturates the machine.
func (n *Network) ForwardParallel(dt numeric.Type, in *tensor.Tensor, workers int) *Execution {
	if in.Shape != n.InShape {
		panic(fmt.Sprintf("network %s: input shape %v, want %v", n.Name, in.Shape, n.InShape))
	}
	exec := &Execution{Input: in, Acts: make([]*tensor.Tensor, len(n.Layers))}
	ctx := &layers.Context{DType: dt, Quant: n.quant.Load(), Workers: workers}
	cur := in
	for i, l := range n.Layers {
		cur = l.Forward(ctx, cur)
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardFrom resumes execution at layer layerIdx using the golden run's
// cached input to that layer, injecting fault into it, then running the
// remaining layers fault-free. Under the paper's single transient fault
// model this is bit-identical to a full faulty run.
//
// When the faulted layer is a CONV/FC layer (always the case for datapath
// faults), the layer is not re-executed densely: the fault perturbs exactly
// one accumulation chain, so only output element fault.OutputIndex is
// recomputed and patched into a copy of the golden activation. The
// perturbation then delta-steps through every downstream layer that
// implements DeltaForwarder — the element-local post-ops (ReLU, POOL, LRN)
// and the MAC layers themselves, whose recompute is bounded by the
// receptive-field cone of the changed set (with a density-adaptive dense
// fallback per layer; see layers.Context.DenseCutoff). Each step
// bit-compares against the golden activation and re-shrinks the changed
// set; if it empties — a masked fault, the common case for low-order bits —
// all remaining layers are skipped and the execution aliases the golden
// activations with Masked set. See ForwardFromDense for the reference
// implementation this path is bit-identical to.
func (n *Network) ForwardFrom(dt numeric.Type, golden *Execution, layerIdx int, fault *layers.Fault) *Execution {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	ef, ok := n.Layers[layerIdx].(layers.ElementForwarder)
	if fault == nil || !ok {
		return n.ForwardFromDense(dt, golden, layerIdx, fault)
	}

	in := golden.Input
	if layerIdx > 0 {
		in = golden.Acts[layerIdx-1]
	}
	quant := n.quant.Load()
	faultyVal := ef.ForwardElement(&layers.Context{DType: dt, Fault: fault, Quant: quant}, in, fault.OutputIndex)
	return n.propagateElement(dt, golden, layerIdx, fault.OutputIndex, faultyVal, quant, nil)
}

// propagateElement finishes an incremental faulty run given the recomputed
// value of the faulted layer's output element: it patches the element into
// a copy of the golden activation and advances the perturbation through
// the downstream layers, short-circuiting to the golden tensors when the
// fault masks. Shared by ForwardFrom and InjectionBatch.Run. chains, when
// non-nil, is the caller's golden chain cache (see layers.ChainCache);
// batches pass theirs so repeated propagations replay only diverged chain
// suffixes, one-shot callers pass nil — bit-identical either way.
func (n *Network) propagateElement(dt numeric.Type, golden *Execution, layerIdx, outputIndex int, faultyVal float64, quant *layers.QuantCache, chains *layers.ChainCache) *Execution {
	goldenVal := golden.Acts[layerIdx].Data[outputIndex]

	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	// Layers before the fault are bit-identical to golden; share them.
	copy(exec.Acts[:layerIdx], golden.Acts[:layerIdx])

	if math.Float64bits(faultyVal) == math.Float64bits(goldenVal) {
		// Quantization/saturation absorbed the flip inside the faulted
		// chain: the faulty run is bit-identical to golden everywhere.
		copy(exec.Acts[layerIdx:], golden.Acts[layerIdx:])
		exec.Masked = true
		return exec
	}

	cur := golden.Acts[layerIdx].Clone()
	cur.Data[outputIndex] = faultyVal
	exec.Acts[layerIdx] = cur
	changed := []int{outputIndex}

	base := n.sparseDensityCutoff()
	auto := n.autoCutoff.Load()
	clean := &layers.Context{DType: dt, Quant: quant, DenseCutoff: base, Chains: chains}
	i := layerIdx + 1
	for ; i < len(n.Layers) && len(changed) > 0; i++ {
		df, ok := n.Layers[i].(layers.DeltaForwarder)
		if !ok {
			break
		}
		if auto != nil && base == 0 {
			clean.DenseCutoff = auto.observe(i, float64(len(changed))/float64(len(cur.Data)))
		}
		// Every tensor on the delta path is a layer output under dt (each
		// layer quantizes what it writes), so cur is its own pre-quantized
		// view: handing it to the MAC layers as QIn skips their whole-input
		// re-quantization bit-identically.
		clean.QIn = cur.Data
		clean.GoldenIn = golden.Acts[i-1].Data
		cur, changed = df.ForwardDelta(clean, cur, golden.Acts[i], changed)
		exec.Acts[i] = cur
	}
	clean.QIn = nil
	clean.GoldenIn = nil
	if len(changed) == 0 {
		// The perturbation died downstream (ReLU clamp, lost pool max, LRN
		// rounding, or a CONV/FC cone whose every recomputed element
		// requantized back to golden): everything from here on is
		// bit-identical to golden.
		copy(exec.Acts[i:], golden.Acts[i:])
		exec.Masked = true
		return exec
	}
	for ; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(clean, cur)
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardFromDense is the dense reference implementation of ForwardFrom:
// it re-executes the whole faulted layer and every downstream layer. It
// remains available as the bit-exactness oracle for the incremental engine
// and as the baseline for throughput benchmarks.
func (n *Network) ForwardFromDense(dt numeric.Type, golden *Execution, layerIdx int, fault *layers.Fault) *Execution {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	// Layers before the fault are bit-identical to golden; share them.
	copy(exec.Acts[:layerIdx], golden.Acts[:layerIdx])

	in := golden.Input
	if layerIdx > 0 {
		in = golden.Acts[layerIdx-1]
	}
	quant := n.quant.Load()
	cur := n.Layers[layerIdx].Forward(&layers.Context{DType: dt, Fault: fault, Quant: quant}, in)
	exec.Acts[layerIdx] = cur

	clean := &layers.Context{DType: dt, Quant: quant}
	for i := layerIdx + 1; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(clean, cur)
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardFromInput resumes execution at layer layerIdx but feeds it the
// given (possibly corrupted) input instead of the golden one — the model
// for a buffer fault in data resident in the global buffer, which every
// consumer of that fmap during the layer re-reads (§5.2.1).
func (n *Network) ForwardFromInput(dt numeric.Type, golden *Execution, layerIdx int, in *tensor.Tensor) *Execution {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	copy(exec.Acts[:layerIdx], golden.Acts[:layerIdx])
	clean := &layers.Context{DType: dt, Quant: n.quant.Load()}
	cur := in
	for i := layerIdx; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(clean, cur)
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardWithAct replaces the output of layer layerIdx with act and runs
// the remaining layers — the model for a buffer fault whose effect on the
// layer's own output has already been computed (e.g. an Img REG fault that
// corrupts a single output row).
func (n *Network) ForwardWithAct(dt numeric.Type, golden *Execution, layerIdx int, act *tensor.Tensor) *Execution {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	copy(exec.Acts[:layerIdx], golden.Acts[:layerIdx])
	exec.Acts[layerIdx] = act
	clean := &layers.Context{DType: dt, Quant: n.quant.Load()}
	cur := act
	for i := layerIdx + 1; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(clean, cur)
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardStored runs the network with every layer output quantized through
// a (typically narrower) storage format before the next layer consumes it —
// the reduced-precision storage protocol the paper cites as future work
// (§6.1, Judd et al.'s Proteus): data lives in buffers at the storage
// width and is unfolded to the compute width inside the datapath. The
// captured activations are the *stored* values, which is what buffer
// faults corrupt.
func (n *Network) ForwardStored(compute, storage numeric.Type, in *tensor.Tensor) *Execution {
	if in.Shape != n.InShape {
		panic(fmt.Sprintf("network %s: input shape %v, want %v", n.Name, in.Shape, n.InShape))
	}
	exec := &Execution{Input: in, Acts: make([]*tensor.Tensor, len(n.Layers))}
	ctx := &layers.Context{DType: compute}
	cur := in
	for i, l := range n.Layers {
		cur = l.Forward(ctx, cur)
		if l.Kind() != layers.Softmax { // softmax runs on the host, not from buffers
			cur.Apply(storage.Quantize)
		}
		exec.Acts[i] = cur
	}
	return exec
}

// ForwardStoredFromInput resumes a reduced-precision-storage execution at
// layer layerIdx with a (possibly corrupted) stored input.
func (n *Network) ForwardStoredFromInput(compute, storage numeric.Type, golden *Execution, layerIdx int, in *tensor.Tensor) *Execution {
	if layerIdx < 0 || layerIdx >= len(n.Layers) {
		panic(fmt.Sprintf("network %s: layer index %d out of range", n.Name, layerIdx))
	}
	exec := &Execution{Input: golden.Input, Acts: make([]*tensor.Tensor, len(n.Layers))}
	copy(exec.Acts[:layerIdx], golden.Acts[:layerIdx])
	ctx := &layers.Context{DType: compute}
	cur := in
	for i := layerIdx; i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(ctx, cur)
		if n.Layers[i].Kind() != layers.Softmax {
			cur.Apply(storage.Quantize)
		}
		exec.Acts[i] = cur
	}
	return exec
}

// Output returns the final activation tensor (confidences if the network
// ends in softmax, raw scores otherwise).
func (e *Execution) Output() *tensor.Tensor { return e.Acts[len(e.Acts)-1] }

// Top1 returns the index of the highest-ranked output candidate.
func (e *Execution) Top1() int { return e.Output().ArgTopK(1)[0] }

// TopK returns the indices of the k highest-ranked candidates.
func (e *Execution) TopK(k int) []int { return e.Output().ArgTopK(k) }

// BlockActs returns the activation tensor at the end of each paper-style
// block — the fmap data that would be resident in the accelerator's global
// buffer between layers, and the tensors the SED detector checks.
func (n *Network) BlockActs(e *Execution) []*tensor.Tensor {
	ends := n.blockEnds()
	acts := make([]*tensor.Tensor, len(ends))
	for i, li := range ends {
		acts[i] = e.Acts[li]
	}
	return acts
}

// Range is a closed interval of observed activation values.
type Range struct {
	Min, Max float64
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v float64) bool { return v >= r.Min && v <= r.Max }

// BlockRanges profiles the per-block activation value ranges of an
// execution — the Table 4 measurement.
func (n *Network) BlockRanges(e *Execution) []Range {
	acts := n.BlockActs(e)
	rs := make([]Range, len(acts))
	for i, a := range acts {
		min, max := a.MinMax()
		rs[i] = Range{Min: min, Max: max}
	}
	return rs
}

// LayerDistances returns the Euclidean distance between the block-end
// activations of two executions — the per-layer error-spread metric of
// Fig. 7.
func (n *Network) LayerDistances(a, b *Execution) []float64 {
	aa, bb := n.BlockActs(a), n.BlockActs(b)
	ds := make([]float64, len(aa))
	for i := range aa {
		ds[i] = tensor.EuclideanDistance(aa[i], bb[i])
	}
	return ds
}
