package faultinj

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataset"
	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

// smallNet is a compact conv+fc softmax network for fast campaigns.
func smallNet() *network.Network {
	conv := layers.NewConv("conv1", 1, 3, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = 0.15 * float64(i%7-3)
	}
	fc := layers.NewFC("fc2", 3*3*3, 6)
	for i := range fc.Weights {
		fc.Weights[i] = 0.1 * float64(i%5-2)
	}
	n := &network.Network{
		Name:    "small",
		InShape: tensor.Shape{C: 1, H: 6, W: 6},
		Classes: 6,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func smallInputs(n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		img := dataset.Image(dataset.CIFARLike, 6, i)
		// take one channel
		one := tensor.New(tensor.Shape{C: 1, H: 6, W: 6})
		copy(one.Data, img.Data[:36])
		ins[i] = one
	}
	return ins
}

func TestCampaignDeterministic(t *testing.T) {
	c1 := New(smallNet(), numeric.Float16, smallInputs(2))
	c2 := New(smallNet(), numeric.Float16, smallInputs(2))
	opt := Options{N: 200, Seed: 42, Workers: 4}
	r1, r2 := c1.Run(opt), c2.Run(opt)
	if r1.Counts != r2.Counts {
		t.Errorf("campaigns with the same seed diverged: %+v vs %+v", r1.Counts, r2.Counts)
	}
}

func TestCampaignCountsConsistency(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(3))
	r := c.Run(Options{N: 300, Seed: 7})
	if r.Counts.Trials != 300 {
		t.Fatalf("Trials = %d, want 300", r.Counts.Trials)
	}
	// Per-bit and per-block tallies partition the total.
	bitTotal, blockTotal := 0, 0
	for _, b := range r.PerBit {
		bitTotal += b.Trials
	}
	for _, b := range r.PerBlock {
		blockTotal += b.Trials
	}
	if bitTotal != 300 || blockTotal != 300 {
		t.Errorf("partitions: bits=%d blocks=%d, want 300", bitTotal, blockTotal)
	}
	targetTotal := 0
	for _, b := range r.PerTarget {
		targetTotal += b.Trials
	}
	if targetTotal != 300 {
		t.Errorf("target partition = %d, want 300", targetTotal)
	}
	// SDC-5 can never exceed SDC-1 (a top-1 outside golden top-5 implies a
	// top-1 change).
	if r.Counts.Hits[sdc.SDC5] > r.Counts.Hits[sdc.SDC1] {
		t.Errorf("SDC-5 hits %d exceed SDC-1 hits %d", r.Counts.Hits[sdc.SDC5], r.Counts.Hits[sdc.SDC1])
	}
}

func TestBitSelectorRoutesAllInjections(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	r := c.Run(Options{N: 100, Seed: 1, Selector: BitSelector(14)})
	if r.PerBit[14].Trials != 100 {
		t.Errorf("bit-14 trials = %d, want 100", r.PerBit[14].Trials)
	}
}

func TestBlockSelectorRoutesAllInjections(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	r := c.Run(Options{N: 100, Seed: 1, Selector: BlockSelector(1)})
	if r.PerBlock[1].Trials != 100 {
		t.Errorf("block-1 trials = %d, want 100", r.PerBlock[1].Trials)
	}
	if r.PerBlock[0].Trials != 0 {
		t.Errorf("block-0 trials = %d, want 0", r.PerBlock[0].Trials)
	}
}

func TestHighBitsMoreVulnerable(t *testing.T) {
	// The paper's central per-bit result: flipping the top exponent bit
	// causes far more SDCs than flipping a low mantissa bit.
	c := New(smallNet(), numeric.Float16, smallInputs(2))
	high := c.Run(Options{N: 400, Seed: 3, Selector: BitSelector(14)})
	low := c.Run(Options{N: 400, Seed: 3, Selector: BitSelector(0)})
	ph, pl := high.Counts.Probability(sdc.SDC1), low.Counts.Probability(sdc.SDC1)
	if ph <= pl {
		t.Errorf("high-bit SDC %.3f not above low-bit SDC %.3f", ph, pl)
	}
}

func TestTrackValues(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	r := c.Run(Options{N: 100, Seed: 5, TrackValues: 50})
	if len(r.Values) == 0 || len(r.Values) > 100 {
		t.Fatalf("tracked %d values", len(r.Values))
	}
	for _, v := range r.Values {
		if math.IsNaN(v.Golden) {
			t.Error("golden value is NaN")
		}
	}
}

func TestTrackSpread(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	r := c.Run(Options{N: 200, Seed: 6, TrackSpread: true})
	totalN := 0
	for b := range r.SpreadN {
		totalN += r.SpreadN[b]
		rate := r.SpreadRate(b)
		if rate < 0 || rate > 1 {
			t.Errorf("spread rate %v out of [0,1]", rate)
		}
	}
	if totalN != 200 {
		t.Errorf("spread samples = %d, want 200", totalN)
	}
}

func TestDetectorTally(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	// A detector that flags everything: recall 1, precision = 1 - benign
	// fraction.
	r := c.Run(Options{N: 200, Seed: 8, Detector: func(*network.Execution) bool { return true }})
	if r.Detection.Total != 200 {
		t.Fatalf("detector total = %d", r.Detection.Total)
	}
	if got := r.Detection.Recall(); got != 1 {
		t.Errorf("flag-all recall = %v, want 1", got)
	}
	wantPrec := 1 - float64(200-r.Detection.TotalSDC)/200
	if got := r.Detection.Precision(); math.Abs(got-wantPrec) > 1e-12 {
		t.Errorf("flag-all precision = %v, want %v", got, wantPrec)
	}
	// A detector that flags nothing: precision 1, recall 0 (if SDCs occurred).
	r2 := c.Run(Options{N: 200, Seed: 8, Detector: func(*network.Execution) bool { return false }})
	if got := r2.Detection.Precision(); got != 1 {
		t.Errorf("flag-none precision = %v, want 1", got)
	}
	if r2.Detection.TotalSDC > 0 && r2.Detection.Recall() != 0 {
		t.Errorf("flag-none recall = %v, want 0", r2.Detection.Recall())
	}
}

func TestDetectionMergeAndEdgeCases(t *testing.T) {
	var d Detection
	if d.Precision() != 1 || d.Recall() != 1 {
		t.Error("empty detection should be perfect by convention")
	}
	d.Merge(Detection{Total: 10, DetectedSDC: 3, DetectedBenign: 1, TotalSDC: 4})
	if d.Precision() != 0.9 || d.Recall() != 0.75 {
		t.Errorf("precision=%v recall=%v", d.Precision(), d.Recall())
	}
}

func TestCampaignOnRealModel(t *testing.T) {
	if testing.Short() {
		t.Skip("real-model campaign in -short mode")
	}
	net := models.Build("ConvNet")
	c := New(net, numeric.Fx32RB10, []*tensor.Tensor{models.InputFor("ConvNet", 0)})
	r := c.Run(Options{N: 60, Seed: 11})
	if r.Counts.Trials != 60 {
		t.Fatalf("Trials = %d", r.Counts.Trials)
	}
	// 32b_rb10 on ConvNet is the paper's most vulnerable configuration;
	// with 60 injections at least one should land in a high integer bit
	// and change the ranking. This is probabilistic but extremely safe.
	if r.Counts.Hits[sdc.SDC1] == 0 {
		t.Log("warning: no SDC-1 in 60 injections (possible but unlikely)")
	}
}

func TestNewPanicsWithoutInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without inputs did not panic")
		}
	}()
	New(smallNet(), numeric.Float16, nil)
}

func TestGoldenCaching(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(2))
	g0a := c.Golden(0)
	g0b := c.Golden(0)
	if g0a != g0b {
		t.Error("golden executions not cached")
	}
	if c.Profile() == nil {
		t.Error("profile not exposed")
	}
}

func TestUniformSelectorCoversTargets(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	r := c.Run(Options{N: 400, Seed: 13})
	for tgt, counts := range r.PerTarget {
		if counts.Trials == 0 {
			t.Errorf("latch target %v never injected", layers.Target(tgt))
		}
	}
	_ = accel.LatchesPerPE
}

// TestDenseMatchesIncremental runs the same campaign through the sparse
// incremental engine and the dense baseline for EVERY numeric format and
// requires bit-identical reports: identical SDC tallies in every
// breakdown, identical spread metrics, and bit-identical sampled
// activation values. This is the campaign-level closure of the per-layer
// ForwardDelta property tests.
func TestDenseMatchesIncremental(t *testing.T) {
	for _, dt := range numeric.Types {
		inc := New(smallNet(), dt, smallInputs(2))
		dense := New(smallNet(), dt, smallInputs(2))
		opt := Options{N: 400, Seed: 21, Workers: 2, TrackValues: 64, TrackSpread: true}
		ri := inc.Run(opt)
		optDense := opt
		optDense.Dense = true
		rd := dense.Run(optDense)
		// Masked is an incremental-engine diagnostic — the dense baseline
		// never proves masking — so it is the one field excluded from the
		// bit-identity requirement.
		if rd.Masked != 0 {
			t.Fatalf("%s: dense baseline reported %d masked faults", dt, rd.Masked)
		}
		rd.Masked = ri.Masked
		assertReportsBitIdentical(t, dt.String(), ri, rd)
	}
}

// TestSparseCutoffReportInvariance pins Options.SparseDensityCutoff as a
// throughput knob only: the campaign report is bit-identical whether the
// cutoff forces the dense fallback on every delta step (1e-9), forbids it
// entirely (1), or is left at the default (0).
func TestSparseCutoffReportInvariance(t *testing.T) {
	opt := Options{N: 300, Seed: 29, TrackValues: 32, TrackSpread: true}
	ref := New(smallNet(), numeric.Float16, smallInputs(2)).Run(opt)
	for _, cutoff := range []float64{1e-9, 1} {
		o := opt
		o.SparseDensityCutoff = cutoff
		r := New(smallNet(), numeric.Float16, smallInputs(2)).Run(o)
		assertReportsBitIdentical(t, fmt.Sprintf("cutoff=%g", cutoff), r, ref)
	}
}

// TestShardPartitionCoversEverySiteOnce is the property test behind
// RunShard's contract: for any (N, shards), the strided partition assigns
// every injection index to exactly one shard, so a distributed campaign
// injects exactly the same site multiset as a single-process one.
func TestShardPartitionCoversEverySiteOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(2000)
		shards := 1 + rng.Intn(32)
		covered := make([]int, n)
		for s := 0; s < shards; s++ {
			for i := s; i < n; i += shards {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d shards=%d: injection %d covered %d times", n, shards, i, c)
			}
		}
	}
}

// TestRunShardMergeMatchesRun requires the shard-order merge of every
// RunShard partial to be bit-identical to Run with Workers equal to the
// shard count — the determinism contract the distributed campaign service
// builds on — including the order-sensitive value samples and spread sums.
func TestRunShardMergeMatchesRun(t *testing.T) {
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		const shards = 5
		opt := Options{N: 203, Seed: 17, Workers: shards, TrackValues: 48, TrackSpread: true}

		whole := New(smallNet(), dt, smallInputs(2))
		want := whole.Run(opt)

		parts := make([]*Report, shards)
		sharded := New(smallNet(), dt, smallInputs(2))
		for s := 0; s < shards; s++ {
			parts[s] = sharded.RunShard(s, shards, opt)
		}
		got := MergeReports(parts)

		assertReportsBitIdentical(t, string(dt.String()), got, want)
	}
}

// TestReportJSONRoundTrip pins the wire format of shard reports: NaN and
// Inf faulty activations must survive the worker -> coordinator hop
// bit-exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(2))
	r := c.Run(Options{N: 150, Seed: 23, TrackValues: 32, TrackSpread: true})
	r.Values = append(r.Values, ValueRecord{Golden: 1.5, Faulty: math.NaN(), SDC: true},
		ValueRecord{Golden: -0, Faulty: math.Inf(-1)})

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	assertReportsBitIdentical(t, "roundtrip", &back, r)
}

// assertReportsBitIdentical compares every field of two reports bit-wise.
func assertReportsBitIdentical(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Counts != want.Counts || got.Masked != want.Masked {
		t.Fatalf("%s: counts diverged: %+v/%d vs %+v/%d", label, got.Counts, got.Masked, want.Counts, want.Masked)
	}
	if got.Detection != want.Detection {
		t.Fatalf("%s: detection diverged", label)
	}
	for b := range want.PerBit {
		if got.PerBit[b] != want.PerBit[b] {
			t.Fatalf("%s: per-bit %d diverged", label, b)
		}
	}
	for b := range want.PerBlock {
		if got.PerBlock[b] != want.PerBlock[b] {
			t.Fatalf("%s: per-block %d diverged", label, b)
		}
		if math.Float64bits(got.SpreadSum[b]) != math.Float64bits(want.SpreadSum[b]) || got.SpreadN[b] != want.SpreadN[b] {
			t.Fatalf("%s: spread at block %d diverged", label, b)
		}
	}
	for tg := range want.PerTarget {
		if got.PerTarget[tg] != want.PerTarget[tg] {
			t.Fatalf("%s: per-target %d diverged", label, tg)
		}
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: value sample sizes diverged: %d vs %d", label, len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		a, b := got.Values[i], want.Values[i]
		if math.Float64bits(a.Golden) != math.Float64bits(b.Golden) ||
			math.Float64bits(a.Faulty) != math.Float64bits(b.Faulty) || a.SDC != b.SDC {
			t.Fatalf("%s: value record %d diverged: %+v vs %+v", label, i, a, b)
		}
	}
	if (got.Strata == nil) != (want.Strata == nil) {
		t.Fatalf("%s: strata presence diverged: %v vs %v", label, got.Strata != nil, want.Strata != nil)
	}
	if want.Strata != nil {
		gs, ws := got.Strata, want.Strata
		if gs.Blocks != ws.Blocks || gs.Bits != ws.Bits {
			t.Fatalf("%s: strata dims diverged: %dx%d vs %dx%d", label, gs.Blocks, gs.Bits, ws.Blocks, ws.Bits)
		}
		for h := range ws.Counts {
			if math.Float64bits(gs.Weight[h]) != math.Float64bits(ws.Weight[h]) {
				t.Fatalf("%s: stratum %d weight diverged", label, h)
			}
			if gs.Counts[h] != ws.Counts[h] {
				t.Fatalf("%s: stratum %d counts diverged: %+v vs %+v", label, h, gs.Counts[h], ws.Counts[h])
			}
		}
		if (gs.SpreadSum == nil) != (ws.SpreadSum == nil) {
			t.Fatalf("%s: strata spread presence diverged", label)
		}
		for h := range ws.SpreadSum {
			if math.Float64bits(gs.SpreadSum[h]) != math.Float64bits(ws.SpreadSum[h]) || gs.SpreadN[h] != ws.SpreadN[h] {
				t.Fatalf("%s: stratum %d spread diverged", label, h)
			}
		}
	}
}
