// Stratified-sampling surface API. The masking-aware two-phase sampler
// (uniform pilot → Neyman-allocated main phase over the (block, bit)
// stratum grid; see the internal/engine package comment) is implemented
// once in internal/engine and shared with the Eyeriss buffer surface.
// This file re-exports the engine's types and helpers under their
// original faultinj names so the package's exported API — and every JSON
// shape the distributed campaign service ships — is unchanged by the
// engine extraction.
package faultinj

import "repro/internal/engine"

// SamplingMode selects how a campaign draws fault sites.
type SamplingMode = engine.SamplingMode

const (
	// SamplingUniform draws every site i.i.d. uniformly — the paper's
	// campaign and the default ("" behaves the same).
	SamplingUniform = engine.SamplingUniform
	// SamplingStratified runs the two-phase pilot + Neyman-allocation
	// campaign (see internal/engine).
	SamplingStratified = engine.SamplingStratified
)

// DefaultPilotN is the pilot budget a stratified campaign defaults to:
// one fifth of the total, at least 1.
func DefaultPilotN(n int) int { return engine.DefaultPilotN(n) }

// PilotBudget resolves a stratified campaign's pilot/main split: pilotN
// zero defaults to DefaultPilotN(n), clamped to n; negative requests a
// pilot-free prior-allocated campaign (Options.Prior), so the whole
// budget is main-phase.
func PilotBudget(n, pilotN int) (pilot, main int) { return engine.PilotBudget(n, pilotN) }

// HexFloats marshals a float64 slice as raw IEEE-754 bit patterns (hex
// strings), the same convention ValueRecord uses.
type HexFloats = engine.HexFloats

// StrataSummary carries the per-stratum state of a stratified campaign
// through shard reports; stratum h = block·Bits + bit.
type StrataSummary = engine.StrataSummary

// StratumTable is the deterministic main-phase allocation of a stratified
// campaign (see engine.StratumTable).
type StratumTable = engine.StratumTable

// BuildStratumTable computes the Neyman allocation of mainN injections
// from pooled pilot strata (see engine.BuildStratumTable).
func BuildStratumTable(s *StrataSummary, mainN int) *StratumTable {
	return engine.BuildStratumTable(s, mainN)
}

// EvalMode selects how a campaign evaluates its injections (see
// Options.Eval and engine.EvalMode).
type EvalMode = engine.EvalMode

const (
	// EvalPerBit draws an independent (site, bit) pair per injection — the
	// paper's design and the default.
	EvalPerBit = engine.EvalPerBit
	// EvalSiteScalar draws one site per format-width draw unit and
	// evaluates every bit position through scalar chain replays — the
	// bit-identity reference for EvalSiteBitPlane.
	EvalSiteScalar = engine.EvalSiteScalar
	// EvalSiteBitPlane is EvalSiteScalar with one bit-parallel chain replay
	// per site and an analytical masking pre-screen — bit-identical
	// reports, roughly an order of magnitude faster.
	EvalSiteBitPlane = engine.EvalSiteBitPlane
)

// DrawUnits returns the number of site draw units covering n injections in
// a site-draw evaluation mode (see engine.DrawUnits).
func DrawUnits(n, siteBits int) int { return engine.DrawUnits(n, siteBits) }

// BuildSiteStratumTable computes the per-block Neyman allocation of
// mainUnits site draw units from pooled pilot strata — the site-mode
// analogue of BuildStratumTable (see engine.BuildSiteStratumTable).
func BuildSiteStratumTable(s *StrataSummary, mainUnits int) *StratumTable {
	return engine.BuildSiteStratumTable(s, mainUnits)
}
