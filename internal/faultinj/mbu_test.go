package faultinj

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

// TestRandomSiteMBUSpans pins the MBU site-draw geometry: every drawn
// site carries the span width and a base bit that keeps the whole span
// inside the word.
func TestRandomSiteMBUSpans(t *testing.T) {
	dt := numeric.Fx16RB10
	p := accel.NewProfile(smallNet(), dt)
	rng := rand.New(rand.NewSource(3))
	const mbu = 3
	seenHigh := false
	for i := 0; i < 500; i++ {
		s := p.RandomSiteMBU(rng, mbu)
		if s.Fault.Width != mbu {
			t.Fatalf("site %v: Width = %d, want %d", s, s.Fault.Width, mbu)
		}
		if s.Fault.Bit < 0 || s.Fault.Bit+mbu > dt.Width() {
			t.Fatalf("site %v: span [%d, %d) leaves the %d-bit word", s, s.Fault.Bit, s.Fault.Bit+mbu, dt.Width())
		}
		if s.Fault.Bit == dt.Width()-mbu {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Errorf("500 draws never hit the top base bit %d", dt.Width()-mbu)
	}
	// mbu <= 1 must be exactly RandomSite (same PRNG stream, same sites).
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if a, b := p.RandomSiteMBU(r1, 1), p.RandomSite(r2); a != b {
			t.Fatalf("draw %d: RandomSiteMBU(1) = %v, RandomSite = %v", i, a, b)
		}
	}
}

// TestMBUCampaign runs a datapath multi-bit-upset campaign: base bits
// whose span would cross the word end are never drawn, stratified runs
// leave those strata empty, and the distributed shard-order merge stays
// bit-identical to the solo run.
func TestMBUCampaign(t *testing.T) {
	dt := numeric.Fx16RB10
	opt := Options{N: 120, Seed: 19, Workers: 2, MBU: 3}
	r := New(smallNet(), dt, smallInputs(2)).Run(opt)
	if r.Counts.Trials != 120 {
		t.Errorf("Trials = %d, want 120", r.Counts.Trials)
	}
	for bit := dt.Width() - opt.MBU + 1; bit < dt.Width(); bit++ {
		if n := r.PerBit[bit].Trials; n != 0 {
			t.Errorf("base bit %d got %d trials; MBU span would cross the word end", bit, n)
		}
	}

	// Stratified MBU campaigns must leave the top MBU-1 base-bit strata
	// empty: their population weight is zero.
	sopt := opt
	sopt.Sampling = SamplingStratified
	sopt.PilotN = 32
	sr := New(smallNet(), dt, smallInputs(2)).Run(sopt)
	if sr.Strata == nil {
		t.Fatal("no strata")
	}
	width := dt.Width()
	blocks := len(sr.Strata.Counts) / width
	for blk := 0; blk < blocks; blk++ {
		for bit := width - opt.MBU + 1; bit < width; bit++ {
			if n := sr.Strata.Counts[blk*width+bit].Trials; n != 0 {
				t.Errorf("stratum (%d,%d) got %d trials; MBU span would cross the word end", blk, bit, n)
			}
		}
	}

	// Distributed MBU == solo, for both sampling designs.
	for _, o := range []Options{opt, sopt} {
		sharded := New(smallNet(), dt, smallInputs(2))
		parts := []*Report{sharded.RunShard(0, 2, o), sharded.RunShard(1, 2, o)}
		assertReportsBitIdentical(t, "mbu distributed", MergeReports(parts), New(smallNet(), dt, smallInputs(2)).Run(o))
	}
}

func TestMBURejectsSiteModes(t *testing.T) {
	c := New(smallNet(), numeric.Fx16RB10, smallInputs(1))
	defer func() {
		if recover() == nil {
			t.Error("MBU + site mode did not panic")
		}
	}()
	c.Run(Options{N: 8, Seed: 1, MBU: 2, Eval: EvalSiteScalar})
}

func TestMBUWiderThanWordRejected(t *testing.T) {
	c := New(smallNet(), numeric.Fx16RB10, smallInputs(1))
	defer func() {
		if recover() == nil {
			t.Error("MBU wider than the word did not panic")
		}
	}()
	c.Run(Options{N: 8, Seed: 1, MBU: 17})
}

func TestMBURejectsCustomSelector(t *testing.T) {
	c := New(smallNet(), numeric.Fx16RB10, smallInputs(1))
	defer func() {
		if recover() == nil {
			t.Error("MBU + custom Selector did not panic")
		}
	}()
	c.Run(Options{N: 8, Seed: 1, MBU: 2, Selector: BitSelector(0)})
}

// FuzzMBUMaskedSoundness re-simulates multi-bit injections through the
// dense per-layer oracle: whenever the incremental engine claims a
// multi-bit flip masked (the recomputed chain output matched golden, so
// every downstream tensor aliases golden instead of being re-executed),
// the dense re-execution must agree bit for bit — and the masked run must
// classify exactly as golden.
func FuzzMBUMaskedSoundness(f *testing.F) {
	dt := numeric.Fx16RB10
	net := smallNet()
	net.EnableQuantCache()
	in := smallInputs(1)[0]
	g := net.Forward(dt, in)
	goldenOut := sdc.Classify(net, g, g)
	macLayers := []int{0, 3} // conv1, fc2

	f.Add(0, 0, 0, 0, 0, 2)
	f.Add(1, 5, 3, 2, 7, 3)
	f.Add(0, 100, 8, 3, 13, 3)
	f.Fuzz(func(t *testing.T, layerSel, outIdx, macStep, targetInt, bit, width int) {
		li := macLayers[((layerSel%2)+2)%2]
		outs := g.Acts[li].Shape.Elems()
		var chain int
		switch l := net.Layers[li].(type) {
		case *layers.ConvLayer:
			chain = l.MACChainLen()
		case *layers.FCLayer:
			chain = l.MACChainLen()
		}
		nt := int(layers.NumTargets)
		width = ((width%dt.Width())+dt.Width())%dt.Width() + 1
		span := dt.Width() - width + 1
		fault := layers.Fault{
			OutputIndex: ((outIdx % outs) + outs) % outs,
			MACStep:     ((macStep % chain) + chain) % chain,
			Target:      layers.Target(((targetInt % nt) + nt) % nt),
			Bit:         ((bit % span) + span) % span,
			Width:       width,
		}

		inc := fault
		faulty := net.ForwardFrom(dt, g, li, &inc)
		den := fault
		dense := net.ForwardFromDense(dt, g, li, &den)
		if inc.Applied != den.Applied {
			t.Fatalf("fault %+v: incremental applied=%v, dense applied=%v", fault, inc.Applied, den.Applied)
		}
		final := len(faulty.Acts) - 1
		for i := range faulty.Acts[final].Data {
			if math.Float64bits(faulty.Acts[final].Data[i]) != math.Float64bits(dense.Acts[final].Data[i]) {
				t.Fatalf("fault %+v: incremental and dense outputs diverge at %d", fault, i)
			}
		}
		if !faulty.Masked {
			return
		}
		// Masked claim: the whole run must be bit-identical to golden.
		for i := range faulty.Acts[final].Data {
			if math.Float64bits(faulty.Acts[final].Data[i]) != math.Float64bits(g.Acts[final].Data[i]) {
				t.Fatalf("masked multi-bit fault %+v reached the output at %d", fault, i)
			}
		}
		if out := sdc.Classify(net, g, faulty); out != goldenOut {
			t.Fatalf("masked multi-bit fault %+v classified %+v, want golden %+v", fault, out, goldenOut)
		}
	})
}
