package faultinj

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

// z99 is the two-sided 99% normal quantile the unbiasedness test uses.
const z99 = 2.5758293035489004

func TestPilotBudget(t *testing.T) {
	cases := []struct {
		n, pilotN, wantPilot, wantMain int
	}{
		{1000, 0, 200, 800}, // default: n/5
		{1000, 300, 300, 700},
		{1000, 5000, 1000, 0}, // clamped to n
		{3, 0, 1, 2},          // DefaultPilotN floor
		{1, 0, 1, 0},
	}
	for _, tc := range cases {
		pilot, main := PilotBudget(tc.n, tc.pilotN)
		if pilot != tc.wantPilot || main != tc.wantMain {
			t.Errorf("PilotBudget(%d,%d) = (%d,%d), want (%d,%d)",
				tc.n, tc.pilotN, pilot, main, tc.wantPilot, tc.wantMain)
		}
	}
}

// pilotSummary builds a 2-block x 4-bit summary with a hand-chosen pilot:
// stratum (0,3) saw SDC activity, everything else was masked, and stratum
// (1,0) has zero weight (never sampleable).
func pilotSummary() *StrataSummary {
	const blocks, bits = 2, 4
	s := &StrataSummary{
		Blocks: blocks,
		Bits:   bits,
		Weight: make(HexFloats, blocks*bits),
		Counts: make([]sdc.Counts, blocks*bits),
	}
	for h := range s.Weight {
		s.Weight[h] = 1.0 / float64(blocks*bits)
	}
	s.Weight[bits] = 0 // stratum (1,0) excluded from the design
	for h := range s.Counts {
		if s.Weight[h] == 0 {
			continue
		}
		s.Counts[h].Trials = 10
		for _, k := range sdc.Kinds {
			s.Counts[h].DefinedTrials[k] = 10
		}
	}
	active := 0*4 + 3
	s.Counts[active].Hits[sdc.SDC1] = 5
	return s
}

func TestBuildStratumTableAllocation(t *testing.T) {
	s := pilotSummary()
	const mainN = 100
	tab := BuildStratumTable(s, mainN)

	total := 0
	for h, a := range tab.Alloc {
		if a < 0 {
			t.Fatalf("stratum %d has negative allocation %d", h, a)
		}
		if s.Weight[h] == 0 && a != 0 {
			t.Errorf("zero-weight stratum %d allocated %d injections", h, a)
		}
		if s.Weight[h] > 0 && a < 1 {
			t.Errorf("stratum %d below the representation floor: %d", h, a)
		}
		total += a
	}
	if total != mainN {
		t.Fatalf("allocation sums to %d, want %d", total, mainN)
	}
	// Neyman: the stratum with pilot SDC activity is the high-variance one
	// and must receive more than any fully masked stratum.
	active := 0*4 + 3
	for h, a := range tab.Alloc {
		if h != active && s.Weight[h] > 0 && a >= tab.Alloc[active] {
			t.Errorf("masked stratum %d allocation %d not below active stratum's %d",
				h, a, tab.Alloc[active])
		}
	}
}

func TestBuildStratumTableDeterministic(t *testing.T) {
	a := BuildStratumTable(pilotSummary(), 97)
	b := BuildStratumTable(pilotSummary(), 97)
	for h := range a.Alloc {
		if a.Alloc[h] != b.Alloc[h] {
			t.Fatalf("allocation diverged at stratum %d: %d vs %d", h, a.Alloc[h], b.Alloc[h])
		}
	}
}

func TestStratumTableMapping(t *testing.T) {
	tab := BuildStratumTable(pilotSummary(), 53)
	seen := make([]int, len(tab.Alloc))
	for j := 0; j < tab.MainN; j++ {
		block, bit := tab.Stratum(j)
		if block < 0 || block >= tab.Blocks || bit < 0 || bit >= tab.Bits {
			t.Fatalf("Stratum(%d) = (%d,%d) out of grid", j, block, bit)
		}
		seen[block*tab.Bits+bit]++
	}
	for h := range seen {
		if seen[h] != tab.Alloc[h] {
			t.Fatalf("stratum %d drawn %d times, allocated %d", h, seen[h], tab.Alloc[h])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Stratum(MainN) did not panic")
		}
	}()
	tab.Stratum(tab.MainN)
}

func TestStratifiedBudgetAndWeights(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(2))
	const n = 500
	r := c.Run(Options{N: n, Seed: 31, Workers: 3, Sampling: SamplingStratified})
	if r.Counts.Trials != n {
		t.Fatalf("Trials = %d, want %d", r.Counts.Trials, n)
	}
	if r.Strata == nil {
		t.Fatal("stratified run produced no strata summary")
	}
	total, mass := 0, 0.0
	for h := range r.Strata.Counts {
		total += r.Strata.Counts[h].Trials
		mass += r.Strata.Weight[h]
	}
	if total != n {
		t.Errorf("strata trials sum to %d, want %d", total, n)
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("stratum weights sum to %v, want 1", mass)
	}
}

// TestStratifiedUnbiased is the acceptance property: for every numeric
// format, the stratified campaign's Horvitz–Thompson SDC-1 estimate must
// agree with the uniform campaign's estimate of the same quantity within
// the pooled 99% interval — reweighting undoes the deliberately skewed
// allocation.
func TestStratifiedUnbiased(t *testing.T) {
	for _, dt := range numeric.Types {
		const n = 2400
		uni := New(smallNet(), dt, smallInputs(2)).Run(Options{N: n, Seed: 37, Workers: 4})
		str := New(smallNet(), dt, smallInputs(2)).Run(Options{N: n, Seed: 37, Workers: 4, Sampling: SamplingStratified})

		pu, ciu := uni.SDCEstimate(sdc.SDC1)
		ps, cis := str.SDCEstimate(sdc.SDC1)
		seu, ses := ciu/1.959963984540054, cis/1.959963984540054
		bound := z99*math.Sqrt(seu*seu+ses*ses) + 1e-9
		if diff := math.Abs(pu - ps); diff > bound {
			t.Errorf("%s: stratified SDC-1 %.4f vs uniform %.4f differ by %.4f, pooled 99%% bound %.4f",
				dt, ps, pu, diff, bound)
		}
	}
}

// TestStratifiedCINarrowerOnConvNet is the equal-budget efficiency claim:
// on the paper's ConvNet the stratified SDC-1 interval must be strictly
// narrower than the uniform one for every numeric format.
func TestStratifiedCINarrowerOnConvNet(t *testing.T) {
	if testing.Short() {
		t.Skip("ConvNet campaigns in -short mode")
	}
	for _, dt := range numeric.Types {
		const n = 3000
		net := models.Build("ConvNet")
		c := New(net, dt, []*tensor.Tensor{models.InputFor("ConvNet", 0)})
		c.Golden(0)
		uni := c.Run(Options{N: n, Seed: 1})
		str := c.Run(Options{N: n, Seed: 1, Sampling: SamplingStratified})
		_, ciu := uni.SDCEstimate(sdc.SDC1)
		_, cis := str.SDCEstimate(sdc.SDC1)
		if !(cis < ciu) {
			t.Errorf("%s: stratified CI %.5f not narrower than uniform %.5f at equal budget", dt, cis, ciu)
		}
	}
}

// TestStratifiedRunShardMergeMatchesRun extends the determinism contract
// to the two-phase design: the shard-order merge of stratified RunShard
// partials must be bit-identical to the solo stratified Run — including
// the per-stratum tallies — for S ∈ {1, 2, 7}.
func TestStratifiedRunShardMergeMatchesRun(t *testing.T) {
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		for _, shards := range []int{1, 2, 7} {
			opt := Options{N: 211, Seed: 41, Workers: shards, Sampling: SamplingStratified, TrackSpread: true}

			want := New(smallNet(), dt, smallInputs(2)).Run(opt)

			sharded := New(smallNet(), dt, smallInputs(2))
			parts := make([]*Report, shards)
			for s := 0; s < shards; s++ {
				parts[s] = sharded.RunShard(s, shards, opt)
			}
			got := MergeReports(parts)
			assertReportsBitIdentical(t, dt.String(), got, want)
		}
	}
}

// TestStratifiedPhaseShardsMatchRun exercises the coordinator's path
// directly: pilot shards, a table built from their merge, main shards under
// that table, everything merged in the interleaved pilot₀ ⊕ main₀ ⊕ … slot
// order — bit-identical to solo Run.
func TestStratifiedPhaseShardsMatchRun(t *testing.T) {
	const shards = 3
	opt := Options{N: 207, Seed: 43, Workers: shards, Sampling: SamplingStratified}

	want := New(smallNet(), numeric.Float16, smallInputs(2)).Run(opt)

	c := New(smallNet(), numeric.Float16, smallInputs(2))
	pilots := make([]*Report, shards)
	for s := 0; s < shards; s++ {
		pilots[s] = c.PilotShard(s, shards, opt)
	}
	_, mainN := PilotBudget(opt.N, opt.PilotN)
	table := BuildStratumTable(MergeReports(pilots).Strata, mainN)
	var slots []*Report
	for s := 0; s < shards; s++ {
		slots = append(slots, pilots[s], c.MainShard(s, shards, table, opt))
	}
	got := MergeReports(slots)
	assertReportsBitIdentical(t, "phase-sharded", got, want)
}

func TestStratifiedCustomSelectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("stratified run with custom selector did not panic")
		}
	}()
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	c.Run(Options{N: 50, Seed: 1, Sampling: SamplingStratified, Selector: BitSelector(3)})
}

func TestMainShardRejectsMismatchedTable(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(1))
	opt := Options{N: 100, Seed: 1, Sampling: SamplingStratified}
	pilot := c.PilotShard(0, 1, opt)
	table := BuildStratumTable(pilot.Strata, 17) // wrong MainN on purpose
	defer func() {
		if recover() == nil {
			t.Error("MainShard accepted a table for a different budget")
		}
	}()
	c.MainShard(0, 1, table, opt)
}

// TestStratifiedReportJSONRoundTrip pins the wire format of stratified
// shard reports: per-stratum weights travel as hex float bits and the
// whole report must survive the worker → coordinator hop bit-exactly.
func TestStratifiedReportJSONRoundTrip(t *testing.T) {
	c := New(smallNet(), numeric.Float16, smallInputs(2))
	r := c.Run(Options{N: 180, Seed: 47, Sampling: SamplingStratified, TrackSpread: true})
	if r.Strata == nil {
		t.Fatal("no strata on stratified report")
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	assertReportsBitIdentical(t, "stratified-roundtrip", &back, r)
}

func TestHexFloatsRoundTrip(t *testing.T) {
	in := HexFloats{0, math.Copysign(0, -1), 1.5, math.NaN(), math.Inf(1), math.Inf(-1), 0x1p-1074}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out HexFloats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Errorf("element %d: %x vs %x", i, math.Float64bits(out[i]), math.Float64bits(in[i]))
		}
	}
	if err := json.Unmarshal([]byte(`["zz"]`), &out); err == nil {
		t.Error("bad hex float bits did not error")
	}
}

// TestStratumTableJSONRoundTrip is the lease-serialization contract: a
// table shipped to a worker must reproduce the coordinator's allocation
// and stratum mapping exactly.
func TestStratumTableJSONRoundTrip(t *testing.T) {
	tab := BuildStratumTable(pilotSummary(), 64)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back StratumTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Blocks != tab.Blocks || back.Bits != tab.Bits || back.MainN != tab.MainN {
		t.Fatalf("dims diverged: blocks=%d bits=%d mainN=%d", back.Blocks, back.Bits, back.MainN)
	}
	for h := range tab.Alloc {
		if back.Alloc[h] != tab.Alloc[h] {
			t.Fatalf("alloc %d diverged", h)
		}
		if math.Float64bits(back.Weight[h]) != math.Float64bits(tab.Weight[h]) {
			t.Fatalf("weight %d diverged", h)
		}
	}
	for j := 0; j < tab.MainN; j++ {
		b1, bit1 := tab.Stratum(j)
		b2, bit2 := back.Stratum(j)
		if b1 != b2 || bit1 != bit2 {
			t.Fatalf("Stratum(%d) diverged after round-trip: (%d,%d) vs (%d,%d)", j, b1, bit1, b2, bit2)
		}
	}
}
