package faultinj

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
)

// stripPreMasked removes the bit-plane diagnostics before a bit-identity
// compare against the scalar reference, which never pre-screens. Every
// other field must match exactly.
func stripPreMasked(r *Report) {
	r.PreMasked = 0
	r.PreMaskedPerBit = nil
}

// TestSiteBitPlaneMatchesSiteScalar is the tentpole's central property:
// for every numeric format, the bit-parallel evaluation mode — one chain
// replay per site plus the analytical pre-screen — produces a report
// bit-identical to the per-bit scalar replay of the same site draws, with
// value samples, spread sums and strata included.
func TestSiteBitPlaneMatchesSiteScalar(t *testing.T) {
	for _, dt := range numeric.Types {
		for _, sampling := range []SamplingMode{SamplingUniform, SamplingStratified} {
			opt := Options{N: 260, Seed: 31, Workers: 2, TrackValues: 40, TrackSpread: true, Sampling: sampling}

			oScalar := opt
			oScalar.Eval = EvalSiteScalar
			want := New(smallNet(), dt, smallInputs(2)).Run(oScalar)

			oPlane := opt
			oPlane.Eval = EvalSiteBitPlane
			got := New(smallNet(), dt, smallInputs(2)).Run(oPlane)

			if got.PreMasked > got.Masked {
				t.Fatalf("%s/%s: PreMasked %d exceeds Masked %d", dt, sampling, got.PreMasked, got.Masked)
			}
			pre := 0
			for _, n := range got.PreMaskedPerBit {
				pre += n
			}
			if pre != got.PreMasked {
				t.Fatalf("%s/%s: PreMaskedPerBit sums to %d, PreMasked is %d", dt, sampling, pre, got.PreMasked)
			}
			stripPreMasked(got)
			assertReportsBitIdentical(t, fmt.Sprintf("%s/%s", dt, sampling), got, want)
		}
	}
}

// TestSiteModesShardMergeMatchesRun extends the RunShard determinism
// contract to the site-draw modes: for shard counts 1, 2 and 7, the
// shard-order merge of RunShard partials is bit-identical to Run, for both
// site modes and both sampling designs — the property the distributed
// campaign service (and its resume path) relies on.
func TestSiteModesShardMergeMatchesRun(t *testing.T) {
	for _, eval := range []EvalMode{EvalSiteScalar, EvalSiteBitPlane} {
		for _, sampling := range []SamplingMode{SamplingUniform, SamplingStratified} {
			for _, shards := range []int{1, 2, 7} {
				opt := Options{
					N: 203, Seed: 17, Workers: shards,
					TrackValues: 48, TrackSpread: true,
					Sampling: sampling, Eval: eval,
				}
				want := New(smallNet(), numeric.Fx16RB10, smallInputs(2)).Run(opt)

				sharded := New(smallNet(), numeric.Fx16RB10, smallInputs(2))
				parts := make([]*Report, shards)
				for s := 0; s < shards; s++ {
					parts[s] = sharded.RunShard(s, shards, opt)
				}
				got := MergeReports(parts)

				label := fmt.Sprintf("%s/%s/shards=%d", eval, sampling, shards)
				if got.PreMasked != want.PreMasked {
					t.Fatalf("%s: PreMasked diverged: %d vs %d", label, got.PreMasked, want.PreMasked)
				}
				stripPreMasked(got)
				stripPreMasked(want)
				assertReportsBitIdentical(t, label, got, want)
			}
		}
	}
}

// TestSiteModesWithDetector pins the detector path of the bit-plane mode:
// detectors must observe the real faulty execution of every injection
// (masked ones included), so the ReLU-kill pre-screen is disabled and
// product-masked bits synthesize the golden-aliased execution. Tally must
// be bit-identical to the scalar mode's.
func TestSiteModesWithDetector(t *testing.T) {
	det := func(e *network.Execution) bool { return e.Output().Data[0] > 0.1 }
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		oScalar := Options{N: 200, Seed: 23, Detector: det, Eval: EvalSiteScalar}
		want := New(smallNet(), dt, smallInputs(2)).Run(oScalar)

		oPlane := oScalar
		oPlane.Eval = EvalSiteBitPlane
		got := New(smallNet(), dt, smallInputs(2)).Run(oPlane)

		if got.PreMasked != 0 {
			t.Fatalf("%s: detector campaign pre-screened %d injections", dt, got.PreMasked)
		}
		assertReportsBitIdentical(t, dt.String(), got, want)
	}
}

// TestPreScreenSoundness is the fuzz pass behind the analytical pre-screen:
// for thousands of random sites across every format, every bit the
// pre-screen classifies as provably masked is re-checked by full scalar
// simulation, which must agree that the fault never reaches the output —
// and, for product-identity bits, that the faulted chain value is
// bit-identical to golden.
func TestPreScreenSoundness(t *testing.T) {
	for _, dt := range numeric.Types {
		c := New(smallNet(), dt, smallInputs(2))
		opt := Options{Eval: EvalSiteBitPlane}
		c.setup(&opt)
		width := dt.Width()
		rng := rand.New(rand.NewSource(int64(123 + width)))

		checked, masked := 0, 0
		for trial := 0; trial < 400; trial++ {
			site := c.Profile().RandomSiteNoBit(rng)
			input := trial % len(c.Inputs)
			golden := c.Golden(input)
			d := drawnUnit{site: site, nbits: width}
			batch := c.Net.NewInjectionBatch(c.DType, golden, site.Layer, width)
			gv := golden.Acts[site.Layer].Data[site.Fault.OutputIndex]

			pm, rk := c.prescreenMasks(batch, d, gv, false, 0)
			if pm&rk != 0 {
				t.Fatalf("%s: pre-screen masks overlap at %s", dt, site)
			}
			for b := 0; b < width; b++ {
				bit := uint64(1) << uint(b)
				if (pm|rk)&bit == 0 {
					continue
				}
				checked++
				fault := site.Fault
				fault.Bit = b
				faulty := batch.Run(&fault)
				if !faulty.Masked {
					t.Fatalf("%s: pre-screen claimed bit %d masked at %s, simulation disagrees", dt, b, site)
				}
				masked++
				if pm&bit != 0 {
					fv := faulty.Acts[site.Layer].Data[fault.OutputIndex]
					if math.Float64bits(fv) != math.Float64bits(gv) {
						t.Fatalf("%s: product-masked bit %d at %s changed the chain value", dt, b, site)
					}
				}
				out := sdc.Classify(c.Net, golden, faulty)
				ref := sdc.Classify(c.Net, golden, golden)
				if out != ref {
					t.Fatalf("%s: masked bit %d at %s classified differently from golden", dt, b, site)
				}
			}
		}
		if checked == 0 {
			t.Fatalf("%s: pre-screen never fired in 400 random sites", dt)
		}
		t.Logf("%s: %d pre-screened bits verified masked", dt, masked)
	}
}

// TestSiteModeDrawCoverage pins the draw-unit bookkeeping: a site-mode
// campaign with N injections runs exactly N injections, every unit's bits
// ascend 0..width-1, and a ragged final unit (N not a multiple of the
// width) evaluates only the low bits.
func TestSiteModeDrawCoverage(t *testing.T) {
	width := numeric.Float16.Width()
	n := 10*width + 3 // ragged tail
	r := New(smallNet(), numeric.Float16, smallInputs(1)).Run(Options{N: n, Seed: 9, Eval: EvalSiteBitPlane})
	if r.Counts.Trials != n {
		t.Fatalf("Trials = %d, want %d", r.Counts.Trials, n)
	}
	// Bits 0..2 appear 11 times (10 full units + the ragged tail), bits
	// 3..15 ten times.
	for b := 0; b < width; b++ {
		want := 10
		if b < 3 {
			want = 11
		}
		if r.PerBit[b].Trials != want {
			t.Fatalf("bit %d trials = %d, want %d", b, r.PerBit[b].Trials, want)
		}
	}
}

// TestSiteModeValidation pins the option combinations site modes reject.
func TestSiteModeValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"custom selector", Options{N: 10, Eval: EvalSiteBitPlane, Selector: BitSelector(3)}},
		{"dense", Options{N: 10, Eval: EvalSiteScalar, Dense: true}},
		{"unknown mode", Options{N: 10, Eval: EvalMode("site-nonsense")}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			New(smallNet(), numeric.Float16, smallInputs(1)).Run(tc.opt)
		}()
	}
}

// TestAutoCutoffReportInvariance extends the cutoff-invariance property to
// the per-layer auto-tuner: a campaign with the tuner active (the default
// when no explicit cutoff is set) must be bit-identical to explicit-cutoff
// runs of the same campaign.
func TestAutoCutoffReportInvariance(t *testing.T) {
	opt := Options{N: 300, Seed: 29, TrackValues: 32, TrackSpread: true}
	auto := New(smallNet(), numeric.Float16, smallInputs(2))
	ref := auto.Run(opt) // auto-tuner active
	if cuts := auto.Net.AutoSparseCutoffs(); cuts == nil {
		t.Fatal("auto cutoff tuner not enabled by default campaign setup")
	} else {
		for i, cu := range cuts {
			if cu != 0 && (cu < 0.4 || cu > 0.8) {
				t.Fatalf("layer %d tuned cutoff %v outside [0.4, 0.8]", i, cu)
			}
		}
	}
	for _, cutoff := range []float64{1e-9, 0.5, 1} {
		o := opt
		o.SparseDensityCutoff = cutoff
		r := New(smallNet(), numeric.Float16, smallInputs(2)).Run(o)
		assertReportsBitIdentical(t, fmt.Sprintf("auto-vs-cutoff=%g", cutoff), r, ref)
	}
}

// TestDrawUnits pins the unit arithmetic the engine, the campaign spec and
// the coordinator all share.
func TestDrawUnits(t *testing.T) {
	for _, tc := range []struct{ n, bits, want int }{
		{0, 16, 0}, {1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {203, 16, 13},
		{100, 0, 100}, // per-bit mode: unit == injection
		{64, 64, 1}, {65, 64, 2},
	} {
		if got := engine.DrawUnits(tc.n, tc.bits); got != tc.want {
			t.Errorf("DrawUnits(%d, %d) = %d, want %d", tc.n, tc.bits, got, tc.want)
		}
	}
}

// TestMaskedExecutionRetainsFaultedElement documents the execution shape
// PropagateShared's value-record synthesis relies on: a scalar masked run
// whose fault died downstream (not inside the chain) still reports the
// faulted element's recomputed value at the faulted layer.
func TestMaskedExecutionRetainsFaultedElement(t *testing.T) {
	net := smallNet()
	dt := numeric.Fx32RB26
	c := New(net, dt, smallInputs(1))
	opt := Options{}
	c.setup(&opt)
	golden := c.Golden(0)
	batch := net.NewInjectionBatch(dt, golden, 0, 4)
	// Bit 0 of the accumulator at the last MAC step: below the quantization
	// floor of nothing (fx keeps it), but a tiny delta that ReLU/pool
	// almost always masks downstream.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		site := c.Profile().RandomSiteNoBit(rng)
		if site.Layer != 0 {
			continue
		}
		fault := site.Fault
		fault.Bit = 0
		faulty := batch.Run(&fault)
		gv := golden.Acts[0].Data[fault.OutputIndex]
		fv := faulty.Acts[0].Data[fault.OutputIndex]
		if faulty.Masked && math.Float64bits(fv) != math.Float64bits(gv) {
			// Masked downstream, yet the faulted element keeps its
			// recomputed value — the property under test.
			exec, masked := batch.PropagateShared(fault.OutputIndex, fv)
			if !masked || exec != nil {
				t.Fatalf("PropagateShared disagreed with scalar masking at %s", site)
			}
			return
		}
	}
	t.Skip("no downstream-masked fault found in 200 draws")
}

// TestPlaneForwarderImplemented pins that both MAC layer kinds expose the
// bit-plane interface the campaign depends on.
func TestPlaneForwarderImplemented(t *testing.T) {
	net := smallNet()
	for _, l := range net.Layers {
		k := l.Kind()
		if k != layers.Conv && k != layers.FC {
			continue
		}
		if _, ok := l.(layers.PlaneForwarder); !ok {
			t.Errorf("%s does not implement PlaneForwarder", l.Name())
		}
	}
}
