// Site-draw evaluation modes: instead of drawing an independent (site, bit)
// pair per injection — the paper's design — a site-draw campaign draws one
// latch site per draw unit and evaluates every bit position of the format
// at that site. EvalSiteScalar replays the faulted accumulation chain once
// per bit (the reference); EvalSiteBitPlane replays it once per site,
// carrying one accumulator lane per bit (layers.PlaneForwarder), with an
// analytical pre-screen that proves bits masked — and tallies them exactly —
// without any replay. The two modes share the same PRNG stream and draw
// sequence and produce bit-identical reports; the bit-plane mode is the
// fast path, the scalar mode its exactness oracle.
package faultinj

import (
	"math"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

// drawnUnit is one site draw of a site-mode shard: nbits consecutive
// injections (one per bit position) evaluated at one latch site.
type drawnUnit struct {
	pos      int // shard-local unit sequence position
	injBase  int // shard-local injection index of bit 0
	inputIdx int
	site     accel.Site // Fault.Bit is the -1 "all bits" sentinel
	nbits    int
}

// runShardPhaseSites is runShardPhase for the site-draw evaluation modes:
// the phase's N injections are covered by DrawUnits(N, SiteBits) site
// draws, the shard strides over draw units, and each unit expands into
// nbits injections folded in ascending bit order. Structure mirrors
// runShardPhase: draw, group by (input, layer), execute, fold in draw
// order.
func (c *Campaign) runShardPhaseSites(shard, of int, opt Options, bits, blocks int, ph engine.Phase) *Report {
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*1_000_003 + ph.SeedSalt))
	valueBudget := 0
	if ph.Values && opt.TrackValues > 0 {
		valueBudget = (opt.TrackValues + of - 1) / of
	}

	// Phase 1: draw every site of the shard in sequence order. A site draw
	// consumes two PRNG values (MAC index, latch), exactly like the tail of
	// a per-bit draw; stratified main-phase units allocate over per-block
	// strata (the table's bit dimension is 1).
	units := engine.DrawUnits(ph.N, ph.SiteBits)
	var seq []drawnUnit
	totalInj := 0
	for u := shard; u < units; u += of {
		var site accel.Site
		if ph.Table != nil {
			block, _ := ph.Table.Stratum(u)
			site = c.profile.RandomSiteInBlockNoBit(rng, block)
		} else {
			site = c.profile.RandomSiteNoBit(rng)
		}
		nbits := ph.SiteBits
		if rem := ph.N - u*ph.SiteBits; rem < nbits {
			nbits = rem
		}
		seq = append(seq, drawnUnit{
			pos:      len(seq),
			injBase:  totalInj,
			inputIdx: (ph.InputBase + u) % len(c.Inputs),
			site:     site,
			nbits:    nbits,
		})
		totalInj += nbits
	}

	// Phase 2: group by (input, faulted layer), first-appearance order.
	type groupKey struct{ input, layer int }
	groups := make(map[groupKey][]drawnUnit)
	var order []groupKey
	for _, d := range seq {
		k := groupKey{d.inputIdx, d.site.Layer}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], d)
	}

	// Phase 3: execute each group through a shared batch.
	results := make([]injResult, totalInj)
	for _, k := range order {
		group := groups[k]
		golden := c.goldens[k.input]
		expected := 0
		for _, d := range group {
			expected += d.nbits
		}
		batch := c.Net.NewInjectionBatch(c.DType, golden, k.layer, expected)
		// maskedOut is the classification every masked injection of this
		// group shares: the faulty execution aliases the golden tensors, so
		// classifying golden against itself is the same pure computation.
		maskedOut := sdc.Classify(c.Net, golden, golden)
		for _, d := range group {
			if opt.Eval == EvalSiteBitPlane {
				c.runUnitPlane(batch, golden, d, opt, maskedOut, valueBudget, results)
			} else {
				c.runUnitScalar(batch, golden, d, opt, valueBudget, results)
			}
		}
	}

	// Phase 4: fold in draw order.
	return c.foldResults(results, opt, bits, blocks, ph)
}

// runUnitScalar evaluates one drawn site bit-by-bit through scalar chain
// replays — per injection this is exactly the legacy execution path, so it
// doubles as the bit-identity oracle for runUnitPlane.
func (c *Campaign) runUnitScalar(batch *network.InjectionBatch, golden *network.Execution, d drawnUnit, opt Options, valueBudget int, results []injResult) {
	block := c.profile.BlockOfSite(d.site)
	gv := golden.Acts[d.site.Layer].Data[d.site.Fault.OutputIndex]
	for b := 0; b < d.nbits; b++ {
		fault := d.site.Fault
		fault.Bit = b
		faulty := batch.Run(&fault)
		if !fault.Applied {
			panic("faultinj: selected fault site was not exercised: " + d.site.String())
		}
		res := injResult{
			masked: faulty.Masked,
			block:  block,
			bit:    b,
			target: fault.Target,
		}
		res.outcome = sdc.Classify(c.Net, golden, faulty)
		pos := d.injBase + b
		if pos < valueBudget {
			res.hasValue = true
			res.value = ValueRecord{
				Golden: gv,
				Faulty: faulty.Acts[d.site.Layer].Data[fault.OutputIndex],
				SDC:    res.outcome.Hit[sdc.SDC1],
			}
		}
		if opt.TrackSpread {
			res.spread = c.finalBlockSpread(golden, faulty)
		}
		if opt.Detector != nil {
			res.det = opt.Detector(faulty)
		}
		results[pos] = res
	}
}

// runUnitPlane evaluates one drawn site through the bit-parallel path:
// an analytical pre-screen classifies provably-masked bits without replay,
// one plane replay produces the faulty chain outputs of all remaining bits
// at once, and each surviving bit propagates downstream through the shared
// sparse path. Every per-injection result is bit-identical to
// runUnitScalar's.
func (c *Campaign) runUnitPlane(batch *network.InjectionBatch, golden *network.Execution, d drawnUnit, opt Options, maskedOut sdc.Outcome, valueBudget int, results []injResult) {
	block := c.profile.BlockOfSite(d.site)
	oi := d.site.Fault.OutputIndex
	step := d.site.Fault.MACStep
	target := d.site.Fault.Target
	gv := golden.Acts[d.site.Layer].Data[oi]

	full := ^uint64(0)
	if d.nbits < 64 {
		full = uint64(1)<<uint(d.nbits) - 1
	}

	pm, rk := c.prescreenMasks(batch, d, gv, opt.Detector != nil, valueBudget)

	// Distinct bits of one site frequently collapse to the same faulty
	// chain value (saturation clamps, overflow to infinity, shared rounding
	// absorption), and everything downstream of the faulted element —
	// classification, masking, spread, detector verdict — is a pure function
	// of (site, faulty value). Evaluate each distinct value once and reuse
	// the result for its duplicates; bit-identical by construction.
	type siteResult struct {
		fv      uint64
		masked  bool
		det     bool
		outcome sdc.Outcome
		spread  float64
	}
	var seen []siteResult

	// One chain replay covers every bit the pre-screen could not prove.
	live := full &^ pm &^ rk
	var vals [64]float64
	if live != 0 {
		pf := layers.PlaneFault{OutputIndex: oi, MACStep: step, Target: target, Bits: live}
		if g := batch.ForwardPlane(&pf, &vals); math.Float64bits(g) != math.Float64bits(gv) {
			panic("faultinj: plane replay diverged from the golden execution: " + d.site.String())
		}
	}

	for b := 0; b < d.nbits; b++ {
		bit := uint64(1) << uint(b)
		pos := d.injBase + b
		res := injResult{block: block, bit: b, target: target}
		switch {
		case pm&bit != 0:
			// Chain output bit-identical to golden: the scalar path would
			// take propagateElement's first branch and alias every tensor.
			res.masked = true
			res.outcome = maskedOut
			if pos < valueBudget {
				res.hasValue = true
				res.value = ValueRecord{Golden: gv, Faulty: gv, SDC: maskedOut.Hit[sdc.SDC1]}
			}
			if opt.Detector != nil {
				res.det = opt.Detector(batch.Propagate(oi, gv))
			}
		case rk&bit != 0:
			// Proven masked analytically; spread is exactly 0 and no value
			// or detector read exists (both gated off above).
			res.masked = true
			res.pre = true
			res.outcome = maskedOut
		default:
			fv := vals[b]
			fvBits := math.Float64bits(fv)
			cached := -1
			for s := range seen {
				if seen[s].fv == fvBits {
					cached = s
					break
				}
			}
			if cached >= 0 {
				m := &seen[cached]
				res.masked = m.masked
				res.outcome = m.outcome
				res.spread = m.spread
				res.det = m.det
			} else if opt.Detector != nil {
				// Detectors inspect the faulty execution, so masked runs
				// still need their (golden-aliased) tensors materialized.
				faulty := batch.Propagate(oi, fv)
				res.masked = faulty.Masked
				res.outcome = sdc.Classify(c.Net, golden, faulty)
				if opt.TrackSpread {
					res.spread = c.finalBlockSpread(golden, faulty)
				}
				res.det = opt.Detector(faulty)
			} else {
				exec, masked := batch.PropagateShared(oi, fv)
				if masked {
					res.masked = true
					res.outcome = maskedOut
				} else {
					res.outcome = sdc.Classify(c.Net, golden, exec)
					if opt.TrackSpread {
						res.spread = c.finalBlockSpread(golden, exec)
					}
				}
			}
			if cached < 0 {
				seen = append(seen, siteResult{
					fv: fvBits, masked: res.masked, det: res.det,
					outcome: res.outcome, spread: res.spread,
				})
			}
			if pos < valueBudget {
				// The faulted element of the scalar path's execution holds
				// the recomputed chain value whether or not the fault
				// masked downstream.
				res.hasValue = true
				res.value = ValueRecord{Golden: gv, Faulty: fv, SDC: res.outcome.Hit[sdc.SDC1]}
			}
		}
		results[pos] = res
	}
}

// prescreenMasks runs the analytical masking pre-screen for one drawn site
// and returns two disjoint bit masks of provably-masked flips:
//
// pm — product identity (operand and product latches): the flipped step
// product is bit-identical to the clean one (the flip fell below the
// quantization floor, was absorbed by saturation, or the operand multiplies
// a zero), so the faulted chain — and hence the whole run — is bit-identical
// to golden. Exact by construction: the compare runs on the exact per-bit
// products macFaulty would feed the chain.
//
// rk — ReLU sign-domain kill (fixed point only): fixed-point accumulation
// is exact-then-saturate, and saturation is 1-Lipschitz, so the faulty
// chain output can differ from golden by at most the fault's step
// perturbation Δ (|p′−p| for product-type flips, exactly
// 2^(bit−FractionBits) for accumulator flips). If the next layer is a ReLU
// and golden+Δ ≤ 0, both the golden and the faulty chain outputs are
// provably in the clamp domain: the ReLU emits bit-identical zeros and the
// fault is masked — counted exactly, with no replay. Floating-point formats
// get no such bound (a flip can overshoot any Δ), detector campaigns need
// the real execution, and value-sampled injections need the real faulty
// value, so those cases are left for simulation.
func (c *Campaign) prescreenMasks(batch *network.InjectionBatch, d drawnUnit, gv float64, detector bool, valueBudget int) (pm, rk uint64) {
	oi := d.site.Fault.OutputIndex
	step := d.site.Fault.MACStep
	target := d.site.Fault.Target
	dt := c.DType

	var prods [64]float64
	var cleanP float64
	if target != layers.TargetAccum {
		w, x := batch.StepOperands(oi, step)
		cleanP = dt.Mul(w, x)
		dt.FlipProducts(layers.FlipOperand(target), w, x, &prods)
		cb := math.Float64bits(cleanP)
		for b := 0; b < d.nbits; b++ {
			if math.Float64bits(prods[b]) == cb {
				pm |= uint64(1) << uint(b)
			}
		}
	}

	if !detector && !dt.IsFloat() &&
		d.site.Layer+1 < len(c.Net.Layers) && c.Net.Layers[d.site.Layer+1].Kind() == layers.ReLU {
		for b := 0; b < d.nbits; b++ {
			bit := uint64(1) << uint(b)
			if pm&bit != 0 || d.injBase+b < valueBudget {
				continue
			}
			var delta float64
			if target == layers.TargetAccum {
				delta = dt.FxFlipMagnitude(b)
			} else {
				delta = math.Abs(prods[b] - cleanP)
			}
			if gv+delta <= 0 {
				rk |= bit
			}
		}
	}
	return pm, rk
}

// finalBlockSpread is the Table 5 metric of one faulty execution: the
// fraction of final-block ACT elements that differ bit-wise from golden.
func (c *Campaign) finalBlockSpread(golden, faulty *network.Execution) float64 {
	gActs := c.Net.BlockActs(golden)
	fActs := c.Net.BlockActs(faulty)
	last := len(gActs) - 1
	mismatch := tensor.BitwiseMismatch(gActs[last], fActs[last])
	return float64(mismatch) / float64(gActs[last].Shape.Elems())
}
