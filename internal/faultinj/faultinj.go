// Package faultinj runs the paper's fault-injection campaigns: thousands
// of independent inferences, each with one transient single-bit fault in
// the accelerator datapath, classified against the fault-free execution
// (§4.4). Campaigns are deterministic (seeded), parallel (one worker per
// CPU by default) and cheap per injection: the golden execution per input
// is computed once, and each faulty run resumes from the faulted layer.
package faultinj

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/accel"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/tensor"
)

// Selector draws the next fault site for an injection run.
type Selector func(rng *rand.Rand, p *accel.Profile) accel.Site

// UniformSelector injects uniformly over every (MAC, latch, bit) of the
// network — the Fig. 3 campaign.
func UniformSelector(rng *rand.Rand, p *accel.Profile) accel.Site {
	return p.RandomSite(rng)
}

// BitSelector fixes the flipped bit position — the Fig. 4 campaign.
func BitSelector(bit int) Selector {
	return func(rng *rand.Rand, p *accel.Profile) accel.Site {
		return p.RandomSiteWithBit(rng, bit)
	}
}

// BlockSelector fixes the injected CONV/FC block — the Fig. 6 campaign.
func BlockSelector(block int) Selector {
	return func(rng *rand.Rand, p *accel.Profile) accel.Site {
		return p.RandomSiteInBlock(rng, block)
	}
}

// ValueRecord samples the faulted activation before and after the error —
// the Fig. 5 scatter data.
type ValueRecord struct {
	Golden, Faulty float64
	SDC            bool
}

// Detection tallies a symptom detector's verdicts against SDC-1 ground
// truth for the §6.2 precision/recall evaluation.
type Detection struct {
	// Total is the number of injections evaluated.
	Total int
	// DetectedSDC counts SDC-causing faults the detector flagged.
	DetectedSDC int
	// DetectedBenign counts benign faults the detector (wrongly) flagged.
	DetectedBenign int
	// TotalSDC counts all SDC-causing faults.
	TotalSDC int
}

// Merge combines detector tallies.
func (d *Detection) Merge(e Detection) {
	d.Total += e.Total
	d.DetectedSDC += e.DetectedSDC
	d.DetectedBenign += e.DetectedBenign
	d.TotalSDC += e.TotalSDC
}

// Precision implements the paper's definition: 1 − (benign faults flagged
// as SDC) / (faults injected).
func (d Detection) Precision() float64 {
	if d.Total == 0 {
		return 1
	}
	return 1 - float64(d.DetectedBenign)/float64(d.Total)
}

// Recall is (SDC-causing faults detected) / (SDC-causing faults).
func (d Detection) Recall() float64 {
	if d.TotalSDC == 0 {
		return 1
	}
	return float64(d.DetectedSDC) / float64(d.TotalSDC)
}

// Report aggregates one campaign.
type Report struct {
	// Counts is the overall SDC tally.
	Counts sdc.Counts
	// PerBit[b] tallies injections whose flipped bit was b.
	PerBit []sdc.Counts
	// PerBlock[i] tallies injections into paper-style block i.
	PerBlock []sdc.Counts
	// PerTarget tallies per ALU latch.
	PerTarget [layers.NumTargets]sdc.Counts
	// Values holds up to the requested number of activation samples.
	Values []ValueRecord
	// SpreadSum/SpreadN accumulate, per injected block, the fraction of
	// final-block ACT elements that differ bit-wise from golden — the
	// Table 5 propagation metric.
	SpreadSum []float64
	SpreadN   []int
	// Masked counts injections the incremental engine proved bit-clean
	// before the output (always 0 when Options.Dense, which never looks).
	Masked int
	// Detection tallies the optional symptom detector.
	Detection Detection
}

func newReport(bits, blocks int) *Report {
	return &Report{
		PerBit:    make([]sdc.Counts, bits),
		PerBlock:  make([]sdc.Counts, blocks),
		SpreadSum: make([]float64, blocks),
		SpreadN:   make([]int, blocks),
	}
}

// merge folds r2 into r.
func (r *Report) merge(r2 *Report) {
	r.Counts.Merge(r2.Counts)
	for i := range r.PerBit {
		r.PerBit[i].Merge(r2.PerBit[i])
	}
	for i := range r.PerBlock {
		r.PerBlock[i].Merge(r2.PerBlock[i])
		r.SpreadSum[i] += r2.SpreadSum[i]
		r.SpreadN[i] += r2.SpreadN[i]
	}
	for i := range r.PerTarget {
		r.PerTarget[i].Merge(r2.PerTarget[i])
	}
	r.Values = append(r.Values, r2.Values...)
	r.Detection.Merge(r2.Detection)
	r.Masked += r2.Masked
}

// SpreadRate returns the mean bit-wise mismatch fraction at the final
// block for faults injected into block i (Table 5).
func (r *Report) SpreadRate(block int) float64 {
	if r.SpreadN[block] == 0 {
		return 0
	}
	return r.SpreadSum[block] / float64(r.SpreadN[block])
}

// Options configures a campaign.
type Options struct {
	// N is the number of injections.
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Selector picks fault sites; UniformSelector when nil.
	Selector Selector
	// TrackValues, when positive, samples up to that many ValueRecords.
	TrackValues int
	// TrackSpread enables the Table 5 final-block mismatch metric.
	TrackSpread bool
	// Detector, when non-nil, is evaluated on every faulty execution for
	// the §6.2 precision/recall tally. It must be safe for concurrent use.
	Detector func(*network.Execution) bool
	// Workers caps the worker goroutines; NumCPU when zero.
	Workers int
	// Dense forces every injection through the dense per-layer
	// re-execution path (network.ForwardFromDense) and skips enabling the
	// quantized-parameter cache, so on a fresh network it reproduces the
	// seed implementation exactly. It exists as the baseline for
	// throughput benchmarks and as a debugging oracle; reports are
	// bit-identical either way.
	Dense bool
}

// Campaign binds a network, format and input set.
type Campaign struct {
	Net    *network.Network
	DType  numeric.Type
	Inputs []*tensor.Tensor

	profile *accel.Profile
	goldens []*network.Execution
	once    sync.Once
}

// New creates a campaign over the given inputs.
func New(net *network.Network, dt numeric.Type, inputs []*tensor.Tensor) *Campaign {
	if len(inputs) == 0 {
		panic("faultinj: campaign needs at least one input")
	}
	return &Campaign{Net: net, DType: dt, Inputs: inputs}
}

// prepare computes the fault-site profile and golden executions once.
// workers caps the total goroutines of the golden passes; 0 means NumCPU.
// When there are fewer inputs than workers, the surplus parallelism moves
// inside each forward pass (over CONV/FC output elements) so a
// single-input campaign still uses every core.
func (c *Campaign) prepare(workers int) {
	c.once.Do(func() {
		c.profile = accel.NewProfile(c.Net, c.DType)
		c.goldens = make([]*network.Execution, len(c.Inputs))
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		perInput := workers / len(c.Inputs)
		if perInput < 1 {
			perInput = 1
		}
		var wg sync.WaitGroup
		for i := range c.Inputs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c.goldens[i] = c.Net.ForwardParallel(c.DType, c.Inputs[i], perInput)
			}(i)
		}
		wg.Wait()
	})
}

// Profile exposes the fault-site geometry (after preparing it).
func (c *Campaign) Profile() *accel.Profile {
	c.prepare(0)
	return c.profile
}

// Golden exposes the cached golden execution for input i.
func (c *Campaign) Golden(i int) *network.Execution {
	c.prepare(0)
	return c.goldens[i]
}

// Run executes the campaign and aggregates its report.
func (c *Campaign) Run(opt Options) *Report {
	if !opt.Dense {
		// Quantize each layer's parameters once per campaign; every
		// worker (and the golden passes) shares the read-only result.
		c.Net.EnableQuantCache()
	}
	c.prepare(opt.Workers)
	if opt.Selector == nil {
		opt.Selector = UniformSelector
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > opt.N {
		workers = opt.N
	}
	if workers < 1 {
		workers = 1
	}

	blocks := c.profile.NumMACLayers()
	bits := c.DType.Width()
	reports := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reports[w] = c.runWorker(w, workers, opt, bits, blocks)
		}(w)
	}
	wg.Wait()

	total := newReport(bits, blocks)
	for _, r := range reports {
		total.merge(r)
	}
	return total
}

func (c *Campaign) runWorker(w, workers int, opt Options, bits, blocks int) *Report {
	rng := rand.New(rand.NewSource(opt.Seed + int64(w)*1_000_003))
	r := newReport(bits, blocks)
	valueBudget := 0
	if opt.TrackValues > 0 {
		valueBudget = (opt.TrackValues + workers - 1) / workers
	}

	for i := w; i < opt.N; i += workers {
		inputIdx := i % len(c.Inputs)
		golden := c.goldens[inputIdx]
		site := opt.Selector(rng, c.profile)
		fault := site.Fault // copy; Applied is per-run state
		var faulty *network.Execution
		if opt.Dense {
			faulty = c.Net.ForwardFromDense(c.DType, golden, site.Layer, &fault)
		} else {
			faulty = c.Net.ForwardFrom(c.DType, golden, site.Layer, &fault)
		}
		if !fault.Applied {
			panic("faultinj: selected fault site was not exercised: " + site.String())
		}
		if faulty.Masked {
			r.Masked++
		}

		outcome := sdc.Classify(c.Net, golden, faulty)
		r.Counts.Add(outcome)
		r.PerBit[site.Fault.Bit].Add(outcome)
		block := c.profile.BlockOfSite(site)
		r.PerBlock[block].Add(outcome)
		r.PerTarget[site.Fault.Target].Add(outcome)

		if valueBudget > 0 && len(r.Values) < valueBudget {
			gv := golden.Acts[site.Layer].Data[site.Fault.OutputIndex]
			fv := faulty.Acts[site.Layer].Data[site.Fault.OutputIndex]
			r.Values = append(r.Values, ValueRecord{Golden: gv, Faulty: fv, SDC: outcome.Hit[sdc.SDC1]})
		}

		if opt.TrackSpread {
			gActs := c.Net.BlockActs(golden)
			fActs := c.Net.BlockActs(faulty)
			last := len(gActs) - 1
			mismatch := tensor.BitwiseMismatch(gActs[last], fActs[last])
			r.SpreadSum[block] += float64(mismatch) / float64(gActs[last].Shape.Elems())
			r.SpreadN[block]++
		}

		if opt.Detector != nil {
			det := opt.Detector(faulty)
			r.Detection.Total++
			isSDC := outcome.Hit[sdc.SDC1]
			if isSDC {
				r.Detection.TotalSDC++
				if det {
					r.Detection.DetectedSDC++
				}
			} else if det {
				r.Detection.DetectedBenign++
			}
		}
	}
	return r
}
