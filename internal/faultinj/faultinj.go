// Package faultinj runs the paper's fault-injection campaigns: thousands
// of independent inferences, each with one transient single-bit fault in
// the accelerator datapath, classified against the fault-free execution
// (§4.4). Campaigns are deterministic (seeded), parallel (one worker per
// CPU by default) and cheap per injection: the golden execution per input
// is computed once, and each faulty run resumes from the faulted layer.
package faultinj

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/accel"
	"repro/internal/engine"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Selector draws the next fault site for an injection run.
type Selector func(rng *rand.Rand, p *accel.Profile) accel.Site

// UniformSelector injects uniformly over every (MAC, latch, bit) of the
// network — the Fig. 3 campaign.
func UniformSelector(rng *rand.Rand, p *accel.Profile) accel.Site {
	return p.RandomSite(rng)
}

// BitSelector fixes the flipped bit position — the Fig. 4 campaign.
func BitSelector(bit int) Selector {
	return func(rng *rand.Rand, p *accel.Profile) accel.Site {
		return p.RandomSiteWithBit(rng, bit)
	}
}

// BlockSelector fixes the injected CONV/FC block — the Fig. 6 campaign.
func BlockSelector(block int) Selector {
	return func(rng *rand.Rand, p *accel.Profile) accel.Site {
		return p.RandomSiteInBlock(rng, block)
	}
}

// ValueRecord samples the faulted activation before and after the error —
// the Fig. 5 scatter data.
type ValueRecord struct {
	Golden, Faulty float64
	SDC            bool
}

// valueRecordJSON carries a ValueRecord through JSON as raw IEEE-754 bit
// patterns: faulty activations are routinely NaN or ±Inf, which
// encoding/json rejects as numbers, and the distributed campaign service
// needs reports to round-trip bit-exactly between workers and the
// coordinator.
type valueRecordJSON struct {
	G   string `json:"g"`
	F   string `json:"f"`
	SDC bool   `json:"sdc,omitempty"`
}

// MarshalJSON implements json.Marshaler (see valueRecordJSON).
func (v ValueRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(valueRecordJSON{
		G:   strconv.FormatUint(math.Float64bits(v.Golden), 16),
		F:   strconv.FormatUint(math.Float64bits(v.Faulty), 16),
		SDC: v.SDC,
	})
}

// UnmarshalJSON implements json.Unmarshaler (see valueRecordJSON).
func (v *ValueRecord) UnmarshalJSON(data []byte) error {
	var j valueRecordJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	g, err := strconv.ParseUint(j.G, 16, 64)
	if err != nil {
		return fmt.Errorf("faultinj: bad golden value bits %q: %v", j.G, err)
	}
	f, err := strconv.ParseUint(j.F, 16, 64)
	if err != nil {
		return fmt.Errorf("faultinj: bad faulty value bits %q: %v", j.F, err)
	}
	v.Golden, v.Faulty, v.SDC = math.Float64frombits(g), math.Float64frombits(f), j.SDC
	return nil
}

// Detection tallies a symptom detector's verdicts against SDC-1 ground
// truth for the §6.2 precision/recall evaluation (see engine.Detection;
// the type lives in the shared engine because both fault surfaces embed
// it).
type Detection = engine.Detection

// Report aggregates one campaign.
type Report struct {
	// Counts is the overall SDC tally.
	Counts sdc.Counts
	// PerBit[b] tallies injections whose flipped bit was b.
	PerBit []sdc.Counts
	// PerBlock[i] tallies injections into paper-style block i.
	PerBlock []sdc.Counts
	// PerTarget tallies per ALU latch.
	PerTarget [layers.NumTargets]sdc.Counts
	// Values holds up to the requested number of activation samples.
	Values []ValueRecord
	// SpreadSum/SpreadN accumulate, per injected block, the fraction of
	// final-block ACT elements that differ bit-wise from golden — the
	// Table 5 propagation metric.
	SpreadSum []float64
	SpreadN   []int
	// Masked counts injections the incremental engine proved bit-clean
	// before the output (always 0 when Options.Dense, which never looks).
	Masked int
	// PreMasked counts the subset of Masked injections the analytical
	// pre-screen of the bit-parallel evaluation mode proved masked without
	// any chain replay or propagation (always 0 outside EvalSiteBitPlane).
	// Pre-screened injections tally into Masked, Counts and every other
	// accumulator exactly as simulated-masked ones do; this counter only
	// records how they were proven.
	PreMasked int `json:",omitempty"`
	// PreMaskedPerBit[b] splits PreMasked by flipped bit position; nil when
	// PreMasked is 0.
	PreMaskedPerBit []int `json:",omitempty"`
	// Detection tallies the optional symptom detector.
	Detection Detection
	// Strata carries the per-(block, bit) tallies and population weights of
	// a stratified campaign; nil for uniform campaigns. When present, the
	// raw Counts/PerBit/PerBlock fields are sample tallies under the
	// stratified design — biased toward high-variance strata by
	// construction — and SDCEstimate/SpreadRate apply the Horvitz–Thompson
	// reweighting that recovers unbiased uniform-design estimates.
	Strata *StrataSummary `json:",omitempty"`
}

func newReport(bits, blocks int) *Report {
	return &Report{
		PerBit:    make([]sdc.Counts, bits),
		PerBlock:  make([]sdc.Counts, blocks),
		SpreadSum: make([]float64, blocks),
		SpreadN:   make([]int, blocks),
	}
}

// NewReport allocates an empty report for a campaign with the given bit
// width and paper-style block count — the dimensions every shard report of
// one campaign shares, and the shape Merge requires of both operands.
func NewReport(bits, blocks int) *Report { return newReport(bits, blocks) }

// Merge folds r2 into r. Both reports must have the same dimensions (bit
// width and block count). Counts merge commutatively; Values and the
// spread accumulators are order-sensitive, so distributed campaigns must
// merge shard reports in shard order to stay bit-identical to a
// single-process run (see MergeReports).
func (r *Report) Merge(r2 *Report) { r.merge(r2) }

// MergeReports folds per-shard reports — indexed and merged in shard
// order — into one campaign report. Nil entries (skipped shards) are
// ignored; the result is nil when every entry is nil.
func MergeReports(rs []*Report) *Report {
	var total *Report
	for _, r := range rs {
		if r == nil {
			continue
		}
		if total == nil {
			total = newReport(len(r.PerBit), len(r.PerBlock))
		}
		total.merge(r)
	}
	return total
}

// merge folds r2 into r.
func (r *Report) merge(r2 *Report) {
	r.Counts.Merge(r2.Counts)
	for i := range r.PerBit {
		r.PerBit[i].Merge(r2.PerBit[i])
	}
	for i := range r.PerBlock {
		r.PerBlock[i].Merge(r2.PerBlock[i])
		r.SpreadSum[i] += r2.SpreadSum[i]
		r.SpreadN[i] += r2.SpreadN[i]
	}
	for i := range r.PerTarget {
		r.PerTarget[i].Merge(r2.PerTarget[i])
	}
	r.Values = append(r.Values, r2.Values...)
	r.Detection.Merge(r2.Detection)
	r.Masked += r2.Masked
	r.PreMasked += r2.PreMasked
	if r2.PreMaskedPerBit != nil {
		if r.PreMaskedPerBit == nil {
			r.PreMaskedPerBit = make([]int, len(r.PerBit))
		}
		for i := range r.PreMaskedPerBit {
			r.PreMaskedPerBit[i] += r2.PreMaskedPerBit[i]
		}
	}
	if r2.Strata != nil {
		if r.Strata == nil {
			r.Strata = r2.Strata.Clone()
		} else {
			r.Strata.Merge(r2.Strata)
		}
	}
}

// SpreadRate returns the mean bit-wise mismatch fraction at the final
// block for faults injected into block i (Table 5). Stratified campaigns
// reweight the per-stratum means so the rate estimates what a uniform
// campaign would measure.
func (r *Report) SpreadRate(block int) float64 {
	if r.Strata != nil && len(r.Strata.SpreadN) > 0 {
		return r.Strata.BlockSpread(block)
	}
	if r.SpreadN[block] == 0 {
		return 0
	}
	return r.SpreadSum[block] / float64(r.SpreadN[block])
}

// SDCEstimate returns the campaign's estimate of the uniform-design SDC
// probability for criterion k with its 95% CI half-width. Uniform
// campaigns return the raw pooled proportion; stratified campaigns return
// the reweighted estimator, which is unbiased for the same quantity but
// typically much tighter at equal budget.
func (r *Report) SDCEstimate(k sdc.Kind) (p, ci95 float64) {
	if r.Strata != nil {
		e := r.Strata.Estimate(k)
		return e.P(), e.CI95()
	}
	pr := stats.Proportion{Successes: r.Counts.Hits[k], Trials: r.Counts.DefinedTrials[k]}
	return pr.P(), pr.CI95()
}

// BlockSDCEstimate is the per-block (Fig. 6) analogue of SDCEstimate.
func (r *Report) BlockSDCEstimate(block int, k sdc.Kind) (p, ci95 float64) {
	if r.Strata != nil {
		e := r.Strata.BlockEstimate(block, k)
		return e.P(), e.CI95()
	}
	pr := stats.Proportion{
		Successes: r.PerBlock[block].Hits[k],
		Trials:    r.PerBlock[block].DefinedTrials[k],
	}
	return pr.P(), pr.CI95()
}

// Options configures a campaign.
type Options struct {
	// N is the number of injections.
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Selector picks fault sites; UniformSelector when nil.
	Selector Selector
	// TrackValues, when positive, samples up to that many ValueRecords.
	TrackValues int
	// TrackSpread enables the Table 5 final-block mismatch metric.
	TrackSpread bool
	// Detector, when non-nil, is evaluated on every faulty execution for
	// the §6.2 precision/recall tally. It must be safe for concurrent use.
	Detector func(*network.Execution) bool
	// Workers caps the worker goroutines; NumCPU when zero.
	Workers int
	// Dense forces every injection through the dense per-layer
	// re-execution path (network.ForwardFromDense) and skips enabling the
	// quantized-parameter cache, so on a fresh network it reproduces the
	// seed implementation exactly. It exists as the baseline for
	// throughput benchmarks and as a debugging oracle; reports are
	// bit-identical either way.
	Dense bool
	// SparseDensityCutoff, when positive, tunes the changed-set density at
	// which the sparse downstream propagation falls back to dense per-layer
	// re-execution (see layers.DefaultSparseDensityCutoff for the default).
	// Reports are bit-identical at any value; only throughput changes.
	SparseDensityCutoff float64
	// Sampling selects the site-sampling design: SamplingUniform (the
	// default, "" included) or SamplingStratified — the two-phase
	// masking-aware campaign (see internal/engine). Stratified campaigns
	// require the default uniform Selector; Report.SDCEstimate and
	// SpreadRate stay unbiased estimates of the uniform-design quantities
	// either way.
	Sampling SamplingMode
	// PilotN is the uniform pilot budget of a stratified campaign;
	// DefaultPilotN(N) when zero. Ignored under uniform sampling.
	PilotN int
	// Prior, when non-nil, seeds a stratified campaign's Neyman allocation
	// from a previous campaign's persisted strata instead of running a
	// pilot: the whole budget is main-phase. The prior must come from a
	// campaign over the same network and format (equal stratum grid and
	// weights).
	Prior *StrataSummary
	// OnPilotStrata, when non-nil, observes the merged pilot strata of a
	// stratified Run right after the allocation table is built — the hook
	// strata artifacts use to persist the pilot for later Prior reuse.
	OnPilotStrata func(*StrataSummary)
	// Eval selects the evaluation mode: EvalPerBit (the default "", one
	// independent (site, bit) draw per injection — the paper's design),
	// EvalSiteScalar or EvalSiteBitPlane (site-draw designs: each drawn
	// site is evaluated at every bit position, scalar replays vs one
	// bit-parallel replay with an analytical masking pre-screen). The two
	// site modes produce bit-identical reports; the per-bit mode is a
	// different (equally valid) sampling design with its own PRNG stream.
	// Site modes require the default uniform Selector and are incompatible
	// with Dense.
	Eval EvalMode
	// MBU is the multi-bit-upset width: every injection flips MBU
	// adjacent bits of the struck latch. 0 and 1 both mean single-bit
	// upsets. Requires the per-bit evaluation mode and the default
	// uniform Selector; the base bit is drawn uniformly over the
	// Width()−MBU+1 in-word spans.
	MBU int
}

// mbu resolves the upset width (≥ 1).
func (opt Options) mbu() int {
	if opt.MBU <= 1 {
		return 1
	}
	return opt.MBU
}

// engineOptions maps the surface options onto the shared engine's
// orchestration options. width is the campaign format's bit width — the
// draw-unit size of the site-draw evaluation modes.
func (opt Options) engineOptions(width int) engine.Options {
	if opt.MBU > width {
		panic(fmt.Sprintf("faultinj: MBU width %d exceeds the %d-bit word", opt.MBU, width))
	}
	eo := engine.Options{
		N: opt.N, Workers: opt.Workers,
		Sampling: opt.Sampling, PilotN: opt.PilotN,
		Prior: opt.Prior, OnPilot: opt.OnPilotStrata,
	}
	if opt.Eval != EvalPerBit {
		if opt.mbu() > 1 {
			panic("faultinj: MBU campaigns require the per-bit evaluation mode")
		}
		eo.SiteBits = width
	}
	return eo
}

// Campaign binds a network, format and input set.
type Campaign struct {
	Net    *network.Network
	DType  numeric.Type
	Inputs []*tensor.Tensor

	// GoldenFn, when non-nil, resolves the golden execution of input i
	// instead of computing it directly: compute runs the fault-free
	// forward pass, and implementations return its result or a previously
	// computed, bit-identical one. The distributed campaign service hooks
	// a process-wide golden-execution cache here so campaigns sharing
	// (network, weights, input, format) run the golden pass once per
	// machine. Must be set before the first Run/RunShard/Golden call.
	GoldenFn func(i int, compute func() *network.Execution) *network.Execution

	profile *accel.Profile
	goldens []*network.Execution
	once    sync.Once
}

// New creates a campaign over the given inputs.
func New(net *network.Network, dt numeric.Type, inputs []*tensor.Tensor) *Campaign {
	if len(inputs) == 0 {
		panic("faultinj: campaign needs at least one input")
	}
	return &Campaign{Net: net, DType: dt, Inputs: inputs}
}

// prepare computes the fault-site profile and golden executions once.
// workers caps the total goroutines of the golden passes; 0 means NumCPU.
// When there are fewer inputs than workers, the surplus parallelism moves
// inside each forward pass (over CONV/FC output elements) so a
// single-input campaign still uses every core.
func (c *Campaign) prepare(workers int) {
	c.once.Do(func() {
		c.profile = accel.NewProfile(c.Net, c.DType)
		c.goldens = make([]*network.Execution, len(c.Inputs))
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		perInput := workers / len(c.Inputs)
		if perInput < 1 {
			perInput = 1
		}
		var wg sync.WaitGroup
		for i := range c.Inputs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				compute := func() *network.Execution {
					return c.Net.ForwardParallel(c.DType, c.Inputs[i], perInput)
				}
				if c.GoldenFn != nil {
					c.goldens[i] = c.GoldenFn(i, compute)
				} else {
					c.goldens[i] = compute()
				}
			}(i)
		}
		wg.Wait()
	})
}

// Profile exposes the fault-site geometry (after preparing it).
func (c *Campaign) Profile() *accel.Profile {
	c.prepare(0)
	return c.profile
}

// Golden exposes the cached golden execution for input i.
func (c *Campaign) Golden(i int) *network.Execution {
	c.prepare(0)
	return c.goldens[i]
}

// EffectiveShards returns the shard count Run actually uses for a worker
// request: at least one, at most one per injection (see
// engine.EffectiveShards).
func EffectiveShards(workers, n int) int { return engine.EffectiveShards(workers, n) }

// surface adapts the campaign to the shared engine's Surface interface:
// the engine owns all shard fan-out, phase sequencing, allocation-table
// construction and the canonical merge association, and calls back here
// for report algebra and per-injection execution.
type surface struct {
	c            *Campaign
	opt          Options
	bits, blocks int
}

func (c *Campaign) surface(opt Options) surface {
	return surface{c: c, opt: opt, bits: c.DType.Width(), blocks: c.profile.NumMACLayers()}
}

// Surface exposes the campaign's engine adapter and the engine options it
// runs under, for the cross-surface conformance suite
// (engine.CheckSurface).
func (c *Campaign) Surface(opt Options) (engine.Surface[*Report], engine.Options) {
	c.setup(&opt)
	return c.surface(opt), opt.engineOptions(c.DType.Width())
}

func (s surface) NewReport() *Report                     { return newReport(s.bits, s.blocks) }
func (s surface) Merge(dst, src *Report)                 { dst.merge(src) }
func (s surface) Strata(r *Report) *engine.StrataSummary { return r.Strata }
func (s surface) RunPhase(shard, of int, ph engine.Phase) *Report {
	return s.c.runShardPhase(shard, of, s.opt, s.bits, s.blocks, ph)
}

// Run executes the campaign and aggregates its report. It is exactly the
// shard-order merge of RunShard(s, S, opt) for s in [0, S) with
// S = EffectiveShards(opt.Workers, opt.N), with the shards running on
// goroutines — the reference a distributed run of the same S shards is
// bit-identical to.
func (c *Campaign) Run(opt Options) *Report {
	c.setup(&opt)
	return engine.Run[*Report](c.surface(opt), opt.engineOptions(c.DType.Width()))
}

// RunShard runs one shard of an of-way deterministic partition of the
// campaign, serially, and returns its partial report. The partition is by
// injection index stride — shard s covers injections s, s+of, s+2·of, … of
// the N-injection campaign, drawn from a PRNG stream seeded by (opt.Seed,
// s) — so every injection of the campaign belongs to exactly one shard.
// Merging all of shards' reports in shard order (MergeReports) is
// bit-identical to Run with Workers=of, which is how Run is implemented;
// shards can therefore execute anywhere — goroutines, processes, machines —
// and still reproduce the single-process campaign exactly.
func (c *Campaign) RunShard(shard, of int, opt Options) *Report {
	c.setup(&opt)
	return engine.RunShard[*Report](c.surface(opt), shard, of, opt.engineOptions(c.DType.Width()))
}

// PilotShard runs one shard of a stratified campaign's uniform pilot
// phase. Merging all of shards' pilot reports in shard order yields the
// pilot BuildStratumTable expects.
func (c *Campaign) PilotShard(shard, of int, opt Options) *Report {
	c.setup(&opt)
	return engine.PilotShard[*Report](c.surface(opt), shard, of, opt.engineOptions(c.DType.Width()))
}

// MainShard runs one shard of a stratified campaign's allocated main phase
// under the given table (BuildStratumTable of the merged pilot). The full
// campaign report is the per-shard interleaved merge
// pilot₀ ⊕ main₀ ⊕ pilot₁ ⊕ main₁ ⊕ … — bit-identical to Run.
func (c *Campaign) MainShard(shard, of int, table *StratumTable, opt Options) *Report {
	c.setup(&opt)
	return engine.MainShard[*Report](c.surface(opt), shard, of, table, opt.engineOptions(c.DType.Width()))
}

// setup performs the idempotent per-campaign preparation shared by Run and
// RunShard: the quantized-parameter cache, the fault-site profile, the
// golden executions and the selector default.
func (c *Campaign) setup(opt *Options) {
	if !opt.Dense {
		// Quantize each layer's parameters once per campaign; every
		// shard (and the golden passes) shares the read-only result.
		c.Net.EnableQuantCache()
		if opt.SparseDensityCutoff > 0 {
			c.Net.SetSparseDensityCutoff(opt.SparseDensityCutoff)
		} else {
			// No explicit cutoff: tune the sparse/dense crossover per layer
			// from the densities this campaign actually observes.
			c.Net.EnableAutoSparseCutoff()
		}
	}
	c.prepare(opt.Workers)
	if opt.Sampling == SamplingStratified && opt.Selector != nil {
		panic("faultinj: stratified sampling draws its own sites and is incompatible with a custom Selector")
	}
	if opt.mbu() > 1 && opt.Selector != nil {
		panic("faultinj: MBU campaigns draw their own base-bit spans and are incompatible with a custom Selector")
	}
	switch opt.Eval {
	case EvalPerBit:
	case EvalSiteScalar, EvalSiteBitPlane:
		if opt.Selector != nil {
			panic("faultinj: site-draw evaluation modes draw their own sites and are incompatible with a custom Selector")
		}
		if opt.Dense {
			panic("faultinj: site-draw evaluation modes require the incremental engine (Options.Dense unsupported)")
		}
	default:
		panic(fmt.Sprintf("faultinj: unknown evaluation mode %q", opt.Eval))
	}
	if opt.Selector == nil {
		opt.Selector = UniformSelector
	}
}

// stratumWeights returns the (block, base bit) population probabilities
// under uniform site sampling: the block's MAC share divided by the
// number of valid base-bit positions. Under an MBU of width m the base
// bit is uniform over the word's bits−m+1 in-word spans, so the top m−1
// base-bit strata carry zero weight and are never allocated injections.
// Identical for every shard of a campaign (pure function of the profile).
func (c *Campaign) stratumWeights(bits, blocks, mbu int) HexFloats {
	validBits := bits - mbu + 1
	w := make(HexFloats, blocks*bits)
	for b := 0; b < blocks; b++ {
		wb := c.profile.BlockWeight(b) / float64(validBits)
		for bit := 0; bit < validBits; bit++ {
			w[b*bits+bit] = wb
		}
	}
	return w
}

// drawnSite is one injection of a shard: its sequence position within the
// shard and the pre-drawn fault site.
type drawnSite struct {
	pos      int
	inputIdx int
	site     accel.Site
}

// injResult buffers one injection's outcome so grouped execution can fold
// results back into the report in draw order — float accumulation order
// and value-sample selection stay bit-identical to the ungrouped loop.
type injResult struct {
	outcome  sdc.Outcome
	masked   bool
	pre      bool // proven masked by the analytical pre-screen (no replay)
	block    int
	bit      int
	target   layers.Target
	value    ValueRecord
	hasValue bool
	spread   float64
	det      bool
}

// runShardPhase executes one phase of one shard (see engine.Phase) — the
// per-injection execution the engine's orchestration calls back into.
// Fault sites are drawn first, in the exact PRNG order of the original
// per-injection loop; execution is then grouped by (input, faulted layer)
// so each group shares one InjectionBatch — the golden prefix views and
// the faulted layer's quantized input are resolved once per group instead
// of once per injection (execution consumes no randomness, so reordering
// it is invisible to the PRNG stream). Results fold into the report in
// draw order, keeping every accumulator — including the order-sensitive
// spread sums and value samples — bit-identical to unbatched execution.
func (c *Campaign) runShardPhase(shard, of int, opt Options, bits, blocks int, ph engine.Phase) *Report {
	if ph.SiteBits > 0 {
		return c.runShardPhaseSites(shard, of, opt, bits, blocks, ph)
	}
	rng := rand.New(rand.NewSource(opt.Seed + int64(shard)*1_000_003 + ph.SeedSalt))
	valueBudget := 0
	if ph.Values && opt.TrackValues > 0 {
		valueBudget = (opt.TrackValues + of - 1) / of
	}

	// Phase 1: draw every site of the shard in sequence order. Stratified
	// main-phase draws replace the selector with a table lookup: injection
	// i belongs to a fixed stratum, and only the site within the stratum
	// is random (two PRNG values, like every uniform draw's tail).
	mbu := opt.mbu()
	var seq []drawnSite
	for i := shard; i < ph.N; i += of {
		var site accel.Site
		switch {
		case ph.Table != nil:
			block, bit := ph.Table.Stratum(i)
			site = c.profile.RandomSiteInBlockWithBit(rng, block, bit)
			if mbu > 1 {
				site.Fault.Width = mbu
			}
		case mbu > 1:
			site = c.profile.RandomSiteMBU(rng, mbu)
		default:
			site = opt.Selector(rng, c.profile)
		}
		seq = append(seq, drawnSite{
			pos:      len(seq),
			inputIdx: (ph.InputBase + i) % len(c.Inputs),
			site:     site,
		})
	}

	// Phase 2: group by (input, faulted layer), first-appearance order.
	type groupKey struct{ input, layer int }
	groups := make(map[groupKey][]drawnSite)
	var order []groupKey
	for _, d := range seq {
		k := groupKey{d.inputIdx, d.site.Layer}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], d)
	}

	// Phase 3: execute each group through a shared batch.
	results := make([]injResult, len(seq))
	for _, k := range order {
		group := groups[k]
		golden := c.goldens[k.input]
		var batch *network.InjectionBatch
		if !opt.Dense {
			batch = c.Net.NewInjectionBatch(c.DType, golden, k.layer, len(group))
		}
		for _, d := range group {
			fault := d.site.Fault // copy; Applied is per-run state
			var faulty *network.Execution
			if opt.Dense {
				faulty = c.Net.ForwardFromDense(c.DType, golden, d.site.Layer, &fault)
			} else {
				faulty = batch.Run(&fault)
			}
			if !fault.Applied {
				panic("faultinj: selected fault site was not exercised: " + d.site.String())
			}

			res := injResult{
				masked: faulty.Masked,
				block:  c.profile.BlockOfSite(d.site),
				bit:    d.site.Fault.Bit,
				target: d.site.Fault.Target,
			}
			res.outcome = sdc.Classify(c.Net, golden, faulty)

			if d.pos < valueBudget {
				res.hasValue = true
				res.value = ValueRecord{
					Golden: golden.Acts[d.site.Layer].Data[d.site.Fault.OutputIndex],
					Faulty: faulty.Acts[d.site.Layer].Data[d.site.Fault.OutputIndex],
					SDC:    res.outcome.Hit[sdc.SDC1],
				}
			}
			if opt.TrackSpread {
				gActs := c.Net.BlockActs(golden)
				fActs := c.Net.BlockActs(faulty)
				last := len(gActs) - 1
				mismatch := tensor.BitwiseMismatch(gActs[last], fActs[last])
				res.spread = float64(mismatch) / float64(gActs[last].Shape.Elems())
			}
			if opt.Detector != nil {
				res.det = opt.Detector(faulty)
			}
			results[d.pos] = res
		}
	}

	// Phase 4: fold in draw order.
	return c.foldResults(results, opt, bits, blocks, ph)
}

// foldResults folds buffered injection outcomes — indexed in draw order —
// into a fresh phase report. Shared by the per-bit and site-draw evaluation
// paths so every accumulator (including the order-sensitive spread sums and
// value samples) is built by the same code.
func (c *Campaign) foldResults(results []injResult, opt Options, bits, blocks int, ph engine.Phase) *Report {
	r := newReport(bits, blocks)
	if ph.Strata {
		r.Strata = engine.NewStrata(blocks, bits, c.stratumWeights(bits, blocks, opt.mbu()), opt.TrackSpread)
	}
	for i := range results {
		res := &results[i]
		if res.masked {
			r.Masked++
		}
		if res.pre {
			r.PreMasked++
			if r.PreMaskedPerBit == nil {
				r.PreMaskedPerBit = make([]int, bits)
			}
			r.PreMaskedPerBit[res.bit]++
		}
		r.Counts.Add(res.outcome)
		r.PerBit[res.bit].Add(res.outcome)
		r.PerBlock[res.block].Add(res.outcome)
		r.PerTarget[res.target].Add(res.outcome)
		if r.Strata != nil {
			r.Strata.Counts[res.block*bits+res.bit].Add(res.outcome)
		}
		if res.hasValue {
			r.Values = append(r.Values, res.value)
		}
		if opt.TrackSpread {
			r.SpreadSum[res.block] += res.spread
			r.SpreadN[res.block]++
			if r.Strata != nil {
				r.Strata.SpreadSum[res.block*bits+res.bit] += res.spread
				r.Strata.SpreadN[res.block*bits+res.bit]++
			}
		}
		if opt.Detector != nil {
			r.Detection.Tally(res.outcome.Hit[sdc.SDC1], res.det)
		}
	}
	return r
}
