// Package tensor provides the dense CHW tensors used throughout the DNN
// simulator: feature maps (fmaps), convolution kernels and fully-connected
// weight matrices. Values are stored as float64 and quantized through the
// active numeric format by the layer code, so tensors are format-agnostic.
package tensor

import (
	"fmt"
	"math"
)

// Shape describes a 3-D channel-height-width extent. Vectors (FC
// activations) use C=len, H=W=1.
type Shape struct {
	C, H, W int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// String formats the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// Tensor is a dense CHW-ordered tensor.
type Tensor struct {
	Shape Shape
	Data  []float64
}

// New allocates a zero tensor of the given shape.
func New(s Shape) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Data: make([]float64, s.Elems())}
}

// NewVector allocates a zero 1-D tensor with n channels.
func NewVector(n int) *Tensor { return New(Shape{C: n, H: 1, W: 1}) }

// FromSlice wraps data (not copied) in a tensor of shape s.
func FromSlice(s Shape, data []float64) *Tensor {
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), s, s.Elems()))
	}
	return &Tensor{Shape: s, Data: data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// Index converts (c,h,w) coordinates to a flat offset.
func (t *Tensor) Index(c, h, w int) int {
	return (c*t.Shape.H+h)*t.Shape.W + w
}

// At returns the element at (c,h,w).
func (t *Tensor) At(c, h, w int) float64 { return t.Data[t.Index(c, h, w)] }

// Set stores v at (c,h,w).
func (t *Tensor) Set(c, h, w int, v float64) { t.Data[t.Index(c, h, w)] = v }

// Coords converts a flat offset back to (c,h,w).
func (t *Tensor) Coords(i int) (c, h, w int) {
	w = i % t.Shape.W
	i /= t.Shape.W
	h = i % t.Shape.H
	c = i / t.Shape.H
	return
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// MinMax returns the smallest and largest element. It panics on an empty
// tensor (shapes are always non-empty by construction).
func (t *Tensor) MinMax() (min, max float64) {
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return
}

// EuclideanDistance returns the L2 distance between two equal-shaped
// tensors — the paper's Figure 7 metric for error spread. Non-finite
// differences (from FP overflow under fault) contribute the largest finite
// magnitude so the distance stays ordered and finite.
func EuclideanDistance(a, b *Tensor) float64 {
	if a.Shape != b.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var sum float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return math.MaxFloat64
		}
		sum += d * d
		if math.IsInf(sum, 0) {
			return math.MaxFloat64
		}
	}
	return math.Sqrt(sum)
}

// BitwiseMismatch counts elements whose float64 bit patterns differ between
// two equal-shaped tensors — used for the Table 5 bit-wise SDC metric.
func BitwiseMismatch(a, b *Tensor) int {
	if a.Shape != b.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	n := 0
	for i := range a.Data {
		x, y := a.Data[i], b.Data[i]
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			n++
		}
	}
	return n
}

// ArgTopK returns the indices of the k largest elements of a vector tensor
// in descending order. Ties resolve to the lower index, making rankings
// deterministic.
func (t *Tensor) ArgTopK(k int) []int {
	n := len(t.Data)
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	used := make([]bool, n)
	for len(idx) < k {
		best := -1
		for i, v := range t.Data {
			if used[i] {
				continue
			}
			if best == -1 || greater(v, t.Data[best]) {
				best = i
			}
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}

// greater orders a before b, treating NaN as smallest so a corrupted score
// never outranks a real one.
func greater(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a > b
}
