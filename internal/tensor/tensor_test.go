package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	if got := (Shape{C: 3, H: 4, W: 5}).Elems(); got != 60 {
		t.Errorf("Elems = %d, want 60", got)
	}
	if got := (Shape{C: 10, H: 1, W: 1}).Elems(); got != 10 {
		t.Errorf("Elems = %d, want 10", got)
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{C: 3, H: 4, W: 5}).String(); got != "3x4x5" {
		t.Errorf("String = %q", got)
	}
}

func TestNewZeroed(t *testing.T) {
	tr := New(Shape{C: 2, H: 3, W: 4})
	if len(tr.Data) != 24 {
		t.Fatalf("len = %d, want 24", len(tr.Data))
	}
	for i, v := range tr.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero extent did not panic")
		}
	}()
	New(Shape{C: 0, H: 1, W: 1})
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(Shape{C: 2, H: 2, W: 2}, make([]float64, 7))
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	tr := New(Shape{C: 3, H: 5, W: 7})
	for c := 0; c < 3; c++ {
		for h := 0; h < 5; h++ {
			for w := 0; w < 7; w++ {
				i := tr.Index(c, h, w)
				gc, gh, gw := tr.Coords(i)
				if gc != c || gh != h || gw != w {
					t.Fatalf("Coords(Index(%d,%d,%d)) = (%d,%d,%d)", c, h, w, gc, gh, gw)
				}
			}
		}
	}
}

func TestAtSet(t *testing.T) {
	tr := New(Shape{C: 2, H: 2, W: 2})
	tr.Set(1, 0, 1, 42)
	if got := tr.At(1, 0, 1); got != 42 {
		t.Errorf("At = %v, want 42", got)
	}
	// CHW layout: element (1,0,1) is at offset 1*4 + 0*2 + 1 = 5.
	if tr.Data[5] != 42 {
		t.Errorf("Data[5] = %v, want 42 (CHW ordering)", tr.Data[5])
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(Shape{C: 1, H: 2, W: 2})
	a.Fill(3)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 3 {
		t.Error("Clone shares backing storage")
	}
}

func TestMinMax(t *testing.T) {
	tr := FromSlice(Shape{C: 1, H: 1, W: 5}, []float64{3, -7, 2, 9, 0})
	min, max := tr.MinMax()
	if min != -7 || max != 9 {
		t.Errorf("MinMax = (%v,%v), want (-7,9)", min, max)
	}
}

func TestApply(t *testing.T) {
	tr := FromSlice(Shape{C: 1, H: 1, W: 3}, []float64{-1, 0, 2})
	tr.Apply(func(v float64) float64 { return v * 2 })
	want := []float64{-2, 0, 4}
	for i, v := range tr.Data {
		if v != want[i] {
			t.Errorf("Data[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestEuclideanDistance(t *testing.T) {
	a := FromSlice(Shape{C: 1, H: 1, W: 3}, []float64{0, 0, 0})
	b := FromSlice(Shape{C: 1, H: 1, W: 3}, []float64{3, 4, 0})
	if got := EuclideanDistance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", got)
	}
	if got := EuclideanDistance(a, a); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestEuclideanDistanceNonFinite(t *testing.T) {
	a := FromSlice(Shape{C: 1, H: 1, W: 2}, []float64{0, 0})
	b := FromSlice(Shape{C: 1, H: 1, W: 2}, []float64{math.Inf(1), 0})
	if got := EuclideanDistance(a, b); got != math.MaxFloat64 {
		t.Errorf("distance with Inf = %v, want MaxFloat64 sentinel", got)
	}
	c := FromSlice(Shape{C: 1, H: 1, W: 2}, []float64{math.NaN(), 0})
	if got := EuclideanDistance(a, c); got != math.MaxFloat64 {
		t.Errorf("distance with NaN = %v, want MaxFloat64 sentinel", got)
	}
}

func TestEuclideanDistanceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	EuclideanDistance(New(Shape{C: 1, H: 1, W: 2}), New(Shape{C: 1, H: 1, W: 3}))
}

func TestBitwiseMismatch(t *testing.T) {
	a := FromSlice(Shape{C: 1, H: 1, W: 4}, []float64{1, 2, 3, math.NaN()})
	b := FromSlice(Shape{C: 1, H: 1, W: 4}, []float64{1, 5, 3, math.NaN()})
	if got := BitwiseMismatch(a, b); got != 1 {
		t.Errorf("mismatch = %d, want 1 (NaN==NaN for this metric)", got)
	}
}

func TestArgTopK(t *testing.T) {
	tr := FromSlice(Shape{C: 6, H: 1, W: 1}, []float64{0.1, 0.9, 0.3, 0.9, 0.05, 0.7})
	got := tr.ArgTopK(3)
	want := []int{1, 3, 5} // ties resolve to lower index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgTopK = %v, want %v", got, want)
		}
	}
}

func TestArgTopKClampsK(t *testing.T) {
	tr := FromSlice(Shape{C: 2, H: 1, W: 1}, []float64{1, 2})
	if got := tr.ArgTopK(10); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgTopK(10) = %v", got)
	}
}

func TestArgTopKNaNRanksLast(t *testing.T) {
	tr := FromSlice(Shape{C: 3, H: 1, W: 1}, []float64{math.NaN(), 0.5, 0.1})
	got := tr.ArgTopK(3)
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("ArgTopK with NaN = %v, want [1 2 0]", got)
	}
}

func TestPropertyIndexBijective(t *testing.T) {
	prop := func(cs, hs, ws uint8) bool {
		s := Shape{C: int(cs%5) + 1, H: int(hs%5) + 1, W: int(ws%5) + 1}
		tr := New(s)
		seen := make(map[int]bool)
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					i := tr.Index(c, h, w)
					if i < 0 || i >= s.Elems() || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return len(seen) == s.Elems()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistanceSymmetricNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := rng.Intn(20) + 1
		a, b := NewVector(n), NewVector(n)
		for j := 0; j < n; j++ {
			a.Data[j], b.Data[j] = rng.NormFloat64(), rng.NormFloat64()
		}
		dab, dba := EuclideanDistance(a, b), EuclideanDistance(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-12 {
			t.Fatalf("distance not symmetric/non-negative: %v vs %v", dab, dba)
		}
	}
}
