package dataset

import (
	"math"
	"testing"
)

func TestImageDeterministic(t *testing.T) {
	a := Image(CIFARLike, 16, 7)
	b := Image(CIFARLike, 16, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Image not deterministic for identical parameters")
		}
	}
}

func TestImageDistinctIndices(t *testing.T) {
	a := Image(CIFARLike, 16, 0)
	b := Image(CIFARLike, 16, 1)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different indices produced identical images")
	}
}

func TestImageShape(t *testing.T) {
	img := Image(ImageNetLike, 24, 0)
	if img.Shape.C != 3 || img.Shape.H != 24 || img.Shape.W != 24 {
		t.Errorf("shape = %v", img.Shape)
	}
}

func TestCIFARScale(t *testing.T) {
	img := Image(CIFARLike, 32, 2)
	min, max := img.MinMax()
	if min < -2.01 || max > 2.01 {
		t.Errorf("CIFAR-like range [%v,%v] outside [-2,2]", min, max)
	}
	if max-min < 1 {
		t.Errorf("CIFAR-like span %v suspiciously small", max-min)
	}
}

func TestImageNetScale(t *testing.T) {
	img := Image(ImageNetLike, 24, 2)
	min, max := img.MinMax()
	if min < -128.01 || max > 127.01 {
		t.Errorf("ImageNet-like range [%v,%v] outside [-128,127]", min, max)
	}
	if max-min < 100 {
		t.Errorf("ImageNet-like span %v too small for raw-pixel scale", max-min)
	}
}

func TestImageSpatialCorrelation(t *testing.T) {
	// Neighbouring pixels must correlate more than distant ones (the
	// natural-image property the blob construction provides).
	img := Image(ImageNetLike, 24, 5)
	var near, far float64
	n := 0
	for y := 0; y < 23; y++ {
		for x := 0; x < 23; x++ {
			near += math.Abs(img.At(0, y, x) - img.At(0, y, x+1))
			far += math.Abs(img.At(0, y, x) - img.At(0, 23-y, 23-x))
			n++
		}
	}
	if near >= far {
		t.Errorf("no spatial correlation: near diff %v >= far diff %v", near/float64(n), far/float64(n))
	}
}

func TestImageFinite(t *testing.T) {
	for idx := 0; idx < 5; idx++ {
		img := Image(CIFARLike, 32, idx)
		for i, v := range img.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("image %d element %d non-finite", idx, i)
			}
		}
	}
}

func TestBatch(t *testing.T) {
	imgs := Batch(CIFARLike, 16, 10, 3)
	if len(imgs) != 3 {
		t.Fatalf("Batch len = %d", len(imgs))
	}
	single := Image(CIFARLike, 16, 11)
	for i := range single.Data {
		if imgs[1].Data[i] != single.Data[i] {
			t.Fatal("Batch images do not match Image at the same index")
		}
	}
}

func TestKindString(t *testing.T) {
	if CIFARLike.String() != "cifar-like" || ImageNetLike.String() != "imagenet-like" {
		t.Error("Kind.String mismatch")
	}
}
