// Package dataset generates the deterministic synthetic input images the
// reproduction uses in place of CIFAR-10 and ImageNet (see DESIGN.md,
// "Substitutions"). Images are sums of smooth random blobs plus noise, so
// they have the spatial correlation of natural images, and they are fully
// determined by (dataset kind, index) — every fault-injection run sees a
// reproducible input set.
//
// Scaling follows the originals: CIFAR-like images are normalized to
// roughly [-2, 2] (hence ConvNet's small Table 4 activation ranges), while
// ImageNet-like images are mean-subtracted raw pixels in [-128, 127]
// (hence the hundreds-scale layer-1 ranges of AlexNet/CaffeNet/NiN).
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Kind selects the synthetic dataset family.
type Kind int

const (
	// CIFARLike mimics normalized 32x32x3 CIFAR-10 inputs.
	CIFARLike Kind = iota
	// ImageNetLike mimics mean-subtracted raw-pixel ImageNet crops.
	ImageNetLike
)

// String names the dataset kind.
func (k Kind) String() string {
	if k == CIFARLike {
		return "cifar-like"
	}
	return "imagenet-like"
}

// Image generates image number idx of the dataset at the given square
// spatial size with 3 channels. The same (kind, size, idx) always produces
// the same tensor.
func Image(kind Kind, size, idx int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(int64(kind)*1e9 + int64(size)*1e6 + int64(idx)))
	img := tensor.New(tensor.Shape{C: 3, H: size, W: size})

	// Smooth structure: a handful of Gaussian blobs per channel with
	// channel-correlated positions (like real photos).
	nBlobs := 4 + rng.Intn(4)
	type blob struct {
		cx, cy, sigma float64
		amp           [3]float64
	}
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		b := blob{
			cx:    rng.Float64() * float64(size),
			cy:    rng.Float64() * float64(size),
			sigma: (0.08 + 0.25*rng.Float64()) * float64(size),
		}
		base := rng.Float64()*2 - 1
		for c := 0; c < 3; c++ {
			b.amp[c] = base + 0.4*(rng.Float64()*2-1)
		}
		blobs[i] = b
	}
	for c := 0; c < 3; c++ {
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				var v float64
				for _, b := range blobs {
					dx, dy := float64(x)-b.cx, float64(y)-b.cy
					v += b.amp[c] * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
				}
				v += 0.15 * rng.NormFloat64() // sensor-like noise
				img.Set(c, y, x, v)
			}
		}
	}

	// Normalize per image to a fixed dynamic range, then scale per kind.
	min, max := img.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	switch kind {
	case CIFARLike:
		// Normalized inputs roughly in [-2, 2].
		img.Apply(func(v float64) float64 { return ((v-min)/span - 0.5) * 4 })
	case ImageNetLike:
		// Mean-subtracted raw pixels in [-128, 127].
		img.Apply(func(v float64) float64 { return (v-min)/span*255 - 128 })
	}
	return img
}

// Batch generates n consecutive images starting at index start.
func Batch(kind Kind, size, start, n int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i] = Image(kind, size, start+i)
	}
	return imgs
}

// Labeled generates a (image, class) pair for the synthetic classification
// task used to train networks: the base image is stamped with a
// class-specific bump (a Gaussian at a class-dependent ring position in a
// class-dependent channel), giving a pattern that convolutional networks
// can learn but that is not linearly trivial. Labels cycle deterministically
// with the index.
func Labeled(kind Kind, size, classes, idx int) (*tensor.Tensor, int) {
	if classes < 2 {
		panic("dataset: Labeled needs at least 2 classes")
	}
	label := idx % classes
	img := Image(kind, size, idx)

	// Stamp geometry: class positions on a ring around the center.
	angle := 2 * math.Pi * float64(label) / float64(classes)
	cx := float64(size)/2 + float64(size)/4*math.Cos(angle)
	cy := float64(size)/2 + float64(size)/4*math.Sin(angle)
	sigma := float64(size) / 16
	ch := label % 3

	// Amplitude relative to the dataset's dynamic range.
	amp := 2.0
	if kind == ImageNetLike {
		amp = 120
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			img.Data[img.Index(ch, y, x)] += amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
		}
	}
	return img, label
}
