// Package fit implements the paper's Failure-In-Time arithmetic (Eq. 1):
//
//	FIT = Σ_component Rraw · S_component · SDC_component
//
// where Rraw is the raw upset rate per bit, S the component size in bits
// and SDC the component's SDC probability. The paper estimates Rraw as
// 20.49 FIT/Mb at 16 nm by extrapolating Neale et al.'s 28 nm measurement
// (157.62 FIT/MB, corrected by the 0.65 factor the authors confirmed with
// Neale) along the technology trend of that paper's Figure 1; we encode
// the final value and keep the origin constants for the record.
package fit

import "fmt"

const (
	// RawFITPerMb16nm is the paper's raw soft-error rate at 16 nm in
	// FIT per megabit (§4.7).
	RawFITPerMb16nm = 20.49
	// NealeRawFITPerMB28nm is the original 28 nm measurement from Neale
	// et al. in FIT per megabyte, before correction and scaling.
	NealeRawFITPerMB28nm = 157.62
	// NealeCorrection is the erratum factor the paper applies (footnote 3).
	NealeCorrection = 0.65
	// ISO26262SoCBudget is the whole-SoC FIT budget mandated by ISO 26262
	// for the self-driving use case (§2.3).
	ISO26262SoCBudget = 10.0
)

// BitsPerMb is the megabit convention of the paper's arithmetic. Working
// back from the published Table 8 FIT rates and SDC probabilities (e.g.
// ConvNet Global Buffer: 87.47 / 0.697 / 20.49 = 6.125 Mb for a 784 KB
// buffer) shows the authors used binary megabits (2^20 bits).
const BitsPerMb = 1 << 20

// Rate returns the FIT contribution of a component of the given size (in
// bits) with the given SDC probability, per Eq. 1.
func Rate(bits int64, sdcProb float64) float64 {
	return RawFITPerMb16nm * float64(bits) / BitsPerMb * sdcProb
}

// Component is one hardware structure entering the Eq. 1 sum.
type Component struct {
	// Name labels the structure ("Global Buffer", "datapath", ...).
	Name string
	// Bits is the structure size in bits (S_component).
	Bits int64
	// SDCProb is the measured SDC probability of faults in the structure.
	SDCProb float64
}

// FIT returns the component's FIT contribution.
func (c Component) FIT() float64 { return Rate(c.Bits, c.SDCProb) }

// String formats the component as a table row.
func (c Component) String() string {
	return fmt.Sprintf("%-14s %12d bits  SDC=%6.2f%%  FIT=%.4g", c.Name, c.Bits, c.SDCProb*100, c.FIT())
}

// Total sums the FIT contributions of a set of components — the overall
// accelerator FIT rate of §5.2.
func Total(components []Component) float64 {
	var t float64
	for _, c := range components {
		t += c.FIT()
	}
	return t
}

// ExceedsBudget reports whether a FIT rate violates a budget (for the
// ISO 26262 comparison: the DNN accelerator's allowance is only a small
// fraction of the 10-FIT SoC budget).
func ExceedsBudget(fitRate, budget float64) bool { return fitRate > budget }
