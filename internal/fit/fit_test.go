package fit

import (
	"math"
	"strings"
	"testing"
)

func TestRate(t *testing.T) {
	// 1 Mb with SDC probability 1 contributes exactly the raw rate.
	if got := Rate(1<<20, 1); got != RawFITPerMb16nm {
		t.Errorf("Rate(2^20 bits, 1) = %v, want %v", got, RawFITPerMb16nm)
	}
	// Linearity in both size and probability.
	if got := Rate(2<<20, 0.5); math.Abs(got-RawFITPerMb16nm) > 1e-12 {
		t.Errorf("Rate(2*2^20, 0.5) = %v, want %v", got, RawFITPerMb16nm)
	}
	if got := Rate(500_000, 0); got != 0 {
		t.Errorf("Rate with zero SDC = %v, want 0", got)
	}
}

func TestComponentFIT(t *testing.T) {
	c := Component{Name: "Filter SRAM", Bits: 3_520 * 8 * 1344, SDCProb: 0.04}
	want := Rate(c.Bits, c.SDCProb)
	if got := c.FIT(); got != want {
		t.Errorf("FIT = %v, want %v", got, want)
	}
}

func TestTotal(t *testing.T) {
	cs := []Component{
		{Name: "a", Bits: 1 << 20, SDCProb: 0.5},
		{Name: "b", Bits: 1 << 20, SDCProb: 0.5},
	}
	if got, want := Total(cs), RawFITPerMb16nm; math.Abs(got-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if Total(nil) != 0 {
		t.Error("Total(nil) != 0")
	}
}

func TestExceedsBudget(t *testing.T) {
	if !ExceedsBudget(10.1, ISO26262SoCBudget) {
		t.Error("10.1 should exceed the 10-FIT budget")
	}
	if ExceedsBudget(9.9, ISO26262SoCBudget) {
		t.Error("9.9 should not exceed the 10-FIT budget")
	}
}

func TestComponentString(t *testing.T) {
	s := Component{Name: "GB", Bits: 100, SDCProb: 0.5}.String()
	if !strings.Contains(s, "GB") || !strings.Contains(s, "50.00%") {
		t.Errorf("String = %q", s)
	}
}

func TestPaperConstants(t *testing.T) {
	// Guard the paper's published constants against accidental edits.
	if RawFITPerMb16nm != 20.49 {
		t.Error("raw 16nm rate drifted from the paper's 20.49 FIT/Mb")
	}
	if NealeRawFITPerMB28nm != 157.62 || NealeCorrection != 0.65 {
		t.Error("Neale origin constants drifted")
	}
	if ISO26262SoCBudget != 10.0 {
		t.Error("ISO 26262 budget drifted")
	}
}
